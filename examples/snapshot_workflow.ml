(* Snapshot workflow: freeze a graph + schema once, then serve queries
   from the file — fully in memory or out-of-core through a page cache —
   with answers identical to the live schema.

   The same flow is available on the command line:

     bpq freeze -g graph.txt -a constraints.txt -o graph.snap
     bpq run -g graph.snap -q query.txt                     # mem backend
     bpq run -g graph.snap -q query.txt --backend paged \
             --page-cache 4 --io-stats                      # out-of-core

   Run with:  dune exec examples/snapshot_workflow.exe *)

open Bpq_graph
open Bpq_access
open Bpq_core
module W = Bpq_workload.Workload
module Store = Bpq_store.Store
module Paged = Bpq_store.Paged

let () =
  (* 1. Build the running example once: IMDb-like graph under A0. *)
  let ds = W.imdb ~scale:0.1 () in
  let a0 = W.a0 ds.table in
  let schema = Schema.build ds.graph a0 in
  let plan = Qplan.generate_exn Actualized.Subgraph (W.q0 ds.table) a0 in
  let live = Bounded_eval.run (Exec.source_of_schema schema) plan in

  (* 2. Freeze it: one versioned, checksummed file holding the graph,
     the label table, the selectivity statistics and the built indexes.
     The write is atomic (temp + rename), so a crash never leaves a
     truncated snapshot behind. *)
  let path = Filename.temp_file "bpq_example" ".snap" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Schema.save ~selectivity:(Gstats.selectivity ds.graph) schema path;
  Printf.printf "froze %d nodes / %d edges + %d indexes into %s (%Ld bytes)\n"
    (Digraph.n_nodes ds.graph) (Digraph.n_edges ds.graph)
    (List.length a0) (Filename.basename path)
    (In_channel.with_open_bin path In_channel.length);

  (* 3. Serve it back — first fully loaded ... *)
  let mem = Store.open_snapshot ~backend:Store.Mem path in
  let from_mem = Bounded_eval.run (Store.source mem) plan in

  (* ... then out-of-core: a 2 MB page cache over an on-disk file, no
     graph or index ever materialised in memory. *)
  let paged = Store.open_snapshot ~backend:Store.Paged ~page_cache_mb:2 path in
  Fun.protect
    ~finally:(fun () ->
      Store.close mem;
      Store.close paged)
  @@ fun () ->
  let from_paged = Bounded_eval.run (Store.source paged) plan in

  (* 4. All three backends agree answer-for-answer. *)
  let count = function
    | Bounded_eval.Matches ms -> List.length ms
    | Bounded_eval.Relation r -> Array.fold_left (fun n vs -> n + Array.length vs) 0 r
  in
  Printf.printf "live schema: %d matches; snapshot (mem): %d; snapshot (paged): %d\n"
    (count live) (count from_mem) (count from_paged);
  assert (live = from_mem && live = from_paged);

  (* 5. The out-of-core run touched a bounded slice of the file — this
     is the paper's effective boundedness, measured in disk pages. *)
  (match Store.io_counters paged with
  | Some c ->
    Printf.printf
      "paged backend: %d pages faulted, %d bytes read, %d cache hits\n"
      c.Paged.faults c.Paged.bytes_read c.Paged.hits
  | None -> assert false);
  print_endline "identical answers from all three backends"
