open Bpq_graph
open Bpq_access
open Bpq_core
module W = Bpq_workload.Workload

let world () =
  (* Small movie world where Q0-style structure can be edited. *)
  let ds = W.imdb ~scale:0.01 () in
  let a0 = W.a0 ds.table in
  let schema = Schema.build ds.graph a0 in
  (ds, schema)

let as_matches = function
  | Incremental.Matches ms -> ms
  | Incremental.Relation _ -> Alcotest.fail "expected subgraph answer"

let test_create_and_answer () =
  let ds, schema = world () in
  match Incremental.create Actualized.Subgraph schema (W.q0 ds.table) with
  | None -> Alcotest.fail "Q0 is bounded under A0"
  | Some inc ->
    let fresh = Bpq_matcher.Vf2.matches ds.graph (W.q0 ds.table) in
    Helpers.check_true "initial answer correct"
      (Helpers.sort_matches (as_matches (Incremental.answer inc))
      = Helpers.sort_matches fresh)

let test_create_refuses_unbounded () =
  let tbl = Label.create_table () in
  let g1 = W.g1 tbl ~n:3 in
  let schema = Schema.build g1 (W.a1 tbl) in
  Helpers.check_true "Q1 unbounded for simulation"
    (Incremental.create Actualized.Simulation schema (W.q1 tbl) = None)

let test_irrelevant_delta_skipped () =
  let ds, schema = world () in
  match Incremental.create Actualized.Subgraph schema (W.q0 ds.table) with
  | None -> Alcotest.fail "Q0 bounded"
  | Some inc ->
    (* A genre-genre edge cannot appear in any Q0 match. *)
    let genres = Digraph.nodes_with_label ds.graph (Label.intern ds.table "genre") in
    let delta =
      { Digraph.empty_delta with added_edges = [ (genres.(0), genres.(1)) ] }
    in
    let inc' = Incremental.update inc delta in
    Helpers.check_true "skipped" (Incremental.last_update_skipped inc');
    Helpers.check_true "answer unchanged"
      (Helpers.sort_matches (as_matches (Incremental.answer inc'))
      = Helpers.sort_matches (as_matches (Incremental.answer inc)))

let test_relevant_delta_updates_answer () =
  let ds, schema = world () in
  let q0 = W.q0 ds.table in
  match Incremental.create Actualized.Subgraph schema q0 with
  | None -> Alcotest.fail "Q0 bounded"
  | Some inc ->
    (* Remove an actor->country edge: some matches must disappear. *)
    let before = as_matches (Incremental.answer inc) in
    Helpers.check_true "has matches to destroy" (before <> []);
    let m = List.hd before in
    (* Pattern node 3 is the actor, node 5 the country. *)
    let delta = { Digraph.empty_delta with removed_edges = [ (m.(3), m.(5)) ] } in
    let inc' = Incremental.update inc delta in
    Helpers.check_false "not skipped" (Incremental.last_update_skipped inc');
    let fresh =
      Bpq_matcher.Vf2.matches (Schema.graph (Incremental.schema inc')) q0
    in
    Helpers.check_true "matches recomputed correctly"
      (Helpers.sort_matches (as_matches (Incremental.answer inc'))
      = Helpers.sort_matches fresh);
    Helpers.check_true "answer actually changed"
      (List.length fresh < List.length before)

let test_addition_creates_matches () =
  let ds, schema = world () in
  let q0 = W.q0 ds.table in
  match Incremental.create Actualized.Subgraph schema q0 with
  | None -> Alcotest.fail "Q0 bounded"
  | Some inc ->
    let before = List.length (as_matches (Incremental.answer inc)) in
    (* Wire an existing match's actor and actress to a common new country
       situation: add an award edge to a fresh movie won't help; instead
       duplicate an existing match edge set via a new actor. *)
    (match as_matches (Incremental.answer inc) with
     | [] -> Alcotest.fail "need a seed match"
     | m :: _ ->
       let actor_label = Label.intern ds.table "actor" in
       let movie = m.(2) and country = m.(5) in
       let delta =
         { Digraph.added_nodes = [ (actor_label, Value.Null) ];
           added_edges =
             [ (movie, Digraph.n_nodes ds.graph); (Digraph.n_nodes ds.graph, country) ];
           removed_edges = [] }
       in
       let inc' = Incremental.update inc delta in
       let after = List.length (as_matches (Incremental.answer inc')) in
       Helpers.check_true "more matches after insertion" (after > before);
       let fresh =
         Bpq_matcher.Vf2.matches (Schema.graph (Incremental.schema inc')) q0
       in
       Helpers.check_int "agrees with recompute" (List.length fresh) after)

let incremental_matches_recompute =
  Helpers.qcheck ~count:30 "incremental answers equal recomputation from scratch"
    QCheck2.Gen.(int_range 1 100_000)
    (fun seed ->
      let module Prng = Bpq_util.Prng in
      let _, g, constrs, r = Helpers.random_instance seed in
      let schema = Schema.build g constrs in
      let q = Bpq_pattern.Qgen.from_walk r g in
      match Incremental.create Actualized.Subgraph schema q with
      | None -> true
      | Some inc ->
        let n = Digraph.n_nodes g in
        let delta =
          { Digraph.empty_delta with
            added_edges = List.init 3 (fun _ -> (Prng.int r n, Prng.int r n)) }
        in
        let inc' = Incremental.update inc delta in
        let g' = Schema.graph (Incremental.schema inc') in
        Helpers.sort_matches (as_matches (Incremental.answer inc'))
        = Helpers.sort_matches (Bpq_matcher.Vf2.matches g' q))

let incremental_simulation_matches_recompute =
  Helpers.qcheck ~count:30 "incremental simulation equals recomputation"
    QCheck2.Gen.(int_range 1 100_000)
    (fun seed ->
      let module Prng = Bpq_util.Prng in
      let _, g, constrs, r = Helpers.random_instance seed in
      let schema = Schema.build g constrs in
      let q = Bpq_pattern.Qgen.from_walk r g in
      match Incremental.create Actualized.Simulation schema q with
      | None -> true
      | Some inc ->
        let n = Digraph.n_nodes g in
        let delta =
          { Digraph.empty_delta with
            added_edges = List.init 3 (fun _ -> (Prng.int r n, Prng.int r n)) }
        in
        let inc' = Incremental.update inc delta in
        let g' = Schema.graph (Incremental.schema inc') in
        match Incremental.answer inc' with
        | Incremental.Relation rel ->
          Helpers.norm_sim rel = Helpers.norm_sim (Bpq_matcher.Gsim.run g' q)
        | Incremental.Matches _ -> false)

let test_isolated_node_addition_is_relevant () =
  (* A single-node pattern matches on label alone: adding a bare node with
     that label must not be skipped as irrelevant (it creates a match with
     no edges in the delta at all). *)
  let ds, schema = world () in
  let q = Helpers.pattern ds.table [ ("country", Bpq_pattern.Predicate.true_) ] [] in
  match Incremental.create Actualized.Subgraph schema q with
  | None -> Alcotest.fail "single-node query is bounded under A0"
  | Some inc ->
    let before = List.length (as_matches (Incremental.answer inc)) in
    let delta =
      { Digraph.empty_delta with
        added_nodes = [ (Label.intern ds.table "country", Value.Null) ] }
    in
    let inc' = Incremental.update inc delta in
    Helpers.check_false "node addition not skipped" (Incremental.last_update_skipped inc');
    Helpers.check_int "new node matches" (before + 1)
      (List.length (as_matches (Incremental.answer inc')));
    (* The same bare addition with an unused label is still skipped. *)
    let noise =
      { Digraph.empty_delta with
        added_nodes = [ (Label.intern ds.table "genre", Value.Null) ] }
    in
    Helpers.check_true "unused-label addition skipped"
      (Incremental.last_update_skipped (Incremental.update inc' noise))

let test_cached_incremental_and_refresh_stats () =
  let ds, schema = world () in
  let q0 = W.q0 ds.table in
  let cache = Qcache.create () in
  match Incremental.create ~cache Actualized.Subgraph schema q0 with
  | None -> Alcotest.fail "Q0 bounded"
  | Some inc ->
    Helpers.check_true "no refresh before first relevant update"
      (Incremental.last_refresh inc = None);
    (match as_matches (Incremental.answer inc) with
     | [] -> Alcotest.fail "need a seed match"
     | m :: _ ->
       let delta = { Digraph.empty_delta with removed_edges = [ (m.(3), m.(5)) ] } in
       let inc' = Incremental.update inc delta in
       Helpers.check_false "relevant" (Incremental.last_update_skipped inc');
       (match Incremental.last_refresh inc' with
        | None -> Alcotest.fail "refresh stats recorded"
        | Some r ->
          Helpers.check_true "plan reused, not re-planned" r.Incremental.reused_plan;
          Helpers.check_true "refresh went through the fetch cache"
            (r.Incremental.fetch_hits + r.Incremental.fetch_misses > 0));
       let fresh =
         Bpq_matcher.Vf2.matches (Schema.graph (Incremental.schema inc')) q0
       in
       Helpers.check_true "cached refresh equals recompute"
         (Helpers.sort_matches (as_matches (Incremental.answer inc'))
         = Helpers.sort_matches fresh))

let irrelevant_check_linear_probe =
  (* The fresh-node label probe used to be List.nth per endpoint; pin the
     semantics on deltas that mix fresh and existing endpoints. *)
  Helpers.qcheck ~count:30 "update with many fresh nodes equals recomputation"
    QCheck2.Gen.(int_range 1 100_000)
    (fun seed ->
      let module Prng = Bpq_util.Prng in
      let _, g, constrs, r = Helpers.random_instance seed in
      let schema = Schema.build g constrs in
      let q = Bpq_pattern.Qgen.from_walk r g in
      match Incremental.create Actualized.Subgraph schema q with
      | None -> true
      | Some inc ->
        let n = Digraph.n_nodes g in
        let fresh = 5 in
        let labels = Digraph.label g (Prng.int r n) in
        let delta =
          { Digraph.added_nodes = List.init fresh (fun _ -> (labels, Value.Null));
            added_edges =
              List.init fresh (fun i -> (Prng.int r n, n + i))
              @ [ (Prng.int r n, Prng.int r n) ];
            removed_edges = [] }
        in
        let inc' = Incremental.update inc delta in
        let g' = Schema.graph (Incremental.schema inc') in
        Helpers.sort_matches (as_matches (Incremental.answer inc'))
        = Helpers.sort_matches (Bpq_matcher.Vf2.matches g' q))

let suite =
  [ Alcotest.test_case "create and answer" `Quick test_create_and_answer;
    Alcotest.test_case "create refuses unbounded" `Quick test_create_refuses_unbounded;
    Alcotest.test_case "irrelevant delta skipped" `Quick test_irrelevant_delta_skipped;
    Alcotest.test_case "relevant delta updates answer" `Quick test_relevant_delta_updates_answer;
    Alcotest.test_case "addition creates matches" `Quick test_addition_creates_matches;
    Alcotest.test_case "isolated node addition is relevant" `Quick
      test_isolated_node_addition_is_relevant;
    Alcotest.test_case "cached incremental and refresh stats" `Quick
      test_cached_incremental_and_refresh_stats;
    irrelevant_check_linear_probe;
    incremental_matches_recompute;
    incremental_simulation_matches_recompute ]
