open Bpq_graph
open Bpq_access

(* Reference: common neighbours of [vs] labeled [l], by direct scan. *)
let naive_common_neighbours g vs l =
  match vs with
  | [] -> Array.to_list (Digraph.nodes_with_label g l)
  | v0 :: rest ->
    Array.to_list (Digraph.neighbours g v0)
    |> List.filter (fun w ->
           Digraph.label g w = l
           && List.for_all (fun v -> Array.mem w (Digraph.neighbours g v)) rest)

let movie_world () =
  let tbl = Label.create_table () in
  (* 0:year 1:year 2:award 3:movie 4:movie 5:actor *)
  let g =
    Helpers.graph tbl
      [ ("year", Value.Int 2011); ("year", Value.Int 2012); ("award", Value.Null);
        ("movie", Value.Null); ("movie", Value.Null); ("actor", Value.Null) ]
      [ (3, 0); (3, 2); (4, 1); (4, 2); (3, 5); (4, 5) ]
  in
  (tbl, g)

let test_type1_lookup () =
  let tbl, g = movie_world () in
  let c = Constr.make ~source:[] ~target:(Label.intern tbl "movie") ~bound:10 in
  let idx = Index.build g c in
  Helpers.check_true "all movies" (List.sort compare (Array.to_list (Index.lookup idx [])) = [ 3; 4 ]);
  Helpers.check_int "count" 2 (Index.lookup_count idx []);
  Helpers.check_true "satisfied" (Index.satisfied idx)

let test_pair_lookup () =
  let tbl, g = movie_world () in
  let c =
    Constr.make
      ~source:[ Label.intern tbl "year"; Label.intern tbl "award" ]
      ~target:(Label.intern tbl "movie") ~bound:4
  in
  let idx = Index.build g c in
  Helpers.check_true "movie 3 for (year0,award)" (Index.lookup idx [ 0; 2 ] = [| 3 |]);
  Helpers.check_true "movie 4 for (year1,award)" (Index.lookup idx [ 1; 2 ] = [| 4 |]);
  Helpers.check_true "order irrelevant" (Index.lookup idx [ 2; 0 ] = [| 3 |]);
  Helpers.check_true "missing key" (Index.lookup idx [ 0; 1 ] = [||]);
  Helpers.check_int "max bucket" 1 (Index.max_bucket idx)

let test_violation_detected () =
  let tbl, g = movie_world () in
  let c = Constr.make ~source:[ Label.intern tbl "movie" ] ~target:(Label.intern tbl "actor") ~bound:0 in
  let idx = Index.build g c in
  Helpers.check_false "bound 0 violated" (Index.satisfied idx);
  Helpers.check_int "realised" 1 (Index.max_bucket idx)

let test_size_counts_keys_and_payload () =
  let tbl, g = movie_world () in
  let c = Constr.make ~source:[ Label.intern tbl "movie" ] ~target:(Label.intern tbl "actor") ~bound:5 in
  let idx = Index.build g c in
  (* Keys: movie 3 and movie 4, each with one actor. *)
  Helpers.check_int "keys" 2 (Index.n_keys idx);
  Helpers.check_int "size" 4 (Index.size idx)

let random_world seed =
  let tbl = Label.create_table () in
  let g = Generators.random ~seed ~nodes:30 ~edges:90 ~labels:4 tbl in
  (tbl, g)

let lookup_matches_naive =
  Helpers.qcheck ~count:60 "index lookup equals naive common-neighbour scan"
    QCheck2.Gen.(pair (int_range 1 500) (int_range 0 2))
    (fun (seed, arity) ->
      let tbl, g = random_world seed in
      let labels = Array.of_list (Label.all tbl) in
      let r = Bpq_util.Prng.create seed in
      let source =
        List.sort_uniq compare
          (List.init arity (fun _ -> Bpq_util.Prng.pick r labels))
      in
      let target = Bpq_util.Prng.pick r labels in
      if List.mem target source then true
      else begin
        let c = Constr.make ~source ~target ~bound:1000 in
        let idx = Index.build g c in
        (* Probe random S-labeled sets. *)
        let ok = ref true in
        for _ = 1 to 20 do
          let vs =
            List.filter_map
              (fun s ->
                let candidates = Digraph.nodes_with_label g s in
                if Array.length candidates = 0 then None
                else Some (Bpq_util.Prng.pick r candidates))
              source
          in
          if List.length vs = List.length source then begin
            let got = List.sort compare (Array.to_list (Index.lookup idx vs)) in
            let want = List.sort compare (naive_common_neighbours g vs target) in
            if got <> want then ok := false
          end
        done;
        !ok
      end)

let incremental_matches_rebuild =
  Helpers.qcheck ~count:60 "incremental maintenance equals rebuild"
    QCheck2.Gen.(int_range 1 500)
    (fun seed ->
      let module Prng = Bpq_util.Prng in
      let tbl, g = random_world seed in
      let r = Prng.create (seed + 13) in
      let labels = Array.of_list (Label.all tbl) in
      let source = [ Prng.pick r labels ] in
      let target = Prng.pick r labels in
      if List.mem target source then true
      else begin
        let c = Constr.make ~source ~target ~bound:1000 in
        let idx = Index.build g c in
        let n = Digraph.n_nodes g in
        let existing =
          let acc = ref [] in
          Digraph.iter_edges g (fun s t -> acc := (s, t) :: !acc);
          !acc
        in
        let delta =
          { Digraph.added_nodes = [ (target, Value.Null); (List.hd source, Value.Null) ];
            added_edges =
              [ (Prng.int r n, Prng.int r n); (n, n + 1); (Prng.int r n, n) ];
            removed_edges = List.filteri (fun i _ -> i < 4) existing }
        in
        let g' = Digraph.apply_delta g delta in
        Index.apply_delta idx ~old_graph:g ~new_graph:g' delta;
        let fresh = Index.build g' c in
        (* Compare every key of both indexes. *)
        let agree = ref true in
        let check_keys a b =
          Index.iter a (fun key bucket ->
              let other = Index.lookup b key in
              let sort arr = List.sort compare (Array.to_list arr) in
              if sort bucket <> sort other then agree := false)
        in
        check_keys idx fresh;
        check_keys fresh idx;
        !agree
      end)

let build_many_matches_build =
  Helpers.qcheck ~count:40 "build_many equals per-constraint build"
    QCheck2.Gen.(int_range 1 500)
    (fun seed ->
      let _, g = random_world seed in
      let constrs = Discovery.discover ~max_bound:1000 g in
      let batch = Index.build_many g constrs in
      List.for_all2
        (fun c (c', idx) ->
          Constr.equal c c'
          &&
          let reference = Index.build g c in
          let agree = ref (Index.n_keys reference = Index.n_keys idx) in
          Index.iter reference (fun key bucket ->
              let sort arr = List.sort compare (Array.to_list arr) in
              if sort bucket <> sort (Index.lookup idx key) then agree := false);
          !agree)
        constrs batch)

(* A deliberately messy world: duplicate (parallel) edges, bidirectional
   pairs and self-loops — the shapes the CSR freeze collapses and the
   delta path has to renormalise. *)
let messy_world seed =
  let module Prng = Bpq_util.Prng in
  let r = Prng.create ((seed * 31) + 7) in
  let tbl = Label.create_table () in
  let labels =
    Array.init (3 + Prng.int r 3) (fun i -> Label.intern tbl (Printf.sprintf "L%d" i))
  in
  let b = Digraph.Builder.create tbl in
  let n = 12 + Prng.int r 20 in
  for _ = 1 to n do
    ignore (Digraph.Builder.add_node b (Prng.pick r labels) Value.Null)
  done;
  for _ = 1 to 3 * n do
    let s = Prng.int r n and d = Prng.int r n in
    Digraph.Builder.add_edge b s d;
    if Prng.bool r then Digraph.Builder.add_edge b d s;
    if Prng.int r 4 = 0 then Digraph.Builder.add_edge b s d (* duplicate *)
  done;
  for _ = 1 to 1 + (n / 6) do
    let v = Prng.int r n in
    Digraph.Builder.add_edge b v v
  done;
  (tbl, Digraph.Builder.freeze b, labels, r)

let random_constr r labels =
  let module Prng = Bpq_util.Prng in
  let target = Prng.pick r labels in
  let source =
    List.filter
      (fun l -> l <> target)
      (List.init (Prng.int r 3) (fun _ -> Prng.pick r labels))
  in
  Constr.make ~source ~target ~bound:1000

let same_buckets a b =
  let agree = ref (Index.n_keys a = Index.n_keys b) in
  let check x y =
    Index.iter x (fun key bucket ->
        let sort arr = List.sort compare (Array.to_list arr) in
        if sort bucket <> sort (Index.lookup y key) then agree := false)
  in
  check a b;
  check b a;
  !agree

let build_many_matches_build_messy =
  Helpers.qcheck ~count:60 "build_many equals build on multi-edge/self-loop graphs"
    QCheck2.Gen.(int_range 1 500)
    (fun seed ->
      let _, g, labels, r = messy_world seed in
      let constrs =
        List.init 6 (fun _ -> random_constr r labels) |> List.sort_uniq Constr.compare
      in
      let batch = Index.build_many g constrs in
      let pool = Bpq_util.Pool.create 3 in
      let batch_par = Index.build_many ~pool g constrs in
      Bpq_util.Pool.shutdown pool;
      List.for_all2
        (fun c ((c', idx), (c'', idx_par)) ->
          Constr.equal c c' && Constr.equal c c''
          && same_buckets (Index.build g c) idx
          && same_buckets idx idx_par)
        constrs
        (List.combine batch batch_par))

let delta_matches_rebuild_edge_cases =
  Helpers.qcheck ~count:60
    "apply_delta equals rebuild under self-loops and fresh target nodes"
    QCheck2.Gen.(int_range 1 500)
    (fun seed ->
      let module Prng = Bpq_util.Prng in
      let _, g, labels, r = messy_world seed in
      let c = random_constr r labels in
      let idx = Index.build g c in
      let n = Digraph.n_nodes g in
      let existing =
        let acc = ref [] in
        Digraph.iter_edges g (fun s t -> acc := (s, t) :: !acc);
        !acc
      in
      (* Fresh nodes n and n+1 both carry the target label (the type-1
         path must pick them up even with no incident edge for n+1's
         twin), n+2 carries a random label. *)
      let delta =
        { Digraph.added_nodes =
            [ (c.Constr.target, Value.Null);
              (c.Constr.target, Value.Null);
              (Prng.pick r labels, Value.Null) ];
          added_edges =
            [ (Prng.int r n, Prng.int r n);
              (Prng.int r n, Prng.int r n) (* possibly a duplicate *);
              (let v = Prng.int r n in
               (v, v));
              (* self-loop on an existing node *)
              (n, n);
              (* self-loop on a fresh target-labeled node *)
              (n, n + 1);
              (* edge between fresh nodes *)
              (Prng.int r n, n + 2);
              (n + 2, Prng.int r n) ];
          removed_edges =
            (* A few real edges, plus an edge that may not exist (removal
               of a non-edge must be a no-op). *)
            (Prng.int r n, Prng.int r n)
            :: List.filteri (fun i _ -> i < 5) existing }
      in
      let g' = Digraph.apply_delta g delta in
      Index.apply_delta idx ~old_graph:g ~new_graph:g' delta;
      same_buckets idx (Index.build g' c))

(* Keys of >= 2 nodes pack into one int; >= 3 spill to boxed list keys.
   Both paths must behave identically to the definition. *)
let test_spill_arity3 () =
  let tbl = Label.create_table () in
  (* 0:a 1:b 2:c 3:t 4:t 5:a — t3 touches a0,b1,c2; t4 touches a5,b1,c2. *)
  let g =
    Helpers.graph tbl
      [ ("a", Value.Null); ("b", Value.Null); ("c", Value.Null); ("t", Value.Null);
        ("t", Value.Null); ("a", Value.Null) ]
      [ (3, 0); (3, 1); (3, 2); (4, 5); (4, 1); (4, 2) ]
  in
  let l s = Label.intern tbl s in
  let c = Constr.make ~source:[ l "a"; l "b"; l "c" ] ~target:(l "t") ~bound:4 in
  let idx = Index.build g c in
  Helpers.check_true "t3 under (a0,b1,c2)" (Index.lookup idx [ 0; 1; 2 ] = [| 3 |]);
  Helpers.check_true "t4 under (a5,b1,c2)" (Index.lookup idx [ 5; 1; 2 ] = [| 4 |]);
  Helpers.check_true "key order irrelevant" (Index.lookup idx [ 2; 0; 1 ] = [| 3 |]);
  Helpers.check_int "count" 1 (Index.lookup_count idx [ 1; 2; 5 ]);
  Helpers.check_true "missing key" (Index.lookup idx [ 0; 1; 5 ] = [||]);
  Helpers.check_true "wrong arity finds nothing" (Index.lookup idx [ 0; 1 ] = [||]);
  let via_iter = ref [] in
  Index.lookup_tuple_iter idx [| 2; 1; 0 |] (fun w -> via_iter := w :: !via_iter);
  Helpers.check_true "tuple iter, unsorted key" (!via_iter = [ 3 ])

let spill_lookup_matches_naive =
  Helpers.qcheck ~count:60 "arity-3 (spilled) lookup equals naive scan"
    QCheck2.Gen.(int_range 1 500)
    (fun seed ->
      let tbl, g = random_world seed in
      let labels = Array.of_list (Label.all tbl) in
      let r = Bpq_util.Prng.create (seed + 7) in
      (* 4 labels in random_world: three distinct sources + the target. *)
      match Array.to_list labels with
      | [ s1; s2; s3; target ] ->
        let c = Constr.make ~source:[ s1; s2; s3 ] ~target ~bound:1000 in
        let idx = Index.build g c in
        let ok = ref true in
        for _ = 1 to 20 do
          let vs =
            List.filter_map
              (fun s ->
                let candidates = Digraph.nodes_with_label g s in
                if Array.length candidates = 0 then None
                else Some (Bpq_util.Prng.pick r candidates))
              [ s1; s2; s3 ]
          in
          if List.length vs = 3 then begin
            let got = List.sort compare (Array.to_list (Index.lookup idx vs)) in
            let want = List.sort compare (naive_common_neighbours g vs target) in
            if got <> want then ok := false;
            if Index.lookup_count idx vs <> List.length want then ok := false
          end
        done;
        !ok
      | _ -> QCheck2.assume_fail ())

(* The copy-free forms must report exactly what [lookup] materialises,
   for packed and spilled keys alike. *)
let iter_forms_match_lookup =
  Helpers.qcheck ~count:60 "lookup_iter/fold/lookup_tuple agree with lookup"
    QCheck2.Gen.(int_range 1 500)
    (fun seed ->
      let _, g, labels, r = messy_world seed in
      let c = random_constr r labels in
      let idx = Index.build g c in
      let ok = ref true in
      Index.iter idx (fun key want ->
          let want = Array.to_list want in
          let got_iter = ref [] in
          Index.lookup_iter idx key (fun w -> got_iter := w :: !got_iter);
          if List.rev !got_iter <> want then ok := false;
          let got_fold = Index.fold idx key (fun acc w -> w :: acc) [] in
          if List.rev got_fold <> want then ok := false;
          let tuple = Array.of_list key in
          if Array.to_list (Index.lookup_tuple idx tuple) <> want then ok := false;
          let got_tuple_iter = ref [] in
          Index.lookup_tuple_iter idx tuple (fun w -> got_tuple_iter := w :: !got_tuple_iter);
          if List.rev !got_tuple_iter <> want then ok := false);
      !ok)

let test_copy_is_independent () =
  let tbl, g = movie_world () in
  let c = Constr.make ~source:[ Label.intern tbl "movie" ] ~target:(Label.intern tbl "actor") ~bound:5 in
  let idx = Index.build g c in
  let snapshot = Index.copy idx in
  let delta = { Digraph.empty_delta with removed_edges = [ (3, 5) ] } in
  let g' = Digraph.apply_delta g delta in
  Index.apply_delta idx ~old_graph:g ~new_graph:g' delta;
  Helpers.check_int "mutated lost the edge" 0 (Index.lookup_count idx [ 3 ]);
  Helpers.check_int "copy kept it" 1 (Index.lookup_count snapshot [ 3 ])

let test_type1_delta_adds_new_nodes () =
  let tbl, g = movie_world () in
  let movie = Label.intern tbl "movie" in
  let c = Constr.make ~source:[] ~target:movie ~bound:10 in
  let idx = Index.build g c in
  let delta = { Digraph.empty_delta with added_nodes = [ (movie, Value.Null) ] } in
  let g' = Digraph.apply_delta g delta in
  Index.apply_delta idx ~old_graph:g ~new_graph:g' delta;
  Helpers.check_int "three movies now" 3 (Index.lookup_count idx [])

let suite =
  [ Alcotest.test_case "type-1 lookup" `Quick test_type1_lookup;
    Alcotest.test_case "pair lookup" `Quick test_pair_lookup;
    Alcotest.test_case "violation detected" `Quick test_violation_detected;
    Alcotest.test_case "size counts keys and payload" `Quick test_size_counts_keys_and_payload;
    lookup_matches_naive;
    incremental_matches_rebuild;
    build_many_matches_build;
    build_many_matches_build_messy;
    delta_matches_rebuild_edge_cases;
    Alcotest.test_case "spill path (arity 3)" `Quick test_spill_arity3;
    spill_lookup_matches_naive;
    iter_forms_match_lookup;
    Alcotest.test_case "copy is independent" `Quick test_copy_is_independent;
    Alcotest.test_case "type-1 delta adds new nodes" `Quick test_type1_delta_adds_new_nodes ]
