(* The domain pool: order preservation, exception propagation, nesting,
   and the end-to-end determinism contract — a parallel run must be
   byte-identical to a sequential one for everything except wall-clock
   readings. *)

open Bpq_pattern
open Bpq_core
open Bpq_access
module Pool = Bpq_util.Pool
module Prng = Bpq_util.Prng
module W = Bpq_workload.Workload

let with_pool n f =
  let pool = Pool.create n in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let test_map_array_order () =
  List.iter
    (fun slots ->
      with_pool slots (fun pool ->
          List.iter
            (fun n ->
              let input = Array.init n (fun i -> i) in
              let f i = (i * 37) mod 101 in
              Helpers.check_true
                (Printf.sprintf "slots=%d n=%d" slots n)
                (Pool.map_array pool f input = Array.map f input))
            [ 0; 1; 2; 7; 100; 1000 ]))
    [ 1; 2; 4 ]

let test_map_list_order () =
  with_pool 3 (fun pool ->
      let l = List.init 257 (fun i -> i) in
      Helpers.check_true "map_list order"
        (Pool.map_list pool (fun i -> i * i) l = List.map (fun i -> i * i) l))

let test_exception_propagation () =
  with_pool 4 (fun pool ->
      let raised =
        try
          ignore
            (Pool.map_array pool
               (fun i -> if i mod 3 = 1 then failwith (string_of_int i) else i)
               (Array.init 64 (fun i -> i)));
          None
        with Failure msg -> Some msg
      in
      (* Deterministic regardless of scheduling: the error with the
         smallest input index wins. *)
      Helpers.check_true "first error in input order" (raised = Some "1"))

let test_nested_maps_complete () =
  (* The caller participates in its own map, so nesting on one pool must
     terminate even with every worker busy. *)
  with_pool 2 (fun pool ->
      let got =
        Pool.map_array pool
          (fun i ->
            Array.fold_left ( + ) 0
              (Pool.map_array pool (fun j -> i + j) (Array.init 20 Fun.id)))
          (Array.init 16 Fun.id)
      in
      let want = Array.init 16 (fun i -> (20 * i) + 190) in
      Helpers.check_true "nested maps" (got = want))

let test_shutdown_degrades () =
  let pool = Pool.create 4 in
  Helpers.check_int "slots" 4 (Pool.size pool);
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* idempotent *)
  Helpers.check_true "sequential after shutdown"
    (Pool.map_list pool string_of_int [ 1; 2; 3 ] = [ "1"; "2"; "3" ])

let test_create_clamps () =
  let p = Pool.create 0 in
  Helpers.check_int "clamped to 1" 1 (Pool.size p);
  Pool.shutdown p;
  Helpers.check_int "sequential pool" 1 (Pool.size Pool.sequential)

(* Bit-identity of parallel index builds: dump every index in iteration
   order (not sorted — same insertion sequence must mean same Hashtbl
   state) and compare against the sequential build. *)
let dump_index idx =
  let acc = ref [] in
  Index.iter idx (fun key bucket -> acc := (key, Array.to_list bucket) :: !acc);
  List.rev !acc

let test_parallel_build_identical () =
  let _, g, constrs, _ = Helpers.random_instance 99 in
  let seq = Index.build_many g constrs in
  with_pool 4 (fun pool ->
      let par = Index.build_many ~pool g constrs in
      Helpers.check_true "same constraints in same order"
        (List.map fst seq = List.map fst par);
      List.iter2
        (fun (_, a) (_, b) ->
          Helpers.check_true "identical buckets" (dump_index a = dump_index b))
        seq par)

(* The determinism acceptance test: a small Fig. 5-style sweep —
   boundedness verdict and answer size per query under both semantics,
   rendered without wall-clock columns — must be byte-identical between
   a sequential run and a 4-slot pool. *)
let sweep_table pool =
  let ds = W.imdb ~pool ~scale:0.02 () in
  let rng = Prng.create 515 in
  let queries = Qgen.workload rng ds.W.graph 12 in
  let ds = W.align ~pool ds queries in
  let row semantics =
    Batch.eval_patterns ~pool semantics ds.W.schema queries
    |> List.map (fun (_, o) ->
           match o with
           | None -> "unbounded"
           | Some (Batch.Answer (a, _)) -> string_of_int (Batch.answer_size a)
           | Some (Batch.Timeout _) -> "dnf")
    |> String.concat " "
  in
  row Actualized.Subgraph ^ "\n" ^ row Actualized.Simulation

let test_sweep_deterministic () =
  let seq = sweep_table Pool.sequential in
  let par = with_pool 4 sweep_table in
  Helpers.check_true "sequential vs 4-slot sweep byte-identical" (seq = par)

let suite =
  [ Alcotest.test_case "map_array preserves order" `Quick test_map_array_order;
    Alcotest.test_case "map_list preserves order" `Quick test_map_list_order;
    Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
    Alcotest.test_case "nested maps complete" `Quick test_nested_maps_complete;
    Alcotest.test_case "shutdown degrades to sequential" `Quick test_shutdown_degrades;
    Alcotest.test_case "create clamps slot count" `Quick test_create_clamps;
    Alcotest.test_case "parallel index build identical" `Quick test_parallel_build_identical;
    Alcotest.test_case "parallel sweep byte-identical" `Quick test_sweep_deterministic ]
