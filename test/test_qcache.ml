(* The cross-query cache's contract: answers byte-identical to uncached
   evaluation at every capacity, under pools, and across deltas; hit
   counters that account for every tier. *)

open Bpq_graph
open Bpq_pattern
open Bpq_access
open Bpq_core
module W = Bpq_workload.Workload
module Pool = Bpq_util.Pool
module Prng = Bpq_util.Prng

let world () =
  let ds = W.imdb ~scale:0.01 () in
  let a0 = W.a0 ds.table in
  (ds, Schema.build ds.graph a0)

let uncached semantics schema q =
  match Bounded_eval.plan_for semantics schema q with
  | None -> None
  | Some plan ->
    Some
      (match semantics with
       | Actualized.Subgraph -> Qcache.Matches (Bounded_eval.bvf2_matches schema plan)
       | Actualized.Simulation -> Qcache.Relation (Bounded_eval.bsim schema plan))

let windows ds n =
  let t0 = W.t0 ds.W.table in
  List.init n (fun i ->
      Template.instantiate t0
        [ ("lo", Value.Int (2004 + i)); ("hi", Value.Int (2007 + i)) ])

let test_template_plan_sharing () =
  let ds, schema = world () in
  let qs = windows ds 4 in
  let c = Qcache.create () in
  let first = List.map (fun q -> Qcache.eval c Actualized.Subgraph schema q) qs in
  List.iter2
    (fun q a ->
      Helpers.check_true "matches uncached" (a = uncached Actualized.Subgraph schema q))
    qs first;
  let s = Qcache.stats c in
  Helpers.check_int "one planning run for the template" 1 s.Qcache.plan_misses;
  Helpers.check_int "other instantiations hit" 3 s.Qcache.plan_hits;
  Helpers.check_int "all results were cold" 4 s.Qcache.result_misses;
  Helpers.check_int "no result hits yet" 0 s.Qcache.result_hits;
  Helpers.check_true "fetch buckets shared across instantiations"
    (s.Qcache.fetch_hits > 0);
  let second = List.map (fun q -> Qcache.eval c Actualized.Subgraph schema q) qs in
  Helpers.check_true "warm answers byte-identical" (first = second);
  let s' = Qcache.stats c in
  Helpers.check_int "warm pass served by the result tier" 4
    (s'.Qcache.result_hits - s.Qcache.result_hits)

let test_capacity_extremes () =
  let ds, schema = world () in
  let qs = windows ds 3 in
  let baseline = List.map (uncached Actualized.Subgraph schema) qs in
  List.iter
    (fun c ->
      (* Two passes: the second exercises whatever survived eviction. *)
      for _ = 1 to 2 do
        List.iter2
          (fun q b ->
            Helpers.check_true "capacity never changes answers"
              (Qcache.eval c Actualized.Subgraph schema q = b))
          qs baseline
      done)
    [ Qcache.create ();
      Qcache.create ~plan_capacity:1 ~fetch_capacity:1 ~result_capacity:1 ();
      Qcache.create ~plan_capacity:0 ~fetch_capacity:0 ~result_capacity:0 () ]

let test_negative_plan_cached () =
  let tbl = Label.create_table () in
  let g = W.g1 tbl ~n:3 in
  let schema = Schema.build g (W.a1 tbl) in
  let c = Qcache.create () in
  Helpers.check_true "unbounded query yields None"
    (Qcache.eval c Actualized.Simulation schema (W.q1 tbl) = None);
  Helpers.check_true "still None on re-ask"
    (Qcache.eval c Actualized.Simulation schema (W.q1 tbl) = None);
  let s = Qcache.stats c in
  Helpers.check_int "negative entry planned once" 1 s.Qcache.plan_misses;
  Helpers.check_int "negative entry hit" 1 s.Qcache.plan_hits

let test_delta_invalidation () =
  let ds, schema = world () in
  let q0 = W.q0 ds.table in
  let c = Qcache.create () in
  let first = Qcache.eval c Actualized.Subgraph schema q0 in
  (* Irrelevant delta (genre-genre edge): bumps only the genre label, so
     the q0 entry stays warm. *)
  let genres = Digraph.nodes_with_label ds.graph (Label.intern ds.table "genre") in
  let d1 = { Digraph.empty_delta with added_edges = [ (genres.(0), genres.(1)) ] } in
  Qcache.note_delta c (Schema.graph schema) d1;
  let schema1 = Schema.apply_delta schema d1 in
  let s0 = Qcache.stats c in
  let second = Qcache.eval c Actualized.Subgraph schema1 q0 in
  let s1 = Qcache.stats c in
  Helpers.check_int "irrelevant delta keeps the entry warm" 1
    (s1.Qcache.result_hits - s0.Qcache.result_hits);
  Helpers.check_true "warm answer unchanged" (second = first);
  (* Relevant delta: destroy a match's actor->country edge.  The actor
     and country generations move, the entry goes stale, and the refresh
     agrees with uncached evaluation. *)
  match first with
  | Some (Qcache.Matches (m :: _)) ->
    let d2 = { Digraph.empty_delta with removed_edges = [ (m.(3), m.(5)) ] } in
    Qcache.note_delta c (Schema.graph schema1) d2;
    let schema2 = Schema.apply_delta schema1 d2 in
    let third = Qcache.eval c Actualized.Subgraph schema2 q0 in
    let s2 = Qcache.stats c in
    Helpers.check_int "relevant delta stales the entry" 1 s2.Qcache.result_stale;
    Helpers.check_true "refresh equals uncached"
      (third = uncached Actualized.Subgraph schema2 q0);
    Helpers.check_true "answer actually changed" (third <> first)
  | _ -> Alcotest.fail "expected q0 matches in the small world"

let test_pool_identity () =
  let ds, schema = world () in
  let qs = windows ds 6 in
  let answers l =
    List.map
      (fun (_, o) ->
        match o with Some (Batch.Answer (a, _)) -> Some a | Some (Batch.Timeout _) | None -> None)
      l
  in
  let baseline = answers (Batch.eval_patterns Actualized.Subgraph schema qs) in
  let pool = Pool.create 3 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let cache = Qcache.create () in
  let cold = answers (Batch.eval_patterns ~pool ~cache Actualized.Subgraph schema qs) in
  let warm = answers (Batch.eval_patterns ~pool ~cache Actualized.Subgraph schema qs) in
  Helpers.check_true "pooled cached equals sequential uncached" (cold = baseline);
  Helpers.check_true "warm pooled equals baseline" (warm = baseline)

(* Random workloads with interleaved deltas, three cache capacities, both
   semantics, every query asked twice per round (the re-ask rides the
   result tier).  Everything must equal uncached evaluation byte for
   byte. *)
let cached_equals_uncached_across_deltas =
  Helpers.qcheck ~count:20 "cached = uncached across capacities and interleaved deltas"
    QCheck2.Gen.(int_range 1 100_000)
    (fun seed ->
      let _, g, constrs, r = Helpers.random_instance seed in
      let schema = ref (Schema.build g constrs) in
      let queries = List.init 3 (fun _ -> Qgen.from_walk r g) in
      let caches =
        [ Qcache.create ();
          Qcache.create ~plan_capacity:1 ~fetch_capacity:1 ~result_capacity:1 ();
          Qcache.create ~plan_capacity:0 ~fetch_capacity:0 ~result_capacity:0 () ]
      in
      let ok = ref true in
      for _round = 1 to 3 do
        List.iter
          (fun q ->
            List.iter
              (fun semantics ->
                let base = uncached semantics !schema q in
                List.iter
                  (fun c ->
                    if Qcache.eval c semantics !schema q <> base then ok := false;
                    if Qcache.eval c semantics !schema q <> base then ok := false)
                  caches)
              [ Actualized.Subgraph; Actualized.Simulation ])
          queries;
        let graph = Schema.graph !schema in
        let n = Digraph.n_nodes graph in
        let existing =
          let acc = ref [] in
          Digraph.iter_edges graph (fun s d -> acc := (s, d) :: !acc);
          !acc
        in
        let delta =
          { Digraph.added_nodes = [];
            added_edges = [ (Prng.int r n, Prng.int r n) ];
            removed_edges =
              (match existing with
               | [] -> []
               | es -> [ List.nth es (Prng.int r (List.length es)) ]) }
        in
        List.iter (fun c -> Qcache.note_delta c graph delta) caches;
        schema := Schema.apply_delta !schema delta
      done;
      !ok)

let suite =
  [ Alcotest.test_case "template plan sharing" `Quick test_template_plan_sharing;
    Alcotest.test_case "capacity extremes" `Quick test_capacity_extremes;
    Alcotest.test_case "negative plan cached" `Quick test_negative_plan_cached;
    Alcotest.test_case "delta invalidation" `Quick test_delta_invalidation;
    Alcotest.test_case "pool identity" `Quick test_pool_identity;
    cached_equals_uncached_across_deltas ]
