open Bpq_graph
open Bpq_pattern

(* Predicate *)

let test_predicate_eval () =
  let p =
    Predicate.conj (Predicate.atom Value.Ge (Value.Int 5)) (Predicate.atom Value.Le (Value.Int 8))
  in
  Helpers.check_true "in range" (Predicate.eval p (Value.Int 6));
  Helpers.check_true "boundary lo" (Predicate.eval p (Value.Int 5));
  Helpers.check_true "boundary hi" (Predicate.eval p (Value.Int 8));
  Helpers.check_false "below" (Predicate.eval p (Value.Int 4));
  Helpers.check_false "above" (Predicate.eval p (Value.Int 9));
  Helpers.check_false "null fails ordering" (Predicate.eval p Value.Null);
  Helpers.check_true "empty conjunction is true" (Predicate.eval Predicate.true_ Value.Null)

let test_predicate_string_equality () =
  let p = Predicate.atom Value.Eq (Value.Str "fr") in
  Helpers.check_true "equal string" (Predicate.eval p (Value.Str "fr"));
  Helpers.check_false "different string" (Predicate.eval p (Value.Str "de"));
  Helpers.check_false "int vs string" (Predicate.eval p (Value.Int 3))

let test_predicate_strict_ops () =
  let lt = Predicate.atom Value.Lt (Value.Int 3) and gt = Predicate.atom Value.Gt (Value.Int 3) in
  Helpers.check_true "lt" (Predicate.eval lt (Value.Int 2));
  Helpers.check_false "lt equal" (Predicate.eval lt (Value.Int 3));
  Helpers.check_true "gt" (Predicate.eval gt (Value.Int 4));
  Helpers.check_false "gt equal" (Predicate.eval gt (Value.Int 3))

let test_predicate_misc () =
  Helpers.check_int "arity" 2
    (Predicate.arity (Predicate.conj (Predicate.atom Value.Eq (Value.Int 1)) (Predicate.atom Value.Lt (Value.Int 9))));
  Helpers.check_true "equal up to order"
    (Predicate.equal
       (Predicate.conj (Predicate.atom Value.Eq (Value.Int 1)) (Predicate.atom Value.Lt (Value.Int 9)))
       (Predicate.conj (Predicate.atom Value.Lt (Value.Int 9)) (Predicate.atom Value.Eq (Value.Int 1))));
  Alcotest.(check string) "to_string" ">= 2011 & <= 2013"
    (Predicate.to_string
       (Predicate.conj (Predicate.atom Value.Ge (Value.Int 2011)) (Predicate.atom Value.Le (Value.Int 2013))))

(* Value *)

let test_value_compare () =
  Helpers.check_true "null < int" (Value.compare Value.Null (Value.Int 0) < 0);
  Helpers.check_true "int < str" (Value.compare (Value.Int 99) (Value.Str "a") < 0);
  Helpers.check_true "int order" (Value.compare (Value.Int 1) (Value.Int 2) < 0);
  Helpers.check_true "str order" (Value.compare (Value.Str "a") (Value.Str "b") < 0);
  Helpers.check_true "equal" (Value.equal (Value.Str "x") (Value.Str "x"))

let test_value_strings () =
  Alcotest.(check string) "null" "null" (Value.to_string Value.Null);
  Alcotest.(check string) "int" "7" (Value.to_string (Value.Int 7));
  Alcotest.(check string) "str" "\"hi\"" (Value.to_string (Value.Str "hi"));
  Helpers.check_true "op roundtrip"
    (List.for_all
       (fun op -> Value.op_of_string (Value.op_to_string op) = Some op)
       [ Value.Eq; Value.Lt; Value.Gt; Value.Le; Value.Ge ]);
  Helpers.check_true "unknown op" (Value.op_of_string "!=" = None)

(* Pattern structure *)

let diamond tbl =
  Helpers.pattern tbl
    [ ("A", Predicate.true_); ("B", Predicate.true_); ("B", Predicate.true_); ("C", Predicate.true_) ]
    [ (0, 1); (0, 2); (1, 3); (2, 3) ]

let test_pattern_structure () =
  let tbl = Label.create_table () in
  let q = diamond tbl in
  Helpers.check_int "nodes" 4 (Pattern.n_nodes q);
  Helpers.check_int "edges" 4 (Pattern.n_edges q);
  Helpers.check_int "size" 8 (Pattern.size q);
  Helpers.check_true "children of 0" (List.sort compare (Pattern.children q 0) = [ 1; 2 ]);
  Helpers.check_true "parents of 3" (List.sort compare (Pattern.parents q 3) = [ 1; 2 ]);
  Helpers.check_true "neighbours of 1" (Pattern.neighbours q 1 = [ 0; 3 ]);
  Helpers.check_true "has_edge" (Pattern.has_edge q 0 1);
  Helpers.check_false "no reverse edge" (Pattern.has_edge q 1 0);
  Helpers.check_int "out degree" 2 (Pattern.out_degree q 0);
  Helpers.check_int "in degree" 2 (Pattern.in_degree q 3);
  Helpers.check_true "connected" (Pattern.is_connected q);
  Helpers.check_int "labels used" 3 (List.length (Pattern.labels_used q))

let test_pattern_disconnected () =
  let tbl = Label.create_table () in
  let q =
    Helpers.pattern tbl [ ("A", Predicate.true_); ("B", Predicate.true_) ] []
  in
  Helpers.check_false "two isolated nodes" (Pattern.is_connected q)

let test_pattern_dedups_edges () =
  let tbl = Label.create_table () in
  let q =
    Helpers.pattern tbl [ ("A", Predicate.true_); ("B", Predicate.true_) ] [ (0, 1); (0, 1) ]
  in
  Helpers.check_int "one edge" 1 (Pattern.n_edges q)

let test_pattern_rejects_bad_edge () =
  let tbl = Label.create_table () in
  Alcotest.check_raises "endpoint out of range"
    (Invalid_argument "Pattern.create: bad endpoint") (fun () ->
      ignore (Helpers.pattern tbl [ ("A", Predicate.true_) ] [ (0, 1) ]))

let test_pred_count () =
  let tbl = Label.create_table () in
  let q =
    Helpers.pattern tbl
      [ ("A", Predicate.atom Value.Eq (Value.Int 1));
        ( "B",
          Predicate.conj (Predicate.atom Value.Ge (Value.Int 0)) (Predicate.atom Value.Le (Value.Int 9)) ) ]
      [ (0, 1) ]
  in
  Helpers.check_int "atoms" 3 (Pattern.pred_count q)

(* Parser *)

let test_parser_roundtrip () =
  let tbl = Label.create_table () in
  let src = "n a award\nn y year >=2011 <=2013\nn m movie\ne m a\ne m y\n" in
  let q = Pattern_parser.parse_string tbl src in
  Helpers.check_int "nodes" 3 (Pattern.n_nodes q);
  Helpers.check_int "edges" 2 (Pattern.n_edges q);
  Helpers.check_int "predicates" 2 (Pattern.pred_count q);
  let q2 = Pattern_parser.parse_string tbl (Pattern_parser.to_source q) in
  Helpers.check_int "roundtrip nodes" (Pattern.n_nodes q) (Pattern.n_nodes q2);
  Helpers.check_true "roundtrip edges" (Pattern.edges q = Pattern.edges q2);
  Helpers.check_true "roundtrip preds"
    (List.for_all2 Bpq_pattern.Predicate.equal
       (List.init 3 (Pattern.pred q))
       (List.init 3 (Pattern.pred q2)))

let test_parser_string_atom () =
  let tbl = Label.create_table () in
  let q = Pattern_parser.parse_string tbl "n c country =\"france\"\n" in
  Helpers.check_true "string predicate"
    (Predicate.eval (Pattern.pred q 0) (Value.Str "france"))

let test_parser_comments_and_blanks () =
  let tbl = Label.create_table () in
  let q = Pattern_parser.parse_string tbl "# header\n\nn x A\n  \n# tail\n" in
  Helpers.check_int "one node" 1 (Pattern.n_nodes q)

let expect_failure name src =
  Alcotest.test_case name `Quick (fun () ->
      let tbl = Label.create_table () in
      match Pattern_parser.parse_string tbl src with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "expected parse failure")

(* Canonical fingerprints *)

module Prng = Bpq_util.Prng

let shuffle r n =
  let a = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Prng.int r (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  a

let random_pattern tbl r =
  let n = 2 + Prng.int r 5 in
  let labels =
    Array.init n (fun _ -> Label.intern tbl (Printf.sprintf "L%d" (Prng.int r 3)))
  in
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && Prng.int r 4 = 0 then edges := (i, j) :: !edges
    done
  done;
  let edges = if !edges = [] then [ (0, 1) ] else !edges in
  Pattern.create tbl (Array.map (fun l -> (l, Predicate.true_)) labels) edges

let permute_pattern tbl q perm =
  let n = Pattern.n_nodes q in
  let nodes = Array.make n (0, Predicate.true_) in
  for u = 0 to n - 1 do
    nodes.(perm.(u)) <- (Pattern.label q u, Pattern.pred q u)
  done;
  Pattern.create tbl nodes
    (List.map (fun (s, t) -> (perm.(s), perm.(t))) (Pattern.edges q))

let fingerprint_permutation_invariant =
  Helpers.qcheck "fingerprint is invariant under node renumbering"
    QCheck2.Gen.(int_range 1 1_000_000)
    (fun seed ->
      let tbl = Label.create_table () in
      let r = Prng.create seed in
      let q = random_pattern tbl r in
      let perm = shuffle r (Pattern.n_nodes q) in
      Pattern.fingerprint q = Pattern.fingerprint (permute_pattern tbl q perm))

let canonical_perm_is_permutation =
  Helpers.qcheck "canonicalize returns a valid permutation"
    QCheck2.Gen.(int_range 1 1_000_000)
    (fun seed ->
      let tbl = Label.create_table () in
      let r = Prng.create seed in
      let q = random_pattern tbl r in
      let _, pos = Pattern.canonicalize q in
      let n = Pattern.n_nodes q in
      Array.length pos = n
      && List.sort_uniq compare (Array.to_list pos) = List.init n (fun i -> i))

let fingerprint_ignores_predicates =
  Helpers.qcheck "fingerprint ignores predicates"
    QCheck2.Gen.(int_range 1 1_000_000)
    (fun seed ->
      let tbl = Label.create_table () in
      let r = Prng.create seed in
      let q = random_pattern tbl r in
      let with_preds =
        Pattern.create tbl
          (Array.init (Pattern.n_nodes q) (fun u ->
               ( Pattern.label q u,
                 Predicate.atom Value.Ge (Value.Int (Prng.int r 100)) )))
          (Pattern.edges q)
      in
      Pattern.fingerprint q = Pattern.fingerprint with_preds)

let test_fingerprint_distinguishes () =
  let tbl = Label.create_table () in
  let path = Helpers.pattern tbl [ ("A", Predicate.true_); ("A", Predicate.true_); ("A", Predicate.true_) ] [ (0, 1); (1, 2) ] in
  let triangle = Helpers.pattern tbl [ ("A", Predicate.true_); ("A", Predicate.true_); ("A", Predicate.true_) ] [ (0, 1); (1, 2); (2, 0) ] in
  let relabeled = Helpers.pattern tbl [ ("A", Predicate.true_); ("A", Predicate.true_); ("B", Predicate.true_) ] [ (0, 1); (1, 2) ] in
  Helpers.check_true "path vs triangle"
    (Pattern.fingerprint path <> Pattern.fingerprint triangle);
  Helpers.check_true "label change"
    (Pattern.fingerprint path <> Pattern.fingerprint relabeled);
  Helpers.check_true "reversed edge"
    (Pattern.fingerprint relabeled
    <> Pattern.fingerprint
         (Helpers.pattern tbl [ ("A", Predicate.true_); ("A", Predicate.true_); ("B", Predicate.true_) ] [ (0, 1); (2, 1) ]))

let test_template_instantiations_share_fingerprint () =
  let tbl = Label.create_table () in
  let l = Label.intern tbl in
  let t =
    Template.create tbl
      [| (l "A", []);
         (l "B", [ { Template.op = Value.Ge; operand = Template.Param "x" } ]) |]
      [ (0, 1) ]
  in
  let q1 = Template.instantiate t [ ("x", Value.Int 1) ] in
  let q2 = Template.instantiate t [ ("x", Value.Int 999) ] in
  Helpers.check_true "instantiations share fingerprint"
    (Pattern.fingerprint q1 = Pattern.fingerprint q2);
  Helpers.check_true "skeleton shares fingerprint"
    (Pattern.fingerprint (Template.skeleton t) = Pattern.fingerprint q1)

let suite =
  [ Alcotest.test_case "predicate eval" `Quick test_predicate_eval;
    Alcotest.test_case "predicate string equality" `Quick test_predicate_string_equality;
    Alcotest.test_case "predicate strict ops" `Quick test_predicate_strict_ops;
    Alcotest.test_case "predicate misc" `Quick test_predicate_misc;
    Alcotest.test_case "value compare" `Quick test_value_compare;
    Alcotest.test_case "value strings" `Quick test_value_strings;
    Alcotest.test_case "pattern structure" `Quick test_pattern_structure;
    Alcotest.test_case "pattern disconnected" `Quick test_pattern_disconnected;
    Alcotest.test_case "pattern dedups edges" `Quick test_pattern_dedups_edges;
    Alcotest.test_case "pattern rejects bad edge" `Quick test_pattern_rejects_bad_edge;
    Alcotest.test_case "pred count" `Quick test_pred_count;
    Alcotest.test_case "parser roundtrip" `Quick test_parser_roundtrip;
    Alcotest.test_case "parser string atom" `Quick test_parser_string_atom;
    Alcotest.test_case "parser comments" `Quick test_parser_comments_and_blanks;
    expect_failure "parser rejects duplicate node" "n x A\nn x B\n";
    expect_failure "parser rejects unknown edge endpoint" "n x A\ne x y\n";
    expect_failure "parser rejects bad atom" "n x A >>3\n";
    expect_failure "parser rejects unknown decl" "q x A\n";
    fingerprint_permutation_invariant;
    canonical_perm_is_permutation;
    fingerprint_ignores_predicates;
    Alcotest.test_case "fingerprint distinguishes" `Quick test_fingerprint_distinguishes;
    Alcotest.test_case "template instantiations share fingerprint" `Quick
      test_template_instantiations_share_fingerprint ]
