open Bpq_graph
open Bpq_pattern
open Bpq_access
open Bpq_core
module W = Bpq_workload.Workload

(* End-to-end pipeline checks: plan execution must deliver a G_Q with
   Q(G_Q) = Q(G) for both semantics, and stay within the plan's bounds. *)

let imdb = lazy (W.imdb ~scale:0.03 ())

let q0_setup () =
  let ds = Lazy.force imdb in
  let q0 = W.q0 ds.table in
  let a0 = W.a0 ds.table in
  let schema = Schema.build ds.graph a0 in
  let plan = Qplan.generate_exn Actualized.Subgraph q0 a0 in
  (ds, q0, schema, plan)

let test_gq_is_subgraph () =
  let ds, _, schema, plan = q0_setup () in
  let r = Exec.run schema plan in
  (* Every G_Q node corresponds to a G node with the same label/value, and
     every G_Q edge exists in G. *)
  Digraph.iter_nodes r.gq (fun v ->
      let orig = r.from_gq.(v) in
      Helpers.check_int "label preserved" (Digraph.label ds.graph orig) (Digraph.label r.gq v);
      Helpers.check_true "value preserved"
        (Value.equal (Digraph.value ds.graph orig) (Digraph.value r.gq v)));
  Digraph.iter_edges r.gq (fun s t ->
      Helpers.check_true "edge exists in G"
        (Digraph.has_edge ds.graph r.from_gq.(s) r.from_gq.(t)))

let test_gq_within_bounds () =
  let _, _, schema, plan = q0_setup () in
  let r = Exec.run schema plan in
  Helpers.check_true "nodes within bound" (Digraph.n_nodes r.gq <= Plan.node_bound plan);
  Helpers.check_true "edges within bound" (Digraph.n_edges r.gq <= Plan.edge_bound plan);
  Helpers.check_true "accessed within bounds"
    (Exec.accessed r.stats <= Plan.node_bound plan + Plan.edge_bound plan)

let test_candidates_satisfy_predicates () =
  let ds, q0, schema, plan = q0_setup () in
  let r = Exec.run schema plan in
  Array.iteri
    (fun u cands ->
      Array.iter
        (fun v ->
          Helpers.check_int "label" (Pattern.label q0 u) (Digraph.label ds.graph v);
          Helpers.check_true "predicate"
            (Predicate.eval (Pattern.pred q0 u) (Digraph.value ds.graph v)))
        cands)
    r.candidates_g

let test_bvf2_equals_vf2_on_q0 () =
  let ds, q0, schema, plan = q0_setup () in
  let got = Helpers.sort_matches (Bounded_eval.bvf2_matches schema plan) in
  let want = Helpers.sort_matches (Bpq_matcher.Vf2.matches ds.graph q0) in
  Helpers.check_true "nonempty answer" (want <> []);
  Helpers.check_true "answers agree" (got = want)

let test_bvf2_count_and_limit () =
  let _, _, schema, plan = q0_setup () in
  let n = Bounded_eval.bvf2_count schema plan in
  Helpers.check_true "positive" (n > 0);
  Helpers.check_int "limit respected" (min n 3) (Bounded_eval.bvf2_count ~limit:3 schema plan)

let test_empty_answer_when_predicate_unsatisfiable () =
  let ds = Lazy.force imdb in
  let a0 = W.a0 ds.table in
  let l = Label.intern ds.table in
  let q =
    Pattern.create ds.table
      [| (l "award", Predicate.true_);
         (l "year", Predicate.atom Value.Ge (Value.Int 5000));
         (l "movie", Predicate.true_) |]
      [ (2, 0); (2, 1) ]
  in
  let schema = Schema.build ds.graph a0 in
  let plan = Qplan.generate_exn Actualized.Subgraph q a0 in
  Helpers.check_int "no matches" 0 (Bounded_eval.bvf2_count schema plan);
  let r = Exec.run schema plan in
  Helpers.check_int "no year candidates" 0 (Array.length r.candidates_g.(1))

let test_bsim_on_g1 () =
  (* Example 11's scenario: Q2 evaluated on G1 through its plan. *)
  let tbl = Label.create_table () in
  let g1 = W.g1 tbl ~n:8 in
  let a1 = W.a1 tbl in
  let schema = Schema.build g1 a1 in
  let plan = Qplan.generate_exn Actualized.Simulation (W.q2 tbl) a1 in
  let got = Bounded_eval.bsim schema plan in
  let want = Bpq_matcher.Gsim.run g1 (W.q2 tbl) in
  Helpers.check_true "Q2(G1) = empty (Example 9)" (Bpq_matcher.Gsim.is_empty got);
  Helpers.check_true "agrees with gsim" (Helpers.norm_sim got = Helpers.norm_sim want)

let test_bsim_nonempty_case () =
  let tbl = Label.create_table () in
  (* B -> A chain world where the simulation answer is non-empty. *)
  let g =
    Helpers.graph tbl
      [ ("A", Value.Null); ("B", Value.Null); ("A", Value.Null); ("B", Value.Null) ]
      [ (1, 0); (3, 2); (0, 3) ]
  in
  let l = Label.intern tbl in
  let a =
    [ Constr.make ~source:[] ~target:(l "A") ~bound:4;
      Constr.make ~source:[ l "B" ] ~target:(l "A") ~bound:2;
      Constr.make ~source:[ l "A" ] ~target:(l "B") ~bound:2 ]
  in
  let q = Helpers.pattern tbl [ ("B", Predicate.true_); ("A", Predicate.true_) ] [ (0, 1) ] in
  let schema = Schema.build g a in
  match Qplan.generate Actualized.Simulation q a with
  | None -> Alcotest.fail "expected a simulation plan"
  | Some plan ->
    let got = Bounded_eval.bsim schema plan in
    let want = Bpq_matcher.Gsim.run g q in
    Helpers.check_true "non-empty" (not (Bpq_matcher.Gsim.is_empty want));
    Helpers.check_true "agrees" (Helpers.norm_sim got = Helpers.norm_sim want)

(* The headline soundness property: on random instances, whenever the
   query is effectively bounded, the bounded evaluation equals the full
   evaluation — for both semantics. *)
let pipeline_soundness_subgraph =
  Helpers.qcheck ~count:120 "bVF2 = VF2 on random bounded instances"
    QCheck2.Gen.(int_range 1 100_000)
    (fun seed ->
      let _, g, constrs, r = Helpers.random_instance seed in
      let schema = Schema.build g constrs in
      let q =
        if Bpq_util.Prng.bool r then Bpq_pattern.Qgen.from_walk r g
        else Bpq_pattern.Qgen.random r g
      in
      match Qplan.generate Actualized.Subgraph q constrs with
      | None -> true
      | Some plan ->
        Helpers.sort_matches (Bounded_eval.bvf2_matches schema plan)
        = Helpers.sort_matches (Bpq_matcher.Vf2.matches g q))

let pipeline_soundness_simulation =
  Helpers.qcheck ~count:120 "bSim = gsim on random bounded instances"
    QCheck2.Gen.(int_range 1 100_000)
    (fun seed ->
      let _, g, constrs, r = Helpers.random_instance seed in
      let schema = Schema.build g constrs in
      let q =
        if Bpq_util.Prng.bool r then Bpq_pattern.Qgen.from_walk r g
        else Bpq_pattern.Qgen.random r g
      in
      match Qplan.generate Actualized.Simulation q constrs with
      | None -> true
      | Some plan ->
        Helpers.norm_sim (Bounded_eval.bsim schema plan)
        = Helpers.norm_sim (Bpq_matcher.Gsim.run g q))

let gq_bounds_hold =
  Helpers.qcheck ~count:80 "G_Q never exceeds the plan's static bounds"
    QCheck2.Gen.(int_range 1 100_000)
    (fun seed ->
      let _, g, constrs, r = Helpers.random_instance seed in
      let schema = Schema.build g constrs in
      let q = Bpq_pattern.Qgen.random r g in
      match Qplan.generate Actualized.Subgraph q constrs with
      | None -> true
      | Some plan ->
        let res = Exec.run schema plan in
        Digraph.n_nodes res.gq <= Plan.node_bound plan
        && Digraph.n_edges res.gq <= Plan.edge_bound plan)

let test_predicate_value_cap () =
  let open Bpq_pattern in
  let cap = Qplan.predicate_value_cap in
  Helpers.check_true "range"
    (cap (Predicate.conj (Predicate.atom Value.Ge (Value.Int 2011)) (Predicate.atom Value.Le (Value.Int 2013)))
     = Some 3);
  Helpers.check_true "equality" (cap (Predicate.atom Value.Eq (Value.Int 7)) = Some 1);
  Helpers.check_true "open range" (cap (Predicate.atom Value.Ge (Value.Int 3)) = None);
  Helpers.check_true "strict ops"
    (cap (Predicate.conj (Predicate.atom Value.Gt (Value.Int 0)) (Predicate.atom Value.Lt (Value.Int 4)))
     = Some 3);
  Helpers.check_true "empty range"
    (cap (Predicate.conj (Predicate.atom Value.Ge (Value.Int 5)) (Predicate.atom Value.Le (Value.Int 3)))
     = Some 0);
  Helpers.check_true "true predicate" (cap Predicate.true_ = None)

(* The odometer tuple enumerator must yield exactly what the seed's
   list-building recursion yielded, in the same (lexicographic) order —
   fetch/edge-check traversal order is answer-visible via the stats. *)
let iter_tuples_matches_recursion =
  Helpers.qcheck ~count:100 "iter_tuples equals the list-recursion oracle"
    QCheck2.Gen.(
      pair (int_range 1 500) (list_size (int_range 0 4) (int_range 0 3)))
    (fun (seed, row_sizes) ->
      let module Prng = Bpq_util.Prng in
      let r = Prng.create seed in
      let cmat =
        Array.of_list
          (List.map (fun len -> Array.init len (fun _ -> Prng.int r 100)) row_sizes)
      in
      let anchors = List.mapi (fun i _ -> ((), i)) row_sizes in
      let got = ref [] in
      Exec.iter_tuples cmat anchors (fun tuple -> got := Array.to_list tuple :: !got);
      let want = ref [] in
      let arrays = List.map (fun (_, u) -> cmat.(u)) anchors in
      let rec go acc = function
        | [] -> want := List.rev acc :: !want
        | arr :: rest -> Array.iter (fun v -> go (v :: acc) rest) arr
      in
      if List.for_all (fun arr -> Array.length arr > 0) arrays then go [] arrays;
      List.rev !got = List.rev !want)

let suite =
  [ Alcotest.test_case "G_Q is a subgraph" `Quick test_gq_is_subgraph;
    Alcotest.test_case "G_Q within bounds" `Quick test_gq_within_bounds;
    Alcotest.test_case "candidates satisfy predicates" `Quick test_candidates_satisfy_predicates;
    Alcotest.test_case "bVF2 = VF2 on Q0" `Quick test_bvf2_equals_vf2_on_q0;
    Alcotest.test_case "bVF2 count and limit" `Quick test_bvf2_count_and_limit;
    Alcotest.test_case "empty answer on unsatisfiable predicate" `Quick
      test_empty_answer_when_predicate_unsatisfiable;
    Alcotest.test_case "bSim on G1 (Example 9/11)" `Quick test_bsim_on_g1;
    Alcotest.test_case "bSim non-empty case" `Quick test_bsim_nonempty_case;
    pipeline_soundness_subgraph;
    pipeline_soundness_simulation;
    gq_bounds_hold;
    iter_tuples_matches_recursion;
    Alcotest.test_case "predicate value cap" `Quick test_predicate_value_cap ]
