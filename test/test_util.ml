open Bpq_util

(* Vec *)

let test_vec_push_pop () =
  let v = Vec.create () in
  Helpers.check_true "fresh is empty" (Vec.is_empty v);
  Vec.push v 1;
  Vec.push v 2;
  Vec.push v 3;
  Helpers.check_int "length" 3 (Vec.length v);
  Helpers.check_int "pop" 3 (Vec.pop v);
  Helpers.check_int "length after pop" 2 (Vec.length v)

let test_vec_get_set () =
  let v = Vec.of_array [| 5; 6; 7 |] in
  Helpers.check_int "get" 6 (Vec.get v 1);
  Vec.set v 1 42;
  Helpers.check_int "set" 42 (Vec.get v 1);
  Alcotest.check_raises "get out of range" (Invalid_argument "Vec.get") (fun () ->
      ignore (Vec.get v 3))

let test_vec_growth () =
  let v = Vec.create ~capacity:1 () in
  for i = 0 to 999 do
    Vec.push v i
  done;
  Helpers.check_int "length" 1000 (Vec.length v);
  for i = 0 to 999 do
    Helpers.check_int "element" i (Vec.get v i)
  done

let test_vec_sort_uniq () =
  let v = Vec.of_array [| 3; 1; 3; 2; 1; 1 |] in
  Vec.sort_uniq v;
  Helpers.check_true "sorted distinct" (Vec.to_array v = [| 1; 2; 3 |])

let test_vec_roundtrip () =
  let arr = [| 9; 8; 7; 9 |] in
  Helpers.check_true "roundtrip" (Vec.to_array (Vec.of_array arr) = arr)

let test_vec_clear_iter_exists () =
  let v = Vec.of_array [| 1; 2; 3 |] in
  Helpers.check_true "exists" (Vec.exists (fun x -> x = 2) v);
  Helpers.check_false "not exists" (Vec.exists (fun x -> x = 9) v);
  let sum = ref 0 in
  Vec.iter (fun x -> sum := !sum + x) v;
  Helpers.check_int "iter sum" 6 !sum;
  Vec.clear v;
  Helpers.check_true "cleared" (Vec.is_empty v)

let vec_model =
  Helpers.qcheck "vec behaves like a list model"
    QCheck2.Gen.(list (int_bound 100))
    (fun ops ->
      let v = Vec.create () in
      List.iter (Vec.push v) ops;
      Vec.to_array v = Array.of_list ops
      && Vec.length v = List.length ops
      && (ops = [] || Vec.get v 0 = List.hd ops))

let vec_sort_uniq_model =
  Helpers.qcheck "sort_uniq matches List.sort_uniq"
    QCheck2.Gen.(list (int_bound 20))
    (fun xs ->
      let v = Vec.of_array (Array.of_list xs) in
      Vec.sort_uniq v;
      Array.to_list (Vec.to_array v) = List.sort_uniq compare xs)

(* Int_sort *)

let int_sort_model =
  Helpers.qcheck "Int_sort.sort matches List.sort on int arrays"
    QCheck2.Gen.(list (int_range (-50) 50))
    (fun xs ->
      let arr = Array.of_list xs in
      Int_sort.sort arr;
      Array.to_list arr = List.sort Int.compare xs)

let int_sort_range_model =
  Helpers.qcheck "sort_range + dedup_range sort only the slice"
    QCheck2.Gen.(pair (list_size (int_range 0 30) (int_bound 10)) (int_bound 5))
    (fun (xs, before) ->
      (* Slice [before, before+len) of a larger array: the surrounding
         elements must come out untouched. *)
      let sentinel = -999 in
      let len = List.length xs in
      let arr = Array.make (before + len + 3) sentinel in
      List.iteri (fun i x -> arr.(before + i) <- x) xs;
      Int_sort.sort_range arr before len;
      let sorted_ok =
        Array.to_list (Array.sub arr before len) = List.sort Int.compare xs
      in
      let kept = Int_sort.dedup_range arr before len in
      let dedup_ok =
        Array.to_list (Array.sub arr before kept) = List.sort_uniq Int.compare xs
      in
      let untouched = ref true in
      Array.iteri
        (fun i x -> if (i < before || i >= before + len) && x <> sentinel then untouched := false)
        arr;
      sorted_ok && dedup_ok && !untouched)

(* Bitset *)

let test_bitset_basics () =
  let b = Bitset.create 70 in
  Helpers.check_false "fresh empty" (Bitset.mem b 0);
  Bitset.add b 0;
  Bitset.add b 31;
  Bitset.add b 32;
  Bitset.add b 69;
  Helpers.check_true "word boundary 31" (Bitset.mem b 31);
  Helpers.check_true "word boundary 32" (Bitset.mem b 32);
  Helpers.check_int "count" 4 (Bitset.count b);
  Bitset.remove b 31;
  Helpers.check_false "removed" (Bitset.mem b 31);
  Helpers.check_int "count after remove" 3 (Bitset.count b);
  let seen = ref [] in
  Bitset.iter b (fun i -> seen := i :: !seen);
  Helpers.check_true "iter ascending" (List.rev !seen = [ 0; 32; 69 ]);
  Bitset.clear b;
  Helpers.check_int "cleared" 0 (Bitset.count b)

let bitset_model =
  Helpers.qcheck "bitset behaves like a bool-array model"
    QCheck2.Gen.(list (pair bool (int_bound 99)))
    (fun ops ->
      let n = 100 in
      let b = Bitset.create n in
      let model = Array.make n false in
      List.iter
        (fun (add, i) ->
          if add then begin
            Bitset.add b i;
            model.(i) <- true
          end
          else begin
            Bitset.remove b i;
            model.(i) <- false
          end)
        ops;
      let agree = ref true in
      for i = 0 to n - 1 do
        if Bitset.mem b i <> model.(i) then agree := false
      done;
      let model_count = Array.fold_left (fun acc x -> if x then acc + 1 else acc) 0 model in
      let members = Array.to_list (Array.of_seq (Seq.filter (Bitset.mem b) (Seq.init n Fun.id))) in
      let iterated = ref [] in
      Bitset.iter b (fun i -> iterated := i :: !iterated);
      !agree && Bitset.count b = model_count && List.rev !iterated = members)

let bitset_of_array =
  Helpers.qcheck "of_array marks exactly the listed elements"
    QCheck2.Gen.(list (int_bound 63))
    (fun xs ->
      let b = Bitset.of_array 64 (Array.of_list xs) in
      List.for_all (Bitset.mem b) xs
      && Bitset.count b = List.length (List.sort_uniq Int.compare xs))

(* Stats *)

let test_stats_basics () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "median" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ]);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.minimum [ 3.0; 1.0; 2.0 ]);
  Alcotest.(check (float 1e-9)) "max" 3.0 (Stats.maximum [ 3.0; 1.0; 2.0 ]);
  Alcotest.(check (float 1e-9)) "geomean of equal" 4.0 (Stats.geometric_mean [ 4.0; 4.0 ]);
  Helpers.check_true "mean of empty is nan" (Float.is_nan (Stats.mean []))

let test_stats_percentile () =
  let xs = [ 10.0; 20.0; 30.0; 40.0; 50.0 ] in
  Alcotest.(check (float 1e-9)) "p0" 10.0 (Stats.percentile 0.0 xs);
  Alcotest.(check (float 1e-9)) "p50" 30.0 (Stats.percentile 0.5 xs);
  Alcotest.(check (float 1e-9)) "p100" 50.0 (Stats.percentile 1.0 xs)

(* Table *)

let test_table_render () =
  let t = Table.create [ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b" ];
  let rendered = Table.render t in
  Helpers.check_true "has header" (String.length rendered > 0);
  let lines = String.split_on_char '\n' rendered in
  Helpers.check_int "rows + header + rule" 4 (List.length lines);
  (* All lines align to the same width. *)
  match lines with
  | header :: _ ->
    List.iter
      (fun l -> Helpers.check_true "aligned" (String.length l <= String.length header + 2))
      lines
  | [] -> Alcotest.fail "no lines"

let test_table_cells () =
  Alcotest.(check string) "float" "1.500" (Table.cell_float 1.5);
  Alcotest.(check string) "us" "5.0us" (Table.cell_time 5e-6);
  Alcotest.(check string) "ms" "12.00ms" (Table.cell_time 0.012);
  Alcotest.(check string) "s" "4.50s" (Table.cell_time 4.5);
  Alcotest.(check string) "ratio" "1.30e-03" (Table.cell_ratio 0.0013)

(* Timer *)

let test_timer_deadline () =
  Helpers.check_false "no_deadline never expires" (Timer.expired Timer.no_deadline);
  let d = Timer.deadline_after 1000.0 in
  Helpers.check_false "future deadline" (Timer.expired d);
  let d = Timer.deadline_after (-1.0) in
  (* Amortised check: force enough calls to consult the clock. *)
  let tripped = ref false in
  for _ = 1 to 10_000 do
    if Timer.expired d then tripped := true
  done;
  Helpers.check_true "past deadline trips" !tripped

let test_timer_time () =
  let x, elapsed = Timer.time (fun () -> 42) in
  Helpers.check_int "result" 42 x;
  Helpers.check_true "non-negative" (elapsed >= 0.0)

(* The stride adapts to slow per-iteration work: with ~1ms of work per
   [expired] call and a 50ms budget, the deadline must trip within a small
   multiple of the budget (the old fixed 4096-call stride would have taken
   seconds to notice). *)
let test_timer_adaptive_stride () =
  let busy_ms until_s =
    let start = Timer.now () in
    while Timer.now () -. start < until_s do
      ignore (Sys.opaque_identity (Hashtbl.hash start))
    done
  in
  let budget = 0.05 in
  let d = Timer.deadline_after budget in
  let start = Timer.now () in
  let tripped = ref false in
  let i = ref 0 in
  while (not !tripped) && !i < 1000 do
    busy_ms 0.001;
    if Timer.expired d then tripped := true;
    incr i
  done;
  let elapsed = Timer.now () -. start in
  Helpers.check_true "tripped" !tripped;
  Helpers.check_true "overshoot bounded" (elapsed < 8.0 *. budget)

(* Lru *)

let test_lru_basics () =
  let l = Lru.create 2 in
  Helpers.check_int "capacity" 2 (Lru.capacity l);
  Helpers.check_int "empty" 0 (Lru.length l);
  Lru.add l 1 10;
  Lru.add l 2 20;
  Helpers.check_true "find hit" (Lru.find l 1 = Some 10);
  Lru.add l 3 30;
  (* 1 was promoted by the find, so 2 is the LRU victim. *)
  Helpers.check_true "victim gone" (Lru.find l 2 = None);
  Helpers.check_true "promoted survives" (Lru.find l 1 = Some 10);
  Helpers.check_true "newcomer present" (Lru.find l 3 = Some 30);
  Helpers.check_int "one eviction" 1 (Lru.evictions l);
  Helpers.check_int "full" 2 (Lru.length l)

let test_lru_eviction_order () =
  let l = Lru.create 3 in
  Lru.add l 1 1;
  Lru.add l 2 2;
  Lru.add l 3 3;
  Helpers.check_true "MRU first" (List.map fst (Lru.to_list l) = [ 3; 2; 1 ]);
  ignore (Lru.find l 1);
  Helpers.check_true "find promotes" (List.map fst (Lru.to_list l) = [ 1; 3; 2 ]);
  Helpers.check_true "mem does not promote" (Lru.mem l 2);
  Lru.add l 4 4;
  Helpers.check_true "tail evicted" (List.map fst (Lru.to_list l) = [ 4; 1; 3 ]);
  Lru.add l 3 33;
  Helpers.check_true "re-add promotes in place"
    (Lru.to_list l = [ (3, 33); (4, 4); (1, 1) ]);
  Helpers.check_int "still one eviction" 1 (Lru.evictions l)

let test_lru_capacity_zero () =
  let l = Lru.create 0 in
  Lru.add l 1 1;
  Helpers.check_true "stores nothing" (Lru.find l 1 = None);
  Helpers.check_int "empty" 0 (Lru.length l);
  Helpers.check_int "no evictions" 0 (Lru.evictions l)

let test_lru_clear () =
  let l = Lru.create 4 in
  List.iter (fun k -> Lru.add l k k) [ 1; 2; 3; 4 ];
  Lru.clear l;
  Helpers.check_int "cleared" 0 (Lru.length l);
  Helpers.check_true "miss after clear" (Lru.find l 1 = None);
  Lru.add l 5 5;
  Helpers.check_true "usable after clear" (Lru.find l 5 = Some 5)

(* Reference model: most-recent-first association list. *)
let lru_model =
  Helpers.qcheck "lru matches a list model"
    QCheck2.Gen.(pair (int_range 1 6) (list (pair (int_bound 12) bool)))
    (fun (cap, ops) ->
      let l = Lru.create cap in
      let model = ref [] in
      let model_find k =
        match List.assoc_opt k !model with
        | Some v ->
          model := (k, v) :: List.remove_assoc k !model;
          Some v
        | None -> None
      in
      let model_add k v =
        model := (k, v) :: List.remove_assoc k !model;
        if List.length !model > cap then
          model := List.filteri (fun i _ -> i < cap) !model
      in
      List.for_all
        (fun (k, is_add) ->
          if is_add then begin
            Lru.add l k (k * 7);
            model_add k (k * 7);
            true
          end
          else begin
            let got = Lru.find l k and want = model_find k in
            got = want
          end)
        ops
      && Lru.to_list l = !model
      && Lru.length l = List.length !model)

(* Zero and negative budgets: the deadline must report expiry on its
   very first consultation — a serve daemon admitting a query against an
   exhausted budget would otherwise do a stride's worth of real work
   before noticing. *)
let test_timer_degenerate_budgets () =
  Helpers.check_true "zero budget trips on first call"
    (Timer.expired (Timer.deadline_after 0.0));
  Helpers.check_true "negative budget trips on first call"
    (Timer.expired (Timer.deadline_after (-5.0)))

let timer_nonpositive_budget_first_call =
  Helpers.qcheck ~count:200 "any non-positive budget expires on first consultation"
    QCheck2.Gen.(float_bound_inclusive 1000.0)
    (fun mag -> Timer.expired (Timer.deadline_after (-.Float.abs mag)))

let test_timer_clone_after_expiry () =
  let d = Timer.deadline_after 0.0 in
  Helpers.check_true "original expired" (Timer.expired d);
  (* A clone of an expired deadline must trip on its own first
     consultation too — parallel matchers hand clones to workers, and a
     worker starting after the cut-off must not run a fresh stride. *)
  Helpers.check_true "clone trips on first call" (Timer.expired (Timer.clone d));
  (* Cloning a live deadline keeps it live. *)
  let live = Timer.deadline_after 1000.0 in
  Helpers.check_false "clone of live deadline is live" (Timer.expired (Timer.clone live));
  Helpers.check_false "clone of Never never expires" (Timer.expired (Timer.clone Timer.no_deadline))

(* Stats _opt variants: total on empty input (None), agreeing with the
   plain forms elsewhere; the plain forms keep returning nan on empty so
   existing float arithmetic degrades instead of raising. *)
let test_stats_opt_empty () =
  Helpers.check_true "mean_opt" (Stats.mean_opt [] = None);
  Helpers.check_true "median_opt" (Stats.median_opt [] = None);
  Helpers.check_true "minimum_opt" (Stats.minimum_opt [] = None);
  Helpers.check_true "maximum_opt" (Stats.maximum_opt [] = None);
  Helpers.check_true "percentile_opt" (Stats.percentile_opt 0.5 [] = None);
  Helpers.check_true "geometric_mean_opt" (Stats.geometric_mean_opt [] = None);
  Helpers.check_true "plain mean is nan" (Float.is_nan (Stats.mean []));
  Helpers.check_true "plain percentile is nan" (Float.is_nan (Stats.percentile 0.99 []))

let stats_opt_agrees =
  Helpers.qcheck ~count:200 "_opt forms agree with plain forms on non-empty input"
    QCheck2.Gen.(pair (list_size (int_range 1 20) (float_bound_inclusive 100.0))
                   (float_bound_inclusive 1.0))
    (fun (xs, p) ->
      Stats.mean_opt xs = Some (Stats.mean xs)
      && Stats.percentile_opt p xs = Some (Stats.percentile p xs)
      && Stats.minimum_opt xs = Some (Stats.minimum xs)
      && Stats.maximum_opt xs = Some (Stats.maximum xs))

(* Jsonx *)

let test_jsonx_print () =
  let j =
    Jsonx.Obj
      [ ("s", Jsonx.Str "a\"b\\c\nd");
        ("i", Jsonx.Int (-42));
        ("f", Jsonx.Float 1.5);
        ("b", Jsonx.Bool true);
        ("z", Jsonx.Null);
        ("a", Jsonx.Arr [ Jsonx.Int 1; Jsonx.Str "x" ]) ]
  in
  Alcotest.(check string) "print"
    "{\"s\":\"a\\\"b\\\\c\\nd\",\"i\":-42,\"f\":1.5,\"b\":true,\"z\":null,\"a\":[1,\"x\"]}"
    (Jsonx.to_string j);
  (* Non-finite floats degrade to null — never a bare NaN literal that
     breaks jq downstream. *)
  Alcotest.(check string) "nan is null" "[null,null,null]"
    (Jsonx.to_string (Jsonx.Arr [ Jsonx.Float Float.nan; Jsonx.Float infinity; Jsonx.Float neg_infinity ]));
  Helpers.check_true "of_float_opt None" (Jsonx.of_float_opt None = Jsonx.Null);
  Helpers.check_true "of_float_opt Some" (Jsonx.of_float_opt (Some 2.0) = Jsonx.Float 2.0)

let test_jsonx_parse () =
  let ok s = match Jsonx.parse s with Ok j -> j | Error e -> Alcotest.failf "parse %S: %s" s e in
  Helpers.check_true "null" (ok "null" = Jsonx.Null);
  Helpers.check_true "bools" (ok " true " = Jsonx.Bool true && ok "false" = Jsonx.Bool false);
  Helpers.check_true "int" (ok "-17" = Jsonx.Int (-17));
  Helpers.check_true "float" (ok "2.5e1" = Jsonx.Float 25.0);
  Helpers.check_true "string escapes"
    (ok "\"a\\n\\t\\\"\\\\b\\u0041\"" = Jsonx.Str "a\n\t\"\\bA");
  Helpers.check_true "surrogate pair" (ok "\"\\ud83d\\ude00\"" = Jsonx.Str "\xf0\x9f\x98\x80");
  Helpers.check_true "nested"
    (ok "{\"a\":[1,{\"b\":null}],\"c\":\"d\"}"
    = Jsonx.Obj
        [ ("a", Jsonx.Arr [ Jsonx.Int 1; Jsonx.Obj [ ("b", Jsonx.Null) ] ]);
          ("c", Jsonx.Str "d") ]);
  let bad s = match Jsonx.parse s with Ok _ -> false | Error _ -> true in
  Helpers.check_true "empty" (bad "");
  Helpers.check_true "trailing garbage" (bad "1 2");
  Helpers.check_true "unterminated string" (bad "\"abc");
  Helpers.check_true "unterminated object" (bad "{\"a\":1");
  Helpers.check_true "bare word" (bad "nope");
  Helpers.check_true "trailing comma" (bad "[1,2,]")

let test_jsonx_accessors () =
  let j = Jsonx.Obj [ ("n", Jsonx.Int 3); ("s", Jsonx.Str "x"); ("f", Jsonx.Float 1.5) ] in
  Helpers.check_true "member hit" (Jsonx.member "n" j = Some (Jsonx.Int 3));
  Helpers.check_true "member miss" (Jsonx.member "zz" j = None);
  Helpers.check_true "to_int_opt" (Jsonx.to_int_opt (Jsonx.Int 3) = Some 3);
  Helpers.check_true "to_float_opt accepts int" (Jsonx.to_float_opt (Jsonx.Int 3) = Some 3.0);
  Helpers.check_true "to_string_opt" (Jsonx.to_string_opt (Jsonx.Str "x") = Some "x");
  Helpers.check_true "to_string_opt rejects int" (Jsonx.to_string_opt (Jsonx.Int 1) = None);
  Helpers.check_true "to_list_opt" (Jsonx.to_list_opt (Jsonx.Arr [ Jsonx.Null ]) = Some [ Jsonx.Null ])

let jsonx_roundtrip =
  let gen =
    QCheck2.Gen.(
      sized @@ fix (fun self n ->
          let leaf =
            oneof
              [ return Jsonx.Null;
                map (fun b -> Jsonx.Bool b) bool;
                map (fun i -> Jsonx.Int i) int;
                map (fun s -> Jsonx.Str s) (string_size (int_range 0 10));
                map (fun f -> Jsonx.Float f) (float_bound_inclusive 1000.0) ]
          in
          if n <= 0 then leaf
          else
            oneof
              [ leaf;
                map (fun l -> Jsonx.Arr l) (list_size (int_range 0 4) (self (n / 2)));
                map
                  (fun kvs -> Jsonx.Obj kvs)
                  (list_size (int_range 0 4)
                     (pair (string_size (int_range 0 6)) (self (n / 2)))) ]))
  in
  Helpers.qcheck ~count:300 "jsonx print/parse roundtrip" gen (fun j ->
      match Jsonx.parse (Jsonx.to_string j) with
      | Ok j2 -> j2 = j
      | Error _ -> false)

(* Histogram *)

let test_histogram_empty () =
  let h = Histogram.create () in
  Helpers.check_int "count" 0 (Histogram.count h);
  Helpers.check_true "percentile None" (Histogram.percentile h 0.5 = None);
  Helpers.check_true "mean None" (Histogram.mean h = None);
  Helpers.check_true "min None" (Histogram.minimum h = None);
  Helpers.check_true "max None" (Histogram.maximum h = None)

let test_histogram_percentiles () =
  let h = Histogram.create () in
  for i = 1 to 1000 do
    Histogram.add h (float_of_int i /. 1000.0)
  done;
  Helpers.check_int "count" 1000 (Histogram.count h);
  let check name p want =
    match Histogram.percentile h p with
    | None -> Alcotest.failf "%s: no value" name
    | Some v ->
      (* Log-bucketed with gamma 1.05: ~2.5%% relative error. *)
      Helpers.check_true name (Float.abs (v -. want) /. want < 0.05)
  in
  check "p50" 0.5 0.5;
  check "p99" 0.99 0.99;
  Alcotest.(check (float 1e-9)) "max exact" 1.0 (Option.get (Histogram.maximum h));
  Alcotest.(check (float 1e-9)) "min exact" 0.001 (Option.get (Histogram.minimum h));
  Alcotest.(check (float 1e-3)) "mean" 0.5005 (Option.get (Histogram.mean h));
  Histogram.reset h;
  Helpers.check_int "reset clears" 0 (Histogram.count h);
  (* Non-finite and negative samples clamp to the zero bucket rather
     than poisoning the counters. *)
  Histogram.add h Float.nan;
  Histogram.add h (-1.0);
  Helpers.check_int "degenerate samples counted" 2 (Histogram.count h);
  Helpers.check_true "their percentile is finite"
    (match Histogram.percentile h 0.5 with Some v -> Float.is_finite v | None -> false)

(* Interpolated quantiles against a sorted-array oracle.  The geometric
   buckets (gamma 1.05) bound the error: the reported quantile lives in
   the bucket of the sample at rank floor(p*(n-1)), so it can sit at
   most one gamma factor below that sample or above the sample at the
   ceiling rank. *)
let histogram_sample_gen =
  QCheck2.Gen.(map (fun f -> 1e-3 +. f) (float_bound_inclusive 900.0))

let histogram_quantile_oracle =
  let gen =
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 150) histogram_sample_gen)
        (pair (float_bound_inclusive 1.0) (float_bound_inclusive 1.0)))
  in
  Helpers.qcheck ~count:300 "histogram quantile vs sorted-array oracle" gen
    (fun (l, (p1, p2)) ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) l;
      let s = Array.of_list l in
      Array.sort compare s;
      let n = Array.length s in
      let bracket p v =
        let r = p *. float_of_int (n - 1) in
        let fl = s.(int_of_float (Float.floor r))
        and ce = s.(int_of_float (Float.ceil r)) in
        let gamma = 1.05 in
        v >= fl /. gamma *. 0.999 && v <= ce *. gamma *. 1.001
      in
      match (Histogram.percentile h p1, Histogram.percentile h p2) with
      | Some v1, Some v2 ->
        bracket p1 v1 && bracket p2 v2
        (* Monotone in p, including across bucket boundaries. *)
        && (if p1 <= p2 then v1 <= v2 else v2 <= v1)
      | _ -> false)

(* merge folds one histogram's buckets into another: the result must be
   indistinguishable (same counts, hence exactly equal quantiles) from a
   histogram fed the concatenated samples, and the source must survive
   untouched. *)
let histogram_merge_oracle =
  let gen =
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 120) histogram_sample_gen)
        (list_size (int_range 0 120) histogram_sample_gen))
  in
  Helpers.qcheck ~count:300 "histogram merge == histogram of concatenation" gen
    (fun (a, b) ->
      let build l =
        let h = Histogram.create () in
        List.iter (Histogram.add h) l;
        h
      in
      let ha = build a and hb = build b and hab = build (a @ b) in
      Histogram.merge ha ~from:hb;
      let ps = [ 0.0; 0.1; 0.5; 0.9; 0.99; 1.0 ] in
      Histogram.count ha = Histogram.count hab
      && Histogram.count hb = List.length b
      && List.for_all
           (fun p -> Histogram.percentile ha p = Histogram.percentile hab p)
           ps
      && Histogram.minimum ha = Histogram.minimum hab
      && Histogram.maximum ha = Histogram.maximum hab
      &&
      match (Histogram.mean ha, Histogram.mean hab) with
      | None, None -> true
      (* Sums are accumulated in a different association order. *)
      | Some x, Some y -> Float.abs (x -. y) <= 1e-9 *. (1.0 +. Float.abs y)
      | _ -> false)

(* Atomic_file *)

let test_atomic_file_write () =
  let path = Filename.temp_file "bpq_atomic" ".txt" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Atomic_file.write path (fun oc -> output_string oc "hello");
  Alcotest.(check string) "content" "hello"
    (In_channel.with_open_bin path In_channel.input_all);
  (* Overwrite goes through the same temp+rename path. *)
  Atomic_file.write path (fun oc -> output_string oc "world");
  Alcotest.(check string) "overwritten" "world"
    (In_channel.with_open_bin path In_channel.input_all)

let test_atomic_file_failure_cleanup () =
  let dir = Filename.get_temp_dir_name () in
  let path = Filename.concat dir (Printf.sprintf "bpq_atomic_%d.out" (Unix.getpid ())) in
  (try Sys.remove path with Sys_error _ -> ());
  let boom = Failure "writer exploded" in
  let before = Sys.readdir dir in
  (match Atomic_file.write path (fun oc -> output_string oc "partial"; raise boom) with
   | () -> Alcotest.fail "write should have re-raised"
   | exception Failure _ -> ());
  Helpers.check_false "destination not created" (Sys.file_exists path);
  (* No temp droppings left behind. *)
  let after = Sys.readdir dir in
  let tmps files =
    Array.to_list files
    |> List.filter (fun f ->
           String.length f >= 4 && String.sub f 0 4 = "bpq_" && Filename.check_suffix f ".tmp")
  in
  Helpers.check_true "no temp files leak" (List.length (tmps after) <= List.length (tmps before));
  (* A failing writer must not clobber an existing destination. *)
  Atomic_file.write path (fun oc -> output_string oc "stable");
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  (match Atomic_file.write path (fun _ -> raise boom) with
   | () -> Alcotest.fail "second write should have re-raised"
   | exception Failure _ -> ());
  Alcotest.(check string) "existing content preserved" "stable"
    (In_channel.with_open_bin path In_channel.input_all)

let suite =
  [ Alcotest.test_case "vec push/pop" `Quick test_vec_push_pop;
    Alcotest.test_case "vec get/set" `Quick test_vec_get_set;
    Alcotest.test_case "vec growth" `Quick test_vec_growth;
    Alcotest.test_case "vec sort_uniq" `Quick test_vec_sort_uniq;
    Alcotest.test_case "vec roundtrip" `Quick test_vec_roundtrip;
    Alcotest.test_case "vec clear/iter/exists" `Quick test_vec_clear_iter_exists;
    vec_model;
    vec_sort_uniq_model;
    int_sort_model;
    int_sort_range_model;
    Alcotest.test_case "lru basics" `Quick test_lru_basics;
    Alcotest.test_case "lru eviction order" `Quick test_lru_eviction_order;
    Alcotest.test_case "lru capacity zero" `Quick test_lru_capacity_zero;
    Alcotest.test_case "lru clear" `Quick test_lru_clear;
    lru_model;
    Alcotest.test_case "bitset basics" `Quick test_bitset_basics;
    bitset_model;
    bitset_of_array;
    Alcotest.test_case "stats basics" `Quick test_stats_basics;
    Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table cells" `Quick test_table_cells;
    Alcotest.test_case "timer deadline" `Quick test_timer_deadline;
    Alcotest.test_case "timer time" `Quick test_timer_time;
    Alcotest.test_case "timer adaptive stride" `Quick test_timer_adaptive_stride;
    Alcotest.test_case "timer degenerate budgets" `Quick test_timer_degenerate_budgets;
    timer_nonpositive_budget_first_call;
    Alcotest.test_case "timer clone after expiry" `Quick test_timer_clone_after_expiry;
    Alcotest.test_case "stats _opt on empty" `Quick test_stats_opt_empty;
    stats_opt_agrees;
    Alcotest.test_case "jsonx print" `Quick test_jsonx_print;
    Alcotest.test_case "jsonx parse" `Quick test_jsonx_parse;
    Alcotest.test_case "jsonx accessors" `Quick test_jsonx_accessors;
    jsonx_roundtrip;
    Alcotest.test_case "histogram empty" `Quick test_histogram_empty;
    Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
    histogram_quantile_oracle;
    histogram_merge_oracle;
    Alcotest.test_case "atomic file write" `Quick test_atomic_file_write;
    Alcotest.test_case "atomic file failure cleanup" `Quick test_atomic_file_failure_cleanup ]
