open Bpq_graph

let mk () =
  let tbl = Label.create_table () in
  (* 0:A 1:B 2:A 3:C; edges 0->1, 1->2, 2->0, 0->3, 0->1 (dup) *)
  let g =
    Helpers.graph tbl
      [ ("A", Value.Int 1); ("B", Value.Int 2); ("A", Value.Int 3); ("C", Value.Null) ]
      [ (0, 1); (1, 2); (2, 0); (0, 3); (0, 1) ]
  in
  (tbl, g)

let test_counts () =
  let _, g = mk () in
  Helpers.check_int "nodes" 4 (Digraph.n_nodes g);
  Helpers.check_int "edges (dedup)" 4 (Digraph.n_edges g);
  Helpers.check_int "size" 8 (Digraph.size g)

let test_labels_and_values () =
  let tbl, g = mk () in
  let a = Label.intern tbl "A" in
  Helpers.check_int "label of 0" a (Digraph.label g 0);
  Helpers.check_true "value of 2" (Digraph.value g 2 = Value.Int 3);
  Helpers.check_int "count A" 2 (Digraph.count_label g a);
  Helpers.check_true "nodes with A" (Digraph.nodes_with_label g a = [| 0; 2 |]);
  Helpers.check_true "unknown label empty" (Digraph.nodes_with_label g (-1) = [||])

let test_degrees () =
  let _, g = mk () in
  Helpers.check_int "out 0" 2 (Digraph.out_degree g 0);
  Helpers.check_int "in 0" 1 (Digraph.in_degree g 0);
  Helpers.check_int "degree 0" 3 (Digraph.degree g 0);
  Helpers.check_int "out 3" 0 (Digraph.out_degree g 3)

let test_adjacency () =
  let _, g = mk () in
  Helpers.check_true "has_edge" (Digraph.has_edge g 0 1);
  Helpers.check_false "no reverse" (Digraph.has_edge g 1 0);
  Helpers.check_true "adjacent both ways" (Digraph.adjacent g 1 0);
  Helpers.check_true "out of 0" (Array.to_list (Digraph.out_neighbours g 0) |> List.sort compare = [ 1; 3 ]);
  Helpers.check_true "in of 0" (Digraph.in_neighbours g 0 = [| 2 |]);
  Helpers.check_true "neighbours dedup sorted" (Digraph.neighbours g 0 = [| 1; 2; 3 |])

let test_iter_neighbours_distinct () =
  let tbl = Label.create_table () in
  (* Mutual edge 0<->1: neighbour 1 must be visited once. *)
  let g = Helpers.graph tbl [ ("A", Value.Null); ("B", Value.Null) ] [ (0, 1); (1, 0) ] in
  let visits = ref [] in
  Digraph.iter_neighbours g 0 (fun v -> visits := v :: !visits);
  Helpers.check_true "visited once" (!visits = [ 1 ])

let test_iter_edges () =
  let _, g = mk () in
  let edges = ref [] in
  Digraph.iter_edges g (fun s t -> edges := (s, t) :: !edges);
  Helpers.check_true "all edges"
    (List.sort compare !edges = [ (0, 1); (0, 3); (1, 2); (2, 0) ])

let test_apply_delta () =
  let tbl, g = mk () in
  let delta =
    { Digraph.added_nodes = [ (Label.intern tbl "B", Value.Int 9) ];
      added_edges = [ (3, 4) ];
      removed_edges = [ (0, 1) ] }
  in
  let g' = Digraph.apply_delta g delta in
  Helpers.check_int "nodes" 5 (Digraph.n_nodes g');
  Helpers.check_false "removed" (Digraph.has_edge g' 0 1);
  Helpers.check_true "added" (Digraph.has_edge g' 3 4);
  Helpers.check_true "old preserved" (Digraph.has_edge g' 1 2);
  Helpers.check_true "new node value" (Digraph.value g' 4 = Value.Int 9);
  (* The original is untouched. *)
  Helpers.check_true "persistent" (Digraph.has_edge g 0 1)

let test_delta_touched () =
  let _, g = mk () in
  let delta = { Digraph.empty_delta with removed_edges = [ (1, 2) ] } in
  let touched = List.sort compare (Digraph.delta_touched g delta) in
  (* Endpoints 1,2 and their neighbours 0. *)
  Helpers.check_true "locality set" (touched = [ 0; 1; 2 ])

let test_empty_graph () =
  let tbl = Label.create_table () in
  let g = Helpers.graph tbl [] [] in
  Helpers.check_int "no nodes" 0 (Digraph.n_nodes g);
  Helpers.check_int "no edges" 0 (Digraph.n_edges g)

let test_self_loop () =
  let tbl = Label.create_table () in
  let g = Helpers.graph tbl [ ("A", Value.Null) ] [ (0, 0) ] in
  Helpers.check_true "self loop stored" (Digraph.has_edge g 0 0);
  Helpers.check_int "degree counts both directions" 2 (Digraph.degree g 0);
  Helpers.check_true "neighbours includes self" (Digraph.neighbours g 0 = [| 0 |])

let test_builder_freeze_twice_rejected () =
  let tbl = Label.create_table () in
  let b = Digraph.Builder.create tbl in
  ignore (Digraph.Builder.add_node b (Label.intern tbl "A") Value.Null);
  ignore (Digraph.Builder.freeze b);
  Alcotest.check_raises "freeze twice"
    (Invalid_argument "Digraph.Builder.freeze: builder already frozen") (fun () ->
      ignore (Digraph.Builder.freeze b));
  Alcotest.check_raises "add_node after freeze"
    (Invalid_argument "Digraph.Builder.add_node: builder already frozen") (fun () ->
      ignore (Digraph.Builder.add_node b (Label.intern tbl "A") Value.Null));
  Alcotest.check_raises "add_edge after freeze"
    (Invalid_argument "Digraph.Builder.add_edge: builder already frozen") (fun () ->
      Digraph.Builder.add_edge b 0 0)

(* A node_hint far above the real node count must not leak an oversized
   values array (or stale slots) into the frozen graph. *)
let test_builder_node_hint_overshoot () =
  let tbl = Label.create_table () in
  let b = Digraph.Builder.create ~node_hint:1000 tbl in
  for i = 0 to 2 do
    ignore (Digraph.Builder.add_node b (Label.intern tbl "A") (Value.Int i))
  done;
  Digraph.Builder.add_edge b 0 2;
  let g = Digraph.Builder.freeze b in
  Helpers.check_int "nodes" 3 (Digraph.n_nodes g);
  for i = 0 to 2 do
    Helpers.check_true "value kept" (Digraph.value g i = Value.Int i)
  done;
  Helpers.check_true "edge kept" (Digraph.has_edge g 0 2)

let test_builder_rejects_bad_edge () =
  let tbl = Label.create_table () in
  let b = Digraph.Builder.create tbl in
  ignore (Digraph.Builder.add_node b (Label.intern tbl "A") Value.Null);
  Alcotest.check_raises "bad endpoint"
    (Invalid_argument "Digraph.Builder.add_edge: unknown endpoint") (fun () ->
      Digraph.Builder.add_edge b 0 1)

(* CSR consistency on random graphs. *)
let csr_consistency =
  Helpers.qcheck "CSR invariants on random graphs" QCheck2.Gen.(int_range 1 60)
    (fun n ->
      let tbl = Label.create_table () in
      let g = Generators.random ~seed:n ~nodes:n ~edges:(3 * n) ~labels:4 tbl in
      let out_sum = ref 0 and in_sum = ref 0 and label_sum = ref 0 in
      Digraph.iter_nodes g (fun v ->
          out_sum := !out_sum + Digraph.out_degree g v;
          in_sum := !in_sum + Digraph.in_degree g v);
      List.iter
        (fun l -> label_sum := !label_sum + Digraph.count_label g l)
        (Label.all tbl);
      !out_sum = Digraph.n_edges g
      && !in_sum = Digraph.n_edges g
      && !label_sum = Digraph.n_nodes g)

let edge_membership_agrees =
  Helpers.qcheck "has_edge agrees with adjacency lists" QCheck2.Gen.(int_range 1 40)
    (fun seed ->
      let tbl = Label.create_table () in
      let g = Generators.random ~seed ~nodes:20 ~edges:50 ~labels:3 tbl in
      let ok = ref true in
      Digraph.iter_nodes g (fun v ->
          Digraph.iter_out g v (fun w -> if not (Digraph.has_edge g v w) then ok := false));
      (* And negatively: count pairs. *)
      let count = ref 0 in
      for v = 0 to Digraph.n_nodes g - 1 do
        for w = 0 to Digraph.n_nodes g - 1 do
          if Digraph.has_edge g v w then incr count
        done
      done;
      !ok && !count = Digraph.n_edges g)

let delta_matches_rebuild =
  Helpers.qcheck "apply_delta equals rebuilding from scratch"
    QCheck2.Gen.(int_range 1 40)
    (fun seed ->
      let module Prng = Bpq_util.Prng in
      let r = Prng.create seed in
      let tbl = Label.create_table () in
      let g = Generators.random ~seed ~nodes:15 ~edges:30 ~labels:3 tbl in
      let n = Digraph.n_nodes g in
      let added_edges = List.init 5 (fun _ -> (Prng.int r n, Prng.int r n)) in
      let removed_edges =
        List.filteri (fun i _ -> i < 5)
          (let acc = ref [] in
           Digraph.iter_edges g (fun s t -> acc := (s, t) :: !acc);
           !acc)
      in
      let delta = { Digraph.added_nodes = []; added_edges; removed_edges } in
      let g' = Digraph.apply_delta g delta in
      let ok = ref true in
      List.iter (fun (s, t) -> if not (Digraph.has_edge g' s t) then ok := false) added_edges;
      List.iter
        (fun (s, t) ->
          if Digraph.has_edge g' s t && not (List.mem (s, t) added_edges) then ok := false)
        removed_edges;
      !ok)

(* Sorted-CSR oracle: random multi-edge/self-loop edge lists, checked
   against the raw pair set the builder consumed. *)
let sorted_csr_matches_oracle =
  Helpers.qcheck ~count:80 "sorted-CSR has_edge/iter_neighbours match a naive oracle"
    QCheck2.Gen.(int_range 1 500)
    (fun seed ->
      let module Prng = Bpq_util.Prng in
      let r = Prng.create seed in
      let tbl = Label.create_table () in
      let n = 1 + Prng.int r 25 in
      let nodes = List.init n (fun i -> ("L" ^ string_of_int (i mod 3), Value.Null)) in
      (* Duplicates, mutual pairs and self-loops on purpose. *)
      let edges =
        List.concat
          (List.init (3 * n) (fun _ ->
               let s = Prng.int r n and d = Prng.int r n in
               let e = [ (s, d) ] in
               let e = if Prng.int r 3 = 0 then (s, d) :: e else e in
               let e = if Prng.bool r then (d, s) :: e else e in
               if Prng.int r 5 = 0 then (s, s) :: e else e))
      in
      let g = Helpers.graph tbl nodes edges in
      let distinct = List.sort_uniq compare edges in
      let module PSet = Set.Make (struct
        type t = int * int

        let compare = compare
      end) in
      let eset = PSet.of_list distinct in
      let ok = ref (Digraph.n_edges g = List.length distinct) in
      (* Membership, exhaustively over all pairs. *)
      for s = 0 to n - 1 do
        for d = 0 to n - 1 do
          if Digraph.has_edge g s d <> PSet.mem (s, d) eset then ok := false
        done
      done;
      for v = 0 to n - 1 do
        (* Out rows: sorted, distinct, exactly the oracle's successors. *)
        let row = Array.to_list (Digraph.out_neighbours g v) in
        let want_out =
          List.filter_map (fun (s, d) -> if s = v then Some d else None) distinct
          |> List.sort_uniq Int.compare
        in
        if row <> want_out then ok := false;
        (* Undirected neighbourhood: sorted distinct union of both rows;
           iter_neighbours and the materialised array must agree. *)
        let want_nbrs =
          List.sort_uniq Int.compare
            (List.filter_map (fun (s, d) -> if s = v then Some d else None) distinct
            @ List.filter_map (fun (s, d) -> if d = v then Some s else None) distinct)
        in
        if Array.to_list (Digraph.neighbours g v) <> want_nbrs then ok := false;
        if Digraph.n_neighbours g v <> List.length want_nbrs then ok := false;
        let iterated = ref [] in
        Digraph.iter_neighbours g v (fun w -> iterated := w :: !iterated);
        if List.rev !iterated <> want_nbrs then ok := false
      done;
      !ok)

let suite =
  [ Alcotest.test_case "counts" `Quick test_counts;
    Alcotest.test_case "labels and values" `Quick test_labels_and_values;
    Alcotest.test_case "degrees" `Quick test_degrees;
    Alcotest.test_case "adjacency" `Quick test_adjacency;
    Alcotest.test_case "iter_neighbours distinct" `Quick test_iter_neighbours_distinct;
    Alcotest.test_case "iter_edges" `Quick test_iter_edges;
    Alcotest.test_case "apply_delta" `Quick test_apply_delta;
    Alcotest.test_case "delta_touched" `Quick test_delta_touched;
    Alcotest.test_case "empty graph" `Quick test_empty_graph;
    Alcotest.test_case "self loop" `Quick test_self_loop;
    Alcotest.test_case "builder rejects bad edge" `Quick test_builder_rejects_bad_edge;
    Alcotest.test_case "builder freeze-twice rejected" `Quick test_builder_freeze_twice_rejected;
    Alcotest.test_case "builder node_hint overshoot" `Quick test_builder_node_hint_overshoot;
    sorted_csr_matches_oracle;
    csr_consistency;
    edge_membership_agrees;
    delta_matches_rebuild ]
