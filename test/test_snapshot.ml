(* Binary snapshots: round trips, stamp lineage, corruption rejection,
   atomic writes. *)

open Bpq_graph
open Bpq_access
open Bpq_core

let with_temp_file f =
  let path = Filename.temp_file "bpq_snap" ".snap" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

(* Structural graph equality by label NAME (ids may differ between
   tables), values, and full edge relation. *)
let same_graph tbl1 g1 tbl2 g2 =
  Digraph.n_nodes g1 = Digraph.n_nodes g2
  && Digraph.n_edges g1 = Digraph.n_edges g2
  && (let ok = ref true in
      Digraph.iter_nodes g1 (fun v ->
          if Label.name tbl1 (Digraph.label g1 v) <> Label.name tbl2 (Digraph.label g2 v)
          then ok := false;
          if not (Value.equal (Digraph.value g1 v) (Digraph.value g2 v)) then ok := false);
      Digraph.iter_edges g1 (fun s t -> if not (Digraph.has_edge g2 s t) then ok := false);
      Digraph.iter_edges g2 (fun s t -> if not (Digraph.has_edge g1 s t) then ok := false);
      !ok)

let random_graph seed =
  let tbl = Label.create_table () in
  let g = Generators.random ~seed ~nodes:40 ~edges:100 ~labels:5 tbl in
  (tbl, g)

let bin_roundtrip_exact =
  Helpers.qcheck ~count:25 "binary graph round trip is bit-exact" QCheck2.Gen.(int_range 1 1000)
    (fun seed ->
      let tbl, g = random_graph seed in
      with_temp_file (fun path ->
          Graph_io.save_bin g path;
          let tbl2 = Label.create_table () in
          let g2, sel = Graph_io.load_bin tbl2 path in
          (* Fresh table ⇒ identity label map ⇒ the raw CSR arrays round
             trip verbatim. *)
          sel = None
          && Digraph.Repr.of_graph g = Digraph.Repr.of_graph g2
          && same_graph tbl g tbl2 g2))

let text_binary_agree =
  Helpers.qcheck ~count:25 "text and binary loads agree" QCheck2.Gen.(int_range 1 1000)
    (fun seed ->
      let _, g = random_graph seed in
      with_temp_file (fun bin_path ->
          with_temp_file (fun text_path ->
              Graph_io.save_bin g bin_path;
              Graph_io.save g text_path;
              let tb = Label.create_table () and tt = Label.create_table () in
              let gb, _ = Graph_io.load_bin tb bin_path in
              let gt = Graph_io.load tt text_path in
              same_graph tb gb tt gt)))

let test_label_remap () =
  let tbl, g = random_graph 7 in
  with_temp_file (fun path ->
      Graph_io.save_bin ~selectivity:(Gstats.selectivity g) g path;
      (* Pre-populate the destination table so stored label ids shift. *)
      let tbl2 = Label.create_table () in
      ignore (Label.intern tbl2 "unrelated-a");
      ignore (Label.intern tbl2 "unrelated-b");
      let g2, sel2 = Graph_io.load_bin tbl2 path in
      Helpers.check_true "remapped graph equal" (same_graph tbl g tbl2 g2);
      (* by-label grouping must follow the new ids. *)
      Digraph.iter_nodes g2 (fun v ->
          let l = Digraph.label g2 v in
          Helpers.check_true "node grouped under its label"
            (Array.exists (( = ) v) (Digraph.nodes_with_label g2 l)));
      let sel = Gstats.selectivity g and sel2 = Option.get sel2 in
      List.iter
        (fun l ->
          let l2 = Label.intern tbl2 (Label.name tbl l) in
          Helpers.check_int "node_count survives remap" (Gstats.node_count sel l)
            (Gstats.node_count sel2 l2);
          List.iter
            (fun l' ->
              let l2' = Label.intern tbl2 (Label.name tbl l') in
              Helpers.check_int "pair_freq survives remap"
                (Gstats.pair_freq sel ~src:l ~dst:l')
                (Gstats.pair_freq sel2 ~src:l2 ~dst:l2'))
            (Label.all tbl))
        (Label.all tbl))

let test_selectivity_roundtrip () =
  let tbl, g = random_graph 11 in
  let sel = Gstats.selectivity g in
  with_temp_file (fun path ->
      Graph_io.save_bin ~selectivity:sel g path;
      let tbl2 = Label.create_table () in
      let _, sel2 = Graph_io.load_bin tbl2 path in
      let sel2 = Option.get sel2 in
      List.iter
        (fun l ->
          Helpers.check_int "node_count" (Gstats.node_count sel l) (Gstats.node_count sel2 l);
          Helpers.check_true "avg_out_degree"
            (Float.abs (Gstats.avg_out_degree sel l -. Gstats.avg_out_degree sel2 l) < 1e-9);
          List.iter
            (fun l' ->
              Helpers.check_int "pair_freq"
                (Gstats.pair_freq sel ~src:l ~dst:l')
                (Gstats.pair_freq sel2 ~src:l ~dst:l'))
            (Label.all tbl))
        (Label.all tbl))

(* Schema round trip: constraints, stamp, and exact bucket contents in
   order. *)
let schema_roundtrip =
  Helpers.qcheck ~count:20 "schema snapshot round trip" QCheck2.Gen.(int_range 1 100_000)
    (fun seed ->
      let _, g, constrs, _ = Helpers.random_instance seed in
      let schema = Schema.build g constrs in
      with_temp_file (fun path ->
          Schema.save schema path;
          let tbl2 = Label.create_table () in
          let schema2, _ = Schema.load tbl2 path in
          let ok = ref (Schema.stamp schema2 = Schema.stamp schema) in
          if List.length (Schema.constraints schema2) <> List.length (Schema.constraints schema)
          then ok := false;
          List.iter
            (fun c ->
              let idx = Schema.index_of schema c in
              let idx2 = Schema.index_of schema2 c in
              (* Fresh table ⇒ identity label map ⇒ same constraint values.
                 Buckets must match exactly, order included. *)
              Index.iter idx (fun key bucket ->
                  if Index.lookup idx2 key <> bucket then ok := false);
              if Index.n_keys idx2 <> Index.n_keys idx then ok := false;
              if Index.size idx2 <> Index.size idx then ok := false)
            (Schema.constraints schema);
          if Schema.violations schema2 <> Schema.violations schema then ok := false;
          !ok))

let loaded_schema_executes_identically =
  Helpers.qcheck ~count:20 "loaded schema executes plans identically"
    QCheck2.Gen.(int_range 1 100_000) (fun seed ->
      let _, g, constrs, r = Helpers.random_instance seed in
      let schema = Schema.build g constrs in
      let q = Bpq_pattern.Qgen.from_walk r g in
      match Qplan.generate Actualized.Subgraph q constrs with
      | None -> true
      | Some plan ->
        with_temp_file (fun path ->
            Schema.save schema path;
            let schema2, _ = Schema.load (Label.create_table ()) path in
            let canon (r : Exec.result) =
              ( r.from_gq,
                r.candidates_g,
                r.stats,
                r.trace,
                Digraph.Repr.of_graph r.gq )
            in
            canon (Exec.run schema plan) = canon (Exec.run schema2 plan)))

let test_stamp_lineage () =
  let _, g, constrs, _ = Helpers.random_instance 42 in
  let schema = Schema.build g constrs in
  with_temp_file (fun path ->
      Schema.save schema path;
      let s1, _ = Schema.load (Label.create_table ()) path in
      let s2, _ = Schema.load (Label.create_table ()) path in
      Helpers.check_int "stamp preserved" (Schema.stamp schema) (Schema.stamp s1);
      Helpers.check_int "stamp stable across loads" (Schema.stamp s1) (Schema.stamp s2);
      (* The supply must have been pushed past the loaded stamp: a fresh
         build may never alias it. *)
      let fresh = Schema.build g constrs in
      Helpers.check_true "fresh build does not alias loaded stamp"
        (Schema.stamp fresh <> Schema.stamp s1))

let test_qcache_survives_roundtrip () =
  let ds = Bpq_workload.Workload.imdb ~scale:0.02 () in
  let a0 = Bpq_workload.Workload.a0 ds.table in
  let schema = Schema.build ds.graph a0 in
  let q = Bpq_workload.Workload.q0 ds.table in
  with_temp_file (fun path ->
      Schema.save schema path;
      (* Load into the SAME table: plans cached under the original schema
         must be served for the loaded one (same stamp, same ids). *)
      let schema2, _ = Schema.load ds.table path in
      let cache = Qcache.create () in
      let p1 = Qcache.plan_for cache Actualized.Subgraph schema q in
      let p2 = Qcache.plan_for cache Actualized.Subgraph schema2 q in
      Helpers.check_true "plan cached" (p1 <> None);
      Helpers.check_true "plan identical" (p1 = p2);
      let st = Qcache.stats cache in
      Helpers.check_int "second lookup hit the plan tier" 1 st.Qcache.plan_hits;
      Helpers.check_int "one miss total" 1 st.Qcache.plan_misses)

(* ---------------- corruption rejection ---------------- *)

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let b = Bytes.create len in
      really_input ic b 0 len;
      b)

let write_all path bytes =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_bytes oc bytes)

let expect_corrupt what f =
  match f () with
  | exception Binfile.Corrupt _ -> ()
  | exception e ->
    Alcotest.failf "%s: expected Binfile.Corrupt, got %s" what (Printexc.to_string e)
  | _ -> Alcotest.failf "%s: expected Binfile.Corrupt, got a value" what

let test_rejects_truncation () =
  let _, g = random_graph 3 in
  with_temp_file (fun path ->
      Graph_io.save_bin g path;
      let data = read_all path in
      List.iter
        (fun keep ->
          with_temp_file (fun cut ->
              write_all cut (Bytes.sub data 0 keep);
              expect_corrupt
                (Printf.sprintf "truncated to %d bytes" keep)
                (fun () -> Graph_io.load_bin (Label.create_table ()) cut)))
        [ 0; 4; 24; Bytes.length data / 2; Bytes.length data - 1 ])

let test_rejects_bad_magic () =
  let _, g = random_graph 4 in
  with_temp_file (fun path ->
      Graph_io.save_bin g path;
      let data = read_all path in
      Bytes.blit_string "NOTASNAP" 0 data 0 8;
      write_all path data;
      Helpers.check_false "sniff rejects" (Graph_io.is_snapshot path);
      expect_corrupt "bad magic" (fun () -> Graph_io.load_bin (Label.create_table ()) path))

let test_rejects_bad_version () =
  let _, g = random_graph 5 in
  with_temp_file (fun path ->
      Graph_io.save_bin g path;
      let data = read_all path in
      Bytes.set data 8 '\x63';
      write_all path data;
      expect_corrupt "bad version" (fun () -> Graph_io.load_bin (Label.create_table ()) path))

let flipped_byte_rejected =
  Helpers.qcheck ~count:25 "any flipped byte fails the checksum"
    QCheck2.Gen.(pair (int_range 1 1000) (int_range 0 10_000_000))
    (fun (seed, at) ->
      let _, g = random_graph seed in
      with_temp_file (fun path ->
          Graph_io.save_bin g path;
          let data = read_all path in
          let at = at mod Bytes.length data in
          Bytes.set data at (Char.chr (Char.code (Bytes.get data at) lxor 0x40));
          write_all path data;
          match Graph_io.load_bin (Label.create_table ()) path with
          | exception Binfile.Corrupt _ -> true
          | _ -> false))

let test_verify () =
  let _, g = random_graph 6 in
  with_temp_file (fun path ->
      Graph_io.save_bin g path;
      Binfile.verify path;
      let data = read_all path in
      let mid = Bytes.length data / 2 in
      Bytes.set data mid (Char.chr (Char.code (Bytes.get data mid) lxor 1));
      write_all path data;
      expect_corrupt "verify detects damage" (fun () -> Binfile.verify path))

let test_schema_section_required () =
  let _, g = random_graph 8 in
  with_temp_file (fun path ->
      (* A graph-only snapshot has no schema section: Schema.load must
         fail with a clear error, not crash. *)
      Graph_io.save_bin g path;
      expect_corrupt "missing schema section" (fun () ->
          Schema.load (Label.create_table ()) path))

(* ---------------- atomic writes ---------------- *)

let in_fresh_dir f =
  let dir = Filename.temp_file "bpq_snapdir" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let test_atomic_no_leftovers () =
  let tbl, g = random_graph 9 in
  in_fresh_dir (fun dir ->
      let p1 = Filename.concat dir "g.snap" in
      let p2 = Filename.concat dir "g.txt" in
      let p3 = Filename.concat dir "g.sel" in
      Graph_io.save_bin g p1;
      Graph_io.save g p2;
      Gstats.save_selectivity tbl (Gstats.selectivity g) p3;
      (* Overwrite each once more: rename over an existing file. *)
      Graph_io.save_bin g p1;
      Graph_io.save g p2;
      let entries = List.sort compare (Array.to_list (Sys.readdir dir)) in
      Alcotest.(check (list string)) "only the targets remain" [ "g.sel"; "g.snap"; "g.txt" ]
        entries)

let test_failed_write_leaves_target () =
  let _, g = random_graph 10 in
  in_fresh_dir (fun dir ->
      let p = Filename.concat dir "g.snap" in
      Graph_io.save_bin g p;
      let before = read_all p in
      (* A writer whose callback raises must leave the target untouched
         and clean up its temp file. *)
      (match
         Bpq_util.Atomic_file.write p (fun oc ->
             output_string oc "partial garbage";
             failwith "simulated crash")
       with
      | exception Failure _ -> ()
      | () -> Alcotest.fail "expected the simulated crash to propagate");
      Helpers.check_true "target intact" (read_all p = before);
      Alcotest.(check (list string)) "no temp leftovers" [ "g.snap" ]
        (List.sort compare (Array.to_list (Sys.readdir dir))))

let test_is_snapshot_sniff () =
  let _, g = random_graph 12 in
  with_temp_file (fun bin_path ->
      with_temp_file (fun text_path ->
          Graph_io.save_bin g bin_path;
          Graph_io.save g text_path;
          Helpers.check_true "snapshot sniffs true" (Graph_io.is_snapshot bin_path);
          Helpers.check_false "text sniffs false" (Graph_io.is_snapshot text_path);
          Helpers.check_false "missing file sniffs false"
            (Graph_io.is_snapshot (text_path ^ ".does-not-exist"))))

let suite =
  [ bin_roundtrip_exact;
    text_binary_agree;
    Alcotest.test_case "label remap on load" `Quick test_label_remap;
    Alcotest.test_case "selectivity round trip" `Quick test_selectivity_roundtrip;
    schema_roundtrip;
    loaded_schema_executes_identically;
    Alcotest.test_case "stamp lineage" `Quick test_stamp_lineage;
    Alcotest.test_case "qcache keys survive save/load" `Quick test_qcache_survives_roundtrip;
    Alcotest.test_case "rejects truncation" `Quick test_rejects_truncation;
    Alcotest.test_case "rejects bad magic" `Quick test_rejects_bad_magic;
    Alcotest.test_case "rejects bad version" `Quick test_rejects_bad_version;
    flipped_byte_rejected;
    Alcotest.test_case "verify detects damage" `Quick test_verify;
    Alcotest.test_case "schema section required" `Quick test_schema_section_required;
    Alcotest.test_case "atomic writes leave no temp files" `Quick test_atomic_no_leftovers;
    Alcotest.test_case "failed write leaves target intact" `Quick test_failed_write_leaves_target;
    Alcotest.test_case "snapshot sniffing" `Quick test_is_snapshot_sniff ]
