(* The serve daemon: protocol routing, byte-identity with in-process
   evaluation under concurrent clients, disconnect survival, admission
   control, and live snapshot reload with cache retention. *)

open Bpq_graph
open Bpq_pattern
open Bpq_access
open Bpq_core
module W = Bpq_workload.Workload
module Pool = Bpq_util.Pool
module Sock = Bpq_util.Sock
module Json = Bpq_util.Jsonx

let ds = lazy (W.imdb ~scale:0.02 ())

let slot_of_schema ?(close = ignore) schema =
  { Server.src = Exec.source_of_schema schema; costs = None; close }

let fresh_slot () = slot_of_schema (Lazy.force ds).W.schema

let q0_text () = Pattern_parser.to_source (W.q0 (Lazy.force ds).W.table)

(* The direct, one-shot answer every served response must reproduce. *)
let direct_matches schema text =
  let src = Exec.source_of_schema schema in
  let q = Pattern_parser.parse_string src.Exec.table text in
  match Qplan.generate Actualized.Subgraph q src.Exec.constraints with
  | None -> invalid_arg "direct_matches: not bounded"
  | Some plan ->
    (match Bounded_eval.run src plan with
     | Bounded_eval.Matches ms -> ms
     | Bounded_eval.Relation _ -> assert false)

let decode_matches j =
  match Json.member "matches" j with
  | Some (Json.Arr rows) ->
    Some
      (List.map
         (function
           | Json.Arr cells ->
             Array.of_list
               (List.map
                  (fun c -> match Json.to_int_opt c with Some v -> v | None -> min_int)
                  cells)
           | _ -> [||])
         rows)
  | _ -> None

let response server line =
  match Json.parse (Server.handle_line server line) with
  | Ok j -> j
  | Error msg -> Alcotest.failf "response is not valid JSON: %s" msg

let check_error server line code =
  let j = response server line in
  Helpers.check_true (code ^ ": ok=false") (Json.member "ok" j = Some (Json.Bool false));
  Alcotest.(check (option string))
    (code ^ ": error code") (Some code)
    (Option.bind (Json.member "error" j) Json.to_string_opt)

(* Protocol routing through handle_line, no socket involved. *)
let test_protocol () =
  let server = Server.create ~pool:Pool.sequential (fresh_slot ()) in
  check_error server "not json at all" "parse";
  check_error server "{\"op\":\"query\",}" "parse";
  check_error server "[1,2,3]" "bad_request";
  check_error server "{}" "bad_request";
  check_error server "{\"op\":42}" "bad_request";
  check_error server "{\"op\":\"frobnicate\"}" "bad_request";
  check_error server "{\"op\":\"query\"}" "bad_request";
  check_error server "{\"op\":\"query\",\"pattern\":7}" "bad_request";
  check_error server "{\"op\":\"query\",\"pattern\":\"e 1 2\"}" "parse";
  check_error server "{\"op\":\"query\",\"pattern\":\"n a award\",\"semantics\":\"magic\"}"
    "bad_request";
  check_error server "{\"op\":\"query\",\"pattern\":\"n a award\",\"limit\":-3}" "bad_request";
  check_error server "{\"op\":\"reload\"}" "bad_request";
  (* An uncovered pattern gets the typed unbounded error with the
     EBChk diagnosis, not a crash. *)
  let schema = (Lazy.force ds).W.schema in
  let tbl = (Lazy.force ds).W.table in
  let unb = "n a award\nn m movie\ne a m\n" in
  Helpers.check_false "fixture really is unbounded"
    (Ebchk.check Actualized.Subgraph
       (Pattern_parser.parse_string tbl unb)
       (Lazy.force ds).W.constrs);
  check_error server
    (Json.to_string (Json.Obj [ ("op", Json.Str "query"); ("pattern", Json.Str unb) ]))
    "unbounded";
  (* The happy path answers exactly like direct evaluation and echoes
     the request id. *)
  let req =
    Json.to_string
      (Json.Obj
         [ ("op", Json.Str "query"); ("pattern", Json.Str (q0_text ()));
           ("id", Json.Int 7) ])
  in
  let j = response server req in
  Helpers.check_true "ok" (Json.member "ok" j = Some (Json.Bool true));
  Helpers.check_true "id echoed" (Json.member "id" j = Some (Json.Int 7));
  let expected = direct_matches schema (q0_text ()) in
  Helpers.check_true "matches identical" (decode_matches j = Some expected);
  Helpers.check_int "n field" (List.length expected)
    (Option.value ~default:(-1) (Option.bind (Json.member "n" j) Json.to_int_opt));
  (* limit truncates exactly like `bpq run --limit`. *)
  let lim =
    response server
      (Json.to_string
         (Json.Obj
            [ ("op", Json.Str "query"); ("pattern", Json.Str (q0_text ()));
              ("limit", Json.Int 2) ]))
  in
  Helpers.check_true "limited matches are the prefix"
    (decode_matches lim = Some (List.filteri (fun i _ -> i < 2) expected));
  (* stats reflects the served queries. *)
  let st = response server "{\"op\":\"stats\"}" in
  Helpers.check_true "stats ok" (Json.member "ok" st = Some (Json.Bool true));
  Helpers.check_int "served" 2
    (Option.value ~default:(-1) (Option.bind (Json.member "served" st) Json.to_int_opt));
  Helpers.check_true "latency percentiles present"
    (match Json.member "latency" st with
     | Some lat -> Option.bind (Json.member "p50_ms" lat) Json.to_float_opt <> None
     | None -> false);
  (* explain describes the plan for a bounded pattern. *)
  let ex =
    response server
      (Json.to_string
         (Json.Obj [ ("op", Json.Str "explain"); ("pattern", Json.Str (q0_text ())) ]))
  in
  Helpers.check_true "explain has a plan"
    (match Option.bind (Json.member "plan" ex) Json.to_string_opt with
     | Some s -> String.length s > 0
     | None -> false);
  (* shutdown flips the server to refusing with a typed error. *)
  let sd = response server "{\"op\":\"shutdown\"}" in
  Helpers.check_true "stopping" (Json.member "stopping" sd = Some (Json.Bool true));
  Helpers.check_true "stopped" (Server.stopped server);
  check_error server req "shutting_down"

(* max_inflight 0 refuses every query with the typed overloaded error
   (graceful degradation, not a hang or a dropped connection). *)
let test_admission () =
  let server = Server.create ~max_inflight:0 ~pool:Pool.sequential (fresh_slot ()) in
  check_error server
    (Json.to_string (Json.Obj [ ("op", Json.Str "query"); ("pattern", Json.Str (q0_text ())) ]))
    "overloaded";
  let st = response server "{\"op\":\"stats\"}" in
  Helpers.check_int "rejected counted" 1
    (Option.value ~default:(-1) (Option.bind (Json.member "rejected" st) Json.to_int_opt))

(* A query timeout surfaces as the typed timeout error; with the
   zero/negative-budget Timer fix, even a degenerate budget expires on
   its first consultation instead of sneaking one stride of work. *)
let test_query_timeout () =
  let server =
    Server.create ~query_timeout:1e-12 ~pool:Pool.sequential (fresh_slot ())
  in
  check_error server
    (Json.to_string (Json.Obj [ ("op", Json.Str "query"); ("pattern", Json.Str (q0_text ())) ]))
    "timeout";
  let st = response server "{\"op\":\"stats\"}" in
  Helpers.check_int "timeout counted" 1
    (Option.value ~default:(-1) (Option.bind (Json.member "timeouts" st) Json.to_int_opt))

(* ------------------------------------------------------------------ *)
(* Socket-level tests                                                  *)
(* ------------------------------------------------------------------ *)

let with_server ?cache ?max_inflight ?query_timeout ?reload ?(pool = Pool.sequential) slot f =
  let server = Server.create ?cache ?max_inflight ?query_timeout ?reload ~pool slot in
  let path = Filename.temp_file "bpq_serve" ".sock" in
  Sys.remove path;
  let addr = Sock.Unix_path path in
  let lfd = Sock.listen addr in
  let th = Thread.create (fun () -> Server.serve server lfd) () in
  Fun.protect
    ~finally:(fun () ->
      Server.request_stop server;
      Thread.join th;
      Sock.close_listener addr lfd)
    (fun () -> f server addr)

(* Eight concurrent clients, each asking the same workload repeatedly
   over its own connection; every response must be byte-identical to
   the direct answer.  The pool has real worker domains, so this also
   drives queries through Pool.async scheduling. *)
let test_concurrent_clients () =
  let schema = (Lazy.force ds).W.schema in
  let expected = direct_matches schema (q0_text ()) in
  let pool = Pool.create 2 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  with_server ~cache:(Qcache.create ()) ~pool (fresh_slot ()) @@ fun server addr ->
  let clients = 8 and rounds = 5 in
  let failures = Atomic.make 0 in
  let threads =
    List.init clients (fun _ ->
        Thread.create
          (fun () ->
            let conn = Server.Client.connect addr in
            Fun.protect ~finally:(fun () -> Server.Client.close conn) @@ fun () ->
            for _ = 1 to rounds do
              let j = Server.Client.query conn (q0_text ()) in
              if decode_matches j <> Some expected then Atomic.incr failures
            done)
          ())
  in
  List.iter Thread.join threads;
  Helpers.check_int "all responses identical to direct evaluation" 0 (Atomic.get failures);
  let st = response server "{\"op\":\"stats\"}" in
  Helpers.check_int "every request served" (clients * rounds)
    (Option.value ~default:(-1) (Option.bind (Json.member "served" st) Json.to_int_opt))

(* A client that vanishes — mid-request, or before reading its answer —
   must cost the server nothing but that one connection: its in-flight
   query still completes (the served counter ticks), and other clients
   keep getting correct answers. *)
let test_client_disconnect () =
  let schema = (Lazy.force ds).W.schema in
  let expected = direct_matches schema (q0_text ()) in
  with_server (fresh_slot ()) @@ fun server addr ->
  (* Vanish without reading the response. *)
  let c1 = Server.Client.connect addr in
  Server.Client.send c1
    (Json.Obj [ ("op", Json.Str "query"); ("pattern", Json.Str (q0_text ())) ]);
  Server.Client.close c1;
  (* Vanish mid-line (no terminating newline). *)
  let c2 = Server.Client.connect addr in
  (match c2 with
   | _ ->
     let fd = Sock.connect addr in
     Sock.write_all fd "{\"op\":\"qu" 0 9;
     (try Unix.close fd with Unix.Unix_error _ -> ()));
  Server.Client.close c2;
  (* The dropped client's query still ran to completion. *)
  let rec wait_served tries =
    let st = response server "{\"op\":\"stats\"}" in
    let served =
      Option.value ~default:0 (Option.bind (Json.member "served" st) Json.to_int_opt)
    in
    if served >= 1 then ()
    else if tries = 0 then Alcotest.fail "dropped client's query never completed"
    else begin
      Thread.delay 0.05;
      wait_served (tries - 1)
    end
  in
  wait_served 100;
  (* And the server is fine for everyone else. *)
  let c3 = Server.Client.connect addr in
  Fun.protect ~finally:(fun () -> Server.Client.close c3) @@ fun () ->
  let j = Server.Client.query c3 (q0_text ()) in
  Helpers.check_true "survivor gets the right answer" (decode_matches j = Some expected);
  Helpers.check_false "server still up" (Server.stopped server)

(* Live reload through the snapshot lineage, mid-load: the new
   generation answers identically, the old generation's close runs once
   its queries drain, and the plan-tier cache stays warm because
   Schema.save/load preserves the stamp. *)
let test_live_reload () =
  let d = Lazy.force ds in
  let snap = Filename.temp_file "bpq_serve" ".snap" in
  Fun.protect ~finally:(fun () -> try Sys.remove snap with Sys_error _ -> ())
  @@ fun () ->
  Schema.save d.W.schema snap;
  let closes = Atomic.make 0 in
  let load_slot () =
    let schema, _ = Schema.load (Label.create_table ()) snap in
    slot_of_schema ~close:(fun () -> Atomic.incr closes) schema
  in
  let cache = Qcache.create () in
  let text = q0_text () in
  let expected = direct_matches d.W.schema text in
  with_server ~cache ~reload:load_slot (load_slot ()) @@ fun server addr ->
  let conn = Server.Client.connect addr in
  Fun.protect ~finally:(fun () -> Server.Client.close conn) @@ fun () ->
  (* Warm the plan tier. *)
  let j1 = Server.Client.query conn text in
  Helpers.check_true "pre-reload answer" (decode_matches j1 = Some expected);
  let misses_before = (Qcache.stats cache).Qcache.plan_misses in
  let stamp1 =
    Option.value ~default:(-1) (Option.bind (Json.member "stamp" j1) Json.to_int_opt)
  in
  (* Reload while another client keeps querying — nobody may observe a
     wrong answer or an error during the swap. *)
  let racing_failures = Atomic.make 0 in
  let racer =
    Thread.create
      (fun () ->
        let c = Server.Client.connect addr in
        Fun.protect ~finally:(fun () -> Server.Client.close c) @@ fun () ->
        for _ = 1 to 20 do
          let j = Server.Client.query c text in
          if decode_matches j <> Some expected then Atomic.incr racing_failures
        done)
      ()
  in
  let r = Server.Client.reload conn in
  Helpers.check_true "reload ok" (Json.member "ok" r = Some (Json.Bool true));
  Thread.join racer;
  Helpers.check_int "no wrong answers during reload" 0 (Atomic.get racing_failures);
  (* New generation: same stamp (same snapshot lineage), same answers. *)
  let j2 = Server.Client.query conn text in
  Helpers.check_true "post-reload answer" (decode_matches j2 = Some expected);
  let stamp2 =
    Option.value ~default:(-2) (Option.bind (Json.member "stamp" j2) Json.to_int_opt)
  in
  Helpers.check_int "stamp lineage preserved" stamp1 stamp2;
  (* The plan tier survived the reload: the post-reload query planned
     from cache, not from scratch. *)
  Helpers.check_int "no new plan misses after reload" misses_before
    ((Qcache.stats cache).Qcache.plan_misses);
  (* The retired generation was closed exactly once after draining. *)
  let rec wait_close tries =
    if Atomic.get closes >= 1 then ()
    else if tries = 0 then Alcotest.fail "old generation never closed"
    else begin
      Thread.delay 0.05;
      wait_close (tries - 1)
    end
  in
  wait_close 100;
  Helpers.check_int "old generation closed once" 1 (Atomic.get closes);
  let st = response server "{\"op\":\"stats\"}" in
  Helpers.check_int "reload counted" 1
    (Option.value ~default:(-1) (Option.bind (Json.member "reloads" st) Json.to_int_opt))

(* ------------------------------------------------------------------ *)
(* Single-flight coalescing                                            *)
(* ------------------------------------------------------------------ *)

(* A source whose index lookups block on a gate: holds the leader's
   evaluation open deterministically while followers pile onto the
   flight.  Only lookups gate — planning and pattern parsing never
   touch them, so the requests reach the flight table unimpeded. *)
let gated_source schema =
  let base = Exec.source_of_schema schema in
  let mu = Mutex.create () and cv = Condition.create () in
  let opened = ref false in
  let wait () =
    Mutex.lock mu;
    while not !opened do
      Condition.wait cv mu
    done;
    Mutex.unlock mu
  in
  let release () =
    Mutex.lock mu;
    opened := true;
    Condition.broadcast cv;
    Mutex.unlock mu
  in
  ( { base with
      Exec.lookup = (fun c k -> wait (); base.Exec.lookup c k);
      lookup_iter = (fun c k f -> wait (); base.Exec.lookup_iter c k f) },
    release )

let coalescing_member st name =
  Option.value ~default:(-1)
    (Option.bind
       (Option.bind (Json.member "coalescing" st) (Json.member name))
       Json.to_int_opt)

let rec wait_for ?(tries = 400) msg pred =
  if pred () then ()
  else if tries = 0 then Alcotest.fail msg
  else begin
    Thread.delay 0.01;
    wait_for ~tries:(tries - 1) msg pred
  end

let query_req () =
  Json.to_string
    (Json.Obj [ ("op", Json.Str "query"); ("pattern", Json.Str (q0_text ())) ])

(* Five identical concurrent requests cost exactly one evaluation: the
   gate pins the leader inside its lookup until stats shows the other
   four waiting as followers, so the schedule is deterministic. *)
let test_coalescing_dedup () =
  let d = Lazy.force ds in
  let expected = direct_matches d.W.schema (q0_text ()) in
  let src, release = gated_source d.W.schema in
  (* result_capacity 0 disables the result tier, so result_misses
     counts actual evaluations. *)
  let cache = Qcache.create ~result_capacity:0 () in
  let server =
    Server.create ~cache ~pool:Pool.sequential
      { Server.src; costs = None; close = ignore }
  in
  let req = query_req () in
  let answers = Array.make 5 None in
  let threads =
    List.init 5 (fun i ->
        Thread.create (fun () -> answers.(i) <- decode_matches (response server req)) ())
  in
  wait_for "followers never joined the flight" (fun () ->
      coalescing_member (response server "{\"op\":\"stats\"}") "followers" = 4);
  release ();
  List.iter Thread.join threads;
  Array.iter
    (fun a -> Helpers.check_true "coalesced answer identical" (a = Some expected))
    answers;
  let st = response server "{\"op\":\"stats\"}" in
  Helpers.check_int "one leader" 1 (coalescing_member st "leaders");
  Helpers.check_int "four followers" 4 (coalescing_member st "followers");
  Helpers.check_int "no redispatches" 0 (coalescing_member st "redispatches");
  Helpers.check_int "all five served" 5
    (Option.value ~default:(-1) (Option.bind (Json.member "served" st) Json.to_int_opt));
  Helpers.check_int "exactly one evaluation" 1 (Qcache.stats cache).Qcache.result_misses

(* Byte-identity with coalescing on and off, across pool shapes, under
   concurrent clients mixing limits (the limit is part of the flight
   key, so a limited and an unlimited request must never share). *)
let test_coalescing_identity () =
  let d = Lazy.force ds in
  let text = q0_text () in
  let expected = direct_matches d.W.schema text in
  List.iter
    (fun jobs ->
      let pool = if jobs = 0 then Pool.sequential else Pool.create jobs in
      Fun.protect ~finally:(fun () -> if jobs > 0 then Pool.shutdown pool)
      @@ fun () ->
      List.iter
        (fun coalesce ->
          let server =
            Server.create ~cache:(Qcache.create ()) ~coalesce ~pool (fresh_slot ())
          in
          let failures = Atomic.make 0 in
          let threads =
            List.init 6 (fun i ->
                Thread.create
                  (fun () ->
                    for r = 1 to 4 do
                      let limit = if (i + r) mod 2 = 0 then None else Some 2 in
                      let fields =
                        [ ("op", Json.Str "query"); ("pattern", Json.Str text) ]
                        @
                        match limit with
                        | None -> []
                        | Some l -> [ ("limit", Json.Int l) ]
                      in
                      let j = response server (Json.to_string (Json.Obj fields)) in
                      let want =
                        match limit with
                        | None -> expected
                        | Some l -> List.filteri (fun k _ -> k < l) expected
                      in
                      if decode_matches j <> Some want then Atomic.incr failures
                    done)
                  ())
          in
          List.iter Thread.join threads;
          Helpers.check_int
            (Printf.sprintf "identical answers (jobs=%d coalesce=%b)" jobs coalesce)
            0 (Atomic.get failures))
        [ true; false ])
    [ 0; 2 ]

(* Reload mid-flight: followers that coalesced behind a leader before a
   snapshot swap must re-evaluate on the new generation — never observe
   the pre-swap result — while the leader keeps its own answer, valid
   for the slot it has pinned. *)
let test_coalescing_reload () =
  let d = Lazy.force ds in
  let text = q0_text () in
  let expected1 = direct_matches d.W.schema text in
  (* The post-swap snapshot drops one edge of the first match
     (movie -> award), so its answer observably differs. *)
  let m = List.hd expected1 in
  let delta = { Digraph.empty_delta with removed_edges = [ (m.(2), m.(0)) ] } in
  let graph2 = Digraph.apply_delta d.W.graph delta in
  let schema2 = Schema.build graph2 d.W.constrs in
  let expected2 = direct_matches schema2 text in
  Helpers.check_true "the swap changes the answer" (expected1 <> expected2);
  let src1, release = gated_source d.W.schema in
  let server =
    Server.create
      ~cache:(Qcache.create ~result_capacity:0 ())
      ~reload:(fun () -> slot_of_schema schema2)
      ~pool:Pool.sequential
      { Server.src = src1; costs = None; close = ignore }
  in
  let req = query_req () in
  let leader_ans = ref None in
  let lt = Thread.create (fun () -> leader_ans := decode_matches (response server req)) () in
  wait_for "leader never took off" (fun () ->
      coalescing_member (response server "{\"op\":\"stats\"}") "leaders" = 1);
  let follower_ans = Array.make 2 None in
  let fts =
    List.init 2 (fun i ->
        Thread.create
          (fun () -> follower_ans.(i) <- decode_matches (response server req))
          ())
  in
  wait_for "followers never joined" (fun () ->
      coalescing_member (response server "{\"op\":\"stats\"}") "followers" = 2);
  (* Swap generations under the leader's feet, then let it land. *)
  let r = response server "{\"op\":\"reload\"}" in
  Helpers.check_true "reload ok" (Json.member "ok" r = Some (Json.Bool true));
  release ();
  Thread.join lt;
  List.iter Thread.join fts;
  Helpers.check_true "leader answers from its pinned pre-swap slot"
    (!leader_ans = Some expected1);
  Array.iter
    (fun a ->
      Helpers.check_false "follower never observes the pre-swap answer"
        (a = Some expected1);
      Helpers.check_true "follower re-evaluated on the new generation"
        (a = Some expected2))
    follower_ans;
  let st = response server "{\"op\":\"stats\"}" in
  Helpers.check_int "both followers re-dispatched" 2 (coalescing_member st "redispatches")

(* The metrics op carries a Prometheus 0.0.4 page inside the JSON
   protocol; spot-check shape and a few families, via handle_line and
   the client helper both. *)
let test_metrics () =
  let server = Server.create ~cache:(Qcache.create ()) ~pool:Pool.sequential (fresh_slot ()) in
  ignore (response server (query_req ()));
  let j = response server "{\"op\":\"metrics\"}" in
  Helpers.check_true "metrics ok" (Json.member "ok" j = Some (Json.Bool true));
  Alcotest.(check (option string))
    "content type" (Some "text/plain; version=0.0.4")
    (Option.bind (Json.member "content_type" j) Json.to_string_opt);
  let text =
    match Option.bind (Json.member "text" j) Json.to_string_opt with
    | Some s -> s
    | None -> Alcotest.fail "metrics has no text"
  in
  let contains sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length text && (String.sub text i n = sub || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun needle -> Helpers.check_true ("page contains " ^ needle) (contains needle))
    [ "# TYPE bpq_queries_served_total counter";
      "bpq_queries_served_total 1";
      "bpq_coalesce_followers_total 0";
      "bpq_cache_hits_total{tier=\"plan\"}";
      "bpq_query_latency_seconds{quantile=\"0.99\"}";
      "bpq_query_latency_seconds_count 1";
      "bpq_inflight 0" ];
  (* And over a socket through the client helper. *)
  with_server (fresh_slot ()) @@ fun _server addr ->
  let conn = Server.Client.connect addr in
  Fun.protect ~finally:(fun () -> Server.Client.close conn) @@ fun () ->
  let j = Server.Client.metrics conn in
  Helpers.check_true "client metrics ok" (Json.member "ok" j = Some (Json.Bool true))

(* The same socket speaks HTTP when the first line is a GET: a plain
   Prometheus scrape of /metrics works with no bridge, and any other
   path 404s.  JSON clients are unaffected. *)
let test_http_metrics () =
  with_server (fresh_slot ()) @@ fun _server addr ->
  let scrape path =
    let fd = Sock.connect addr in
    Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    @@ fun () ->
    let req = Printf.sprintf "GET %s HTTP/1.0\r\nHost: x\r\nAccept: */*\r\n\r\n" path in
    Sock.write_all fd req 0 (String.length req);
    let b = Buffer.create 4096 in
    let chunk = Bytes.create 4096 in
    let rec drain () =
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> ()
      | n ->
        Buffer.add_subbytes b chunk 0 n;
        drain ()
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
    in
    drain ();
    Buffer.contents b
  in
  let contains hay sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length hay && (String.sub hay i n = sub || go (i + 1)) in
    go 0
  in
  let page = scrape "/metrics" in
  Helpers.check_true "http 200" (contains page "HTTP/1.0 200 OK");
  Helpers.check_true "prometheus content type"
    (contains page "Content-Type: text/plain; version=0.0.4");
  Helpers.check_true "served counter present" (contains page "bpq_queries_served_total");
  let missing = scrape "/other" in
  Helpers.check_true "http 404 elsewhere" (contains missing "HTTP/1.0 404");
  (* A JSON client on a fresh connection still gets the JSON protocol. *)
  let conn = Server.Client.connect addr in
  Fun.protect ~finally:(fun () -> Server.Client.close conn) @@ fun () ->
  let j = Server.Client.metrics conn in
  Helpers.check_true "json metrics still ok" (Json.member "ok" j = Some (Json.Bool true))

let suite =
  [ Alcotest.test_case "protocol routing" `Quick test_protocol;
    Alcotest.test_case "admission control" `Quick test_admission;
    Alcotest.test_case "query timeout" `Quick test_query_timeout;
    Alcotest.test_case "8 concurrent clients, identical answers" `Quick test_concurrent_clients;
    Alcotest.test_case "client disconnect survival" `Quick test_client_disconnect;
    Alcotest.test_case "live reload keeps the cache warm" `Quick test_live_reload;
    Alcotest.test_case "single-flight dedup: 5 requests, 1 evaluation" `Quick
      test_coalescing_dedup;
    Alcotest.test_case "coalescing identity across pools and limits" `Quick
      test_coalescing_identity;
    Alcotest.test_case "mid-flight reload: followers re-dispatch" `Quick
      test_coalescing_reload;
    Alcotest.test_case "prometheus metrics page" `Quick test_metrics;
    Alcotest.test_case "http GET /metrics scrape" `Quick test_http_metrics ]
