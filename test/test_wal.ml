(* The write path: delta-log codecs and crash recovery, read-through
   overlay identity against from-scratch rebuilds, generation pairing,
   cache behaviour across writes and compaction, and the serve-side
   write/compact ops. *)

open Bpq_graph
open Bpq_access
open Bpq_core
module Store = Bpq_store.Store
module Wal = Bpq_store.Wal
module Overlay = Bpq_store.Overlay
module Pool = Bpq_util.Pool
module Sock = Bpq_util.Sock
module Json = Bpq_util.Jsonx

let with_temp suffix f =
  let path = Filename.temp_file "bpq_wal" suffix in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let canon (r : Exec.result) =
  (r.from_gq, r.candidates_g, r.stats, r.trace, Digraph.Repr.of_graph r.gq)

let sample_ops =
  [ Wal.Add_node { label = "movie"; value = Value.Null };
    Wal.Add_node { label = "actor"; value = Value.Int (-42) };
    Wal.Add_node { label = "year"; value = Value.Str "x\"y\n" };
    Wal.Add_edge (0, 999_999);
    Wal.Remove_edge (7, 0);
    Wal.Set_value (3, Value.Int max_int);
    Wal.Set_value (0, Value.Null) ]

(* ------------------------------------------------------------------ *)
(* Codecs                                                              *)
(* ------------------------------------------------------------------ *)

let test_codecs () =
  List.iter
    (fun op ->
      Helpers.check_true "binary roundtrip" (Wal.decode_op (Wal.encode_op op) = op);
      match Wal.op_of_json (Wal.op_to_json op) with
      | Ok op' -> Helpers.check_true "json roundtrip" (op = op')
      | Error e -> Alcotest.failf "json roundtrip: %s" e)
    sample_ops;
  (* An omitted value is null. *)
  (match Wal.op_of_json (Json.Obj [ ("op", Json.Str "add_node"); ("label", Json.Str "a") ]) with
  | Ok (Wal.Add_node { value = Value.Null; _ }) -> ()
  | _ -> Alcotest.fail "omitted value should decode as null");
  (* Malformed shapes are one-line errors, not exceptions. *)
  List.iter
    (fun j ->
      match Wal.op_of_json j with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed op %s" (Json.to_string j))
    [ Json.Int 3;
      Json.Obj [];
      Json.Obj [ ("op", Json.Str "frobnicate") ];
      Json.Obj [ ("op", Json.Str "add_edge"); ("src", Json.Str "x"); ("dst", Json.Int 1) ];
      Json.Obj [ ("op", Json.Str "set_value"); ("node", Json.Int 1); ("value", Json.Arr []) ] ]

(* ------------------------------------------------------------------ *)
(* Log roundtrip and generation pairing                                *)
(* ------------------------------------------------------------------ *)

let test_log_roundtrip () =
  with_temp ".wal" @@ fun path ->
  let w, ops0, d0 = Wal.open_ ~base_sum:42 ~base_stamp:7 path in
  Helpers.check_int "fresh log is empty" 0 (List.length ops0);
  Helpers.check_int "fresh log drops nothing" 0 d0;
  Wal.append w [ List.nth sample_ops 0; List.nth sample_ops 3 ];
  Wal.append w [ List.nth sample_ops 4 ];
  Helpers.check_int "records counted" 3 (Wal.records w);
  Wal.close w;
  let w, ops, d = Wal.open_ ~base_sum:42 ~base_stamp:7 path in
  Helpers.check_true "replay in append order"
    (ops = [ List.nth sample_ops 0; List.nth sample_ops 3; List.nth sample_ops 4 ]);
  Helpers.check_int "clean log drops nothing" 0 d;
  (* Truncation restamps the header for the next generation. *)
  Wal.truncate w ~base_sum:43 ~base_stamp:7;
  Wal.close w;
  (match Wal.open_ ~base_sum:42 ~base_stamp:7 path with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "stale generation accepted after truncate");
  let w, ops, _ = Wal.open_ ~base_sum:43 ~base_stamp:7 path in
  Helpers.check_int "truncated log is empty" 0 (List.length ops);
  Wal.close w

let test_generation_mismatch () =
  with_temp ".wal" @@ fun path ->
  let w, _, _ = Wal.open_ ~base_sum:1 ~base_stamp:2 path in
  Wal.append w [ Wal.Add_edge (0, 1) ];
  Wal.close w;
  (match Wal.open_ ~base_sum:99 ~base_stamp:2 path with
  | exception Failure msg ->
    Helpers.check_true "checksum mismatch names the generation"
      (String.length msg > 0)
  | _ -> Alcotest.fail "accepted a log from another snapshot generation");
  match Wal.open_ ~base_sum:1 ~base_stamp:3 path with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "accepted a log from another schema stamp"

(* ------------------------------------------------------------------ *)
(* Crash recovery: every possible kill point                           *)
(* ------------------------------------------------------------------ *)

(* A SIGKILL mid-append leaves an arbitrary byte prefix of the file (the
   batch is one write(2), so any cut inside it is a torn tail).  Sweep
   every cut point: recovery must yield an exact record prefix, truncate
   the torn bytes physically, and reopen idempotently. *)
let test_torn_tail_sweep () =
  with_temp ".wal" @@ fun path ->
  let all = List.init 12 (fun i -> Wal.Add_edge (i, i + 1)) in
  let w, _, _ = Wal.open_ ~base_sum:5 ~base_stamp:6 path in
  List.iteri (fun i op -> Wal.append ~sync:(i mod 3 = 0) w [ op ]) all;
  Wal.close w;
  let full = In_channel.with_open_bin path In_channel.input_all in
  let is_prefix ops =
    let rec go k = function
      | [] -> true
      | op :: rest -> op = List.nth all k && go (k + 1) rest
    in
    List.length ops <= List.length all && go 0 ops
  in
  for cut = 0 to String.length full - 1 do
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_string oc (String.sub full 0 cut));
    let w, ops, dropped = Wal.open_ ~base_sum:5 ~base_stamp:6 path in
    Helpers.check_true
      (Printf.sprintf "cut %d: replay is a record prefix" cut)
      (is_prefix ops);
    Helpers.check_true (Printf.sprintf "cut %d: dropped >= 0" cut) (dropped >= 0);
    Wal.close w;
    (* Recovery truncated the tail physically: a second open is clean
       and replays the same prefix. *)
    let w2, ops2, d2 = Wal.open_ ~base_sum:5 ~base_stamp:6 path in
    Helpers.check_true (Printf.sprintf "cut %d: reopen idempotent" cut)
      (ops2 = ops && d2 = 0);
    (* And the recovered log accepts fresh appends. *)
    Wal.append w2 [ Wal.Add_edge (100, 101) ];
    Wal.close w2;
    let w3, ops3, _ = Wal.open_ ~base_sum:5 ~base_stamp:6 path in
    Helpers.check_true
      (Printf.sprintf "cut %d: append after recovery replays" cut)
      (ops3 = ops @ [ Wal.Add_edge (100, 101) ]);
    Wal.close w3
  done;
  (* The untouched file replays everything. *)
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc full);
  let w, ops, dropped = Wal.open_ ~base_sum:5 ~base_stamp:6 path in
  Helpers.check_true "full file replays all records" (ops = all && dropped = 0);
  Wal.close w

let test_checksum_corruption () =
  with_temp ".wal" @@ fun path ->
  let all = List.init 8 (fun i -> Wal.Add_edge (i, i + 1)) in
  let w, _, _ = Wal.open_ ~base_sum:5 ~base_stamp:6 path in
  Wal.append w all;
  Wal.close w;
  let full = Bytes.of_string (In_channel.with_open_bin path In_channel.input_all) in
  (* Flip a byte about two thirds in: a mid-file record fails its
     checksum, and everything from it on is discarded — even the intact
     records behind it (append-only logs have no record framing to
     resynchronise on). *)
  let pos = Bytes.length full * 2 / 3 in
  Bytes.set full pos (Char.chr (Char.code (Bytes.get full pos) lxor 0xff));
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc full);
  let w, ops, dropped = Wal.open_ ~base_sum:5 ~base_stamp:6 path in
  Wal.close w;
  Helpers.check_true "replay stops before the corrupt record"
    (List.length ops < List.length all);
  Helpers.check_true "corrupt tail dropped" (dropped > 0);
  List.iteri
    (fun i op -> Helpers.check_true "surviving prefix intact" (op = List.nth all i))
    ops

(* A real SIGKILL against a live appender: the surviving log must replay
   an exact sequential prefix of what the child was writing.  The child
   is this very binary re-executed with [BPQ_WAL_CHILD] set (main.ml
   dispatches to {!child_main} before alcotest starts) — [Unix.fork] is
   off-limits once any suite has spawned a domain, [create_process]
   is not. *)
let child_main path =
  let w, _, _ = Wal.open_ ~base_sum:11 ~base_stamp:12 path in
  let i = ref 0 in
  (try
     while !i < 2_000_000 do
       Wal.append ~sync:false w
         [ Wal.Add_edge (!i, !i + 1); Wal.Add_edge (!i + 1, !i + 2) ];
       i := !i + 2
     done
   with _ -> ());
  exit 0

let test_sigkill_mid_append () =
  with_temp ".wal" @@ fun path ->
  Sys.remove path;
  let self = Sys.executable_name in
  let env = Array.append (Unix.environment ()) [| "BPQ_WAL_CHILD=" ^ path |] in
  let null = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let pid = Unix.create_process_env self [| self |] env null null Unix.stderr in
  Unix.close null;
  (* Let the child get a good run of batches down, then murder it
     mid-stream. *)
  let rec wait_for_data tries =
    let enough =
      try (Unix.stat path).Unix.st_size > 20_000 with Unix.Unix_error _ -> false
    in
    if (not enough) && tries > 0 then begin
      Unix.sleepf 0.01;
      wait_for_data (tries - 1)
    end
  in
  wait_for_data 500;
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  let w, ops, _dropped = Wal.open_ ~base_sum:11 ~base_stamp:12 path in
  Wal.close w;
  Helpers.check_true "child got some batches in" (List.length ops > 0);
  List.iteri
    (fun k op ->
      Helpers.check_true "replay is the exact sequential prefix"
        (op = Wal.Add_edge (k, k + 1)))
    ops

(* ------------------------------------------------------------------ *)
(* Read-through identity                                               *)
(* ------------------------------------------------------------------ *)

(* A random but valid op sequence against the instance: node ids only
   reference the combined state as it stood when the op was appended. *)
let random_ops r g tbl count =
  let module Prng = Bpq_util.Prng in
  let base_n = Digraph.n_nodes g in
  let n = ref base_n in
  let n_labels = Label.count tbl in
  let ops = ref [] in
  for _ = 1 to count do
    let pick () = Prng.int r !n in
    (match Prng.int r 10 with
    | 0 | 1 ->
      ops :=
        Wal.Add_node
          { label = Label.name tbl (Prng.int r n_labels);
            value = Value.Int (Prng.int r 100) }
        :: !ops;
      incr n
    | 2 -> ops := Wal.Set_value (pick (), Value.Str "patched") :: !ops
    | 3 | 4 ->
      (* Tombstone a base edge when the picked node has one. *)
      let u = Prng.int r base_n in
      let out = Digraph.out_neighbours g u in
      if Array.length out > 0 then
        ops := Wal.Remove_edge (u, out.(Prng.int r (Array.length out))) :: !ops
      else ops := Wal.Remove_edge (pick (), pick ()) :: !ops
    | _ -> ops := Wal.Add_edge (pick (), pick ()) :: !ops);
  done;
  List.rev !ops

(* The tentpole identity: base + overlay serves byte-identical results
   to the compacted generation and to a from-scratch index rebuild over
   the mutated graph — through the in-memory backend, the paged backend
   at several cache capacities, and at several pool sizes. *)
let overlay_identity =
  Helpers.qcheck ~count:15 "overlay == compacted == from-scratch rebuild"
    QCheck2.Gen.(int_range 1 100_000) (fun seed ->
      let tbl, g, constrs, r = Helpers.random_instance seed in
      let schema = Schema.build g constrs in
      let q = Bpq_pattern.Qgen.from_walk r g in
      match Qplan.generate Actualized.Subgraph q constrs with
      | None -> true
      | Some plan ->
        with_temp ".snap" @@ fun snap ->
        with_temp ".wal" @@ fun walp ->
        Schema.save schema snap;
        let ops = random_ops r g tbl (5 + Bpq_util.Prng.int r 40) in
        (* Writer: apply through the mem store (logs + overlays). *)
        let st = Store.open_snapshot snap in
        (match Store.attach_wal st walp with
        | 0 -> ()
        | d -> Alcotest.failf "fresh wal dropped %d bytes" d);
        (match Store.apply_ops st ops with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "apply: %s" e);
        let via_mem = canon (Exec.run_with (Store.source st) plan) in
        let pool = Pool.create 2 in
        let via_pool =
          Fun.protect
            ~finally:(fun () -> Pool.shutdown pool)
            (fun () -> canon (Exec.run_with ~pool (Store.source st) plan))
        in
        Store.close st;
        (* Reader: replay the log over the paged backend. *)
        let via_paged cap =
          let st = Store.open_snapshot ~backend:Store.Paged ~cache_pages:cap snap in
          ignore (Store.attach_wal st walp);
          Fun.protect
            ~finally:(fun () -> Store.close st)
            (fun () -> canon (Exec.run_with (Store.source st) plan))
        in
        let paged_ok = List.for_all (fun cap -> via_paged cap = via_mem) [ 0; 7; 65536 ] in
        (* Fold into a fresh generation and serve it plain. *)
        let out = snap ^ ".gen2" in
        let st = Store.open_snapshot snap in
        ignore (Store.attach_wal st walp);
        ignore (Store.compact ~out st);
        Store.close st;
        let folded, _ = Schema.load (Label.create_table ()) out in
        let via_compacted = canon (Exec.run folded plan) in
        (* From-scratch rebuild: same graph, indexes built anew. *)
        let rebuilt = Schema.build (Schema.graph folded) (Schema.constraints folded) in
        let via_scratch = canon (Exec.run rebuilt plan) in
        (try Sys.remove out with Sys_error _ -> ());
        via_mem = via_pool && paged_ok && via_mem = via_compacted
        && via_mem = via_scratch)

(* ------------------------------------------------------------------ *)
(* Store-level typed errors                                            *)
(* ------------------------------------------------------------------ *)

let tiny_instance () =
  let tbl = Label.create_table () in
  let g =
    Helpers.graph tbl
      [ ("a", Value.Null); ("b", Value.Null); ("b", Value.Null);
        ("c", Value.Null); ("d", Value.Null); ("d", Value.Null) ]
      [ (0, 1); (0, 2); (3, 4); (3, 5) ]
  in
  let constrs = Discovery.discover g in
  (tbl, g, constrs, Schema.build g constrs)

let test_store_errors () =
  let _, _, _, schema = tiny_instance () in
  with_temp ".snap" @@ fun snap ->
  with_temp ".wal" @@ fun walp ->
  Schema.save schema snap;
  (* In-memory stores have no snapshot generation to pair with. *)
  let mem_store = Store.of_schema schema in
  (match Store.attach_wal mem_store walp with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "attached a log to an in-memory store");
  let st = Store.open_snapshot snap in
  (match Store.apply_ops st [ Wal.Add_edge (0, 1) ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "applied without an attached log");
  ignore (Store.attach_wal st walp);
  (* Out-of-range nodes reject the whole batch, atomically. *)
  (match Store.apply_ops st [ Wal.Add_edge (0, 1); Wal.Add_edge (0, 10_000) ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted an out-of-range edge");
  Helpers.check_int "rejected batch left nothing behind" 0
    (Overlay.n_ops (Option.get (Store.overlay st)));
  (match Store.apply_ops st [ Wal.Set_value (-1, Value.Null) ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a negative node id");
  (* A valid batch still lands after the rejections. *)
  (match Store.apply_ops st [ Wal.Add_edge (0, 3) ] with
  | Ok 1 -> ()
  | Ok n -> Alcotest.failf "applied %d ops" n
  | Error e -> Alcotest.failf "valid batch rejected: %s" e);
  (* In-place compaction retires the handle: reads keep serving, writes
     are refused until a reopen. *)
  ignore (Store.compact st);
  (match Store.apply_ops st [ Wal.Add_edge (1, 0) ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrote through a retired handle");
  (match Store.compact st with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "compacted a retired handle twice");
  Store.close st;
  (* The truncated log now pairs with the new generation; the old
     snapshot bytes are gone, so only a fresh open succeeds. *)
  let st2 = Store.open_snapshot snap in
  Helpers.check_int "log empty after in-place compaction" 0 (Store.attach_wal st2 walp);
  Helpers.check_int "folded edge visible in the new generation" 1
    (if Digraph.has_edge (Schema.graph (Option.get (Store.schema st2))) 0 3 then 1 else 0);
  Store.close st2

(* ------------------------------------------------------------------ *)
(* Caches across writes and generation swaps                           *)
(* ------------------------------------------------------------------ *)

let eval_count cache src q =
  match Qcache.eval_with cache Actualized.Subgraph src q with
  | Some (Qcache.Matches ms) -> List.length ms
  | Some (Qcache.Relation _) -> Alcotest.fail "unexpected relation"
  | None -> Alcotest.fail "query not bounded"

let test_cache_generations () =
  let tbl, _, _, schema = tiny_instance () in
  with_temp ".snap" @@ fun snap ->
  with_temp ".wal" @@ fun walp ->
  Schema.save schema snap;
  let qab = Helpers.pattern tbl [ ("a", []); ("b", []) ] [ (0, 1) ] in
  let qcd = Helpers.pattern tbl [ ("c", []); ("d", []) ] [ (0, 1) ] in
  let cache = Qcache.create () in
  let st = Store.open_snapshot snap in
  ignore (Store.attach_wal st walp);
  let src1 = Store.source st in
  let ab0 = eval_count cache src1 qab and cd0 = eval_count cache src1 qcd in
  Helpers.check_int "ab matches" 2 ab0;
  Helpers.check_int "cd matches" 2 cd0;
  let s = Qcache.stats cache in
  Helpers.check_int "two plans generated" 2 s.Qcache.plan_misses;
  Helpers.check_int "two results computed" 2 s.Qcache.result_misses;
  ignore (eval_count cache src1 qab);
  ignore (eval_count cache src1 qcd);
  Helpers.check_int "warm hits" 2 (Qcache.stats cache).Qcache.result_hits;
  (* A write touching only label b: qab's entry must go stale, qcd's
     must stay warm. *)
  (match
     Store.apply_ops st
       [ Wal.Add_node { label = "b"; value = Value.Null }; Wal.Add_edge (0, 6) ]
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "apply: %s" e);
  let src2 = Store.source st in
  Helpers.check_true "overlay source carries its generations"
    (src2.Exec.data_version > 0 && src2.Exec.label_gen <> None);
  let ab1 = eval_count cache src2 qab in
  Helpers.check_int "new edge answered" 3 ab1;
  let s = Qcache.stats cache in
  Helpers.check_int "stale entry detected" 1 s.Qcache.result_stale;
  Helpers.check_int "no plan regenerated" 2 s.Qcache.plan_misses;
  ignore (eval_count cache src2 qcd);
  Helpers.check_int "untouched labels stay warm" 3
    (Qcache.stats cache).Qcache.result_hits;
  (* Read-through observability: qab merged, qcd delegated. *)
  let c = Option.get (Store.overlay_counters st) in
  Helpers.check_true "merged lookups counted" (c.Overlay.c_merged > 0);
  Helpers.check_true "untouched constraints delegated" (c.Overlay.c_delegated > 0);
  Helpers.check_true "overlay additions served" (c.Overlay.c_added > 0);
  (* Roll the generation in place and reopen, carrying the label
     generations: plan entries and every still-valid result entry must
     survive the swap warm. *)
  ignore (Store.compact st);
  let carry = Option.get (Store.overlay st) in
  Store.close st;
  let st2 = Store.open_snapshot snap in
  ignore (Store.attach_wal ~carry st2 walp);
  let src3 = Store.source st2 in
  Helpers.check_int "same stamp across the roll" src1.Exec.stamp src3.Exec.stamp;
  let before = Qcache.stats cache in
  let ab2 = eval_count cache src3 qab and cd2 = eval_count cache src3 qcd in
  Helpers.check_int "compacted answer identical (ab)" ab1 ab2;
  Helpers.check_int "compacted answer identical (cd)" cd0 cd2;
  let s = Qcache.stats cache in
  Helpers.check_int "plan tier survived the generation swap"
    before.Qcache.plan_misses s.Qcache.plan_misses;
  Helpers.check_int "result tier survived the generation swap"
    (before.Qcache.result_hits + 2) s.Qcache.result_hits;
  Store.close st2

let test_fetch_tiers () =
  let _, _, _, schema = tiny_instance () in
  let cache = Qcache.create () in
  let src0 = Exec.source_of_schema schema in
  Helpers.check_true "static sources share the main tier"
    (Qcache.fetch_tier_for cache src0 == Qcache.fetch_tier cache);
  let at v = { src0 with Exec.data_version = v } in
  let t5 = Qcache.fetch_tier_for cache (at 5) in
  Helpers.check_true "versioned tier is separate" (t5 != Qcache.fetch_tier cache);
  Helpers.check_true "same version, same tier" (t5 == Qcache.fetch_tier_for cache (at 5));
  let t6 = Qcache.fetch_tier_for cache (at 6) in
  Helpers.check_true "two newest versions stay live"
    (t5 == Qcache.fetch_tier_for cache (at 5) && t6 == Qcache.fetch_tier_for cache (at 6));
  ignore (Qcache.fetch_tier_for cache (at 7));
  Helpers.check_true "older versions are recreated cold"
    (t5 != Qcache.fetch_tier_for cache (at 5))

(* ------------------------------------------------------------------ *)
(* The serve-side write path                                           *)
(* ------------------------------------------------------------------ *)

let response server line =
  match Json.parse (Server.handle_line server line) with
  | Ok j -> j
  | Error msg -> Alcotest.failf "response is not valid JSON: %s" msg

let ok j = Json.member "ok" j = Some (Json.Bool true)
let int_field k j = Option.bind (Json.member k j) Json.to_int_opt

let n_matches j =
  match Json.member "matches" j with Some (Json.Arr rows) -> List.length rows | _ -> -1

let test_serve_write_path () =
  let _, _, _, schema = tiny_instance () in
  with_temp ".snap" @@ fun snap ->
  with_temp ".wal" @@ fun walp ->
  Schema.save schema snap;
  let store = ref (Store.open_snapshot snap) in
  ignore (Store.attach_wal !store walp);
  let slot () = { Server.src = Store.source !store; costs = None; close = ignore } in
  let write req =
    match Json.member "ops" req with
    | Some (Json.Arr l) ->
      let ops =
        List.map
          (fun j ->
            match Wal.op_of_json j with Ok o -> o | Error e -> failwith e)
          l
      in
      (match Store.apply_ops !store ops with
      | Ok n -> Ok (Some (slot ()), [ ("applied", Json.Int n) ])
      | Error m -> Error ("bad_request", m))
    | _ -> Error ("bad_request", "missing ops")
  in
  let compact () =
    let carry = Option.get (Store.overlay !store) in
    ignore (Store.compact !store);
    let st = Store.open_snapshot snap in
    ignore (Store.attach_wal ~carry st walp);
    store := st;
    Ok (Some (slot ()), [ ("rolled", Json.Bool true) ])
  in
  let server =
    Server.create ~cache:(Qcache.create ()) ~write ~compact ~pool:Pool.sequential (slot ())
  in
  let q = "{\"op\":\"query\",\"pattern\":\"n x a\\nn y b\\ne x y\"}" in
  Helpers.check_int "base answer" 2 (n_matches (response server q));
  (* A write is visible to the very next query. *)
  let w =
    response server
      "{\"op\":\"write\",\"ops\":[{\"op\":\"add_node\",\"label\":\"b\"},\
       {\"op\":\"add_edge\",\"src\":0,\"dst\":6}]}"
  in
  Helpers.check_true "write accepted" (ok w);
  Helpers.check_int "both ops applied" 2 (Option.value ~default:(-1) (int_field "applied" w));
  Helpers.check_int "write visible immediately" 3 (n_matches (response server q));
  (* Validation failures are typed and leave the slot untouched. *)
  let bad =
    response server
      "{\"op\":\"write\",\"ops\":[{\"op\":\"add_edge\",\"src\":0,\"dst\":12345}]}"
  in
  Helpers.check_true "invalid batch refused" (not (ok bad));
  Helpers.check_int "refused batch changed nothing" 3 (n_matches (response server q));
  (* Compaction rolls the generation without changing answers. *)
  Helpers.check_true "compact accepted" (ok (response server "{\"op\":\"compact\"}"));
  Helpers.check_int "answer identical across the roll" 3 (n_matches (response server q));
  (* Writes keep flowing against the new generation. *)
  let w2 =
    response server "{\"op\":\"write\",\"ops\":[{\"op\":\"add_edge\",\"src\":3,\"dst\":6}]}"
  in
  Helpers.check_true "write after compaction" (ok w2);
  let st = response server "{\"op\":\"stats\"}" in
  Helpers.check_int "writes counted" 2 (Option.value ~default:(-1) (int_field "writes" st));
  Helpers.check_int "compactions counted" 1
    (Option.value ~default:(-1) (int_field "compactions" st));
  Store.close !store

let test_serve_write_refused_without_hook () =
  let _, _, _, schema = tiny_instance () in
  let slot = { Server.src = Exec.source_of_schema schema; costs = None; close = ignore } in
  let server = Server.create ~pool:Pool.sequential slot in
  let w = response server "{\"op\":\"write\",\"ops\":[]}" in
  Helpers.check_true "write refused without a hook" (not (ok w));
  let c = response server "{\"op\":\"compact\"}" in
  Helpers.check_true "compact refused without a hook" (not (ok c))

let test_healthz () =
  let _, _, _, schema = tiny_instance () in
  let slot = { Server.src = Exec.source_of_schema schema; costs = None; close = ignore } in
  let server = Server.create ~pool:Pool.sequential slot in
  let path = Filename.temp_file "bpq_wal_hz" ".sock" in
  Sys.remove path;
  let addr = Sock.Unix_path path in
  let lfd = Sock.listen addr in
  let th = Thread.create (fun () -> Server.serve server lfd) () in
  Fun.protect
    ~finally:(fun () ->
      Server.request_stop server;
      Thread.join th;
      Sock.close_listener addr lfd)
  @@ fun () ->
  let scrape path =
    let fd = Sock.connect addr in
    Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    @@ fun () ->
    let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
    Sock.write_all fd req 0 (String.length req);
    let b = Buffer.create 1024 in
    let chunk = Bytes.create 1024 in
    let rec drain () =
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> ()
      | n ->
        Buffer.add_subbytes b chunk 0 n;
        drain ()
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
    in
    drain ();
    Buffer.contents b
  in
  let contains hay sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length hay && (String.sub hay i n = sub || go (i + 1)) in
    go 0
  in
  let page = scrape "/healthz" in
  Helpers.check_true "healthz 200" (contains page "HTTP/1.0 200 OK");
  Helpers.check_true "healthz body" (contains page "ok");
  Helpers.check_true "other paths still 404" (contains (scrape "/nope") "HTTP/1.0 404")

let suite =
  [ Alcotest.test_case "op codecs" `Quick test_codecs;
    Alcotest.test_case "log roundtrip and truncation" `Quick test_log_roundtrip;
    Alcotest.test_case "generation pairing rejects stale logs" `Quick test_generation_mismatch;
    Alcotest.test_case "torn tail: every kill point recovers" `Quick test_torn_tail_sweep;
    Alcotest.test_case "mid-file corruption stops replay" `Quick test_checksum_corruption;
    Alcotest.test_case "SIGKILL mid-append replays a prefix" `Quick test_sigkill_mid_append;
    overlay_identity;
    Alcotest.test_case "typed write-path errors" `Quick test_store_errors;
    Alcotest.test_case "caches across writes and generation swaps" `Quick
      test_cache_generations;
    Alcotest.test_case "per-version fetch tiers" `Quick test_fetch_tiers;
    Alcotest.test_case "serve write and compact ops" `Quick test_serve_write_path;
    Alcotest.test_case "write refused without --wal" `Quick
      test_serve_write_refused_without_hook;
    Alcotest.test_case "http GET /healthz" `Quick test_healthz ]
