(* The real sharded backend: partitioner totality, the framed wire
   protocol, and byte-identity of multi-process execution against the
   single-node executor — with actual forked worker processes. *)

open Bpq_graph
open Bpq_access
open Bpq_core
module Shard = Bpq_store.Shard
module Remote = Bpq_store.Remote
module Paged = Bpq_store.Paged
module Sock = Bpq_util.Sock

let with_temp_file f =
  let path = Filename.temp_file "bpq_shard" ".snap" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_temp_dir f =
  let path = Filename.temp_file "bpq_shard" ".d" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  Fun.protect ~finally:(fun () -> try rm_rf path with Sys_error _ | Unix.Unix_error _ -> ())
    (fun () -> f path)

let instance_plan seed =
  let _, g, constrs, r = Helpers.random_instance seed in
  let schema = Schema.build g constrs in
  let q = Bpq_pattern.Qgen.from_walk r g in
  (schema, Qplan.generate Actualized.Subgraph q constrs)

(* Strict result identity, as in the store suite.  The trace's [pushed]
   flag records where an operation ran, not what it produced, so it is
   stripped before comparing across backends; everything else —
   candidate sets, stats counters, estimates, realized sizes, the graph
   — must match exactly. *)
let canon (r : Exec.result) =
  ( r.from_gq,
    r.candidates_g,
    r.stats,
    List.map (fun (tr : Exec.op_trace) -> (tr.op, tr.estimate, tr.realized)) r.trace,
    Digraph.Repr.of_graph r.gq )

(* ---------------- forked worker fixtures ---------------- *)

type worker = { fd : Unix.file_descr; pid : int }

(* Workers are spawned by re-exec'ing the test binary in its hidden
   [--bpq-worker] mode (see [main.ml]): [Unix.fork] without exec is
   forbidden once other suites have created domains.  The child's
   socket end is passed by fd number (stdio would mix qcheck's seed
   banner into the frame stream); [CLOEXEC] on the parent end keeps
   later workers from inheriting earlier sockets, so closing a parent
   fd reliably delivers EOF to exactly its worker. *)
let fork_worker shard_file =
  let parent, child = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_close_on_exec parent;
  Unix.clear_close_on_exec child;
  let pid =
    Unix.create_process Sys.executable_name
      [| Sys.executable_name; "--bpq-worker";
         string_of_int (Obj.magic (child : Unix.file_descr) : int); shard_file |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  Unix.close child;
  { fd = parent; pid }

let fork_workers (m : Shard.manifest) =
  Array.map
    (fun (f : Shard.shard_file) -> fork_worker (Filename.concat m.dir f.file))
    m.files

let reap workers =
  Array.iter
    (fun w ->
      (try Unix.close w.fd with Unix.Unix_error _ -> ());
      try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ())
    workers

let with_remote schema shards f =
  with_temp_file (fun snap ->
      Schema.save schema snap;
      with_temp_dir (fun dir ->
          let m = Shard.partition ~shards ~snapshot:snap ~dir in
          let workers = fork_workers m in
          let r =
            try Remote.attach m (Array.map (fun w -> w.fd) workers)
            with e ->
              reap workers;
              raise e
          in
          Fun.protect
            ~finally:(fun () ->
              Remote.close r;
              Array.iter
                (fun w -> try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ())
                workers)
            (fun () -> f m r workers)))

(* ---------------- framing ---------------- *)

let test_frame_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () ->
      Sock.send_frame a "";
      Sock.send_frame a "hello";
      Sock.send_frame a (String.make 100_000 'x');
      Helpers.check_true "empty frame" (Sock.recv_frame b = Some Bytes.empty);
      Helpers.check_true "small frame" (Sock.recv_frame b = Some (Bytes.of_string "hello"));
      (match Sock.recv_frame b with
      | Some big -> Helpers.check_int "large frame survives" 100_000 (Bytes.length big)
      | None -> Alcotest.fail "large frame lost");
      Unix.close a;
      Helpers.check_true "clean EOF is None" (Sock.recv_frame b = None))

let test_frame_oversize () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () ->
      (* A hand-written header announcing an absurd length: refused
         before any allocation honours it. *)
      let hdr = Bytes.create 8 in
      Bytes.set_int64_le hdr 0 (Int64.of_int (Sock.max_frame + 1));
      Sock.write_all a (Bytes.to_string hdr) 0 8;
      Helpers.check_true "oversized announced length raises"
        (match Sock.recv_frame b with
        | _ -> false
        | exception Sock.Frame_too_large _ -> true))

let test_frame_death_mid_frame () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close b with Unix.Unix_error _ -> ())
    (fun () ->
      let hdr = Bytes.create 8 in
      Bytes.set_int64_le hdr 0 64L;
      Sock.write_all a (Bytes.to_string hdr) 0 8;
      Sock.write_all a "abc" 0 3;
      Unix.close a;
      Helpers.check_true "EOF inside a frame raises End_of_file"
        (match Sock.recv_frame b with
        | _ -> false
        | exception End_of_file -> true))

(* ---------------- partitioner ---------------- *)

let partition_total =
  Helpers.qcheck ~count:15 "every edge and index bucket lives on exactly its owner shard"
    QCheck2.Gen.(pair (int_range 1 100_000) (int_range 1 5))
    (fun (seed, shards) ->
      let _, g, constrs, _ = Helpers.random_instance seed in
      let schema = Schema.build g constrs in
      with_temp_file (fun snap ->
          Schema.save schema snap;
          with_temp_dir (fun dir ->
              let m = Shard.partition ~shards ~snapshot:snap ~dir in
              let stores =
                Array.map
                  (fun (f : Shard.shard_file) -> Paged.open_ (Filename.concat dir f.file))
                  m.files
              in
              Fun.protect
                ~finally:(fun () -> Array.iter Paged.close stores)
                (fun () ->
                  let srcs = Array.map Paged.source stores in
                  let ok = ref true in
                  (* Edges: answered true on the source's owner, false
                     everywhere else. *)
                  Digraph.iter_edges g (fun u v ->
                      let owner = Shard.owner_of_node ~shards u in
                      Array.iteri
                        (fun s src ->
                          let got = src.Exec.probe_edge u v in
                          if got <> (s = owner) then ok := false)
                        srcs);
                  (* Index buckets: full bucket on the owner, nothing
                     elsewhere; totality over every key of every
                     constraint. *)
                  List.iter
                    (fun c ->
                      let idx = Schema.index_of schema c in
                      Index.iter idx (fun key bucket ->
                          let hits =
                            Array.map (fun src -> src.Exec.lookup c key) srcs
                          in
                          let owners =
                            Array.fold_left
                              (fun acc h -> if Array.length h > 0 then acc + 1 else acc)
                              0 hits
                          in
                          let expected_owners = if Array.length bucket > 0 then 1 else 0 in
                          if owners <> expected_owners then ok := false;
                          Array.iter
                            (fun h ->
                              if Array.length h > 0 && h <> bucket then ok := false)
                            hits))
                    (Schema.constraints schema);
                  (* Conservation: shard edge counts sum to the total. *)
                  let total =
                    Array.fold_left
                      (fun acc (f : Shard.shard_file) -> acc + f.n_edges)
                      0 m.files
                  in
                  !ok && total = Digraph.n_edges g))))

let test_manifest_roundtrip () =
  let _, g, constrs, _ = Helpers.random_instance 42 in
  let schema = Schema.build g constrs in
  with_temp_file (fun snap ->
      Schema.save schema snap;
      with_temp_dir (fun dir ->
          let m = Shard.partition ~shards:3 ~snapshot:snap ~dir in
          let m' = Shard.load_manifest dir in
          Helpers.check_int "shards" m.shards m'.shards;
          Helpers.check_int "stamp" m.stamp m'.stamp;
          Helpers.check_int "nodes" m.n_nodes m'.n_nodes;
          Helpers.check_int "edges" m.n_edges m'.n_edges;
          Helpers.check_true "constraints" (m.constraints = m'.constraints);
          Helpers.check_true "files" (m.files = m'.files);
          Helpers.check_true "labels"
            (List.map (Label.name m.table) (Label.all m.table)
            = List.map (Label.name m'.table) (Label.all m'.table));
          (* Checksums hold... *)
          Shard.verify_files m';
          (* ...until a shard file is damaged. *)
          let victim = Filename.concat dir m.files.(1).file in
          let fd = Unix.openfile victim [ Unix.O_WRONLY ] 0 in
          ignore (Unix.lseek fd 100 Unix.SEEK_SET);
          ignore (Unix.write fd (Bytes.make 1 '\255') 0 1);
          Unix.close fd;
          Helpers.check_true "damage detected"
            (match Shard.verify_files m' with
            | () -> false
            | exception Binfile.Corrupt _ -> true)))

(* ---------------- multi-process execution ---------------- *)

let q0_setup () =
  let ds = Bpq_workload.Workload.imdb ~scale:0.02 () in
  let a0 = Bpq_workload.Workload.a0 ds.table in
  let schema = Schema.build ds.graph a0 in
  let plan = Qplan.generate_exn Actualized.Subgraph (Bpq_workload.Workload.q0 ds.table) a0 in
  (schema, plan)

let test_workers_equal_single_node () =
  let schema, plan = q0_setup () in
  let reference = canon (Exec.run schema plan) in
  with_remote schema 4 (fun _m r _workers ->
      let res = Exec.run_with (Remote.source r) plan in
      Helpers.check_true "pushdown byte-identical to single node" (canon res = reference);
      Helpers.check_true "some operation actually pushed"
        (List.exists (fun (tr : Exec.op_trace) -> tr.pushed) res.trace);
      let st = Remote.stats r in
      let messages, pushed_bytes = Remote.traffic st in
      Helpers.check_true "talked to the workers" (messages > 0 && pushed_bytes > 0);
      (* Round trips are O(plan operations), not O(lookups): each
         operation costs at most two pushed rounds (or a fetch and a
         probe round), plus one final attribute-warm round. *)
      let ops = List.length res.trace in
      Helpers.check_true
        (Printf.sprintf "rounds %d bounded by 3 x %d ops" st.rounds ops)
        (st.rounds <= (3 * ops) + 1);
      Helpers.check_int "message count matches rounds accounting" messages
        (Array.fold_left ( + ) 0 st.messages);
      (* The batched-fetch path answers identically, with no pushed
         flags. *)
      let batched = Exec.run_with (Remote.source ~pushdown:false r) plan in
      Helpers.check_true "batched byte-identical to single node"
        (canon batched = reference);
      Helpers.check_true "batched path pushes nothing"
        (List.for_all (fun (tr : Exec.op_trace) -> not tr.pushed) batched.trace))

(* Wire savings measured honestly: one fresh cluster (cold coordinator
   caches, cold page caches) per mode. *)
let test_pushdown_saves_wire_bytes () =
  let schema, plan = q0_setup () in
  let bytes_with pushdown =
    with_remote schema 4 (fun _m r _workers ->
        ignore (Exec.run_with (Remote.source ~pushdown r) plan);
        snd (Remote.traffic (Remote.stats r)))
  in
  let batched = bytes_with false in
  let pushed = bytes_with true in
  Helpers.check_true
    (Printf.sprintf "pushdown bytes %d below batched bytes %d" pushed batched)
    (pushed < batched)

let test_unbatched_equals_batched () =
  let schema, plan = q0_setup () in
  let reference = canon (Exec.run schema plan) in
  with_remote schema 2 (fun _m r _workers ->
      let pushed = Exec.run_with (Remote.source r) plan in
      let plain = Remote.source ~pushdown:false r in
      let batched = Exec.run_with plain plan in
      let unbatched =
        Exec.run_with { plain with Exec.prefetch = None; probe_edges = None } plan
      in
      Helpers.check_true "pushdown identical" (canon pushed = reference);
      Helpers.check_true "batched identical" (canon batched = reference);
      Helpers.check_true "unbatched identical" (canon unbatched = reference))

let workers_equal_single_qcheck =
  Helpers.qcheck ~count:8 "forked workers reproduce the single-node result exactly"
    QCheck2.Gen.(pair (int_range 1 100_000) (int_range 1 4))
    (fun (seed, shards) ->
      match instance_plan seed with
      | _, None -> true
      | schema, Some plan ->
        let reference = canon (Exec.run schema plan) in
        with_remote schema shards (fun _m r _workers ->
            canon (Exec.run_with (Remote.source r) plan) = reference
            && canon (Exec.run_with (Remote.source ~pushdown:false r) plan) = reference))

let test_matches_remote_sim_and_single_agree () =
  let schema, plan = q0_setup () in
  let single = Exec.run schema plan in
  List.iter
    (fun shards ->
      with_remote schema shards (fun _m r _workers ->
          let remote = Exec.run_with (Remote.source r) plan in
          let sim, _ = Distributed.run (Distributed.create ~shards schema) plan in
          let loose (x : Exec.result) =
            ( List.sort compare (Array.to_list x.from_gq),
              Array.map (fun a -> List.sort compare (Array.to_list a)) x.candidates_g,
              Digraph.n_edges x.gq )
          in
          Helpers.check_true
            (Printf.sprintf "remote = single at %d shards" shards)
            (canon remote = canon single);
          Helpers.check_true
            (Printf.sprintf "remote = simulation at %d shards" shards)
            (loose remote = loose sim)))
    [ 1; 2; 4 ]

let test_worker_death_is_clean () =
  let schema, plan = q0_setup () in
  with_remote schema 2 (fun _m r workers ->
      (* Kill the worker owning node 0 (shard 0), then force traffic to
         it: a clean typed error, not a hang or a bare EOF. *)
      Unix.kill workers.(0).pid Sys.sigkill;
      ignore (Unix.waitpid [] workers.(0).pid);
      let src = Remote.source r in
      Helpers.check_true "probe to dead worker raises Worker_died"
        (match src.Exec.probe_edge 0 1 with
        | _ -> false
        | exception Remote.Worker_died { shard = 0; _ } -> true);
      (* The default source pushes plan operations, so this exercises a
         worker dying mid-pushdown round... *)
      Helpers.check_true "pushed query over dead worker raises Worker_died"
        (match Exec.run_with src plan with
        | _ -> false
        | exception Remote.Worker_died _ -> true);
      (* ...and the batched path fails just as cleanly. *)
      Helpers.check_true "batched query over dead worker raises Worker_died"
        (match Exec.run_with (Remote.source ~pushdown:false r) plan with
        | _ -> false
        | exception Remote.Worker_died _ -> true))

let test_stale_plan_rejected () =
  let _, g, constrs, _ = Helpers.random_instance 11 in
  let schema = Schema.build g constrs in
  with_remote schema 2 (fun m r _workers ->
      (* The stamp the shards were cut from passes validation... *)
      Remote.probe_plan_stamp r m.Shard.stamp;
      (* ...any other stamp gets the typed rejection, carrying both
         sides of the disagreement. *)
      Helpers.check_true "foreign stamp raises Stale_plan"
        (match Remote.probe_plan_stamp r (m.Shard.stamp + 1) with
        | () -> false
        | exception Remote.Stale_plan { shard = 0; worker_stamp; plan_stamp } ->
          worker_stamp = m.Shard.stamp && plan_stamp = m.Shard.stamp + 1))

let test_attach_rejects_wrong_worker_set () =
  let _, g, constrs, _ = Helpers.random_instance 7 in
  let schema = Schema.build g constrs in
  with_temp_file (fun snap ->
      Schema.save schema snap;
      with_temp_dir (fun dir ->
          let m2 = Shard.partition ~shards:2 ~snapshot:snap ~dir in
          with_temp_dir (fun dir3 ->
              let m3 = Shard.partition ~shards:3 ~snapshot:snap ~dir:dir3 in
              (* Workers of the 3-way partition offered to a 2-way
                 manifest: refused at the hello exchange. *)
              let all = fork_workers m3 in
              let workers = Array.sub all 0 2 in
              Helpers.check_true "mismatched partition refused"
                (match Remote.attach m2 (Array.map (fun w -> w.fd) workers) with
                | r ->
                  Remote.close r;
                  false
                | exception Failure _ -> true);
              reap all)))

let suite =
  [ Alcotest.test_case "frame roundtrip" `Quick test_frame_roundtrip;
    Alcotest.test_case "frame oversize" `Quick test_frame_oversize;
    Alcotest.test_case "frame death mid-frame" `Quick test_frame_death_mid_frame;
    partition_total;
    Alcotest.test_case "manifest roundtrip" `Quick test_manifest_roundtrip;
    Alcotest.test_case "workers equal single node" `Quick test_workers_equal_single_node;
    Alcotest.test_case "pushdown saves wire bytes" `Quick test_pushdown_saves_wire_bytes;
    Alcotest.test_case "unbatched equals batched" `Quick test_unbatched_equals_batched;
    workers_equal_single_qcheck;
    Alcotest.test_case "remote, simulation and single agree" `Quick
      test_matches_remote_sim_and_single_agree;
    Alcotest.test_case "worker death is clean" `Quick test_worker_death_is_clean;
    Alcotest.test_case "stale plan stamp rejected" `Quick test_stale_plan_rejected;
    Alcotest.test_case "attach rejects wrong workers" `Quick
      test_attach_rejects_wrong_worker_set ]
