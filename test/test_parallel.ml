(* Intra-query parallelism: the determinism contract.  Everything the
   pool touches — Exec's tuple-range partitioning, Vf2's root-candidate
   splitting, the per-domain fetch-cache shards — must produce answers
   byte-identical to the sequential run at every pool size, with the
   caches on or off, warm or cold. *)

open Bpq_graph
open Bpq_access
open Bpq_core
module W = Bpq_workload.Workload
module Pool = Bpq_util.Pool
module Vf2 = Bpq_matcher.Vf2

let imdb = lazy (W.imdb ~scale:0.03 ())

(* One pool per size, shared by all tests in the suite (spawning domains
   per property iteration would dominate the run).  Alcotest runs suites
   in-process, so at_exit shutdown is fine. *)
let pools =
  lazy
    (let ps = List.map (fun j -> (j, Pool.create j)) [ 1; 2; 4 ] in
     at_exit (fun () -> List.iter (fun (_, p) -> Pool.shutdown p) ps);
     ps)

let each_pool f = List.iter (fun (j, p) -> f j p) (Lazy.force pools)

(* The widened Q0 window: a G_Q heavy enough that the parallel paths
   actually split (the odometer and root-splitting thresholds bite). *)
let wide_setup =
  lazy
    (let ds = Lazy.force imdb in
     let a0 = W.a0 ds.W.table in
     let schema = Schema.build ds.W.graph a0 in
     let wide =
       Bpq_pattern.Template.instantiate (W.t0 ds.W.table)
         [ ("lo", Value.Int 1900); ("hi", Value.Int 2100) ]
     in
     (ds, schema, Qplan.generate_exn Actualized.Subgraph wide a0))

(* ------------------------------------------------------------------ *)
(* iter_tuples_slice: slices partition the odometer enumeration        *)
(* ------------------------------------------------------------------ *)

let collect_slice arrays lo hi =
  let acc = ref [] in
  Exec.iter_tuples_slice arrays ~lo ~hi (fun t -> acc := Array.to_list t :: !acc);
  List.rev !acc

let slices_partition_enumeration =
  Helpers.qcheck ~count:200 "iter_tuples_slice partitions = full enumeration"
    QCheck2.Gen.(
      pair
        (pair (int_range 1 1000) (int_range 1 1000))
        (list_size (int_range 0 4) (int_range 0 5)))
    (fun ((seed, cuts_seed), row_sizes) ->
      let module Prng = Bpq_util.Prng in
      let r = Prng.create seed in
      let arrays =
        Array.of_list
          (List.map (fun len -> Array.init len (fun _ -> Prng.int r 50)) row_sizes)
      in
      let total = Array.fold_left (fun acc a -> acc * Array.length a) 1 arrays in
      let full =
        let anchors = List.mapi (fun i _ -> ((), i)) row_sizes in
        let acc = ref [] in
        Exec.iter_tuples arrays anchors (fun t -> acc := Array.to_list t :: !acc);
        List.rev !acc
      in
      (* Split [0, total) at two pseudo-random cut points. *)
      let rc = Prng.create cuts_seed in
      let a = if total = 0 then 0 else Prng.int rc (total + 1) in
      let b = if total = 0 then 0 else Prng.int rc (total + 1) in
      let lo1, hi1 = (0, min a b) in
      let lo2, hi2 = (min a b, max a b) in
      let lo3, hi3 = (max a b, total) in
      let stitched =
        collect_slice arrays lo1 hi1 @ collect_slice arrays lo2 hi2
        @ collect_slice arrays lo3 hi3
      in
      stitched = full
      && collect_slice arrays 0 0 = []
      && collect_slice arrays 0 total = full)

(* ------------------------------------------------------------------ *)
(* Exec: parallel runs are byte-identical, cache on and off            *)
(* ------------------------------------------------------------------ *)

let edges_of g =
  let acc = ref [] in
  Digraph.iter_edges g (fun s t -> acc := (s, t) :: !acc);
  List.rev !acc

let result_fingerprint (r : Exec.result) =
  ( r.from_gq,
    edges_of r.gq,
    r.candidates_g,
    r.candidates_gq,
    r.stats,
    List.map (fun (t : Exec.op_trace) -> (t.op, t.estimate, t.realized)) r.trace )

let test_exec_parallel_identical () =
  let _, schema, plan = Lazy.force wide_setup in
  let base = result_fingerprint (Exec.run schema plan) in
  each_pool (fun j pool ->
      let name = Printf.sprintf "jobs=%d" j in
      Helpers.check_true (name ^ " no cache")
        (result_fingerprint (Exec.run ~pool schema plan) = base);
      let cache = Fetch_cache.create ~capacity:4096 () in
      Helpers.check_true (name ^ " cold cache")
        (result_fingerprint (Exec.run ~pool ~cache schema plan) = base);
      Helpers.check_true (name ^ " warm cache")
        (result_fingerprint (Exec.run ~pool ~cache schema plan) = base))

let exec_parallel_identical_random =
  Helpers.qcheck ~count:25 "Exec parallel = sequential on random instances"
    QCheck2.Gen.(int_range 1 100_000)
    (fun seed ->
      let _, g, constrs, r = Helpers.random_instance seed in
      let q = Bpq_pattern.Qgen.random r g in
      match Qplan.generate Actualized.Subgraph q constrs with
      | None -> true
      | Some plan ->
        let schema = Schema.build g constrs in
        let base = result_fingerprint (Exec.run schema plan) in
        List.for_all
          (fun (_, pool) -> result_fingerprint (Exec.run ~pool schema plan) = base)
          (Lazy.force pools))

(* ------------------------------------------------------------------ *)
(* Vf2: root-split search returns the exact sequential answer          *)
(* ------------------------------------------------------------------ *)

let test_vf2_parallel_identical () =
  let _, schema, plan = Lazy.force wide_setup in
  let r = Exec.run schema plan in
  let q = plan.Plan.pattern in
  let seq_matches = Vf2.matches ~candidates:r.candidates_gq r.gq q in
  let seq_count = Vf2.count_matches ~candidates:r.candidates_gq r.gq q in
  Helpers.check_true "workload is nontrivial" (seq_count > 100);
  each_pool (fun j pool ->
      let name = Printf.sprintf "jobs=%d" j in
      Helpers.check_true (name ^ " count")
        (Vf2.count_matches ~pool ~candidates:r.candidates_gq r.gq q = seq_count);
      (* list equality, not multiset: order is part of the contract *)
      Helpers.check_true (name ^ " matches in order")
        (Vf2.matches ~pool ~candidates:r.candidates_gq r.gq q = seq_matches);
      List.iter
        (fun l ->
          Helpers.check_int
            (Printf.sprintf "%s count limit %d" name l)
            (Vf2.count_matches ~limit:l ~candidates:r.candidates_gq r.gq q)
            (Vf2.count_matches ~pool ~limit:l ~candidates:r.candidates_gq r.gq q);
          Helpers.check_true
            (Printf.sprintf "%s matches limit %d" name l)
            (Vf2.matches ~pool ~limit:l ~candidates:r.candidates_gq r.gq q
             = Vf2.matches ~limit:l ~candidates:r.candidates_gq r.gq q))
        [ 1; 7; 100_000 ])

let vf2_parallel_identical_random =
  Helpers.qcheck ~count:25 "Vf2 parallel = sequential on random graphs"
    QCheck2.Gen.(int_range 1 100_000)
    (fun seed ->
      let _, g, _, r = Helpers.random_instance seed in
      let q =
        if Bpq_util.Prng.bool r then Bpq_pattern.Qgen.from_walk r g
        else Bpq_pattern.Qgen.random r g
      in
      let seq = Vf2.matches g q in
      List.for_all (fun (_, pool) -> Vf2.matches ~pool g q = seq) (Lazy.force pools))

(* ------------------------------------------------------------------ *)
(* End to end: evaluators, cache interaction, batch                    *)
(* ------------------------------------------------------------------ *)

let test_bounded_eval_parallel_identical () =
  let _, schema, plan = Lazy.force wide_setup in
  let seq = Bounded_eval.bvf2_matches schema plan in
  let seq_sim = Helpers.norm_sim (Bounded_eval.bsim schema plan) in
  each_pool (fun j pool ->
      let name = Printf.sprintf "jobs=%d" j in
      Helpers.check_true (name ^ " bvf2") (Bounded_eval.bvf2_matches ~pool schema plan = seq);
      Helpers.check_true (name ^ " bsim")
        (Helpers.norm_sim (Bounded_eval.bsim ~pool schema plan) = seq_sim))

(* A result cached under one pool size must serve — unchanged — under
   every other pool size: the cache key is the query, not the execution
   strategy. *)
let test_qcache_warm_across_pool_sizes () =
  let _, schema, plan = Lazy.force wide_setup in
  let seq = Bounded_eval.bvf2_matches schema plan in
  let cache = Qcache.create () in
  let eval pool =
    match Qcache.eval_plan cache ?pool schema plan with
    | Qcache.Matches ms -> ms
    | Qcache.Relation _ -> assert false
  in
  let cold = eval None in
  let cold_stats = Qcache.stats cache in
  Helpers.check_true "cold pass equals uncached" (cold = seq);
  each_pool (fun j pool ->
      Helpers.check_true
        (Printf.sprintf "warm hit serves jobs=%d" j)
        (eval (Some pool) = seq));
  let final = Qcache.stats cache in
  Helpers.check_int "every pooled pass hit the result tier"
    (List.length (Lazy.force pools))
    (final.Qcache.result_hits - cold_stats.Qcache.result_hits)

(* And the converse: populate under a parallel pool, serve sequentially. *)
let test_qcache_warm_from_parallel () =
  let _, schema, plan = Lazy.force wide_setup in
  let seq = Bounded_eval.bvf2_matches schema plan in
  let cache = Qcache.create () in
  let pool = List.assoc 4 (Lazy.force pools) in
  let eval pool' =
    match Qcache.eval_plan cache ?pool:pool' schema plan with
    | Qcache.Matches ms -> ms
    | Qcache.Relation _ -> assert false
  in
  Helpers.check_true "parallel cold pass" (eval (Some pool) = seq);
  let warmed = Qcache.stats cache in
  Helpers.check_true "sequential warm pass" (eval None = seq);
  let final = Qcache.stats cache in
  Helpers.check_int "served from the result tier" 1
    (final.Qcache.result_hits - warmed.Qcache.result_hits)

let test_batch_intra_identical () =
  let ds = Lazy.force imdb in
  let a0 = W.a0 ds.W.table in
  let schema = Schema.build ds.W.graph a0 in
  let queries =
    List.map
      (fun (lo, hi) ->
        Bpq_pattern.Template.instantiate (W.t0 ds.W.table)
          [ ("lo", Value.Int lo); ("hi", Value.Int hi) ])
      [ (2005, 2012); (1900, 2100); (2011, 2013) ]
  in
  let strip =
    List.map (fun (_, o) ->
        match o with
        | Some (Batch.Answer (Batch.Matches ms, _)) -> Some ms
        | Some (Batch.Answer (Batch.Relation _, _)) | Some (Batch.Timeout _) | None ->
          None)
  in
  let base = strip (Batch.eval_patterns Actualized.Subgraph schema queries) in
  Helpers.check_true "answers exist" (List.exists Option.is_some base);
  each_pool (fun j pool ->
      Helpers.check_true
        (Printf.sprintf "batch intra jobs=%d" j)
        (strip (Batch.eval_patterns ~pool ~intra:pool Actualized.Subgraph schema queries)
         = base))

let suite =
  [ slices_partition_enumeration;
    Alcotest.test_case "Exec parallel byte-identical (wide Q0, cache on/off)" `Quick
      test_exec_parallel_identical;
    exec_parallel_identical_random;
    Alcotest.test_case "Vf2 parallel byte-identical incl. limits" `Quick
      test_vf2_parallel_identical;
    vf2_parallel_identical_random;
    Alcotest.test_case "evaluators byte-identical across pools" `Quick
      test_bounded_eval_parallel_identical;
    Alcotest.test_case "Qcache warm hits serve any pool size" `Quick
      test_qcache_warm_across_pool_sizes;
    Alcotest.test_case "Qcache populated in parallel serves sequential" `Quick
      test_qcache_warm_from_parallel;
    Alcotest.test_case "Batch ?intra leaves answers unchanged" `Quick
      test_batch_intra_identical ]
