(* Cross-backend equivalence: the in-memory schema, the reloaded
   snapshot and the out-of-core paged store must serve byte-identical
   results at every page-cache capacity and pool size. *)

open Bpq_graph
open Bpq_access
open Bpq_core
module Store = Bpq_store.Store
module Paged = Bpq_store.Paged
module Pool = Bpq_util.Pool

let with_temp_file f =
  let path = Filename.temp_file "bpq_store" ".snap" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let with_paged ?page_cache_mb ?cache_pages ?readahead path f =
  let p = Paged.open_ ?page_cache_mb ?cache_pages ?readahead path in
  Fun.protect ~finally:(fun () -> Paged.close p) (fun () -> f p)

(* Strict result identity: arrays verbatim, stats, trace and the exact
   G_Q representation. *)
let canon (r : Exec.result) =
  (r.from_gq, r.candidates_g, r.stats, r.trace, Digraph.Repr.of_graph r.gq)

let instance_plan seed =
  let _, g, constrs, r = Helpers.random_instance seed in
  let schema = Schema.build g constrs in
  let q = Bpq_pattern.Qgen.from_walk r g in
  (schema, Qplan.generate Actualized.Subgraph q constrs)

let backends_identical =
  Helpers.qcheck ~count:25 "paged results identical to memory at every capacity"
    QCheck2.Gen.(int_range 1 100_000) (fun seed ->
      match instance_plan seed with
      | _, None -> true
      | schema, Some plan ->
        with_temp_file (fun path ->
            Schema.save schema path;
            let reference = canon (Exec.run schema plan) in
            let via_load =
              let schema2, _ = Schema.load (Label.create_table ()) path in
              canon (Exec.run schema2 plan)
            in
            let via_paged cache_pages =
              with_paged ~cache_pages path (fun p ->
                  canon (Exec.run_with (Paged.source p) plan))
            in
            (* Capacity 0: every access faults.  1: constant thrash.
               65536: everything resident after first touch. *)
            reference = via_load
            && List.for_all (fun cap -> via_paged cap = reference) [ 0; 1; 7; 65536 ]))

let answers_identical =
  Helpers.qcheck ~count:20 "bounded answers agree across backends"
    QCheck2.Gen.(pair (int_range 1 100_000) bool) (fun (seed, sim) ->
      let _, g, constrs, r = Helpers.random_instance seed in
      let schema = Schema.build g constrs in
      let sem = if sim then Actualized.Simulation else Actualized.Subgraph in
      let q = Bpq_pattern.Qgen.from_walk r g in
      match Qplan.generate sem q constrs with
      | None -> true
      | Some plan ->
        with_temp_file (fun path ->
            Schema.save schema path;
            with_paged ~cache_pages:3 path (fun p ->
                Bounded_eval.run (Exec.source_of_schema schema) plan
                = Bounded_eval.run (Paged.source p) plan)))

let q0_setup () =
  let ds = Bpq_workload.Workload.imdb ~scale:0.02 () in
  let a0 = Bpq_workload.Workload.a0 ds.table in
  let schema = Schema.build ds.graph a0 in
  let plan = Qplan.generate_exn Actualized.Subgraph (Bpq_workload.Workload.q0 ds.table) a0 in
  (schema, plan)

let test_q0_parity_and_pools () =
  let schema, plan = q0_setup () in
  with_temp_file (fun path ->
      Schema.save schema path;
      let reference = canon (Exec.run schema plan) in
      with_paged ~page_cache_mb:1 path (fun p ->
          let src = Paged.source p in
          Helpers.check_true "sequential paged run identical"
            (canon (Exec.run_with src plan) = reference);
          let pools = List.map (fun j -> (j, Pool.create j)) [ 2; 4 ] in
          Fun.protect
            ~finally:(fun () -> List.iter (fun (_, p) -> Pool.shutdown p) pools)
            (fun () ->
              List.iter
                (fun (j, pool) ->
                  Helpers.check_true
                    (Printf.sprintf "paged run identical on %d domains" j)
                    (canon (Exec.run_with ~pool src plan) = reference))
                pools)))

let test_io_counters () =
  let schema, plan = q0_setup () in
  with_temp_file (fun path ->
      Schema.save schema path;
      with_paged ~page_cache_mb:64 path (fun p ->
          let src = Paged.source p in
          let c0 = Paged.io_counters p in
          Helpers.check_int "open-time reads not counted" 0 c0.Paged.faults;
          ignore (Exec.run_with src plan);
          let cold = Paged.io_counters p in
          Helpers.check_true "cold run faults" (cold.Paged.faults > 0);
          Helpers.check_true "bytes follow faults and prefetches"
            (cold.Paged.bytes_read > 0
            && cold.Paged.bytes_read
               <= (cold.Paged.faults + cold.Paged.prefetched) * Paged.page_size);
          (* Warm run: the budget holds the working set, so no new
             faults. *)
          Paged.reset_io p;
          ignore (Exec.run_with src plan);
          let warm = Paged.io_counters p in
          Helpers.check_int "warm run fully cached" 0 warm.Paged.faults;
          Helpers.check_true "warm run hits" (warm.Paged.hits > 0);
          (* Dropping the cache makes the next run cold again. *)
          Paged.reset_io p;
          Paged.drop_cache p;
          ignore (Exec.run_with src plan);
          let recold = Paged.io_counters p in
          Helpers.check_int "drop_cache restores cold behaviour" cold.Paged.faults
            recold.Paged.faults);
      (* Capacity 0 stores nothing: every page access faults. *)
      with_paged ~cache_pages:0 path (fun p ->
          ignore (Exec.run_with (Paged.source p) plan);
          let c = Paged.io_counters p in
          Helpers.check_true "uncached store faults" (c.Paged.faults > 0);
          Helpers.check_int "uncached store never hits" 0 c.Paged.hits))

(* Sequential readahead: same answers, separately-counted prefetch I/O,
   and never more demand faults than the readahead-free run. *)
let test_readahead () =
  let schema, plan = q0_setup () in
  with_temp_file (fun path ->
      Schema.save schema path;
      let reference = canon (Exec.run schema plan) in
      let demand =
        with_paged ~page_cache_mb:64 ~readahead:0 path (fun p ->
            Helpers.check_true "readahead 0 identical"
              (canon (Exec.run_with (Paged.source p) plan) = reference);
            let c = Paged.io_counters p in
            Helpers.check_int "readahead 0 never prefetches" 0 c.Paged.prefetched;
            Helpers.check_true "demand bytes bounded by faults"
              (c.Paged.bytes_read <= c.Paged.faults * Paged.page_size);
            c)
      in
      with_paged ~page_cache_mb:64 ~readahead:8 path (fun p ->
          Helpers.check_true "readahead 8 identical"
            (canon (Exec.run_with (Paged.source p) plan) = reference);
          let c = Paged.io_counters p in
          Helpers.check_true "sequential scans trigger prefetch" (c.Paged.prefetched > 0);
          Helpers.check_true "prefetch only converts faults, never adds them"
            (c.Paged.faults <= demand.Paged.faults);
          Helpers.check_true "prefetched pages are charged as bytes"
            (c.Paged.bytes_read
             <= (c.Paged.faults + c.Paged.prefetched) * Paged.page_size));
      Alcotest.check_raises "negative readahead rejected"
        (Invalid_argument "Paged.open_: negative readahead")
        (fun () -> ignore (Paged.open_ ~readahead:(-1) path)))

let test_source_metadata () =
  let schema, _ = q0_setup () in
  with_temp_file (fun path ->
      Schema.save schema path;
      with_paged path (fun p ->
          let src = Paged.source p in
          Helpers.check_int "stamp matches schema" (Schema.stamp schema) src.Exec.stamp;
          Helpers.check_int "graph size matches"
            (Digraph.size (Schema.graph schema))
            src.Exec.graph_size;
          Helpers.check_int "constraint count"
            (List.length (Schema.constraints schema))
            (List.length src.Exec.constraints);
          Helpers.check_true "constraints equal"
            (List.for_all2 Constr.equal (Schema.constraints schema) src.Exec.constraints)))

let test_unknown_constraint_raises () =
  let _, g, constrs, _ = Helpers.random_instance 5 in
  let schema = Schema.build g constrs in
  with_temp_file (fun path ->
      Schema.save schema path;
      with_paged path (fun p ->
          let src = Paged.source p in
          let foreign = Constr.make ~source:[] ~target:9999 ~bound:1 in
          (match src.Exec.lookup foreign [] with
          | exception Not_found -> ()
          | _ -> Alcotest.fail "expected Not_found for a foreign constraint");
          (* Wrong-arity keys find nothing, like the in-memory index. *)
          match src.Exec.constraints with
          | [] -> ()
          | c :: _ ->
            let too_wide = List.init (Constr.arity c + 1) Fun.id in
            Helpers.check_int "wrong-arity key finds nothing" 0
              (Array.length (src.Exec.lookup c too_wide))))

let test_qcache_across_backends () =
  let schema, plan = q0_setup () in
  with_temp_file (fun path ->
      Schema.save schema path;
      with_paged path (fun p ->
          let cache = Qcache.create () in
          let mem_src = Exec.source_of_schema schema in
          let a1 = Qcache.eval_plan_with cache mem_src plan in
          (* Same stamp (snapshot preserves it), same key: the paged
             evaluation must be served from the result tier. *)
          let a2 = Qcache.eval_plan_with cache (Paged.source p) plan in
          Helpers.check_true "answers equal" (a1 = a2);
          let st = Qcache.stats cache in
          Helpers.check_int "result tier hit across backends" 1 st.Qcache.result_hits;
          Helpers.check_int "one evaluation total" 1 st.Qcache.result_misses))

let test_distributed_over_paged () =
  let schema, plan = q0_setup () in
  with_temp_file (fun path ->
      Schema.save schema path;
      with_paged path (fun p ->
          let reference, _ = Distributed.run (Distributed.create ~shards:4 schema) plan in
          let over_paged, stats =
            Distributed.run (Distributed.create_with ~shards:4 (Paged.source p)) plan
          in
          Helpers.check_true "sharded paged run identical"
            (canon over_paged = canon reference);
          Helpers.check_true "traffic recorded"
            (Array.fold_left ( + ) 0 stats.Distributed.lookups_per_shard > 0)))

let test_batch_over_paged () =
  let ds = Bpq_workload.Workload.imdb ~scale:0.02 () in
  let a0 = Bpq_workload.Workload.a0 ds.table in
  let schema = Schema.build ds.graph a0 in
  let patterns =
    [ Bpq_workload.Workload.q0 ds.table; Bpq_workload.Workload.q0 ds.table ]
  in
  with_temp_file (fun path ->
      Schema.save schema path;
      with_paged path (fun p ->
          let on_mem =
            Batch.run_patterns Actualized.Subgraph (Exec.source_of_schema schema) patterns
          in
          let on_paged = Batch.run_patterns Actualized.Subgraph (Paged.source p) patterns in
          List.iter2
            (fun (_, a) (_, b) ->
              match (a, b) with
              | Some (Batch.Answer (x, _)), Some (Batch.Answer (y, _)) ->
                Helpers.check_true "batch answers equal" (x = y)
              | None, None -> ()
              | _ -> Alcotest.fail "batch outcomes disagree across backends")
            on_mem on_paged))

let test_store_handle () =
  let schema, plan = q0_setup () in
  with_temp_file (fun path ->
      Schema.save schema path;
      let mem = Store.open_snapshot ~backend:Store.Mem path in
      let paged =
        Store.open_snapshot ~backend:Store.Paged ~page_cache_mb:4 ~verify:true path
      in
      Fun.protect
        ~finally:(fun () ->
          Store.close mem;
          Store.close paged)
        (fun () ->
          Helpers.check_true "backends report themselves"
            (Store.backend mem = Store.Mem && Store.backend paged = Store.Paged);
          Helpers.check_int "stamps agree" (Store.stamp mem) (Store.stamp paged);
          Helpers.check_int "graph sizes agree" (Store.graph_size mem)
            (Store.graph_size paged);
          Helpers.check_true "mem exposes a schema" (Store.schema mem <> None);
          Helpers.check_true "paged does not materialise a schema"
            (Store.schema paged = None);
          Helpers.check_true "only paged counts io"
            (Store.io_counters mem = None && Store.io_counters paged <> None);
          Helpers.check_true "selectivity round trips through of_schema"
            (Store.selectivity (Store.of_schema schema) = None);
          Helpers.check_true "handles serve identical results"
            (canon (Exec.run_with (Store.source mem) plan)
            = canon (Exec.run_with (Store.source paged) plan))))

(* close is idempotent — a snapshot-reload path racing shutdown may
   close twice — and a closed store fails deterministically instead of
   serving stale cached pages or hitting a closed channel. *)
let test_paged_close () =
  let _, g, constrs, r = Helpers.random_instance 2015 in
  let schema = Schema.build g constrs in
  with_temp_file (fun path ->
      Schema.save schema path;
      let p = Paged.open_ ~cache_pages:8 path in
      let src = Paged.source p in
      (* Touch some data so the page cache holds live pages. *)
      (match Qplan.generate Actualized.Subgraph (Bpq_pattern.Qgen.from_walk r g) constrs with
       | Some plan -> ignore (Exec.run_with src plan)
       | None -> ());
      Paged.close p;
      Paged.close p;
      (* second close is a no-op *)
      let is_closed = function
        | Sys_error msg ->
          Helpers.check_true "diagnostic names the store"
            (String.length msg >= String.length path);
          true
        | _ -> false
      in
      (match Paged.source p with
       | src2 ->
         (match src2.Exec.graph_size with
          | _ -> ()  (* metadata stays readable: loaded at open *)
          | exception _ -> Alcotest.fail "metadata should not need the file");
         (match List.nth_opt (Paged.constraints p) 0 with
          | Some c ->
            (match src2.Exec.lookup c [] with
             | _ -> Alcotest.fail "lookup after close should raise"
             | exception e -> Helpers.check_true "lookup raises Sys_error" (is_closed e))
          | None -> ()));
      (* Reopening the same snapshot works fine after a close. *)
      let p2 = Paged.open_ ~cache_pages:8 path in
      Helpers.check_int "reopen sees the same graph" (Paged.graph_size p2) (Paged.graph_size p);
      Paged.close p2)

let suite =
  [ backends_identical;
    answers_identical;
    Alcotest.test_case "q0 parity across pools" `Quick test_q0_parity_and_pools;
    Alcotest.test_case "io counters" `Quick test_io_counters;
    Alcotest.test_case "sequential readahead" `Quick test_readahead;
    Alcotest.test_case "source metadata" `Quick test_source_metadata;
    Alcotest.test_case "unknown constraint raises" `Quick test_unknown_constraint_raises;
    Alcotest.test_case "qcache serves both backends" `Quick test_qcache_across_backends;
    Alcotest.test_case "distributed over paged store" `Quick test_distributed_over_paged;
    Alcotest.test_case "batch over paged store" `Quick test_batch_over_paged;
    Alcotest.test_case "unified store handle" `Quick test_store_handle;
    Alcotest.test_case "paged close idempotent, use-after-close typed" `Quick test_paged_close ]
