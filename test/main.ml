let () =
  Alcotest.run "bpq"
    [ ("prng", Test_prng.suite);
      ("util", Test_util.suite);
      ("pool", Test_pool.suite);
      ("graph", Test_graph.suite);
      ("pattern", Test_pattern.suite);
      ("io", Test_io.suite);
      ("qgen", Test_qgen.suite);
      ("index", Test_index.suite);
      ("schema", Test_schema.suite);
      ("discovery", Test_discovery.suite);
      ("matcher", Test_matcher.suite);
      ("generators", Test_generators.suite);
      ("actualized", Test_actualized.suite);
      ("plan", Test_plan.suite);
      ("cover", Test_cover.suite);
      ("qplan", Test_qplan.suite);
      ("exec", Test_exec.suite);
      ("instance", Test_instance.suite);
      ("incremental", Test_incremental.suite);
      ("qcache", Test_qcache.suite);
      ("costs", Test_costs.suite);
      ("parallel", Test_parallel.suite);
      ("paper-examples", Test_paper_examples.suite);
      ("workload", Test_workload.suite);
      ("extensions", Test_extensions.suite);
      ("robustness", Test_robustness.suite);
      ("distributed", Test_distributed.suite);
      ("semantics", Test_semantics.suite);
      ("snapshot", Test_snapshot.suite);
      ("store", Test_store.suite);
      ("serve", Test_serve.suite) ]
