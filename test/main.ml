(* Hidden mode used by the shard suite: re-exec this binary as a shard
   worker over an inherited socket.  OCaml 5 forbids [Unix.fork] once
   other domains exist (the pool suites create some), so worker
   processes are spawned by exec'ing ourselves instead.  The protocol
   rides a numbered inherited fd rather than stdio because qcheck
   prints its random seed to stdout during module initialisation —
   before this check can run — which would corrupt the frame stream. *)
let () =
  if Array.length Sys.argv >= 4 && Sys.argv.(1) = "--bpq-worker" then begin
    let fd : Unix.file_descr = Obj.magic (int_of_string Sys.argv.(2)) in
    (try Bpq_store.Remote.serve ~input:fd ~output:fd Sys.argv.(3)
     with e ->
       Printf.eprintf "bpq-worker: %s\n%!" (Printexc.to_string e);
       exit 1);
    exit 0
  end

(* Second hidden mode, same reason: the wal suite's SIGKILL test needs a
   separate appender process to murder, so it re-execs this binary. *)
let () =
  match Sys.getenv_opt "BPQ_WAL_CHILD" with
  | Some path -> Test_wal.child_main path
  | None -> ()

let () =
  Alcotest.run "bpq"
    [ ("prng", Test_prng.suite);
      ("util", Test_util.suite);
      ("pool", Test_pool.suite);
      ("graph", Test_graph.suite);
      ("pattern", Test_pattern.suite);
      ("io", Test_io.suite);
      ("qgen", Test_qgen.suite);
      ("index", Test_index.suite);
      ("schema", Test_schema.suite);
      ("discovery", Test_discovery.suite);
      ("matcher", Test_matcher.suite);
      ("generators", Test_generators.suite);
      ("actualized", Test_actualized.suite);
      ("plan", Test_plan.suite);
      ("cover", Test_cover.suite);
      ("qplan", Test_qplan.suite);
      ("exec", Test_exec.suite);
      ("instance", Test_instance.suite);
      ("incremental", Test_incremental.suite);
      ("qcache", Test_qcache.suite);
      ("costs", Test_costs.suite);
      ("parallel", Test_parallel.suite);
      ("paper-examples", Test_paper_examples.suite);
      ("workload", Test_workload.suite);
      ("extensions", Test_extensions.suite);
      ("robustness", Test_robustness.suite);
      ("distributed", Test_distributed.suite);
      ("semantics", Test_semantics.suite);
      ("snapshot", Test_snapshot.suite);
      ("store", Test_store.suite);
      ("wal", Test_wal.suite);
      ("shard", Test_shard.suite);
      ("serve", Test_serve.suite) ]
