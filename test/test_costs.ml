(* The statistics-driven cost model: selectivity statistics, saturating
   predicate value caps, and the invariant that cost-based ordering is
   advisory — it never changes which operations run, their static
   estimates, the plan's bounds, or the answer. *)

open Bpq_graph
open Bpq_pattern
open Bpq_access
open Bpq_core
module W = Bpq_workload.Workload

let imdb = lazy (W.imdb ~scale:0.03 ())

(* ------------------------------------------------------------------ *)
(* Predicate.value_cap saturation (the Qplan alias is the public name) *)
(* ------------------------------------------------------------------ *)

let test_value_cap_saturates () =
  let cap = Predicate.value_cap in
  let atom op c = Predicate.atom op (Value.Int c) in
  Helpers.check_true "Gt max_int is unsatisfiable" (cap (atom Value.Gt max_int) = Some 0);
  Helpers.check_true "Lt min_int is unsatisfiable" (cap (atom Value.Lt min_int) = Some 0);
  Helpers.check_true "Ge min_int alone stays open"
    (cap (atom Value.Ge min_int) = None);
  Helpers.check_true "full int range saturates to max_int"
    (cap (Predicate.conj (atom Value.Ge min_int) (atom Value.Le max_int)) = Some max_int);
  Helpers.check_true "near-full range saturates, no wraparound"
    (cap (Predicate.conj (atom Value.Gt min_int) (atom Value.Le max_int)) = Some max_int);
  Helpers.check_true "negative-to-positive wide range saturates"
    (cap (Predicate.conj (atom Value.Ge (-2)) (atom Value.Le (max_int - 1))) = Some max_int);
  Helpers.check_true "singleton at max_int"
    (cap (Predicate.conj (atom Value.Ge max_int) (atom Value.Le max_int)) = Some 1);
  Helpers.check_true "Gt max_int beats any upper bound"
    (cap (Predicate.conj (atom Value.Gt max_int) (atom Value.Le 0)) = Some 0);
  Helpers.check_true "qplan alias agrees"
    (Qplan.predicate_value_cap (atom Value.Gt max_int) = Some 0
     && Qplan.predicate_value_cap
          (Predicate.conj (atom Value.Ge 2011) (atom Value.Le 2013))
        = Some 3)

let value_cap_never_wraps =
  Helpers.qcheck ~count:200 "value_cap is None or a count in [0, max_int]"
    QCheck2.Gen.(
      list_size (int_range 1 4)
        (pair (int_range 0 3) (oneofl [ min_int; min_int + 1; -5; 0; 7; max_int - 1; max_int ])))
    (fun atoms ->
      let p =
        List.fold_left
          (fun acc (op, c) ->
            let op =
              match op with 0 -> Value.Ge | 1 -> Value.Le | 2 -> Value.Gt | _ -> Value.Lt
            in
            Predicate.conj acc (Predicate.atom op (Value.Int c)))
          Predicate.true_ atoms
      in
      match Predicate.value_cap p with None -> true | Some n -> n >= 0)

(* ------------------------------------------------------------------ *)
(* Selectivity statistics                                              *)
(* ------------------------------------------------------------------ *)

let test_selectivity_counts () =
  let tbl = Label.create_table () in
  let g =
    Helpers.graph tbl
      [ ("A", Value.Null); ("A", Value.Null); ("B", Value.Null) ]
      [ (0, 2); (1, 2); (2, 0) ]
  in
  let sel = Gstats.selectivity g in
  let l = Label.intern tbl in
  Helpers.check_int "two A nodes" 2 (Gstats.node_count sel (l "A"));
  Helpers.check_int "one B node" 1 (Gstats.node_count sel (l "B"));
  Helpers.check_int "A->B edges" 2 (Gstats.pair_freq sel ~src:(l "A") ~dst:(l "B"));
  Helpers.check_int "B->A edges" 1 (Gstats.pair_freq sel ~src:(l "B") ~dst:(l "A"));
  Helpers.check_int "A->A edges" 0 (Gstats.pair_freq sel ~src:(l "A") ~dst:(l "A"));
  Helpers.check_true "avg out-degree of A" (Gstats.avg_out_degree sel (l "A") = 1.0);
  (* A label interned after the sweep reads as empty, not out-of-bounds. *)
  let late = l "C" in
  Helpers.check_int "unseen label count" 0 (Gstats.node_count sel late);
  Helpers.check_int "unseen pair freq" 0 (Gstats.pair_freq sel ~src:late ~dst:(l "A"));
  Helpers.check_true "unseen avg degree" (Gstats.avg_out_degree sel late = 0.0)

let test_selectivity_roundtrip () =
  let tbl = Label.create_table () in
  let g = Generators.random ~seed:7 ~nodes:120 ~edges:400 ~labels:6 tbl in
  let sel = Gstats.selectivity g in
  let path = Filename.temp_file "bpq_sel" ".txt" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Gstats.save_selectivity tbl sel path;
  (* Reload into the same table: every accessor must agree label-for-label. *)
  let sel' = Gstats.load_selectivity tbl path in
  for a = 0 to Label.count tbl - 1 do
    Helpers.check_int "node count survives" (Gstats.node_count sel a)
      (Gstats.node_count sel' a);
    Helpers.check_true "avg out-degree survives"
      (Gstats.avg_out_degree sel a = Gstats.avg_out_degree sel' a);
    for b = 0 to Label.count tbl - 1 do
      Helpers.check_int "pair freq survives"
        (Gstats.pair_freq sel ~src:a ~dst:b)
        (Gstats.pair_freq sel' ~src:a ~dst:b)
    done
  done;
  (* And into a fresh table, where label ids may permute: compare by name. *)
  let tbl2 = Label.create_table () in
  let sel2 = Gstats.load_selectivity tbl2 path in
  for a = 0 to Label.count tbl - 1 do
    let a2 = Label.intern tbl2 (Label.name tbl a) in
    Helpers.check_int "count matches across tables" (Gstats.node_count sel a)
      (Gstats.node_count sel2 a2)
  done

(* ------------------------------------------------------------------ *)
(* Advisory ordering: the op set, estimates, bounds and answers are    *)
(* unchanged by the cost model.                                        *)
(* ------------------------------------------------------------------ *)

(* Anchors compare by source label only: the cost tie-breaker may anchor
   a refetch on a different same-label, already-fetched neighbour, and
   Qplan documents that the bound carried by the chosen anchors never
   changes (the est/bound fields below stay exact). *)
let anchor_labels anchors = List.sort compare (List.map fst anchors)
let fetch_key (f : Plan.fetch) = (f.unode, anchor_labels f.anchors, f.constr, f.est)

let edge_key (ec : Plan.edge_check) =
  (ec.edge, ec.target_side, ec.via, anchor_labels ec.anchors, ec.est)

let plans_equivalent (plain : Plan.t) (costed : Plan.t) =
  List.sort compare (List.map fetch_key plain.fetches)
  = List.sort compare (List.map fetch_key costed.fetches)
  && List.sort compare (List.map edge_key plain.edge_checks)
     = List.sort compare (List.map edge_key costed.edge_checks)
  && Plan.node_bound plain = Plan.node_bound costed
  && Plan.edge_bound plain = Plan.edge_bound costed
  && plain.node_estimates = costed.node_estimates

(* A cost-ordered fetch list must still respect data dependencies: a
   fetch keyed by anchor node [v] can only run after [v] has candidates,
   i.e. after some earlier fetch of [v]. *)
let fetch_order_valid (plan : Plan.t) =
  let seen = Hashtbl.create 8 in
  List.for_all
    (fun (f : Plan.fetch) ->
      let ok = List.for_all (fun (_, v) -> Hashtbl.mem seen v) f.anchors in
      Hashtbl.replace seen f.unode ();
      ok)
    plan.fetches

let cost_ordering_is_advisory =
  Helpers.qcheck ~count:60 "cost model never changes ops, bounds or answers"
    QCheck2.Gen.(int_range 1 100_000)
    (fun seed ->
      let _, g, constrs, r = Helpers.random_instance seed in
      let q =
        if Bpq_util.Prng.bool r then Bpq_pattern.Qgen.from_walk r g
        else Bpq_pattern.Qgen.random r g
      in
      let costs = Costs.of_graph g in
      match
        ( Qplan.generate Actualized.Subgraph q constrs,
          Qplan.generate ~costs Actualized.Subgraph q constrs )
      with
      | None, None -> true
      | Some _, None | None, Some _ -> false (* boundedness must not move *)
      | Some plain, Some costed ->
        let schema = Schema.build g constrs in
        plans_equivalent plain costed
        && fetch_order_valid costed
        && Helpers.sort_matches (Bounded_eval.bvf2_matches schema plain)
           = Helpers.sort_matches (Bounded_eval.bvf2_matches schema costed)
        (* and the answer equals the sequential, cost-free truth *)
        && Helpers.sort_matches (Bounded_eval.bvf2_matches schema costed)
           = Helpers.sort_matches (Bpq_matcher.Vf2.matches g q))

let test_q0_cost_plan_bounds_unchanged () =
  let ds = Lazy.force imdb in
  let q0 = W.q0 ds.W.table in
  let a0 = W.a0 ds.W.table in
  let plain = Qplan.generate_exn Actualized.Subgraph q0 a0 in
  let costs = Costs.of_graph ds.W.graph in
  let costed = Qplan.generate_exn ~costs Actualized.Subgraph q0 a0 in
  Helpers.check_true "op multiset and bounds unchanged" (plans_equivalent plain costed);
  Helpers.check_true "fetch order valid" (fetch_order_valid costed)

let test_annotate_shapes_and_caps () =
  let ds = Lazy.force imdb in
  let q0 = W.q0 ds.W.table in
  let a0 = W.a0 ds.W.table in
  let costs = Costs.of_graph ds.W.graph in
  let plan = Qplan.generate_exn ~costs Actualized.Subgraph q0 a0 in
  let fetch_est, edge_est = Costs.annotate costs plan in
  Helpers.check_int "one estimate per fetch" (List.length plan.fetches)
    (Array.length fetch_est);
  Helpers.check_int "one estimate per edge check" (List.length plan.edge_checks)
    (Array.length edge_est);
  List.iteri
    (fun i (f : Plan.fetch) ->
      Helpers.check_true "fetch estimate within static worst case"
        (fetch_est.(i) >= 0.0 && fetch_est.(i) <= float_of_int f.est))
    plan.fetches;
  List.iteri
    (fun i (ec : Plan.edge_check) ->
      Helpers.check_true "edge estimate within static worst case"
        (edge_est.(i) >= 0.0 && edge_est.(i) <= float_of_int ec.est))
    plan.edge_checks

let test_explain_estimated_column () =
  let ds = Lazy.force imdb in
  let q0 = W.q0 ds.W.table in
  let a0 = W.a0 ds.W.table in
  let schema = Schema.build ds.W.graph a0 in
  let costs = Costs.of_graph ds.W.graph in
  let plan = Qplan.generate_exn ~costs Actualized.Subgraph q0 a0 in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  let static_plain = Explain.describe plan in
  let static_costed = Explain.describe ~costs plan in
  Helpers.check_false "no estimate column without costs"
    (contains static_plain "est. realized");
  Helpers.check_true "estimate column with costs"
    (contains static_costed "est. realized");
  let plain = (Explain.analyze schema plan).Explain.report in
  let costed = (Explain.analyze ~costs schema plan).Explain.report in
  Helpers.check_false "analyze: no estimated column without costs"
    (contains plain "estimated");
  Helpers.check_true "analyze: estimated column with costs" (contains costed "estimated");
  Helpers.check_true "realised column in both"
    (contains plain "realised" && contains costed "realised")

let suite =
  [ Alcotest.test_case "value_cap saturates at int extremes" `Quick
      test_value_cap_saturates;
    value_cap_never_wraps;
    Alcotest.test_case "selectivity counts on a hand graph" `Quick
      test_selectivity_counts;
    Alcotest.test_case "selectivity serialization round-trips" `Quick
      test_selectivity_roundtrip;
    cost_ordering_is_advisory;
    Alcotest.test_case "Q0 cost plan keeps ops and bounds" `Quick
      test_q0_cost_plan_bounds_unchanged;
    Alcotest.test_case "annotate shapes and worst-case caps" `Quick
      test_annotate_shapes_and_caps;
    Alcotest.test_case "Explain gains estimated-vs-realized columns" `Quick
      test_explain_estimated_column ]
