(* Undefined-on-empty statistics come in two forms: the [_opt] functions
   return [None] (what serialization paths must use — [Float.nan] prints
   as the invalid JSON token [nan] under %g), and the plain functions
   keep their historical nan-on-empty convention for quick interactive
   use. *)

let mean_opt = function
  | [] -> None
  | xs -> Some (List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs))

let mean xs = Option.value (mean_opt xs) ~default:Float.nan

let sorted xs = List.sort Float.compare xs

let percentile_opt p = function
  | [] -> None
  | xs ->
    let arr = Array.of_list (sorted xs) in
    let n = Array.length arr in
    let rank = int_of_float (Float.round (p *. float_of_int (n - 1))) in
    Some arr.(max 0 (min (n - 1) rank))

let percentile p xs = Option.value (percentile_opt p xs) ~default:Float.nan

let median_opt xs = percentile_opt 0.5 xs
let median xs = percentile 0.5 xs

let minimum_opt = function
  | [] -> None
  | xs -> Some (List.fold_left Float.min Float.infinity xs)

let maximum_opt = function
  | [] -> None
  | xs -> Some (List.fold_left Float.max Float.neg_infinity xs)

let minimum xs = Option.value (minimum_opt xs) ~default:Float.nan
let maximum xs = Option.value (maximum_opt xs) ~default:Float.nan

let geometric_mean_opt = function
  | [] -> None
  | xs ->
    let log_sum = List.fold_left (fun acc x -> acc +. Float.log x) 0.0 xs in
    Some (Float.exp (log_sum /. float_of_int (List.length xs)))

let geometric_mean xs = Option.value (geometric_mean_opt xs) ~default:Float.nan
