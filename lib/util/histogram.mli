(** Bounded-memory latency histogram for long-lived serving processes.

    Observations land in geometrically spaced buckets (ratio 1.05 from
    1µs up), so memory stays one small array however many queries a
    daemon serves, and reported quantiles carry under ~2.5% relative
    error — while the exact count, sum, minimum and maximum are tracked
    alongside.  All operations are thread-safe (internal mutex): the
    serve daemon records from every connection thread and pool domain. *)

type t

val create : unit -> t

val add : t -> float -> unit
(** Record one observation (seconds).  Non-finite and negative values
    clamp to 0 rather than poisoning the statistics. *)

val count : t -> int

val mean : t -> float option
(** Exact mean; [None] when no observations were recorded — feed through
    {!Jsonx.of_float_opt} so empty buckets serialize as [null], never
    [nan]. *)

val minimum : t -> float option
val maximum : t -> float option

val percentile : t -> float -> float option
(** [percentile t p] with [p] in [\[0,1\]].  The real-valued rank
    [p * (n-1)] is located in its bucket and interpolated geometrically
    within it, so quantiles vary smoothly with [p] rather than snapping
    to bucket midpoints (clamped to the exact observed min/max so p0 and
    p100 are exact); [None] when empty. *)

val merge : t -> from:t -> unit
(** [merge dst ~from] folds every observation of [from] into [dst]
    (bucket counts, count, sum, min, max); [from] is left unchanged.
    Safe against concurrent [add]s on either side: the source is
    snapshotted under its own lock, then folded in under the
    destination's — the two locks are never held together.  Per-client
    histograms merged into one report equal a single histogram fed the
    concatenated stream. *)

val reset : t -> unit
