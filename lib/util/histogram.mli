(** Bounded-memory latency histogram for long-lived serving processes.

    Observations land in geometrically spaced buckets (ratio 1.05 from
    1µs up), so memory stays one small array however many queries a
    daemon serves, and reported quantiles carry under ~2.5% relative
    error — while the exact count, sum, minimum and maximum are tracked
    alongside.  All operations are thread-safe (internal mutex): the
    serve daemon records from every connection thread and pool domain. *)

type t

val create : unit -> t

val add : t -> float -> unit
(** Record one observation (seconds).  Non-finite and negative values
    clamp to 0 rather than poisoning the statistics. *)

val count : t -> int

val mean : t -> float option
(** Exact mean; [None] when no observations were recorded — feed through
    {!Jsonx.of_float_opt} so empty buckets serialize as [null], never
    [nan]. *)

val minimum : t -> float option
val maximum : t -> float option

val percentile : t -> float -> float option
(** [percentile t p] with [p] in [\[0,1\]], nearest-rank over the bucketed
    distribution (clamped to the exact observed min/max); [None] when
    empty. *)

val reset : t -> unit
