(** Wall-clock timing helpers for the benchmark harness. *)

val now : unit -> float
(** Seconds since the epoch, with microsecond resolution. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result paired with the elapsed
    wall-clock seconds. *)

val time_ms : (unit -> 'a) -> 'a * float
(** Same as {!time} but reports milliseconds. *)

type deadline
(** A soft time budget threaded through long-running matchers so the bench
    harness can report "did not finish" instead of hanging, mirroring the
    paper's 40000s cut-off for VF2 on big graphs. *)

val no_deadline : deadline
val deadline_after : float -> deadline
(** [deadline_after s] expires [s] seconds from now.  A zero or negative
    budget yields a deadline that is already expired: the very first
    {!expired} consultation reports [true] (pinned by property tests —
    no stride warm-up window survives it). *)

val clone : deadline -> deadline
(** Same absolute cut-off, fresh stride bookkeeping.  A [deadline]'s stride
    state is mutable and single-domain; parallel matchers give each worker
    its own clone instead of sharing one record across domains.  Cloning
    an already-expired deadline yields one whose first {!expired} call
    reports [true]. *)

val expired : deadline -> bool
(** Cheap check: consults the clock only every [stride] calls, where the
    stride adapts so consultations land roughly 10ms of wall clock apart
    regardless of per-iteration cost (a slow iteration shrinks it, down
    to every call), and tightens further once more than half the budget
    is spent — so even very slow per-iteration work cannot overshoot the
    cut-off by more than a fraction of the remaining budget. *)

exception Timeout
(** Raised by matchers when their deadline expires. *)
