(** Crash-safe, durable file writes: temp file + fsync + rename +
    directory fsync.

    Every persistent artifact in the tree (text graphs, selectivity
    stats, binary snapshots) goes through {!write}, so a crash or kill
    mid-write can never leave a truncated file under the target name —
    the rename is atomic on POSIX filesystems and the temp file lives in
    the target's own directory so the rename never crosses devices.
    The data is fsynced {e before} the rename (otherwise a crash just
    after the rename could commit the name while losing the bytes,
    leaving a truncated snapshot for a restarting server to reload), and
    the directory entry is fsynced after it, best-effort, so the new
    name itself is durable. *)

val write : string -> (out_channel -> unit) -> unit
(** [write path f] opens a fresh temp file next to [path] (binary mode),
    runs [f] on its channel, flushes, fsyncs, closes, renames it over
    [path], and fsyncs the directory.  If [f], the flush, the fsync or
    the close raises, the temp file is removed and the exception
    re-raised; [path] is untouched until the rename succeeds. *)
