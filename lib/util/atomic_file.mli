(** Crash-safe file writes: temp file + rename.

    Every persistent artifact in the tree (text graphs, selectivity
    stats, binary snapshots) goes through {!write}, so a crash or kill
    mid-write can never leave a truncated file under the target name —
    the rename is atomic on POSIX filesystems and the temp file lives in
    the target's own directory so the rename never crosses devices. *)

val write : string -> (out_channel -> unit) -> unit
(** [write path f] opens a fresh temp file next to [path] (binary mode),
    runs [f] on its channel, flushes, closes, and renames it over
    [path].  If [f] raises, the temp file is removed and the exception
    re-raised; [path] is untouched either way until the rename. *)
