type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 8) () = { data = Array.make (max capacity 1) 0; len = 0 }
let length t = t.len
let is_empty t = t.len = 0

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get";
  t.data.(i)

let set t i v =
  if i < 0 || i >= t.len then invalid_arg "Vec.set";
  t.data.(i) <- v

let grow t =
  let cap = Array.length t.data in
  let data = Array.make (2 * cap) 0 in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t v =
  if t.len = Array.length t.data then grow t;
  t.data.(t.len) <- v;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Vec.pop: empty";
  t.len <- t.len - 1;
  t.data.(t.len)

let clear t = t.len <- 0
let to_array t = Array.sub t.data 0 t.len

let of_array arr =
  { data = (if Array.length arr = 0 then Array.make 1 0 else Array.copy arr);
    len = Array.length arr }

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let exists p t =
  let rec go i = i < t.len && (p t.data.(i) || go (i + 1)) in
  go 0

let unsafe_data t = t.data

let sort_uniq t =
  if t.len > 1 then begin
    (* Monomorphic in-place sort: no copy, no polymorphic comparator. *)
    Int_sort.sort_range t.data 0 t.len;
    t.len <- Int_sort.dedup_range t.data 0 t.len
  end
