(* Log-bucketed latency histogram.

   A long-lived serving process must report percentiles over an unbounded
   stream of per-query latencies; keeping raw samples would grow without
   bound, so observations land in geometrically spaced buckets and
   percentiles are read back as the representative value (geometric
   midpoint) of the bucket holding the requested rank.  With [gamma]
   = 1.05 the relative error of a reported quantile is under ~2.5%, far
   inside run-to-run noise, and the whole histogram is one small int
   array.

   Thread-safe: a serve daemon records from many connection threads and
   pool domains; every operation takes the histogram's own mutex (the
   critical sections are a few array writes). *)

type t = {
  mu : Mutex.t;
  counts : int array;
  mutable n : int;
  mutable sum : float;
  mutable minv : float;
  mutable maxv : float;
}

(* Buckets span [lo, lo * gamma^buckets): 1µs to >1000s for latencies in
   seconds.  Values outside clamp to the edge buckets. *)
let lo = 1e-6
let gamma = 1.05
let log_gamma = Float.log gamma
let buckets = 430

let create () =
  { mu = Mutex.create ();
    counts = Array.make buckets 0;
    n = 0;
    sum = 0.0;
    minv = Float.infinity;
    maxv = Float.neg_infinity }

let bucket_of x =
  if x <= lo then 0
  else
    let b = int_of_float (Float.log (x /. lo) /. log_gamma) in
    if b >= buckets then buckets - 1 else b

(* Geometric midpoint of bucket [b] — the value reported for ranks that
   land in it. *)
let value_of b = lo *. (gamma ** (float_of_int b +. 0.5))

let with_lock t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let add t x =
  let x = if Float.is_finite x && x >= 0.0 then x else 0.0 in
  with_lock t (fun () ->
      t.counts.(bucket_of x) <- t.counts.(bucket_of x) + 1;
      t.n <- t.n + 1;
      t.sum <- t.sum +. x;
      if x < t.minv then t.minv <- x;
      if x > t.maxv then t.maxv <- x)

let count t = with_lock t (fun () -> t.n)

let mean t = with_lock t (fun () -> if t.n = 0 then None else Some (t.sum /. float_of_int t.n))
let minimum t = with_lock t (fun () -> if t.n = 0 then None else Some t.minv)
let maximum t = with_lock t (fun () -> if t.n = 0 then None else Some t.maxv)

(* Interpolated quantile on the bucketed distribution.  The real-valued
   rank [r = p * (n - 1)] falls inside some bucket; treating that
   bucket's [c] samples as spread at positions [(i + 0.5) / c] of its
   geometric span gives a within-bucket fraction, and the reported value
   is [lo * gamma^(b + frac)] — so quantiles move smoothly with [p]
   instead of snapping to bucket midpoints, which matters for p99 at low
   counts.  The result clamps to the exact observed min/max so p0/p100
   are never bucket-quantised. *)
let percentile t p =
  with_lock t (fun () ->
      if t.n = 0 then None
      else begin
        let p = Float.max 0.0 (Float.min 1.0 p) in
        let r = p *. float_of_int (t.n - 1) in
        let b = ref 0 and cum = ref 0 in
        while
          !b < buckets - 1
          && float_of_int (!cum + t.counts.(!b)) <= r
        do
          cum := !cum + t.counts.(!b);
          incr b
        done;
        let c = t.counts.(!b) in
        let v =
          if c = 0 then value_of !b
          else begin
            let frac = (r -. float_of_int !cum +. 0.5) /. float_of_int c in
            let frac = Float.max 0.0 (Float.min 1.0 frac) in
            lo *. (gamma ** (float_of_int !b +. frac))
          end
        in
        Some (Float.max t.minv (Float.min t.maxv v))
      end)

(* Fold [src] into [dst].  The source is snapshotted under its own lock
   first and the copy folded in under the destination's lock, so the two
   mutexes are never held together (no ordering to get wrong, merging in
   both directions concurrently cannot deadlock). *)
let merge dst ~from =
  let counts, n, sum, minv, maxv =
    with_lock from (fun () ->
        (Array.copy from.counts, from.n, from.sum, from.minv, from.maxv))
  in
  with_lock dst (fun () ->
      Array.iteri (fun b c -> dst.counts.(b) <- dst.counts.(b) + c) counts;
      dst.n <- dst.n + n;
      dst.sum <- dst.sum +. sum;
      if minv < dst.minv then dst.minv <- minv;
      if maxv > dst.maxv then dst.maxv <- maxv)

let reset t =
  with_lock t (fun () ->
      Array.fill t.counts 0 buckets 0;
      t.n <- 0;
      t.sum <- 0.0;
      t.minv <- Float.infinity;
      t.maxv <- Float.neg_infinity)
