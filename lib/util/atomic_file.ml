(* Crash-safe, durable writes: temp file + fsync + rename + directory
   fsync.

   The rename alone only guarantees that readers never see a partial
   file under the target name while the process lives.  Durability
   across a crash needs more: the temp file's data must reach stable
   storage *before* the rename (otherwise the rename can survive a crash
   while the data does not, leaving a truncated "checksummed" snapshot
   that a restarting `bpq serve` would then refuse — or worse, partially
   read), and the directory entry itself must be fsynced after the
   rename for the new name to be durable. *)

let fsync_dir dir =
  (* Best-effort: some filesystems refuse O_RDONLY directory fsync; a
     failure here degrades durability of the *name*, never integrity of
     the data, so it must not fail the write. *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let write path f =
  let dir = Filename.dirname path in
  let base = Filename.basename path in
  let tmp, oc = Filename.open_temp_file ~temp_dir:dir ~mode:[ Open_binary ] base ".tmp" in
  let cleanup () = try Sys.remove tmp with Sys_error _ -> () in
  (* Any failure before the rename — including [close_out] itself
     raising on a full disk — must remove the temp file and leave [path]
     untouched. *)
  (try
     f oc;
     flush oc;
     Unix.fsync (Unix.descr_of_out_channel oc);
     close_out oc
   with e ->
     close_out_noerr oc;
     cleanup ();
     raise e);
  (try Sys.rename tmp path
   with e ->
     cleanup ();
     raise e);
  fsync_dir dir
