let write path f =
  let dir = Filename.dirname path in
  let base = Filename.basename path in
  let tmp, oc = Filename.open_temp_file ~temp_dir:dir ~mode:[ Open_binary ] base ".tmp" in
  let cleanup () = try Sys.remove tmp with Sys_error _ -> () in
  (try
     Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)
   with e ->
     cleanup ();
     raise e);
  try Sys.rename tmp path
  with e ->
    cleanup ();
    raise e
