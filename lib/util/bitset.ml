(* Fixed-capacity bitset over dense non-negative int ids.

   32 bits per word: OCaml ints carry 63 usable bits, so a 64-bit stride
   would need [1 lsl 63], which does not exist; 32 keeps the index math a
   shift and a mask.  Membership is two loads and a mask — the whole point
   versus the [(int, unit) Hashtbl.t] sets it replaces in the matchers. *)

type t = { words : int array; capacity : int }

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { words = Array.make ((n + 31) / 32) 0; capacity = n }

let capacity t = t.capacity

let mem t i = t.words.(i lsr 5) land (1 lsl (i land 31)) <> 0
let add t i = t.words.(i lsr 5) <- t.words.(i lsr 5) lor (1 lsl (i land 31))

let remove t i =
  t.words.(i lsr 5) <- t.words.(i lsr 5) land lnot (1 lsl (i land 31))

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let of_array n arr =
  let t = create n in
  Array.iter (fun i -> add t i) arr;
  t

let count t =
  let popcount x =
    let c = ref 0 and v = ref x in
    while !v <> 0 do
      v := !v land (!v - 1);
      incr c
    done;
    !c
  in
  Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let iter t f =
  for i = 0 to t.capacity - 1 do
    if mem t i then f i
  done
