(* Minimal JSON: construction, strict printing and a recursive-descent
   parser.  Hand-rolled on purpose — the tree has no JSON dependency, and
   both sides of the serve protocol (requests in, responses and bench
   artefacts out) need only the JSON subset below.  Printing is strict
   JSON: escaped strings and finite numbers only — non-finite floats
   degrade to [null], so no artefact or response ever contains the
   invalid tokens [nan] / [inf]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---------------- printing ---------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    (* Keep Float/Int distinct through a print/parse roundtrip: an
       integral float carries an explicit ".0", and the shortest
       precision that reparses to the same bits wins. *)
    if not (Float.is_finite f) then Buffer.add_string buf "null"
    else if Float.is_integer f && Float.abs f < 1e16 then
      Buffer.add_string buf (Printf.sprintf "%.1f" f)
    else begin
      let s = Printf.sprintf "%.15g" f in
      let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
      Buffer.add_string buf s
    end
  | Str s -> escape buf s
  | Arr items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        emit buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  emit buf j;
  Buffer.contents buf

(* ---------------- parsing ---------------- *)

exception Bad of string

type cursor = {
  s : string;
  mutable pos : int;
}

let fail c fmt = Printf.ksprintf (fun msg -> raise (Bad (Printf.sprintf "at %d: %s" c.pos msg))) fmt

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.s
    && match c.s.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | Some x -> fail c "expected %C, found %C" ch x
  | None -> fail c "expected %C, found end of input" ch

let literal c word v =
  let n = String.length word in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = word then begin
    c.pos <- c.pos + n;
    v
  end
  else fail c "invalid literal"

(* Encode a Unicode scalar value as UTF-8 (for \uXXXX escapes; surrogate
   pairs combine before encoding). *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xe0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xf0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
  end

let hex4 c =
  if c.pos + 4 > String.length c.s then fail c "truncated \\u escape";
  let v = ref 0 in
  for i = 0 to 3 do
    let d =
      match c.s.[c.pos + i] with
      | '0' .. '9' as ch -> Char.code ch - Char.code '0'
      | 'a' .. 'f' as ch -> Char.code ch - Char.code 'a' + 10
      | 'A' .. 'F' as ch -> Char.code ch - Char.code 'A' + 10
      | _ -> fail c "invalid \\u escape"
    in
    v := (!v * 16) + d
  done;
  c.pos <- c.pos + 4;
  !v

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    if c.pos >= String.length c.s then fail c "unterminated string";
    match c.s.[c.pos] with
    | '"' -> c.pos <- c.pos + 1
    | '\\' ->
      c.pos <- c.pos + 1;
      (if c.pos >= String.length c.s then fail c "unterminated escape";
       let ch = c.s.[c.pos] in
       c.pos <- c.pos + 1;
       match ch with
       | '"' -> Buffer.add_char buf '"'
       | '\\' -> Buffer.add_char buf '\\'
       | '/' -> Buffer.add_char buf '/'
       | 'b' -> Buffer.add_char buf '\b'
       | 'f' -> Buffer.add_char buf '\012'
       | 'n' -> Buffer.add_char buf '\n'
       | 'r' -> Buffer.add_char buf '\r'
       | 't' -> Buffer.add_char buf '\t'
       | 'u' ->
         let u = hex4 c in
         let u =
           (* High surrogate: a low surrogate must follow. *)
           if u >= 0xd800 && u <= 0xdbff
              && c.pos + 1 < String.length c.s
              && c.s.[c.pos] = '\\'
              && c.s.[c.pos + 1] = 'u'
           then begin
             c.pos <- c.pos + 2;
             let lo = hex4 c in
             if lo >= 0xdc00 && lo <= 0xdfff then
               0x10000 + ((u - 0xd800) lsl 10) + (lo - 0xdc00)
             else fail c "invalid surrogate pair"
           end
           else u
         in
         add_utf8 buf u
       | _ -> fail c "invalid escape");
      loop ()
    | ch when Char.code ch < 0x20 -> fail c "control character in string"
    | ch ->
      Buffer.add_char buf ch;
      c.pos <- c.pos + 1;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_float = ref false in
  if peek c = Some '-' then c.pos <- c.pos + 1;
  let digits () =
    let d = ref 0 in
    while (match peek c with Some ('0' .. '9') -> true | _ -> false) do
      c.pos <- c.pos + 1;
      incr d
    done;
    !d
  in
  if digits () = 0 then fail c "invalid number";
  if peek c = Some '.' then begin
    is_float := true;
    c.pos <- c.pos + 1;
    if digits () = 0 then fail c "digits must follow a decimal point"
  end;
  (match peek c with
   | Some ('e' | 'E') ->
     is_float := true;
     c.pos <- c.pos + 1;
     (match peek c with Some ('+' | '-') -> c.pos <- c.pos + 1 | _ -> ());
     if digits () = 0 then fail c "digits must follow an exponent"
   | _ -> ());
  let text = String.sub c.s start (c.pos - start) in
  if !is_float then Float (float_of_string text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> Float (float_of_string text) (* out of int range *)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> Str (parse_string c)
  | Some '[' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some ']' then begin
      c.pos <- c.pos + 1;
      Arr []
    end
    else begin
      let items = ref [ parse_value c ] in
      skip_ws c;
      while peek c = Some ',' do
        c.pos <- c.pos + 1;
        items := parse_value c :: !items;
        skip_ws c
      done;
      expect c ']';
      Arr (List.rev !items)
    end
  | Some '{' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some '}' then begin
      c.pos <- c.pos + 1;
      Obj []
    end
    else begin
      let field () =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        (k, v)
      in
      let fields = ref [ field () ] in
      skip_ws c;
      while peek c = Some ',' do
        c.pos <- c.pos + 1;
        fields := field () :: !fields;
        skip_ws c
      done;
      expect c '}';
      Obj (List.rev !fields)
    end
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c "unexpected character %C" ch

let parse s =
  let c = { s; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos <> String.length s then Error (Printf.sprintf "at %d: trailing garbage" c.pos)
    else Ok v
  | exception Bad msg -> Error msg

(* ---------------- accessors ---------------- *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None
let to_int_opt = function Int i -> Some i | Float f when Float.is_integer f -> Some (int_of_float f) | _ -> None
let to_float_opt = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None
let to_list_opt = function Arr l -> Some l | _ -> None

let of_float_opt = function Some f -> Float f | None -> Null
