(** Socket plumbing for the serve daemon and its clients: addresses,
    listeners, per-connection timeouts, line framing, and the exception
    taxonomy a long-lived server needs (client-went-away vs idled-out
    vs real failure). *)

type addr =
  | Unix_path of string  (** Unix-domain socket at this path. *)
  | Tcp of string * int  (** Host (name or dotted quad) and port. *)

val parse : string -> (addr, string) result
(** Accepts [unix:PATH], a bare path containing ['/'], [HOST:PORT], and
    [:PORT] (loopback). *)

val to_string : addr -> string

val ignore_sigpipe : unit -> unit
(** Set SIGPIPE to ignore (no-op on platforms without it).  Must run
    before serving: with the default disposition, one client
    disconnecting mid-response kills the whole daemon; ignored, the
    write fails with [EPIPE], which {!is_disconnect} classifies so only
    that connection is dropped. *)

val listen : ?backlog:int -> addr -> Unix.file_descr
(** Bound, listening socket.  For a unix address, a {e stale socket
    file} at the path is removed first; a non-socket file at the path is
    an error ([Failure]), never removed. *)

val close_listener : addr -> Unix.file_descr -> unit
(** Close and, for unix addresses, unlink the socket path.  Never
    raises. *)

val connect : addr -> Unix.file_descr

val set_timeouts : ?read:float -> ?write:float -> Unix.file_descr -> unit
(** Per-connection SO_RCVTIMEO / SO_SNDTIMEO in seconds; non-positive or
    absent values leave the direction blocking. *)

val is_disconnect : exn -> bool
(** Did the peer go away?  [EPIPE], [ECONNRESET] and friends, plus
    [End_of_file]. *)

val is_timeout : exn -> bool
(** Did a read/write hit its SO_RCVTIMEO / SO_SNDTIMEO? *)

(** {1 Line framing} *)

type reader

val reader : Unix.file_descr -> reader

val read_line : reader -> string option
(** Next LF-terminated line with the terminator (and a trailing CR)
    stripped; [None] at EOF.  Raises [Failure] on lines over 16 MiB and
    re-raises socket errors (including timeouts — {!is_timeout}). *)

val write_all : Unix.file_descr -> string -> int -> int -> unit
(** [write_all fd s pos len], retrying on [EINTR] and looping on short
    writes. *)

val write_line : Unix.file_descr -> string -> unit
(** The string followed by ['\n']. *)

(** {1 Binary framing}

    Length-prefixed frames for the sharded fetch protocol
    ([Bpq_store.Remote]): an 8-byte little-endian payload length, then
    the payload.  Reads and writes loop on partial transfers, so a
    frame survives any kernel-level fragmentation. *)

val max_frame : int
(** Upper bound on one frame's payload (256 MiB). *)

exception Frame_too_large of { limit : int; got : int }
(** A header announced (or a send supplied) a payload over {!max_frame}
    — a desynchronised or hostile peer, surfaced before any allocation
    honours it. *)

val read_exact : Unix.file_descr -> Bytes.t -> int -> int -> unit
(** [read_exact fd buf pos len] fills the range exactly, looping on
    short reads; raises [End_of_file] if the peer closes first. *)

val send_frame : Unix.file_descr -> string -> unit
(** @raise Frame_too_large instead of sending an oversized payload. *)

val recv_frame : Unix.file_descr -> Bytes.t option
(** The next frame's payload; [None] on clean EOF at a frame boundary.
    EOF {e inside} a frame raises [End_of_file] (the peer died
    mid-message — {!is_disconnect} classifies it).
    @raise Frame_too_large on an oversized announced length. *)
