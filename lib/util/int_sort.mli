(** In-place monomorphic sorting of int arrays.

    Replacement for [Array.sort compare] on int data: the polymorphic
    comparator is a closure call per comparison, which dominates the CSR
    freeze and candidate-set paths.  All functions sort ascending, in
    place, with O(log n) auxiliary stack and no heap allocation. *)

val sort : int array -> unit

val sort_range : int array -> int -> int -> unit
(** [sort_range arr pos len] sorts the slice [arr.(pos) .. arr.(pos+len-1)].
    @raise Invalid_argument if the range is out of bounds. *)

val dedup_range : int array -> int -> int -> int
(** [dedup_range arr pos len] compacts consecutive duplicates in the (already
    sorted) slice towards [pos] and returns the deduplicated length.  Slice
    contents beyond the returned length are unspecified. *)
