(** Small descriptive-statistics helpers used when reporting experiment
    series (the paper reports averages over three runs; we do the same).

    Each statistic comes in two forms.  The [_opt] form returns [None]
    on the empty list and is what every serialization path must use: an
    undefined statistic then degrades to JSON [null] (via
    {!Jsonx.of_float_opt}) instead of the invalid token [nan].  The
    plain form keeps the historical nan-on-empty convention for
    interactive use. *)

val mean : float list -> float
(** Mean of a non-empty list; [nan] on the empty list. *)

val mean_opt : float list -> float option

val median : float list -> float
val median_opt : float list -> float option

val minimum : float list -> float
val minimum_opt : float list -> float option

val maximum : float list -> float
val maximum_opt : float list -> float option

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,1\]], nearest-rank on the sorted
    values; [nan] on the empty list. *)

val percentile_opt : float -> float list -> float option

val geometric_mean : float list -> float
(** Used for averaging speed-up factors across queries. *)

val geometric_mean_opt : float list -> float option
