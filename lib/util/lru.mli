(** Bounded LRU cache over packed integer keys.

    The cross-query fetch cache keys index lookups by a single packed
    integer (constraint id + key tuple, see [Bpq_core.Fetch_cache]); this
    module supplies the replacement policy: a hashtable from key to slot
    plus an intrusive doubly linked recency list threaded through plain
    [int] arrays — no per-entry boxing, no dependencies, O(1) find/add.

    Capacity [0] is a legal degenerate cache that stores nothing (every
    {!find} misses, every {!add} is a no-op), so callers can thread one
    value through unconditionally and let capacity decide.  The backing
    arrays grow geometrically up to the capacity, so a huge-capacity cache
    costs memory proportional to what it actually holds. *)

type 'v t

val create : int -> 'v t
(** [create capacity] — an empty cache holding at most [capacity] entries.
    @raise Invalid_argument when [capacity < 0]. *)

val capacity : 'v t -> int

val length : 'v t -> int
(** Entries currently held ([<= capacity]). *)

val find : 'v t -> int -> 'v option
(** [find t k] returns the cached value and promotes the entry to
    most-recently-used. *)

val mem : 'v t -> int -> bool
(** Membership without promotion (diagnostics only). *)

val add : 'v t -> int -> 'v -> unit
(** [add t k v] inserts or replaces the binding of [k] and promotes it to
    most-recently-used, evicting the least-recently-used entry when the
    cache is full. *)

val evictions : 'v t -> int
(** Total entries evicted by {!add} since creation. *)

val clear : 'v t -> unit
(** Drop every entry (counters are kept). *)

val to_list : 'v t -> (int * 'v) list
(** Bindings in recency order, most-recently-used first — the observable
    the eviction-order tests pin down. *)
