(* Socket plumbing for the serve daemon and its clients: address
   parsing, listeners, per-connection timeouts, line-framed reads, and
   the exception taxonomy a long-lived server needs (which errors mean
   "this client went away" vs "this connection idled out" vs "real
   problem").

   SIGPIPE: a client that disconnects mid-response turns the server's
   next write into a SIGPIPE, whose default disposition kills the whole
   process — every other in-flight query with it.  {!ignore_sigpipe}
   turns that into a per-write [EPIPE], which {!is_disconnect}
   classifies so the connection handler can drop just that client. *)

type addr =
  | Unix_path of string
  | Tcp of string * int

let to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p

let parse s =
  let unix_of p = if p = "" then Error "empty unix socket path" else Ok (Unix_path p) in
  match String.index_opt s ':' with
  | None ->
    if String.contains s '/' then unix_of s
    else Error (Printf.sprintf "cannot parse %S (expected unix:PATH, PATH, HOST:PORT or :PORT)" s)
  | Some i ->
    let before = String.sub s 0 i in
    let after = String.sub s (i + 1) (String.length s - i - 1) in
    if before = "unix" then unix_of after
    else (
      match int_of_string_opt after with
      | Some p when p > 0 && p < 65536 ->
        Ok (Tcp ((if before = "" then "127.0.0.1" else before), p))
      | _ -> Error (Printf.sprintf "invalid port in %S" s))

let ignore_sigpipe () =
  (* No SIGPIPE on Windows; [Sys.set_signal] would raise. *)
  if Sys.os_type = "Unix" then
    try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()

let sockaddr_of = function
  | Unix_path p -> Unix.ADDR_UNIX p
  | Tcp (host, port) ->
    let ip =
      try Unix.inet_addr_of_string host
      with Failure _ ->
        (try (Unix.gethostbyname host).Unix.h_addr_list.(0)
         with Not_found | Invalid_argument _ ->
           failwith (Printf.sprintf "cannot resolve host %S" host))
    in
    Unix.ADDR_INET (ip, port)

let domain_of = function Unix_path _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET

let listen ?(backlog = 64) addr =
  (match addr with
   | Unix_path p when Sys.file_exists p ->
     (* A stale socket file from a previous run blocks bind; only ever
        remove actual sockets, never a regular file at that path. *)
     (match (Unix.stat p).Unix.st_kind with
      | Unix.S_SOCK -> (try Unix.unlink p with Unix.Unix_error _ -> ())
      | _ -> failwith (Printf.sprintf "%s exists and is not a socket" p))
   | _ -> ());
  let fd = Unix.socket (domain_of addr) Unix.SOCK_STREAM 0 in
  (try
     (match addr with Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true | Unix_path _ -> ());
     Unix.bind fd (sockaddr_of addr);
     Unix.listen fd backlog
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let close_listener addr fd =
  (try Unix.close fd with Unix.Unix_error _ -> ());
  match addr with
  | Unix_path p -> (try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
  | Tcp _ -> ()

let connect addr =
  let fd = Unix.socket (domain_of addr) Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (sockaddr_of addr)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let set_timeouts ?read ?write fd =
  let set opt = function
    | Some s when s > 0.0 -> Unix.setsockopt_float fd opt s
    | Some _ | None -> ()
  in
  set Unix.SO_RCVTIMEO read;
  set Unix.SO_SNDTIMEO write

(* Which exceptions mean "the peer went away"?  EPIPE and ECONNRESET are
   the classic mid-stream deaths; EBADF/ENOTCONN appear when the fd was
   torn down under a racing thread during shutdown. *)
let is_disconnect = function
  | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.ECONNABORTED | Unix.ENOTCONN | Unix.EBADF | Unix.ESHUTDOWN), _, _) -> true
  | End_of_file -> true
  | _ -> false

(* SO_RCVTIMEO / SO_SNDTIMEO surface as EAGAIN/EWOULDBLOCK (ETIMEDOUT on
   some systems). *)
let is_timeout = function
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _) -> true
  | _ -> false

(* ---------------- line framing ---------------- *)

(* Cap on one protocol line: a pattern query is a few hundred bytes;
   anything this big is a confused or hostile client, not a query. *)
let max_line = 16 * 1024 * 1024

type reader = {
  fd : Unix.file_descr;
  buf : Bytes.t;
  mutable start : int;  (* unconsumed bytes are buf[start, stop) *)
  mutable stop : int;
}

let reader fd = { fd; buf = Bytes.create 65536; start = 0; stop = 0 }

let trim_cr line =
  let len = String.length line in
  if len > 0 && line.[len - 1] = '\r' then String.sub line 0 (len - 1) else line

(* One LF-terminated line (CR trimmed), [None] at EOF.  Lines longer
   than the buffer accumulate in a side buffer, capped at [max_line].
   Read timeouts (SO_RCVTIMEO) surface as the Unix EAGAIN family — see
   {!is_timeout}. *)
let read_line r =
  let spill = Buffer.create 0 in
  let rec loop () =
    let nl =
      match Bytes.index_from_opt r.buf r.start '\n' with
      | Some i when i < r.stop -> Some i
      | Some _ | None -> None
    in
    match nl with
    | Some i ->
      let chunk = Bytes.sub_string r.buf r.start (i - r.start) in
      r.start <- i + 1;
      Some
        (trim_cr
           (if Buffer.length spill = 0 then chunk
            else begin
              Buffer.add_string spill chunk;
              Buffer.contents spill
            end))
    | None ->
      Buffer.add_subbytes spill r.buf r.start (r.stop - r.start);
      r.start <- 0;
      r.stop <- 0;
      if Buffer.length spill > max_line then failwith "line too long";
      (match Unix.read r.fd r.buf 0 (Bytes.length r.buf) with
       | 0 ->
         (* EOF: a trailing unterminated line still counts as a line. *)
         if Buffer.length spill = 0 then None else Some (trim_cr (Buffer.contents spill))
       | n ->
         r.stop <- n;
         loop ()
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ())
  in
  loop ()

let rec write_all fd s pos len =
  if len > 0 then begin
    match Unix.write_substring fd s pos len with
    | n -> write_all fd s (pos + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s pos len
  end

let write_line fd s =
  write_all fd s 0 (String.length s);
  write_all fd "\n" 0 1

(* ---------------- binary framing ---------------- *)

(* Cap on one binary frame.  A worker's reply ships a |Q|-bounded set of
   index payloads and node records — megabytes at the very most; a
   length beyond this is a desynchronised or hostile peer, and honouring
   it would make one bad header allocate the machine away. *)
let max_frame = 256 * 1024 * 1024

exception Frame_too_large of { limit : int; got : int }

let () =
  Printexc.register_printer (function
    | Frame_too_large { limit; got } ->
      Some (Printf.sprintf "Sock.Frame_too_large (got %d bytes, limit %d)" got limit)
    | _ -> None)

(* Fill [buf[pos, pos+len)] exactly, looping on short reads (stream
   sockets deliver whatever the kernel has buffered, not whole frames).
   Raises [End_of_file] if the peer closes mid-range. *)
let rec read_exact fd buf pos len =
  if len > 0 then begin
    match Unix.read fd buf pos len with
    | 0 -> raise End_of_file
    | n -> read_exact fd buf (pos + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_exact fd buf pos len
  end

let frame_header len =
  let h = Bytes.create 8 in
  for i = 0 to 7 do
    Bytes.unsafe_set h i (Char.unsafe_chr ((len lsr (8 * i)) land 0xFF))
  done;
  Bytes.unsafe_to_string h

let send_frame fd payload =
  let len = String.length payload in
  if len > max_frame then raise (Frame_too_large { limit = max_frame; got = len });
  write_all fd (frame_header len) 0 8;
  write_all fd payload 0 len

(* One length-prefixed frame; [None] on clean EOF at a frame boundary.
   EOF inside a frame (header or payload) raises [End_of_file] — a peer
   that died mid-message, which {!is_disconnect} classifies. *)
let recv_frame fd =
  let h = Bytes.create 8 in
  match Unix.read fd h 0 8 with
  | 0 -> None
  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
    read_exact fd h 0 8;
    Some h
  | n ->
    read_exact fd h n (8 - n);
    Some h

let recv_frame fd =
  match recv_frame fd with
  | None -> None
  | Some h ->
    let len = ref 0 in
    for i = 7 downto 0 do
      len := (!len lsl 8) lor Char.code (Bytes.get h i)
    done;
    if !len < 0 || !len > max_frame then
      raise (Frame_too_large { limit = max_frame; got = !len });
    let payload = Bytes.create !len in
    read_exact fd payload 0 !len;
    Some payload
