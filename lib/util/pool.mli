(** A fixed-size pool of OCaml 5 domains for data-parallel map over
    read-only shared structures (frozen {!Bpq_graph.Digraph}s, built
    indexes).

    The combinators preserve input order, propagate the first exception
    raised by any task (with its backtrace), and degrade to plain
    sequential execution when the pool has a single slot — so a
    [size:1] pool is a drop-in, deterministic replacement used by tests
    and by machines without spare cores.

    Determinism: a task must not share mutable state (PRNGs included)
    with any other task; under that contract [map_array pool f a] is
    observably identical to [Array.map f a] for every pool size, which
    is what makes parallel index builds and batch query evaluation
    bit-identical to their sequential runs. *)

type t

val create : int -> t
(** [create n] makes a pool with [n] execution slots: the calling domain
    plus [n - 1] worker domains (so [create 1] spawns nothing and runs
    everything sequentially).  [n] is clamped to [[1, 128]]. *)

val size : t -> int
(** Number of execution slots (>= 1). *)

val sequential : t
(** The trivial single-slot pool. *)

val shutdown : t -> unit
(** Join the worker domains.  Idempotent; the pool degrades to
    sequential execution afterwards.  Pools created by {!default} are
    shut down automatically at exit. *)

val default : unit -> t
(** The process-wide pool, created on first use with
    [BPQ_JOBS] slots when that environment variable is a positive
    integer, and [Domain.recommended_domain_count ()] (capped at 8)
    otherwise.  [BPQ_JOBS=1] forces sequential execution everywhere. *)

val default_jobs : unit -> int
(** The slot count {!default} would use, without creating the pool. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array pool f a] is [Array.map f a] with the applications of [f]
    spread across the pool.  Result order matches input order; if any
    application raises, the first exception (in input order) is
    re-raised in the caller after all tasks have settled. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** List analogue of {!map_array}. *)

val iter_array : t -> ('a -> unit) -> 'a array -> unit
(** [map_array] for effects only (each task must touch disjoint
    state). *)

val run_all : t -> (unit -> unit) array -> unit
(** Run independent thunks across the pool; exceptions as in
    {!map_array}. *)

val async : t -> (unit -> unit) -> unit
(** Fire-and-forget: enqueue the job for a {e worker} domain and return
    immediately — unlike the map combinators, the caller does not
    participate, so a job observes a genuine pool-worker [Domain.self]
    (per-domain cache shards stay single-owner; this is what the serve
    daemon's connection threads rely on).  On a sequential pool the job
    runs inline in the caller before [async] returns.  The job must not
    raise: worker loops swallow exceptions, so capture results and
    errors on the caller side (ref + condition variable). *)
