let now () = Unix.gettimeofday ()

let time f =
  let start = now () in
  let result = f () in
  (result, now () -. start)

let time_ms f =
  let result, s = time f in
  (result, s *. 1000.0)

type deadline =
  | Never
  | Until of {
      limit : float;
      budget : float;
      mutable countdown : int;
      mutable stride : int;
      mutable last_check : float;
    }

exception Timeout

let no_deadline = Never

(* The stride amortises [Unix.gettimeofday] over cheap per-iteration work,
   but a fixed stride lets slow iterations (large-scale VF2 states) blow
   past the cut-off by minutes.  So the stride adapts: every clock
   consultation rescales it so consultations land roughly [target_interval]
   of wall clock apart, whatever the per-call cost, and the interval itself
   shrinks once most of the budget is spent so the overshoot stays small
   near the limit. *)
(* Start small so even a loop whose iterations cost milliseconds reaches
   the clock within a few calls; for cheap iterations the first
   consultation immediately rescales the stride upward. *)
let initial_stride = 32
let min_stride = 1
let max_stride = 65536
let target_interval = 0.01 (* seconds between clock consultations *)

(* A deadline that is already (or immediately) expired must report so on
   its very first consultation — a stride of [initial_stride] would let
   [deadline_after 0.0] survive 31 calls before ever reading the clock,
   and a serve daemon admitting a query against an exhausted budget
   would do real work before noticing. *)
let first_stride ~limit ~at = if limit <= at then min_stride else initial_stride

let deadline_after s =
  let start = now () in
  let limit = start +. s in
  let stride = first_stride ~limit ~at:start in
  Until { limit; budget = s; countdown = stride; stride; last_check = start }

(* A [deadline] carries mutable stride state and must not be shared across
   domains.  Parallel matchers hand each worker a clone: same absolute
   cut-off, fresh stride bookkeeping — except that a clone of an expired
   deadline keeps the minimum stride, so it too trips on first use. *)
let clone = function
  | Never -> Never
  | Until d ->
    let t = now () in
    let stride = first_stride ~limit:d.limit ~at:t in
    Until { limit = d.limit; budget = d.budget; countdown = stride; stride; last_check = t }

let expired = function
  | Never -> false
  | Until d ->
    d.countdown <- d.countdown - 1;
    if d.countdown > 0 then false
    else begin
      let t = now () in
      let since = t -. d.last_check in
      d.last_check <- t;
      let remaining = d.limit -. t in
      (* Tighten the consultation interval as the budget runs out: past
         the halfway point we aim for at most a quarter of what is left,
         so the final overshoot is bounded by ~remaining/4, not by the
         cost of [stride] more iterations. *)
      let interval =
        if remaining <= 0.5 *. d.budget then
          Float.max 1e-4 (Float.min target_interval (0.25 *. remaining))
        else target_interval
      in
      let scaled =
        if since <= 0.0 then d.stride * 2
        else int_of_float (Float.of_int d.stride *. (interval /. since))
      in
      d.stride <- max min_stride (min max_stride scaled);
      d.countdown <- d.stride;
      (* [<=], not [<]: a zero-budget deadline whose first consultation
         lands on the exact limit instant is expired, not one tick away
         from it. *)
      remaining <= 0.0
    end
