(** Fixed-capacity bitset over dense non-negative int identifiers.

    The matchers track "node already used" / "node is a candidate of u"
    over graph node ids; these are dense int universes, for which a bitset
    probe (two loads and a mask) beats a hashtable by an order of
    magnitude.  Indices must satisfy [0 <= i < capacity]; out-of-range
    access raises [Invalid_argument] via the underlying array bounds
    check. *)

type t

val create : int -> t
(** [create n] — all bits clear, capacity [n]. *)

val capacity : t -> int
val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit

val clear : t -> unit
(** Clear every bit (O(capacity/32)). *)

val of_array : int -> int array -> t
(** [of_array n arr] — capacity [n], bits of [arr] set. *)

val count : t -> int
(** Number of set bits. *)

val iter : t -> (int -> unit) -> unit
(** Visit set bits ascending. *)
