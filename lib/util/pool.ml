(* A fixed-size domain pool.

   Work distribution is a shared atomic cursor over the input array: the
   calling domain and every worker repeatedly claim the next unclaimed
   index and evaluate it, so a claimed item is always executed by the
   domain that claimed it.  The caller participates too, which makes the
   combinators deadlock-free under nesting: even if every worker is busy,
   the caller drains the whole input itself and only ever waits for items
   some domain is actively executing. *)

type state = {
  jobs : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

type t = {
  slots : int;
  mutable state : state option; (* [None] = sequential *)
}

let size t = t.slots
let sequential = { slots = 1; state = None }

let rec worker_loop st =
  Mutex.lock st.mutex;
  while Queue.is_empty st.jobs && not st.stop do
    Condition.wait st.nonempty st.mutex
  done;
  if Queue.is_empty st.jobs then Mutex.unlock st.mutex
  else begin
    let job = Queue.pop st.jobs in
    Mutex.unlock st.mutex;
    (* Jobs trap their own exceptions; a raise here would kill the
       worker, so swallow defensively. *)
    (try job () with _ -> ());
    worker_loop st
  end

let create n =
  let n = max 1 (min n 128) in
  if n = 1 then { slots = 1; state = None }
  else begin
    let st =
      { jobs = Queue.create ();
        mutex = Mutex.create ();
        nonempty = Condition.create ();
        stop = false;
        workers = [] }
    in
    st.workers <- List.init (n - 1) (fun _ -> Domain.spawn (fun () -> worker_loop st));
    { slots = n; state = Some st }
  end

let shutdown t =
  match t.state with
  | None -> ()
  | Some st ->
    Mutex.lock st.mutex;
    st.stop <- true;
    Condition.broadcast st.nonempty;
    Mutex.unlock st.mutex;
    List.iter Domain.join st.workers;
    st.workers <- [];
    t.state <- None

let submit st job =
  Mutex.lock st.mutex;
  Queue.push job st.jobs;
  Condition.signal st.nonempty;
  Mutex.unlock st.mutex

(* Fire-and-forget submission, for callers (the serve daemon's
   connection threads) that want the job to run on a *worker domain*
   rather than participating themselves: a pool worker owns its own
   per-domain cache shards, so routing queries through [async] keeps
   every shard single-owner.  With no workers (sequential pool) the job
   runs inline in the caller; such callers must provide their own
   exclusion (see Server).  The job must not raise — exceptions are
   swallowed by the worker loop — so wrap results and exceptions into a
   ref + condition on the caller side. *)
let async t job =
  match t.state with
  | None -> job ()
  | Some st -> submit st job

let default_jobs () =
  match Sys.getenv_opt "BPQ_JOBS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> min n 128
     | _ -> 1)
  | None -> min (Domain.recommended_domain_count ()) 8

let default_pool : t option ref = ref None

let default () =
  match !default_pool with
  | Some p -> p
  | None ->
    let p = create (default_jobs ()) in
    default_pool := Some p;
    at_exit (fun () -> shutdown p);
    p

let map_array t f a =
  let n = Array.length a in
  match t.state with
  | _ when n = 0 -> [||]
  | None -> Array.map f a
  | Some _ when n = 1 -> Array.map f a
  | Some st ->
    let results = Array.make n None in
    (* First error in input order wins, so the raised exception does not
       depend on scheduling. *)
    let error = ref None in
    let error_mutex = Mutex.create () in
    let record i e bt =
      Mutex.lock error_mutex;
      (match !error with
       | Some (j, _, _) when j <= i -> ()
       | _ -> error := Some (i, e, bt));
      Mutex.unlock error_mutex
    in
    let next = Atomic.make 0 in
    let completed = Atomic.make 0 in
    let fin_mutex = Mutex.create () in
    let fin_cond = Condition.create () in
    let step () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (match f a.(i) with
           | v -> results.(i) <- Some v
           | exception e -> record i e (Printexc.get_raw_backtrace ()));
          if Atomic.fetch_and_add completed 1 = n - 1 then begin
            Mutex.lock fin_mutex;
            Condition.broadcast fin_cond;
            Mutex.unlock fin_mutex
          end;
          loop ()
        end
      in
      loop ()
    in
    for _ = 1 to min (t.slots - 1) (n - 1) do
      submit st step
    done;
    step ();
    Mutex.lock fin_mutex;
    while Atomic.get completed < n do
      Condition.wait fin_cond fin_mutex
    done;
    Mutex.unlock fin_mutex;
    (match !error with
     | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
     | None -> ());
    Array.map
      (function Some v -> v | None -> assert false (* all completed *))
      results

let map_list t f l = Array.to_list (map_array t f (Array.of_list l))
let iter_array t f a = ignore (map_array t f a : unit array)
let run_all t thunks = iter_array t (fun th -> th ()) thunks
