(* Slots live in four parallel arrays (key, value, prev, next); the
   recency list is intrusive: prev/next hold slot indices, -1 terminates.
   [head] is the most recently used slot, [tail] the eviction victim. *)

type 'v t = {
  cap : int;
  tbl : (int, int) Hashtbl.t;  (* key -> slot *)
  mutable keys : int array;
  mutable vals : 'v option array;
  mutable prev : int array;
  mutable next : int array;
  mutable head : int;
  mutable tail : int;
  mutable len : int;
  mutable evicted : int;
}

let create cap =
  if cap < 0 then invalid_arg "Lru.create: negative capacity";
  let size = min cap 16 in
  { cap;
    tbl = Hashtbl.create (max 16 size);
    keys = Array.make size 0;
    vals = Array.make size None;
    prev = Array.make size (-1);
    next = Array.make size (-1);
    head = -1;
    tail = -1;
    len = 0;
    evicted = 0 }

let capacity t = t.cap
let length t = t.len
let evictions t = t.evicted

let grow t =
  let size = Array.length t.keys in
  if t.len = size && size < t.cap then begin
    let size' = min t.cap (max 16 (2 * size)) in
    let extend a fill =
      let a' = Array.make size' fill in
      Array.blit a 0 a' 0 size;
      a'
    in
    t.keys <- extend t.keys 0;
    t.vals <- extend t.vals None;
    t.prev <- extend t.prev (-1);
    t.next <- extend t.next (-1)
  end

(* Detach slot [s] from the recency list. *)
let unlink t s =
  let p = t.prev.(s) and n = t.next.(s) in
  if p >= 0 then t.next.(p) <- n else t.head <- n;
  if n >= 0 then t.prev.(n) <- p else t.tail <- p

let push_front t s =
  t.prev.(s) <- -1;
  t.next.(s) <- t.head;
  if t.head >= 0 then t.prev.(t.head) <- s;
  t.head <- s;
  if t.tail < 0 then t.tail <- s

let promote t s =
  if t.head <> s then begin
    unlink t s;
    push_front t s
  end

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> None
  | Some s ->
    promote t s;
    t.vals.(s)

let mem t k = Hashtbl.mem t.tbl k

let add t k v =
  if t.cap > 0 then
    match Hashtbl.find_opt t.tbl k with
    | Some s ->
      t.vals.(s) <- Some v;
      promote t s
    | None ->
      let s =
        if t.len < t.cap then begin
          grow t;
          let s = t.len in
          t.len <- t.len + 1;
          s
        end
        else begin
          (* Full: reuse the least-recently-used slot. *)
          let s = t.tail in
          Hashtbl.remove t.tbl t.keys.(s);
          t.evicted <- t.evicted + 1;
          unlink t s;
          s
        end
      in
      t.keys.(s) <- k;
      t.vals.(s) <- Some v;
      Hashtbl.replace t.tbl k s;
      push_front t s

let clear t =
  Hashtbl.reset t.tbl;
  Array.fill t.vals 0 (Array.length t.vals) None;
  t.head <- -1;
  t.tail <- -1;
  t.len <- 0

let to_list t =
  let rec walk acc s =
    if s < 0 then List.rev acc
    else
      let v = match t.vals.(s) with Some v -> v | None -> assert false in
      walk ((t.keys.(s), v) :: acc) t.next.(s)
  in
  walk [] t.head
