type t = { headers : string list; mutable rows : string list list }

let create headers = { headers; rows = [] }
let add_row t row = t.rows <- row :: t.rows
let headers t = t.headers
let rows t = List.rev t.rows

let pad cell width = cell ^ String.make (width - String.length cell) ' '

let render t =
  let rows = List.rev t.rows in
  let ncols = List.length t.headers in
  let normalize row =
    let n = List.length row in
    if n >= ncols then row else row @ List.init (ncols - n) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let widths = Array.of_list (List.map String.length t.headers) in
  let note row =
    List.iteri
      (fun i cell ->
        if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
      row
  in
  List.iter note rows;
  let line row =
    String.concat "  " (List.mapi (fun i cell -> pad cell widths.(i)) row)
  in
  let rule =
    String.concat "  "
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  String.concat "\n" (line t.headers :: rule :: List.map line rows)

let print t =
  print_string (render t);
  print_newline ()

let cell_float ?(digits = 3) v = Printf.sprintf "%.*f" digits v

let cell_time s =
  if s < 1e-3 then Printf.sprintf "%.1fus" (s *. 1e6)
  else if s < 1.0 then Printf.sprintf "%.2fms" (s *. 1e3)
  else Printf.sprintf "%.2fs" s

let cell_ratio v = Printf.sprintf "%.2e" v
