(** Aligned plain-text tables.

    The bench harness reproduces each of the paper's tables and figures as a
    textual series; this module renders them with aligned columns so the
    output in [bench_output.txt] is directly readable. *)

type t

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Rows shorter than the header are padded with empty cells. *)

val headers : t -> string list

val rows : t -> string list list
(** Rows in insertion order (padding not applied) — machine-readable
    export, e.g. the bench harness's [--json] files. *)

val render : t -> string
(** Render with a header rule and two-space column gaps. *)

val print : t -> unit
(** [render] followed by [print_string] and a trailing newline. *)

val cell_float : ?digits:int -> float -> string
(** Fixed-point formatting helper ([digits] defaults to 3). *)

val cell_time : float -> string
(** Formats a duration in seconds adaptively (e.g. ["12.3ms"], ["4.56s"]). *)

val cell_ratio : float -> string
(** Scientific notation with two significant digits, for size ratios such as
    the paper's [|index|/|G|] plots. *)
