(* In-place monomorphic sorting of int array ranges.

   [Stdlib.Array.sort compare] calls the polymorphic comparator through a
   closure per comparison; on the CSR freeze and candidate-set hot paths
   that indirection dominates.  This is a plain median-of-three quicksort
   with an insertion-sort cutoff, specialised to immediate ints (every
   comparison compiles to a register compare).  Recursion always descends
   into the smaller partition, so stack depth is O(log n) even on
   adversarial inputs. *)

let insertion_cutoff = 14

let insertion arr lo hi =
  for i = lo + 1 to hi do
    let x = arr.(i) in
    let j = ref (i - 1) in
    while !j >= lo && arr.(!j) > x do
      arr.(!j + 1) <- arr.(!j);
      decr j
    done;
    arr.(!j + 1) <- x
  done

let swap arr i j =
  let t = arr.(i) in
  arr.(i) <- arr.(j);
  arr.(j) <- t

(* Median of arr.(lo), arr.(mid), arr.(hi), left in arr.(mid). *)
let median3 arr lo hi =
  let mid = lo + ((hi - lo) / 2) in
  if arr.(mid) < arr.(lo) then swap arr mid lo;
  if arr.(hi) < arr.(mid) then begin
    swap arr hi mid;
    if arr.(mid) < arr.(lo) then swap arr mid lo
  end;
  arr.(mid)

let rec qsort arr lo hi =
  if hi - lo >= insertion_cutoff then begin
    let pivot = median3 arr lo hi in
    let i = ref lo and j = ref hi in
    while !i <= !j do
      while arr.(!i) < pivot do incr i done;
      while arr.(!j) > pivot do decr j done;
      if !i <= !j then begin
        swap arr !i !j;
        incr i;
        decr j
      end
    done;
    (* Recurse into the smaller side first, loop on the larger. *)
    if !j - lo < hi - !i then begin
      qsort arr lo !j;
      qsort arr !i hi
    end
    else begin
      qsort arr !i hi;
      qsort arr lo !j
    end
  end
  else insertion arr lo hi

let sort_range arr pos len =
  if pos < 0 || len < 0 || pos + len > Array.length arr then
    invalid_arg "Int_sort.sort_range";
  if len > 1 then qsort arr pos (pos + len - 1)

let sort arr = if Array.length arr > 1 then qsort arr 0 (Array.length arr - 1)

let dedup_range arr pos len =
  if len <= 1 then len
  else begin
    let w = ref (pos + 1) in
    for r = pos + 1 to pos + len - 1 do
      if arr.(r) <> arr.(!w - 1) then begin
        arr.(!w) <- arr.(r);
        incr w
      end
    done;
    !w - pos
  end
