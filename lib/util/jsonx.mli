(** Minimal JSON values: construction, strict printing, parsing.

    Both sides of the serve protocol ({!Bpq_core.Server}) and the bench
    harness's [--json] artefacts use this representation.  {!to_string}
    emits strict JSON — strings escaped, numbers finite; a non-finite
    float prints as [null], so undefined statistics (e.g. the percentile
    of an empty latency sample) can never produce the invalid tokens
    [nan] or [inf] in an artefact. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** One-line strict JSON. *)

val parse : string -> (t, string) result
(** Strict parse of a complete JSON document; trailing non-whitespace is
    an error.  Numbers without [.]/[e] parse as [Int] (falling back to
    [Float] beyond [int] range); [\uXXXX] escapes decode to UTF-8,
    including surrogate pairs. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** Object field by key; [None] on missing keys and non-objects. *)

val to_string_opt : t -> string option
val to_int_opt : t -> int option
(** [Int], or an integral [Float]. *)

val to_float_opt : t -> float option
(** [Float] or [Int]. *)

val to_bool_opt : t -> bool option
val to_list_opt : t -> t list option

val of_float_opt : float option -> t
(** [Float f] when defined, [Null] otherwise — the encoding for possibly
    undefined statistics. *)
