(* The in-memory overlay: the volatile half of the write path.

   An overlay is an immutable value over persistent maps — applying a
   batch returns a new overlay and never touches the old one, so a slot
   handed to in-flight queries keeps serving a frozen, consistent view
   while the serve daemon swaps newer overlays in behind it.

   [wrap] turns (overlay, base source) into another [Exec.source]: the
   read-through view.  Correctness leans on one structural fact about
   the engine — index buckets answer *undirected* adjacency (they are
   built from the merged-neighbour CSR), while edge probes answer
   directed membership — and on one about the base: a frozen snapshot
   assigns ids [0 .. base_n), so every id ≥ [base_n] is overlay-born and
   the base can be skipped entirely for it.

   Bucket merge, per lookup with key tuple [vs] and target label [l]:
   - base hits stream first, in base emission order; a hit is re-checked
     (still adjacent to every key node under overlay edits) only when it
     or a key node was touched by an edge removal — otherwise no removal
     can have affected it;
   - additions are nodes adjacent to every key node under the merged
     edge relation that the base bucket does not already contain.  Any
     such node has at least one overlay-added adjacency (else the base
     bucket would contain it), so the union of the overlay incidence
     sets of the key nodes — or the overlay's new [l]-labelled nodes for
     an anchorless lookup — is a complete candidate set.  Survivors are
     emitted after the base hits, sorted ascending.
   The result is the exact bucket a from-scratch rebuild would serve
   (the executor sorts hits anyway, but [bpq run] prints accessed-item
   counts, so the merge must be exact, not merely answer-equivalent).

   Pushdown gating: a constraint none of whose labels were touched has
   byte-identical buckets, probes restricted to base ids, and unchanged
   values, so the base's batching and pushdown hooks stay safe for it
   and are delegated as-is.  A touched constraint falls back to the
   read-through path (push hooks answer [None], prefetch is dropped). *)

open Bpq_graph
open Bpq_core
module Imap = Map.Make (Int)
module Iset = Set.Make (Int)

(* Overlay states are cache keys (fetch tier): the version is minted
   from a process-wide counter so two distinct states can never collide,
   including across a compaction swap (ABA).  0 is reserved for static
   sources. *)
let next_version = Atomic.make 1

type t = {
  base_n : int;  (* nodes in the base snapshot; new ids start here *)
  base_size : int;  (* base |G| = nodes + edges *)
  version : int;
  new_attrs : (Label.t * Value.t) Imap.t;  (* id ≥ base_n -> label, value *)
  by_label_new : int list Imap.t;  (* label -> new ids, insertion order desc *)
  edges : bool Imap.t;  (* packed (u, v) -> present; last write wins *)
  nbr : Iset.t Imap.t;  (* overlay-edge incidence, both directions, append-only *)
  removed_touch : Iset.t;  (* endpoints of any Remove_edge override *)
  vals : Value.t Imap.t;  (* base-node value overrides *)
  label_gens : int Imap.t;  (* per-label write generations, carried across compaction *)
  touched : Iset.t;  (* labels with any write this generation *)
  net_edges : int;
  n_ops : int;
}

let empty ?carry ~base_n ~base_size () =
  let label_gens =
    match carry with Some o -> o.label_gens | None -> Imap.empty
  in
  { base_n;
    base_size;
    version = Atomic.fetch_and_add next_version 1;
    new_attrs = Imap.empty;
    by_label_new = Imap.empty;
    edges = Imap.empty;
    nbr = Imap.empty;
    removed_touch = Iset.empty;
    vals = Imap.empty;
    label_gens;
    touched = Iset.empty;
    net_edges = 0;
    n_ops = 0 }

let n_new t = Imap.cardinal t.new_attrs
let version t = t.version
let n_ops t = t.n_ops
let net_nodes t = n_new t
let net_edges t = t.net_edges
let edge_overrides t = Imap.cardinal t.edges
let value_overrides t = Imap.cardinal t.vals
let label_gen t l = match Imap.find_opt l t.label_gens with Some g -> g | None -> 0

let touched_labels t =
  List.map (fun l -> (l, label_gen t l)) (Iset.elements t.touched)

(* Packed directed-edge key.  31 bits per endpoint bounds the writable
   graph at 2^31 nodes — beyond any snapshot this engine pages. *)
let max_node = (1 lsl 31) - 1
let pack u v = (u lsl 31) lor v

(* ---------------- applying a batch ---------------- *)

let apply ~base ov ops =
  let probe = base.Exec.probe_edge in
  let node_label v ov =
    if v < ov.base_n then base.Exec.node_label v
    else fst (Imap.find v ov.new_attrs)
  in
  let cur_edge ov u v =
    match Imap.find_opt (pack u v) ov.edges with
    | Some present -> present
    | None -> u < ov.base_n && v < ov.base_n && probe u v
  in
  let touch l ov =
    { ov with
      label_gens = Imap.add l (label_gen ov l + 1) ov.label_gens;
      touched = Iset.add l ov.touched }
  in
  let check_node what ov v =
    if v < 0 || v >= ov.base_n + n_new ov then
      Error (Printf.sprintf "%s: node %d out of range (store has %d nodes)"
               what v (ov.base_n + n_new ov))
    else if v > max_node then
      Error (Printf.sprintf "%s: node %d exceeds the writable id range" what v)
    else Ok ()
  in
  let ( let* ) = Result.bind in
  let step ov op =
    let ov = { ov with n_ops = ov.n_ops + 1 } in
    match op with
    | Wal.Add_node { label; value } ->
      let l = Label.intern base.Exec.table label in
      let id = ov.base_n + n_new ov in
      if id > max_node then Error "add_node: node id range exhausted"
      else
        let prev =
          Option.value ~default:[] (Imap.find_opt l ov.by_label_new)
        in
        Ok
          (touch l
             { ov with
               new_attrs = Imap.add id (l, value) ov.new_attrs;
               by_label_new = Imap.add l (id :: prev) ov.by_label_new })
    | Wal.Add_edge (u, v) ->
      let* () = check_node "add_edge" ov u in
      let* () = check_node "add_edge" ov v in
      let existed = cur_edge ov u v in
      let add_nbr a b nbr =
        let s = Option.value ~default:Iset.empty (Imap.find_opt a nbr) in
        Imap.add a (Iset.add b s) nbr
      in
      let ov =
        { ov with
          edges = Imap.add (pack u v) true ov.edges;
          nbr = add_nbr u v (add_nbr v u ov.nbr);
          net_edges = (ov.net_edges + if existed then 0 else 1) }
      in
      Ok (touch (node_label u ov) (touch (node_label v ov) ov))
    | Wal.Remove_edge (u, v) ->
      let* () = check_node "remove_edge" ov u in
      let* () = check_node "remove_edge" ov v in
      let existed = cur_edge ov u v in
      let ov =
        { ov with
          edges = Imap.add (pack u v) false ov.edges;
          removed_touch = Iset.add u (Iset.add v ov.removed_touch);
          net_edges = (ov.net_edges - if existed then 1 else 0) }
      in
      Ok (touch (node_label u ov) (touch (node_label v ov) ov))
    | Wal.Set_value (v, value) ->
      let* () = check_node "set_value" ov v in
      let ov =
        if v >= ov.base_n then
          let l, _ = Imap.find v ov.new_attrs in
          { ov with new_attrs = Imap.add v (l, value) ov.new_attrs }
        else { ov with vals = Imap.add v value ov.vals }
      in
      Ok (touch (node_label v ov) ov)
  in
  let rec go ov = function
    | [] -> Ok { ov with version = Atomic.fetch_and_add next_version 1 }
    | op :: rest -> (
      match step ov op with Ok ov -> go ov rest | Error _ as e -> e)
  in
  go ov ops

(* ---------------- read-through source ---------------- *)

type counters = {
  lookups : int Atomic.t;  (* all index lookups through the wrapper *)
  delegated : int Atomic.t;  (* untouched constraint: base served verbatim *)
  merged : int Atomic.t;  (* touched constraint: overlay ∪ base merge ran *)
  base_hits : int Atomic.t;  (* base bucket items streamed by merges *)
  masked : int Atomic.t;  (* base hits dropped by edge tombstones *)
  added : int Atomic.t;  (* overlay-born hits appended by merges *)
  probes_overlay : int Atomic.t;  (* edge probes answered by the overlay *)
}

let fresh_counters () =
  { lookups = Atomic.make 0;
    delegated = Atomic.make 0;
    merged = Atomic.make 0;
    base_hits = Atomic.make 0;
    masked = Atomic.make 0;
    added = Atomic.make 0;
    probes_overlay = Atomic.make 0 }

type counter_snapshot = {
  c_lookups : int;
  c_delegated : int;
  c_merged : int;
  c_base_hits : int;
  c_masked : int;
  c_added : int;
  c_probes_overlay : int;
}

let snapshot c =
  { c_lookups = Atomic.get c.lookups;
    c_delegated = Atomic.get c.delegated;
    c_merged = Atomic.get c.merged;
    c_base_hits = Atomic.get c.base_hits;
    c_masked = Atomic.get c.masked;
    c_added = Atomic.get c.added;
    c_probes_overlay = Atomic.get c.probes_overlay }

let bump c = Atomic.incr c

let wrap ?counters ov (base : Exec.source) =
  let c = match counters with Some c -> c | None -> fresh_counters () in
  let touched_label l = Iset.mem l ov.touched in
  let constr_touched (cst : Bpq_access.Constr.t) =
    touched_label cst.target || List.exists touched_label cst.source
  in
  let cur_edge u v =
    match Imap.find_opt (pack u v) ov.edges with
    | Some present ->
      bump c.probes_overlay;
      present
    | None ->
      if u >= ov.base_n || v >= ov.base_n then begin
        bump c.probes_overlay;
        false
      end
      else base.Exec.probe_edge u v
  in
  let adj u v = cur_edge u v || cur_edge v u in
  let node_label v =
    if v >= ov.base_n then fst (Imap.find v ov.new_attrs)
    else base.Exec.node_label v
  in
  let node_value v =
    if v >= ov.base_n then snd (Imap.find v ov.new_attrs)
    else
      match Imap.find_opt v ov.vals with
      | Some value -> value
      | None -> base.Exec.node_value v
  in
  (* The merged bucket for a touched constraint, as two ordered runs:
     base survivors (base order) then overlay additions (ascending). *)
  let merged_iter (cst : Bpq_access.Constr.t) (vs : int array) f =
    bump c.merged;
    let all_base = Array.for_all (fun v -> v < ov.base_n) vs in
    let base_hits = ref [] in
    if all_base then
      base.Exec.lookup_iter cst vs (fun x -> base_hits := x :: !base_hits);
    let base_hits = List.rev !base_hits in
    let in_base = Hashtbl.create (max 8 (List.length base_hits)) in
    List.iter (fun x -> Hashtbl.replace in_base x ()) base_hits;
    let suspect_key =
      Array.exists (fun v -> Iset.mem v ov.removed_touch) vs
    in
    let keeps x =
      ((not suspect_key) && not (Iset.mem x ov.removed_touch))
      || Array.for_all (fun v -> adj x v) vs
    in
    List.iter
      (fun x ->
        bump c.base_hits;
        if keeps x then f x else bump c.masked)
      base_hits;
    let candidates =
      if Array.length vs = 0 then
        Option.value ~default:[] (Imap.find_opt cst.target ov.by_label_new)
      else
        Array.fold_left
          (fun acc v ->
            match Imap.find_opt v ov.nbr with
            | Some s -> Iset.union s acc
            | None -> acc)
          Iset.empty vs
        |> Iset.elements
    in
    let adds =
      List.filter
        (fun x ->
          (not (Hashtbl.mem in_base x))
          && node_label x = cst.target
          && Array.for_all (fun v -> adj x v) vs)
        candidates
      |> List.sort_uniq compare
    in
    List.iter
      (fun x ->
        bump c.added;
        f x)
      adds
  in
  let lookup_iter cst vs f =
    bump c.lookups;
    if constr_touched cst then merged_iter cst vs f
    else begin
      bump c.delegated;
      base.Exec.lookup_iter cst vs f
    end
  in
  let lookup cst key =
    bump c.lookups;
    if constr_touched cst then begin
      let out = ref [] in
      merged_iter cst (Array.of_list key) (fun x -> out := x :: !out);
      Array.of_list (List.rev !out)
    end
    else begin
      bump c.delegated;
      base.Exec.lookup cst key
    end
  in
  let probe_edges =
    match base.Exec.probe_edges with
    | None -> None
    | Some pb ->
      Some
        (fun pairs ->
          (* Answer overlay-determined pairs locally, ship the rest to the
             base in one (positional) batch. *)
          let n = Array.length pairs in
          let out = Array.make n false in
          let fwd = ref [] in
          Array.iteri
            (fun i (u, v) ->
              match Imap.find_opt (pack u v) ov.edges with
              | Some present ->
                bump c.probes_overlay;
                out.(i) <- present
              | None ->
                if u >= ov.base_n || v >= ov.base_n then
                  bump c.probes_overlay
                else fwd := (i, (u, v)) :: !fwd)
            pairs;
          (match !fwd with
          | [] -> ()
          | fwd ->
            let fwd = Array.of_list (List.rev fwd) in
            let verdicts = pb (Array.map snd fwd) in
            Array.iteri (fun j (i, _) -> out.(i) <- verdicts.(j)) fwd);
          out)
  in
  { base with
    Exec.lookup;
    lookup_iter;
    probe_edge = cur_edge;
    probe_edges;
    prefetch =
      Option.map
        (fun p -> fun cst rows -> if constr_touched cst then () else p cst rows)
        base.Exec.prefetch;
    push_fetch =
      Option.map
        (fun h ->
          fun cst pred rows -> if constr_touched cst then None else h cst pred rows)
        base.Exec.push_fetch;
    push_semijoin =
      Option.map
        (fun h ->
          fun cst ~row ~arrays ~other_slot ~target_right ->
            if constr_touched cst then None
            else h cst ~row ~arrays ~other_slot ~target_right)
        base.Exec.push_semijoin;
    warm_nodes =
      Option.map
        (fun w ->
          fun ids ->
            let owned = Array.of_seq (Seq.filter (fun v -> v < ov.base_n)
                                        (Array.to_seq ids)) in
            if Array.length owned > 0 then w owned)
        base.Exec.warm_nodes;
    node_label;
    node_value;
    graph_size = ov.base_size + n_new ov + ov.net_edges;
    data_version = ov.version;
    label_gen = Some (label_gen ov) }
