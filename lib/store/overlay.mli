(** The in-memory write overlay: an immutable delta over a frozen base
    snapshot, readable through any {!Bpq_core.Exec.source}.

    Overlays are persistent values — {!apply} returns a new overlay and
    leaves the old one intact, so a serving slot keeps a frozen,
    consistent view while newer overlays swap in behind it.  {!wrap}
    produces the read-through source: overlay ∪ base with tombstone
    masking for index buckets, edge probes and attribute values, exact
    to the bucket item (a from-scratch rebuild serves the same multiset,
    in survivors-then-sorted-additions order).

    Constraints none of whose labels were touched by a write delegate to
    the base verbatim — including its batching and pushdown hooks, which
    keeps the sharded fast path honest: a touched constraint's pushdown
    hooks answer [None] and the executor falls back to the read-through
    lookups. *)

open Bpq_graph
open Bpq_core

type t

val empty : ?carry:t -> base_n:int -> base_size:int -> unit -> t
(** A writeless overlay over a base with [base_n] nodes and [base_size]
    = nodes + edges.  [?carry] inherits the per-label write generations
    of a pre-compaction overlay (they are monotone over the process
    lifetime, which is what lets result-cache entries computed before a
    compaction stay valid after it); the data version is freshly minted
    either way. *)

val apply : base:Exec.source -> t -> Wal.op list -> (t, string) result
(** Apply one batch, validating against the combined state (node ids in
    range, labels interned in the base's table).  [Error] is a one-line
    typed message and leaves no partial state behind (the input overlay
    is unchanged either way).  On [Ok], the result carries a fresh data
    version and bumped generations for every touched label. *)

(** {1 Introspection} *)

val version : t -> int
val n_ops : t -> int
val net_nodes : t -> int
val net_edges : t -> int
val edge_overrides : t -> int
val value_overrides : t -> int
val label_gen : t -> Label.t -> int
val touched_labels : t -> (Label.t * int) list
(** Labels written this generation, with their current generation. *)

(** {1 Read-through observability} *)

type counters

val fresh_counters : unit -> counters

type counter_snapshot = {
  c_lookups : int;  (** Index lookups through the wrapper. *)
  c_delegated : int;  (** Served verbatim by the base (untouched constraint). *)
  c_merged : int;  (** Overlay ∪ base merges. *)
  c_base_hits : int;  (** Base bucket items considered by merges. *)
  c_masked : int;  (** Base hits dropped by edge tombstones. *)
  c_added : int;  (** Overlay-born hits appended by merges. *)
  c_probes_overlay : int;  (** Edge probes answered without the base. *)
}

val snapshot : counters -> counter_snapshot

val wrap : ?counters:counters -> t -> Exec.source -> Exec.source
(** The read-through source.  Same table, constraints and stamp as the
    base (plans stay valid); [graph_size] reflects the net node/edge
    deltas; [data_version] and [label_gen] carry the overlay's identity
    for the caches.  Thread-safe for concurrent read-only use whenever
    the base is ([?counters] are atomics, shared across wraps so totals
    survive write swaps). *)
