(** The write-ahead delta log: an append-only, checksummed record of
    mutations against one snapshot generation.

    Layout:
    {v
    magic "BPQWAL01"     8 bytes
    base checksum        i64   — Binfile.file_fnv of the paired snapshot
    base schema stamp    i64
    records              [len | payload | fnv64(payload)] ...
    v}

    The base checksum pairs the log with exactly one snapshot
    generation: {!open_} refuses (with a one-line [Failure]) a log whose
    header does not match the live store, which is what makes a crash
    between a compaction's snapshot rename and the log truncation safe —
    the stale log is rejected instead of double-applied.

    Recovery scans records forward and stops at the first bad length or
    checksum; a torn tail from a crash mid-append is dropped (and
    physically truncated on open-for-append), everything before it
    replays.  {!append} writes a whole batch in one [write(2)] followed
    by an [fsync], so a batch is either wholly durable or a torn tail. *)

open Bpq_graph

type op =
  | Add_node of { label : string; value : Value.t }
      (** Append a node; its id is the next unused one (base size + new
          nodes so far).  The label is stored by name and interned on
          replay, so ids agree between the serving process and a later
          compaction. *)
  | Add_edge of int * int  (** Directed edge upsert (idempotent). *)
  | Remove_edge of int * int  (** Directed edge tombstone (idempotent). *)
  | Set_value of int * Value.t  (** Attribute value upsert, last write wins. *)

type t

val open_ : base_sum:int -> base_stamp:int -> string -> t * op list * int
(** [open_ ~base_sum ~base_stamp path] opens (creating if absent) the
    log for appending and returns [(log, ops, dropped_bytes)]: the
    replayable record prefix in append order, and how many torn-tail
    bytes were discarded (0 for a clean log).
    @raise Failure (one line) on a base checksum or stamp mismatch. *)

val append : ?sync:bool -> t -> op list -> unit
(** Append one batch as consecutive records — a single write, fsync'd
    unless [~sync:false]. *)

val truncate : t -> base_sum:int -> base_stamp:int -> unit
(** Drop every record and restamp the header: the log now pairs with the
    freshly compacted snapshot generation. *)

val bytes : t -> int
(** Current valid file length, header included. *)

val records : t -> int
val path : t -> string
val close : t -> unit

(** {1 Op codecs} *)

val op_to_json : op -> Bpq_util.Jsonx.t
val op_of_json : Bpq_util.Jsonx.t -> (op, string) result
(** The line-JSON shape shared by [bpq apply] input files and the serve
    protocol's [write] op:
    [{"op":"add_node","label":L,"value":V}],
    [{"op":"add_edge","src":U,"dst":V}],
    [{"op":"remove_edge","src":U,"dst":V}],
    [{"op":"set_value","node":N,"value":V}] — [value] is null, an
    integer or a string and may be omitted (null). *)

val encode_op : op -> string
val decode_op : string -> op
(** Binary payload codec (exposed for tests).
    @raise Binfile.Corrupt on malformed payloads. *)
