open Bpq_graph
open Bpq_access
open Bpq_core
module Lru = Bpq_util.Lru

let page_size = 4096
(* Default page granularity; [open_ ?page_size] overrides it (any
   multiple of 8 keeps the aligned-i64-never-spans-a-page invariant). *)

type io_counters = {
  faults : int;
  bytes_read : int;
  hits : int;
  prefetched : int;  (* pages pulled in by sequential readahead *)
}

(* Per-constraint index metadata, decoded once at open; [keys_off] and
   [payloads_off] are absolute file offsets. *)
type cmeta = {
  constr : Constr.t;
  arity : int;
  kw : int;  (* ints per key record, excluding the (start, len) trailer *)
  n_keys : int;
  keys_off : int;
  payloads_off : int;
  payload_ints : int;
}

type t = {
  ic : in_channel;
  path : string;
  mutable closed : bool;  (* guarded by [mu]; see close *)
  mu : Mutex.t;
  pages : Bytes.t Lru.t;
  page_size : int;
  file_len : int;
  mutable faults : int;
  mutable bytes_read : int;
  mutable hits : int;
  mutable prefetched : int;
  readahead : int;  (* pages to prefetch past a sequential miss; 0 = off *)
  mutable next_seq : int;  (* page after the most recent access *)
  table : Label.table;
  n_nodes : int;
  n_edges : int;
  labels_off : int;  (* node label array *)
  voff_off : int;  (* value offset array, n+1 entries *)
  blob_off : int;  (* value blob *)
  blob_len : int;
  out_off_off : int;  (* out-CSR offset array, n+1 entries *)
  out_adj_off : int;  (* out-CSR adjacency array, m entries *)
  stamp : int;
  metas : cmeta list;
  by_constr : (Constr.t, cmeta) Hashtbl.t;
  selectivity : Gstats.selectivity option;
}

let corrupt fmt = Printf.ksprintf (fun s -> raise (Binfile.Corrupt s)) fmt

(* ---------------- paged reads (call with [mu] held) ---------------- *)

(* Call with [mu] held, before touching the channel or the page cache.
   A closed store answers with a stable [Sys_error] instead of whatever
   the runtime happens to raise on a closed channel — and never serves
   stale cached pages after close. *)
let ensure_open t =
  if t.closed then raise (Sys_error (t.path ^ ": paged store is closed"))

let load_page t pn =
  let off = pn * t.page_size in
  let len = min t.page_size (t.file_len - off) in
  if len <= 0 then corrupt "read past end of snapshot";
  let b = Bytes.create len in
  seek_in t.ic off;
  really_input t.ic b 0 len;
  t.faults <- t.faults + 1;
  t.bytes_read <- t.bytes_read + len;
  b

(* Sequential readahead: when a demand miss lands on the page right
   after the previously accessed one — an index-bucket payload stream or
   a value-blob read crossing pages — the next [readahead] pages are
   pulled into the cache in the same pass, while the channel is already
   positioned there (its buffer makes them near-free).  Prefetched pages
   count in [prefetched] and [bytes_read], not [faults]; a later access
   to one is an ordinary hit. *)
let prefetch_after t pn =
  let last = min (pn + t.readahead) ((t.file_len - 1) / t.page_size) in
  for p = pn + 1 to last do
    if not (Lru.mem t.pages p) then begin
      let off = p * t.page_size in
      let len = min t.page_size (t.file_len - off) in
      let b = Bytes.create len in
      seek_in t.ic off;
      really_input t.ic b 0 len;
      t.prefetched <- t.prefetched + 1;
      t.bytes_read <- t.bytes_read + len;
      Lru.add t.pages p b
    end
  done

let page t pn =
  ensure_open t;
  let seq = t.readahead > 0 && pn = t.next_seq in
  t.next_seq <- pn + 1;
  match Lru.find t.pages pn with
  | Some b ->
    t.hits <- t.hits + 1;
    b
  | None ->
    let b = load_page t pn in
    Lru.add t.pages pn b;
    if seq then prefetch_after t pn;
    b

(* An aligned i64 never spans a page boundary (the container 8-aligns
   every array element and the page size is a multiple of 8). *)
let read_i64 t off =
  if off < 0 || off + 8 > t.file_len then corrupt "offset out of range";
  Binfile.get_i64 (page t (off / t.page_size)) (off mod t.page_size)

(* Unaligned byte range (value blobs), assembled across pages. *)
let read_bytes t off len =
  if len < 0 || off < 0 || off + len > t.file_len then corrupt "byte range out of range";
  let out = Bytes.create len in
  let filled = ref 0 in
  while !filled < len do
    let pos = off + !filled in
    let p = page t (pos / t.page_size) in
    let in_page = pos mod t.page_size in
    let chunk = min (len - !filled) (Bytes.length p - in_page) in
    Bytes.blit p in_page out !filled chunk;
    filled := !filled + chunk
  done;
  out

let with_lock t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* ---------------- open ---------------- *)

let sect_of sects tag = List.find_opt (fun (s : Binfile.sect) -> s.tag = tag) sects

let require sects tag what =
  match sect_of sects tag with
  | Some s -> s
  | None -> corrupt "snapshot has no %s section" what

let open_ ?(page_cache_mb = 16) ?cache_pages ?(page_size = page_size) ?(readahead = 8) path =
  if page_size <= 0 || page_size mod 8 <> 0 then
    invalid_arg "Paged.open_: page_size must be a positive multiple of 8";
  if readahead < 0 then invalid_arg "Paged.open_: negative readahead";
  let ic = open_in_bin path in
  match
    let file_len = in_channel_length ic in
    let pread ~pos ~len =
      let b = Bytes.create len in
      seek_in ic pos;
      really_input ic b 0 len;
      b
    in
    let sects = Binfile.read_directory ~pread ~file_len in
    let read_sect (s : Binfile.sect) = pread ~pos:s.off ~len:s.len in
    (* Labels: small, read whole. *)
    let lsect = require sects Binfile.tag_labels "label" in
    let table = Label.create_table () in
    let lc = Binfile.Cur.of_bytes (read_sect lsect) in
    let nlabels = Binfile.Cur.i64 lc in
    if nlabels < 0 then corrupt "labels section: negative count";
    for _ = 1 to nlabels do
      ignore (Label.intern table (Binfile.Cur.str lc))
    done;
    (* Nodes: header only; the arrays stay on disk. *)
    let nsect = require sects Binfile.tag_nodes "node" in
    let n = Binfile.get_i64 (pread ~pos:nsect.off ~len:8) 0 in
    if n < 0 then corrupt "nodes section: negative node count";
    let labels_off = nsect.off + 8 in
    let voff_off = labels_off + (8 * n) in
    let blob_off = voff_off + (8 * (n + 1)) in
    if blob_off > nsect.off + nsect.len then corrupt "nodes section too short";
    let blob_len = nsect.off + nsect.len - blob_off in
    (* CSR: header only; edge probes touch out_off/out_adj. *)
    let csect = require sects Binfile.tag_csr "adjacency" in
    if csect.len < 32 then corrupt "csr section too short";
    let ch = Binfile.Cur.of_bytes (pread ~pos:csect.off ~len:32) in
    let n' = Binfile.Cur.i64 ch in
    let m = Binfile.Cur.i64 ch in
    if n' <> n then corrupt "csr section: node count disagrees with nodes section";
    if m < 0 then corrupt "csr section: negative edge count";
    let out_off_off = csect.off + 32 in
    let out_adj_off = out_off_off + (8 * (n + 1)) in
    if out_adj_off + (8 * m) > csect.off + csect.len then corrupt "csr section too short";
    (* Selectivity: O(labels²), kept in memory. *)
    let selectivity =
      sect_of sects Binfile.tag_stats
      |> Option.map (fun s ->
             Gstats.selectivity_of_bytes (read_sect s)
               ~map:(Array.init nlabels Fun.id)
               ~nlabels:(Label.count table))
    in
    (* Schema metadata: stamp, constraints and each index's on-disk
       geometry.  The meta region is tiny; key records and payloads — the
       bulk — are only ever touched through the page cache. *)
    let ssect =
      require sects Binfile.tag_schema
        "schema (the paged store serves index lookups, so a graph-only snapshot cannot back it)"
    in
    let scorrupt msg = corrupt "schema section: %s" msg in
    let mpos = ref ssect.off in
    let meta_i64 () =
      if !mpos + 8 > ssect.off + ssect.len then scorrupt "metadata ends early";
      let v = Binfile.get_i64 (pread ~pos:!mpos ~len:8) 0 in
      mpos := !mpos + 8;
      v
    in
    let stamp = meta_i64 () in
    let ncons = meta_i64 () in
    if ncons < 0 || ncons > 1_000_000 then scorrupt "implausible constraint count";
    let metas =
      List.init ncons (fun _ ->
          let arity = meta_i64 () in
          if arity < 0 || arity > 64 then scorrupt "implausible constraint arity";
          let source = List.init arity (fun _ -> meta_i64 ()) in
          let target = meta_i64 () in
          let bound = meta_i64 () in
          let kw = meta_i64 () in
          let n_keys = meta_i64 () in
          let keys_off = meta_i64 () in
          let payloads_off = meta_i64 () in
          let payload_ints = meta_i64 () in
          List.iter
            (fun l -> if l < 0 || l >= nlabels then scorrupt "label id out of range")
            (target :: source);
          let constr =
            try Constr.make ~source ~target ~bound
            with Invalid_argument _ -> scorrupt "invalid constraint"
          in
          if kw <> (if arity <= 2 then 1 else arity) then
            scorrupt "key width disagrees with arity";
          if n_keys < 0 || payload_ints < 0 then scorrupt "negative region size";
          let record_bytes = 8 * n_keys * (kw + 2) in
          if
            keys_off < 0
            || payloads_off <> keys_off + record_bytes
            || payloads_off + (8 * payload_ints) > ssect.len
          then scorrupt "index region out of bounds";
          { constr;
            arity;
            kw;
            n_keys;
            keys_off = ssect.off + keys_off;
            payloads_off = ssect.off + payloads_off;
            payload_ints })
    in
    Schema.register_stamp stamp;
    let by_constr = Hashtbl.create (max 16 ncons) in
    List.iter (fun m -> Hashtbl.replace by_constr m.constr m) metas;
    let capacity =
      match cache_pages with
      | Some p ->
        if p < 0 then invalid_arg "Paged.open_: negative cache_pages";
        p
      | None ->
        if page_cache_mb <= 0 then invalid_arg "Paged.open_: page_cache_mb must be positive";
        page_cache_mb * 1024 * 1024 / page_size
    in
    { ic;
      path;
      closed = false;
      mu = Mutex.create ();
      pages = Lru.create capacity;
      page_size;
      file_len;
      faults = 0;
      bytes_read = 0;
      hits = 0;
      prefetched = 0;
      readahead;
      next_seq = -1;
      table;
      n_nodes = n;
      n_edges = m;
      labels_off;
      voff_off;
      blob_off;
      blob_len;
      out_off_off;
      out_adj_off;
      stamp;
      metas;
      by_constr;
      selectivity }
  with
  | t -> t
  | exception e ->
    close_in_noerr ic;
    raise e

(* Idempotent: the reload path can race shutdown into a double close
   (both the retiring slot and the final cleanup call it), which must be
   a no-op, not a [Sys_error] out of [close_in].  The page cache is
   dropped too, so a use-after-close can never be satisfied from stale
   cached pages. *)
let close t =
  with_lock t (fun () ->
      if not t.closed then begin
        t.closed <- true;
        Lru.clear t.pages;
        close_in_noerr t.ic
      end)

(* ---------------- source operations ---------------- *)

let node_label t v =
  with_lock t (fun () ->
      if v < 0 || v >= t.n_nodes then corrupt "node id out of range";
      read_i64 t (t.labels_off + (8 * v)))

let node_value t v =
  with_lock t (fun () ->
      if v < 0 || v >= t.n_nodes then corrupt "node id out of range";
      let lo = read_i64 t (t.voff_off + (8 * v)) in
      let hi = read_i64 t (t.voff_off + (8 * (v + 1))) in
      if lo < 0 || hi < lo || hi > t.blob_len then corrupt "value offsets out of range";
      let bytes = read_bytes t (t.blob_off + lo) (hi - lo) in
      Graph_io.decode_value bytes ~pos:0 ~len:(hi - lo))

(* Out-rows are sorted and deduplicated at freeze, so edge membership is
   a binary search over the on-disk row. *)
let probe_edge t src dst =
  with_lock t (fun () ->
      if src < 0 || src >= t.n_nodes then false
      else begin
        let lo = ref (read_i64 t (t.out_off_off + (8 * src))) in
        let hi = ref (read_i64 t (t.out_off_off + (8 * (src + 1)))) in
        if !lo < 0 || !hi < !lo || !hi > t.n_edges then corrupt "csr offsets out of range";
        let found = ref false in
        while (not !found) && !hi - !lo > 0 do
          let mid = (!lo + !hi) / 2 in
          let w = read_i64 t (t.out_adj_off + (8 * mid)) in
          if w = dst then found := true else if w < dst then lo := mid + 1 else hi := mid
        done;
        !found
      end)

(* The native key record for a caller-supplied key, mirroring the
   in-memory normalisation ([Index.packed_of_list] / sorted spill keys).
   [None] = wrong shape for this constraint = finds nothing. *)
let record_of_list m vs =
  match (m.arity, vs) with
  | 0, [] -> Some [| 0 |]
  | 1, [ v ] -> Some [| v |]
  | 2, [ a; b ] -> Some [| Index.pack2 a b |]
  | arity, vs when List.length vs = arity && arity > 2 ->
    Some (Array.of_list (List.sort Int.compare vs))
  | _ -> None

let record_of_tuple m (vs : int array) =
  if Array.length vs <> m.arity then None
  else
    match m.arity with
    | 0 -> Some [| 0 |]
    | 1 -> Some [| vs.(0) |]
    | 2 -> Some [| Index.pack2 vs.(0) vs.(1) |]
    | _ ->
      let copy = Array.copy vs in
      Bpq_util.Int_sort.sort copy;
      Some copy

(* Binary search over the constraint's sorted fixed-width key records;
   returns the bucket materialised in stored (insertion) order, so the
   stream matches the in-memory index exactly. *)
let search_bucket t m (key : int array) =
  let stride = 8 * (m.kw + 2) in
  let compare_at rec_i =
    let base = m.keys_off + (rec_i * stride) in
    let rec cmp i =
      if i = m.kw then 0
      else
        let stored = read_i64 t (base + (8 * i)) in
        if stored < key.(i) then -1 else if stored > key.(i) then 1 else cmp (i + 1)
    in
    cmp 0
  in
  let lo = ref 0 and hi = ref m.n_keys in
  let found = ref (-1) in
  while !found < 0 && !hi - !lo > 0 do
    let mid = (!lo + !hi) / 2 in
    match compare_at mid with
    | 0 -> found := mid
    | c when c < 0 -> lo := mid + 1
    | _ -> hi := mid
  done;
  if !found < 0 then [||]
  else begin
    let base = m.keys_off + (!found * stride) in
    let start = read_i64 t (base + (8 * m.kw)) in
    let len = read_i64 t (base + (8 * (m.kw + 1))) in
    if start < 0 || len < 0 || start + len > m.payload_ints then
      corrupt "schema section: payload pointer out of range";
    Array.init len (fun i -> read_i64 t (m.payloads_off + (8 * (start + i))))
  end

let meta_of t c =
  match Hashtbl.find_opt t.by_constr c with
  | Some m -> m
  | None -> raise Not_found

let lookup t c key =
  let m = meta_of t c in
  match record_of_list m key with
  | None -> [||]
  | Some record -> with_lock t (fun () -> search_bucket t m record)

let lookup_tuple t c tuple =
  let m = meta_of t c in
  match record_of_tuple m tuple with
  | None -> [||]
  | Some record -> with_lock t (fun () -> search_bucket t m record)

let source t =
  { Exec.lookup = (fun c key -> lookup t c key);
    lookup_iter =
      (* Materialise under the lock, then stream: executor callbacks read
         node values and probe edges mid-iteration, which must not
         deadlock on the store's mutex. *)
      (fun c tuple f -> Array.iter f (lookup_tuple t c tuple));
    probe_edge = (fun s d -> probe_edge t s d);
    probe_edges = None;
    prefetch = None;
    push_fetch = None;
    push_semijoin = None;
    warm_nodes = None;
    node_label = (fun v -> node_label t v);
    node_value = (fun v -> node_value t v);
    table = t.table;
    constraints = List.map (fun m -> m.constr) t.metas;
    stamp = t.stamp;
    graph_size = t.n_nodes + t.n_edges;
    data_version = 0;
    label_gen = None }

let table t = t.table
let constraints t = List.map (fun m -> m.constr) t.metas
let stamp t = t.stamp
let n_nodes t = t.n_nodes
let n_edges t = t.n_edges
let graph_size t = t.n_nodes + t.n_edges
let selectivity t = t.selectivity
let page_size_of t = t.page_size

let io_counters t =
  with_lock t (fun () ->
      { faults = t.faults;
        bytes_read = t.bytes_read;
        hits = t.hits;
        prefetched = t.prefetched })

let reset_io t =
  with_lock t (fun () ->
      t.faults <- 0;
      t.bytes_read <- 0;
      t.hits <- 0;
      t.prefetched <- 0)

let drop_cache t = with_lock t (fun () -> Lru.clear t.pages)
