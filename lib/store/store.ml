open Bpq_graph
open Bpq_access
open Bpq_core

type backend = Mem | Paged | Sharded

type mem = {
  schema : Schema.t;
  sel : Gstats.selectivity option;
  src : Exec.source;
}

type t =
  | In_mem of mem
  | On_disk of Paged.t
  | Sharded_t of { r : Remote.t; pushdown : bool }

let of_schema ?selectivity schema =
  In_mem { schema; sel = selectivity; src = Exec.source_of_schema schema }

let of_remote ?(pushdown = true) r = Sharded_t { r; pushdown }

let open_snapshot ?(backend = Mem) ?page_cache_mb ?cache_pages ?readahead ?(verify = false)
    ?(pushdown = true) path =
  match backend with
  | Mem ->
    (* Schema.load reads and checksums the whole file already. *)
    let schema, sel = Schema.load (Label.create_table ()) path in
    In_mem { schema; sel; src = Exec.source_of_schema schema }
  | Paged ->
    if verify then Binfile.verify path;
    On_disk (Paged.open_ ?page_cache_mb ?cache_pages ?readahead path)
  | Sharded ->
    (* [path] names the shard directory (or its MANIFEST). *)
    let m = Shard.load_manifest path in
    if verify then Shard.verify_files m;
    Sharded_t { r = Remote.spawn m; pushdown }

let backend = function In_mem _ -> Mem | On_disk _ -> Paged | Sharded_t _ -> Sharded

let source = function
  | In_mem m -> m.src
  | On_disk p -> Paged.source p
  | Sharded_t { r; pushdown } -> Remote.source ~pushdown r

let table = function
  | In_mem m -> Digraph.label_table (Schema.graph m.schema)
  | On_disk p -> Paged.table p
  | Sharded_t { r; _ } -> (Remote.manifest r).Shard.table

let constraints = function
  | In_mem m -> Schema.constraints m.schema
  | On_disk p -> Paged.constraints p
  | Sharded_t { r; _ } -> (Remote.manifest r).Shard.constraints

let stamp = function
  | In_mem m -> Schema.stamp m.schema
  | On_disk p -> Paged.stamp p
  | Sharded_t { r; _ } -> (Remote.manifest r).Shard.stamp

let graph_size = function
  | In_mem m -> Digraph.size (Schema.graph m.schema)
  | On_disk p -> Paged.graph_size p
  | Sharded_t { r; _ } ->
    let m = Remote.manifest r in
    m.Shard.n_nodes + m.Shard.n_edges

let selectivity = function
  | In_mem m -> m.sel
  | On_disk p -> Paged.selectivity p
  | Sharded_t _ -> None

let schema = function In_mem m -> Some m.schema | On_disk _ | Sharded_t _ -> None
let io_counters = function On_disk p -> Some (Paged.io_counters p) | In_mem _ | Sharded_t _ -> None
let remote = function Sharded_t { r; _ } -> Some r | In_mem _ | On_disk _ -> None

let reset_io = function
  | On_disk p -> Paged.reset_io p
  | In_mem _ -> ()
  | Sharded_t { r; _ } -> Remote.reset_stats r

let drop_cache = function On_disk p -> Paged.drop_cache p | In_mem _ | Sharded_t _ -> ()

let close = function
  | In_mem _ -> ()
  | On_disk p -> Paged.close p
  | Sharded_t { r; _ } -> Remote.close r
