open Bpq_graph
open Bpq_access
open Bpq_core

type backend = Mem | Paged

type mem = {
  schema : Schema.t;
  sel : Gstats.selectivity option;
  src : Exec.source;
}

type t =
  | In_mem of mem
  | On_disk of Paged.t

let of_schema ?selectivity schema =
  In_mem { schema; sel = selectivity; src = Exec.source_of_schema schema }

let open_snapshot ?(backend = Mem) ?page_cache_mb ?cache_pages ?readahead ?(verify = false)
    path =
  match backend with
  | Mem ->
    (* Schema.load reads and checksums the whole file already. *)
    let schema, sel = Schema.load (Label.create_table ()) path in
    In_mem { schema; sel; src = Exec.source_of_schema schema }
  | Paged ->
    if verify then Binfile.verify path;
    On_disk (Paged.open_ ?page_cache_mb ?cache_pages ?readahead path)

let backend = function In_mem _ -> Mem | On_disk _ -> Paged
let source = function In_mem m -> m.src | On_disk p -> Paged.source p
let table = function In_mem m -> Digraph.label_table (Schema.graph m.schema) | On_disk p -> Paged.table p
let constraints = function In_mem m -> Schema.constraints m.schema | On_disk p -> Paged.constraints p
let stamp = function In_mem m -> Schema.stamp m.schema | On_disk p -> Paged.stamp p

let graph_size = function
  | In_mem m -> Digraph.size (Schema.graph m.schema)
  | On_disk p -> Paged.graph_size p

let selectivity = function In_mem m -> m.sel | On_disk p -> Paged.selectivity p
let schema = function In_mem m -> Some m.schema | On_disk _ -> None
let io_counters = function In_mem _ -> None | On_disk p -> Some (Paged.io_counters p)
let reset_io = function In_mem _ -> () | On_disk p -> Paged.reset_io p
let drop_cache = function In_mem _ -> () | On_disk p -> Paged.drop_cache p
let close = function In_mem _ -> () | On_disk p -> Paged.close p
