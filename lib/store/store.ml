open Bpq_graph
open Bpq_access
open Bpq_core

type backend = Mem | Paged | Sharded

type mem = {
  schema : Schema.t;
  sel : Gstats.selectivity option;
  src : Exec.source;
}

type base =
  | In_mem of mem
  | On_disk of Paged.t
  | Sharded_t of { r : Remote.t; pushdown : bool }

(* The mutable write half of a store: a delta log on disk, the replayed
   overlay in memory, and the ops since the last compaction (kept so a
   compaction can fold them without re-reading the log).  [ov] is an
   immutable value — readers capture it once (through [source]) and keep
   a frozen view; all mutation happens under [wmu]. *)
type write_state = {
  wal : Wal.t;
  counters : Overlay.counters;
  mutable ov : Overlay.t;
  mutable ops_rev : Wal.op list;
  mutable retired : bool;  (* in-place compaction happened; reopen to write *)
  wmu : Mutex.t;
}

type t = {
  b : base;
  path : string option;  (* the snapshot file / shard dir behind [b] *)
  mutable ws : write_state option;
}

let of_schema ?selectivity schema =
  { b = In_mem { schema; sel = selectivity; src = Exec.source_of_schema schema };
    path = None;
    ws = None }

let of_remote ?path ?(pushdown = true) r =
  { b = Sharded_t { r; pushdown }; path; ws = None }

let open_snapshot ?(backend = Mem) ?page_cache_mb ?cache_pages ?readahead ?(verify = false)
    ?(pushdown = true) path =
  let b =
    match backend with
    | Mem ->
      (* Schema.load reads and checksums the whole file already. *)
      let schema, sel = Schema.load (Label.create_table ()) path in
      In_mem { schema; sel; src = Exec.source_of_schema schema }
    | Paged ->
      if verify then Binfile.verify path;
      On_disk (Paged.open_ ?page_cache_mb ?cache_pages ?readahead path)
    | Sharded ->
      (* [path] names the shard directory (or its MANIFEST). *)
      let m = Shard.load_manifest path in
      if verify then Shard.verify_files m;
      Sharded_t { r = Remote.spawn m; pushdown }
  in
  { b; path = Some path; ws = None }

let backend t = match t.b with In_mem _ -> Mem | On_disk _ -> Paged | Sharded_t _ -> Sharded

let base_source t =
  match t.b with
  | In_mem m -> m.src
  | On_disk p -> Paged.source p
  | Sharded_t { r; pushdown } -> Remote.source ~pushdown r

let source t =
  match t.ws with
  | None -> base_source t
  | Some ws -> Overlay.wrap ~counters:ws.counters ws.ov (base_source t)

let table t =
  match t.b with
  | In_mem m -> Digraph.label_table (Schema.graph m.schema)
  | On_disk p -> Paged.table p
  | Sharded_t { r; _ } -> (Remote.manifest r).Shard.table

let constraints t =
  match t.b with
  | In_mem m -> Schema.constraints m.schema
  | On_disk p -> Paged.constraints p
  | Sharded_t { r; _ } -> (Remote.manifest r).Shard.constraints

let stamp t =
  match t.b with
  | In_mem m -> Schema.stamp m.schema
  | On_disk p -> Paged.stamp p
  | Sharded_t { r; _ } -> (Remote.manifest r).Shard.stamp

let base_nodes t =
  match t.b with
  | In_mem m -> Digraph.n_nodes (Schema.graph m.schema)
  | On_disk p -> Paged.n_nodes p
  | Sharded_t { r; _ } -> (Remote.manifest r).Shard.n_nodes

let base_graph_size t =
  match t.b with
  | In_mem m -> Digraph.size (Schema.graph m.schema)
  | On_disk p -> Paged.graph_size p
  | Sharded_t { r; _ } ->
    let m = Remote.manifest r in
    m.Shard.n_nodes + m.Shard.n_edges

let graph_size t =
  match t.ws with
  | None -> base_graph_size t
  | Some ws -> base_graph_size t + Overlay.net_nodes ws.ov + Overlay.net_edges ws.ov

let selectivity t =
  match t.b with
  | In_mem m -> m.sel
  | On_disk p -> Paged.selectivity p
  | Sharded_t _ -> None

let schema t = match t.b with In_mem m -> Some m.schema | On_disk _ | Sharded_t _ -> None

let io_counters t =
  match t.b with On_disk p -> Some (Paged.io_counters p) | In_mem _ | Sharded_t _ -> None

let remote t = match t.b with Sharded_t { r; _ } -> Some r | In_mem _ | On_disk _ -> None

let reset_io t =
  match t.b with
  | On_disk p -> Paged.reset_io p
  | In_mem _ -> ()
  | Sharded_t { r; _ } -> Remote.reset_stats r

let drop_cache t =
  match t.b with On_disk p -> Paged.drop_cache p | In_mem _ | Sharded_t _ -> ()

let close t =
  (match t.ws with
  | Some ws ->
    Wal.close ws.wal;
    t.ws <- None
  | None -> ());
  match t.b with
  | In_mem _ -> ()
  | On_disk p -> Paged.close p
  | Sharded_t { r; _ } -> Remote.close r

(* ------------------------------------------------------------------ *)
(* The write path                                                      *)
(* ------------------------------------------------------------------ *)

(* Content identity of the generation behind this store: the snapshot
   file's FNV, or the shard manifest's (any shard edit rewrites the
   manifest checksums, so the manifest stands for the whole directory). *)
let base_checksum t =
  match t.path with
  | None -> failwith "delta logs attach to snapshot-backed stores, not in-memory ones"
  | Some path ->
    let file =
      match t.b with
      | Sharded_t _ ->
        if Sys.is_directory path then Filename.concat path "MANIFEST" else path
      | In_mem _ | On_disk _ -> path
    in
    Binfile.file_fnv file

let attach_wal ?carry t wal_path =
  if t.ws <> None then failwith "store already has a delta log attached";
  let base_sum = base_checksum t in
  let wal, ops, dropped = Wal.open_ ~base_sum ~base_stamp:(stamp t) wal_path in
  let base = base_source t in
  let ov0 =
    Overlay.empty ?carry ~base_n:(base_nodes t) ~base_size:(base_graph_size t) ()
  in
  match Overlay.apply ~base ov0 ops with
  | Error e ->
    Wal.close wal;
    failwith (Printf.sprintf "delta log %s does not replay: %s" wal_path e)
  | Ok ov ->
    t.ws <-
      Some
        { wal;
          counters = Overlay.fresh_counters ();
          ov;
          ops_rev = List.rev ops;
          retired = false;
          wmu = Mutex.create () };
    dropped

let wal t = Option.map (fun ws -> ws.wal) t.ws
let overlay t = Option.map (fun ws -> ws.ov) t.ws
let overlay_counters t = Option.map (fun ws -> Overlay.snapshot ws.counters) t.ws

let with_write_lock ws f =
  Mutex.lock ws.wmu;
  Fun.protect ~finally:(fun () -> Mutex.unlock ws.wmu) f

let apply_ops t ops =
  match t.ws with
  | None -> Error "store has no delta log attached (open it with --wal)"
  | Some ws ->
    with_write_lock ws (fun () ->
        if ws.retired then
          Error "store was compacted in place; reopen it to keep writing"
        else
        match Overlay.apply ~base:(base_source t) ws.ov ops with
        | Error _ as e -> e
        | Ok ov ->
          (* Durability first: if the append raises (disk full), the
             in-memory state is unchanged and the error propagates. *)
          Wal.append ws.wal ops;
          ws.ov <- ov;
          ws.ops_rev <- List.rev_append ops ws.ops_rev;
          Ok (List.length ops))

(* Fold a batch of log records into an in-memory schema: net edge flips
   become one [Digraph.delta] (index repair included, stamp preserved),
   value upserts patch the value blob afterwards ([Schema.patch_values],
   also stamp-preserving) — so the folded schema's stamp equals the
   base's and warm plan-tier entries survive the generation roll. *)
let fold_ops schema ops =
  let g = Schema.graph schema in
  let n = Digraph.n_nodes g in
  let tbl = Digraph.label_table g in
  let edges = Hashtbl.create 64 in
  let added_nodes = ref [] in
  let vals = Hashtbl.create 16 in
  List.iter
    (function
      | Wal.Add_node { label; value } ->
        added_nodes := (Label.intern tbl label, value) :: !added_nodes
      | Wal.Add_edge (u, v) -> Hashtbl.replace edges (u, v) true
      | Wal.Remove_edge (u, v) -> Hashtbl.replace edges (u, v) false
      | Wal.Set_value (v, value) -> Hashtbl.replace vals v value)
    ops;
  let added_edges = ref [] and removed_edges = ref [] in
  Hashtbl.iter
    (fun (u, v) present ->
      let in_base = u < n && v < n && Digraph.has_edge g u v in
      if present && not in_base then added_edges := (u, v) :: !added_edges
      else if (not present) && in_base then removed_edges := (u, v) :: !removed_edges)
    edges;
  let schema =
    Schema.apply_delta schema
      { Digraph.added_nodes = List.rev !added_nodes;
        added_edges = !added_edges;
        removed_edges = !removed_edges }
  in
  Schema.patch_values schema (Hashtbl.fold (fun v value acc -> (v, value) :: acc) vals [])

let compact ?out t =
  match t.b with
  | Sharded_t _ ->
    failwith
      "sharded stores cannot be compacted through the coordinator; compact the \
       unsharded snapshot, then re-shard"
  | In_mem _ | On_disk _ -> (
    match (t.path, t.ws) with
    | None, _ -> failwith "in-memory stores have no snapshot generation to compact into"
    | _, None -> failwith "store has no delta log attached (open it with --wal)"
    | Some path, Some ws ->
      let out = Option.value ~default:path out in
      with_write_lock ws (fun () ->
          if ws.retired then
            failwith "store was compacted in place already; reopen it first";
          let ops = List.rev ws.ops_rev in
          let schema =
            match t.b with
            | In_mem m -> m.schema
            | On_disk _ -> fst (Schema.load (Label.create_table ()) path)
            | Sharded_t _ -> assert false
          in
          let folded = fold_ops schema ops in
          Schema.save ~selectivity:(Gstats.selectivity (Schema.graph folded)) folded out;
          if out = path then begin
            (* In-place generation roll: the folded-in records leave the
               log, and its header now names the new snapshot.  This
               store keeps serving the old generation consistently (its
               overlay value is untouched) but refuses further writes;
               callers that want the new generation reopen the snapshot
               and [attach_wal ~carry:(overlay t)]. *)
            Wal.truncate ws.wal ~base_sum:(Binfile.file_fnv out)
              ~base_stamp:(Schema.stamp folded);
            ws.retired <- true
          end);
      out)
