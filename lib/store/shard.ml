open Bpq_graph
open Bpq_access

let format_version = 1
let partition_version = 1

(* Private section tags (disjoint from the graph/schema tags 1-5). *)
let tag_shard_meta = 9
let tag_manifest = 10

type shard_file = {
  file : string;
  checksum : int;
  n_edges : int;
  n_keys : int;
  payload_ints : int;
}

type manifest = {
  dir : string;
  shards : int;
  stamp : int;
  n_nodes : int;
  n_edges : int;
  table : Label.table;
  constraints : Constr.t list;
  files : shard_file array;
}

type shard_meta = { shard : int; shards : int; n_edges_global : int }

let corrupt fmt = Printf.ksprintf (fun s -> raise (Binfile.Corrupt s)) fmt

(* ---------------- placement ---------------- *)

let owner_of_node ~shards v = v mod shards

(* Deterministic avalanche mix (splitmix-style), written out rather than
   borrowed from [Hashtbl.hash] so the placement function is pinned by
   [partition_version], not by the runtime's hash of the day. *)
let mix h x =
  let h = (h lxor x) * 0x9E3779B97F4A7C1 in
  let h = h lxor (h lsr 29) in
  let h = h * 0xBF58476D1CE4E5 in
  h lxor (h lsr 32)

let owner_of_key ~shards ~cid record =
  let h = Array.fold_left mix (mix 0x51ED270B cid) record in
  (h land max_int) mod shards

(* ---------------- file-level checksums ---------------- *)

(* Same FNV-1a-in-62-bits as the container's trailing checksum, but over
   the whole file including that trailer — a shard file altered in any
   byte (even its own checksum) mismatches the manifest. *)
let fnv_prime = 0x100000001B3
let fnv_basis = 0x3BF29CE484222325

let fnv_bytes h buf n =
  let h = ref h in
  for i = 0 to n - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get buf i)) * fnv_prime land max_int
  done;
  !h

let checksum_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let buf = Bytes.create 65536 in
      let rec loop h =
        match input ic buf 0 (Bytes.length buf) with 0 -> h | n -> loop (fnv_bytes h buf n)
      in
      loop fnv_basis)

let shard_file_name s = Printf.sprintf "shard-%04d.snap" s

let manifest_path path =
  if Filename.basename path = "MANIFEST" then path else Filename.concat path "MANIFEST"

(* ---------------- writing ---------------- *)

(* The schema section of a shard file: identical layout to
   [Schema.save]'s ([Paged.open_] decodes both without knowing which it
   got), with the full constraint list but only this shard's buckets.
   [entries] carries (constraint, key width, owned buckets). *)
let add_schema_section w ~stamp entries =
  Binfile.section w ~tag:Binfile.tag_schema (fun b ->
      let meta_bytes =
        List.fold_left (fun acc (c, _, _) -> acc + (8 * (Constr.arity c + 8))) 16 entries
      in
      let off = ref meta_bytes in
      let located =
        List.map
          (fun (c, kw, buckets) ->
            let n_keys = Array.length buckets in
            let payload_ints =
              Array.fold_left (fun acc (_, p) -> acc + Array.length p) 0 buckets
            in
            let keys_off = !off in
            let payloads_off = keys_off + (8 * n_keys * (kw + 2)) in
            off := payloads_off + (8 * payload_ints);
            (c, kw, buckets, n_keys, payload_ints, keys_off, payloads_off))
          entries
      in
      Binfile.add_i64 b stamp;
      Binfile.add_i64 b (List.length located);
      List.iter
        (fun ((c : Constr.t), kw, _, n_keys, payload_ints, keys_off, payloads_off) ->
          Binfile.add_i64 b (Constr.arity c);
          List.iter (Binfile.add_i64 b) c.source;
          Binfile.add_i64 b c.target;
          Binfile.add_i64 b c.bound;
          Binfile.add_i64 b kw;
          Binfile.add_i64 b n_keys;
          Binfile.add_i64 b keys_off;
          Binfile.add_i64 b payloads_off;
          Binfile.add_i64 b payload_ints)
        located;
      List.iter
        (fun (_, _, buckets, _, _, _, _) ->
          let cursor = ref 0 in
          Array.iter
            (fun (key, payload) ->
              Binfile.add_array b key;
              Binfile.add_i64 b !cursor;
              Binfile.add_i64 b (Array.length payload);
              cursor := !cursor + Array.length payload)
            buckets;
          Array.iter (fun (_, payload) -> Binfile.add_array b payload) buckets)
        located)

let add_labels_section w tbl =
  Binfile.section w ~tag:Binfile.tag_labels (fun b ->
      Binfile.add_i64 b (Label.count tbl);
      List.iter (fun l -> Binfile.add_string b (Label.name tbl l)) (Label.all tbl))

let ensure_dir dir =
  if Sys.file_exists dir then begin
    if not (Sys.is_directory dir) then
      failwith (Printf.sprintf "%s exists and is not a directory" dir)
  end
  else Unix.mkdir dir 0o777

let write_shard ~dir ~shards ~stamp ~s tbl (r : Digraph.Repr.t) n_edges_global exports =
  let n = Array.length r.labels in
  let w = Binfile.writer () in
  add_labels_section w tbl;
  (* Nodes: the label array in full (8n bytes — cheap next to adjacency
     and values), attribute values for the owned nodes only.  Unowned
     entries are zero-length; a worker is only ever asked about the
     nodes it owns. *)
  Binfile.section w ~tag:Binfile.tag_nodes (fun b ->
      Binfile.add_i64 b n;
      Binfile.add_array b r.labels;
      let blob = Buffer.create 1024 in
      let voff = Array.make (n + 1) 0 in
      Array.iteri
        (fun v value ->
          voff.(v) <- Buffer.length blob;
          if owner_of_node ~shards v = s then Graph_io.add_value_blob blob value;
          voff.(v + 1) <- Buffer.length blob)
        r.values;
      Binfile.add_array b voff;
      Buffer.add_buffer b blob);
  (* Adjacency: out-rows of the owned source nodes; everyone else's row
     is empty.  Only the header and out_off/out_adj are written — the
     paged reader never touches the reverse/merged/by-label arrays, and
     a worker's probes only ever hit owned rows. *)
  let out_off = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    let len = if owner_of_node ~shards v = s then r.out_off.(v + 1) - r.out_off.(v) else 0 in
    out_off.(v + 1) <- out_off.(v) + len
  done;
  let m_s = out_off.(n) in
  let out_adj = Array.make m_s 0 in
  for v = 0 to n - 1 do
    if owner_of_node ~shards v = s then
      Array.blit r.out_adj r.out_off.(v) out_adj out_off.(v) (r.out_off.(v + 1) - r.out_off.(v))
  done;
  Binfile.section w ~tag:Binfile.tag_csr (fun b ->
      Binfile.add_i64 b n;
      Binfile.add_i64 b m_s;
      Binfile.add_i64 b 0;
      Binfile.add_i64 b 0;
      Binfile.add_array b out_off;
      Binfile.add_array b out_adj);
  (* Indexes: same section layout, owned buckets only.  Filtering keeps
     the lexicographic record order, so the on-disk binary search is
     untouched. *)
  let entries =
    List.map
      (fun (cid, c, kw, buckets) ->
        let owned =
          Array.of_list
            (List.filter
               (fun (key, _) -> owner_of_key ~shards ~cid key = s)
               (Array.to_list buckets))
        in
        (c, kw, owned))
      exports
  in
  add_schema_section w ~stamp entries;
  Binfile.section w ~tag:tag_shard_meta (fun b ->
      Binfile.add_i64 b format_version;
      Binfile.add_i64 b partition_version;
      Binfile.add_i64 b s;
      Binfile.add_i64 b shards;
      Binfile.add_i64 b n_edges_global);
  let path = Filename.concat dir (shard_file_name s) in
  Binfile.write w path;
  let n_keys = List.fold_left (fun acc (_, _, b) -> acc + Array.length b) 0 entries in
  let payload_ints =
    List.fold_left
      (fun acc (_, _, b) -> Array.fold_left (fun acc (_, p) -> acc + Array.length p) acc b)
      0 entries
  in
  { file = shard_file_name s;
    checksum = checksum_file path;
    n_edges = m_s;
    n_keys;
    payload_ints }

let partition ~shards ~snapshot ~dir =
  if shards <= 0 then invalid_arg "Shard.partition: shards must be positive";
  let schema, _ = Schema.load (Label.create_table ()) snapshot in
  let g = Schema.graph schema in
  let tbl = Digraph.label_table g in
  let r = Digraph.Repr.of_graph g in
  let cons = Schema.constraints schema in
  let stamp = Schema.stamp schema in
  let exports =
    List.mapi
      (fun cid c ->
        let idx = Schema.index_of schema c in
        (cid, c, Index.key_width idx, Index.export_buckets idx))
      cons
  in
  ensure_dir dir;
  let files =
    Array.init shards (fun s ->
        write_shard ~dir ~shards ~stamp ~s tbl r r.n_edges exports)
  in
  let w = Binfile.writer () in
  add_labels_section w tbl;
  Binfile.section w ~tag:tag_manifest (fun b ->
      Binfile.add_i64 b format_version;
      Binfile.add_i64 b partition_version;
      Binfile.add_i64 b shards;
      Binfile.add_i64 b stamp;
      Binfile.add_i64 b (Array.length r.labels);
      Binfile.add_i64 b r.n_edges;
      Binfile.add_i64 b (List.length cons);
      List.iter
        (fun (c : Constr.t) ->
          Binfile.add_i64 b (Constr.arity c);
          List.iter (Binfile.add_i64 b) c.source;
          Binfile.add_i64 b c.target;
          Binfile.add_i64 b c.bound)
        cons;
      Array.iter
        (fun f ->
          Binfile.add_string b f.file;
          Binfile.add_i64 b f.checksum;
          Binfile.add_i64 b f.n_edges;
          Binfile.add_i64 b f.n_keys;
          Binfile.add_i64 b f.payload_ints)
        files);
  Binfile.write w (manifest_path dir);
  { dir;
    shards;
    stamp;
    n_nodes = Array.length r.labels;
    n_edges = r.n_edges;
    table = tbl;
    constraints = cons;
    files }

(* ---------------- reading ---------------- *)

let load_manifest path =
  let path = manifest_path path in
  let r = Binfile.read_file path in
  let table = Label.create_table () in
  let lc = Binfile.Cur.of_bytes (Binfile.require_section r Binfile.tag_labels) in
  let nlabels = Binfile.Cur.i64 lc in
  if nlabels < 0 then corrupt "manifest: negative label count";
  for _ = 1 to nlabels do
    ignore (Label.intern table (Binfile.Cur.str lc))
  done;
  let mc =
    match Binfile.section_bytes r tag_manifest with
    | Some b -> Binfile.Cur.of_bytes b
    | None -> corrupt "manifest: missing manifest section"
  in
  let fv = Binfile.Cur.i64 mc in
  if fv <> format_version then corrupt "manifest: unsupported format version %d" fv;
  let pv = Binfile.Cur.i64 mc in
  if pv <> partition_version then
    corrupt "manifest: partition function version %d (this build speaks %d)" pv
      partition_version;
  let shards = Binfile.Cur.i64 mc in
  if shards <= 0 || shards > 65536 then corrupt "manifest: implausible shard count";
  let stamp = Binfile.Cur.i64 mc in
  let n_nodes = Binfile.Cur.i64 mc in
  let n_edges = Binfile.Cur.i64 mc in
  if n_nodes < 0 || n_edges < 0 then corrupt "manifest: negative graph size";
  let ncons = Binfile.Cur.i64 mc in
  if ncons < 0 || ncons > 1_000_000 then corrupt "manifest: implausible constraint count";
  let constraints =
    List.init ncons (fun _ ->
        let arity = Binfile.Cur.i64 mc in
        if arity < 0 || arity > 64 then corrupt "manifest: implausible constraint arity";
        let source = List.init arity (fun _ -> Binfile.Cur.i64 mc) in
        let target = Binfile.Cur.i64 mc in
        let bound = Binfile.Cur.i64 mc in
        List.iter
          (fun l -> if l < 0 || l >= nlabels then corrupt "manifest: label id out of range")
          (target :: source);
        try Constr.make ~source ~target ~bound
        with Invalid_argument _ -> corrupt "manifest: invalid constraint")
  in
  let files =
    Array.init shards (fun _ ->
        let file = Binfile.Cur.str mc in
        let checksum = Binfile.Cur.i64 mc in
        let n_edges = Binfile.Cur.i64 mc in
        let n_keys = Binfile.Cur.i64 mc in
        let payload_ints = Binfile.Cur.i64 mc in
        if n_edges < 0 || n_keys < 0 || payload_ints < 0 then
          corrupt "manifest: negative shard sizes";
        if Filename.basename file <> file then corrupt "manifest: shard file name has a path";
        { file; checksum; n_edges; n_keys; payload_ints })
  in
  let owned = Array.fold_left (fun acc (f : shard_file) -> acc + f.n_edges) 0 files in
  if owned <> n_edges then corrupt "manifest: shard edge counts do not sum to the total";
  Schema.register_stamp stamp;
  { dir = Filename.dirname path; shards; stamp; n_nodes; n_edges; table; constraints; files }

let verify_files m =
  Array.iter
    (fun f ->
      let path = Filename.concat m.dir f.file in
      let sum = try checksum_file path with Sys_error e -> corrupt "%s: %s" f.file e in
      if sum <> f.checksum then
        corrupt "%s: checksum mismatch (stored %016x, computed %016x) — shard is damaged"
          f.file f.checksum sum)
    m.files

let read_shard_meta path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let file_len = in_channel_length ic in
      let pread ~pos ~len =
        let b = Bytes.create len in
        seek_in ic pos;
        really_input ic b 0 len;
        b
      in
      let sects = Binfile.read_directory ~pread ~file_len in
      match List.find_opt (fun (s : Binfile.sect) -> s.tag = tag_shard_meta) sects with
      | None -> corrupt "%s: not a shard file (no shard-meta section)" path
      | Some s ->
        let c = Binfile.Cur.of_bytes (pread ~pos:s.off ~len:s.len) in
        let fv = Binfile.Cur.i64 c in
        if fv <> format_version then corrupt "%s: unsupported shard format version %d" path fv;
        let pv = Binfile.Cur.i64 c in
        if pv <> partition_version then
          corrupt "%s: partition function version %d (this build speaks %d)" path pv
            partition_version;
        let shard = Binfile.Cur.i64 c in
        let shards = Binfile.Cur.i64 c in
        let n_edges_global = Binfile.Cur.i64 c in
        if shard < 0 || shards <= 0 || shard >= shards || n_edges_global < 0 then
          corrupt "%s: malformed shard-meta section" path;
        { shard; shards; n_edges_global })
