(* The write-ahead delta log: the durable half of the write path.

   One log pairs with one snapshot generation.  The header records the
   base snapshot's whole-file FNV (and its schema stamp), so a log can
   never be replayed against the wrong generation — in particular, a
   crash that lands between a compaction's snapshot rename and the log
   truncation leaves a log whose base checksum no longer matches the
   (already folded-in) snapshot; replaying it would double-apply the
   non-idempotent [Add_node] records, so the mismatch is a hard typed
   error instead.

   Records are individually checksummed ([len | payload | fnv64]), and
   recovery scans from the header forward, stopping at the first record
   whose length or checksum does not hold: a torn tail from a crash
   mid-append is silently dropped (and physically truncated away on the
   next open-for-append), while everything before it replays intact.
   Appends buffer a whole batch into one [write] and optionally fsync,
   so a batch is either wholly durable or a torn tail. *)

open Bpq_graph
module Json = Bpq_util.Jsonx

type op =
  | Add_node of { label : string; value : Value.t }
  | Add_edge of int * int
  | Remove_edge of int * int
  | Set_value of int * Value.t

let magic = "BPQWAL01"
let header_len = String.length magic + 16  (* magic, base_sum, base_stamp *)

let failf fmt = Printf.ksprintf failwith fmt

(* ---------------- op codec (binary payload) ---------------- *)

let add_value b = function
  | Value.Null -> Binfile.add_i64 b 0
  | Value.Int v ->
    Binfile.add_i64 b 1;
    Binfile.add_i64 b v
  | Value.Str s ->
    Binfile.add_i64 b 2;
    Binfile.add_string b s

let cur_value c =
  match Binfile.Cur.i64 c with
  | 0 -> Value.Null
  | 1 -> Value.Int (Binfile.Cur.i64 c)
  | 2 -> Value.Str (Binfile.Cur.str c)
  | k -> raise (Binfile.Corrupt (Printf.sprintf "unknown value tag %d" k))

let encode_op op =
  let b = Buffer.create 32 in
  (match op with
  | Add_node { label; value } ->
    Binfile.add_i64 b 0;
    Binfile.add_string b label;
    add_value b value
  | Add_edge (u, v) ->
    Binfile.add_i64 b 1;
    Binfile.add_i64 b u;
    Binfile.add_i64 b v
  | Remove_edge (u, v) ->
    Binfile.add_i64 b 2;
    Binfile.add_i64 b u;
    Binfile.add_i64 b v
  | Set_value (v, value) ->
    Binfile.add_i64 b 3;
    Binfile.add_i64 b v;
    add_value b value);
  Buffer.contents b

let decode_op payload =
  let c = Binfile.Cur.of_bytes (Bytes.of_string payload) in
  match Binfile.Cur.i64 c with
  | 0 ->
    let label = Binfile.Cur.str c in
    Add_node { label; value = cur_value c }
  | 1 ->
    let u = Binfile.Cur.i64 c in
    Add_edge (u, Binfile.Cur.i64 c)
  | 2 ->
    let u = Binfile.Cur.i64 c in
    Remove_edge (u, Binfile.Cur.i64 c)
  | 3 ->
    let v = Binfile.Cur.i64 c in
    Set_value (v, cur_value c)
  | k -> raise (Binfile.Corrupt (Printf.sprintf "unknown wal op tag %d" k))

(* ---------------- op codec (line JSON) ---------------- *)

let value_to_json = function
  | Value.Null -> Json.Null
  | Value.Int v -> Json.Int v
  | Value.Str s -> Json.Str s

let value_of_json = function
  | Json.Null -> Ok Value.Null
  | Json.Int v -> Ok (Value.Int v)
  | Json.Str s -> Ok (Value.Str s)
  | _ -> Error "value must be null, an integer or a string"

let op_to_json = function
  | Add_node { label; value } ->
    Json.Obj
      [ ("op", Json.Str "add_node");
        ("label", Json.Str label);
        ("value", value_to_json value) ]
  | Add_edge (u, v) ->
    Json.Obj [ ("op", Json.Str "add_edge"); ("src", Json.Int u); ("dst", Json.Int v) ]
  | Remove_edge (u, v) ->
    Json.Obj
      [ ("op", Json.Str "remove_edge"); ("src", Json.Int u); ("dst", Json.Int v) ]
  | Set_value (v, value) ->
    Json.Obj
      [ ("op", Json.Str "set_value"); ("node", Json.Int v);
        ("value", value_to_json value) ]

let op_of_json j =
  let ( let* ) = Result.bind in
  let int_field k =
    match Option.bind (Json.member k j) Json.to_int_opt with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or non-integer field %S" k)
  in
  let value_field () =
    match Json.member "value" j with
    | None -> Ok Value.Null
    | Some v -> value_of_json v
  in
  match Option.bind (Json.member "op" j) Json.to_string_opt with
  | Some "add_node" -> (
    match Option.bind (Json.member "label" j) Json.to_string_opt with
    | None -> Error "add_node needs a string \"label\""
    | Some label ->
      let* value = value_field () in
      Ok (Add_node { label; value }))
  | Some "add_edge" ->
    let* u = int_field "src" in
    let* v = int_field "dst" in
    Ok (Add_edge (u, v))
  | Some "remove_edge" ->
    let* u = int_field "src" in
    let* v = int_field "dst" in
    Ok (Remove_edge (u, v))
  | Some "set_value" ->
    let* v = int_field "node" in
    let* value = value_field () in
    Ok (Set_value (v, value))
  | Some other -> Error (Printf.sprintf "unknown op %S" other)
  | None -> Error "op record needs a string \"op\" field"

(* ---------------- the log file ---------------- *)

type t = {
  path : string;
  mutable fd : Unix.file_descr;
  mutable bytes : int;  (* valid length, header included *)
  mutable records : int;
}

let header base_sum base_stamp =
  let b = Buffer.create header_len in
  Buffer.add_string b magic;
  Binfile.add_i64 b base_sum;
  Binfile.add_i64 b base_stamp;
  Buffer.contents b

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      really_input_string ic n)

(* Scan the record region of raw log bytes, returning the replayable ops
   and the length of the valid prefix.  Anything past the first bad
   length/checksum/decode is a torn tail. *)
let scan raw =
  let size = String.length raw in
  let get_i64 pos = Binfile.get_i64 (Bytes.unsafe_of_string raw) pos in
  let ops = ref [] in
  let pos = ref header_len in
  let stop = ref false in
  while (not !stop) && !pos + 16 <= size do
    let len = get_i64 !pos in
    if len <= 0 || len > size - !pos - 16 then stop := true
    else begin
      let payload = String.sub raw (!pos + 8) len in
      if get_i64 (!pos + 8 + len) <> Binfile.fnv64 payload then stop := true
      else
        match decode_op payload with
        | op ->
          ops := op :: !ops;
          pos := !pos + 16 + len
        | exception Binfile.Corrupt _ -> stop := true
    end
  done;
  (List.rev !ops, !pos)

let open_ ~base_sum ~base_stamp path =
  let expect = header base_sum base_stamp in
  let raw = if Sys.file_exists path then read_file path else "" in
  let fresh = String.length raw < header_len in
  if not fresh then begin
    if String.sub raw 0 8 <> magic then
      failf "%s is not a bpq delta log (bad magic)" path;
    let got_sum = Binfile.get_i64 (Bytes.unsafe_of_string raw) 8 in
    let got_stamp = Binfile.get_i64 (Bytes.unsafe_of_string raw) 16 in
    if got_sum <> base_sum then
      failf
        "delta log %s was written against a different snapshot generation \
         (base checksum %x, store has %x) — compact or discard it"
        path got_sum base_sum;
    if got_stamp <> base_stamp then
      failf
        "delta log %s was written against a different access schema (stamp %d, \
         store has %d)"
        path got_stamp base_stamp
  end;
  let ops, valid = if fresh then ([], header_len) else scan raw in
  let dropped = if fresh then 0 else String.length raw - valid in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  (try
     if fresh then begin
       Unix.ftruncate fd 0;
       write_all fd expect;
       Unix.fsync fd
     end
     else if dropped > 0 then begin
       (* Physically drop the torn tail so later appends extend the valid
          prefix instead of burying garbage mid-file. *)
       Unix.ftruncate fd valid;
       Unix.fsync fd
     end;
     ignore (Unix.lseek fd valid Unix.SEEK_SET)
   with e ->
     Unix.close fd;
     raise e);
  ({ path; fd; bytes = valid; records = List.length ops }, ops, dropped)

let append ?(sync = true) t ops =
  match ops with
  | [] -> ()
  | _ ->
    let b = Buffer.create 256 in
    List.iter
      (fun op ->
        let payload = encode_op op in
        Binfile.add_i64 b (String.length payload);
        Buffer.add_string b payload;
        Binfile.add_i64 b (Binfile.fnv64 payload))
      ops;
    let s = Buffer.contents b in
    write_all t.fd s;
    if sync then Unix.fsync t.fd;
    t.bytes <- t.bytes + String.length s;
    t.records <- t.records + List.length ops

(* Start a new generation in place: the folded-in records are gone and
   the header now names the freshly compacted snapshot. *)
let truncate t ~base_sum ~base_stamp =
  Unix.ftruncate t.fd 0;
  ignore (Unix.lseek t.fd 0 Unix.SEEK_SET);
  write_all t.fd (header base_sum base_stamp);
  Unix.fsync t.fd;
  t.bytes <- header_len;
  t.records <- 0

let bytes t = t.bytes
let records t = t.records
let path t = t.path

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
