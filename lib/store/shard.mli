(** Hash-partitioning a frozen snapshot into per-shard worker files.

    [partition] splits one {!Bpq_access.Schema.save} snapshot into [N]
    shard snapshots plus a manifest, all written atomically
    ({!Bpq_util.Atomic_file} via {!Bpq_graph.Binfile.write}).  Ownership
    is total and disjoint by construction:

    - every {e index entry} ((constraint, key) bucket) lives on exactly
      the shard {!owner_of_key} names — a mix of the constraint's
      position and the native key record, so both orderings of a 2-node
      key land together;
    - every {e edge} (an out-CSR row entry) lives on the shard
      {!owner_of_node} names for its source node, which is also where
      the node's label and value attributes live.

    Each shard file is a valid snapshot container that {!Paged.open_}
    accepts unchanged: full label table, full node-label array, the
    owned nodes' values, the owned out-rows, and the schema section with
    the full constraint list but only the owned buckets (record order is
    preserved by filtering, so the on-disk binary search still works).
    Shard files carry only the sections a worker serves — they are not
    loadable by the in-memory backend, which validates the full CSR.

    The manifest ([MANIFEST] in the output directory) records the
    partition-function version, shard count, schema stamp, global sizes,
    the full constraint list and a per-shard file name + FNV-1a
    checksum; {!Remote} coordinators plan and route from it alone. *)

open Bpq_graph
open Bpq_access

val format_version : int
val partition_version : int
(** Bumped if {!owner_of_key} / {!owner_of_node} ever change; a
    coordinator refuses a manifest whose version it does not speak
    (routing with the wrong function would silently find nothing). *)

type shard_file = {
  file : string;  (** Basename within the manifest's directory. *)
  checksum : int;  (** FNV-1a over the shard file's bytes. *)
  n_edges : int;  (** Out-edges owned by this shard. *)
  n_keys : int;  (** Index key records owned by this shard. *)
  payload_ints : int;  (** Index payload entries owned by this shard. *)
}

type shard_meta = { shard : int; shards : int; n_edges_global : int }
(** The shard-local identity section every shard file carries; what a
    worker reports in its hello. *)

type manifest = {
  dir : string;
  shards : int;
  stamp : int;  (** Schema-lineage stamp, shared with every shard. *)
  n_nodes : int;
  n_edges : int;  (** Global sizes — [graph_size] is their sum. *)
  table : Label.table;
  constraints : Constr.t list;
  files : shard_file array;
}

val owner_of_node : shards:int -> int -> int
(** The shard owning a node's attributes and out-edges. *)

val owner_of_key : shards:int -> cid:int -> int array -> int
(** The shard owning an index bucket; [cid] is the constraint's position
    in the snapshot's constraint list and the array is the {e native}
    key record ({!Bpq_access.Index.export_buckets} form), so placement
    is independent of the caller's key ordering. *)

val shard_file_name : int -> string
(** ["shard-%04d.snap"]. *)

val manifest_path : string -> string
(** [dir/MANIFEST]; accepts a path that already names the file. *)

val partition : shards:int -> snapshot:string -> dir:string -> manifest
(** Split [snapshot] into [shards] worker files under [dir] (created if
    missing) and write the manifest last, as the commit point.
    @raise Invalid_argument on a non-positive shard count.
    @raise Binfile.Corrupt on a damaged input snapshot. *)

val load_manifest : string -> manifest
(** Read and fully verify a manifest (path of the file or of its
    directory).  Shard-file checksums are {e not} reverified here —
    {!verify_files} does that on demand.
    @raise Binfile.Corrupt on damage or an unsupported version. *)

val verify_files : manifest -> unit
(** Recompute every shard file's checksum against the manifest.
    @raise Binfile.Corrupt naming the first mismatched or unreadable
    file. *)

val checksum_file : string -> int
(** FNV-1a over a file's bytes (streamed). *)

val read_shard_meta : string -> shard_meta
(** Read one shard file's identity section (directory walk only — no
    checksum pass).
    @raise Binfile.Corrupt if the file is not a shard file or its
    partition/format version is not this build's. *)
