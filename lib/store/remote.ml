open Bpq_graph
open Bpq_access
open Bpq_core
module Sock = Bpq_util.Sock
module Vec = Bpq_util.Vec
module Predicate = Bpq_pattern.Predicate

exception Worker_died of { shard : int; detail : string }
exception Stale_plan of { shard : int; worker_stamp : int; plan_stamp : int }

let () =
  Printexc.register_printer (function
    | Worker_died { shard; detail } ->
      Some (Printf.sprintf "worker for shard %d died: %s" shard detail)
    | Stale_plan { shard; worker_stamp; plan_stamp } ->
      Some
        (Printf.sprintf
           "shard %d rejected a stale plan: worker serves schema stamp %d, plan was \
            built for stamp %d"
           shard worker_stamp plan_stamp)
    | _ -> None)

let corrupt fmt = Printf.ksprintf (fun s -> raise (Binfile.Corrupt s)) fmt

(* Request opcodes; replies open with 0 (ok), 1 (error + message) or
   2 (stale plan stamp: worker stamp + request stamp follow). *)
let op_hello = 1
let op_fetch = 2
let op_probe = 3
let op_nodes = 4
let op_shutdown = 5
let op_exec_fetch = 6
let op_filter = 7
let op_semijoin = 8
let op_probe2 = 9
let op_nodes2 = 10

let decode_value_str s =
  Graph_io.decode_value (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

(* Predicate wire codec: atom count, then per atom a comparison tag and
   the constant as a value blob.  Only the five comparison ops exist, so
   the tag table is total. *)
let add_pred b (pred : Predicate.t) =
  Binfile.add_i64 b (List.length pred);
  let vb = Buffer.create 16 in
  List.iter
    (fun (a : Predicate.atom) ->
      Binfile.add_i64 b
        (match a.op with Value.Eq -> 0 | Lt -> 1 | Gt -> 2 | Le -> 3 | Ge -> 4);
      Buffer.clear vb;
      Graph_io.add_value_blob vb a.const;
      Binfile.add_string b (Buffer.contents vb))
    pred

let read_pred c : Predicate.t =
  let n = Binfile.Cur.i64 c in
  if n < 0 then failwith "negative predicate atom count";
  List.init n (fun _ ->
      let op =
        match Binfile.Cur.i64 c with
        | 0 -> Value.Eq
        | 1 -> Value.Lt
        | 2 -> Value.Gt
        | 3 -> Value.Le
        | 4 -> Value.Ge
        | t -> failwith (Printf.sprintf "unknown predicate op tag %d" t)
      in
      let const = decode_value_str (Binfile.Cur.str c) in
      { Predicate.op; const })

let ns_since t0 = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9)

(* ---------------- worker side ---------------- *)

let serve ?page_cache_mb ~input ~output shard_file =
  (* A vanished peer must surface as EPIPE (which [Sock.is_disconnect]
     classifies), not kill the process. *)
  Sock.ignore_sigpipe ();
  (* Fails fast on a non-shard file (and pins the partition version)
     before the paged open does anything expensive. *)
  let meta = Shard.read_shard_meta shard_file in
  let p = Paged.open_ ?page_cache_mb shard_file in
  Fun.protect
    ~finally:(fun () -> Paged.close p)
    (fun () ->
      let src = Paged.source p in
      let cons = Array.of_list (Paged.constraints p) in
      let buf = Buffer.create 4096 in
      let reply fill =
        Buffer.clear buf;
        fill buf;
        Sock.send_frame output (Buffer.contents buf)
      in
      let ok fill = reply (fun b -> Binfile.add_i64 b 0; fill b) in
      let err msg = reply (fun b -> Binfile.add_i64 b 1; Binfile.add_string b msg) in
      (* Plan-operation requests carry the schema stamp their plan was
         built for; a mismatch (e.g. a coordinator replaying a plan from
         before a snapshot reload) gets a typed rejection, not a wrong
         answer. *)
      let stale plan_stamp =
        reply (fun b ->
            Binfile.add_i64 b 2;
            Binfile.add_i64 b (Paged.stamp p);
            Binfile.add_i64 b plan_stamp)
      in
      let owns v = Shard.owner_of_node ~shards:meta.Shard.shards v = meta.Shard.shard in
      let constraint_of cid =
        if cid < 0 || cid >= Array.length cons then
          failwith (Printf.sprintf "unknown constraint id %d" cid);
        cons.(cid)
      in
      let running = ref true in
      while !running do
        match Sock.recv_frame input with
        | None -> running := false
        | Some frame -> (
          let c = Binfile.Cur.of_bytes frame in
          try
            match Binfile.Cur.i64 c with
            | op when op = op_hello ->
              ok (fun b ->
                  Binfile.add_i64 b meta.Shard.shard;
                  Binfile.add_i64 b meta.Shard.shards;
                  Binfile.add_i64 b (Paged.stamp p);
                  Binfile.add_i64 b (Paged.n_nodes p);
                  Binfile.add_i64 b meta.Shard.n_edges_global)
            | op when op = op_fetch ->
              let con = constraint_of (Binfile.Cur.i64 c) in
              let arity = Constr.arity con in
              let nkeys = Binfile.Cur.i64 c in
              if nkeys < 0 then failwith "negative key count";
              let keys = Array.init nkeys (fun _ -> Binfile.Cur.array c arity) in
              ok (fun b ->
                  Binfile.add_i64 b nkeys;
                  Array.iter
                    (fun tuple ->
                      let hits = src.Exec.lookup con (Array.to_list tuple) in
                      Binfile.add_i64 b (Array.length hits);
                      Binfile.add_array b hits)
                    keys)
            | op when op = op_probe ->
              let n = Binfile.Cur.i64 c in
              if n < 0 then failwith "negative pair count";
              let verdicts = Bytes.create n in
              for i = 0 to n - 1 do
                let s = Binfile.Cur.i64 c in
                let d = Binfile.Cur.i64 c in
                Bytes.set verdicts i (if src.Exec.probe_edge s d then '\001' else '\000')
              done;
              ok (fun b ->
                  Binfile.add_i64 b n;
                  Binfile.add_string b (Bytes.to_string verdicts))
            | op when op = op_nodes ->
              let n = Binfile.Cur.i64 c in
              if n < 0 then failwith "negative id count";
              let ids = Binfile.Cur.array c n in
              ok (fun b ->
                  Binfile.add_i64 b n;
                  let vb = Buffer.create 16 in
                  Array.iter
                    (fun v ->
                      Binfile.add_i64 b (src.Exec.node_label v);
                      Buffer.clear vb;
                      Graph_io.add_value_blob vb (src.Exec.node_value v);
                      Binfile.add_string b (Buffer.contents vb))
                    ids)
            | op when op = op_exec_fetch ->
              (* Whole fetch operation: stream this shard's buckets for
                 the given tuples, apply the predicate to locally-owned
                 hits, and hand unresolved foreign hits back for the
                 coordinator's filter round.  Counters mirror the
                 sequential executor loop: one lookup per tuple, every
                 bucket entry streamed (duplicates included). *)
              let plan_stamp = Binfile.Cur.i64 c in
              if plan_stamp <> Paged.stamp p then stale plan_stamp
              else begin
                let con = constraint_of (Binfile.Cur.i64 c) in
                let arity = Constr.arity con in
                let pred = read_pred c in
                let ntuples = Binfile.Cur.uvarint c in
                let flat = Binfile.Cur.zigzag_array c in
                if Array.length flat <> ntuples * arity then
                  failwith "tuple stream length mismatch";
                let t0 = Unix.gettimeofday () in
                let lookups = ref 0 and streamed = ref 0 in
                let pass = Vec.create ~capacity:64 () in
                let foreign = Vec.create ~capacity:16 () in
                for ti = 0 to ntuples - 1 do
                  let tuple = Array.sub flat (ti * arity) arity in
                  incr lookups;
                  src.Exec.lookup_iter con tuple (fun w ->
                      incr streamed;
                      if pred = [] then Vec.push pass w
                      else if owns w then begin
                        if Predicate.eval pred (src.Exec.node_value w) then Vec.push pass w
                      end
                      else Vec.push foreign w)
                done;
                (* The coordinator unions and dedups anyway, so ship each
                   id once, delta-compressed. *)
                Vec.sort_uniq pass;
                Vec.sort_uniq foreign;
                let eval_ns = ns_since t0 in
                ok (fun b ->
                    Binfile.add_i64 b eval_ns;
                    Binfile.add_i64 b !lookups;
                    Binfile.add_i64 b !streamed;
                    Binfile.add_sorted_array b (Vec.to_array pass);
                    Binfile.add_sorted_array b (Vec.to_array foreign))
              end
            | op when op = op_filter ->
              (* Predicate verdicts for nodes this shard owns the values
                 of — the second phase of a pushed fetch. *)
              let plan_stamp = Binfile.Cur.i64 c in
              if plan_stamp <> Paged.stamp p then stale plan_stamp
              else begin
                let pred = read_pred c in
                let ids = Binfile.Cur.sorted_array c in
                let n = Array.length ids in
                let t0 = Unix.gettimeofday () in
                let verdicts = Bytes.create n in
                Array.iteri
                  (fun i v ->
                    Bytes.set verdicts i
                      (if Predicate.eval pred (src.Exec.node_value v) then '\001'
                       else '\000'))
                  ids;
                let eval_ns = ns_since t0 in
                ok (fun b ->
                    Binfile.add_i64 b eval_ns;
                    Binfile.add_i64 b n;
                    Binfile.add_string b (Bytes.to_string verdicts))
              end
            | op when op = op_semijoin ->
              (* Whole edge-operation semijoin: stream this shard's
                 buckets for the tuples and keep only hits that are also
                 in the target candidate row, emitting candidate
                 (other-endpoint, hit) pairs.  Direction is oriented and
                 probed coordinator-side. *)
              let plan_stamp = Binfile.Cur.i64 c in
              if plan_stamp <> Paged.stamp p then stale plan_stamp
              else begin
                let con = constraint_of (Binfile.Cur.i64 c) in
                let arity = Constr.arity con in
                let other_slot = Binfile.Cur.i64 c in
                if other_slot < 0 || other_slot >= arity then failwith "other_slot out of range";
                let row = Binfile.Cur.sorted_array c in
                let ntuples = Binfile.Cur.uvarint c in
                let flat_in = Binfile.Cur.zigzag_array c in
                if Array.length flat_in <> ntuples * arity then
                  failwith "tuple stream length mismatch";
                let t0 = Unix.gettimeofday () in
                let lookups = ref 0 and cands = ref 0 in
                (* Pairs recur across tuples; ship each once (node ids
                   fit 31 bits, so a pair packs into one int key), sorted
                   so the reply delta-compresses. *)
                let seen = Hashtbl.create 64 in
                let packed = Vec.create ~capacity:64 () in
                for ti = 0 to ntuples - 1 do
                  let tuple = Array.sub flat_in (ti * arity) arity in
                  incr lookups;
                  let v_other = tuple.(other_slot) in
                  src.Exec.lookup_iter con tuple (fun w ->
                      if Exec.mem_sorted row w then begin
                        incr cands;
                        let pk = (v_other lsl 31) lor w in
                        if not (Hashtbl.mem seen pk) then begin
                          Hashtbl.replace seen pk ();
                          Vec.push packed pk
                        end
                      end)
                done;
                Vec.sort_uniq packed;
                let eval_ns = ns_since t0 in
                ok (fun b ->
                    Binfile.add_i64 b eval_ns;
                    Binfile.add_i64 b !lookups;
                    Binfile.add_i64 b !cands;
                    Binfile.add_sorted_array b (Vec.to_array packed))
              end
            | op when op = op_probe2 ->
              (* Compact probe: pairs packed into sorted ints (source
                 id high, destination low) so deltas stay tiny.  Same
                 verdict bitmask as probe, in request order. *)
              let packed = Binfile.Cur.sorted_array c in
              let n = Array.length packed in
              let verdicts = Bytes.create n in
              Array.iteri
                (fun i pk ->
                  let s = pk lsr 31 and d = pk land ((1 lsl 31) - 1) in
                  Bytes.set verdicts i (if src.Exec.probe_edge s d then '\001' else '\000'))
                packed;
              ok (fun b ->
                  Binfile.add_i64 b n;
                  Binfile.add_string b (Bytes.to_string verdicts))
            | op when op = op_nodes2 ->
              (* Compact nodes: the id set rides as a sorted delta
                 array; the attribute records come back as in nodes. *)
              let ids = Binfile.Cur.sorted_array c in
              ok (fun b ->
                  Binfile.add_i64 b (Array.length ids);
                  let vb = Buffer.create 16 in
                  Array.iter
                    (fun v ->
                      Binfile.add_i64 b (src.Exec.node_label v);
                      Buffer.clear vb;
                      Graph_io.add_value_blob vb (src.Exec.node_value v);
                      Binfile.add_string b (Buffer.contents vb))
                    ids)
            | op when op = op_shutdown ->
              ok (fun _ -> ());
              running := false
            | op -> err (Printf.sprintf "unknown opcode %d" op)
          with
          | Sock.Frame_too_large _ as e -> raise e
          | e when Sock.is_disconnect e -> raise e
          | e -> err (Printexc.to_string e))
      done)

(* ---------------- coordinator side ---------------- *)

type conn = { fd : Unix.file_descr; pid : int option }

type t = {
  m : Shard.manifest;
  conns : conn array;  (* index = shard *)
  cons : Constr.t array;  (* manifest order = wire constraint ids *)
  cid_of : (Constr.t, int) Hashtbl.t;
  arity : int array;
  mutex : Mutex.t;
  (* (cid, native record) → bucket; refilled by each operation's
     prefetch, consulted by the per-key lookups that follow. *)
  buckets : (int * int array, int array) Hashtbl.t;
  (* node id → (label, value); warmed in batch after fetch rounds. *)
  attrs : (int, Label.t * Value.t) Hashtbl.t;
  messages : int array;
  bytes_sent : int array;
  bytes_received : int array;
  items : int array;
  server_ns : int array;  (* worker-reported evaluation time, pushdown ops *)
  mutable rounds : int;
  mutable closed : bool;
}

type stats = {
  shards : int;
  messages : int array;
  bytes_sent : int array;
  bytes_received : int array;
  items : int array;
  server_ns : int array;
  rounds : int;
}

let manifest t = t.m

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let died shard e = raise (Worker_died { shard; detail = Printexc.to_string e })

let send t shard payload =
  (try Sock.send_frame t.conns.(shard).fd payload
   with e when Sock.is_disconnect e -> died shard e);
  t.messages.(shard) <- t.messages.(shard) + 1;
  t.bytes_sent.(shard) <- t.bytes_sent.(shard) + String.length payload + 8

let recv t shard =
  let frame =
    try Sock.recv_frame t.conns.(shard).fd with e when Sock.is_disconnect e -> died shard e
  in
  match frame with
  | None -> died shard End_of_file
  | Some b ->
    t.bytes_received.(shard) <- t.bytes_received.(shard) + Bytes.length b + 8;
    b

let open_reply shard b =
  let c = Binfile.Cur.of_bytes b in
  (match Binfile.Cur.i64 c with
  | 0 -> ()
  | 1 -> failwith (Printf.sprintf "shard %d worker: %s" shard (Binfile.Cur.str c))
  | 2 ->
    let worker_stamp = Binfile.Cur.i64 c in
    let plan_stamp = Binfile.Cur.i64 c in
    raise (Stale_plan { shard; worker_stamp; plan_stamp })
  | s -> corrupt "shard %d: unknown reply status %d" shard s);
  c

(* One superstep: every request frame goes out before any reply is
   read, so the workers compute in parallel and the round costs one
   straggler, not a sum. *)
let round t reqs =
  List.iter (fun (shard, payload) -> send t shard payload) reqs;
  let replies = List.map (fun (shard, _) -> (shard, open_reply shard (recv t shard))) reqs in
  if reqs <> [] then t.rounds <- t.rounds + 1;
  replies

let frame fill =
  let b = Buffer.create 256 in
  fill b;
  Buffer.contents b

(* The native key record for a raw anchor-order tuple — must match what
   [Shard.partition] hashed ({!Index.export_buckets} form), which is
   also what the worker's paged lookup searches for. *)
let native_record ~arity (tuple : int array) =
  if Array.length tuple <> arity then None
  else
    match arity with
    | 0 -> Some [| 0 |]
    | 1 -> Some [| tuple.(0) |]
    | 2 -> Some [| Index.pack2 tuple.(0) tuple.(1) |]
    | _ ->
      let copy = Array.copy tuple in
      Array.sort Int.compare copy;
      Some copy

let record_of_list ~arity vs =
  if List.length vs <> arity then None else Some (Array.of_list vs)

(* Retention is an optimisation only — correctness never depends on a
   cache hit — so a hard cap with wholesale reset is enough. *)
let max_cached_attrs = 2_000_000
let max_prefetch_keys = 65_536

(* Pushdown ships the operation's whole tuple set in one frame per
   shard, so it shares the prefetch path's cap; larger operations fall
   back to batched fetch. *)
let max_push_tuples = max_prefetch_keys

(* Batch-resolve the attributes of every id the last fetch round
   returned: one nodes frame per owning shard, one more superstep.
   [compact] (pushdown path only) sends each shard's ids sorted as a
   delta varint array (nodes2); the baseline keeps the raw-i64 nodes
   frame so PR 8 traffic is reproduced exactly. *)
let warm_attrs ?(compact = false) t ids =
  let fresh = List.filter (fun v -> not (Hashtbl.mem t.attrs v)) ids in
  if fresh <> [] then begin
    if Hashtbl.length t.attrs > max_cached_attrs then Hashtbl.reset t.attrs;
    let per_shard = Array.make t.m.Shard.shards [] in
    List.iter
      (fun v ->
        let s = Shard.owner_of_node ~shards:t.m.Shard.shards v in
        per_shard.(s) <- v :: per_shard.(s))
      fresh;
    let reqs = ref [] in
    Array.iteri
      (fun s ids ->
        if ids <> [] then begin
          let ids = Array.of_list ids in
          if compact then Array.sort Int.compare ids;
          let payload =
            frame (fun b ->
                if compact then begin
                  Binfile.add_i64 b op_nodes2;
                  Binfile.add_sorted_array b ids
                end
                else begin
                  Binfile.add_i64 b op_nodes;
                  Binfile.add_i64 b (Array.length ids);
                  Binfile.add_array b ids
                end)
          in
          reqs := (s, payload) :: (!reqs);
          per_shard.(s) <- Array.to_list ids (* keep request order for decode *)
        end)
      per_shard;
    let replies = round t (!reqs) in
    List.iter
      (fun (shard, c) ->
        let n = Binfile.Cur.i64 c in
        let sent = per_shard.(shard) in
        if n <> List.length sent then corrupt "shard %d: nodes reply length mismatch" shard;
        List.iter
          (fun v ->
            let label = Binfile.Cur.i64 c in
            let value = decode_value_str (Binfile.Cur.str c) in
            t.items.(shard) <- t.items.(shard) + 1;
            Hashtbl.replace t.attrs v (label, value))
          sent)
      replies
  end

let node_attrs t v =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.attrs v with
      | Some a -> a
      | None ->
        warm_attrs t [ v ];
        (match Hashtbl.find_opt t.attrs v with
        | Some a -> a
        | None -> corrupt "shard reply missing node %d" v))

let cid_of t con =
  match Hashtbl.find_opt t.cid_of con with
  | Some cid -> cid
  | None -> raise Not_found (* like Schema.index_of / Paged on unknown constraints *)

(* Resolve one key right now (prefetch miss or un-prefetched path):
   its own one-frame round to the owning shard. *)
let fetch_single t cid record tuple =
  let shard = Shard.owner_of_key ~shards:t.m.Shard.shards ~cid record in
  let payload =
    frame (fun b ->
        Binfile.add_i64 b op_fetch;
        Binfile.add_i64 b cid;
        Binfile.add_i64 b 1;
        Binfile.add_array b tuple)
  in
  match round t [ (shard, payload) ] with
  | [ (_, c) ] ->
    let n = Binfile.Cur.i64 c in
    if n <> 1 then corrupt "shard %d: fetch reply length mismatch" shard;
    let len = Binfile.Cur.i64 c in
    if len < 0 then corrupt "shard %d: negative bucket length" shard;
    let hits = Binfile.Cur.array c len in
    t.items.(shard) <- t.items.(shard) + len;
    Hashtbl.replace t.buckets (cid, record) hits;
    hits
  | _ -> assert false

let lookup_record t cid record tuple =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.buckets (cid, record) with
      | Some hits -> hits
      | None -> fetch_single t cid record tuple)

(* The executor announces each plan operation's whole key set (the
   cartesian product of the anchor candidate rows) before looking any
   key up: resolve the distinct keys in one fetch round — one frame per
   owning shard — then warm the attribute cache for everything that
   came back in one nodes round. *)
let do_prefetch t con arrays =
  match Hashtbl.find_opt t.cid_of con with
  | None -> () (* the lookups that follow will raise Not_found *)
  | Some cid ->
    let arity = t.arity.(cid) in
    if Array.length arrays = arity then begin
      let total =
        Array.fold_left
          (fun acc row ->
            let n = Array.length row in
            if acc = 0 || n = 0 then 0
            else if acc > max_prefetch_keys then acc
            else acc * n)
          1 arrays
      in
      if total > 0 && total <= max_prefetch_keys then
        with_lock t (fun () ->
            Hashtbl.reset t.buckets;
            let shards = t.m.Shard.shards in
            let pending = Array.make shards [] in
            let seen = Hashtbl.create 64 in
            let anchors = List.init arity (fun i -> ((), i)) in
            Exec.iter_tuples arrays anchors (fun tuple ->
                match native_record ~arity tuple with
                | None -> ()
                | Some record ->
                  if not (Hashtbl.mem seen record) then begin
                    Hashtbl.add seen record ();
                    let s = Shard.owner_of_key ~shards ~cid record in
                    pending.(s) <- (record, Array.copy tuple) :: pending.(s)
                  end);
            let reqs = ref [] in
            Array.iteri
              (fun s keys ->
                if keys <> [] then begin
                  let keys = List.rev keys in
                  pending.(s) <- keys;
                  let payload =
                    frame (fun b ->
                        Binfile.add_i64 b op_fetch;
                        Binfile.add_i64 b cid;
                        Binfile.add_i64 b (List.length keys);
                        List.iter (fun (_, tuple) -> Binfile.add_array b tuple) keys)
                  in
                  reqs := (s, payload) :: (!reqs)
                end)
              pending;
            let replies = round t (!reqs) in
            let returned = ref [] in
            List.iter
              (fun (shard, c) ->
                let n = Binfile.Cur.i64 c in
                let sent = pending.(shard) in
                if n <> List.length sent then
                  corrupt "shard %d: fetch reply length mismatch" shard;
                List.iter
                  (fun (record, _) ->
                    let len = Binfile.Cur.i64 c in
                    if len < 0 then corrupt "shard %d: negative bucket length" shard;
                    let hits = Binfile.Cur.array c len in
                    t.items.(shard) <- t.items.(shard) + len;
                    Hashtbl.replace t.buckets (cid, record) hits;
                    Array.iter (fun v -> returned := v :: (!returned)) hits)
                  sent)
              replies;
            warm_attrs t (!returned))
    end

(* [compact] (pushdown path only) packs each pair into one int and
   sends each shard's set sorted as delta varints (probe2); verdicts
   map back through the sorted order.  The baseline keeps the raw
   16-byte-per-pair probe frame so PR 8 traffic is reproduced
   exactly. *)
let probe_many ?(compact = false) t pairs =
  with_lock t (fun () ->
      let n = Array.length pairs in
      let verdicts = Array.make n false in
      let shards = t.m.Shard.shards in
      let pending = Array.make shards [] in
      Array.iteri
        (fun i (s, _) ->
          let owner = Shard.owner_of_node ~shards s in
          pending.(owner) <- i :: pending.(owner))
        pairs;
      let pack i =
        let s, d = pairs.(i) in
        (s lsl 31) lor d
      in
      let reqs = ref [] in
      Array.iteri
        (fun shard idxs ->
          if idxs <> [] then begin
            let idxs =
              if compact then
                (* Sorted packed order; ascending deltas on the wire,
                   verdict j belongs to the j-th sorted pair. *)
                List.sort (fun i j -> Int.compare (pack i) (pack j)) idxs
              else List.rev idxs
            in
            pending.(shard) <- idxs;
            let payload =
              frame (fun b ->
                  if compact then begin
                    Binfile.add_i64 b op_probe2;
                    Binfile.add_sorted_array b
                      (Array.of_list (List.map pack idxs))
                  end
                  else begin
                    Binfile.add_i64 b op_probe;
                    Binfile.add_i64 b (List.length idxs);
                    List.iter
                      (fun i ->
                        let s, d = pairs.(i) in
                        Binfile.add_i64 b s;
                        Binfile.add_i64 b d)
                      idxs
                  end)
            in
            reqs := (shard, payload) :: (!reqs)
          end)
        pending;
      let replies = round t (!reqs) in
      List.iter
        (fun (shard, c) ->
          let m = Binfile.Cur.i64 c in
          let sent = pending.(shard) in
          if m <> List.length sent then corrupt "shard %d: probe reply length mismatch" shard;
          let bits = Binfile.Cur.str c in
          if String.length bits <> m then corrupt "shard %d: probe verdict length mismatch" shard;
          t.items.(shard) <- t.items.(shard) + m;
          List.iteri (fun j i -> verdicts.(i) <- bits.[j] = '\001') sent)
        replies;
      verdicts)

(* ---------------- worker-side pushdown ---------------- *)

(* Tally the eval-time header every pushdown reply opens with. *)
let take_server_ns (t : t) shard c =
  let ns = Binfile.Cur.i64 c in
  t.server_ns.(shard) <- t.server_ns.(shard) + ns

(* Partition the operation's anchor tuples by the shard owning their
   native key record, keeping arrival order per shard.  Returns [None]
   when the operation isn't pushable (arity mismatch, empty, saturated
   or oversized odometer) — the executor then falls back to batched
   fetch.  [Some (total, pending)] has [pending.(s)] = that shard's
   tuples in enumeration order. *)
let partition_tuples t ~cid arrays =
  let arity = t.arity.(cid) in
  if Array.length arrays <> arity then None
  else begin
    let total = Exec.total_tuples arrays in
    if total <= 0 || total >= max_int || total > max_push_tuples then None
    else begin
      let shards = t.m.Shard.shards in
      let pending = Array.make shards [] in
      Exec.iter_tuples_slice arrays ~lo:0 ~hi:total (fun tuple ->
          match native_record ~arity tuple with
          | None -> ()
          | Some record ->
            let s = Shard.owner_of_key ~shards ~cid record in
            pending.(s) <- Array.copy tuple :: pending.(s));
      Array.iteri (fun s tuples -> pending.(s) <- List.rev tuples) pending;
      Some (total, pending)
    end
  end

(* Pushed fetch.  Round 1 (exec_fetch, one frame per key-owning shard):
   workers stream their buckets, apply the predicate to hits whose
   values they own and return unresolved foreign hits.  Round 2
   (filter, only when a non-empty predicate left foreign hits): the
   node-owning shards return predicate verdicts.  The merged row and
   counters are exactly what the executor's local loop would produce. *)
let do_push_fetch t con pred arrays =
  match Hashtbl.find_opt t.cid_of con with
  | None -> None
  | Some cid ->
    if Exec.total_tuples arrays = 0 && Array.length arrays = t.arity.(cid) then
      (* An empty anchor row: the local loop performs no lookups at all. *)
      Some { Exec.pf_hits = [||]; pf_lookups = 0; pf_streamed = 0 }
    else (
      match partition_tuples t ~cid arrays with
      | None -> None
      | Some (_total, pending) ->
        with_lock t (fun () ->
            let reqs = ref [] in
            Array.iteri
              (fun s tuples ->
                if tuples <> [] then begin
                  let payload =
                    frame (fun b ->
                        Binfile.add_i64 b op_exec_fetch;
                        Binfile.add_i64 b t.m.Shard.stamp;
                        Binfile.add_i64 b cid;
                        add_pred b pred;
                        (* Odometer-order tuples flattened: adjacent
                           elements are close, so zigzag deltas stay
                           one or two bytes. *)
                        Binfile.add_uvarint b (List.length tuples);
                        Binfile.add_zigzag_array b (Array.concat tuples))
                  in
                  reqs := (s, payload) :: !reqs
                end)
              pending;
            let replies = round t !reqs in
            let lookups = ref 0 and streamed = ref 0 in
            let hits = Vec.create ~capacity:64 () in
            let foreign = Vec.create ~capacity:16 () in
            List.iter
              (fun (shard, c) ->
                take_server_ns t shard c;
                lookups := !lookups + Binfile.Cur.i64 c;
                streamed := !streamed + Binfile.Cur.i64 c;
                let pass = Binfile.Cur.sorted_array c in
                let fr = Binfile.Cur.sorted_array c in
                t.items.(shard) <- t.items.(shard) + Array.length pass + Array.length fr;
                Array.iter (Vec.push hits) pass;
                Array.iter (Vec.push foreign) fr)
              replies;
            Vec.sort_uniq foreign;
            if Vec.length foreign > 0 then begin
              let shards = t.m.Shard.shards in
              let per = Array.make shards [] in
              Array.iter
                (fun v ->
                  let s = Shard.owner_of_node ~shards v in
                  per.(s) <- v :: per.(s))
                (Vec.to_array foreign);
              let reqs = ref [] in
              Array.iteri
                (fun s ids ->
                  if ids <> [] then begin
                    (* [foreign] was sort_uniq'd, so each shard's
                       consed-then-reversed list is ascending. *)
                    let ids = Array.of_list (List.rev ids) in
                    per.(s) <- Array.to_list ids;
                    let payload =
                      frame (fun b ->
                          Binfile.add_i64 b op_filter;
                          Binfile.add_i64 b t.m.Shard.stamp;
                          add_pred b pred;
                          Binfile.add_sorted_array b ids)
                    in
                    reqs := (s, payload) :: !reqs
                  end)
                per;
              let replies = round t !reqs in
              List.iter
                (fun (shard, c) ->
                  take_server_ns t shard c;
                  let n = Binfile.Cur.i64 c in
                  let sent = per.(shard) in
                  if n <> List.length sent then
                    corrupt "shard %d: filter reply length mismatch" shard;
                  let bits = Binfile.Cur.str c in
                  if String.length bits <> n then
                    corrupt "shard %d: filter verdict length mismatch" shard;
                  t.items.(shard) <- t.items.(shard) + n;
                  List.iteri (fun j v -> if bits.[j] = '\001' then Vec.push hits v) sent)
                replies
            end;
            Vec.sort_uniq hits;
            Some
              { Exec.pf_hits = Vec.to_array hits;
                pf_lookups = !lookups;
                pf_streamed = !streamed }))

(* Pushed edge semijoin: one frame per key-owning shard carrying the
   tuples plus the (query-bounded) target row; workers return candidate
   pairs they found, deduplicated per shard.  Orientation happens here;
   the executor still dedups globally and direction-probes. *)
let do_push_semijoin t con ~row ~arrays ~other_slot ~target_right =
  match Hashtbl.find_opt t.cid_of con with
  | None -> None
  | Some cid ->
    let arity = t.arity.(cid) in
    if other_slot < 0 || other_slot >= arity then None
    else if Array.length arrays = arity && Exec.total_tuples arrays = 0 then
      Some { Exec.ps_pairs = [||]; ps_lookups = 0; ps_candidates = 0 }
    else (
      match partition_tuples t ~cid arrays with
      | None -> None
      | Some (total, pending) ->
        if Array.length row = 0 then
          (* Every membership test fails: the local loop would stream
             buckets to no effect — its counters are [total] lookups and
             zero candidates, no rounds needed. *)
          Some { Exec.ps_pairs = [||]; ps_lookups = total; ps_candidates = 0 }
        else
          with_lock t (fun () ->
              let reqs = ref [] in
              Array.iteri
                (fun s tuples ->
                  if tuples <> [] then begin
                    let payload =
                      frame (fun b ->
                          Binfile.add_i64 b op_semijoin;
                          Binfile.add_i64 b t.m.Shard.stamp;
                          Binfile.add_i64 b cid;
                          Binfile.add_i64 b other_slot;
                          (* The target row is a sorted candidate row
                             (the worker's membership test requires
                             it), so it delta-compresses. *)
                          Binfile.add_sorted_array b row;
                          Binfile.add_uvarint b (List.length tuples);
                          Binfile.add_zigzag_array b (Array.concat tuples))
                    in
                    reqs := (s, payload) :: !reqs
                  end)
                pending;
              let replies = round t !reqs in
              let lookups = ref 0 and cands = ref 0 in
              let pairs = Vec.create ~capacity:64 () in
              List.iter
                (fun (shard, c) ->
                  take_server_ns t shard c;
                  lookups := !lookups + Binfile.Cur.i64 c;
                  cands := !cands + Binfile.Cur.i64 c;
                  let packed = Binfile.Cur.sorted_array c in
                  t.items.(shard) <- t.items.(shard) + Array.length packed;
                  Array.iter (Vec.push pairs) packed)
                replies;
              let oriented =
                Array.map
                  (fun packed ->
                    let v_other = packed lsr 31
                    and w = packed land ((1 lsl 31) - 1) in
                    if target_right then (v_other, w) else (w, v_other))
                  (Vec.to_array pairs)
              in
              Some
                { Exec.ps_pairs = oriented;
                  ps_lookups = !lookups;
                  ps_candidates = !cands }))

(* A zero-id filter round against one worker, with an arbitrary plan
   stamp: the cheapest way to exercise the worker's stamp validation.
   Raises {!Stale_plan} on mismatch.  Exposed for tests. *)
let probe_plan_stamp t stamp =
  with_lock t (fun () ->
      let payload =
        frame (fun b ->
            Binfile.add_i64 b op_filter;
            Binfile.add_i64 b stamp;
            add_pred b [];
            Binfile.add_sorted_array b [||])
      in
      match round t [ (0, payload) ] with
      | [ (shard, c) ] ->
        take_server_ns t shard c;
        if Binfile.Cur.i64 c <> 0 then corrupt "shard %d: filter reply length mismatch" shard
      | _ -> assert false)

let source ?(pushdown = true) t =
  let lookup_tuple con tuple =
    let cid = cid_of t con in
    match native_record ~arity:t.arity.(cid) tuple with
    | None -> [||]
    | Some record -> lookup_record t cid record tuple
  in
  { Exec.lookup =
      (fun con key ->
        let cid = cid_of t con in
        match record_of_list ~arity:t.arity.(cid) key with
        | None -> [||]
        | Some tuple -> (
          match native_record ~arity:t.arity.(cid) tuple with
          | None -> [||]
          | Some record -> lookup_record t cid record tuple));
    lookup_iter =
      (* Materialise under the lock, then stream: executor callbacks
         read node attributes mid-iteration, which must not deadlock on
         the coordinator's mutex. *)
      (fun con tuple f -> Array.iter f (lookup_tuple con tuple));
    probe_edge = (fun s d -> (probe_many ~compact:pushdown t [| (s, d) |]).(0));
    probe_edges = Some (fun pairs -> probe_many ~compact:pushdown t pairs);
    prefetch = Some (fun con arrays -> do_prefetch t con arrays);
    push_fetch =
      (if pushdown then Some (fun con pred arrays -> do_push_fetch t con pred arrays)
       else None);
    push_semijoin =
      (if pushdown then
         Some
           (fun con ~row ~arrays ~other_slot ~target_right ->
             do_push_semijoin t con ~row ~arrays ~other_slot ~target_right)
       else None);
    warm_nodes =
      (* One nodes round over exactly G_Q; without pushdown the batched
         path has already warmed (a superset of) these during prefetch,
         and adding the round would change the PR 8 baseline. *)
      (if pushdown then
         Some
           (fun ids ->
             with_lock t (fun () -> warm_attrs ~compact:true t (Array.to_list ids)))
       else None);
    node_label = (fun v -> fst (node_attrs t v));
    node_value = (fun v -> snd (node_attrs t v));
    table = t.m.Shard.table;
    constraints = t.m.Shard.constraints;
    stamp = t.m.Shard.stamp;
    graph_size = t.m.Shard.n_nodes + t.m.Shard.n_edges;
    data_version = 0;
    label_gen = None }

(* ---------------- lifecycle ---------------- *)

let hello_frame = frame (fun b -> Binfile.add_i64 b op_hello)
let shutdown_frame = frame (fun b -> Binfile.add_i64 b op_shutdown)

(* Identify each connection by its hello reply and arrange them into
   shard order, insisting on exactly the manifest's partition. *)
let handshake (m : Shard.manifest) conns =
  if Array.length conns <> m.Shard.shards then
    failwith
      (Printf.sprintf "expected %d worker connections, got %d" m.Shard.shards
         (Array.length conns));
  let slots = Array.make m.Shard.shards None in
  Array.iter
    (fun conn ->
      let reply =
        try
          Sock.send_frame conn.fd hello_frame;
          Sock.recv_frame conn.fd
        with e when Sock.is_disconnect e ->
          failwith "worker died during the hello exchange (did it open its shard file?)"
      in
      match reply with
      | None -> failwith "worker closed its connection during the hello exchange"
      | Some b ->
        let c = open_reply (-1) b in
        let shard = Binfile.Cur.i64 c in
        let shards = Binfile.Cur.i64 c in
        let stamp = Binfile.Cur.i64 c in
        let n_nodes = Binfile.Cur.i64 c in
        let n_edges = Binfile.Cur.i64 c in
        if shards <> m.Shard.shards then
          failwith
            (Printf.sprintf "worker partitioned %d ways, manifest says %d" shards
               m.Shard.shards);
        if stamp <> m.Shard.stamp then failwith "worker serves a different schema lineage";
        if n_nodes <> m.Shard.n_nodes || n_edges <> m.Shard.n_edges then
          failwith "worker serves a different graph";
        if shard < 0 || shard >= m.Shard.shards then failwith "worker reports an alien shard";
        if slots.(shard) <> None then
          failwith (Printf.sprintf "two workers both serve shard %d" shard);
        slots.(shard) <- Some conn)
    conns;
  Array.map (function Some c -> c | None -> assert false) slots

let create m conns =
  (* A dead worker must surface as {!Worker_died} via EPIPE, never as a
     process-killing SIGPIPE. *)
  Sock.ignore_sigpipe ();
  let conns = handshake m conns in
  let cons = Array.of_list m.Shard.constraints in
  let cid_of = Hashtbl.create 16 in
  Array.iteri (fun i c -> Hashtbl.replace cid_of c i) cons;
  let shards = m.Shard.shards in
  { m;
    conns;
    cons;
    cid_of;
    arity = Array.map Constr.arity cons;
    mutex = Mutex.create ();
    buckets = Hashtbl.create 256;
    attrs = Hashtbl.create 1024;
    messages = Array.make shards 0;
    bytes_sent = Array.make shards 0;
    bytes_received = Array.make shards 0;
    items = Array.make shards 0;
    server_ns = Array.make shards 0;
    rounds = 0;
    closed = false }

let attach m fds = create m (Array.map (fun fd -> { fd; pid = None }) fds)

let spawn ?argv (m : Shard.manifest) =
  let argv =
    match argv with
    | Some f -> f
    | None -> fun ~shard_file -> [| Sys.executable_name; "worker"; shard_file |]
  in
  let conns =
    Array.map
      (fun (f : Shard.shard_file) ->
        let shard_file = Filename.concat m.Shard.dir f.file in
        let parent, child = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.set_close_on_exec parent;
        let av = argv ~shard_file in
        let pid = Unix.create_process av.(0) av child child Unix.stderr in
        Unix.close child;
        { fd = parent; pid = Some pid })
      m.Shard.files
  in
  try create m conns
  with e ->
    Array.iter
      (fun c ->
        (try Unix.close c.fd with Unix.Unix_error _ -> ());
        match c.pid with
        | Some pid -> ( try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        | None -> ())
      conns;
    raise e

(* Reap a spawned worker without risking a hang on a wedged process:
   poll non-blocking for up to [reap_timeout] seconds, then SIGKILL and
   collect.  Repeated sharded runs must not accumulate zombies. *)
let reap_timeout = 2.0

let reap pid =
  let deadline = Unix.gettimeofday () +. reap_timeout in
  let rec poll () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
      if Unix.gettimeofday () >= deadline then begin
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()
      end
      else begin
        Unix.sleepf 0.01;
        poll ()
      end
    | _, _ -> ()
    | exception Unix.Unix_error _ -> ()
  in
  poll ()

let close t =
  with_lock t (fun () ->
      if not t.closed then begin
        t.closed <- true;
        (* Ask every worker to exit and drop the connections first, then
           reap: a shutdown send to an already-dead worker must not stop
           the others from being collected. *)
        Array.iter
          (fun c ->
            (try
               Sock.send_frame c.fd shutdown_frame;
               ignore (Sock.recv_frame c.fd)
             with _ -> ());
            try Unix.close c.fd with Unix.Unix_error _ -> ())
          t.conns;
        Array.iter (fun c -> match c.pid with Some pid -> reap pid | None -> ()) t.conns
      end)

(* ---------------- accounting ---------------- *)

let stats t =
  with_lock t (fun () ->
      { shards = t.m.Shard.shards;
        messages = Array.copy t.messages;
        bytes_sent = Array.copy t.bytes_sent;
        bytes_received = Array.copy t.bytes_received;
        items = Array.copy t.items;
        server_ns = Array.copy t.server_ns;
        rounds = t.rounds })

let reset_stats t =
  with_lock t (fun () ->
      Array.fill t.messages 0 (Array.length t.messages) 0;
      Array.fill t.bytes_sent 0 (Array.length t.bytes_sent) 0;
      Array.fill t.bytes_received 0 (Array.length t.bytes_received) 0;
      Array.fill t.items 0 (Array.length t.items) 0;
      Array.fill t.server_ns 0 (Array.length t.server_ns) 0;
      t.rounds <- 0)

let traffic (s : stats) =
  let sum = Array.fold_left ( + ) 0 in
  (sum s.messages, sum s.bytes_sent + sum s.bytes_received)
