open Bpq_graph
open Bpq_access
open Bpq_core
module Sock = Bpq_util.Sock

exception Worker_died of { shard : int; detail : string }

let () =
  Printexc.register_printer (function
    | Worker_died { shard; detail } ->
      Some (Printf.sprintf "worker for shard %d died: %s" shard detail)
    | _ -> None)

let corrupt fmt = Printf.ksprintf (fun s -> raise (Binfile.Corrupt s)) fmt

(* Request opcodes; replies open with 0 (ok) or 1 (error + message). *)
let op_hello = 1
let op_fetch = 2
let op_probe = 3
let op_nodes = 4
let op_shutdown = 5

(* ---------------- worker side ---------------- *)

let serve ?page_cache_mb ~input ~output shard_file =
  (* A vanished peer must surface as EPIPE (which [Sock.is_disconnect]
     classifies), not kill the process. *)
  Sock.ignore_sigpipe ();
  (* Fails fast on a non-shard file (and pins the partition version)
     before the paged open does anything expensive. *)
  let meta = Shard.read_shard_meta shard_file in
  let p = Paged.open_ ?page_cache_mb shard_file in
  Fun.protect
    ~finally:(fun () -> Paged.close p)
    (fun () ->
      let src = Paged.source p in
      let cons = Array.of_list (Paged.constraints p) in
      let buf = Buffer.create 4096 in
      let reply fill =
        Buffer.clear buf;
        fill buf;
        Sock.send_frame output (Buffer.contents buf)
      in
      let ok fill = reply (fun b -> Binfile.add_i64 b 0; fill b) in
      let err msg = reply (fun b -> Binfile.add_i64 b 1; Binfile.add_string b msg) in
      let running = ref true in
      while !running do
        match Sock.recv_frame input with
        | None -> running := false
        | Some frame -> (
          let c = Binfile.Cur.of_bytes frame in
          try
            match Binfile.Cur.i64 c with
            | op when op = op_hello ->
              ok (fun b ->
                  Binfile.add_i64 b meta.Shard.shard;
                  Binfile.add_i64 b meta.Shard.shards;
                  Binfile.add_i64 b (Paged.stamp p);
                  Binfile.add_i64 b (Paged.n_nodes p);
                  Binfile.add_i64 b meta.Shard.n_edges_global)
            | op when op = op_fetch ->
              let cid = Binfile.Cur.i64 c in
              if cid < 0 || cid >= Array.length cons then
                failwith (Printf.sprintf "unknown constraint id %d" cid);
              let con = cons.(cid) in
              let arity = Constr.arity con in
              let nkeys = Binfile.Cur.i64 c in
              if nkeys < 0 then failwith "negative key count";
              let keys = Array.init nkeys (fun _ -> Binfile.Cur.array c arity) in
              ok (fun b ->
                  Binfile.add_i64 b nkeys;
                  Array.iter
                    (fun tuple ->
                      let hits = src.Exec.lookup con (Array.to_list tuple) in
                      Binfile.add_i64 b (Array.length hits);
                      Binfile.add_array b hits)
                    keys)
            | op when op = op_probe ->
              let n = Binfile.Cur.i64 c in
              if n < 0 then failwith "negative pair count";
              let verdicts = Bytes.create n in
              for i = 0 to n - 1 do
                let s = Binfile.Cur.i64 c in
                let d = Binfile.Cur.i64 c in
                Bytes.set verdicts i (if src.Exec.probe_edge s d then '\001' else '\000')
              done;
              ok (fun b ->
                  Binfile.add_i64 b n;
                  Binfile.add_string b (Bytes.to_string verdicts))
            | op when op = op_nodes ->
              let n = Binfile.Cur.i64 c in
              if n < 0 then failwith "negative id count";
              let ids = Binfile.Cur.array c n in
              ok (fun b ->
                  Binfile.add_i64 b n;
                  let vb = Buffer.create 16 in
                  Array.iter
                    (fun v ->
                      Binfile.add_i64 b (src.Exec.node_label v);
                      Buffer.clear vb;
                      Graph_io.add_value_blob vb (src.Exec.node_value v);
                      Binfile.add_string b (Buffer.contents vb))
                    ids)
            | op when op = op_shutdown ->
              ok (fun _ -> ());
              running := false
            | op -> err (Printf.sprintf "unknown opcode %d" op)
          with
          | Sock.Frame_too_large _ as e -> raise e
          | e when Sock.is_disconnect e -> raise e
          | e -> err (Printexc.to_string e))
      done)

(* ---------------- coordinator side ---------------- *)

type conn = { fd : Unix.file_descr; pid : int option }

type t = {
  m : Shard.manifest;
  conns : conn array;  (* index = shard *)
  cons : Constr.t array;  (* manifest order = wire constraint ids *)
  cid_of : (Constr.t, int) Hashtbl.t;
  arity : int array;
  mutex : Mutex.t;
  (* (cid, native record) → bucket; refilled by each operation's
     prefetch, consulted by the per-key lookups that follow. *)
  buckets : (int * int array, int array) Hashtbl.t;
  (* node id → (label, value); warmed in batch after fetch rounds. *)
  attrs : (int, Label.t * Value.t) Hashtbl.t;
  messages : int array;
  bytes_sent : int array;
  bytes_received : int array;
  items : int array;
  mutable rounds : int;
  mutable closed : bool;
}

type stats = {
  shards : int;
  messages : int array;
  bytes_sent : int array;
  bytes_received : int array;
  items : int array;
  rounds : int;
}

let manifest t = t.m

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let died shard e = raise (Worker_died { shard; detail = Printexc.to_string e })

let send t shard payload =
  (try Sock.send_frame t.conns.(shard).fd payload
   with e when Sock.is_disconnect e -> died shard e);
  t.messages.(shard) <- t.messages.(shard) + 1;
  t.bytes_sent.(shard) <- t.bytes_sent.(shard) + String.length payload + 8

let recv t shard =
  let frame =
    try Sock.recv_frame t.conns.(shard).fd with e when Sock.is_disconnect e -> died shard e
  in
  match frame with
  | None -> died shard End_of_file
  | Some b ->
    t.bytes_received.(shard) <- t.bytes_received.(shard) + Bytes.length b + 8;
    b

let open_reply shard b =
  let c = Binfile.Cur.of_bytes b in
  (match Binfile.Cur.i64 c with
  | 0 -> ()
  | 1 -> failwith (Printf.sprintf "shard %d worker: %s" shard (Binfile.Cur.str c))
  | s -> corrupt "shard %d: unknown reply status %d" shard s);
  c

(* One superstep: every request frame goes out before any reply is
   read, so the workers compute in parallel and the round costs one
   straggler, not a sum. *)
let round t reqs =
  List.iter (fun (shard, payload) -> send t shard payload) reqs;
  let replies = List.map (fun (shard, _) -> (shard, open_reply shard (recv t shard))) reqs in
  if reqs <> [] then t.rounds <- t.rounds + 1;
  replies

let frame fill =
  let b = Buffer.create 256 in
  fill b;
  Buffer.contents b

(* The native key record for a raw anchor-order tuple — must match what
   [Shard.partition] hashed ({!Index.export_buckets} form), which is
   also what the worker's paged lookup searches for. *)
let native_record ~arity (tuple : int array) =
  if Array.length tuple <> arity then None
  else
    match arity with
    | 0 -> Some [| 0 |]
    | 1 -> Some [| tuple.(0) |]
    | 2 -> Some [| Index.pack2 tuple.(0) tuple.(1) |]
    | _ ->
      let copy = Array.copy tuple in
      Array.sort Int.compare copy;
      Some copy

let record_of_list ~arity vs =
  if List.length vs <> arity then None else Some (Array.of_list vs)

(* Retention is an optimisation only — correctness never depends on a
   cache hit — so a hard cap with wholesale reset is enough. *)
let max_cached_attrs = 2_000_000
let max_prefetch_keys = 65_536

let decode_value_str s =
  Graph_io.decode_value (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

(* Batch-resolve the attributes of every id the last fetch round
   returned: one nodes frame per owning shard, one more superstep. *)
let warm_attrs t ids =
  let fresh = List.filter (fun v -> not (Hashtbl.mem t.attrs v)) ids in
  if fresh <> [] then begin
    if Hashtbl.length t.attrs > max_cached_attrs then Hashtbl.reset t.attrs;
    let per_shard = Array.make t.m.Shard.shards [] in
    List.iter
      (fun v ->
        let s = Shard.owner_of_node ~shards:t.m.Shard.shards v in
        per_shard.(s) <- v :: per_shard.(s))
      fresh;
    let reqs = ref [] in
    Array.iteri
      (fun s ids ->
        if ids <> [] then begin
          let ids = Array.of_list ids in
          let payload =
            frame (fun b ->
                Binfile.add_i64 b op_nodes;
                Binfile.add_i64 b (Array.length ids);
                Binfile.add_array b ids)
          in
          reqs := (s, payload) :: (!reqs);
          per_shard.(s) <- Array.to_list ids (* keep request order for decode *)
        end)
      per_shard;
    let replies = round t (!reqs) in
    List.iter
      (fun (shard, c) ->
        let n = Binfile.Cur.i64 c in
        let sent = per_shard.(shard) in
        if n <> List.length sent then corrupt "shard %d: nodes reply length mismatch" shard;
        List.iter
          (fun v ->
            let label = Binfile.Cur.i64 c in
            let value = decode_value_str (Binfile.Cur.str c) in
            t.items.(shard) <- t.items.(shard) + 1;
            Hashtbl.replace t.attrs v (label, value))
          sent)
      replies
  end

let node_attrs t v =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.attrs v with
      | Some a -> a
      | None ->
        warm_attrs t [ v ];
        (match Hashtbl.find_opt t.attrs v with
        | Some a -> a
        | None -> corrupt "shard reply missing node %d" v))

let cid_of t con =
  match Hashtbl.find_opt t.cid_of con with
  | Some cid -> cid
  | None -> raise Not_found (* like Schema.index_of / Paged on unknown constraints *)

(* Resolve one key right now (prefetch miss or un-prefetched path):
   its own one-frame round to the owning shard. *)
let fetch_single t cid record tuple =
  let shard = Shard.owner_of_key ~shards:t.m.Shard.shards ~cid record in
  let payload =
    frame (fun b ->
        Binfile.add_i64 b op_fetch;
        Binfile.add_i64 b cid;
        Binfile.add_i64 b 1;
        Binfile.add_array b tuple)
  in
  match round t [ (shard, payload) ] with
  | [ (_, c) ] ->
    let n = Binfile.Cur.i64 c in
    if n <> 1 then corrupt "shard %d: fetch reply length mismatch" shard;
    let len = Binfile.Cur.i64 c in
    if len < 0 then corrupt "shard %d: negative bucket length" shard;
    let hits = Binfile.Cur.array c len in
    t.items.(shard) <- t.items.(shard) + len;
    Hashtbl.replace t.buckets (cid, record) hits;
    hits
  | _ -> assert false

let lookup_record t cid record tuple =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.buckets (cid, record) with
      | Some hits -> hits
      | None -> fetch_single t cid record tuple)

(* The executor announces each plan operation's whole key set (the
   cartesian product of the anchor candidate rows) before looking any
   key up: resolve the distinct keys in one fetch round — one frame per
   owning shard — then warm the attribute cache for everything that
   came back in one nodes round. *)
let do_prefetch t con arrays =
  match Hashtbl.find_opt t.cid_of con with
  | None -> () (* the lookups that follow will raise Not_found *)
  | Some cid ->
    let arity = t.arity.(cid) in
    if Array.length arrays = arity then begin
      let total =
        Array.fold_left
          (fun acc row ->
            let n = Array.length row in
            if acc = 0 || n = 0 then 0
            else if acc > max_prefetch_keys then acc
            else acc * n)
          1 arrays
      in
      if total > 0 && total <= max_prefetch_keys then
        with_lock t (fun () ->
            Hashtbl.reset t.buckets;
            let shards = t.m.Shard.shards in
            let pending = Array.make shards [] in
            let seen = Hashtbl.create 64 in
            let anchors = List.init arity (fun i -> ((), i)) in
            Exec.iter_tuples arrays anchors (fun tuple ->
                match native_record ~arity tuple with
                | None -> ()
                | Some record ->
                  if not (Hashtbl.mem seen record) then begin
                    Hashtbl.add seen record ();
                    let s = Shard.owner_of_key ~shards ~cid record in
                    pending.(s) <- (record, Array.copy tuple) :: pending.(s)
                  end);
            let reqs = ref [] in
            Array.iteri
              (fun s keys ->
                if keys <> [] then begin
                  let keys = List.rev keys in
                  pending.(s) <- keys;
                  let payload =
                    frame (fun b ->
                        Binfile.add_i64 b op_fetch;
                        Binfile.add_i64 b cid;
                        Binfile.add_i64 b (List.length keys);
                        List.iter (fun (_, tuple) -> Binfile.add_array b tuple) keys)
                  in
                  reqs := (s, payload) :: (!reqs)
                end)
              pending;
            let replies = round t (!reqs) in
            let returned = ref [] in
            List.iter
              (fun (shard, c) ->
                let n = Binfile.Cur.i64 c in
                let sent = pending.(shard) in
                if n <> List.length sent then
                  corrupt "shard %d: fetch reply length mismatch" shard;
                List.iter
                  (fun (record, _) ->
                    let len = Binfile.Cur.i64 c in
                    if len < 0 then corrupt "shard %d: negative bucket length" shard;
                    let hits = Binfile.Cur.array c len in
                    t.items.(shard) <- t.items.(shard) + len;
                    Hashtbl.replace t.buckets (cid, record) hits;
                    Array.iter (fun v -> returned := v :: (!returned)) hits)
                  sent)
              replies;
            warm_attrs t (!returned))
    end

let probe_many t pairs =
  with_lock t (fun () ->
      let n = Array.length pairs in
      let verdicts = Array.make n false in
      let shards = t.m.Shard.shards in
      let pending = Array.make shards [] in
      Array.iteri
        (fun i (s, _) ->
          let owner = Shard.owner_of_node ~shards s in
          pending.(owner) <- i :: pending.(owner))
        pairs;
      let reqs = ref [] in
      Array.iteri
        (fun shard idxs ->
          if idxs <> [] then begin
            let idxs = List.rev idxs in
            pending.(shard) <- idxs;
            let payload =
              frame (fun b ->
                  Binfile.add_i64 b op_probe;
                  Binfile.add_i64 b (List.length idxs);
                  List.iter
                    (fun i ->
                      let s, d = pairs.(i) in
                      Binfile.add_i64 b s;
                      Binfile.add_i64 b d)
                    idxs)
            in
            reqs := (shard, payload) :: (!reqs)
          end)
        pending;
      let replies = round t (!reqs) in
      List.iter
        (fun (shard, c) ->
          let m = Binfile.Cur.i64 c in
          let sent = pending.(shard) in
          if m <> List.length sent then corrupt "shard %d: probe reply length mismatch" shard;
          let bits = Binfile.Cur.str c in
          if String.length bits <> m then corrupt "shard %d: probe verdict length mismatch" shard;
          t.items.(shard) <- t.items.(shard) + m;
          List.iteri (fun j i -> verdicts.(i) <- bits.[j] = '\001') sent)
        replies;
      verdicts)

let source t =
  let lookup_tuple con tuple =
    let cid = cid_of t con in
    match native_record ~arity:t.arity.(cid) tuple with
    | None -> [||]
    | Some record -> lookup_record t cid record tuple
  in
  { Exec.lookup =
      (fun con key ->
        let cid = cid_of t con in
        match record_of_list ~arity:t.arity.(cid) key with
        | None -> [||]
        | Some tuple -> (
          match native_record ~arity:t.arity.(cid) tuple with
          | None -> [||]
          | Some record -> lookup_record t cid record tuple));
    lookup_iter =
      (* Materialise under the lock, then stream: executor callbacks
         read node attributes mid-iteration, which must not deadlock on
         the coordinator's mutex. *)
      (fun con tuple f -> Array.iter f (lookup_tuple con tuple));
    probe_edge = (fun s d -> (probe_many t [| (s, d) |]).(0));
    probe_edges = Some (fun pairs -> probe_many t pairs);
    prefetch = Some (fun con arrays -> do_prefetch t con arrays);
    node_label = (fun v -> fst (node_attrs t v));
    node_value = (fun v -> snd (node_attrs t v));
    table = t.m.Shard.table;
    constraints = t.m.Shard.constraints;
    stamp = t.m.Shard.stamp;
    graph_size = t.m.Shard.n_nodes + t.m.Shard.n_edges }

(* ---------------- lifecycle ---------------- *)

let hello_frame = frame (fun b -> Binfile.add_i64 b op_hello)
let shutdown_frame = frame (fun b -> Binfile.add_i64 b op_shutdown)

(* Identify each connection by its hello reply and arrange them into
   shard order, insisting on exactly the manifest's partition. *)
let handshake (m : Shard.manifest) conns =
  if Array.length conns <> m.Shard.shards then
    failwith
      (Printf.sprintf "expected %d worker connections, got %d" m.Shard.shards
         (Array.length conns));
  let slots = Array.make m.Shard.shards None in
  Array.iter
    (fun conn ->
      let reply =
        try
          Sock.send_frame conn.fd hello_frame;
          Sock.recv_frame conn.fd
        with e when Sock.is_disconnect e ->
          failwith "worker died during the hello exchange (did it open its shard file?)"
      in
      match reply with
      | None -> failwith "worker closed its connection during the hello exchange"
      | Some b ->
        let c = open_reply (-1) b in
        let shard = Binfile.Cur.i64 c in
        let shards = Binfile.Cur.i64 c in
        let stamp = Binfile.Cur.i64 c in
        let n_nodes = Binfile.Cur.i64 c in
        let n_edges = Binfile.Cur.i64 c in
        if shards <> m.Shard.shards then
          failwith
            (Printf.sprintf "worker partitioned %d ways, manifest says %d" shards
               m.Shard.shards);
        if stamp <> m.Shard.stamp then failwith "worker serves a different schema lineage";
        if n_nodes <> m.Shard.n_nodes || n_edges <> m.Shard.n_edges then
          failwith "worker serves a different graph";
        if shard < 0 || shard >= m.Shard.shards then failwith "worker reports an alien shard";
        if slots.(shard) <> None then
          failwith (Printf.sprintf "two workers both serve shard %d" shard);
        slots.(shard) <- Some conn)
    conns;
  Array.map (function Some c -> c | None -> assert false) slots

let create m conns =
  (* A dead worker must surface as {!Worker_died} via EPIPE, never as a
     process-killing SIGPIPE. *)
  Sock.ignore_sigpipe ();
  let conns = handshake m conns in
  let cons = Array.of_list m.Shard.constraints in
  let cid_of = Hashtbl.create 16 in
  Array.iteri (fun i c -> Hashtbl.replace cid_of c i) cons;
  let shards = m.Shard.shards in
  { m;
    conns;
    cons;
    cid_of;
    arity = Array.map Constr.arity cons;
    mutex = Mutex.create ();
    buckets = Hashtbl.create 256;
    attrs = Hashtbl.create 1024;
    messages = Array.make shards 0;
    bytes_sent = Array.make shards 0;
    bytes_received = Array.make shards 0;
    items = Array.make shards 0;
    rounds = 0;
    closed = false }

let attach m fds = create m (Array.map (fun fd -> { fd; pid = None }) fds)

let spawn ?argv (m : Shard.manifest) =
  let argv =
    match argv with
    | Some f -> f
    | None -> fun ~shard_file -> [| Sys.executable_name; "worker"; shard_file |]
  in
  let conns =
    Array.map
      (fun (f : Shard.shard_file) ->
        let shard_file = Filename.concat m.Shard.dir f.file in
        let parent, child = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.set_close_on_exec parent;
        let av = argv ~shard_file in
        let pid = Unix.create_process av.(0) av child child Unix.stderr in
        Unix.close child;
        { fd = parent; pid = Some pid })
      m.Shard.files
  in
  try create m conns
  with e ->
    Array.iter
      (fun c ->
        (try Unix.close c.fd with Unix.Unix_error _ -> ());
        match c.pid with
        | Some pid -> ( try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        | None -> ())
      conns;
    raise e

let close t =
  with_lock t (fun () ->
      if not t.closed then begin
        t.closed <- true;
        Array.iter
          (fun c ->
            (try
               Sock.send_frame c.fd shutdown_frame;
               ignore (Sock.recv_frame c.fd)
             with _ -> ());
            (try Unix.close c.fd with Unix.Unix_error _ -> ());
            match c.pid with
            | Some pid -> ( try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
            | None -> ())
          t.conns
      end)

(* ---------------- accounting ---------------- *)

let stats t =
  with_lock t (fun () ->
      { shards = t.m.Shard.shards;
        messages = Array.copy t.messages;
        bytes_sent = Array.copy t.bytes_sent;
        bytes_received = Array.copy t.bytes_received;
        items = Array.copy t.items;
        rounds = t.rounds })

let reset_stats t =
  with_lock t (fun () ->
      Array.fill t.messages 0 (Array.length t.messages) 0;
      Array.fill t.bytes_sent 0 (Array.length t.bytes_sent) 0;
      Array.fill t.bytes_received 0 (Array.length t.bytes_received) 0;
      Array.fill t.items 0 (Array.length t.items) 0;
      t.rounds <- 0)

let traffic (s : stats) =
  let sum = Array.fold_left ( + ) 0 in
  (sum s.messages, sum s.bytes_sent + sum s.bytes_received)
