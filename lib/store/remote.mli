(** Multi-process sharded execution: worker processes each serving one
    {!Shard} file over a framed binary protocol, and a coordinator that
    drives {!Bpq_core.Exec} plans against them.

    The coordinator is an {!Bpq_core.Exec.source} whose lookups, edge
    probes and attribute reads travel to the owning worker
    ({!Shard.owner_of_key} / {!Shard.owner_of_node}).  Per-operation
    batching keeps the traffic |Q|-bounded {e in round trips} as well as
    bytes: the executor's [prefetch] hook resolves a plan operation's
    whole key set in one fetch round (one request frame per
    participating shard, all sent before any reply is read), a nodes
    round warms the attribute cache for every id those fetches returned,
    and the [probe_edges] hook verifies an edge operation's distinct
    candidate pairs in one probe round.  Answers are byte-identical to
    the single-process backends: workers serve the same sorted buckets
    ({!Paged} over a shard file), and batching only moves {e when} a
    lookup happens, never what it returns.

    Frames are {!Bpq_util.Sock} binary frames; payloads are sequences of
    8-byte little-endian integers and length-prefixed strings
    ({!Bpq_graph.Binfile} helpers).  Every request opens with an opcode:
    hello (1), fetch (2), probe (3), nodes (4), shutdown (5).  Replies
    open with a status — 0 then the result, or 1 then an error string.

    A coordinator may serve several pool domains concurrently: one
    mutex guards the connections, and every operation materialises its
    answer under the lock before yielding to caller callbacks. *)

open Bpq_core

exception Worker_died of { shard : int; detail : string }
(** A worker's connection broke mid-conversation (EOF, [EPIPE],
    [ECONNRESET]): surfaced as this typed error, never as a hang or a
    bare [End_of_file]. *)

(** {1 Worker side} *)

val serve :
  ?page_cache_mb:int -> input:Unix.file_descr -> output:Unix.file_descr -> string -> unit
(** [serve ~input ~output shard_file] opens the shard with {!Paged} and
    answers requests from [input] on [output] until a shutdown request
    or EOF, then closes the store.  Per-request failures (unknown
    constraint, malformed body) are answered with error replies; only
    transport failures escape.  Never writes to any other descriptor, so
    a worker inheriting its socket as stdin/stdout keeps stdout clean.
    @raise Binfile.Corrupt if [shard_file] is not a shard file of this
    build's partition version. *)

(** {1 Coordinator side} *)

type t

val attach : Shard.manifest -> Unix.file_descr array -> t
(** Adopt already-connected worker sockets (one per shard, any order —
    the hello exchange identifies and arranges them).  Fails
    ([Failure]) unless the workers are exactly the manifest's shards:
    same count, same stamp, same global sizes, each shard exactly once.
    The coordinator owns the descriptors from here on. *)

val spawn : ?argv:(shard_file:string -> string array) -> Shard.manifest -> t
(** Fork one worker process per shard, connected over a socketpair
    inherited as the child's stdin/stdout, then {!attach}.  [argv]
    builds a worker command line from a shard-file path; the default is
    [[| Sys.executable_name; "worker"; shard_file |]], which is right
    when the calling executable is [bpq] itself. *)

val close : t -> unit
(** Send every worker a shutdown request, close the connections, and
    reap spawned children.  Best-effort and idempotent: a worker that
    already died does not prevent the others from being released. *)

val manifest : t -> Shard.manifest

val source : t -> Exec.source
(** The query-serving interface, with [prefetch] and [probe_edges]
    batching enabled.  Byte-identical answers to the in-memory and
    paged backends; unknown constraints raise [Not_found] and
    wrong-arity keys find nothing, like both.
    @raise Worker_died if a worker's connection breaks. *)

(** {1 Traffic accounting} *)

type stats = {
  shards : int;
  messages : int array;  (** Request frames sent, per shard. *)
  bytes_sent : int array;  (** Request bytes (payload + header), per shard. *)
  bytes_received : int array;  (** Reply bytes (payload + header), per shard. *)
  items : int array;
      (** Result items decoded per shard: index hits, probe verdicts,
          node attribute records. *)
  rounds : int;
      (** Batched rounds (supersteps): groups of frames sent together
          before any reply is read.  Round trips per query is this,
          O(plan operations) — not O(lookups). *)
}

val stats : t -> stats
(** Cumulative since creation or the last {!reset_stats}; arrays are
    fresh copies. *)

val reset_stats : t -> unit

val traffic : stats -> int * int
(** Total [(messages, bytes)] over all shards, bytes in both
    directions. *)
