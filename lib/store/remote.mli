(** Multi-process sharded execution: worker processes each serving one
    {!Shard} file over a framed binary protocol, and a coordinator that
    drives {!Bpq_core.Exec} plans against them.

    The coordinator is an {!Bpq_core.Exec.source} whose lookups, edge
    probes and attribute reads travel to the owning worker
    ({!Shard.owner_of_key} / {!Shard.owner_of_node}).  Per-operation
    batching keeps the traffic |Q|-bounded {e in round trips} as well as
    bytes: the executor's [prefetch] hook resolves a plan operation's
    whole key set in one fetch round (one request frame per
    participating shard, all sent before any reply is read), a nodes
    round warms the attribute cache for every id those fetches returned,
    and the [probe_edges] hook verifies an edge operation's distinct
    candidate pairs in one probe round.  Answers are byte-identical to
    the single-process backends: workers serve the same sorted buckets
    ({!Paged} over a shard file), and batching only moves {e when} a
    lookup happens, never what it returns.

    {b Worker-side pushdown} (the default) moves whole plan operations
    to the shards instead of shipping raw buckets: an [exec_fetch]
    request carries a fetch operation's tuples plus its predicate, and
    the key-owning workers stream their buckets locally, apply the
    predicate to hits whose node values they own, and return only the
    surviving ids (foreign hits resolve in one extra [filter] round at
    their node owners — shard files store values for owned nodes only).
    A [semijoin] request carries an edge operation's tuples plus the
    target candidate row, and workers return only the candidate pairs
    that survive the row-membership test; the coordinator still
    direction-probes them.  G_Q's node attributes warm in one final
    nodes round over exactly the result's node set.  Operations the
    coordinator can't push (unknown constraint, arity mismatch,
    saturated or oversized tuple sets) fall back to the batched-fetch
    protocol; answers, executor stats and traces are byte-identical
    either way (pushed replies carry the counters the local loop would
    have produced).

    Frames are {!Bpq_util.Sock} binary frames; payloads are sequences of
    8-byte little-endian integers and length-prefixed strings
    ({!Bpq_graph.Binfile} helpers).  Every request opens with an opcode:
    hello (1), fetch (2), probe (3), nodes (4), shutdown (5),
    exec_fetch (6), filter (7), semijoin (8), probe2 (9), nodes2 (10).
    Ops 6-10 — the pushdown path — carry varint payloads (LEB128
    lengths, sorted-delta id arrays, zigzag tuple streams); ops 2-4
    keep the raw-i64 encoding as the batched baseline.  Replies open
    with a status — 0 then the result, 1 then an error string, or 2
    (stale plan stamp) then the worker's stamp and the request's
    stamp.

    A coordinator may serve several pool domains concurrently: one
    mutex guards the connections, and every operation materialises its
    answer under the lock before yielding to caller callbacks. *)

open Bpq_core

exception Worker_died of { shard : int; detail : string }
(** A worker's connection broke mid-conversation (EOF, [EPIPE],
    [ECONNRESET]): surfaced as this typed error, never as a hang or a
    bare [End_of_file]. *)

exception Stale_plan of { shard : int; worker_stamp : int; plan_stamp : int }
(** A worker rejected a pushed plan operation because the schema stamp
    the plan was built for is not the stamp its shard serves — e.g. a
    coordinator replaying a cached plan across a snapshot reload.
    Typed so callers can replan rather than fail. *)

(** {1 Worker side} *)

val serve :
  ?page_cache_mb:int -> input:Unix.file_descr -> output:Unix.file_descr -> string -> unit
(** [serve ~input ~output shard_file] opens the shard with {!Paged} and
    answers requests from [input] on [output] until a shutdown request
    or EOF, then closes the store.  Per-request failures (unknown
    constraint, malformed body) are answered with error replies; only
    transport failures escape.  Never writes to any other descriptor, so
    a worker inheriting its socket as stdin/stdout keeps stdout clean.
    @raise Binfile.Corrupt if [shard_file] is not a shard file of this
    build's partition version. *)

(** {1 Coordinator side} *)

type t

val attach : Shard.manifest -> Unix.file_descr array -> t
(** Adopt already-connected worker sockets (one per shard, any order —
    the hello exchange identifies and arranges them).  Fails
    ([Failure]) unless the workers are exactly the manifest's shards:
    same count, same stamp, same global sizes, each shard exactly once.
    The coordinator owns the descriptors from here on. *)

val spawn : ?argv:(shard_file:string -> string array) -> Shard.manifest -> t
(** Fork one worker process per shard, connected over a socketpair
    inherited as the child's stdin/stdout, then {!attach}.  [argv]
    builds a worker command line from a shard-file path; the default is
    [[| Sys.executable_name; "worker"; shard_file |]], which is right
    when the calling executable is [bpq] itself. *)

val close : t -> unit
(** Send every worker a shutdown request, close the connections, and
    reap spawned children: each child is polled with [WNOHANG] for up
    to two seconds, then killed ([SIGKILL]) and collected, so repeated
    sharded runs never accumulate zombies and a wedged worker cannot
    hang the coordinator.  Best-effort and idempotent: a worker that
    already died does not prevent the others from being released. *)

val manifest : t -> Shard.manifest

val source : ?pushdown:bool -> t -> Exec.source
(** The query-serving interface, with [prefetch] and [probe_edges]
    batching enabled.  Byte-identical answers to the in-memory and
    paged backends; unknown constraints raise [Not_found] and
    wrong-arity keys find nothing, like both.

    [pushdown] (default [true]) additionally enables the [push_fetch] /
    [push_semijoin] / [warm_nodes] hooks, evaluating pushable plan
    operations shard-side; [false] reproduces the batched-fetch
    protocol exactly.  Answers, stats and traces are byte-identical
    either way (trace [pushed] flags excepted).
    @raise Worker_died if a worker's connection breaks.
    @raise Stale_plan if a worker rejects a pushed operation's stamp. *)

(** {1 Traffic accounting} *)

type stats = {
  shards : int;
  messages : int array;  (** Request frames sent, per shard. *)
  bytes_sent : int array;  (** Request bytes (payload + header), per shard. *)
  bytes_received : int array;  (** Reply bytes (payload + header), per shard. *)
  items : int array;
      (** Result items decoded per shard: index hits, probe verdicts,
          node attribute records, pushed-operation result ids/pairs. *)
  server_ns : int array;
      (** Worker-reported evaluation time (nanoseconds) spent answering
          this coordinator's pushed operations, per shard — attributes
          coordinator-vs-worker time in [--io-stats] and EXPLAIN. *)
  rounds : int;
      (** Batched rounds (supersteps): groups of frames sent together
          before any reply is read.  Round trips per query is this,
          O(plan operations) — not O(lookups). *)
}

val stats : t -> stats
(** Cumulative since creation or the last {!reset_stats}; arrays are
    fresh copies. *)

val reset_stats : t -> unit

val traffic : stats -> int * int
(** Total [(messages, bytes)] over all shards, bytes in both
    directions. *)

(**/**)

val probe_plan_stamp : t -> int -> unit
(** Send shard 0 a zero-id filter request claiming the given plan
    stamp — exercises the worker's stamp validation without a plan.
    @raise Stale_plan on mismatch.  Exposed for tests. *)
