(** Unified storage-engine handle: one value that can back query serving
    from either a fully in-memory schema or an out-of-core paged
    snapshot, behind the {!Bpq_core.Exec.source} seam.

    Everything downstream of planning ({!Bpq_core.Exec.run_with},
    {!Bpq_core.Bounded_eval.run}, {!Bpq_core.Qcache}, {!Bpq_core.Batch},
    {!Bpq_core.Distributed}) consumes the source, so backends are
    interchangeable: results are byte-identical for the same snapshot
    (pinned by the store test suite), only memory footprint and I/O
    behaviour differ. *)

open Bpq_graph
open Bpq_access
open Bpq_core

type backend =
  | Mem  (** Load the snapshot fully: rebuilt graph + indexes. *)
  | Paged  (** Serve from the file through a page cache ({!Paged}). *)

type t

val of_schema : ?selectivity:Gstats.selectivity -> Schema.t -> t
(** Wrap an already-built in-memory schema (no snapshot involved). *)

val open_snapshot :
  ?backend:backend ->
  ?page_cache_mb:int ->
  ?cache_pages:int ->
  ?readahead:int ->
  ?verify:bool ->
  string ->
  t
(** Open a {!Bpq_access.Schema.save} snapshot.  [backend] defaults to
    [Mem].  [page_cache_mb] / [cache_pages] size the paged backend's
    cache and [readahead] its sequential prefetch depth ({!Paged.open_};
    all ignored under [Mem]).  [verify] (default [false]) forces a full
    checksum pass even for the paged backend — [Mem] always verifies,
    since it reads the whole file anyway.
    @raise Binfile.Corrupt on malformed or damaged snapshots. *)

val backend : t -> backend

val source : t -> Exec.source
(** The query-serving interface; identical answers whichever backend. *)

val table : t -> Label.table
val constraints : t -> Constr.t list
val stamp : t -> int
val graph_size : t -> int

val selectivity : t -> Gstats.selectivity option
(** Stored statistics (for {!Bpq_core.Costs}), when available. *)

val schema : t -> Schema.t option
(** The in-memory schema — [None] for the paged backend, whose whole
    point is not materialising one. *)

val io_counters : t -> Paged.io_counters option
(** Page-cache counters — [None] for in-memory backends. *)

val reset_io : t -> unit
val drop_cache : t -> unit
(** No-ops for in-memory backends. *)

val close : t -> unit
(** Release the file handle (paged); no-op for in-memory backends. *)
