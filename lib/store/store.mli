(** Unified storage-engine handle: one value that can back query serving
    from either a fully in-memory schema or an out-of-core paged
    snapshot, behind the {!Bpq_core.Exec.source} seam.

    Everything downstream of planning ({!Bpq_core.Exec.run_with},
    {!Bpq_core.Bounded_eval.run}, {!Bpq_core.Qcache}, {!Bpq_core.Batch},
    {!Bpq_core.Distributed}) consumes the source, so backends are
    interchangeable: results are byte-identical for the same snapshot
    (pinned by the store test suite), only memory footprint and I/O
    behaviour differ. *)

open Bpq_graph
open Bpq_access
open Bpq_core

type backend =
  | Mem  (** Load the snapshot fully: rebuilt graph + indexes. *)
  | Paged  (** Serve from the file through a page cache ({!Paged}). *)
  | Sharded
      (** Serve from a {!Shard} directory through spawned worker
          processes ({!Remote}). *)

type t

val of_schema : ?selectivity:Gstats.selectivity -> Schema.t -> t
(** Wrap an already-built in-memory schema (no snapshot involved). *)

val of_remote : ?path:string -> ?pushdown:bool -> Remote.t -> t
(** Wrap an already-connected sharded coordinator (e.g. one attached to
    externally started workers); {!close} will shut its workers down.
    [path] names the shard directory the coordinator serves — required
    if a delta log is to be attached, since the log pairs with the
    MANIFEST checksum.  [pushdown] (default [true]) selects worker-side
    plan evaluation ({!Remote.source}). *)

val open_snapshot :
  ?backend:backend ->
  ?page_cache_mb:int ->
  ?cache_pages:int ->
  ?readahead:int ->
  ?verify:bool ->
  ?pushdown:bool ->
  string ->
  t
(** Open a {!Bpq_access.Schema.save} snapshot.  [backend] defaults to
    [Mem].  [page_cache_mb] / [cache_pages] size the paged backend's
    cache and [readahead] its sequential prefetch depth ({!Paged.open_};
    all ignored under [Mem]).  [verify] (default [false]) forces a full
    checksum pass even for the paged backend — [Mem] always verifies,
    since it reads the whole file anyway.

    Under [Sharded] the path names a {!Shard.partition} output directory
    (or its [MANIFEST]); one worker process per shard is spawned via
    {!Remote.spawn}, [verify] checks every shard file's checksum against
    the manifest first, and [pushdown] (default [true]) selects
    worker-side plan evaluation over plain batched fetching.
    @raise Binfile.Corrupt on malformed or damaged snapshots. *)

val backend : t -> backend

val source : t -> Exec.source
(** The query-serving interface; identical answers whichever backend. *)

val table : t -> Label.table
val constraints : t -> Constr.t list
val stamp : t -> int
val graph_size : t -> int

val selectivity : t -> Gstats.selectivity option
(** Stored statistics (for {!Bpq_core.Costs}), when available. *)

val schema : t -> Schema.t option
(** The in-memory schema — [None] for the paged backend, whose whole
    point is not materialising one. *)

val io_counters : t -> Paged.io_counters option
(** Page-cache counters — [None] for in-memory and sharded backends. *)

val remote : t -> Remote.t option
(** The sharded coordinator behind this store — [None] for the
    single-process backends.  {!Remote.stats} reports its per-shard
    traffic. *)

val reset_io : t -> unit
(** Zero the paged backend's I/O counters or the sharded backend's
    traffic counters; no-op in memory. *)

val drop_cache : t -> unit
(** No-ops for in-memory and sharded backends. *)

val close : t -> unit
(** Release the file handle (paged) or shut the workers down (sharded),
    closing the attached delta log first if any; no-op for in-memory
    backends. *)

(** {1 The write path}

    A snapshot-backed store (any backend, sharded included) can attach a
    write-ahead delta log ({!Wal}): the log's surviving records replay
    into an in-memory {!Overlay} at attach time, {!source} then serves
    the read-through view (overlay ∪ base), and {!apply_ops} validates,
    logs and applies new batches.  {!compact} folds the log into a fresh
    snapshot generation.

    Thread discipline: {!apply_ops} and {!compact} serialise on an
    internal mutex and may race concurrent readers safely — each call to
    {!source} captures the overlay value of that moment, and overlay
    values are immutable, so an in-flight query keeps a frozen,
    consistent view across any number of writes behind it. *)

val attach_wal : ?carry:Overlay.t -> t -> string -> int
(** [attach_wal t path] opens (creating if absent) the delta log at
    [path], pairing it with this store's snapshot generation (content
    checksum + schema stamp — a log written against another generation
    or schema is refused with a one-line [Failure]), replays its records
    into a fresh overlay, and returns the number of torn-tail bytes that
    recovery discarded (0 for a clean log).  [?carry] inherits per-label
    write generations from a pre-compaction overlay
    ({!Overlay.empty}). *)

val apply_ops : t -> Wal.op list -> (int, string) result
(** Validate the batch against the current combined state, append it to
    the log (one fsync'd write), and move the overlay forward.  [Error]
    is a one-line typed message; nothing is logged or applied then.
    Never partial: a bad op anywhere in the batch rejects the whole
    batch. *)

val compact : ?out:string -> t -> string
(** Fold base + log into one snapshot at [out] (default: over the
    store's own snapshot path, via the atomic temp+rename discipline)
    and return the written path.  The folded schema preserves the
    stamp, so plan caches keyed by it stay warm across the roll.  When
    compacting in place, the log is truncated to pair with the new
    generation and this handle stops accepting writes (it keeps serving
    its frozen pre-compaction view); reopen the snapshot and
    [attach_wal ~carry:(Option.get (overlay t))] to continue.
    @raise Failure (one line) for sharded and in-memory stores. *)

val wal : t -> Wal.t option
val overlay : t -> Overlay.t option
val overlay_counters : t -> Overlay.counter_snapshot option
(** Read-through observability: how lookups split between delegation,
    merges, masking and overlay-born additions. *)
