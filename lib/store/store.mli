(** Unified storage-engine handle: one value that can back query serving
    from either a fully in-memory schema or an out-of-core paged
    snapshot, behind the {!Bpq_core.Exec.source} seam.

    Everything downstream of planning ({!Bpq_core.Exec.run_with},
    {!Bpq_core.Bounded_eval.run}, {!Bpq_core.Qcache}, {!Bpq_core.Batch},
    {!Bpq_core.Distributed}) consumes the source, so backends are
    interchangeable: results are byte-identical for the same snapshot
    (pinned by the store test suite), only memory footprint and I/O
    behaviour differ. *)

open Bpq_graph
open Bpq_access
open Bpq_core

type backend =
  | Mem  (** Load the snapshot fully: rebuilt graph + indexes. *)
  | Paged  (** Serve from the file through a page cache ({!Paged}). *)
  | Sharded
      (** Serve from a {!Shard} directory through spawned worker
          processes ({!Remote}). *)

type t

val of_schema : ?selectivity:Gstats.selectivity -> Schema.t -> t
(** Wrap an already-built in-memory schema (no snapshot involved). *)

val of_remote : ?pushdown:bool -> Remote.t -> t
(** Wrap an already-connected sharded coordinator (e.g. one attached to
    externally started workers); {!close} will shut its workers down.
    [pushdown] (default [true]) selects worker-side plan evaluation
    ({!Remote.source}). *)

val open_snapshot :
  ?backend:backend ->
  ?page_cache_mb:int ->
  ?cache_pages:int ->
  ?readahead:int ->
  ?verify:bool ->
  ?pushdown:bool ->
  string ->
  t
(** Open a {!Bpq_access.Schema.save} snapshot.  [backend] defaults to
    [Mem].  [page_cache_mb] / [cache_pages] size the paged backend's
    cache and [readahead] its sequential prefetch depth ({!Paged.open_};
    all ignored under [Mem]).  [verify] (default [false]) forces a full
    checksum pass even for the paged backend — [Mem] always verifies,
    since it reads the whole file anyway.

    Under [Sharded] the path names a {!Shard.partition} output directory
    (or its [MANIFEST]); one worker process per shard is spawned via
    {!Remote.spawn}, [verify] checks every shard file's checksum against
    the manifest first, and [pushdown] (default [true]) selects
    worker-side plan evaluation over plain batched fetching.
    @raise Binfile.Corrupt on malformed or damaged snapshots. *)

val backend : t -> backend

val source : t -> Exec.source
(** The query-serving interface; identical answers whichever backend. *)

val table : t -> Label.table
val constraints : t -> Constr.t list
val stamp : t -> int
val graph_size : t -> int

val selectivity : t -> Gstats.selectivity option
(** Stored statistics (for {!Bpq_core.Costs}), when available. *)

val schema : t -> Schema.t option
(** The in-memory schema — [None] for the paged backend, whose whole
    point is not materialising one. *)

val io_counters : t -> Paged.io_counters option
(** Page-cache counters — [None] for in-memory and sharded backends. *)

val remote : t -> Remote.t option
(** The sharded coordinator behind this store — [None] for the
    single-process backends.  {!Remote.stats} reports its per-shard
    traffic. *)

val reset_io : t -> unit
(** Zero the paged backend's I/O counters or the sharded backend's
    traffic counters; no-op in memory. *)

val drop_cache : t -> unit
(** No-ops for in-memory and sharded backends. *)

val close : t -> unit
(** Release the file handle (paged) or shut the workers down (sharded);
    no-op for in-memory backends. *)
