(** Out-of-core snapshot store: serve {!Bpq_core.Exec.source} operations
    straight from a snapshot file through a fixed-budget page cache.

    A snapshot ({!Bpq_access.Schema.save}) lays every array out 8-aligned,
    so an i64 never spans two of the 4096-byte pages this store caches.
    Opening reads only the header, the directory, the label table, the
    selectivity stats and the per-constraint metadata — O(labels +
    constraints), not O(|G|); node attributes, adjacency and index
    buckets stay on disk and fault in page by page, with an LRU
    ({!Bpq_util.Lru}) bounding resident memory.  Index lookups
    binary-search the sorted on-disk key records ({!Bpq_access.Index.export_buckets}
    order) and stream payload buckets in stored order, so answers are
    byte-identical to the in-memory backend at every cache capacity —
    including a capacity of zero, where every access faults.

    A [t] may serve several pool domains concurrently: the file handle
    and the page cache sit behind one mutex, and every source operation
    materialises what it needs under the lock before yielding to caller
    callbacks (so callbacks may freely re-enter the store). *)

open Bpq_graph
open Bpq_access
open Bpq_core

type t

val page_size : int
(** The default page granularity, 4096 bytes. *)

val open_ :
  ?page_cache_mb:int -> ?cache_pages:int -> ?page_size:int -> ?readahead:int -> string -> t
(** [open_ path] validates the header and directory (not the checksum —
    run {!Bpq_graph.Binfile.verify} first for a full integrity pass) and
    loads the small metadata.  The page-cache budget is [page_cache_mb]
    megabytes (default 16); [cache_pages] overrides it with an exact page
    count — 0 is legal and makes every access a fault.  [page_size]
    (default {!page_size}) sets the fault granularity and must be a
    positive multiple of 8 — the container 8-aligns every array element,
    so an aligned i64 never spans a page at any such size.  [readahead]
    (default 8, 0 disables) prefetches that many further pages whenever a
    demand miss immediately follows an access to the preceding page — the
    signature of an index-payload or value-blob scan — trading a little
    extra sequential I/O for fewer faults on cold scans; prefetched pages
    are accounted separately ({!io_counters}).  I/O counters start at
    zero (open-time reads are not counted).
    @raise Binfile.Corrupt on malformed snapshots (including snapshots
    without a schema section — the paged store serves index lookups, so
    it needs the indexes).
    @raise Sys_error when the file cannot be opened.
    @raise Invalid_argument on a negative [readahead]. *)

val close : t -> unit
(** Close the file handle and drop the page cache.  Idempotent: a second
    [close] — e.g. a snapshot-reload path racing shutdown — is a no-op.
    Subsequent source operations raise [Sys_error "...: paged store is
    closed"] deterministically (cached pages are never served after
    close). *)

val source : t -> Exec.source
(** The query-serving interface.  Unknown constraints raise [Not_found]
    and wrong-arity keys find nothing, exactly like the in-memory
    {!Bpq_access.Schema.index_of} / {!Bpq_access.Index.lookup} pair. *)

val table : t -> Label.table
(** Fresh table holding the snapshot's labels in stored id order. *)

val constraints : t -> Constr.t list

val stamp : t -> int
(** The saved schema's stamp (registered with the process-wide supply on
    open, like {!Bpq_access.Schema.load}). *)

val n_nodes : t -> int
val n_edges : t -> int

val graph_size : t -> int
(** Nodes + edges, as {!Bpq_graph.Digraph.size}. *)

val selectivity : t -> Gstats.selectivity option
(** Stored selectivity statistics, if the snapshot carries them (loaded
    in memory at open — they are O(labels²)). *)

val page_size_of : t -> int
(** The page granularity this store was opened with. *)

(** {1 I/O accounting} *)

type io_counters = {
  faults : int;  (** Pages read from disk on demand (cache misses). *)
  bytes_read : int;  (** Bytes transferred, demand faults and prefetches. *)
  hits : int;  (** Page accesses served by the cache. *)
  prefetched : int;  (** Pages pulled in by sequential readahead. *)
}

val io_counters : t -> io_counters

val reset_io : t -> unit
(** Zero the counters (the cache keeps its contents). *)

val drop_cache : t -> unit
(** Evict every cached page — the next access faults, as after a cold
    start.  Counters are kept. *)
