open Bpq_graph

type atom = { op : Value.op; const : Value.t }
type t = atom list

let true_ = []
let atom op const = [ { op; const } ]
let conj a b = a @ b
let eval p v = List.for_all (fun a -> Value.test a.op v a.const) p
let arity = List.length

let atom_to_string a = Value.op_to_string a.op ^ " " ^ Value.to_string a.const
let to_string p = String.concat " & " (List.map atom_to_string p)

let norm p = List.sort compare p
let equal a b = norm a = norm b

(* Distinct integer values admitted by the conjunction; [None] when the
   atoms leave the range open.  All arithmetic saturates: [> max_int] and
   [< min_int] are unsatisfiable (cap 0) rather than wrapping, and the
   width of a range wider than [max_int] values saturates to [max_int]. *)
let value_cap (p : t) =
  let lo = ref None and hi = ref None and has_eq = ref false and unsat = ref false in
  let tighten_lo v = lo := Some (match !lo with None -> v | Some x -> max x v) in
  let tighten_hi v = hi := Some (match !hi with None -> v | Some x -> min x v) in
  List.iter
    (fun (a : atom) ->
      match (a.op, a.const) with
      | Value.Eq, _ -> has_eq := true
      | Value.Ge, Value.Int c -> tighten_lo c
      | Value.Gt, Value.Int c -> if c = max_int then unsat := true else tighten_lo (c + 1)
      | Value.Le, Value.Int c -> tighten_hi c
      | Value.Lt, Value.Int c -> if c = min_int then unsat := true else tighten_hi (c - 1)
      | (Value.Ge | Value.Gt | Value.Le | Value.Lt), (Value.Null | Value.Str _) -> ())
    p;
  if !unsat then Some 0
  else if !has_eq then Some 1
  else
    match (!lo, !hi) with
    | Some l, Some h ->
      if l > h then Some 0
      else
        (* [h - l] overflows only when [l < 0 && h > max_int + l]
           (note [max_int + l] cannot itself overflow since [l < 0]). *)
        let width = if l < 0 && h > max_int + l then max_int else h - l in
        Some (if width = max_int then max_int else width + 1)
    | (Some _ | None), _ -> None
