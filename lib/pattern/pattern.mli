(** Pattern queries [Q = (V_Q, E_Q, f_Q, g_Q)].

    A pattern is a small directed graph whose nodes carry a label and a
    {!Predicate.t}.  Pattern-node identifiers are dense integers
    [0 .. n_nodes - 1].  Patterns share the {!Bpq_graph.Label.table} of the
    data graphs they are asked against. *)

open Bpq_graph

type t

val create :
  Label.table -> (Label.t * Predicate.t) array -> (int * int) list -> t
(** [create tbl nodes edges] builds the pattern; duplicate edges are
    collapsed.  @raise Invalid_argument on out-of-range endpoints. *)

val label_table : t -> Label.table
val n_nodes : t -> int
val n_edges : t -> int

val size : t -> int
(** [|Q| = |V_Q| + |E_Q|]. *)

val label : t -> int -> Label.t
val pred : t -> int -> Predicate.t

val edges : t -> (int * int) list
(** All directed edges, each exactly once. *)

val has_edge : t -> int -> int -> bool

val children : t -> int -> int list
(** Successors: [u'] with edge [(u, u')]. *)

val parents : t -> int -> int list
(** Predecessors: [u'] with edge [(u', u)]. *)

val neighbours : t -> int -> int list
(** Distinct neighbours in either direction. *)

val out_degree : t -> int -> int
val in_degree : t -> int -> int

val pred_count : t -> int
(** Total number of predicate atoms (the workload parameter [#p]). *)

val is_connected : t -> bool
(** Weak connectivity (edge direction ignored); vacuously true for the
    empty pattern and singletons. *)

val labels_used : t -> Label.t list
(** Distinct labels, ascending. *)

val canonicalize : t -> string * int array
(** [(fp, perm)] where [fp] is a canonical structural fingerprint and
    [perm] maps each pattern node to its slot in the canonical numbering.
    The fingerprint covers labels and edges only — never predicates — so
    every instantiation of one {!Template} skeleton shares it, and it is
    invariant under renumbering: structurally isomorphic patterns (same
    labels and edges up to a node permutation) produce equal fingerprints.
    Canonicalisation runs colour refinement and then breaks remaining
    symmetry exhaustively; for pathological patterns whose refined colour
    classes admit more than {!canonical_budget} orderings it falls back to
    breaking ties by node identifier, which keeps fingerprints
    deterministic (and cache reuse sound) but may distinguish some
    isomorphic renumberings.  Pattern sizes in this code base (≤ 8 nodes)
    never hit the fallback unless the pattern is a large single-label
    regular graph. *)

val fingerprint : t -> string
(** [fst (canonicalize t)]. *)

val canonical_budget : int
(** Symmetry-breaking search budget of {!canonicalize} (number of candidate
    orderings examined before falling back). *)

val to_string : t -> string
(** Multi-line rendering for logs and error messages. *)
