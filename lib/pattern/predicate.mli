(** Node predicates of pattern queries.

    The paper attaches to each pattern node [u] a predicate [g_Q(u)]: a
    conjunction of atomic comparisons [f_Q(u) op c] between the node's
    attribute value and a constant, with [op ∈ {=, <, >, ≤, ≥}].  The empty
    conjunction is [true]. *)

open Bpq_graph

type atom = { op : Value.op; const : Value.t }
type t = atom list
(** A conjunction, in no particular order. *)

val true_ : t
val atom : Value.op -> Value.t -> t
val conj : t -> t -> t

val eval : t -> Value.t -> bool
(** [eval p v] substitutes [v] for the attribute and evaluates the
    conjunction. *)

val arity : t -> int
(** Number of atoms (the paper's [#p] counts atoms across the query). *)

val to_string : t -> string
(** E.g. [">= 2011 & <= 2013"]; [""] for the empty conjunction. *)

val equal : t -> t -> bool
(** Syntactic equality up to atom order. *)

val value_cap : t -> int option
(** Number of distinct integer values satisfying the conjunction, when the
    atoms pin a finite range ([None] otherwise, or when the range is
    contradictory on non-integers).  Saturating: [> max_int] / [< min_int]
    yield [Some 0] (unsatisfiable), and ranges wider than [max_int] values
    cap at [max_int] instead of wrapping. *)
