open Bpq_graph

type t = {
  table : Label.table;
  labels : Label.t array;
  preds : Predicate.t array;
  edge_list : (int * int) list;
  succ : int list array;
  prede : int list array;
  nbrs : int list array;
}

let create table nodes edge_pairs =
  let n = Array.length nodes in
  let check v = if v < 0 || v >= n then invalid_arg "Pattern.create: bad endpoint" in
  List.iter
    (fun (s, t) ->
      check s;
      check t)
    edge_pairs;
  let edge_list = List.sort_uniq compare edge_pairs in
  let succ = Array.make n [] and prede = Array.make n [] in
  List.iter
    (fun (s, t) ->
      succ.(s) <- t :: succ.(s);
      prede.(t) <- s :: prede.(t))
    edge_list;
  let nbrs =
    Array.init n (fun v -> List.sort_uniq compare (succ.(v) @ prede.(v)))
  in
  { table;
    labels = Array.map fst nodes;
    preds = Array.map snd nodes;
    edge_list;
    succ;
    prede;
    nbrs }

let label_table q = q.table
let n_nodes q = Array.length q.labels
let n_edges q = List.length q.edge_list
let size q = n_nodes q + n_edges q
let label q u = q.labels.(u)
let pred q u = q.preds.(u)
let edges q = q.edge_list
let has_edge q s t = List.mem t q.succ.(s)
let children q u = q.succ.(u)
let parents q u = q.prede.(u)
let neighbours q u = q.nbrs.(u)
let out_degree q u = List.length q.succ.(u)
let in_degree q u = List.length q.prede.(u)

let pred_count q = Array.fold_left (fun acc p -> acc + Predicate.arity p) 0 q.preds

let is_connected q =
  let n = n_nodes q in
  if n <= 1 then true
  else begin
    let seen = Array.make n false in
    let rec dfs u =
      if not seen.(u) then begin
        seen.(u) <- true;
        List.iter dfs q.nbrs.(u)
      end
    in
    dfs 0;
    Array.for_all Fun.id seen
  end

let labels_used q =
  List.sort_uniq compare (Array.to_list q.labels)

(* --- Canonical structural fingerprint ---------------------------------- *)

(* Colour refinement with canonical colour identifiers: round 0 colours
   are the node labels themselves; each round maps every node to the
   signature (colour, sorted successor colours, sorted predecessor
   colours) and re-assigns colour ids by the *sorted order of distinct
   signatures*, so the ids depend only on the multiset of signatures —
   never on node numbering.  The fixpoint partition is therefore identical
   for isomorphic patterns. *)
let refine q =
  let n = n_nodes q in
  let color = Array.copy q.labels in
  let distinct arr = List.length (List.sort_uniq compare (Array.to_list arr)) in
  let classes = ref (distinct color) in
  let stable = ref false in
  while not !stable do
    let sig_of v =
      ( color.(v),
        List.sort compare (List.map (fun w -> color.(w)) q.succ.(v)),
        List.sort compare (List.map (fun w -> color.(w)) q.prede.(v)) )
    in
    let sigs = Array.init n sig_of in
    let order = List.sort_uniq compare (Array.to_list sigs) in
    let rank = Hashtbl.create (max 16 n) in
    List.iteri (fun i s -> Hashtbl.replace rank s i) order;
    Array.iteri (fun v s -> color.(v) <- Hashtbl.find rank s) sigs;
    let classes' = List.length order in
    stable := classes' = !classes;
    classes := classes'
  done;
  color

let canonical_budget = 50_000

(* Encoding of the pattern under a placement [pos] (node -> canonical
   slot): labels in slot order, then the sorted renumbered edge list.
   Comparing encodings compares candidate canonical forms. *)
let encode_under q (pos : int array) =
  let n = n_nodes q in
  let labels = Array.make n 0 in
  Array.iteri (fun v p -> labels.(p) <- q.labels.(v)) pos;
  let edges =
    List.sort compare (List.map (fun (s, t) -> (pos.(s), pos.(t))) q.edge_list)
  in
  (Array.to_list labels, edges)

let canonicalize q =
  let n = n_nodes q in
  let color = refine q in
  (* Group nodes by refined colour; colours are already canonical ranks,
     so iterating colours ascending fixes the slot range of each class. *)
  let members = Hashtbl.create 16 in
  for v = n - 1 downto 0 do
    Hashtbl.replace members color.(v) (v :: (Option.value ~default:[] (Hashtbl.find_opt members color.(v))))
  done;
  let classes =
    List.map
      (fun c -> Hashtbl.find members c)
      (List.sort_uniq compare (Array.to_list color))
  in
  let rec fact k = if k <= 1 then 1 else k * fact (k - 1) in
  let orderings =
    List.fold_left (fun acc cls -> acc * fact (List.length cls)) 1 classes
  in
  let place_identity () =
    (* Deterministic fallback: within a class, slots by node id. *)
    let pos = Array.make n 0 in
    let slot = ref 0 in
    List.iter
      (List.iter (fun v ->
           pos.(v) <- !slot;
           incr slot))
      classes;
    pos
  in
  let best_pos =
    if orderings = 1 || orderings > canonical_budget then place_identity ()
    else begin
      (* Exhaust the class-respecting placements and keep the minimal
         encoding — the canonical representative of the isomorphism
         class. *)
      let best = ref None in
      let pos = Array.make n (-1) in
      let rec assign slot = function
        | [] ->
          let enc = encode_under q pos in
          (match !best with
           | Some (e, _) when compare e enc <= 0 -> ()
           | _ -> best := Some (enc, Array.copy pos))
        | cls :: rest ->
          let k = List.length cls in
          let rec go remaining i =
            if remaining = [] then assign (slot + k) rest
            else
              List.iteri
                (fun j v ->
                  pos.(v) <- slot + i;
                  go (List.filteri (fun j' _ -> j' <> j) remaining) (i + 1);
                  pos.(v) <- -1)
                remaining
          in
          go cls 0
      in
      assign 0 classes;
      match !best with Some (_, p) -> p | None -> place_identity ()
    end
  in
  let enc = encode_under q best_pos in
  (Marshal.to_string (n, enc) [], best_pos)

let fingerprint q = fst (canonicalize q)

let to_string q =
  let buf = Buffer.create 128 in
  Array.iteri
    (fun u l ->
      Buffer.add_string buf
        (Printf.sprintf "u%d: %s" u (Label.name q.table l));
      (match q.preds.(u) with
       | [] -> ()
       | p -> Buffer.add_string buf (" [" ^ Predicate.to_string p ^ "]"));
      Buffer.add_char buf '\n')
    q.labels;
  List.iter
    (fun (s, t) -> Buffer.add_string buf (Printf.sprintf "u%d -> u%d\n" s t))
    q.edge_list;
  Buffer.contents buf
