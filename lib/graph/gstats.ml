type label_stat = {
  label : Label.t;
  count : int;
  max_degree : int;
  avg_degree : float;
}

type t = {
  n_nodes : int;
  n_edges : int;
  n_labels : int;
  max_out_degree : int;
  max_in_degree : int;
  avg_degree : float;
  isolated : int;
  by_label : label_stat list;
}

let compute g =
  let n = Digraph.n_nodes g in
  let tbl = Digraph.label_table g in
  let max_out = ref 0 and max_in = ref 0 and isolated = ref 0 in
  let nlabels = Label.count tbl in
  let label_max = Array.make nlabels 0 in
  let label_deg_sum = Array.make nlabels 0 in
  Digraph.iter_nodes g (fun v ->
      let dout = Digraph.out_degree g v and din = Digraph.in_degree g v in
      max_out := max !max_out dout;
      max_in := max !max_in din;
      if dout + din = 0 then incr isolated;
      let l = Digraph.label g v in
      label_max.(l) <- max label_max.(l) (dout + din);
      label_deg_sum.(l) <- label_deg_sum.(l) + dout + din);
  let by_label =
    List.filter_map
      (fun l ->
        let count = Digraph.count_label g l in
        if count = 0 then None
        else
          Some
            { label = l;
              count;
              max_degree = label_max.(l);
              avg_degree = float_of_int label_deg_sum.(l) /. float_of_int count })
      (Label.all tbl)
    |> List.sort (fun a b -> compare (b.count, b.label) (a.count, a.label))
  in
  { n_nodes = n;
    n_edges = Digraph.n_edges g;
    n_labels = List.length by_label;
    max_out_degree = !max_out;
    max_in_degree = !max_in;
    avg_degree =
      (if n = 0 then 0.0 else 2.0 *. float_of_int (Digraph.n_edges g) /. float_of_int n);
    isolated = !isolated;
    by_label }

(* ------------------------------------------------------------------ *)
(* Selectivity statistics for the cost model.                          *)
(* ------------------------------------------------------------------ *)

type selectivity = {
  labels : int;
  node_counts : int array;
  out_deg_sum : int array;
  pair_freqs : (int, int) Hashtbl.t;
}

let pack_pair sel src dst = (src * sel.labels) + dst

let selectivity g =
  let tbl = Digraph.label_table g in
  let labels = max 1 (Label.count tbl) in
  let sel =
    { labels;
      node_counts = Array.make labels 0;
      out_deg_sum = Array.make labels 0;
      pair_freqs = Hashtbl.create 256 }
  in
  (* One CSR sweep: per node bump its label count and out-degree sum, and
     per out-edge the (src label, dst label) frequency. *)
  Digraph.iter_nodes g (fun v ->
      let l = Digraph.label g v in
      sel.node_counts.(l) <- sel.node_counts.(l) + 1;
      sel.out_deg_sum.(l) <- sel.out_deg_sum.(l) + Digraph.out_degree g v;
      Digraph.iter_out g v (fun w ->
          let key = pack_pair sel l (Digraph.label g w) in
          Hashtbl.replace sel.pair_freqs key
            (1 + Option.value ~default:0 (Hashtbl.find_opt sel.pair_freqs key))));
  sel

let node_count sel l = if l >= 0 && l < sel.labels then sel.node_counts.(l) else 0

let pair_freq sel ~src ~dst =
  if src < 0 || src >= sel.labels || dst < 0 || dst >= sel.labels then 0
  else Option.value ~default:0 (Hashtbl.find_opt sel.pair_freqs (pack_pair sel src dst))

let avg_out_degree sel l =
  let c = node_count sel l in
  if c = 0 then 0.0 else float_of_int sel.out_deg_sum.(l) /. float_of_int c

(* Text serialization, in the spirit of [Graph_io]: a header line, one
   [l <name> <count> <outdegsum>] line per label, one
   [p <srcname> <dstname> <freq>] line per label pair with at least one
   edge.  Names are written with [%S] so exotic label names round-trip. *)

let output_selectivity oc tbl sel =
  Printf.fprintf oc "# bpq selectivity v1\n";
  for l = 0 to sel.labels - 1 do
    if sel.node_counts.(l) > 0 || sel.out_deg_sum.(l) > 0 then
      Printf.fprintf oc "l %S %d %d\n" (Label.name tbl l) sel.node_counts.(l)
        sel.out_deg_sum.(l)
  done;
  let pairs =
    Hashtbl.fold (fun key freq acc -> (key, freq) :: acc) sel.pair_freqs []
    |> List.sort compare
  in
  List.iter
    (fun (key, freq) ->
      Printf.fprintf oc "p %S %S %d\n"
        (Label.name tbl (key / sel.labels))
        (Label.name tbl (key mod sel.labels))
        freq)
    pairs

let parse_selectivity tbl ic =
  let rows = ref [] and pairs = ref [] in
  (try
     while true do
       let line = input_line ic in
       if String.length line = 0 || line.[0] = '#' then ()
       else if line.[0] = 'l' then
         Scanf.sscanf line "l %S %d %d" (fun name count dsum ->
             rows := (Label.intern tbl name, count, dsum) :: !rows)
       else if line.[0] = 'p' then
         Scanf.sscanf line "p %S %S %d" (fun src dst freq ->
             pairs := (Label.intern tbl src, Label.intern tbl dst, freq) :: !pairs)
       else failwith ("Gstats.parse_selectivity: bad line: " ^ line)
     done
   with End_of_file -> ());
  let labels = max 1 (Label.count tbl) in
  let sel =
    { labels;
      node_counts = Array.make labels 0;
      out_deg_sum = Array.make labels 0;
      pair_freqs = Hashtbl.create 256 }
  in
  List.iter
    (fun (l, count, dsum) ->
      sel.node_counts.(l) <- count;
      sel.out_deg_sum.(l) <- dsum)
    !rows;
  List.iter
    (fun (src, dst, freq) -> Hashtbl.replace sel.pair_freqs (pack_pair sel src dst) freq)
    !pairs;
  sel

let save_selectivity tbl sel path =
  Bpq_util.Atomic_file.write path (fun oc -> output_selectivity oc tbl sel)

(* Binary form, one snapshot section: label-indexed arrays verbatim plus
   the pair-frequency table as sorted (src, dst, freq) triples.  Sorting
   makes the payload independent of hashtable iteration order, so equal
   statistics serialize to equal bytes. *)

let add_selectivity_section w sel =
  Binfile.section w ~tag:Binfile.tag_stats (fun b ->
      Binfile.add_i64 b sel.labels;
      Binfile.add_array b sel.node_counts;
      Binfile.add_array b sel.out_deg_sum;
      let pairs =
        Hashtbl.fold (fun key freq acc -> (key, freq) :: acc) sel.pair_freqs []
        |> List.sort compare
      in
      Binfile.add_i64 b (List.length pairs);
      List.iter
        (fun (key, freq) ->
          Binfile.add_i64 b (key / sel.labels);
          Binfile.add_i64 b (key mod sel.labels);
          Binfile.add_i64 b freq)
        pairs)

let selectivity_of_bytes bytes ~map ~nlabels =
  let c = Binfile.Cur.of_bytes bytes in
  let stored = Binfile.Cur.i64 c in
  if stored < 1 then raise (Binfile.Corrupt "stats section: label count must be positive");
  let node_counts = Binfile.Cur.array c stored in
  let out_deg_sum = Binfile.Cur.array c stored in
  let remap l =
    if l < 0 || l >= stored then raise (Binfile.Corrupt "stats section: label id out of range")
    else if l < Array.length map then map.(l)
    else l (* the [max 1] padding slot of an empty table *)
  in
  let labels = max 1 nlabels in
  let sel =
    { labels;
      node_counts = Array.make labels 0;
      out_deg_sum = Array.make labels 0;
      pair_freqs = Hashtbl.create 256 }
  in
  for l = 0 to stored - 1 do
    let l' = remap l in
    if l' >= 0 && l' < labels then begin
      sel.node_counts.(l') <- node_counts.(l);
      sel.out_deg_sum.(l') <- out_deg_sum.(l)
    end
  done;
  let npairs = Binfile.Cur.i64 c in
  if npairs < 0 then raise (Binfile.Corrupt "stats section: negative pair count");
  for _ = 1 to npairs do
    let src = remap (Binfile.Cur.i64 c) in
    let dst = remap (Binfile.Cur.i64 c) in
    let freq = Binfile.Cur.i64 c in
    if src >= 0 && src < labels && dst >= 0 && dst < labels then
      Hashtbl.replace sel.pair_freqs (pack_pair sel src dst) freq
  done;
  sel

let load_selectivity tbl path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> parse_selectivity tbl ic)

let degree_histogram g =
  let counts = Hashtbl.create 64 in
  Digraph.iter_nodes g (fun v ->
      let d = Digraph.degree g v in
      Hashtbl.replace counts d (1 + Option.value ~default:0 (Hashtbl.find_opt counts d)));
  List.sort compare (Hashtbl.fold (fun d c acc -> (d, c) :: acc) counts [])

let to_string ?(top = 10) tbl t =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "nodes: %d, edges: %d, labels: %d\n" t.n_nodes t.n_edges t.n_labels;
  Printf.bprintf buf "degree: avg %.2f, max out %d, max in %d; isolated nodes: %d\n"
    t.avg_degree t.max_out_degree t.max_in_degree t.isolated;
  Printf.bprintf buf "top labels:\n";
  List.iteri
    (fun i s ->
      if i < top then
        Printf.bprintf buf "  %-20s %8d nodes, max degree %d, avg %.2f\n"
          (Label.name tbl s.label) s.count s.max_degree s.avg_degree)
    t.by_label;
  Buffer.contents buf
