module Vec = Bpq_util.Vec
module Int_sort = Bpq_util.Int_sort

(* Frozen layout: every CSR row (out, in, merged-neighbour) is sorted
   ascending, which buys three things at once:
   - parallel edges collapse at freeze with a row-local dedup instead of a
     graph-wide hashtable;
   - [has_edge] is a branch-light binary search over the out row — no
     [edge_set] hashtable, no per-probe hashing;
   - [neighbours] is a constant-time slice of a merged CSR computed once
     at freeze, instead of a per-call allocate-and-sort. *)
type t = {
  table : Label.table;
  labels : int array;
  values : Value.t array;
  out_off : int array;
  out_adj : int array;
  in_off : int array;
  in_adj : int array;
  nbr_off : int array;
  nbr_adj : int array;  (* union of out/in rows, sorted distinct *)
  by_label_off : int array;
  by_label : int array;
  n_edges : int;
}

module Builder = struct
  type t = {
    table : Label.table;
    labels : Vec.t;
    mutable values : Value.t array;
    srcs : Vec.t;
    dsts : Vec.t;
    mutable frozen : bool;
  }

  let create ?(node_hint = 64) table =
    { table;
      labels = Vec.create ~capacity:node_hint ();
      values = Array.make (max node_hint 1) Value.Null;
      srcs = Vec.create ();
      dsts = Vec.create ();
      frozen = false }

  let n_nodes b = Vec.length b.labels

  let add_node b lbl v =
    if b.frozen then invalid_arg "Digraph.Builder.add_node: builder already frozen";
    let id = Vec.length b.labels in
    Vec.push b.labels lbl;
    if id >= Array.length b.values then begin
      (* Doubling from the live length, not the hint, so over-hinted
         builders don't keep growing an already oversized store. *)
      let values = Array.make (2 * max 1 id) Value.Null in
      Array.blit b.values 0 values 0 id;
      b.values <- values
    end;
    b.values.(id) <- v;
    id

  let add_edge b src dst =
    if b.frozen then invalid_arg "Digraph.Builder.add_edge: builder already frozen";
    let n = n_nodes b in
    if src < 0 || src >= n || dst < 0 || dst >= n then
      invalid_arg "Digraph.Builder.add_edge: unknown endpoint";
    Vec.push b.srcs src;
    Vec.push b.dsts dst

  (* Counting sort of [keys] into CSR offsets over [n] buckets. *)
  let csr n keys nkeys payloads =
    let off = Array.make (n + 1) 0 in
    for i = 0 to nkeys - 1 do
      off.(keys.(i) + 1) <- off.(keys.(i) + 1) + 1
    done;
    for i = 1 to n do
      off.(i) <- off.(i) + off.(i - 1)
    done;
    let adj = Array.make (max 1 nkeys) 0 in
    let cursor = Array.copy off in
    for i = 0 to nkeys - 1 do
      let k = keys.(i) in
      adj.(cursor.(k)) <- payloads.(i);
      cursor.(k) <- cursor.(k) + 1
    done;
    (off, if nkeys = Array.length adj then adj else Array.sub adj 0 nkeys)

  (* Sort each CSR row and drop duplicate entries, compacting [adj] and
     rewriting [off] in place.  Returns the compacted length. *)
  let sort_dedup_rows n off adj =
    let write = ref 0 in
    let row_start = ref 0 in
    for v = 0 to n - 1 do
      let lo = !row_start and hi = off.(v + 1) in
      row_start := hi;
      let len = hi - lo in
      Int_sort.sort_range adj lo len;
      let kept = Int_sort.dedup_range adj lo len in
      if lo <> !write then Array.blit adj lo adj !write kept;
      off.(v) <- !write;
      write := !write + kept
    done;
    off.(n) <- !write;
    !write

  let freeze b =
    if b.frozen then invalid_arg "Digraph.Builder.freeze: builder already frozen";
    b.frozen <- true;
    let n = n_nodes b in
    let labels = Vec.to_array b.labels in
    let values = Array.sub b.values 0 n in
    let raw = Vec.length b.srcs in
    (* Out CSR from the raw multi-edge list; rows sorted, duplicates
       collapse row-locally. *)
    let out_off, out_adj = csr n (Vec.unsafe_data b.srcs) raw (Vec.unsafe_data b.dsts) in
    let m = sort_dedup_rows n out_off out_adj in
    let out_adj = if m = Array.length out_adj then out_adj else Array.sub out_adj 0 m in
    (* In CSR from the deduplicated edges.  Filling dst buckets while
       scanning sources in ascending order leaves every in row sorted. *)
    let in_off = Array.make (n + 1) 0 in
    for i = 0 to m - 1 do
      in_off.(out_adj.(i) + 1) <- in_off.(out_adj.(i) + 1) + 1
    done;
    for i = 1 to n do
      in_off.(i) <- in_off.(i) + in_off.(i - 1)
    done;
    let in_adj = Array.make (max 1 m) 0 in
    let cursor = Array.copy in_off in
    for v = 0 to n - 1 do
      for i = out_off.(v) to out_off.(v + 1) - 1 do
        let w = out_adj.(i) in
        in_adj.(cursor.(w)) <- v;
        cursor.(w) <- cursor.(w) + 1
      done
    done;
    let in_adj = if m = Array.length in_adj then in_adj else Array.sub in_adj 0 m in
    (* Merged-neighbour CSR: sorted union of each node's out and in rows. *)
    let nbr_off = Array.make (n + 1) 0 in
    let nbr_adj = Array.make (max 1 (2 * m)) 0 in
    let cursor = ref 0 in
    for v = 0 to n - 1 do
      nbr_off.(v) <- !cursor;
      let i = ref out_off.(v) and j = ref in_off.(v) in
      let ihi = out_off.(v + 1) and jhi = in_off.(v + 1) in
      while !i < ihi || !j < jhi do
        let x =
          if !j >= jhi then begin
            let x = out_adj.(!i) in
            incr i;
            x
          end
          else if !i >= ihi then begin
            let x = in_adj.(!j) in
            incr j;
            x
          end
          else begin
            let a = out_adj.(!i) and b = in_adj.(!j) in
            if a < b then begin
              incr i;
              a
            end
            else if b < a then begin
              incr j;
              b
            end
            else begin
              incr i;
              incr j;
              a
            end
          end
        in
        if !cursor = nbr_off.(v) || nbr_adj.(!cursor - 1) <> x then begin
          nbr_adj.(!cursor) <- x;
          incr cursor
        end
      done
    done;
    nbr_off.(n) <- !cursor;
    let nbr_adj =
      if !cursor = Array.length nbr_adj then nbr_adj else Array.sub nbr_adj 0 !cursor
    in
    let nlabels = Label.count b.table in
    let ids = Array.init n (fun i -> i) in
    let by_label_off, by_label = csr nlabels labels n ids in
    { table = b.table;
      labels;
      values;
      out_off;
      out_adj;
      in_off;
      in_adj;
      nbr_off;
      nbr_adj;
      by_label_off;
      by_label;
      n_edges = m }
end

let label_table g = g.table
let n_nodes g = Array.length g.labels
let n_edges g = g.n_edges
let size g = n_nodes g + n_edges g

let label g v = g.labels.(v)
let value g v = g.values.(v)

let out_degree g v = g.out_off.(v + 1) - g.out_off.(v)
let in_degree g v = g.in_off.(v + 1) - g.in_off.(v)
let degree g v = out_degree g v + in_degree g v

let iter_range adj off_lo off_hi f =
  for i = off_lo to off_hi - 1 do
    f adj.(i)
  done

let iter_out g v f = iter_range g.out_adj g.out_off.(v) g.out_off.(v + 1) f
let iter_in g v f = iter_range g.in_adj g.in_off.(v) g.in_off.(v + 1) f

let fold_out g v f init =
  let acc = ref init in
  iter_out g v (fun w -> acc := f !acc w);
  !acc

let fold_in g v f init =
  let acc = ref init in
  iter_in g v (fun w -> acc := f !acc w);
  !acc

let out_neighbours g v = Array.sub g.out_adj g.out_off.(v) (out_degree g v)
let in_neighbours g v = Array.sub g.in_adj g.in_off.(v) (in_degree g v)

let n_neighbours g v = g.nbr_off.(v + 1) - g.nbr_off.(v)
let neighbours g v = Array.sub g.nbr_adj g.nbr_off.(v) (n_neighbours g v)
let iter_neighbours g v f = iter_range g.nbr_adj g.nbr_off.(v) g.nbr_off.(v + 1) f

(* Branch-light binary search for [dst] in the sorted out row of [src].
   Rows are typically short (mean degree), so the loop is a handful of
   well-predicted iterations over one cache line. *)
let has_edge g src dst =
  let adj = g.out_adj in
  let lo = ref g.out_off.(src) and hi = ref g.out_off.(src + 1) in
  (* [mid] stays inside the row, itself inside [adj] — unsafe reads keep
     the loop to a compare and a shift per halving. *)
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) lsr 1 in
    if Array.unsafe_get adj mid <= dst then lo := mid else hi := mid
  done;
  !lo < !hi && Array.unsafe_get adj !lo = dst

let adjacent g u v = has_edge g u v || has_edge g v u

let nodes_with_label g l =
  if l < 0 || l + 1 >= Array.length g.by_label_off then [||]
  else Array.sub g.by_label g.by_label_off.(l) (g.by_label_off.(l + 1) - g.by_label_off.(l))

let iter_label g l f =
  if l >= 0 && l + 1 < Array.length g.by_label_off then
    iter_range g.by_label g.by_label_off.(l) g.by_label_off.(l + 1) f

let count_label g l =
  if l < 0 || l + 1 >= Array.length g.by_label_off then 0
  else g.by_label_off.(l + 1) - g.by_label_off.(l)

let iter_nodes g f =
  for v = 0 to n_nodes g - 1 do
    f v
  done

let iter_edges g f = iter_nodes g (fun v -> iter_out g v (fun w -> f v w))

type delta = {
  added_nodes : (Label.t * Value.t) list;
  added_edges : (int * int) list;
  removed_edges : (int * int) list;
}

let empty_delta = { added_nodes = []; added_edges = []; removed_edges = [] }

let apply_delta g d =
  let removed = Hashtbl.create 16 in
  List.iter (fun (s, t) -> Hashtbl.replace removed ((s * n_nodes g) + t) ()) d.removed_edges;
  let b = Builder.create ~node_hint:(n_nodes g + List.length d.added_nodes) g.table in
  iter_nodes g (fun v -> ignore (Builder.add_node b g.labels.(v) g.values.(v)));
  List.iter (fun (l, v) -> ignore (Builder.add_node b l v)) d.added_nodes;
  iter_edges g (fun s t ->
      if not (Hashtbl.mem removed ((s * n_nodes g) + t)) then Builder.add_edge b s t);
  List.iter (fun (s, t) -> Builder.add_edge b s t) d.added_edges;
  Builder.freeze b

let delta_touched g d =
  let seen = Hashtbl.create 64 in
  let mark v = if v < n_nodes g then Hashtbl.replace seen v () in
  let mark_with_nbrs v =
    if v < n_nodes g then begin
      mark v;
      iter_neighbours g v mark
    end
  in
  let mark_edge (s, t) =
    mark_with_nbrs s;
    mark_with_nbrs t
  in
  List.iter mark_edge d.added_edges;
  List.iter mark_edge d.removed_edges;
  Hashtbl.fold (fun v () acc -> v :: acc) seen []

module Repr = struct
  type graph = t

  type t = {
    labels : int array;
    values : Value.t array;
    out_off : int array;
    out_adj : int array;
    in_off : int array;
    in_adj : int array;
    nbr_off : int array;
    nbr_adj : int array;
    by_label_off : int array;
    by_label : int array;
    n_edges : int;
  }

  let of_graph (g : graph) =
    { labels = g.labels;
      values = g.values;
      out_off = g.out_off;
      out_adj = g.out_adj;
      in_off = g.in_off;
      in_adj = g.in_adj;
      nbr_off = g.nbr_off;
      nbr_adj = g.nbr_adj;
      by_label_off = g.by_label_off;
      by_label = g.by_label;
      n_edges = g.n_edges }

  let to_graph table (r : t) : graph =
    { table;
      labels = r.labels;
      values = r.values;
      out_off = r.out_off;
      out_adj = r.out_adj;
      in_off = r.in_off;
      in_adj = r.in_adj;
      nbr_off = r.nbr_off;
      nbr_adj = r.nbr_adj;
      by_label_off = r.by_label_off;
      by_label = r.by_label;
      n_edges = r.n_edges }
end
