module Atomic_file = Bpq_util.Atomic_file

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

let magic = "BPQSNAP1"
let version = 1
let tag_labels = 1
let tag_nodes = 2
let tag_csr = 3
let tag_stats = 4
let tag_schema = 5

(* FNV-1a folded into OCaml's 63-bit int range (same truncated basis as
   the spill-key hash in [Index]); not cryptographic — it guards against
   truncation and bit rot, not an adversary. *)
let fnv_prime = 0x100000001B3
let fnv_basis = 0x3BF29CE484222325
let fnv_byte h b = ((h lxor b) * fnv_prime) land max_int

let fnv_string h s lo hi =
  let h = ref h in
  for i = lo to hi - 1 do
    h := fnv_byte !h (Char.code (String.unsafe_get s i))
  done;
  !h

let fnv64 s = fnv_string fnv_basis s 0 (String.length s)

let file_fnv path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let chunk = Bytes.create 65536 in
      let sum = ref fnv_basis in
      let remaining = ref (in_channel_length ic) in
      while !remaining > 0 do
        let n = min !remaining (Bytes.length chunk) in
        really_input ic chunk 0 n;
        for i = 0 to n - 1 do
          sum := fnv_byte !sum (Char.code (Bytes.unsafe_get chunk i))
        done;
        remaining := !remaining - n
      done;
      !sum)

(* ---------------- encoding helpers ---------------- *)

let add_i64 b v =
  for shift = 0 to 7 do
    Buffer.add_char b (Char.chr ((v lsr (8 * shift)) land 0xFF))
  done

let add_array b arr = Array.iter (add_i64 b) arr

let pad8 b =
  while Buffer.length b land 7 <> 0 do
    Buffer.add_char b '\000'
  done

let add_string b s =
  add_i64 b (String.length s);
  Buffer.add_string b s;
  pad8 b

let get_i64 bytes pos =
  let v = ref 0 in
  for shift = 7 downto 0 do
    v := (!v lsl 8) lor Char.code (Bytes.unsafe_get bytes (pos + shift))
  done;
  !v

(* ---------------- writing ---------------- *)

type writer = { mutable sections : (int * Buffer.t) list (* reversed *) }

let writer () = { sections = [] }

let section w ~tag f =
  let b = Buffer.create 4096 in
  f b;
  pad8 b;
  w.sections <- (tag, b) :: w.sections

let write w path =
  let sections = List.rev w.sections in
  let n = List.length sections in
  let header_len = 8 + 8 + 8 + (24 * n) in
  let out = Buffer.create (header_len + 64) in
  Buffer.add_string out magic;
  add_i64 out version;
  add_i64 out n;
  let off = ref header_len in
  List.iter
    (fun (tag, b) ->
      add_i64 out tag;
      add_i64 out !off;
      add_i64 out (Buffer.length b);
      off := !off + Buffer.length b)
    sections;
  List.iter (fun (_, b) -> Buffer.add_buffer out b) sections;
  let body = Buffer.contents out in
  let sum = fnv_string fnv_basis body 0 (String.length body) in
  Atomic_file.write path (fun oc ->
      output_string oc body;
      let trailer = Buffer.create 8 in
      add_i64 trailer sum;
      Buffer.output_buffer oc trailer)

(* ---------------- directory parsing ---------------- *)

type sect = {
  tag : int;
  off : int;
  len : int;
}

let read_directory ~pread ~file_len =
  if file_len < 8 + 8 + 8 + 8 then corrupt "truncated snapshot (%d bytes)" file_len;
  let head = pread ~pos:0 ~len:24 in
  let m = Bytes.sub_string head 0 8 in
  if m <> magic then corrupt "not a bpq snapshot (bad magic %S)" m;
  let v = get_i64 head 8 in
  if v <> version then corrupt "unsupported snapshot version %d (this build reads %d)" v version;
  let n = get_i64 head 16 in
  if n < 0 || n > 1_000_000 then corrupt "implausible section count %d" n;
  let header_len = 24 + (24 * n) in
  if header_len > file_len - 8 then corrupt "truncated snapshot directory";
  let dir = pread ~pos:24 ~len:(24 * n) in
  List.init n (fun i ->
      let tag = get_i64 dir (24 * i) in
      let off = get_i64 dir ((24 * i) + 8) in
      let len = get_i64 dir ((24 * i) + 16) in
      if len < 0 || off < header_len || off + len > file_len - 8 then
        corrupt "section %d (tag %d) out of range" i tag;
      { tag; off; len })

(* ---------------- in-memory reading ---------------- *)

type reader = {
  data : Bytes.t;
  sects : sect list;
}

let read_file path =
  let ic = open_in_bin path in
  let data =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let len = in_channel_length ic in
        let b = Bytes.create len in
        really_input ic b 0 len;
        b)
  in
  let file_len = Bytes.length data in
  let pread ~pos ~len =
    if pos < 0 || len < 0 || pos + len > file_len then corrupt "truncated snapshot";
    Bytes.sub data pos len
  in
  let sects = read_directory ~pread ~file_len in
  let body = Bytes.unsafe_to_string data in
  let sum = fnv_string fnv_basis body 0 (file_len - 8) in
  let stored = get_i64 data (file_len - 8) in
  if sum <> stored then
    corrupt "checksum mismatch (stored %016x, computed %016x) — snapshot is damaged" stored sum;
  { data; sects }

let section_bytes r tag =
  List.find_opt (fun s -> s.tag = tag) r.sects
  |> Option.map (fun s -> Bytes.sub r.data s.off s.len)

let require_section r tag =
  match section_bytes r tag with
  | Some b -> b
  | None -> corrupt "snapshot has no section with tag %d" tag

(* ---------------- varint wire helpers ----------------

   Snapshot sections stay 8-aligned i64 arrays; the LEB128 varints below
   exist for the sharded wire protocol, where sorted id sets and
   correlated tuple streams delta-compress to a byte or two per element
   instead of eight. *)

let add_uvarint b n =
  if n < 0 then invalid_arg "add_uvarint: negative";
  let n = ref n in
  let fin = ref false in
  while not !fin do
    let byte = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char b (Char.chr byte);
      fin := true
    end
    else Buffer.add_char b (Char.chr (byte lor 0x80))
  done

(* Sorted (non-decreasing, non-negative) arrays as length + deltas. *)
let add_sorted_array b arr =
  add_uvarint b (Array.length arr);
  let prev = ref 0 in
  Array.iter
    (fun v ->
      if v < !prev then invalid_arg "add_sorted_array: not sorted";
      add_uvarint b (v - !prev);
      prev := v)
    arr

(* Arbitrary int streams as length + zigzag deltas: small for locally
   correlated sequences (odometer tuple streams), never worse than ~9
   bytes per element. *)
let add_zigzag_array b arr =
  add_uvarint b (Array.length arr);
  let prev = ref 0 in
  Array.iter
    (fun v ->
      let d = v - !prev in
      add_uvarint b ((d lsl 1) lxor (d asr 62));
      prev := v)
    arr

module Cur = struct
  type t = {
    data : Bytes.t;
    mutable pos : int;
    limit : int;
  }

  let of_bytes data = { data; pos = 0; limit = Bytes.length data }
  let pos c = c.pos
  let seek c p = c.pos <- p

  let need c n =
    if c.pos < 0 || n < 0 || c.pos + n > c.limit then
      corrupt "section payload ends early (want %d bytes at %d of %d)" n c.pos c.limit

  let i64 c =
    need c 8;
    let v = get_i64 c.data c.pos in
    c.pos <- c.pos + 8;
    v

  let array c n =
    if n < 0 then corrupt "negative array length %d" n;
    need c (8 * n);
    let arr = Array.init n (fun i -> get_i64 c.data (c.pos + (8 * i))) in
    c.pos <- c.pos + (8 * n);
    arr

  let str c =
    let len = i64 c in
    if len < 0 then corrupt "negative string length %d" len;
    need c len;
    let s = Bytes.sub_string c.data c.pos len in
    c.pos <- c.pos + ((len + 7) land lnot 7);
    s

  let uvarint c =
    let v = ref 0 and shift = ref 0 in
    let fin = ref false in
    while not !fin do
      if !shift > 62 then corrupt "varint too long";
      need c 1;
      let byte = Char.code (Bytes.get c.data c.pos) in
      c.pos <- c.pos + 1;
      v := !v lor ((byte land 0x7f) lsl !shift);
      shift := !shift + 7;
      if byte land 0x80 = 0 then fin := true
    done;
    !v

  (* Every element costs at least one byte, so a length beyond the
     remaining payload is corrupt — checked before allocating. *)
  let varint_len c =
    let n = uvarint c in
    if n > c.limit - c.pos then corrupt "varint array length %d exceeds payload" n;
    n

  let sorted_array c =
    let n = varint_len c in
    let arr = Array.make n 0 in
    let prev = ref 0 in
    for i = 0 to n - 1 do
      prev := !prev + uvarint c;
      arr.(i) <- !prev
    done;
    arr

  let zigzag_array c =
    let n = varint_len c in
    let arr = Array.make n 0 in
    let prev = ref 0 in
    for i = 0 to n - 1 do
      let u = uvarint c in
      prev := !prev + ((u lsr 1) lxor (-(u land 1)));
      arr.(i) <- !prev
    done;
    arr
end

(* ---------------- verification / sniffing ---------------- *)

let verify path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let file_len = in_channel_length ic in
      let pread ~pos ~len =
        if pos < 0 || len < 0 || pos + len > file_len then corrupt "truncated snapshot";
        seek_in ic pos;
        let b = Bytes.create len in
        really_input ic b 0 len;
        b
      in
      ignore (read_directory ~pread ~file_len);
      seek_in ic 0;
      let chunk = Bytes.create 65536 in
      let remaining = ref (file_len - 8) in
      let sum = ref fnv_basis in
      while !remaining > 0 do
        let n = min !remaining (Bytes.length chunk) in
        really_input ic chunk 0 n;
        sum := fnv_string !sum (Bytes.unsafe_to_string chunk) 0 n;
        remaining := !remaining - n
      done;
      let trailer = pread ~pos:(file_len - 8) ~len:8 in
      let stored = get_i64 trailer 0 in
      if !sum <> stored then
        corrupt "checksum mismatch (stored %016x, computed %016x) — snapshot is damaged" stored
          !sum)

let is_snapshot path =
  match open_in_bin path with
  | exception Sys_error _ -> false
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        if in_channel_length ic < String.length magic then false
        else begin
          let b = Bytes.create (String.length magic) in
          really_input ic b 0 (String.length magic);
          Bytes.to_string b = magic
        end)
