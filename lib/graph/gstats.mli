(** Descriptive statistics of a data graph.

    Used by the CLI's [stats] subcommand and as a quick sanity check on
    generated datasets; constraint discovery consumes the same quantities
    (label cardinalities, per-label-pair degree maxima). *)

type label_stat = {
  label : Label.t;
  count : int;
  max_degree : int;  (** Max total degree over the label's nodes. *)
  avg_degree : float;
}

type t = {
  n_nodes : int;
  n_edges : int;
  n_labels : int;  (** Labels with at least one node. *)
  max_out_degree : int;
  max_in_degree : int;
  avg_degree : float;
  isolated : int;  (** Nodes with no edges at all. *)
  by_label : label_stat list;  (** Descending by count. *)
}

val compute : Digraph.t -> t

(** {1 Selectivity statistics}

    Cheap per-label statistics consumed by the cost model
    ([Bpq_core.Costs]): per-label node counts, label→label directed edge
    frequencies, per-label average out-degree.  Computed in one CSR sweep
    and serializable alongside the graph, so a server can load them
    without rescanning. *)

type selectivity

val selectivity : Digraph.t -> selectivity
(** One pass over the CSR: O(|V| + |E|). *)

val node_count : selectivity -> Label.t -> int
(** Nodes carrying the label; [0] for labels unseen at compute time. *)

val pair_freq : selectivity -> src:Label.t -> dst:Label.t -> int
(** Number of directed edges from an [src]-labeled node to a
    [dst]-labeled node. *)

val avg_out_degree : selectivity -> Label.t -> float
(** Average out-degree over the label's nodes; [0.] for an empty label. *)

val output_selectivity : out_channel -> Label.table -> selectivity -> unit
val parse_selectivity : Label.table -> in_channel -> selectivity

val save_selectivity : Label.table -> selectivity -> string -> unit
(** Write the text form to a file (one [l]/[p] line per label / label
    pair; names quoted so they round-trip).  Atomic: temp file +
    rename. *)

val load_selectivity : Label.table -> string -> selectivity
(** Inverse of {!save_selectivity}; interns label names into [table]. *)

val add_selectivity_section : Binfile.writer -> selectivity -> unit
(** Append the binary form ({!Binfile.tag_stats}) to a snapshot under
    construction.  Label ids are the compute-time table's; the snapshot's
    label section carries the names that make them portable. *)

val selectivity_of_bytes : Bytes.t -> map:int array -> nlabels:int -> selectivity
(** Decode a [tag_stats] payload, remapping stored label id [l] to
    [map.(l)] (identity when loading into a fresh table); [nlabels] is
    the destination table's label count.
    @raise Binfile.Corrupt on malformed payloads. *)

val degree_histogram : Digraph.t -> (int * int) list
(** [(degree, node count)] pairs, ascending by degree, over total degree. *)

val to_string : ?top:int -> Label.table -> t -> string
(** Render a summary with the [top] (default 10) most populous labels. *)
