(** The snapshot container: a versioned, checksummed, sectioned binary
    file shared by {!Graph_io.save_bin} and [Schema.save].

    Layout (all integers 8-byte little-endian, so every array element is
    8-aligned in the file and a fixed-size page never splits one):
    {v
    magic "BPQSNAP1"            8 bytes
    format version              i64
    section count               i64
    directory                   (tag, offset, length) x count
    section payloads            back to back, 8-aligned
    checksum                    i64, FNV-1a over everything above
    v}
    Offsets are absolute file positions, so an out-of-core reader can
    serve any section slice without touching the rest of the file.  The
    in-memory reader ({!read_file}) always verifies the trailing
    checksum; {!read_directory} only validates the header and directory,
    which is what lets a paged store open a multi-gigabyte snapshot
    without scanning it. *)

exception Corrupt of string
(** Malformed snapshot: wrong magic, unsupported version, truncation,
    out-of-range directory entry, or checksum mismatch.  The message
    says which. *)

val magic : string
val version : int

val fnv64 : string -> int
(** FNV-1a of a whole string, folded into the non-negative int range —
    the same hash the trailing snapshot checksum uses.  The WAL uses it
    for per-record checksums. *)

val file_fnv : string -> int
(** FNV-1a over an entire file's bytes (checksum trailer included): a
    cheap content identity used to pair a delta log with the snapshot
    generation it was written against.
    @raise Sys_error if the file cannot be opened. *)

(** Section tags, fixed across the format version. *)

val tag_labels : int  (** Interned label names, in id order. *)

val tag_nodes : int  (** Node labels + value blob. *)

val tag_csr : int  (** The frozen adjacency arrays. *)

val tag_stats : int  (** {!Gstats} selectivity statistics. *)

val tag_schema : int  (** Constraints + built index buckets. *)

(** {1 Encoding helpers} *)

val add_i64 : Buffer.t -> int -> unit
val add_array : Buffer.t -> int array -> unit
(** Raw elements, no length prefix — lengths live in section headers. *)

val add_string : Buffer.t -> string -> unit
(** Length-prefixed bytes, padded to the next 8-byte boundary. *)

val get_i64 : Bytes.t -> int -> int

val add_uvarint : Buffer.t -> int -> unit
(** LEB128 unsigned varint; for the wire protocol (snapshot sections
    stay 8-aligned i64s).  Raises [Invalid_argument] on negatives. *)

val add_sorted_array : Buffer.t -> int array -> unit
(** Length + first-difference uvarints: a sorted non-negative id set in
    roughly a byte or two per element.  Raises [Invalid_argument] if
    the array is not non-decreasing. *)

val add_zigzag_array : Buffer.t -> int array -> unit
(** Length + zigzag-delta uvarints: any int stream, compact when
    consecutive elements are close. *)

(** {1 Writing} *)

type writer

val writer : unit -> writer

val section : writer -> tag:int -> (Buffer.t -> unit) -> unit
(** Append one section; sections are written in call order. *)

val write : writer -> string -> unit
(** Serialise to [path] atomically ({!Bpq_util.Atomic_file}). *)

(** {1 In-memory reading} *)

type reader

val read_file : string -> reader
(** Reads the whole file, verifying magic, version, directory sanity and
    the trailing checksum.
    @raise Corrupt on any malformed input.
    @raise Sys_error if the file cannot be opened. *)

val section_bytes : reader -> int -> Bytes.t option
(** Payload copy of the first section with the given tag. *)

val require_section : reader -> int -> Bytes.t
(** @raise Corrupt naming the missing section. *)

(** Sequential decoding of a section payload. *)
module Cur : sig
  type t

  val of_bytes : Bytes.t -> t
  val i64 : t -> int
  val array : t -> int -> int array
  val str : t -> string  (** Inverse of {!add_string}. *)

  val uvarint : t -> int  (** Inverse of {!add_uvarint}. *)

  val sorted_array : t -> int array  (** Inverse of {!add_sorted_array}. *)

  val zigzag_array : t -> int array  (** Inverse of {!add_zigzag_array}. *)

  val pos : t -> int
  val seek : t -> int -> unit

  (** All raise [Corrupt] on reads past the end of the payload. *)
end

(** {1 Out-of-core reading} *)

type sect = {
  tag : int;
  off : int;  (** Absolute file offset of the payload. *)
  len : int;
}

val read_directory : pread:(pos:int -> len:int -> Bytes.t) -> file_len:int -> sect list
(** Parse and validate the header and directory through an arbitrary
    positional reader (a page cache, in practice).  Checks magic,
    version, and that every section lies inside the checksummed region;
    does {e not} verify the checksum.
    @raise Corrupt on any malformed header. *)

val verify : string -> unit
(** Stream the file once and check the trailing checksum (plus the
    header, via {!read_directory}).
    @raise Corrupt on mismatch. *)

val is_snapshot : string -> bool
(** Cheap sniff: does the file start with {!magic}?  [false] for
    unreadable or short files. *)
