(** Plain-text (de)serialisation of data graphs.

    Line-oriented format, one declaration per line:
    {v
    # comment
    n <label> [<int> | "<string>"]     -- node, ids assigned 0,1,2,...
    e <src> <dst>                      -- directed edge
    v}
    Nodes must precede the edges that use them.  The format is meant for the
    CLI and the examples, not for bulk storage. *)

val save : Digraph.t -> string -> unit
(** [save g path] writes [g] to [path] atomically (temp + rename). *)

val load : Label.table -> string -> Digraph.t
(** [load tbl path] parses [path], interning labels into [tbl].
    @raise Failure with a line-numbered message on malformed input. *)

val output : out_channel -> Digraph.t -> unit
val parse : Label.table -> in_channel -> Digraph.t

(** {1 Binary snapshots}

    The frozen CSR representation verbatim in a {!Binfile} container —
    loading re-wraps arrays instead of re-parsing and re-freezing, and
    the paged store ([Bpq_store.Paged]) serves reads straight from the
    file.  [Schema.save] embeds the same graph sections, so a schema
    snapshot is also a graph snapshot. *)

val save_bin : ?selectivity:Gstats.selectivity -> Digraph.t -> string -> unit
(** Write graph (and optionally selectivity stats) to a snapshot,
    atomically. *)

val load_bin : Label.table -> string -> Digraph.t * Gstats.selectivity option
(** Verifies the checksum, validates the CSR invariants, and interns the
    stored label names into [tbl] — remapping node labels (and
    rebuilding the by-label grouping) when the table assigns different
    ids, so a snapshot loads correctly into a non-empty table.
    @raise Binfile.Corrupt on malformed or damaged snapshots. *)

val is_snapshot : string -> bool
(** Alias of {!Binfile.is_snapshot}: sniff the magic bytes. *)

(** {2 Snapshot building blocks}

    Shared with [Schema.save]/[load] and the paged store; not meant for
    general use. *)

val add_graph_sections : Binfile.writer -> Digraph.t -> unit

val graph_of_reader : Label.table -> Binfile.reader -> Digraph.t * int array
(** Returns the graph and the stored-label-id → table-id map. *)

val selectivity_of_reader :
  Label.table -> map:int array -> Binfile.reader -> Gstats.selectivity option

val add_value_blob : Buffer.t -> Value.t -> unit

val decode_value : Bytes.t -> pos:int -> len:int -> Value.t
(** Decode one value-blob entry spanning [\[pos, pos + len)]. *)
