(** Node-labeled directed data graphs [G = (V, E, f, ν)].

    Graphs are constructed through a mutable {!Builder} and then frozen into
    an immutable compressed-sparse-row representation with:
    - forward and reverse adjacency, every row sorted ascending (both
      directions are needed because the paper's notion of neighbour is
      direction-agnostic);
    - a merged-neighbour CSR (the sorted distinct union of each node's out
      and in rows), so neighbourhood retrieval is a slice, not a per-call
      allocate-and-sort;
    - nodes grouped by label (the retrieval side of type-(1) access
      constraints, and candidate enumeration in the matchers);
    - directed-edge membership as a binary search over the sorted out row
      (the probe side of edge verification in query plans) — no auxiliary
      edge hashtable.

    Node identifiers are dense integers [0 .. n_nodes - 1] in insertion
    order.  Parallel edges are collapsed at freeze time by the row-local
    sort-and-dedup. *)

type t

module Builder : sig
  type graph := t
  type t

  val create : ?node_hint:int -> Label.table -> t
  val add_node : t -> Label.t -> Value.t -> int
  (** Returns the new node's identifier. *)

  val add_edge : t -> int -> int -> unit
  (** [add_edge b src dst] records the directed edge [(src, dst)]; both
      endpoints must already exist. *)

  val n_nodes : t -> int

  val freeze : t -> graph
  (** Freezes the builder into the immutable CSR form.  A builder can be
      frozen only once; a second [freeze] (or any mutation after freezing)
      raises [Invalid_argument]. *)
end

(** {1 Structure access} *)

val label_table : t -> Label.table
val n_nodes : t -> int
val n_edges : t -> int

val size : t -> int
(** [|G| = |V| + |E|], the size measure used throughout the paper. *)

val label : t -> int -> Label.t
val value : t -> int -> Value.t

val out_degree : t -> int -> int
val in_degree : t -> int -> int

val degree : t -> int -> int
(** [out_degree + in_degree] (an upper bound on the number of distinct
    neighbours). *)

val iter_out : t -> int -> (int -> unit) -> unit
val iter_in : t -> int -> (int -> unit) -> unit

val fold_out : t -> int -> ('a -> int -> 'a) -> 'a -> 'a
val fold_in : t -> int -> ('a -> int -> 'a) -> 'a -> 'a

val out_neighbours : t -> int -> int array
(** Fresh array, sorted ascending; prefer the iterators in hot paths. *)

val in_neighbours : t -> int -> int array

val n_neighbours : t -> int -> int
(** Number of distinct neighbours in either direction (O(1)). *)

val neighbours : t -> int -> int array
(** Distinct neighbours in either direction, sorted ascending — a copy of
    the merged-neighbour CSR row (no per-call sort). *)

val iter_neighbours : t -> int -> (int -> unit) -> unit
(** Visits each distinct neighbour exactly once, ascending, without
    allocating. *)

val has_edge : t -> int -> int -> bool
(** Directed-edge membership: binary search over the sorted out row,
    O(log out_degree). *)

val adjacent : t -> int -> int -> bool
(** [has_edge u v || has_edge v u]. *)

(** {1 Labels} *)

val nodes_with_label : t -> Label.t -> int array
(** Fresh array of all nodes carrying the label (empty for labels interned
    after freezing). *)

val iter_label : t -> Label.t -> (int -> unit) -> unit
val count_label : t -> Label.t -> int

(** {1 Whole-graph iteration} *)

val iter_nodes : t -> (int -> unit) -> unit
val iter_edges : t -> (int -> int -> unit) -> unit

(** {1 Updates} *)

type delta = {
  added_nodes : (Label.t * Value.t) list;
      (** Appended in order; they receive the next free identifiers. *)
  added_edges : (int * int) list;
  removed_edges : (int * int) list;
}

val empty_delta : delta

val apply_delta : t -> delta -> t
(** Functional update (rebuilds the frozen indexes; the point of the paper's
    incremental maintenance is that the {e access-schema} indexes need only
    local repair, see {!Bpq_access.Index.apply_delta}). *)

val delta_touched : t -> delta -> int list
(** ΔG ∪ Nb_G(ΔG): endpoints of changed edges plus their neighbours in the
    pre-update graph — the locality set the paper says suffices for index
    maintenance. *)

(** {1 Frozen representation}

    The raw CSR arrays, exposed for (de)serialisation only: a snapshot
    writes them verbatim and a loader re-wraps them without re-running
    {!Builder.freeze}, so a saved graph round-trips bit-for-bit (row
    order included).  Invariants (sorted deduped rows, consistent
    offsets) are the caller's to preserve — {!Graph_io.load_bin}
    validates them before re-wrapping. *)
module Repr : sig
  type graph := t

  type t = {
    labels : int array;
    values : Value.t array;
    out_off : int array;
    out_adj : int array;
    in_off : int array;
    in_adj : int array;
    nbr_off : int array;
    nbr_adj : int array;
    by_label_off : int array;
    by_label : int array;
    n_edges : int;
  }

  val of_graph : graph -> t
  val to_graph : Label.table -> t -> graph
end
