let output oc g =
  let tbl = Digraph.label_table g in
  Printf.fprintf oc "# bpq graph: %d nodes, %d edges\n" (Digraph.n_nodes g)
    (Digraph.n_edges g);
  Digraph.iter_nodes g (fun v ->
      let lbl = Label.name tbl (Digraph.label g v) in
      match Digraph.value g v with
      | Value.Null -> Printf.fprintf oc "n %s\n" lbl
      | Value.Int i -> Printf.fprintf oc "n %s %d\n" lbl i
      | Value.Str s -> Printf.fprintf oc "n %s %S\n" lbl s);
  Digraph.iter_edges g (fun s t -> Printf.fprintf oc "e %d %d\n" s t)

let save g path = Bpq_util.Atomic_file.write path (fun oc -> output oc g)

let parse_value line_no raw =
  let raw = String.trim raw in
  if raw = "" then Value.Null
  else if String.length raw >= 2 && raw.[0] = '"' then
    try Scanf.sscanf raw "%S" (fun s -> Value.Str s)
    with Scanf.Scan_failure _ | Failure _ ->
      failwith (Printf.sprintf "line %d: malformed string literal" line_no)
  else
    match int_of_string_opt raw with
    | Some i -> Value.Int i
    | None -> failwith (Printf.sprintf "line %d: malformed value %S" line_no raw)

let split_first_word s =
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let parse tbl ic =
  let b = Digraph.Builder.create tbl in
  let line_no = ref 0 in
  (try
     while true do
       incr line_no;
       let line = String.trim (input_line ic) in
       if line <> "" && line.[0] <> '#' then begin
         let kind, rest = split_first_word line in
         match kind with
         | "n" ->
           let lbl, value_part = split_first_word (String.trim rest) in
           if lbl = "" then
             failwith (Printf.sprintf "line %d: node without label" !line_no);
           ignore
             (Digraph.Builder.add_node b (Label.intern tbl lbl)
                (parse_value !line_no value_part))
         | "e" ->
           (try Scanf.sscanf rest " %d %d" (fun s t -> Digraph.Builder.add_edge b s t)
            with Scanf.Scan_failure _ | Failure _ | Invalid_argument _ ->
              failwith (Printf.sprintf "line %d: malformed edge %S" !line_no rest))
         | _ -> failwith (Printf.sprintf "line %d: unknown declaration %S" !line_no kind)
       end
     done
   with End_of_file -> ());
  Digraph.Builder.freeze b

let load tbl path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> parse tbl ic)

(* ------------------------------------------------------------------ *)
(* Binary snapshots                                                    *)
(* ------------------------------------------------------------------ *)

(* Node values live in one blob addressed by a per-node offset array:
   Null is a zero-length entry, Int is a tag byte + 8 bytes LE, Str is a
   tag byte + raw bytes (length implied by the next offset).  The paged
   store reads single entries straight out of the blob. *)

let add_value_blob b = function
  | Value.Null -> ()
  | Value.Int i ->
    Buffer.add_char b '\001';
    for shift = 0 to 7 do
      Buffer.add_char b (Char.chr ((i lsr (8 * shift)) land 0xFF))
    done
  | Value.Str s ->
    Buffer.add_char b '\002';
    Buffer.add_string b s

let decode_value bytes ~pos ~len =
  if len = 0 then Value.Null
  else
    match Bytes.get bytes pos with
    | '\001' when len = 9 -> Value.Int (Binfile.get_i64 bytes (pos + 1))
    | '\002' -> Value.Str (Bytes.sub_string bytes (pos + 1) (len - 1))
    | _ -> raise (Binfile.Corrupt "malformed node value entry")

let add_graph_sections w g =
  let tbl = Digraph.label_table g in
  let r = Digraph.Repr.of_graph g in
  Binfile.section w ~tag:Binfile.tag_labels (fun b ->
      Binfile.add_i64 b (Label.count tbl);
      List.iter (fun l -> Binfile.add_string b (Label.name tbl l)) (Label.all tbl));
  Binfile.section w ~tag:Binfile.tag_nodes (fun b ->
      let n = Array.length r.labels in
      Binfile.add_i64 b n;
      Binfile.add_array b r.labels;
      let blob = Buffer.create 1024 in
      let voff = Array.make (n + 1) 0 in
      Array.iteri
        (fun v value ->
          voff.(v) <- Buffer.length blob;
          add_value_blob blob value;
          voff.(v + 1) <- Buffer.length blob)
        r.values;
      Binfile.add_array b voff;
      Buffer.add_buffer b blob);
  Binfile.section w ~tag:Binfile.tag_csr (fun b ->
      let n = Array.length r.labels in
      Binfile.add_i64 b n;
      Binfile.add_i64 b r.n_edges;
      Binfile.add_i64 b (Array.length r.nbr_adj);
      Binfile.add_i64 b (Array.length r.by_label_off - 1);
      Binfile.add_array b r.out_off;
      Binfile.add_array b r.out_adj;
      Binfile.add_array b r.in_off;
      Binfile.add_array b r.in_adj;
      Binfile.add_array b r.nbr_off;
      Binfile.add_array b r.nbr_adj;
      Binfile.add_array b r.by_label_off;
      Binfile.add_array b r.by_label)

let save_bin ?selectivity g path =
  let w = Binfile.writer () in
  add_graph_sections w g;
  Option.iter (fun sel -> Gstats.add_selectivity_section w sel) selectivity;
  Binfile.write w path

(* CSR offset array sanity: starts at 0, non-decreasing, ends at the adj
   length, every adjacency entry a valid node id.  Cheap (one linear
   pass) and turns a corrupted-but-checksummed file into a clear error
   instead of a later out-of-bounds surprise. *)
let validate_csr ~what n off adj =
  let bad msg = raise (Binfile.Corrupt (Printf.sprintf "%s: %s" what msg)) in
  if Array.length off <> n + 1 then bad "offset array has wrong length";
  if n >= 0 && (off.(0) <> 0 || off.(n) <> Array.length adj) then bad "offsets do not span adjacency";
  for v = 0 to n - 1 do
    if off.(v) > off.(v + 1) then bad "offsets decrease"
  done;
  Array.iter (fun w -> if w < 0 then bad "negative adjacency entry") adj

(* Counting sort of node ids into per-label CSR buckets — the freeze-time
   layout, rebuilt here when loading into a table whose label ids differ
   from the stored ones. *)
let build_by_label nlabels labels =
  let n = Array.length labels in
  let off = Array.make (nlabels + 1) 0 in
  Array.iter (fun l -> off.(l + 1) <- off.(l + 1) + 1) labels;
  for i = 1 to nlabels do
    off.(i) <- off.(i) + off.(i - 1)
  done;
  let adj = Array.make n 0 in
  let cursor = Array.copy off in
  Array.iteri
    (fun v l ->
      adj.(cursor.(l)) <- v;
      cursor.(l) <- cursor.(l) + 1)
    labels;
  (off, adj)

(* Decode the graph sections of [r] into [tbl], returning the graph and
   the stored-label-id -> [tbl]-id map (used by schema and stats loaders
   downstream). *)
let graph_of_reader tbl r =
  let corrupt msg = raise (Binfile.Corrupt msg) in
  (* Labels: intern the stored names in id order. *)
  let lc = Binfile.Cur.of_bytes (Binfile.require_section r Binfile.tag_labels) in
  let nlabels_stored = Binfile.Cur.i64 lc in
  if nlabels_stored < 0 then corrupt "labels section: negative count";
  let map = Array.init nlabels_stored (fun _ -> Label.intern tbl (Binfile.Cur.str lc)) in
  let identity = Array.for_all2 (fun i j -> i = j) map (Array.init nlabels_stored Fun.id) in
  (* Nodes. *)
  let nc = Binfile.Cur.of_bytes (Binfile.require_section r Binfile.tag_nodes) in
  let n = Binfile.Cur.i64 nc in
  if n < 0 then corrupt "nodes section: negative node count";
  let labels = Binfile.Cur.array nc n in
  let voff = Binfile.Cur.array nc (n + 1) in
  let blob_base = Binfile.Cur.pos nc in
  let nodes_bytes = Binfile.require_section r Binfile.tag_nodes in
  let values =
    Array.init n (fun v ->
        let lo = voff.(v) and hi = voff.(v + 1) in
        if lo < 0 || hi < lo || blob_base + hi > Bytes.length nodes_bytes then
          corrupt "nodes section: value offsets out of range";
        decode_value nodes_bytes ~pos:(blob_base + lo) ~len:(hi - lo))
  in
  Array.iter
    (fun l -> if l < 0 || l >= nlabels_stored then corrupt "nodes section: label id out of range")
    labels;
  (* CSR. *)
  let cc = Binfile.Cur.of_bytes (Binfile.require_section r Binfile.tag_csr) in
  let n' = Binfile.Cur.i64 cc in
  if n' <> n then corrupt "csr section: node count disagrees with nodes section";
  let m = Binfile.Cur.i64 cc in
  let nbr_len = Binfile.Cur.i64 cc in
  let bl = Binfile.Cur.i64 cc in
  if m < 0 || nbr_len < 0 || bl < 0 then corrupt "csr section: negative array length";
  let out_off = Binfile.Cur.array cc (n + 1) in
  let out_adj = Binfile.Cur.array cc m in
  let in_off = Binfile.Cur.array cc (n + 1) in
  let in_adj = Binfile.Cur.array cc m in
  let nbr_off = Binfile.Cur.array cc (n + 1) in
  let nbr_adj = Binfile.Cur.array cc nbr_len in
  let by_label_off = Binfile.Cur.array cc (bl + 1) in
  let by_label = Binfile.Cur.array cc n in
  validate_csr ~what:"out CSR" n out_off out_adj;
  validate_csr ~what:"in CSR" n in_off in_adj;
  validate_csr ~what:"neighbour CSR" n nbr_off nbr_adj;
  validate_csr ~what:"label CSR" bl by_label_off by_label;
  Array.iter (fun w -> if w >= n then corrupt "adjacency entry out of range") out_adj;
  Array.iter (fun w -> if w >= n then corrupt "adjacency entry out of range") in_adj;
  Array.iter (fun w -> if w >= n then corrupt "adjacency entry out of range") nbr_adj;
  Array.iter (fun w -> if w >= n then corrupt "label CSR entry out of range") by_label;
  let remap l = map.(l) in
  let labels, by_label_off, by_label =
    if identity then (labels, by_label_off, by_label)
    else begin
      (* The table assigned different ids: remap node labels and rebuild
         the by-label grouping (entry order within a bucket is ascending
         node id either way, so the result matches a fresh freeze). *)
      let labels = Array.map remap labels in
      let off, adj = build_by_label (Label.count tbl) labels in
      (labels, off, adj)
    end
  in
  let g =
    Digraph.Repr.to_graph tbl
      { labels;
        values;
        out_off;
        out_adj;
        in_off;
        in_adj;
        nbr_off;
        nbr_adj;
        by_label_off;
        by_label;
        n_edges = m }
  in
  (g, map)

let selectivity_of_reader tbl ~map r =
  Binfile.section_bytes r Binfile.tag_stats
  |> Option.map (fun bytes -> Gstats.selectivity_of_bytes bytes ~map ~nlabels:(Label.count tbl))

let load_bin tbl path =
  let r = Binfile.read_file path in
  let g, map = graph_of_reader tbl r in
  (g, selectivity_of_reader tbl ~map r)

let is_snapshot = Binfile.is_snapshot
