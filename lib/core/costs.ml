open Bpq_graph
open Bpq_pattern
open Bpq_access

type t = { sel : Gstats.selectivity }

let make sel = { sel }
let of_graph g = make (Gstats.selectivity g)
let selectivity t = t.sel

(* Estimated realized candidates for a pattern node from label statistics
   alone: the label population, capped by the distinct integer values the
   predicate admits (an estimate, not a bound — several nodes may share a
   value). *)
let anchor_score t q u =
  let base = float_of_int (Gstats.node_count t.sel (Pattern.label q u)) in
  match Predicate.value_cap (Pattern.pred q u) with
  | Some cap -> Float.min base (float_of_int cap)
  | None -> base

(* Estimated hits per anchor tuple of constraint [c].  For type (1) the
   whole target population streams out; otherwise the joint
   common-neighbour count is at most each marginal, so take the minimum
   over source labels of the average number of target-labeled neighbours
   (either direction) of a source-labeled node. *)
let fanout t (c : Constr.t) =
  let bound = float_of_int c.bound in
  match c.source with
  | [] -> Float.min bound (float_of_int (Gstats.node_count t.sel c.target))
  | sources ->
    List.fold_left
      (fun acc s ->
        let cnt = Gstats.node_count t.sel s in
        let avg =
          if cnt = 0 then 0.0
          else
            float_of_int
              (Gstats.pair_freq t.sel ~src:s ~dst:c.target
              + Gstats.pair_freq t.sel ~src:c.target ~dst:s)
            /. float_of_int cnt
        in
        Float.min acc avg)
      bound sources

let annotate t (plan : Plan.t) =
  let q = plan.pattern in
  let nq = Pattern.n_nodes q in
  (* Estimated realized |cmat(u)| after the fetches seen so far; repeated
     fetches intersect, so the estimate only tightens. *)
  let node_est = Array.make nq infinity in
  let tuple_est anchors =
    List.fold_left (fun acc (_, a) -> acc *. node_est.(a)) 1.0 anchors
  in
  let fetch_est =
    Array.of_list
      (List.map
         (fun (f : Plan.fetch) ->
           let raw = tuple_est f.anchors *. fanout t f.constr in
           let capped =
             Float.min raw (Float.min (anchor_score t q f.unode) (float_of_int f.est))
           in
           node_est.(f.unode) <- Float.min node_est.(f.unode) capped;
           capped)
         plan.fetches)
  in
  let edge_est =
    Array.of_list
      (List.map
         (fun (ec : Plan.edge_check) ->
           let raw = tuple_est ec.anchors *. fanout t ec.via in
           Float.min raw (float_of_int ec.est))
         plan.edge_checks)
  in
  (fetch_est, edge_est)

let order_plan t (plan : Plan.t) =
  let fetch_est, edge_est = annotate t plan in
  let fetches = Array.of_list plan.fetches in
  let m = Array.length fetches in
  (* A fetch may move earlier only past fetches of unrelated nodes: it
     stays after every input-order-earlier fetch of its own node (repeat
     fetches intersect in a fixed order) and of each anchor node (anchors
     must be populated, and at least as reduced as the planner assumed,
     before use). *)
  let deps = Array.make m [] in
  for i = 0 to m - 1 do
    let fi = fetches.(i) in
    let nodes = fi.Plan.unode :: List.map snd fi.Plan.anchors in
    for j = 0 to i - 1 do
      if List.mem fetches.(j).Plan.unode nodes then deps.(i) <- j :: deps.(i)
    done
  done;
  let emitted = Array.make m false in
  let order = ref [] in
  for _ = 1 to m do
    let best = ref (-1) in
    for i = 0 to m - 1 do
      if
        (not emitted.(i))
        && List.for_all (fun j -> emitted.(j)) deps.(i)
        && (!best = -1 || fetch_est.(i) < fetch_est.(!best))
      then best := i
    done;
    emitted.(!best) <- true;
    order := !best :: !order
  done;
  let fetches' = List.rev_map (fun i -> fetches.(i)) !order in
  (* Edge checks only add edges to a deduplicated set: any order yields
     the same G_Q.  Cheapest-first warms the fetch cache on the smallest
     buckets and surfaces empty joins early. *)
  let indexed = List.mapi (fun i ec -> (edge_est.(i), i, ec)) plan.edge_checks in
  let edge_checks' =
    List.stable_sort
      (fun (a, i, _) (b, j, _) -> if a = b then compare i j else Float.compare a b)
      indexed
    |> List.map (fun (_, _, ec) -> ec)
  in
  { plan with Plan.fetches = fetches'; edge_checks = edge_checks' }
