(** Human-readable plan reports: EXPLAIN and EXPLAIN-ANALYZE for bounded
    query plans.

    {!describe} renders the static plan — the fetch operations, the edge
    directives, the covering constraints and the worst-case arithmetic (the
    form of the paper's Example 1 walkthrough).  {!analyze} additionally
    executes the plan against a schema and reports, per operation, the
    realised cardinality next to its static bound, together with the total
    data accessed relative to [|G|].

    With [costs] (a {!Costs} model), both add an "estimated" column — the
    cost model's predicted realized cardinality per operation — so
    misestimates are visible next to what actually happened. *)

open Bpq_access

val describe : ?costs:Costs.t -> Plan.t -> string
(** Static report; never touches a graph. *)

type analysis = {
  report : string;  (** The rendered EXPLAIN-ANALYZE table. *)
  result : Exec.result;  (** The execution behind it, for further use. *)
}

val analyze : ?pool:Bpq_util.Pool.t -> ?costs:Costs.t -> Schema.t -> Plan.t -> analysis
(** Executes the plan ([pool] parallelises the execution, see {!Exec.run})
    and renders estimate-vs-realised per operation.  The realised numbers
    are always within the static estimates (a property the test suite pins
    down); the cost model's estimates carry no such guarantee — that is
    the point of printing them. *)

val analyze_with :
  ?pool:Bpq_util.Pool.t -> ?costs:Costs.t -> Exec.source -> Plan.t -> analysis
(** {!analyze} against any {!Exec.source} (the accessed fraction uses the
    source's [graph_size]); {!analyze} shims through
    {!Exec.source_of_schema}. *)
