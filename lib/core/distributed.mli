(** Distributed bounded evaluation (simulated).

    The paper's related-work section notes that its methods "can be
    readily adapted to distributed settings": a plan only interacts with
    the data through index lookups and edge probes, each addressed by a
    key — exactly the access pattern of a sharded key/value store.  This
    module simulates that deployment: the schema's index entries are
    hash-partitioned over [shards] workers, edge probes route to the
    shard owning the source node, and the executor (unchanged —
    {!Exec.run_with}) issues its accesses against the sharded store while
    per-shard traffic is recorded.

    Because every fetch is bounded by the access constraints, the total
    traffic — and hence the load on any one shard — is independent of
    [|G|], which is what makes the adaptation "ready". *)

open Bpq_access

type stats = {
  shards : int;
  lookups_per_shard : int array;  (** Index lookups served by each shard. *)
  items_per_shard : int array;  (** Data items shipped by each shard. *)
  probes_per_shard : int array;  (** Edge probes served by each shard. *)
}

val balance : stats -> float
(** Max-over-mean of per-shard shipped items (1.0 = perfectly even);
    [nan] when nothing was shipped. *)

type t

val create : shards:int -> Schema.t -> t
(** Partition the schema's indexes and edge ownership over [shards]
    simulated workers.  The underlying storage is shared in-process; only
    the routing and accounting are simulated. *)

val create_with : shards:int -> Exec.source -> t
(** Same over any {!Exec.source} — e.g. a paged snapshot store, so shard
    routing composes with out-of-core serving; {!create} shims through
    {!Exec.source_of_schema}. *)

val run : t -> Plan.t -> Exec.result * stats
(** Execute a plan against the sharded store.  The {!Exec.result} is
    identical to single-node execution (pinned by the test suite). *)
