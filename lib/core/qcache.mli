(** Cross-query caching for repeated-query serving.

    Production workloads repeat the same pattern skeletons with different
    parameters ({!Bpq_pattern.Template}); the paper's guarantee — a
    bounded [G_Q] independent of [|G|] — makes the per-query work small,
    and this module stops re-paying even that across queries.  Three
    tiers, consulted top-down:

    + {b plan cache} — [Ebchk.check] + [Qplan.generate] memoised per
      pattern {e shape}: keyed by {!Bpq_access.Schema.stamp} plus an exact
      structural key (labels and edges, predicates excluded), with a
      second map keyed by the canonical {!Bpq_pattern.Pattern.fingerprint}
      so renumbered isomorphic shapes share one planning run (the
      canonical plan is renumbered through the canonical permutation on
      reuse).  Negative results (not effectively bounded) are cached too.
    + {b fetch cache} — a bounded LRU over raw index lookups
      ({!Fetch_cache}), shared by every evaluation through this value, so
      overlapping [G_Q] fragments are fetched once.
    + {b result cache} — full answers keyed by schema stamp, the exact
      pattern {e including} predicates, and the match limit; invalidated
      by graph deltas through per-label generations ({!note_delta}), so a
      delta only evicts answers whose patterns use an affected label —
      irrelevant deltas keep entries warm.

    {b Answer fidelity.}  For repeated shapes with unchanged node
    numbering — every instantiation of one template, and any query asked
    twice — answers are byte-identical to uncached evaluation at every
    capacity, including 0 and 1 (pinned by the property tests).  When a
    plan is borrowed across a {e nontrivial renumbering} of an isomorphic
    shape, the borrowed plan may differ from the directly generated one in
    tie-breaking; the answer is then the same match {e set} (any valid
    plan yields [Q(G_Q) = Q(G)]) but subgraph matches may enumerate in a
    different order than a cold run would produce.

    {b Domain safety.}  One [Qcache.t] may be used from every worker of a
    {!Bpq_util.Pool}: internally it keeps one shard (plan map, fetch LRU,
    result map, counters) {e per domain}, created on first use under a
    mutex and touched only by its owning domain afterwards — no locks on
    the hot path, no cross-domain mutation.  {!stats} merges the shards'
    counters.  {!note_delta} mutates shared invalidation state and must
    not run concurrently with evaluations (apply deltas between serving
    batches, as {!Incremental} does).

    {b Lineage.}  A cache follows one schema lineage: a {!Bpq_access.Schema.build}
    result and its [apply_delta] descendants.  Evaluating a superseded
    ancestor through the same cache after {!note_delta} is unsupported
    (the generations have moved on). *)

open Bpq_util
open Bpq_graph
open Bpq_pattern
open Bpq_access

type t

val create :
  ?plan_capacity:int -> ?fetch_capacity:int -> ?result_capacity:int -> unit -> t
(** Capacities are entry counts {e per domain shard} (defaults 4096 /
    65536 / 1024).  Capacity 0 disables the corresponding tier. *)

val of_megabytes : int -> t
(** Size the tiers from a memory budget, the CLI's [--cache MB] knob: the
    bulk goes to the fetch tier (≈ 384 bytes per cached bucket assumed),
    a slice to results.  @raise Invalid_argument when [mb <= 0] (the CLI
    maps 0 to "no cache"). *)

type answer = Bounded_eval.answer =
  | Matches of int array list  (** Subgraph semantics. *)
  | Relation of int array array  (** Simulation semantics. *)

val plan_for :
  t -> ?costs:Costs.t -> Actualized.semantics -> Schema.t -> Pattern.t -> Plan.t option
(** Plan-tier [Bounded_eval.plan_for]: one [Ebchk] + [Qplan] run per
    (stamp, shape, semantics), then cache hits.  [None] (not effectively
    bounded) is cached as well.  [costs] orders a freshly generated plan
    ({!Qplan.generate}); cached plans are served as stored — all
    orderings carry identical operations and bounds, so mixing callers
    with and without a cost model stays sound. *)

val eval_plan :
  t ->
  ?pool:Pool.t ->
  ?deadline:Timer.deadline ->
  ?limit:int ->
  Schema.t ->
  Plan.t ->
  answer
(** Result-tier + fetch-tier evaluation of an already-generated plan.
    Raises [Timer.Timeout] like {!Bounded_eval} (nothing is stored then);
    a result-cache hit returns without touching graph or indexes.
    [pool] parallelises a miss's evaluation within the query
    ({!Bounded_eval}); answers — and hence cached entries — are
    byte-identical at every pool size, so warm hits serve runs with any
    [BPQ_JOBS] setting. *)

val eval :
  t ->
  ?pool:Pool.t ->
  ?costs:Costs.t ->
  ?deadline:Timer.deadline ->
  ?limit:int ->
  Actualized.semantics ->
  Schema.t ->
  Pattern.t ->
  answer option
(** {!plan_for} + {!eval_plan}; [None] when not effectively bounded. *)

(** {1 Source-first variants}

    The same three tiers against any {!Exec.source} — plans are generated
    from [src.constraints], keys carry [src.stamp].  Because snapshots
    preserve the stamp, one cache serves a schema and the paged store
    opened from its snapshot interchangeably; the schema-taking functions
    above shim through {!Exec.source_of_schema}. *)

val plan_for_with :
  t ->
  ?costs:Costs.t ->
  Actualized.semantics ->
  Exec.source ->
  Pattern.t ->
  Plan.t option

val eval_plan_with :
  t ->
  ?pool:Pool.t ->
  ?deadline:Timer.deadline ->
  ?limit:int ->
  Exec.source ->
  Plan.t ->
  answer

val eval_with :
  t ->
  ?pool:Pool.t ->
  ?costs:Costs.t ->
  ?deadline:Timer.deadline ->
  ?limit:int ->
  Actualized.semantics ->
  Exec.source ->
  Pattern.t ->
  answer option

val fetch_tier : t -> Fetch_cache.t
(** The calling domain's fetch-cache shard — for passing to
    {!Bounded_eval} / {!Exec} directly. *)

val fetch_tier_for : t -> Exec.source -> Fetch_cache.t
(** The calling domain's fetch-cache shard {e for the source's data
    version}: sources with [data_version = 0] (static snapshots) share
    the domain's main tier; write-through sources get one tier per
    version, created lazily on the owning domain, so buckets read
    through two different overlay states can never be confused — the
    race-free replacement for clearing on writes.  The two most recent
    versions stay live per shard (in-flight evaluations against the
    previous serving slot finish warm across a write swap); older ones
    are recreated cold if referenced again. *)

val flight_key :
  ?limit:int -> Actualized.semantics -> stamp:int -> Pattern.t -> string
(** Identity of an in-flight evaluation for single-flight coalescing
    ({!Bpq_core.Server}): schema stamp, semantics, canonical structural
    fingerprint, the exact nodes (label, predicate) and edges, and the
    match limit.  Two requests with equal keys are guaranteed
    byte-identical answers against the same source, so one evaluation may
    serve both; renumbered isomorphs (whose answer columns differ) never
    collide.  Pure — no cache state is read or written. *)

val note_delta : t -> Digraph.t -> Digraph.delta -> unit
(** [note_delta t g delta] — [g] is the {e pre-delta} graph.  Bumps the
    generation of every label the delta can affect (labels of changed
    edges' endpoints and of added nodes), which lazily invalidates result
    entries whose pattern uses one of them, and clears the fetch tiers
    (their buckets mirror index contents, which the delta repairs).  Plan
    entries survive: the constraint set, and hence every plan, is
    delta-invariant ({!Bpq_access.Schema.stamp}). *)

type stats = {
  plan_hits : int;
  plan_misses : int;
  fetch_hits : int;
  fetch_misses : int;
  fetch_evictions : int;
  fetch_bypasses : int;
  result_hits : int;
  result_misses : int;
  result_stale : int;  (** Entries found but invalidated by a delta. *)
  gens_bumped : int;
      (** Total per-label generation bumps recorded by {!note_delta} —
          how much delta-driven invalidation pressure the result tier has
          seen.  Write-through sources carry their own generations
          ({!Exec.source.label_gen}) and do not count here. *)
}

val stats : t -> stats
(** Counters summed over all domain shards. *)
