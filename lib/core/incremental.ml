open Bpq_util
open Bpq_graph
open Bpq_access
open Bpq_pattern

type answer = Matches of int array list | Relation of int array array

type refresh_stats = {
  reused_plan : bool;
  fetch_hits : int;
  fetch_misses : int;
}

type t = {
  semantics : Actualized.semantics;
  schema : Schema.t;
  plan : Plan.t;
  answer : answer;
  skipped : bool;
  cache : Qcache.t option;
  refresh : refresh_stats option;
}

let evaluate ?cache semantics schema plan =
  let fetch = Option.map Qcache.fetch_tier cache in
  match semantics with
  | Actualized.Subgraph -> Matches (Bounded_eval.bvf2_matches ?cache:fetch schema plan)
  | Actualized.Simulation -> Relation (Bounded_eval.bsim ?cache:fetch schema plan)

let create ?cache semantics schema q =
  let plan =
    match cache with
    | Some c -> Qcache.plan_for c semantics schema q
    | None -> Bounded_eval.plan_for semantics schema q
  in
  match plan with
  | None -> None
  | Some plan ->
    Some
      { semantics;
        schema;
        plan;
        answer = evaluate ?cache semantics schema plan;
        skipped = false;
        cache;
        refresh = None }

let answer t = t.answer
let schema t = t.schema
let last_update_skipped t = t.skipped
let last_refresh t = t.refresh

(* A delta is irrelevant when no changed edge connects two pattern labels
   and no added node can stand alone as a match: matches and simulation
   pairs only ever involve pattern-labeled nodes, their witnessing edges
   run between two of them, and a node with no new adjacency can only
   enter the answer through a degree-zero pattern node. *)
let irrelevant g q (delta : Digraph.delta) =
  let labels = Pattern.labels_used q in
  let max_label = List.fold_left max (-1) labels in
  let used = Bitset.of_array (max_label + 1) (Array.of_list labels) in
  let uses l = l >= 0 && l <= max_label && Bitset.mem used l in
  let n = Digraph.n_nodes g in
  (* Materialised once per delta: probing the list with [List.nth] per
     edge endpoint made this check quadratic in the delta size. *)
  let added = Array.of_list delta.added_nodes in
  (* A label of the existing endpoint [v], or of the fresh node the delta
     introduces at position [v - n]; fresh endpoints beyond the delta's own
     additions are malformed and treated as label-free (apply_delta will
     reject them anyway). *)
  let label_of v =
    if v < n then Some (Digraph.label g v)
    else if v - n < Array.length added then Some (fst added.(v - n))
    else None
  in
  let endpoint_uses v = match label_of v with Some l -> uses l | None -> false in
  let edge_relevant (s, d) =
    (* An edge between two pattern labels can create or destroy a
       witnessing edge; one pattern-labeled fresh endpoint alone is enough
       (the other side's label check is what the old-node case needs). *)
    if s >= n || d >= n then endpoint_uses s || endpoint_uses d
    else endpoint_uses s && endpoint_uses d
  in
  let isolated_label_added () =
    (* Degree-zero pattern nodes match on label+predicate alone, so a bare
       added node with such a label can enlarge the answer even with no
       edges in the delta. *)
    let pn = Pattern.n_nodes q in
    let deg = Array.make pn 0 in
    List.iter
      (fun (u, v) ->
        deg.(u) <- deg.(u) + 1;
        deg.(v) <- deg.(v) + 1)
      (Pattern.edges q);
    let isolated = Array.make (max_label + 1) false in
    let any = ref false in
    for u = 0 to pn - 1 do
      if deg.(u) = 0 then begin
        let l = Pattern.label q u in
        if l >= 0 && l <= max_label then begin
          isolated.(l) <- true;
          any := true
        end
      end
    done;
    !any
    && Array.exists (fun (l, _) -> l >= 0 && l <= max_label && isolated.(l)) added
  in
  List.for_all (fun e -> not (edge_relevant e)) delta.added_edges
  && List.for_all (fun e -> not (edge_relevant e)) delta.removed_edges
  && not (isolated_label_added ())

let update t delta =
  (* The cached plan is reused as-is across deltas: the constraint set is
     delta-invariant, so no Ebchk re-check or re-planning happens here. *)
  Option.iter (fun c -> Qcache.note_delta c (Schema.graph t.schema) delta) t.cache;
  if irrelevant (Schema.graph t.schema) t.plan.Plan.pattern delta then
    let schema = Schema.apply_delta t.schema delta in
    { t with schema; skipped = true }
  else begin
    let schema = Schema.apply_delta t.schema delta in
    let before = Option.map Qcache.stats t.cache in
    let answer = evaluate ?cache:t.cache t.semantics schema t.plan in
    let refresh =
      match (t.cache, before) with
      | Some c, Some b ->
        let a = Qcache.stats c in
        Some
          { reused_plan = true;
            fetch_hits = a.Qcache.fetch_hits - b.Qcache.fetch_hits;
            fetch_misses = a.Qcache.fetch_misses - b.Qcache.fetch_misses }
      | _ -> Some { reused_plan = true; fetch_hits = 0; fetch_misses = 0 }
    in
    { t with schema; answer; skipped = false; refresh }
  end
