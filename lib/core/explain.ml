open Bpq_graph
open Bpq_pattern
open Bpq_access
module Table = Bpq_util.Table

let node_name q u = Printf.sprintf "u%d:%s" u (Label.name (Pattern.label_table q) (Pattern.label q u))

let anchors_str anchors =
  if anchors = [] then "-"
  else String.concat "," (List.map (fun (_, v) -> Printf.sprintf "u%d" v) anchors)

let est_str e = if Float.is_finite e then Printf.sprintf "~%.0f" e else "-"

let describe ?costs (plan : Plan.t) =
  let q = plan.pattern in
  let tbl = Pattern.label_table q in
  let annotated = Option.map (fun c -> Costs.annotate c plan) costs in
  let header = [ "op"; "target"; "keyed by"; "via"; "worst case" ] in
  let header = if costs = None then header else header @ [ "est. realized" ] in
  let table = Table.create header in
  let est_cell pick i =
    match annotated with None -> [] | Some ann -> [ est_str (pick ann).(i) ]
  in
  List.iteri
    (fun i (f : Plan.fetch) ->
      Table.add_row table
        ([ Printf.sprintf "ft%d" (i + 1);
           node_name q f.unode;
           anchors_str f.anchors;
           Constr.to_string tbl f.constr;
           string_of_int f.est ]
        @ est_cell fst i))
    plan.fetches;
  List.iteri
    (fun i (ec : Plan.edge_check) ->
      let s, d = ec.edge in
      Table.add_row table
        ([ "check";
           Printf.sprintf "u%d->u%d" s d;
           anchors_str ec.anchors;
           Constr.to_string tbl ec.via;
           string_of_int ec.est ]
        @ est_cell snd i))
    plan.edge_checks;
  Printf.sprintf "%s\ntotals: <=%d candidate nodes, <=%d candidate edges\n"
    (Table.render table) (Plan.node_bound plan) (Plan.edge_bound plan)

type analysis = { report : string; result : Exec.result }

let analyze_with ?pool ?costs (src : Exec.source) (plan : Plan.t) =
  let result = Exec.run_with ?pool src plan in
  let q = plan.pattern in
  let annotated = Option.map (fun c -> Costs.annotate c plan) costs in
  let header = [ "op"; "worst case" ] in
  let header = if costs = None then header else header @ [ "estimated" ] in
  (* The pushed column only appears when some operation was evaluated
     shard-side, so single-process reports are unchanged. *)
  let any_pushed = List.exists (fun (tr : Exec.op_trace) -> tr.pushed) result.trace in
  let table =
    Table.create (header @ [ "realised"; "used" ] @ if any_pushed then [ "pushed" ] else [])
  in
  (* The trace lists fetches in plan order, then edge checks in plan
     order — the same order [Costs.annotate] reports estimates in. *)
  let fetch_i = ref 0 and edge_i = ref 0 in
  List.iter
    (fun (tr : Exec.op_trace) ->
      let label, realized_label, est =
        match tr.op with
        | `Fetch u ->
          let i = !fetch_i in
          incr fetch_i;
          ( Printf.sprintf "fetch %s" (node_name q u),
            "candidates",
            Option.map (fun ann -> (fst ann).(i)) annotated )
        | `Edge (s, d) ->
          let i = !edge_i in
          incr edge_i;
          ( Printf.sprintf "check u%d->u%d" s d,
            "edges",
            Option.map (fun ann -> (snd ann).(i)) annotated )
      in
      Table.add_row table
        ([ label; string_of_int tr.estimate ]
        @ (match est with None -> [] | Some e -> [ est_str e ])
        @ [ string_of_int tr.realized;
            Printf.sprintf "%.0f%% %s"
              (if tr.estimate = 0 then 0.0
               else 100.0 *. float_of_int tr.realized /. float_of_int tr.estimate)
              realized_label ]
        @ if any_pushed then [ (if tr.pushed then "yes" else "no") ] else []))
    result.trace;
  let gsize = src.Exec.graph_size in
  let report =
    Printf.sprintf
      "%s\nG_Q: %d nodes, %d edges; accessed %d data items = %.4f%% of |G| (%d)\n"
      (Table.render table) (Digraph.n_nodes result.gq) (Digraph.n_edges result.gq)
      (Exec.accessed result.stats)
      (100.0 *. float_of_int (Exec.accessed result.stats) /. float_of_int gsize)
      gsize
  in
  { report; result }

let analyze ?pool ?costs schema plan =
  analyze_with ?pool ?costs (Exec.source_of_schema schema) plan
