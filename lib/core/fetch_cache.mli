(** Fetch-level LRU cache over access-index lookup results.

    Overlapping queries fetch overlapping fragments of [G_Q]: every
    instantiation of a template keys the same indexes with largely the
    same anchor tuples.  This cache memoises raw {!Bpq_access.Index}
    lookup results — {e before} predicate filtering, so one entry serves
    every query shape — keyed by a single packed integer combining a
    per-cache constraint identifier with the key tuple (2-node tuples are
    normalised min/max first, matching the index's own key normalisation).

    Packing is exact, never hashed: keys that do not fit the packed layout
    (arity ≥ 3, node ids ≥ 2^23, or more than 2^14 distinct constraints)
    bypass the cache and are answered by the underlying index directly, so
    a cached lookup always streams exactly the bucket the index would.

    A value is {e single-domain} state: under the domain pool each worker
    owns its own cache ({!Qcache} hands them out per domain). *)

open Bpq_access

type t

val create : capacity:int -> unit -> t
(** [capacity] is the maximum number of cached buckets; [0] disables
    storage (everything misses).  @raise Invalid_argument if negative. *)

val capacity : t -> int

val lookup_iter :
  t -> Constr.t -> int array -> ((int -> unit) -> unit) -> (int -> unit) -> unit
(** [lookup_iter t c tuple underlying f]: stream the lookup result of
    [tuple] under constraint [c] to [f], from cache when present,
    otherwise by running [underlying] (which must stream the index bucket
    for exactly this (constraint, tuple) pair) and retaining its output.
    [tuple] is read during the call and never retained — callers may reuse
    the buffer, as the executor's odometer does.  Emission order is the
    bucket order either way. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  bypasses : int;  (** Lookups whose key did not fit the packed layout. *)
}

val stats : t -> stats

val clear : t -> unit
(** Drop all cached buckets (counters are kept, constraint ids survive). *)
