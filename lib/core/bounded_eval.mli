(** Bounded query evaluation — the paper's [bVF2] and [bSim].

    Given an effectively bounded query and its plan, evaluation is:
    execute the plan (bounded fetches building [G_Q]), then run the
    conventional matcher on [G_Q] restricted to the fetched candidate sets.
    Answers are reported in the original graph's node identifiers, and by
    construction [Q(G_Q) = Q(G)] (validated extensively by the property
    tests). *)

open Bpq_util
open Bpq_access
open Bpq_pattern

val plan_for : Actualized.semantics -> Schema.t -> Pattern.t -> Plan.t option
(** Convenience: {!Ebchk.check} + {!Qplan.generate} against the schema's
    constraint list. *)

(** Every evaluator below accepts [?cache], a fetch-level lookup cache
    (see {!Fetch_cache}), and [?pool], which parallelises the plan
    execution ({!Exec.run}) and — for bVF2 — the match search
    ({!Vf2.matches}) within the single query; answers are byte-identical
    with the cache absent, present, or at any capacity, and at every pool
    size. *)

(** {1 Source-first evaluation}

    The primary entry point: evaluation against any {!Exec.source} —
    in-memory schema, paged snapshot, sharded store — dispatching on the
    plan's semantics.  The schema-taking functions below are shims over
    this through {!Exec.source_of_schema}. *)

type answer =
  | Matches of int array list  (** Subgraph semantics. *)
  | Relation of int array array  (** Simulation semantics. *)

val run :
  ?pool:Pool.t ->
  ?deadline:Timer.deadline ->
  ?limit:int ->
  ?cache:Fetch_cache.t ->
  Exec.source ->
  Plan.t ->
  answer
(** [limit] caps subgraph match counts and is ignored under simulation
    semantics.  The answer is identical for every backend serving the
    same data: everything flows through the source's bounded lookups, so
    byte-identity across backends follows from the lookups streaming the
    same buckets (pinned by the store test suite). *)

val matches_with :
  ?pool:Pool.t ->
  ?deadline:Timer.deadline ->
  ?limit:int ->
  ?cache:Fetch_cache.t ->
  Exec.source ->
  Plan.t ->
  int array list * Exec.stats
(** {!bvf2_with_stats} against a source (the per-semantics form of
    {!run}, with the execution stats the CLI reports). *)

val sim_with :
  ?pool:Pool.t ->
  ?deadline:Timer.deadline ->
  ?cache:Fetch_cache.t ->
  Exec.source ->
  Plan.t ->
  int array array * Exec.stats
(** {!bsim_with_stats} against a source. *)

(** {1 Subgraph queries (bVF2)} *)

val bvf2_matches :
  ?pool:Pool.t ->
  ?deadline:Timer.deadline ->
  ?limit:int ->
  ?cache:Fetch_cache.t ->
  Schema.t ->
  Plan.t ->
  int array list
(** All isomorphism matches, each as a pattern-indexed array of original
    node ids. *)

val bvf2_count :
  ?pool:Pool.t ->
  ?deadline:Timer.deadline ->
  ?limit:int ->
  ?cache:Fetch_cache.t ->
  Schema.t ->
  Plan.t ->
  int

val bvf2_with_stats :
  ?pool:Pool.t ->
  ?deadline:Timer.deadline ->
  ?cache:Fetch_cache.t ->
  Schema.t ->
  Plan.t ->
  int array list * Exec.stats

(** {1 Simulation queries (bSim)} *)

val bsim :
  ?pool:Pool.t ->
  ?deadline:Timer.deadline ->
  ?cache:Fetch_cache.t ->
  Schema.t ->
  Plan.t ->
  int array array
(** The maximum match relation as per-pattern-node sorted arrays of
    original node ids; all-empty when no simulation exists. *)

val bsim_with_stats :
  ?pool:Pool.t ->
  ?deadline:Timer.deadline ->
  ?cache:Fetch_cache.t ->
  Schema.t ->
  Plan.t ->
  int array array * Exec.stats
