open Bpq_util

type item = {
  semantics : Actualized.semantics;
  plan : Plan.t;
}

let item semantics plan = { semantics; plan }

type answer = Bounded_eval.answer =
  | Matches of int array list
  | Relation of int array array

type outcome =
  | Answer of answer * float
  | Timeout of float

let answer_size = function
  | Matches ms -> List.length ms
  | Relation sim -> Array.fold_left (fun acc vs -> acc + Array.length vs) 0 sim

let plan_all ?(pool = Pool.sequential) semantics constrs patterns =
  Pool.map_list pool (fun q -> (q, Qplan.generate semantics q constrs)) patterns

let run ?(pool = Pool.sequential) ?intra ?cache ?timeout ?limit (src : Exec.source) items =
  Pool.map_list pool
    (fun it ->
      (* The deadline is private to this item: deadlines are mutable and
         must never cross domains.  The cache is shared — it shards itself
         per domain, so workers never contend (see Qcache).  [intra], when
         given, additionally parallelises each item's own execution and
         match search; answers stay byte-identical, so the two levels of
         parallelism compose freely (nested submissions drain through the
         same pool without deadlock). *)
      let deadline = Option.map Timer.deadline_after timeout in
      let start = Timer.now () in
      match
        match cache with
        | Some c -> Qcache.eval_plan_with c ?pool:intra ?deadline ?limit src it.plan
        | None -> Bounded_eval.run ?pool:intra ?deadline ?limit src it.plan
      with
      | answer -> Answer (answer, Timer.now () -. start)
      | exception Timer.Timeout -> Timeout (Timer.now () -. start))
    items

let eval ?pool ?intra ?cache ?timeout ?limit schema items =
  run ?pool ?intra ?cache ?timeout ?limit (Exec.source_of_schema schema) items

let run_patterns ?pool ?intra ?cache ?timeout ?limit semantics (src : Exec.source) patterns =
  let planned =
    match cache with
    | Some c ->
      Pool.map_list
        (Option.value pool ~default:Pool.sequential)
        (fun q -> (q, Qcache.plan_for_with c semantics src q))
        patterns
    | None -> plan_all ?pool semantics src.Exec.constraints patterns
  in
  let items =
    List.filter_map (fun (_, p) -> Option.map (item semantics) p) planned
  in
  let outcomes = ref (run ?pool ?intra ?cache ?timeout ?limit src items) in
  List.map
    (fun (q, p) ->
      match p with
      | None -> (q, None)
      | Some _ ->
        (match !outcomes with
         | o :: rest ->
           outcomes := rest;
           (q, Some o)
         | [] -> assert false))
    planned

let eval_patterns ?pool ?intra ?cache ?timeout ?limit semantics schema patterns =
  run_patterns ?pool ?intra ?cache ?timeout ?limit semantics (Exec.source_of_schema schema)
    patterns
