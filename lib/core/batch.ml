open Bpq_util
open Bpq_access

type item = {
  semantics : Actualized.semantics;
  plan : Plan.t;
}

let item semantics plan = { semantics; plan }

type answer =
  | Matches of int array list
  | Relation of int array array

type outcome =
  | Answer of answer * float
  | Timeout of float

let answer_size = function
  | Matches ms -> List.length ms
  | Relation sim -> Array.fold_left (fun acc vs -> acc + Array.length vs) 0 sim

let plan_all ?(pool = Pool.sequential) semantics constrs patterns =
  Pool.map_list pool (fun q -> (q, Qplan.generate semantics q constrs)) patterns

let eval ?(pool = Pool.sequential) ?timeout ?limit schema items =
  Pool.map_list pool
    (fun it ->
      (* The deadline is private to this item: deadlines are mutable and
         must never cross domains. *)
      let deadline = Option.map Timer.deadline_after timeout in
      let start = Timer.now () in
      match
        match it.semantics with
        | Actualized.Subgraph ->
          Matches (Bounded_eval.bvf2_matches ?deadline ?limit schema it.plan)
        | Actualized.Simulation -> Relation (Bounded_eval.bsim ?deadline schema it.plan)
      with
      | answer -> Answer (answer, Timer.now () -. start)
      | exception Timer.Timeout -> Timeout (Timer.now () -. start))
    items

let eval_patterns ?pool ?timeout ?limit semantics schema patterns =
  let planned = plan_all ?pool semantics (Schema.constraints schema) patterns in
  let items =
    List.filter_map (fun (_, p) -> Option.map (item semantics) p) planned
  in
  let outcomes = ref (eval ?pool ?timeout ?limit schema items) in
  List.map
    (fun (q, p) ->
      match p with
      | None -> (q, None)
      | Some _ ->
        (match !outcomes with
         | o :: rest ->
           outcomes := rest;
           (q, Some o)
         | [] -> assert false))
    planned
