(** Statistics-driven cost model for plan ordering.

    The planner's worst-case estimates come from the access schema alone
    and are often orders of magnitude above what a concrete graph
    realizes (the output-sensitive evaluation line — Abo Khamis et al.
    2024 — makes the same observation for RPQs).  This module turns the
    cheap selectivity statistics of {!Bpq_graph.Gstats} (per-label node
    counts, label→label edge frequencies) into {e estimated realized}
    cardinalities per plan operation.

    The estimates are advisory only: {!order_plan} reorders fetch and
    edge-check operations (respecting fetch dependencies) and
    {!Qplan.generate} uses {!anchor_score} to break ties between
    equally-bounded anchor choices — but the set of operations, their
    static estimates, and hence the plan's fetch bound and the
    boundedness guarantee are never altered.  Misestimates therefore
    cost time, never correctness; {!Explain} renders estimated vs
    realized side by side so they are visible. *)

open Bpq_graph
open Bpq_pattern

type t

val make : Gstats.selectivity -> t

val of_graph : Digraph.t -> t
(** [make (Gstats.selectivity g)] — one CSR sweep. *)

val selectivity : t -> Gstats.selectivity

val anchor_score : t -> Pattern.t -> int -> float
(** Estimated realized candidate count for pattern node [u] from label
    statistics alone: the label's node count, further capped by the
    number of distinct integer values the node predicate admits.  Used by
    the planner to break ties between anchors with equal worst-case
    size. *)

val annotate : t -> Plan.t -> float array * float array
(** [(fetch_est, edge_est)]: estimated realized cardinality per fetch and
    per edge check, in the plan's own operation order.  A fetch estimate
    predicts the resulting [|cmat(unode)|]; an edge estimate predicts the
    candidate edges surviving the index lookup.  Both are capped by the
    operation's static worst case. *)

val order_plan : t -> Plan.t -> Plan.t
(** Reorder the plan's operations by ascending estimated realized
    cardinality: fetches move only where their dependencies allow (a
    fetch never runs before the fetches of its anchor nodes, or before an
    earlier fetch of its own node, that preceded it in the input plan);
    edge checks reorder freely (they are independent).  The multiset of
    operations, every operation's static estimate, [node_estimates], and
    the node/edge bounds are unchanged — only execution order moves.
    Execution results are identical either way (fetch sets intersect;
    edge sets union). *)
