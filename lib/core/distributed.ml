
type stats = {
  shards : int;
  lookups_per_shard : int array;
  items_per_shard : int array;
  probes_per_shard : int array;
}

let balance s =
  let total = Array.fold_left ( + ) 0 s.items_per_shard in
  if total = 0 then Float.nan
  else
    let mean = float_of_int total /. float_of_int s.shards in
    float_of_int (Array.fold_left max 0 s.items_per_shard) /. mean

type t = { shards : int; source : Exec.source }

let create_with ~shards source =
  if shards <= 0 then invalid_arg "Distributed.create: shards must be positive";
  { shards; source }

let create ~shards schema = create_with ~shards (Exec.source_of_schema schema)

(* Index entries are owned by the shard hashing their (constraint, key)
   pair; edge probes by the shard owning the source node.  Deterministic,
   like consistent hashing with fixed placement. *)
let shard_of_key t c key = Hashtbl.hash (c, key) mod t.shards
let shard_of_node t v = v mod t.shards

let run t plan =
  let base = t.source in
  let lookups = Array.make t.shards 0
  and items = Array.make t.shards 0
  and probes = Array.make t.shards 0 in
  let source =
    { base with
      Exec.lookup =
        (fun c key ->
          let shard = shard_of_key t c key in
          lookups.(shard) <- lookups.(shard) + 1;
          let hits = base.Exec.lookup c key in
          items.(shard) <- items.(shard) + Array.length hits;
          hits);
      lookup_iter =
        (fun c tuple f ->
          (* Listify the (reused) tuple buffer so placement hashes the
             same (constraint, key) pair as the materialising lookup. *)
          let shard = shard_of_key t c (Array.to_list tuple) in
          lookups.(shard) <- lookups.(shard) + 1;
          base.Exec.lookup_iter c tuple (fun w ->
              items.(shard) <- items.(shard) + 1;
              f w));
      probe_edge =
        (fun src dst ->
          let shard = shard_of_node t src in
          probes.(shard) <- probes.(shard) + 1;
          base.Exec.probe_edge src dst);
      (* Per-access accounting is the whole point of the simulation, so
         the batching shortcuts are disabled: every lookup and probe
         must pass through the counting wrappers above. *)
      probe_edges = None;
      prefetch = None;
      push_fetch = None;
      push_semijoin = None;
      warm_nodes = None }
  in
  let result = Exec.run_with source plan in
  ( result,
    { shards = t.shards;
      lookups_per_shard = lookups;
      items_per_shard = items;
      probes_per_shard = probes } )
