open Bpq_graph
open Bpq_pattern

type answer = Bounded_eval.answer =
  | Matches of int array list
  | Relation of int array array

(* A bounded string-keyed map with FIFO replacement: plan and result
   entries are few and cheap to recompute, so recency tracking is not
   worth the bookkeeping the fetch tier needs (that one is the real LRU,
   [Bpq_util.Lru]). *)
module Fifo_map = struct
  type 'v t = {
    cap : int;
    tbl : (string, 'v) Hashtbl.t;
    order : string Queue.t;
  }

  let create cap = { cap; tbl = Hashtbl.create (max 16 (min cap 256)); order = Queue.create () }
  let find t k = if t.cap = 0 then None else Hashtbl.find_opt t.tbl k

  let add t k v =
    if t.cap > 0 then begin
      if not (Hashtbl.mem t.tbl k) then begin
        Queue.push k t.order;
        if Queue.length t.order > t.cap then
          Hashtbl.remove t.tbl (Queue.pop t.order)
      end;
      Hashtbl.replace t.tbl k v
    end

  let remove t k = Hashtbl.remove t.tbl k (* the order queue entry expires lazily *)
end

type result_entry = {
  answer : answer;
  gens : (Label.t * int) list;  (* per used label, generation at insert *)
}

type shard = {
  plans_exact : Plan.t option Fifo_map.t;
  plans_canon : Plan.t option Fifo_map.t;  (* plans in canonical numbering *)
  results : result_entry Fifo_map.t;
  fetch : Fetch_cache.t;  (* the static-source tier (data_version 0) *)
  mutable vfetch : (int * Fetch_cache.t) list;  (* per data_version, newest first *)
  mutable plan_hits : int;
  mutable plan_misses : int;
  mutable result_hits : int;
  mutable result_misses : int;
  mutable result_stale : int;
}

type t = {
  plan_capacity : int;
  fetch_capacity : int;
  result_capacity : int;
  mutex : Mutex.t;
  mutable shards : (int * shard) list;  (* keyed by Domain.id *)
  mutable label_gens : int array;  (* grown on demand; see note_delta *)
  mutable gens_bumped : int;  (* total per-label generation bumps *)
}

let create ?(plan_capacity = 4096) ?(fetch_capacity = 65536) ?(result_capacity = 1024) () =
  if plan_capacity < 0 || fetch_capacity < 0 || result_capacity < 0 then
    invalid_arg "Qcache.create: negative capacity";
  { plan_capacity;
    fetch_capacity;
    result_capacity;
    mutex = Mutex.create ();
    shards = [];
    label_gens = Array.make 0 0;
    gens_bumped = 0 }

(* ~384 bytes per fetch bucket (4 slot words + a ~40-entry payload is the
   high end on these schemas); results get a fixed slice of the budget. *)
let of_megabytes mb =
  if mb <= 0 then invalid_arg "Qcache.of_megabytes: budget must be positive";
  let bytes = mb * 1024 * 1024 in
  create
    ~fetch_capacity:(max 1024 (bytes / 384))
    ~result_capacity:(max 64 (mb * 16))
    ()

let new_shard t =
  { plans_exact = Fifo_map.create t.plan_capacity;
    plans_canon = Fifo_map.create t.plan_capacity;
    results = Fifo_map.create t.result_capacity;
    fetch = Fetch_cache.create ~capacity:t.fetch_capacity ();
    vfetch = [];
    plan_hits = 0;
    plan_misses = 0;
    result_hits = 0;
    result_misses = 0;
    result_stale = 0 }

(* One shard per domain, created under the mutex on first use and touched
   only by its owner afterwards.  Pool workers are long-lived, so the
   assoc list stays as short as the pool is wide. *)
let shard_for t =
  let id = (Domain.self () :> int) in
  match List.assq_opt id t.shards with
  | Some s -> s
  | None ->
    Mutex.lock t.mutex;
    let s =
      match List.assq_opt id t.shards with
      | Some s -> s
      | None ->
        let s = new_shard t in
        t.shards <- (id, s) :: t.shards;
        s
    in
    Mutex.unlock t.mutex;
    s

let fetch_tier t = (shard_for t).fetch

(* Fetch buckets mirror the data state, so a write-through source's
   buckets must never mix with another version's: each data_version gets
   its own per-domain cache, created lazily on the owner domain (same
   single-owner discipline as the version-0 tier).  Keeping two live
   versions lets in-flight evaluations against the previous slot finish
   warm during a write swap; anything older is recreated cold if an
   evaluation somehow still references it — correct either way, since a
   version uniquely names one overlay state for the process lifetime. *)
let vfetch_keep = 2

let fetch_tier_for t (src : Exec.source) =
  let v = src.Exec.data_version in
  let s = shard_for t in
  if v = 0 then s.fetch
  else
    match List.assoc_opt v s.vfetch with
    | Some c -> c
    | None ->
      let c = Fetch_cache.create ~capacity:t.fetch_capacity () in
      let keep =
        List.filteri (fun i _ -> i < vfetch_keep - 1) s.vfetch
      in
      s.vfetch <- (v, c) :: keep;
      c

(* ------------------------------------------------------------------ *)
(* Plan tier                                                           *)
(* ------------------------------------------------------------------ *)

let sem_tag = function Actualized.Subgraph -> 0 | Actualized.Simulation -> 1

(* Exact structural key: labels and edges under the query's own node
   numbering, predicates excluded — shared by all instantiations of one
   template skeleton.  Keys carry the source's stamp, which snapshots
   preserve — entries survive a save/load round trip and serve every
   backend of the same lineage. *)
let exact_key semantics stamp q =
  let labels = Array.init (Pattern.n_nodes q) (Pattern.label q) in
  Marshal.to_string ((stamp : int), sem_tag semantics, labels, Pattern.edges q) []

let canon_key semantics stamp fp =
  Marshal.to_string ((stamp : int), sem_tag semantics, fp) []

(* Renumber a plan through [m] (node -> node); the pattern field is set
   to [q].  A pure renumbering, so mapping through a permutation and back
   restores the plan exactly. *)
let remap_plan m q (plan : Plan.t) =
  let n = Array.length m in
  let node_estimates = Array.make n 0 in
  Array.iteri (fun v e -> node_estimates.(m.(v)) <- e) plan.node_estimates;
  { Plan.semantics = plan.semantics;
    pattern = q;
    fetches =
      List.map
        (fun (f : Plan.fetch) ->
          { f with unode = m.(f.unode); anchors = List.map (fun (l, a) -> (l, m.(a))) f.anchors })
        plan.fetches;
    edge_checks =
      List.map
        (fun (ec : Plan.edge_check) ->
          let u1, u2 = ec.edge in
          { ec with
            edge = (m.(u1), m.(u2));
            target_side = m.(ec.target_side);
            anchors = List.map (fun (l, a) -> (l, m.(a))) ec.anchors })
        plan.edge_checks;
    node_estimates }

let invert perm =
  let inv = Array.make (Array.length perm) 0 in
  Array.iteri (fun v p -> inv.(p) <- v) perm;
  inv

let plan_for_with t ?costs semantics (src : Exec.source) q =
  let s = shard_for t in
  let ek = exact_key semantics src.Exec.stamp q in
  match Fifo_map.find s.plans_exact ek with
  | Some cached ->
    s.plan_hits <- s.plan_hits + 1;
    Option.map (fun (p : Plan.t) -> { p with pattern = q }) cached
  | None ->
    let fp, perm = Pattern.canonicalize q in
    let ck = canon_key semantics src.Exec.stamp fp in
    (match Fifo_map.find s.plans_canon ck with
     | Some cached ->
       (* A renumbered isomorph planned this shape already: renumber its
          canonical plan back through this query's permutation. *)
       s.plan_hits <- s.plan_hits + 1;
       let plan =
         Option.map (fun cp -> remap_plan (invert perm) q cp) cached
       in
       Fifo_map.add s.plans_exact ek plan;
       plan
     | None ->
       s.plan_misses <- s.plan_misses + 1;
       let plan = Qplan.generate ?costs semantics q src.Exec.constraints in
       Fifo_map.add s.plans_exact ek plan;
       Fifo_map.add s.plans_canon ck (Option.map (remap_plan perm q) plan);
       plan)

let plan_for t ?costs semantics schema q =
  plan_for_with t ?costs semantics (Exec.source_of_schema schema) q

(* ------------------------------------------------------------------ *)
(* Result tier                                                         *)
(* ------------------------------------------------------------------ *)

let gen_of t l = if l < Array.length t.label_gens then t.label_gens.(l) else 0

(* Exact key including predicates and the limit: the answer depends on
   both.  Predicates marshal structurally, so equal queries built
   independently (e.g. repeated template instantiations) share keys. *)
let result_key stamp (plan : Plan.t) limit =
  let q = plan.pattern in
  let nodes = Array.init (Pattern.n_nodes q) (fun u -> (Pattern.label q u, Pattern.pred q u)) in
  Marshal.to_string
    ((stamp : int), sem_tag plan.semantics, nodes, Pattern.edges q, limit)
    []

(* Identity of an in-flight evaluation for single-flight coalescing on
   the serve path: schema stamp, semantics, canonical structural
   fingerprint, the exact nodes (label and predicate, in pattern node
   order) and edges, and the requested limit.  The fingerprint covers
   shape only; the explicit node/edge arrays pin the numbering, so two
   renumbered isomorphs — whose answers list columns in different node
   orders — never share a flight. *)
let flight_key ?limit semantics ~stamp q =
  let fp = Pattern.fingerprint q in
  let nodes =
    Array.init (Pattern.n_nodes q) (fun u -> (Pattern.label q u, Pattern.pred q u))
  in
  Marshal.to_string
    ((stamp : int), sem_tag semantics, fp, nodes, Pattern.edges q, limit)
    []

let eval_plan_with t ?pool ?deadline ?limit (src : Exec.source) (plan : Plan.t) =
  let s = shard_for t in
  let key = result_key src.Exec.stamp plan limit in
  (* Generations come from the data itself when the source carries them
     (a write-through overlay): an evaluation against an older serving
     slot then tags its answer with the generations it actually
     observed, never with newer ones another thread published meanwhile
     — so a hit that validates against the *current* slot's generations
     is guaranteed computed on equivalent data.  Static sources fall
     back to the cache-global counters fed by [note_delta]. *)
  let gen =
    match src.Exec.label_gen with Some f -> f | None -> gen_of t
  in
  let fresh_gens () =
    List.map (fun l -> (l, gen l)) (Pattern.labels_used plan.pattern)
  in
  let evaluate () =
    let cache = fetch_tier_for t src in
    let answer = Bounded_eval.run ?pool ?deadline ?limit ~cache src plan in
    Fifo_map.add s.results key { answer; gens = fresh_gens () };
    answer
  in
  match Fifo_map.find s.results key with
  | Some entry when List.for_all (fun (l, g) -> gen l = g) entry.gens ->
    s.result_hits <- s.result_hits + 1;
    entry.answer
  | Some _ ->
    s.result_stale <- s.result_stale + 1;
    Fifo_map.remove s.results key;
    evaluate ()
  | None ->
    s.result_misses <- s.result_misses + 1;
    evaluate ()

let eval_plan t ?pool ?deadline ?limit schema plan =
  eval_plan_with t ?pool ?deadline ?limit (Exec.source_of_schema schema) plan

let eval_with t ?pool ?costs ?deadline ?limit semantics src q =
  match plan_for_with t ?costs semantics src q with
  | None -> None
  | Some plan -> Some (eval_plan_with t ?pool ?deadline ?limit src plan)

let eval t ?pool ?costs ?deadline ?limit semantics schema q =
  eval_with t ?pool ?costs ?deadline ?limit semantics (Exec.source_of_schema schema) q

(* ------------------------------------------------------------------ *)
(* Invalidation                                                        *)
(* ------------------------------------------------------------------ *)

let note_delta t g (delta : Digraph.delta) =
  let n = Digraph.n_nodes g in
  let added = Array.of_list delta.added_nodes in
  let label_of v =
    if v < n then Some (Digraph.label g v)
    else if v - n < Array.length added then Some (fst added.(v - n))
    else None
  in
  let affected = Hashtbl.create 16 in
  let touch = function None -> () | Some l -> Hashtbl.replace affected l () in
  List.iter
    (fun (s, d) ->
      touch (label_of s);
      touch (label_of d))
    (delta.added_edges @ delta.removed_edges);
  Array.iter (fun (l, _) -> Hashtbl.replace affected l ()) added;
  Mutex.lock t.mutex;
  let max_l = Hashtbl.fold (fun l () acc -> max l acc) affected (-1) in
  if max_l >= Array.length t.label_gens then begin
    let grown = Array.make (max_l + 1) 0 in
    Array.blit t.label_gens 0 grown 0 (Array.length t.label_gens);
    t.label_gens <- grown
  end;
  Hashtbl.iter (fun l () -> t.label_gens.(l) <- t.label_gens.(l) + 1) affected;
  t.gens_bumped <- t.gens_bumped + Hashtbl.length affected;
  (* Fetch buckets mirror index contents, which the delta repairs — drop
     them wholesale (per-label surgery on packed keys is not worth it;
     result entries are the tier that stays warm across deltas). *)
  List.iter (fun (_, s) -> Fetch_cache.clear s.fetch) t.shards;
  Mutex.unlock t.mutex

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

type stats = {
  plan_hits : int;
  plan_misses : int;
  fetch_hits : int;
  fetch_misses : int;
  fetch_evictions : int;
  fetch_bypasses : int;
  result_hits : int;
  result_misses : int;
  result_stale : int;
  gens_bumped : int;
}

let stats t =
  Mutex.lock t.mutex;
  let shards = List.map snd t.shards in
  let gens_bumped = t.gens_bumped in
  Mutex.unlock t.mutex;
  List.fold_left
    (fun acc s ->
      (* The version-0 tier plus every live versioned tier: overlay reads
         are cached too, and their traffic must show up in --cache-stats
         like anything else. *)
      let f =
        List.fold_left
          (fun (acc : Fetch_cache.stats) (_, c) ->
            let f = Fetch_cache.stats c in
            { Fetch_cache.hits = acc.hits + f.hits;
              misses = acc.misses + f.misses;
              evictions = acc.evictions + f.evictions;
              bypasses = acc.bypasses + f.bypasses })
          (Fetch_cache.stats s.fetch) s.vfetch
      in
      { acc with
        plan_hits = acc.plan_hits + s.plan_hits;
        plan_misses = acc.plan_misses + s.plan_misses;
        fetch_hits = acc.fetch_hits + f.hits;
        fetch_misses = acc.fetch_misses + f.misses;
        fetch_evictions = acc.fetch_evictions + f.evictions;
        fetch_bypasses = acc.fetch_bypasses + f.bypasses;
        result_hits = acc.result_hits + s.result_hits;
        result_misses = acc.result_misses + s.result_misses;
        result_stale = acc.result_stale + s.result_stale })
    { plan_hits = 0;
      plan_misses = 0;
      fetch_hits = 0;
      fetch_misses = 0;
      fetch_evictions = 0;
      fetch_bypasses = 0;
      result_hits = 0;
      result_misses = 0;
      result_stale = 0;
      gens_bumped }
    shards
