(** Generating worst-case-optimal query plans — algorithm QPlan (paper
    §IV, Fig. 4) and its simulation variant sQPlan (§VI.C).

    Starting from the type-(1) constraints, the generator repeatedly picks
    for each pattern node the saturated actualized constraint whose anchor
    set minimises the worst-case candidate count [N · Π size(anchor)],
    appending a fetch operation whenever the estimate strictly improves.
    The loop reaches the fixpoint in O(|V_Q||E_Q||A|) (Theorems 4 and 9),
    and the resulting plan is worst-case optimal: no effectively bounded
    plan has a smaller worst-case [|G_Q|] over all graphs satisfying the
    schema (exercised against exhaustive plan search in the test suite).

    Edge-verification directives are chosen the same way: per pattern
    edge, the cheapest saturated constraint anchored at the opposite
    endpoint. *)

open Bpq_pattern
open Bpq_access

val generate :
  ?assume_distinct_values:bool ->
  ?costs:Costs.t ->
  Actualized.semantics ->
  Pattern.t ->
  Constr.t list ->
  Plan.t option
(** [None] when the query is not effectively bounded under the schema
    (equivalently, when {!Ebchk.check} refuses).

    [assume_distinct_values] (default [false]) additionally caps the
    estimate of a type-(1) fetch by the number of distinct integer values
    its node predicate admits — e.g. [year >= 2011 & year <= 2013] caps
    the year fetch at 3.  This reproduces the paper's Example 1/6
    arithmetic (17791 nodes, 35136 edge candidates for Q0 under A0) and is
    sound exactly when nodes of that label carry pairwise distinct
    attribute values, as calendar years do.  It never changes {e what} is
    fetched, only the reported worst-case bounds and tie-breaking between
    plans.

    [costs] (default absent) supplies realized-cardinality statistics
    ({!Costs}); the planner then breaks exact worst-case ties between
    anchor choices by estimated realized size, and runs
    {!Costs.order_plan} over the finished plan.  The set of operations,
    their static estimates, the node/edge bounds, and the boundedness
    guarantee are identical with and without it (pinned by tests). *)

val generate_exn :
  ?assume_distinct_values:bool ->
  ?costs:Costs.t ->
  Actualized.semantics ->
  Pattern.t ->
  Constr.t list ->
  Plan.t
(** @raise Invalid_argument when not effectively bounded. *)

val predicate_value_cap : Bpq_pattern.Predicate.t -> int option
(** Number of distinct integer values satisfying the conjunction, when the
    atoms pin a finite range ([None] otherwise, or when the range is
    contradictory on non-integers).  Exposed for tests. *)
