(* The `bpq serve` daemon core: a long-lived request router over one warm
   engine — schema/source, cross-query cache, domain pool — speaking a
   line-delimited JSON protocol.

   Architecture.  Connection handling and query execution are split
   across the two kinds of concurrency OCaml 5 offers:

   - each accepted connection gets a *systhread* (cheap, I/O-bound: it
     reads request lines, writes response lines, and blocks);
   - each admitted query is scheduled onto the existing domain *pool*
     ({!Bpq_util.Pool.async}), where plan execution and match search
     additionally parallelise intra-query exactly as in `bpq run`.

   The split is what keeps {!Qcache} safe without a global lock: the
   cache shards itself per domain, and routing every query onto pool
   worker domains keeps each shard single-owner.  (With a sequential
   pool there are no worker domains, so queries run inline under one
   server-wide mutex instead — same answers, no parallelism.)

   Admission control.  At most [max_inflight] queries may be queued or
   running; a request beyond that is rejected immediately with a typed
   [overloaded] error rather than stalling every client behind a growing
   queue.  [max_connections] bounds the connection threads the same way.

   Reload.  `reload` opens a fresh source (new snapshot generation) and
   swaps it in under the server mutex.  In-flight queries keep the slot
   they started on — each slot is refcounted and closed only when its
   last query drains — so a reload never invalidates a running query.
   Because {!Bpq_access.Schema.save}/[load] preserve the schema stamp,
   plan- and result-tier cache entries keyed under the old generation's
   stamp remain valid across a same-lineage reload: the warm cache
   survives. *)

open Bpq_util
open Bpq_pattern
module Json = Jsonx

type slot_data = {
  src : Exec.source;
  costs : Costs.t option;
  close : unit -> unit;
}

type slot = {
  data : slot_data;
  mutable refs : int;  (* in-flight queries pinned to this generation *)
  mutable retired : bool;  (* swapped out by reload; close on last release *)
}

(* Outcome of one evaluation.  Every variant is shareable with coalesced
   followers: for a given flight key and slot, a timeout or an unbounded
   verdict is as deterministic as an answer. *)
type eval_outcome = [ `Answer of Bounded_eval.answer | `Timeout | `Unbounded ]

(* One in-flight evaluation.  The leader that registered the flight
   publishes under the server mutex and broadcasts [landed]; followers
   wait on it.  [fgen] pins the slot generation the flight took off
   under — publication revalidates it (see [coalesced_eval]). *)
type flight = {
  fgen : int;
  mutable published : publish option;
  landed : Condition.t;
}

and publish =
  | P_share of eval_outcome  (* generation still current: followers share *)
  | P_retry  (* generation moved (or leader died): followers re-dispatch *)

type t = {
  pool : Pool.t;
  cache : Qcache.t option;
  max_inflight : int;
  max_connections : int;
  query_timeout : float option;
  default_semantics : Actualized.semantics;
  coalesce : bool;
  reload_hook : (unit -> slot_data) option;
  write_hook :
    (Json.t -> (slot_data option * (string * Json.t) list, string * string) result)
    option;
  compact_hook :
    (unit -> (slot_data option * (string * Json.t) list, string * string) result)
    option;
  extra_stats : unit -> (string * Json.t) list;
  extra_metrics : unit -> string;
  started : float;
  latency : Histogram.t;  (* successful queries, seconds *)
  mu : Mutex.t;
  conn_done : Condition.t;
  exec_mu : Mutex.t;  (* serialises inline execution on sequential pools *)
  flights : (string, flight) Hashtbl.t;  (* under mu *)
  mutable flight_gen : int;  (* bumped by swap_slot; part of flight keys *)
  mutable slot : slot;
  mutable inflight : int;
  mutable live_conns : int;
  mutable conn_fds : Unix.file_descr list;
  mutable served : int;
  mutable rejected : int;
  mutable errors : int;
  mutable timeouts : int;
  mutable reloads : int;
  mutable writes : int;  (* accepted write batches *)
  mutable compactions : int;  (* completed generation rolls *)
  mutable sf_leaders : int;  (* flights registered *)
  mutable sf_followers : int;  (* requests that joined an existing flight *)
  mutable sf_redispatches : int;  (* followers re-dispatched after a swap *)
  mutable stop : bool;
  mutable wake : Unix.file_descr option;
}

let create ?cache ?(max_inflight = 64) ?(max_connections = 64) ?query_timeout
    ?(semantics = Actualized.Subgraph) ?(coalesce = true) ?reload ?write ?compact
    ?(extra_stats = fun () -> []) ?(extra_metrics = fun () -> "") ~pool data =
  if max_inflight < 0 then invalid_arg "Server.create: negative max_inflight";
  if max_connections < 1 then invalid_arg "Server.create: max_connections must be positive";
  { pool;
    cache;
    max_inflight;
    max_connections;
    query_timeout;
    default_semantics = semantics;
    coalesce;
    reload_hook = reload;
    write_hook = write;
    compact_hook = compact;
    extra_stats;
    extra_metrics;
    started = Timer.now ();
    latency = Histogram.create ();
    mu = Mutex.create ();
    conn_done = Condition.create ();
    exec_mu = Mutex.create ();
    flights = Hashtbl.create 64;
    flight_gen = 0;
    slot = { data; refs = 0; retired = false };
    inflight = 0;
    live_conns = 0;
    conn_fds = [];
    served = 0;
    rejected = 0;
    errors = 0;
    timeouts = 0;
    reloads = 0;
    writes = 0;
    compactions = 0;
    sf_leaders = 0;
    sf_followers = 0;
    sf_redispatches = 0;
    stop = false;
    wake = None }

let stopped t = t.stop

let request_stop t =
  Mutex.lock t.mu;
  t.stop <- true;
  let wake = t.wake in
  Mutex.unlock t.mu;
  match wake with
  | Some fd -> (try ignore (Unix.write_substring fd "x" 0 1) with Unix.Unix_error _ -> ())
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Slots: admission + refcounted source generations                    *)
(* ------------------------------------------------------------------ *)

type admit =
  | Admitted of slot
  | Refused of string  (* typed error code *)

let acquire t =
  Mutex.lock t.mu;
  let r =
    if t.stop then Refused "shutting_down"
    else if t.inflight >= t.max_inflight then begin
      t.rejected <- t.rejected + 1;
      Refused "overloaded"
    end
    else begin
      t.inflight <- t.inflight + 1;
      let s = t.slot in
      s.refs <- s.refs + 1;
      Admitted s
    end
  in
  Mutex.unlock t.mu;
  r

let release t s =
  Mutex.lock t.mu;
  t.inflight <- t.inflight - 1;
  s.refs <- s.refs - 1;
  let close_now = s.retired && s.refs = 0 in
  Mutex.unlock t.mu;
  if close_now then try s.data.close () with _ -> ()

let swap_slot_gen t ~count_reload data =
  let fresh = { data; refs = 0; retired = false } in
  Mutex.lock t.mu;
  let old = t.slot in
  t.slot <- fresh;
  old.retired <- true;
  let close_now = old.refs = 0 in
  if count_reload then t.reloads <- t.reloads + 1;
  (* Invalidate every open flight: leaders still publish, but since the
     generation no longer matches they publish a retry verdict, and new
     arrivals (keyed by the new generation) never join pre-swap flights. *)
  t.flight_gen <- t.flight_gen + 1;
  Mutex.unlock t.mu;
  if close_now then try old.data.close () with _ -> ()

let swap_slot t data = swap_slot_gen t ~count_reload:true data

(* ------------------------------------------------------------------ *)
(* Query execution on the pool                                         *)
(* ------------------------------------------------------------------ *)

(* Run [f] on a pool worker domain and wait for its outcome; inline
   (serialised) when the pool is sequential.  The exec mutex in the
   sequential case is what keeps the per-domain cache shard single-owner
   when every connection systhread shares the one domain. *)
let on_pool t f =
  if Pool.size t.pool > 1 then begin
    let mu = Mutex.create () in
    let cv = Condition.create () in
    let cell = ref None in
    Pool.async t.pool (fun () ->
        let outcome = match f () with v -> Ok v | exception e -> Error e in
        Mutex.lock mu;
        cell := Some outcome;
        Condition.signal cv;
        Mutex.unlock mu);
    Mutex.lock mu;
    while Option.is_none !cell do
      Condition.wait cv mu
    done;
    let outcome = Option.get !cell in
    Mutex.unlock mu;
    match outcome with Ok v -> v | Error e -> raise e
  end
  else begin
    Mutex.lock t.exec_mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.exec_mu) f
  end

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let sem_name = function Actualized.Subgraph -> "subgraph" | Actualized.Simulation -> "simulation"

let sem_of_string = function
  | "subgraph" | "iso" -> Some Actualized.Subgraph
  | "simulation" | "sim" -> Some Actualized.Simulation
  | _ -> None

let with_id id fields = match id with None -> fields | Some id -> ("id", id) :: fields

let ok_response ?id fields = Json.Obj (with_id id (("ok", Json.Bool true) :: fields))

let error_response ?id code msg =
  Json.Obj
    (with_id id
       [ ("ok", Json.Bool false); ("error", Json.Str code); ("message", Json.Str msg) ])

let matches_json ms =
  Json.Arr (List.map (fun m -> Json.Arr (List.map (fun v -> Json.Int v) (Array.to_list m))) ms)

let relation_json sim =
  Json.Arr
    (Array.to_list
       (Array.map
          (fun vs -> Json.Arr (List.map (fun v -> Json.Int v) (Array.to_list vs)))
          sim))

let answer_fields = function
  | Bounded_eval.Matches ms ->
    [ ("matches", matches_json ms); ("n", Json.Int (List.length ms)) ]
  | Bounded_eval.Relation sim ->
    [ ("relation", relation_json sim);
      ("n", Json.Int (Array.fold_left (fun acc vs -> acc + Array.length vs) 0 sim)) ]

(* Parse the request's pattern against the slot's label table.  Interning
   new labels mutates the shared table; handlers run on connection
   systhreads (one domain) or under the exec path, and pool workers only
   ever read label ids, so the mutation is not racy. *)
let pattern_of req (s : slot) =
  match Json.member "pattern" req with
  | Some (Json.Str text) ->
    (match Pattern_parser.parse_string s.data.src.Exec.table text with
     | q -> Ok q
     | exception Failure msg -> Error ("parse", msg))
  | Some _ -> Error ("bad_request", "\"pattern\" must be a string")
  | None -> Error ("bad_request", "missing \"pattern\"")
  | exception _ -> Error ("bad_request", "malformed request")

let semantics_of t req =
  match Json.member "semantics" req with
  | None -> Ok t.default_semantics
  | Some (Json.Str s) ->
    (match sem_of_string s with
     | Some sem -> Ok sem
     | None -> Error (Printf.sprintf "unknown semantics %S (subgraph|simulation)" s))
  | Some _ -> Error "\"semantics\" must be a string"

let limit_of req =
  match Json.member "limit" req with
  | None -> Ok None
  | Some j ->
    (match Json.to_int_opt j with
     | Some n when n >= 0 -> Ok (Some n)
     | _ -> Error "\"limit\" must be a non-negative integer")

let plan_in_slot t sem (s : slot) q =
  let src = s.data.src in
  match t.cache with
  | Some c -> Qcache.plan_for_with c ?costs:s.data.costs sem src q
  | None -> Qplan.generate ?costs:s.data.costs sem q src.Exec.constraints

(* One full (uncoalesced) evaluation of [q] against slot [s]. *)
let evaluate_in_slot t sem (s : slot) q : eval_outcome =
  let src = s.data.src in
  on_pool t (fun () ->
      match plan_in_slot t sem s q with
      | None -> `Unbounded
      | Some plan ->
        let deadline = Option.map Timer.deadline_after t.query_timeout in
        (match
           match t.cache with
           | Some c -> Qcache.eval_plan_with c ~pool:t.pool ?deadline src plan
           | None -> Bounded_eval.run ~pool:t.pool ?deadline src plan
         with
        | answer -> `Answer answer
        | exception Timer.Timeout -> `Timeout))

(* Single-flight coalescing: concurrent requests with equal
   {!Qcache.flight_key}s (stamp, semantics, canonical shape, exact
   predicates, limit) cost one evaluation.  The first arrival registers
   a flight and evaluates (leader); identical arrivals while it runs
   wait on the flight (followers) and share the published outcome.
   The leader never holds [t.mu] while evaluating, and followers wait
   in [Condition.wait] which releases it — stats and reload stay
   responsive under a slow flight.

   Stamp revalidation at publish: the flight key embeds the slot
   generation counter, and the leader re-reads it when publishing.  If a
   `reload` swapped generations mid-flight, the leader's outcome — still
   valid for its own pinned slot — is published as a retry verdict
   instead of an answer, so followers coalesced before the swap release
   their admission and re-dispatch against the current slot; they can
   never observe the pre-swap result.  Arrivals after the swap compute a
   new-generation key and never join the old flight at all.

   [held] tracks the slot this request currently has admitted
   (re-dispatch swaps it); the caller's final release follows it.  The
   parsed pattern is reused across a re-dispatch: label ids are stable
   within a schema lineage (snapshot save/load preserves intern order),
   the same property the warm plan tier relies on across reloads. *)
let coalesced_eval t held sem q limit : (slot * eval_outcome, string) result =
  let rec attempt tries (s : slot) =
    if tries >= 4 then
      (* Re-dispatched through several back-to-back reloads; stop
         coalescing and just evaluate on the slot we hold. *)
      Ok (s, evaluate_in_slot t sem s q)
    else begin
      let qkey = Qcache.flight_key ?limit sem ~stamp:s.data.src.Exec.stamp q in
      Mutex.lock t.mu;
      let key = string_of_int t.flight_gen ^ ":" ^ qkey in
      match Hashtbl.find_opt t.flights key with
      | Some fl ->
        t.sf_followers <- t.sf_followers + 1;
        while fl.published = None do
          Condition.wait fl.landed t.mu
        done;
        let p = Option.get fl.published in
        Mutex.unlock t.mu;
        (match p with
         | P_share o -> Ok (s, o)
         | P_retry ->
           Mutex.lock t.mu;
           t.sf_redispatches <- t.sf_redispatches + 1;
           Mutex.unlock t.mu;
           release t s;
           held := None;
           (match acquire t with
            | Refused code -> Error code
            | Admitted s' ->
              held := Some s';
              attempt (tries + 1) s'))
      | None ->
        let fl = { fgen = t.flight_gen; published = None; landed = Condition.create () } in
        Hashtbl.replace t.flights key fl;
        t.sf_leaders <- t.sf_leaders + 1;
        Mutex.unlock t.mu;
        let result =
          match evaluate_in_slot t sem s q with
          | o -> Ok o
          | exception e -> Error e
        in
        Mutex.lock t.mu;
        (* The key embeds the generation and followers never insert, so
           this binding is necessarily the flight registered above. *)
        Hashtbl.remove t.flights key;
        fl.published <-
          Some
            (match result with
             | Ok o when t.flight_gen = fl.fgen -> P_share o
             | Ok _ | Error _ -> P_retry);
        Condition.broadcast fl.landed;
        Mutex.unlock t.mu;
        (* The leader always uses its own result: it is valid for the
           slot it holds, whatever the generation did meanwhile. *)
        (match result with Ok o -> Ok (s, o) | Error e -> raise e)
    end
  in
  attempt 0 (Option.get !held)

let handle_query t ?id req =
  match acquire t with
  | Refused code ->
    error_response ?id code
      (if code = "overloaded" then
         Printf.sprintf "query queue full (max_inflight %d)" t.max_inflight
       else "server is shutting down")
  | Admitted s0 ->
    let held = ref (Some s0) in
    Fun.protect ~finally:(fun () -> Option.iter (release t) !held) @@ fun () ->
    (match (pattern_of req s0, semantics_of t req, limit_of req) with
     | Error (code, msg), _, _ -> error_response ?id code msg
     | Ok _, Error msg, _ | Ok _, Ok _, Error msg ->
       error_response ?id "bad_request" msg
     | Ok q, Ok sem, Ok limit ->
       let start = Timer.now () in
       let result =
         if t.coalesce then coalesced_eval t held sem q limit
         else Ok (s0, evaluate_in_slot t sem s0 q)
       in
       (* Latency from the request's own start: a coalesced follower's
          elapsed time includes its wait on the leader — the honest
          client-observed figure. *)
       let elapsed = Timer.now () -. start in
       (match result with
        | Error code ->
          error_response ?id code
            (if code = "overloaded" then
               Printf.sprintf "query queue full (max_inflight %d)" t.max_inflight
             else "server is shutting down")
        | Ok (s, outcome) ->
          let src = s.data.src in
          (match outcome with
           | `Answer answer ->
             Histogram.add t.latency elapsed;
             Mutex.lock t.mu;
             t.served <- t.served + 1;
             Mutex.unlock t.mu;
             let answer =
               (* The result tier caches full answers; apply the limit on
                  the way out exactly like the one-shot CLI does. *)
               match (answer, limit) with
               | Bounded_eval.Matches ms, Some l ->
                 Bounded_eval.Matches (List.filteri (fun i _ -> i < l) ms)
               | answer, _ -> answer
             in
             ok_response ?id
               (("semantics", Json.Str (sem_name sem))
                :: answer_fields answer
                @ [ ("elapsed_ms", Json.Float (elapsed *. 1000.0));
                    ("stamp", Json.Int src.Exec.stamp) ])
           | `Timeout ->
             Mutex.lock t.mu;
             t.timeouts <- t.timeouts + 1;
             Mutex.unlock t.mu;
             error_response ?id "timeout"
               (Printf.sprintf "query exceeded the %.3fs budget"
                  (Option.value t.query_timeout ~default:0.0))
           | `Unbounded ->
             let d = Ebchk.diagnose sem q src.Exec.constraints in
             error_response ?id "unbounded" (Ebchk.report q d))))

let handle_explain t ?id req =
  match acquire t with
  | Refused code -> error_response ?id code "cannot explain right now"
  | Admitted s ->
    Fun.protect ~finally:(fun () -> release t s) @@ fun () ->
    (match (pattern_of req s, semantics_of t req) with
     | Error (code, msg), _ -> error_response ?id code msg
     | Ok _, Error msg -> error_response ?id "bad_request" msg
     | Ok q, Ok sem ->
       (match on_pool t (fun () -> plan_in_slot t sem s q) with
        | Some plan ->
          ok_response ?id
            [ ("semantics", Json.Str (sem_name sem));
              ("plan", Json.Str (Explain.describe ?costs:s.data.costs plan)) ]
        | None ->
          let d = Ebchk.diagnose sem q s.data.src.Exec.constraints in
          error_response ?id "unbounded" (Ebchk.report q d)))

let latency_json t =
  let ms = Option.map (fun s -> s *. 1000.0) in
  Json.Obj
    [ ("count", Json.Int (Histogram.count t.latency));
      ("mean_ms", Json.of_float_opt (ms (Histogram.mean t.latency)));
      ("p50_ms", Json.of_float_opt (ms (Histogram.percentile t.latency 0.5)));
      ("p90_ms", Json.of_float_opt (ms (Histogram.percentile t.latency 0.9)));
      ("p99_ms", Json.of_float_opt (ms (Histogram.percentile t.latency 0.99)));
      ("max_ms", Json.of_float_opt (ms (Histogram.maximum t.latency))) ]

let cache_json c =
  let s = Qcache.stats c in
  Json.Obj
    [ ("plan_hits", Json.Int s.Qcache.plan_hits);
      ("plan_misses", Json.Int s.Qcache.plan_misses);
      ("fetch_hits", Json.Int s.Qcache.fetch_hits);
      ("fetch_misses", Json.Int s.Qcache.fetch_misses);
      ("result_hits", Json.Int s.Qcache.result_hits);
      ("result_misses", Json.Int s.Qcache.result_misses);
      ("result_stale", Json.Int s.Qcache.result_stale) ]

let coalescing_json t =
  (* Caller holds no locks; the three counters are read under [t.mu]. *)
  Mutex.lock t.mu;
  let leaders = t.sf_leaders
  and followers = t.sf_followers
  and redispatches = t.sf_redispatches in
  Mutex.unlock t.mu;
  Json.Obj
    [ ("enabled", Json.Bool t.coalesce);
      ("leaders", Json.Int leaders);
      ("followers", Json.Int followers);
      ("redispatches", Json.Int redispatches) ]

let handle_stats t ?id () =
  Mutex.lock t.mu;
  let inflight = t.inflight
  and served = t.served
  and rejected = t.rejected
  and errors = t.errors
  and timeouts = t.timeouts
  and reloads = t.reloads
  and writes = t.writes
  and compactions = t.compactions
  and conns = t.live_conns
  and stamp = t.slot.data.src.Exec.stamp
  and graph_size = t.slot.data.src.Exec.graph_size in
  Mutex.unlock t.mu;
  ok_response ?id
    ([ ("uptime_s", Json.Float (Timer.now () -. t.started));
       ("stamp", Json.Int stamp);
       ("graph_size", Json.Int graph_size);
       ("connections", Json.Int conns);
       ("inflight", Json.Int inflight);
       ("served", Json.Int served);
       ("rejected", Json.Int rejected);
       ("errors", Json.Int errors);
       ("timeouts", Json.Int timeouts);
       ("reloads", Json.Int reloads);
       ("writes", Json.Int writes);
       ("compactions", Json.Int compactions);
       ("jobs", Json.Int (Pool.size t.pool));
       ("coalescing", coalescing_json t);
       ("latency", latency_json t) ]
     @ (match t.cache with Some c -> [ ("cache", cache_json c) ] | None -> [])
     @ t.extra_stats ())

(* Prometheus text exposition (version 0.0.4): one scrape-ready page of
   counters, gauges and a latency summary.  Carried inside the JSON
   protocol as the "text" field of the `metrics` op — a scraping bridge
   peels it out; the daemon itself stays single-protocol. *)
let metrics_text t =
  Mutex.lock t.mu;
  let inflight = t.inflight
  and served = t.served
  and rejected = t.rejected
  and errors = t.errors
  and timeouts = t.timeouts
  and reloads = t.reloads
  and writes = t.writes
  and compactions = t.compactions
  and conns = t.live_conns
  and leaders = t.sf_leaders
  and followers = t.sf_followers
  and redispatches = t.sf_redispatches
  and stamp = t.slot.data.src.Exec.stamp
  and graph_size = t.slot.data.src.Exec.graph_size in
  Mutex.unlock t.mu;
  let b = Buffer.create 2048 in
  let metric name typ help value =
    Printf.bprintf b "# HELP %s %s\n# TYPE %s %s\n%s %s\n" name help name typ name value
  in
  let counter name help v = metric name "counter" help (string_of_int v) in
  let gauge name help v = metric name "gauge" help (string_of_int v) in
  counter "bpq_queries_served_total" "Queries answered successfully." served;
  counter "bpq_queries_rejected_total" "Requests refused by admission control." rejected;
  counter "bpq_errors_total" "Requests that raised an internal error." errors;
  counter "bpq_timeouts_total" "Queries that exceeded the time budget." timeouts;
  counter "bpq_reloads_total" "Live snapshot reloads." reloads;
  counter "bpq_writes_total" "Accepted write batches." writes;
  counter "bpq_compactions_total" "Completed generation rolls." compactions;
  counter "bpq_coalesce_leaders_total" "Evaluations that led a single-flight." leaders;
  counter "bpq_coalesce_followers_total" "Requests that joined an existing flight." followers;
  counter "bpq_coalesce_redispatches_total"
    "Followers re-dispatched after a mid-flight reload." redispatches;
  gauge "bpq_inflight" "Queries queued or running." inflight;
  gauge "bpq_connections" "Live client connections." conns;
  gauge "bpq_jobs" "Pool worker count." (Pool.size t.pool);
  gauge "bpq_stamp" "Schema stamp of the current slot." stamp;
  gauge "bpq_graph_size" "Nodes + edges of the served graph." graph_size;
  metric "bpq_uptime_seconds" "gauge" "Seconds since the server started."
    (Printf.sprintf "%.3f" (Timer.now () -. t.started));
  (match t.cache with
   | None -> ()
   | Some c ->
     let s = Qcache.stats c in
     Printf.bprintf b
       "# HELP bpq_cache_hits_total Cache hits by tier.\n\
        # TYPE bpq_cache_hits_total counter\n";
     Printf.bprintf b "bpq_cache_hits_total{tier=\"plan\"} %d\n" s.Qcache.plan_hits;
     Printf.bprintf b "bpq_cache_hits_total{tier=\"fetch\"} %d\n" s.Qcache.fetch_hits;
     Printf.bprintf b "bpq_cache_hits_total{tier=\"result\"} %d\n" s.Qcache.result_hits;
     Printf.bprintf b
       "# HELP bpq_cache_misses_total Cache misses by tier.\n\
        # TYPE bpq_cache_misses_total counter\n";
     Printf.bprintf b "bpq_cache_misses_total{tier=\"plan\"} %d\n" s.Qcache.plan_misses;
     Printf.bprintf b "bpq_cache_misses_total{tier=\"fetch\"} %d\n" s.Qcache.fetch_misses;
     Printf.bprintf b "bpq_cache_misses_total{tier=\"result\"} %d\n" s.Qcache.result_misses);
  let n = Histogram.count t.latency in
  let sum =
    match Histogram.mean t.latency with
    | Some m -> m *. float_of_int n
    | None -> 0.0
  in
  Printf.bprintf b
    "# HELP bpq_query_latency_seconds Latency of successful queries.\n\
     # TYPE bpq_query_latency_seconds summary\n";
  List.iter
    (fun q ->
      match Histogram.percentile t.latency q with
      | Some v -> Printf.bprintf b "bpq_query_latency_seconds{quantile=\"%g\"} %.9g\n" q v
      | None -> ())
    [ 0.5; 0.9; 0.99 ];
  Printf.bprintf b "bpq_query_latency_seconds_sum %.9g\n" sum;
  Printf.bprintf b "bpq_query_latency_seconds_count %d\n" n;
  Buffer.add_string b (t.extra_metrics ());
  Buffer.contents b

let handle_metrics t ?id () =
  ok_response ?id
    [ ("content_type", Json.Str "text/plain; version=0.0.4");
      ("text", Json.Str (metrics_text t)) ]

let handle_reload t ?id () =
  match t.reload_hook with
  | None -> error_response ?id "bad_request" "this server has no reload hook"
  | Some f ->
    (match f () with
     | data ->
       swap_slot t data;
       ok_response ?id
         [ ("stamp", Json.Int data.src.Exec.stamp);
           ("graph_size", Json.Int data.src.Exec.graph_size) ]
     | exception e ->
       Mutex.lock t.mu;
       t.errors <- t.errors + 1;
       Mutex.unlock t.mu;
       error_response ?id "reload_failed" (Printexc.to_string e))

(* Write and compact route through caller-supplied hooks (the CLI wires
   them to [Bpq_store.Store.apply_ops] / [compact]); the server's part is
   the slot swap — the hook hands back fresh slot data built over the
   post-write overlay, in-flight queries keep their frozen pre-write
   view, and the flight-generation bump keeps coalesced followers from
   sharing a pre-write answer.  A write swap is not a reload: the
   [reloads] counter tracks operator-initiated snapshot reloads only. *)
let handle_write t ?id req =
  match t.write_hook with
  | None ->
    error_response ?id "bad_request"
      "this server does not accept writes (start it with --wal)"
  | Some f ->
    (match f req with
     | Ok (slot, fields) ->
       Option.iter (swap_slot_gen t ~count_reload:false) slot;
       Mutex.lock t.mu;
       t.writes <- t.writes + 1;
       Mutex.unlock t.mu;
       ok_response ?id fields
     | Error (code, msg) -> error_response ?id code msg
     | exception e ->
       Mutex.lock t.mu;
       t.errors <- t.errors + 1;
       Mutex.unlock t.mu;
       error_response ?id "write_failed" (Printexc.to_string e))

let handle_compact t ?id () =
  match t.compact_hook with
  | None ->
    error_response ?id "bad_request"
      "this server cannot compact (start it with --wal)"
  | Some f ->
    (match f () with
     | Ok (slot, fields) ->
       Option.iter (swap_slot_gen t ~count_reload:false) slot;
       Mutex.lock t.mu;
       t.compactions <- t.compactions + 1;
       Mutex.unlock t.mu;
       ok_response ?id fields
     | Error (code, msg) -> error_response ?id code msg
     | exception e ->
       Mutex.lock t.mu;
       t.errors <- t.errors + 1;
       Mutex.unlock t.mu;
       error_response ?id "compact_failed" (Printexc.to_string e))

let handle_json t req =
  let id = Json.member "id" req in
  match Json.member "op" req with
  | Some (Json.Str "query") -> handle_query t ?id req
  | Some (Json.Str "explain") -> handle_explain t ?id req
  | Some (Json.Str "stats") -> handle_stats t ?id ()
  | Some (Json.Str "metrics") -> handle_metrics t ?id ()
  | Some (Json.Str "reload") -> handle_reload t ?id ()
  | Some (Json.Str "write") -> handle_write t ?id req
  | Some (Json.Str "compact") -> handle_compact t ?id ()
  | Some (Json.Str "shutdown") ->
    request_stop t;
    ok_response ?id [ ("stopping", Json.Bool true) ]
  | Some (Json.Str op) ->
    error_response ?id "bad_request"
      (Printf.sprintf
         "unknown op %S (query|explain|stats|metrics|reload|write|compact|shutdown)" op)
  | Some _ -> error_response ?id "bad_request" "\"op\" must be a string"
  | None -> error_response ?id "bad_request" "missing \"op\""

let handle_line t line =
  let resp =
    match Json.parse line with
    | Ok (Json.Obj _ as req) -> (
      try handle_json t req
      with e ->
        Mutex.lock t.mu;
        t.errors <- t.errors + 1;
        Mutex.unlock t.mu;
        error_response "internal" (Printexc.to_string e))
    | Ok _ -> error_response "bad_request" "request must be a JSON object"
    | Error msg -> error_response "parse" ("invalid JSON: " ^ msg)
  in
  Json.to_string resp

(* ------------------------------------------------------------------ *)
(* Socket serving                                                      *)
(* ------------------------------------------------------------------ *)

let track_conn t fd =
  Mutex.lock t.mu;
  t.live_conns <- t.live_conns + 1;
  t.conn_fds <- fd :: t.conn_fds;
  Mutex.unlock t.mu

let untrack_conn t fd =
  Mutex.lock t.mu;
  t.live_conns <- t.live_conns - 1;
  t.conn_fds <- List.filter (fun f -> f != fd) t.conn_fds;
  Condition.signal t.conn_done;
  Mutex.unlock t.mu

(* A first line opening with "GET " switches the connection to one-shot
   HTTP/1.0 scrape mode, so a Prometheus server can point straight at
   the daemon's socket without a bridge.  Only /metrics exists;
   everything else is a 404.  Headers are drained and ignored; the
   response closes the connection. *)
let handle_conn t ?read_timeout ?write_timeout fd =
  Sock.set_timeouts ?read:read_timeout ?write:write_timeout fd;
  let rd = Sock.reader fd in
  let first = ref true in
  let rec loop () =
    if not (stopped t) then
      match Sock.read_line rd with
      | None -> ()
      | Some line
        when !first
             && String.length line >= 4
             && String.sub line 0 4 = "GET " ->
        (* Headers may still be buffered in [rd]; drain through it. *)
        let rec drain () =
          match Sock.read_line rd with
          | None | Some "" | Some "\r" -> ()
          | Some _ -> drain ()
        in
        drain ();
        let path =
          match String.split_on_char ' ' line with _ :: p :: _ -> p | _ -> "/"
        in
        let status, ctype, body =
          if
            path = "/metrics"
            || (String.length path >= 9 && String.sub path 0 9 = "/metrics?")
          then ("200 OK", "text/plain; version=0.0.4", metrics_text t)
          else if path = "/healthz" then
            (* Liveness only: the daemon is accepting connections and
               answering.  Readiness nuance (warm caches, worker health)
               stays on the richer stats op. *)
            ("200 OK", "text/plain", "ok\n")
          else
            ("404 Not Found", "text/plain", "only /metrics and /healthz live here\n")
        in
        let resp =
          Printf.sprintf
            "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
             Connection: close\r\n\r\n%s"
            status ctype (String.length body) body
        in
        ignore (Unix.write_substring fd resp 0 (String.length resp))
      | Some "" ->
        first := false;
        loop ()
      | Some line ->
        first := false;
        Sock.write_line fd (handle_line t line);
        loop ()
  in
  (try loop () with
   | e when Sock.is_disconnect e -> ()  (* client went away mid-request/response *)
   | e when Sock.is_timeout e -> ()  (* idle past the read timeout: drop the client *)
   | Failure _ -> ()  (* oversized line *));
  (try Unix.close fd with Unix.Unix_error _ -> ());
  untrack_conn t fd

(* Accept loop: blocks in select on the listener and a wake pipe;
   `shutdown` (or {!request_stop}) writes the pipe to break the block.
   Returns once every connection thread has drained.  The caller owns
   the listening fd ({!Bpq_util.Sock.listen} / [close_listener]). *)
let serve ?read_timeout ?write_timeout t lfd =
  Sock.ignore_sigpipe ();
  let wr, ww = Unix.pipe ~cloexec:true () in
  Mutex.lock t.mu;
  t.wake <- Some ww;
  let stop_already = t.stop in
  Mutex.unlock t.mu;
  let rec accept_loop () =
    if not (stopped t) then begin
      (match Unix.select [ lfd; wr ] [] [] (-1.0) with
       | rs, _, _ ->
         if (not (stopped t)) && List.memq lfd rs then begin
           match Unix.accept ~cloexec:true lfd with
           | fd, _ ->
             let over =
               Mutex.lock t.mu;
               let over = t.live_conns >= t.max_connections in
               Mutex.unlock t.mu;
               over
             in
             if over then begin
               (* Graceful degradation: tell the client why, then close. *)
               (try
                  Sock.write_line fd
                    (Json.to_string
                       (error_response "overloaded"
                          (Printf.sprintf "connection limit %d reached" t.max_connections)))
                with _ -> ());
               try Unix.close fd with Unix.Unix_error _ -> ()
             end
             else begin
               track_conn t fd;
               ignore (Thread.create (fun () -> handle_conn t ?read_timeout ?write_timeout fd) ())
             end
           | exception
               Unix.Unix_error
                 ((Unix.EINTR | Unix.ECONNABORTED | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
             ()
         end
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      accept_loop ()
    end
  in
  if not stop_already then accept_loop ();
  (* Stop: break connection threads out of blocking reads, then wait for
     them to drain.  Shut down only the receive side — the thread that
     carried the `shutdown` request may still be writing its ack, and
     SHUTDOWN_ALL would discard it.  Each thread performs the one real
     close itself. *)
  Mutex.lock t.mu;
  let fds = t.conn_fds in
  Mutex.unlock t.mu;
  List.iter
    (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    fds;
  Mutex.lock t.mu;
  while t.live_conns > 0 do
    Condition.wait t.conn_done t.mu
  done;
  t.wake <- None;
  Mutex.unlock t.mu;
  (try Unix.close wr with Unix.Unix_error _ -> ());
  (try Unix.close ww with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Client                                                              *)
(* ------------------------------------------------------------------ *)

module Client = struct
  type conn = {
    fd : Unix.file_descr;
    rd : Sock.reader;
  }

  let connect ?read_timeout ?write_timeout addr =
    let fd = Sock.connect addr in
    Sock.set_timeouts ?read:read_timeout ?write:write_timeout fd;
    { fd; rd = Sock.reader fd }

  let send c j = Sock.write_line c.fd (Json.to_string j)

  let recv c =
    match Sock.read_line c.rd with
    | None -> None
    | Some line ->
      (match Json.parse line with
       | Ok j -> Some j
       | Error msg -> failwith ("malformed response: " ^ msg))

  let rpc c j =
    send c j;
    match recv c with
    | Some r -> r
    | None -> failwith "server closed the connection"

  let query ?semantics ?limit c pattern =
    rpc c
      (Json.Obj
         ([ ("op", Json.Str "query"); ("pattern", Json.Str pattern) ]
          @ (match semantics with Some s -> [ ("semantics", Json.Str (sem_name s)) ] | None -> [])
          @ (match limit with Some l -> [ ("limit", Json.Int l) ] | None -> [])))

  let stats c = rpc c (Json.Obj [ ("op", Json.Str "stats") ])
  let metrics c = rpc c (Json.Obj [ ("op", Json.Str "metrics") ])
  let reload c = rpc c (Json.Obj [ ("op", Json.Str "reload") ])
  let write c ops = rpc c (Json.Obj [ ("op", Json.Str "write"); ("ops", Json.Arr ops) ])
  let compact c = rpc c (Json.Obj [ ("op", Json.Str "compact") ])
  let shutdown c = rpc c (Json.Obj [ ("op", Json.Str "shutdown") ])
  let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()
end
