(** Plan execution: fetching the bounded subgraph [G_Q] (paper §IV,
    "Building G_Q").

    The executor runs a plan's fetch operations in order against the
    schema's indexes, materialising candidate sets [cmat(u)]; repeated
    fetches of the same pattern node intersect (each fetch yields a
    superset of the true matches, so intersection is sound and at least as
    tight as the paper's replace-by-last).  Edge directives then verify
    candidate pairs per pattern edge: each index hit certifies adjacency in
    [G], and a final O(1) probe fixes the direction.  Everything the
    executor touches flows through index lookups whose result sizes are
    bounded by the constraints — total work is bounded by the plan's static
    estimates, independent of [|G|]. *)

open Bpq_graph
open Bpq_access

type stats = {
  fetch_lookups : int;  (** Index lookups performed by fetch operations. *)
  fetched : int;  (** Total nodes returned by those lookups. *)
  edge_lookups : int;  (** Index lookups performed by edge directives. *)
  edge_candidates : int;  (** Candidate pairs examined (index hits). *)
  edges_added : int;  (** Directed edges certified into [G_Q]. *)
}

val accessed : stats -> int
(** Total data items accessed — the [|accessed_Q|] measure of the paper's
    Fig. 5(d/h/l). *)

type op_trace = {
  op : [ `Fetch of int | `Edge of int * int ];
      (** The pattern node fetched, or the pattern edge verified. *)
  estimate : int;  (** The plan's static worst case for this operation. *)
  realized : int;
      (** What actually happened: resulting [|cmat|] for a fetch, directed
          edges certified for a directive. *)
  pushed : bool;
      (** Whether the operation was evaluated shard-side through the
          source's {!source.push_fetch}/{!source.push_semijoin} hooks
          (worker-side pushdown) rather than by streaming buckets through
          the local loop.  Always [false] for local backends. *)
}

type result = {
  gq : Digraph.t;  (** The bounded subgraph, with fresh dense node ids. *)
  from_gq : int array;  (** [G_Q] node id → original node id. *)
  candidates_gq : int array array;
      (** Per pattern node, its candidate matches as [G_Q] ids. *)
  candidates_g : int array array;  (** Same, as original ids. *)
  stats : stats;
  trace : op_trace list;
      (** Per-operation estimate-vs-realized, in execution order — the raw
          material of {!Explain}. *)
}

val run : ?pool:Bpq_util.Pool.t -> ?cache:Fetch_cache.t -> Schema.t -> Plan.t -> result
(** @raise Not_found if the plan references a constraint outside the
    schema (plans must be executed under the schema they were generated
    for).

    [pool] enables intra-query parallelism: each fetch or edge-check
    operation whose anchor-tuple odometer is large enough is partitioned
    into contiguous tuple-index ranges across the pool's domains, each
    range accumulating hits (or certified edges) locally with its own
    fetch-cache shard; fragments merge deterministically in range order
    (fetch hits through one [sort_uniq], edges through one dedup set), so
    the result — candidate sets, [G_Q], stats, trace — is byte-identical
    to the sequential run at every pool size.

    [cache] memoises index lookups across calls (see {!Fetch_cache}); the
    result — candidate sets, [G_Q], stats, trace — is byte-identical with
    the cache absent, present, or at any capacity, because the cache
    replays exactly the index buckets.  The cache must only ever be fed
    lookups of one schema lineage (one {!Schema.build} and its
    [apply_delta] descendants do {e not} share buckets — use a fresh cache
    or {!Qcache}'s invalidation discipline). *)

(** {1 Abstract data sources}

    The executor only ever touches the data through index lookups, edge
    probes and node attribute reads; {!run_with} makes that interface
    explicit so alternative backends (the sharded store of {!Distributed},
    the out-of-core store of [Bpq_store.Paged]) can serve the same plans.
    Plan generation and cache keying need three facts about the data
    besides the lookups — the constraint set, the schema-lineage stamp and
    [|G|] — so a source carries those too, making it the complete
    query-serving interface: {!Qcache}, {!Batch} and {!Explain} all run
    against a [source] alone. *)

type pushed_fetch = {
  pf_hits : int array;
      (** The fetch's complete candidate row: sorted distinct node ids,
          predicate already applied shard-side. *)
  pf_lookups : int;  (** Index lookups the shards performed (= tuple count). *)
  pf_streamed : int;  (** Bucket entries the shards streamed (with dups). *)
}
(** Result of a pushed fetch operation: what the local fetch loop would
    have produced, computed on the owning shards.  The counters replicate
    the sequential loop's exactly so {!stats} stays byte-identical. *)

type pushed_semijoin = {
  ps_pairs : (int * int) array;
      (** Candidate directed [(src, dst)] pairs — index hit ∩ target row,
          direction already oriented but {e not} yet verified; possibly
          duplicated across shards (the executor dedups before probing). *)
  ps_lookups : int;  (** Index lookups the shards performed (= tuple count). *)
  ps_candidates : int;  (** Hits that passed the target-row membership test. *)
}
(** Result of a pushed edge semijoin: the candidate pairs the local
    collect pass would have produced, computed on the owning shards.  The
    executor still dedups and direction-probes them. *)

type source = {
  lookup : Constr.t -> int list -> int array;
      (** The index lookup of the named constraint (materialising form,
          kept for backends and diagnostics). *)
  lookup_iter : Constr.t -> int array -> (int -> unit) -> unit;
      (** Copy-free lookup: the key is an array tuple in anchor order,
          read during the call and never retained (the executor reuses one
          odometer buffer for every tuple).  This is the form the hot loop
          drives. *)
  probe_edge : int -> int -> bool;  (** Directed-edge membership. *)
  probe_edges : ((int * int) array -> bool array) option;
      (** Batched directed-edge membership, answering each [(src, dst)]
          pair positionally.  When present, the executor routes each edge
          operation's distinct candidate pairs through one call instead
          of per-pair {!probe_edge}s — the hook a remote backend uses to
          spend one round trip per shard per operation.  Must agree with
          {!probe_edge} pointwise; [None] means probe one at a time. *)
  prefetch : (Constr.t -> int array array -> unit) option;
      (** Batching hint: called once per plan operation, before any of
          its lookups, with the constraint and the anchor candidate rows
          ([[||]] for an anchorless fetch).  The operation's key set is
          exactly the cartesian product of those rows, so a remote
          backend can resolve all of them in one round trip per shard.
          Purely advisory — the per-key [lookup_iter] calls that follow
          must return identical buckets whether or not it ran. *)
  push_fetch :
    (Constr.t -> Bpq_pattern.Predicate.t -> int array array -> pushed_fetch option)
    option;
      (** Worker-side pushdown of a whole fetch operation: called with the
          constraint, the target node's predicate and the anchor candidate
          rows ([[||]] for an anchorless fetch) {e before} any lookups.
          [Some r] means the shards evaluated the operation and [r] stands
          in for the local loop (which is then skipped entirely, including
          {!prefetch}); [None] falls back to the batched-fetch path.  The
          outer [None] means the backend has no pushdown at all. *)
  push_semijoin :
    (Constr.t ->
    row:int array ->
    arrays:int array array ->
    other_slot:int ->
    target_right:bool ->
    pushed_semijoin option)
    option;
      (** Worker-side pushdown of an edge operation's semijoin: [row] is
          the target side's candidate row, [arrays] the anchor rows,
          [other_slot] the tuple position of the non-target endpoint, and
          [target_right] orients the emitted pairs.  Same option contract
          as {!push_fetch}. *)
  warm_nodes : (int array -> unit) option;
      (** Batching hint for [G_Q] assembly: called once with the exact
          node set whose labels/values are about to be read, so a remote
          backend can warm them in one round trip per shard instead of one
          RPC per node.  Purely advisory, like {!prefetch}. *)
  node_label : int -> Bpq_graph.Label.t;
  node_value : int -> Bpq_graph.Value.t;
  table : Bpq_graph.Label.table;
  constraints : Constr.t list;
      (** The access schema the indexes realise — what {!Qplan} plans
          against. *)
  stamp : int;
      (** The {!Bpq_access.Schema.stamp} of the schema lineage behind the
          source; {!Qcache} keys plans and results by it.  Survives
          snapshot save/load. *)
  graph_size : int;
      (** [|G|] (nodes + edges), for {!Explain}'s accessed-fraction
          report. *)
  data_version : int;
      (** Identity of the data state {e behind} the stamp.  [0] for
          static sources (a frozen snapshot never changes under a
          reader); write-through overlays mint a fresh process-unique
          version per applied batch, so caches keyed by it can never
          confuse two overlay states — including across a compaction
          swap. *)
  label_gen : (Bpq_graph.Label.t -> int) option;
      (** Per-label delta generations {e carried by the data} this source
          serves, when the backend tracks writes ([None] for static
          sources).  {!Qcache} validates result-tier entries against the
          serving source's own generations, so an evaluation against an
          older slot can never tag its answer with generations it did not
          observe. *)
}

val source_of_schema : Schema.t -> source

val run_with :
  ?pool:Bpq_util.Pool.t -> ?cache:Fetch_cache.t -> source -> Plan.t -> result
(** A [source] driven in parallel must tolerate concurrent read-only use
    from several domains, as the frozen graph and indexes do. *)

(**/**)

val iter_tuples : int array array -> ('a * int) list -> (int array -> unit) -> unit
(** Exposed for the microbench harness and property tests: enumerate the
    cartesian product of [cmat] rows selected by the anchors' second
    components, lexicographically, yielding one {e reused} tuple buffer.
    Yields nothing if any selected row is empty; yields a single empty
    tuple for an empty anchor list. *)

val iter_tuples_slice :
  int array array -> lo:int -> hi:int -> (int array -> unit) -> unit
(** The sub-range of the same enumeration with linear tuple indices in
    [\[lo, hi)] (mixed-radix, last digit fastest): concatenating the
    slices of any partition of [\[0, total)] reproduces the full
    enumeration order.  Exposed for property tests. *)

val mem_sorted : int array -> int -> bool
(** Membership in a sorted distinct row by binary search.  Exposed for
    backends that replicate the executor's semijoin shard-side
    ([Bpq_store.Remote]). *)

val total_tuples : int array array -> int
(** Saturating product of the rows' lengths — the anchor-tuple odometer
    size.  Exposed for the same backends. *)
