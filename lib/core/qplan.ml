open Bpq_pattern
open Bpq_access

(* Distinct integer values admitted by a conjunction of comparison atoms;
   [None] when the atoms leave the range open.  Saturating — see
   {!Predicate.value_cap}. *)
let predicate_value_cap = Predicate.value_cap

(* Pick, per source label of a saturated actualized constraint, the
   fetchable anchor with the smallest current estimate.  The bound is a
   product over distinct labels, so per-label minimisation yields the
   global minimum over S-labeled anchor sets.  [tie] breaks exact
   worst-case ties by estimated realized cardinality (constantly 0 when
   no cost model is supplied, reproducing the historical first-member
   choice), so the bound carried by the chosen anchors never changes. *)
let best_anchors tie sn size (phi : Actualized.t) =
  let pick (label, members) =
    let usable = List.filter (fun v -> sn.(v)) members in
    match usable with
    | [] -> None
    | first :: rest ->
      let best =
        List.fold_left
          (fun b v ->
            if size.(v) < size.(b) || (size.(v) = size.(b) && tie v < tie b) then v
            else b)
          first rest
      in
      Some (label, best)
  in
  let rec all = function
    | [] -> Some []
    | g :: rest ->
      (match pick g with
       | None -> None
       | Some a -> Option.map (fun acc -> a :: acc) (all rest))
  in
  all phi.groups

let cost bound anchors size =
  List.fold_left (fun acc (_, v) -> Plan.sat_mul acc size.(v)) bound anchors

let generate ?(assume_distinct_values = false) ?costs semantics q constrs =
  let cover = Cover.compute semantics q constrs in
  if not (Cover.total cover) then None
  else begin
    let nq = Pattern.n_nodes q in
    (* Estimated realized candidates per pattern node, used only to break
       exact worst-case ties between anchor choices. *)
    let tie =
      match costs with
      | None -> fun _ -> 0.0
      | Some c ->
        let scores = Array.init nq (fun u -> Costs.anchor_score c q u) in
        fun v -> scores.(v)
    in
    let saturated = Cover.saturated cover in
    let size = Array.make nq max_int in
    let sn = Array.make nq false in
    let fetches = ref [] in
    (* Seed from the tightest type-(1) constraint per label (lines 2-6). *)
    for u = 0 to nq - 1 do
      let tightest =
        List.fold_left
          (fun best (c : Constr.t) ->
            if Constr.is_type1 c && c.target = Pattern.label q u then
              match best with
              | Some (b : Constr.t) when b.bound <= c.bound -> best
              | Some _ | None -> Some c
            else best)
          None constrs
      in
      match tightest with
      | None -> ()
      | Some c ->
        let est =
          match
            if assume_distinct_values then predicate_value_cap (Pattern.pred q u)
            else None
          with
          | Some cap -> min c.bound cap
          | None -> c.bound
        in
        fetches := { Plan.unode = u; anchors = []; constr = c; est } :: !fetches;
        sn.(u) <- true;
        size.(u) <- est
    done;
    (* Iteratively reduce candidate estimates (lines 7-9). *)
    let changed = ref true in
    while !changed do
      changed := false;
      for u = 0 to nq - 1 do
        let best =
          List.fold_left
            (fun best (phi : Actualized.t) ->
              if phi.target <> u then best
              else if phi.constr.bound = 0 then
                (* Unconditionally empty: no anchors needed (see Cover). *)
                Some (phi, [], 0)
              else
                match best_anchors tie sn size phi with
                | None -> best
                | Some anchors ->
                  let c = cost phi.constr.bound anchors size in
                  (match best with
                   | Some (_, _, cb) when cb <= c -> best
                   | Some _ | None -> Some (phi, anchors, c)))
            None saturated
        in
        match best with
        | Some (phi, anchors, c) when c < size.(u) ->
          fetches :=
            { Plan.unode = u; anchors; constr = phi.constr; est = c } :: !fetches;
          size.(u) <- c;
          sn.(u) <- true;
          changed := true
        | Some _ | None -> ()
      done
    done;
    if not (Array.for_all Fun.id sn) then None
    else begin
      (* Edge-verification directives: cheapest saturated constraint whose
         target is one endpoint and whose source side contains the other. *)
      let directive (u1, u2) =
        let consider (phi : Actualized.t) target other =
          if phi.target <> target || not (List.mem other phi.vbar) then None
          else begin
            let anchors =
              List.map
                (fun (label, members) ->
                  if label = Pattern.label q other then (label, other)
                  else
                    match List.filter (fun v -> sn.(v)) members with
                    | [] -> assert false (* saturated: every label has a
                                            covered, hence fetchable, member *)
                    | first :: rest ->
                      ( label,
                        List.fold_left
                          (fun b v ->
                            if
                              size.(v) < size.(b)
                              || (size.(v) = size.(b) && tie v < tie b)
                            then v
                            else b)
                          first rest ))
                phi.groups
            in
            Some
              { Plan.edge = (u1, u2);
                target_side = target;
                via = phi.constr;
                anchors;
                est = cost phi.constr.bound anchors size }
          end
        in
        let better a b =
          match (a, b) with
          | Some (x : Plan.edge_check), Some y -> if x.est <= y.est then a else b
          | (Some _ as s), None | None, s -> s
        in
        List.fold_left
          (fun best phi ->
            better best (better (consider phi u2 u1) (consider phi u1 u2)))
          None saturated
      in
      let rec directives acc = function
        | [] -> Some (List.rev acc)
        | e :: rest ->
          (match directive e with
           | None -> None
           | Some d -> directives (d :: acc) rest)
      in
      match directives [] (Pattern.edges q) with
      | None -> None
      | Some edge_checks ->
        let plan =
          { Plan.semantics;
            pattern = q;
            fetches = List.rev !fetches;
            edge_checks;
            node_estimates = size }
        in
        (* Ordering pass: estimated-cheapest first, dependencies respected.
           Never adds, drops, or re-estimates an operation. *)
        Some (match costs with None -> plan | Some c -> Costs.order_plan c plan)
    end
  end

let generate_exn ?assume_distinct_values ?costs semantics q constrs =
  match generate ?assume_distinct_values ?costs semantics q constrs with
  | Some plan -> plan
  | None -> invalid_arg "Qplan.generate_exn: query is not effectively bounded"
