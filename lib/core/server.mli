(** The [bpq serve] daemon core: a long-lived request router holding one
    warm engine — source, optional cross-query cache, domain pool — and
    speaking line-delimited JSON over any stream socket.

    {1 Protocol}

    One request per line, one response per line, both JSON objects.
    Requests carry an ["op"] of [query], [explain], [stats], [metrics],
    [reload], [write], [compact] or [shutdown]; [query]/[explain] add
    ["pattern"] (concrete syntax for {!Bpq_pattern.Pattern_parser}),
    optional ["semantics"] (["subgraph"]|["simulation"]) and optional
    ["limit"]; [write] adds ["ops"], an array of delta operations in
    {!Bpq_store.Wal.op_of_json} shape.  An optional ["id"] is echoed
    back verbatim.  Responses are [{"ok":true, ...}] or
    [{"ok":false, "error":CODE, "message":...}] with codes
    [parse], [bad_request], [unbounded], [overloaded], [timeout],
    [shutting_down], [reload_failed], [write_failed], [compact_failed]
    and [internal].  [metrics] returns the counters as a Prometheus
    text-format page in its ["text"] field (see {!metrics_text}).

    A plain [GET /metrics] HTTP request on the same socket is answered
    with the Prometheus page, and [GET /healthz] with a bare [200 ok] —
    liveness for scrapers and orchestrators without a JSON client.

    {1 Single-flight coalescing}

    Concurrent identical queries — equal {!Qcache.flight_key}: stamp,
    semantics, canonical shape, exact predicates, limit — cost one
    evaluation: the first arrival leads and evaluates on the pool,
    identical arrivals while it runs wait and share the outcome
    (answer, timeout or unbounded verdict alike).  Publication
    revalidates the slot generation: followers of a flight that a
    [reload] overtook are re-dispatched against the current slot rather
    than handed the pre-swap result, and the leader keeps its own result
    (valid for its pinned generation).  Answers are byte-identical with
    coalescing on or off; [stats] reports leaders / followers /
    re-dispatches.  Disable with [~coalesce:false] to measure.

    {1 Concurrency}

    Connections run on systhreads; admitted queries are routed onto the
    pool's worker domains ({!Bpq_util.Pool.async}) so the per-domain
    {!Qcache} shards stay single-owner.  With a sequential pool, queries
    run inline under one server-wide mutex instead.  Admission control
    caps in-flight queries ([max_inflight]) and connections
    ([max_connections]); requests and connections past the cap get a
    typed [overloaded] error instead of queueing without bound.

    {1 Reload}

    [reload] swaps in a fresh {!slot_data} from the hook.  Source
    generations are refcounted: in-flight queries finish on the
    generation they started with, and the old generation's [close] runs
    when its last query drains.  Snapshot save/load preserves the schema
    stamp, so plan-tier (and same-lineage result-tier) cache entries
    survive a reload warm. *)

open Bpq_util

type slot_data = {
  src : Exec.source;
  costs : Costs.t option;
  close : unit -> unit;  (** Called once, when the generation drains. *)
}

type t

val create :
  ?cache:Qcache.t ->
  ?max_inflight:int ->
  ?max_connections:int ->
  ?query_timeout:float ->
  ?semantics:Actualized.semantics ->
  ?coalesce:bool ->
  ?reload:(unit -> slot_data) ->
  ?write:(Jsonx.t -> (slot_data option * (string * Jsonx.t) list, string * string) result) ->
  ?compact:(unit -> (slot_data option * (string * Jsonx.t) list, string * string) result) ->
  ?extra_stats:(unit -> (string * Jsonx.t) list) ->
  ?extra_metrics:(unit -> string) ->
  pool:Pool.t ->
  slot_data ->
  t
(** [create ~pool data] builds a server over one warm engine.
    [max_inflight] (default 64) caps queued-or-running queries — [0] is
    legal and refuses every query, which tests use to observe the typed
    [overloaded] error.  [max_connections] (default 64) caps concurrent
    clients.  [query_timeout] bounds each query with
    {!Bpq_util.Timer.deadline_after}.  [semantics] (default
    {!Actualized.Subgraph}) applies when a request names none.
    [coalesce] (default [true]) enables single-flight coalescing of
    concurrent identical queries.
    [reload] serves the [reload] op; without it the op fails typed.
    [write] serves the [write] op: it receives the whole request object,
    applies the batch, and returns either a fresh slot to swap in (or
    [None] to keep serving the current one) plus response fields, or a
    typed [(code, message)] error.  A write swap goes through the same
    refcounted generation machinery as [reload] — in-flight queries
    finish on their pinned generation — but does not count as a reload
    in the stats.  [compact] serves the [compact] op the same way.
    Without the hooks both ops fail typed ([bad_request]).
    [extra_stats] fields are appended to every [stats] response.
    [extra_metrics] returns extra Prometheus exposition text (complete
    lines, or [""]) appended to every [metrics] page — the hook backend
    counters (e.g. sharded-store traffic) publish through.
    @raise Invalid_argument on negative [max_inflight] or
    non-positive [max_connections]. *)

val metrics_text : t -> string
(** The Prometheus text-exposition page (format 0.0.4) behind the
    [metrics] op: request/error/reload counters, single-flight leaders /
    followers / re-dispatches, inflight and connection gauges, cache
    tier counters, and a latency summary with interpolated quantiles. *)

val handle_line : t -> string -> string
(** [handle_line t line] routes one request line and returns the
    response line (no trailing newline).  Never raises: protocol and
    internal failures become [{"ok":false,...}] responses.  This is the
    whole protocol — {!serve} is a socket loop around it, and tests can
    drive it directly. *)

val serve : ?read_timeout:float -> ?write_timeout:float -> t -> Unix.file_descr -> unit
(** [serve t lfd] accepts connections on the listening socket [lfd]
    (from {!Bpq_util.Sock.listen}; the caller closes it afterwards with
    {!Bpq_util.Sock.close_listener}) and runs one systhread per
    connection until {!request_stop} — or a client's [shutdown] op —
    fires.  Per-connection socket timeouts apply to each read/write.
    SIGPIPE is ignored process-wide so a dropped client surfaces as
    [EPIPE] on its own connection only; a disconnect (or idle timeout)
    closes that connection without disturbing in-flight queries, which
    run to completion on the pool.  Returns only after every connection
    thread has drained. *)

val request_stop : t -> unit
(** Begin shutdown: new queries are refused with [shutting_down], the
    accept loop wakes and stops, and blocked connection reads are broken
    by shutting the sockets down.  Safe from any thread, including
    before {!serve} starts (it then returns immediately).  Idempotent. *)

val stopped : t -> bool

(** Minimal line-JSON client, used by the tests and the load-generator
    bench; [bpq serve] talks to the same protocol from any language. *)
module Client : sig
  type conn

  val connect : ?read_timeout:float -> ?write_timeout:float -> Sock.addr -> conn
  val send : conn -> Jsonx.t -> unit

  val recv : conn -> Jsonx.t option
  (** [None] on clean EOF.
      @raise Failure on a malformed response line. *)

  val rpc : conn -> Jsonx.t -> Jsonx.t
  (** {!send} then {!recv}, raising [Failure] on EOF. *)

  val query :
    ?semantics:Actualized.semantics -> ?limit:int -> conn -> string -> Jsonx.t

  val stats : conn -> Jsonx.t
  val metrics : conn -> Jsonx.t
  val reload : conn -> Jsonx.t

  val write : conn -> Jsonx.t list -> Jsonx.t
  (** [write c ops] sends a [write] batch; each element of [ops] is one
      delta operation in {!Bpq_store.Wal.op_of_json} shape. *)

  val compact : conn -> Jsonx.t
  val shutdown : conn -> Jsonx.t
  val close : conn -> unit
end
