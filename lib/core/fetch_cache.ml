open Bpq_access
module Lru = Bpq_util.Lru
module Vec = Bpq_util.Vec

(* Packed key layout (62 bits, always a non-negative OCaml int):

     [ arity:2 | cid:14 | e0:23 | e1:23 ]

   Arity participates so that ([], cid) and ([0], cid) and ([0,0], cid)
   never collide.  2-tuples are normalised (min, max): the index keys
   node *sets*, so both anchor orders must land on one entry. *)

let cid_bits = 14
let node_bits = 23
let node_mask = (1 lsl node_bits) - 1

type t = {
  lru : int array Lru.t;
  cids : (Constr.t, int) Hashtbl.t;
  mutable next_cid : int;
  mutable hits : int;
  mutable misses : int;
  mutable bypasses : int;
}

type stats = { hits : int; misses : int; evictions : int; bypasses : int }

let create ~capacity () =
  { lru = Lru.create capacity;
    cids = Hashtbl.create 64;
    next_cid = 0;
    hits = 0;
    misses = 0;
    bypasses = 0 }

let capacity t = Lru.capacity t.lru

let constr_id t c =
  match Hashtbl.find_opt t.cids c with
  | Some id -> id
  | None ->
    let id = t.next_cid in
    t.next_cid <- id + 1;
    Hashtbl.replace t.cids c id;
    id

(* -1 when the key does not fit the packed layout. *)
let pack t c (tuple : int array) =
  let arity = Array.length tuple in
  if arity > 2 then -1
  else begin
    let cid = constr_id t c in
    if cid >= 1 lsl cid_bits then -1
    else begin
      let e0, e1 =
        match arity with
        | 0 -> (0, 0)
        | 1 -> (tuple.(0), 0)
        | _ ->
          let a = tuple.(0) and b = tuple.(1) in
          if a <= b then (a, b) else (b, a)
      in
      if e0 > node_mask || e1 > node_mask || e0 < 0 || e1 < 0 then -1
      else
        (arity lsl (2 * node_bits + cid_bits))
        lor (cid lsl (2 * node_bits))
        lor (e0 lsl node_bits)
        lor e1
    end
  end

let lookup_iter t c tuple underlying f =
  let key = pack t c tuple in
  if key < 0 then begin
    t.bypasses <- t.bypasses + 1;
    underlying f
  end
  else
    match Lru.find t.lru key with
    | Some bucket ->
      t.hits <- t.hits + 1;
      Array.iter f bucket
    | None ->
      t.misses <- t.misses + 1;
      let hits = Vec.create ~capacity:8 () in
      underlying (fun w -> Vec.push hits w);
      let bucket = Vec.to_array hits in
      Lru.add t.lru key bucket;
      Array.iter f bucket

let stats (t : t) =
  { hits = t.hits;
    misses = t.misses;
    evictions = Lru.evictions t.lru;
    bypasses = t.bypasses }

let clear t = Lru.clear t.lru
