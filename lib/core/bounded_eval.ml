open Bpq_access
open Bpq_matcher

type answer =
  | Matches of int array list
  | Relation of int array array

let plan_for semantics schema q = Qplan.generate semantics q (Schema.constraints schema)

(* Every evaluator funnels through the source seam: one [Exec.run_with]
   building G_Q, then the conventional matcher on it. *)

let matches_with ?pool ?deadline ?limit ?cache src (plan : Plan.t) =
  let r = Exec.run_with ?pool ?cache src plan in
  let ms =
    Vf2.matches ?pool ?deadline ?limit ~candidates:r.candidates_gq r.gq plan.Plan.pattern
  in
  (List.map (Array.map (fun v -> r.from_gq.(v))) ms, r.stats)

let sim_with ?pool ?deadline ?cache src (plan : Plan.t) =
  let r = Exec.run_with ?pool ?cache src plan in
  let sim = Gsim.run ?deadline ~candidates:r.candidates_gq r.gq plan.Plan.pattern in
  (Array.map (Array.map (fun v -> r.from_gq.(v))) sim, r.stats)

let run ?pool ?deadline ?limit ?cache src (plan : Plan.t) =
  match plan.Plan.semantics with
  | Actualized.Subgraph -> Matches (fst (matches_with ?pool ?deadline ?limit ?cache src plan))
  | Actualized.Simulation -> Relation (fst (sim_with ?pool ?deadline ?cache src plan))

let bvf2_matches ?pool ?deadline ?limit ?cache schema plan =
  fst (matches_with ?pool ?deadline ?limit ?cache (Exec.source_of_schema schema) plan)

let bvf2_with_stats ?pool ?deadline ?cache schema plan =
  matches_with ?pool ?deadline ?cache (Exec.source_of_schema schema) plan

let bvf2_count ?pool ?deadline ?limit ?cache schema plan =
  let r = Exec.run_with ?pool ?cache (Exec.source_of_schema schema) plan in
  Vf2.count_matches ?pool ?deadline ?limit ~candidates:r.candidates_gq r.gq
    plan.Plan.pattern

let bsim_with_stats ?pool ?deadline ?cache schema plan =
  sim_with ?pool ?deadline ?cache (Exec.source_of_schema schema) plan

let bsim ?pool ?deadline ?cache schema plan =
  fst (bsim_with_stats ?pool ?deadline ?cache schema plan)
