open Bpq_access
open Bpq_matcher

let plan_for semantics schema q = Qplan.generate semantics q (Schema.constraints schema)

let run_exec ?pool ?cache schema plan = Exec.run ?pool ?cache schema plan

let bvf2_with_stats ?pool ?deadline ?cache schema plan =
  let r = run_exec ?pool ?cache schema plan in
  let matches =
    Vf2.matches ?pool ?deadline ~candidates:r.candidates_gq r.gq plan.Plan.pattern
  in
  (List.map (Array.map (fun v -> r.from_gq.(v))) matches, r.stats)

let bvf2_matches ?pool ?deadline ?limit ?cache schema plan =
  let r = run_exec ?pool ?cache schema plan in
  let matches =
    Vf2.matches ?pool ?deadline ?limit ~candidates:r.candidates_gq r.gq plan.Plan.pattern
  in
  List.map (Array.map (fun v -> r.from_gq.(v))) matches

let bvf2_count ?pool ?deadline ?limit ?cache schema plan =
  let r = run_exec ?pool ?cache schema plan in
  Vf2.count_matches ?pool ?deadline ?limit ~candidates:r.candidates_gq r.gq
    plan.Plan.pattern

let bsim_with_stats ?pool ?deadline ?cache schema plan =
  let r = run_exec ?pool ?cache schema plan in
  let sim = Gsim.run ?deadline ~candidates:r.candidates_gq r.gq plan.Plan.pattern in
  (Array.map (Array.map (fun v -> r.from_gq.(v))) sim, r.stats)

let bsim ?pool ?deadline ?cache schema plan =
  fst (bsim_with_stats ?pool ?deadline ?cache schema plan)
