(** Incremental bounded evaluation (the paper's §VIII future-work topic).

    Maintains the answer of an effectively bounded query under graph
    deltas.  On each update the access-schema indexes are repaired locally
    ({!Bpq_access.Index.apply_delta}); the answer is then refreshed by
    re-running the query plan — itself bounded, so the per-update matching
    cost is independent of [|G|].  Deltas that cannot affect the answer
    (no changed edge joins two labels used by the pattern, no changed node
    carries such a label) skip the re-evaluation entirely. *)

open Bpq_graph
open Bpq_access
open Bpq_pattern

type answer =
  | Matches of int array list  (** Subgraph semantics. *)
  | Relation of int array array  (** Simulation semantics. *)

type t

type refresh_stats = {
  reused_plan : bool;
      (** Always true today: the plan generated at {!create} serves every
          refresh (the constraint set is delta-invariant, so no [Ebchk]
          re-check or re-planning happens on update). *)
  fetch_hits : int;  (** Fetch-cache hits during the refresh. *)
  fetch_misses : int;  (** Fetch-cache misses during the refresh. *)
}

val create :
  ?cache:Qcache.t -> Actualized.semantics -> Schema.t -> Pattern.t -> t option
(** [None] when the query is not effectively bounded under the schema.
    With [cache], planning goes through the plan tier and every
    (re-)evaluation through the fetch tier; {!update} reports the delta to
    the cache ({!Qcache.note_delta}) before repairing the schema. *)

val answer : t -> answer
(** The current answer (in current-graph node identifiers). *)

val schema : t -> Schema.t
(** The current (updated) schema. *)

val update : t -> Digraph.delta -> t
(** Applies the delta; returns the refreshed state.  The input state
    remains valid (indexes are copied before repair). *)

val last_update_skipped : t -> bool
(** True when the most recent {!update} proved the delta irrelevant and
    reused the previous answer. *)

val last_refresh : t -> refresh_stats option
(** Statistics of the most recent {e relevant} update's re-evaluation
    ([None] before the first one, and unchanged by skipped updates).
    Fetch counters are zero when no [cache] was supplied to {!create}. *)
