open Bpq_graph
open Bpq_pattern
open Bpq_access
module Vec = Bpq_util.Vec
module Pool = Bpq_util.Pool

type stats = {
  fetch_lookups : int;
  fetched : int;
  edge_lookups : int;
  edge_candidates : int;
  edges_added : int;
}

let accessed s = s.fetched + s.edge_candidates

type op_trace = {
  op : [ `Fetch of int | `Edge of int * int ];
  estimate : int;
  realized : int;
  pushed : bool;
}

type result = {
  gq : Digraph.t;
  from_gq : int array;
  candidates_gq : int array array;
  candidates_g : int array array;
  stats : stats;
  trace : op_trace list;
}

(* Enumerate the cartesian product of the anchors' candidate arrays as an
   index-array odometer: the yielded tuple (one concrete node per source
   label, in anchor order) is a single reused buffer — callers must read
   it, not retain it.  Lexicographic order, last position fastest, exactly
   like the list-building recursion it replaces. *)
let iter_tuples (cmat : int array array) anchors yield =
  let k = List.length anchors in
  let arrays = Array.make k [||] in
  List.iteri (fun i (_, u) -> arrays.(i) <- cmat.(u)) anchors;
  if not (Array.exists (fun arr -> Array.length arr = 0) arrays) then begin
    let tuple = Array.make k 0 in
    if k = 0 then yield tuple
    else begin
      let idx = Array.make k 0 in
      for i = 0 to k - 1 do
        tuple.(i) <- arrays.(i).(0)
      done;
      let rec loop () =
        yield tuple;
        (* Advance the odometer; digit [k-1] spins fastest. *)
        let i = ref (k - 1) in
        let rolled = ref false in
        let continue_ = ref true in
        while !continue_ do
          if !i < 0 then begin
            rolled := true;
            continue_ := false
          end
          else begin
            let p = idx.(!i) + 1 in
            if p < Array.length arrays.(!i) then begin
              idx.(!i) <- p;
              tuple.(!i) <- arrays.(!i).(p);
              continue_ := false
            end
            else begin
              idx.(!i) <- 0;
              tuple.(!i) <- arrays.(!i).(0);
              decr i
            end
          end
        done;
        if not !rolled then loop ()
      in
      loop ()
    end
  end

(* Slice of the same enumeration by linear tuple index: tuple positions
   form a mixed-radix number (digit [i] has base [length arrays.(i)], last
   digit fastest), so the concatenation of [iter_tuples_slice ~lo ~hi] over
   a partition of [0, total) reproduces [iter_tuples]'s order exactly.
   This is the unit of intra-query parallelism: contiguous index ranges
   are handed to pool domains. *)
let iter_tuples_slice (arrays : int array array) ~lo ~hi yield =
  let k = Array.length arrays in
  if k = 0 then begin
    if lo <= 0 && hi >= 1 then yield [||]
  end
  else if lo < hi && not (Array.exists (fun arr -> Array.length arr = 0) arrays) then begin
    let tuple = Array.make k 0 in
    let idx = Array.make k 0 in
    let rem = ref lo in
    for i = k - 1 downto 0 do
      let len = Array.length arrays.(i) in
      idx.(i) <- !rem mod len;
      tuple.(i) <- arrays.(i).(idx.(i));
      rem := !rem / len
    done;
    let remaining = ref (hi - lo) in
    let continue_outer = ref true in
    while !continue_outer do
      yield tuple;
      decr remaining;
      if !remaining = 0 then continue_outer := false
      else begin
        (* Advance the odometer; digit [k-1] spins fastest. *)
        let i = ref (k - 1) in
        let continue_ = ref true in
        while !continue_ do
          if !i < 0 then begin
            continue_outer := false;
            continue_ := false
          end
          else begin
            let p = idx.(!i) + 1 in
            if p < Array.length arrays.(!i) then begin
              idx.(!i) <- p;
              tuple.(!i) <- arrays.(!i).(p);
              continue_ := false
            end
            else begin
              idx.(!i) <- 0;
              tuple.(!i) <- arrays.(!i).(0);
              decr i
            end
          end
        done
      end
    done
  end

(* What a pushed fetch operation hands back: the operation's whole
   candidate row (sorted distinct, predicate already applied shard-side)
   plus the counters the sequential loop would have accumulated, so
   stats stay identical whichever side evaluated. *)
type pushed_fetch = {
  pf_hits : int array;
  pf_lookups : int;
  pf_streamed : int;
}

(* What a pushed edge semijoin hands back: the operation's candidate
   directed pairs (index hit ∩ target row, direction not yet verified —
   the executor still probes), possibly with duplicates across shards,
   plus the sequential loop's counters. *)
type pushed_semijoin = {
  ps_pairs : (int * int) array;
  ps_lookups : int;
  ps_candidates : int;
}

type source = {
  lookup : Constr.t -> int list -> int array;
  lookup_iter : Constr.t -> int array -> (int -> unit) -> unit;
  probe_edge : int -> int -> bool;
  probe_edges : ((int * int) array -> bool array) option;
  prefetch : (Constr.t -> int array array -> unit) option;
  push_fetch :
    (Constr.t -> Bpq_pattern.Predicate.t -> int array array -> pushed_fetch option) option;
  push_semijoin :
    (Constr.t ->
    row:int array ->
    arrays:int array array ->
    other_slot:int ->
    target_right:bool ->
    pushed_semijoin option)
    option;
  warm_nodes : (int array -> unit) option;
  node_label : int -> Bpq_graph.Label.t;
  node_value : int -> Value.t;
  table : Bpq_graph.Label.table;
  constraints : Constr.t list;
  stamp : int;
  graph_size : int;
  data_version : int;
  label_gen : (Bpq_graph.Label.t -> int) option;
}

let source_of_schema schema =
  let g = Schema.graph schema in
  { lookup = (fun c key -> Index.lookup (Schema.index_of schema c) key);
    lookup_iter =
      (fun c tuple f -> Index.lookup_tuple_iter (Schema.index_of schema c) tuple f);
    probe_edge = Digraph.has_edge g;
    probe_edges = None;
    prefetch = None;
    push_fetch = None;
    push_semijoin = None;
    warm_nodes = None;
    node_label = Digraph.label g;
    node_value = Digraph.value g;
    table = Digraph.label_table g;
    constraints = Schema.constraints schema;
    stamp = Schema.stamp schema;
    graph_size = Digraph.size g;
    data_version = 0;
    label_gen = None }

(* Membership in a sorted candidate row — every cmat row is sorted
   distinct, so a binary search replaces the per-row hashtables. *)
let mem_sorted (arr : int array) v =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) lsr 1 in
    if arr.(mid) <= v then lo := mid else hi := mid
  done;
  !lo < !hi && arr.(!lo) = v

(* Intersection of two sorted distinct arrays, sorted distinct. *)
let intersect_sorted (a : int array) (b : int array) =
  let out = Vec.create ~capacity:(min (Array.length a) (Array.length b) + 1) () in
  let i = ref 0 and j = ref 0 in
  while !i < Array.length a && !j < Array.length b do
    let x = a.(!i) and y = b.(!j) in
    if x < y then incr i
    else if y < x then incr j
    else begin
      Vec.push out x;
      incr i;
      incr j
    end
  done;
  Vec.to_array out

(* G_Q node ids fit 31 bits (they are dense graph ids), so a directed edge
   packs into one int for the dedup set. *)
let pack_edge s d = (s lsl 31) lor d
let unpack_edge k = (k lsr 31, k land ((1 lsl 31) - 1))

module Int_tbl = Hashtbl.Make (struct
  type t = int

  let equal (a : int) b = a = b

  let hash x =
    let x = x * 0x9E3779B97F4A7C1 in
    let x = x lxor (x lsr 29) in
    let x = x * 0xBF58476D1CE4E5 in
    x lxor (x lsr 32)
end)

(* Route every lookup through the fetch cache; the closure re-binds the
   underlying iterator per call so the cache can replay it on a miss.
   The cache streams exactly the index bucket in bucket order, so the
   executor's counters and candidate sets are identical with and without
   it. *)
let cached_source cache src =
  { src with
    lookup_iter =
      (fun c tuple f ->
        Fetch_cache.lookup_iter cache c tuple (fun k -> src.lookup_iter c tuple k) f) }

(* Minimum tuple count before an operation fans out across the pool:
   below this, dispatch overhead dominates the per-tuple index probes. *)
let par_threshold = 256

(* Contiguous linear-index ranges covering [0, total), one per chunk. *)
let chunk_ranges total chunks =
  Array.init chunks (fun c -> (c * total / chunks, (c + 1) * total / chunks))

let anchor_rows (cmat : int array array) anchors =
  let k = List.length anchors in
  let arrays = Array.make k [||] in
  List.iteri (fun i (_, u) -> arrays.(i) <- cmat.(u)) anchors;
  arrays

let total_tuples (arrays : int array array) =
  Array.fold_left (fun acc a -> Plan.sat_mul acc (Array.length a)) 1 arrays

let run_with ?pool ?cache (src : source) (plan : Plan.t) =
  let slots = match pool with None -> 1 | Some p -> Pool.size p in
  (* The caller's cache wraps the source as always.  Worker domains get
     private shards of the same capacity, created on first use under a
     mutex (Fetch_cache is single-domain state, mirroring Qcache's
     per-domain discipline).  The cache is stats-transparent — it replays
     exact index buckets — so results are byte-identical whichever shard,
     or none, answers a lookup. *)
  let owner = (Domain.self () :> int) in
  let shards = ref [] in
  let shards_mu = Mutex.create () in
  let seq_src = match cache with None -> src | Some c -> cached_source c src in
  let task_src () =
    match cache with
    | None -> src
    | Some c ->
      let id = (Domain.self () :> int) in
      if id = owner then seq_src
      else begin
        Mutex.lock shards_mu;
        let shard =
          match List.assoc_opt id !shards with
          | Some s -> s
          | None ->
            let s = Fetch_cache.create ~capacity:(Fetch_cache.capacity c) () in
            shards := (id, s) :: !shards;
            s
        in
        Mutex.unlock shards_mu;
        cached_source shard src
      end
  in
  (* Fan an operation's anchor-tuple odometer out across the pool as
     contiguous linear-index ranges; [task lo hi] must be independent of
     every other range.  Returns [None] when the operation stays
     sequential (no pool, too few tuples, or a saturated tuple count). *)
  let fan_out total task =
    match pool with
    | Some p when slots > 1 && total >= par_threshold && total < max_int ->
      let ranges = chunk_ranges total (min total (4 * slots)) in
      Some (Pool.map_array p (fun (lo, hi) -> task lo hi) ranges)
    | Some _ | None -> None
  in
  (* Batching hint: before each operation drives its lookups, hand the
     source the constraint and the full anchor rows, so a remote backend
     can resolve every key of the operation in one round trip per shard
     (Bpq_store.Remote).  Purely an optimisation hook — the per-lookup
     calls that follow must return the same buckets either way. *)
  let maybe_prefetch c arrays =
    match src.prefetch with Some pf -> pf c arrays | None -> ()
  in
  let q = plan.pattern in
  let nq = Pattern.n_nodes q in
  let cmat = Array.make nq [||] in
  let fetched_yet = Array.make nq false in
  let fetch_lookups = ref 0 and fetched = ref 0 in
  let trace = ref [] in
  List.iter
    (fun (f : Plan.fetch) ->
      let pred = Pattern.pred q f.unode in
      let arrays = anchor_rows cmat f.anchors in
      (* Pushdown first: a distributed source may evaluate the whole
         fetch — bucket streaming, predicate, dedup — on the owning
         shards and return only the surviving row plus the counters the
         loop below would have produced.  [None] (no hook, or the hook
         declines this op) falls back to the local loop unchanged. *)
      let pushed_result =
        match src.push_fetch with
        | Some pf -> pf f.constr pred arrays
        | None -> None
      in
      let was_pushed = pushed_result <> None in
      let hits_arr =
        match pushed_result with
        | Some (r : pushed_fetch) ->
          fetch_lookups := !fetch_lookups + r.pf_lookups;
          fetched := !fetched + r.pf_streamed;
          r.pf_hits
        | None ->
          (* Hits accumulate (with duplicates) into a vector; a monomorphic
             sort_uniq then yields the same sorted distinct set the old
             hashtable produced, without per-hit boxing.  The parallel path
             concatenates per-range vectors in range order first, so the
             multiset reaching sort_uniq — hence the resulting set — is the
             sequential one. *)
          let hits = Vec.create ~capacity:64 () in
          let streamed_of (s : source) hits tuple =
            let streamed = ref 0 in
            s.lookup_iter f.constr tuple (fun w ->
                incr streamed;
                if Predicate.eval pred (s.node_value w) then Vec.push hits w);
            !streamed
          in
          if f.anchors = [] then begin
            maybe_prefetch f.constr [||];
            incr fetch_lookups;
            fetched := !fetched + streamed_of seq_src hits [||]
          end
          else begin
            let total = total_tuples arrays in
            maybe_prefetch f.constr arrays;
            match
              fan_out total (fun lo hi ->
                  let s = task_src () in
                  let local = Vec.create ~capacity:64 () in
                  let lookups = ref 0 and streamed = ref 0 in
                  iter_tuples_slice arrays ~lo ~hi (fun tuple ->
                      incr lookups;
                      streamed := !streamed + streamed_of s local tuple);
                  (local, !lookups, !streamed))
            with
            | Some parts ->
              Array.iter
                (fun (local, lookups, streamed) ->
                  fetch_lookups := !fetch_lookups + lookups;
                  fetched := !fetched + streamed;
                  Vec.iter (Vec.push hits) local)
                parts
            | None ->
              iter_tuples_slice arrays ~lo:0 ~hi:total (fun tuple ->
                  incr fetch_lookups;
                  fetched := !fetched + streamed_of seq_src hits tuple)
          end;
          Vec.sort_uniq hits;
          Vec.to_array hits
      in
      let result =
        if fetched_yet.(f.unode) then
          (* Later fetches reduce the set: both are supersets of the true
             matches, so the intersection still is. *)
          intersect_sorted cmat.(f.unode) hits_arr
        else hits_arr
      in
      cmat.(f.unode) <- result;
      fetched_yet.(f.unode) <- true;
      trace :=
        { op = `Fetch f.unode;
          estimate = f.est;
          realized = Array.length result;
          pushed = was_pushed }
        :: !trace)
    plan.fetches;
  (* Edge verification.  A node may be candidate for several pattern nodes;
     G_Q has one node per distinct graph node.  Membership tests are binary
     probes into the sorted candidate rows. *)
  let edge_lookups = ref 0 and edge_candidates = ref 0 in
  let gq_edges = Int_tbl.create 256 in
  List.iter
    (fun (ec : Plan.edge_check) ->
      let u1, u2 = ec.edge in
      let added_before = Int_tbl.length gq_edges in
      let other = if ec.target_side = u1 then u2 else u1 in
      let other_label = Pattern.label q other in
      (* Position of [other]'s component within each tuple. *)
      let other_slot =
        let rec find i = function
          | [] -> assert false
          | (label, anchor) :: rest ->
            if anchor = other && label = other_label then i else find (i + 1) rest
        in
        find 0 ec.anchors
      in
      let row = cmat.(ec.target_side) in
      let arrays = anchor_rows cmat ec.anchors in
      let total = total_tuples arrays in
      (* Distinct candidate pairs in first-appearance order (pairs recur
         across tuples; one probe per distinct pair suffices). *)
      let distinct = Vec.create ~capacity:64 () in
      let seen = Int_tbl.create 64 in
      let note packed =
        if not (Int_tbl.mem seen packed) then begin
          Int_tbl.replace seen packed ();
          Vec.push distinct packed
        end
      in
      (* Pushdown first: the owning shards can run the semijoin — index
         lookup ∩ target row — locally and return only the candidate
         directed pairs plus the loop's counters.  Direction probing and
         dedup still happen here either way. *)
      let was_pushed =
        match src.push_semijoin with
        | Some ps -> (
          match
            ps ec.via ~row ~arrays ~other_slot ~target_right:(ec.target_side = u2)
          with
          | Some (r : pushed_semijoin) ->
            edge_lookups := !edge_lookups + r.ps_lookups;
            edge_candidates := !edge_candidates + r.ps_candidates;
            Array.iter (fun (e_src, e_dst) -> note (pack_edge e_src e_dst)) r.ps_pairs;
            true
          | None -> false)
        | None -> false
      in
      if not was_pushed then begin
        maybe_prefetch ec.via arrays;
        (* Two passes.  Pass 1 walks the tuple odometer collecting the
           candidate directed pairs (index hit + membership in the target
           row); pass 2 probes them for direction and inserts the certified
           edges.  Splitting the probe out lets a remote source answer all
           of an operation's probes in one batched round trip per shard —
           and since probes are pure, the certified set (hence the dedup
           table, the realized count and every counter) is the same as the
           old probe-as-you-go loop. *)
        let collect (s : source) push tuple =
          let v_other = tuple.(other_slot) in
          let cands = ref 0 in
          s.lookup_iter ec.via tuple (fun w ->
              if mem_sorted row w then begin
                incr cands;
                let e_src, e_dst =
                  if ec.target_side = u2 then (v_other, w) else (w, v_other)
                in
                push (pack_edge e_src e_dst)
              end);
          !cands
        in
        match
          fan_out total (fun lo hi ->
              let s = task_src () in
              let pairs = Vec.create ~capacity:64 () in
              let lookups = ref 0 and cands = ref 0 in
              iter_tuples_slice arrays ~lo ~hi (fun tuple ->
                  incr lookups;
                  cands := !cands + collect s (Vec.push pairs) tuple);
              (pairs, !lookups, !cands))
        with
        | Some parts ->
          (* Candidate pairs merge in range order, so the distinct-pair
             sequence matches the sequential pass. *)
          Array.iter
            (fun (pairs, lookups, cands) ->
              edge_lookups := !edge_lookups + lookups;
              edge_candidates := !edge_candidates + cands;
              Vec.iter note pairs)
            parts
        | None ->
          iter_tuples_slice arrays ~lo:0 ~hi:total (fun tuple ->
              incr edge_lookups;
              edge_candidates := !edge_candidates + collect seq_src note tuple)
      end;
      let pairs = Vec.to_array distinct in
      let verdicts =
        match src.probe_edges with
        | Some f when Array.length pairs > 0 -> f (Array.map unpack_edge pairs)
        | _ ->
          Array.map
            (fun packed ->
              let e_src, e_dst = unpack_edge packed in
              seq_src.probe_edge e_src e_dst)
            pairs
      in
      Array.iteri
        (fun i packed -> if verdicts.(i) then Int_tbl.replace gq_edges packed ())
        pairs;
      trace :=
        { op = `Edge ec.edge;
          estimate = ec.est;
          realized = Int_tbl.length gq_edges - added_before;
          pushed = was_pushed }
        :: !trace)
    plan.edge_checks;
  (* Assemble G_Q.  First-occurrence order over the candidate rows fixes
     the node numbering, exactly as before. *)
  let to_gq = Int_tbl.create 256 in
  let order = ref [] and count = ref 0 in
  Array.iter
    (Array.iter (fun v ->
         if not (Int_tbl.mem to_gq v) then begin
           Int_tbl.replace to_gq v !count;
           order := v :: !order;
           incr count
         end))
    cmat;
  let from_gq = Array.of_list (List.rev !order) in
  (* One attribute-warm round over exactly the G_Q nodes: the label and
     value reads below then hit a warm cache instead of one RPC each. *)
  (match src.warm_nodes with
  | Some wn when Array.length from_gq > 0 -> wn from_gq
  | _ -> ());
  let b = Digraph.Builder.create ~node_hint:!count src.table in
  Array.iter
    (fun v -> ignore (Digraph.Builder.add_node b (src.node_label v) (src.node_value v)))
    from_gq;
  Int_tbl.iter
    (fun packed () ->
      let e_src, e_dst = unpack_edge packed in
      Digraph.Builder.add_edge b (Int_tbl.find to_gq e_src) (Int_tbl.find to_gq e_dst))
    gq_edges;
  let gq = Digraph.Builder.freeze b in
  let candidates_gq = Array.map (Array.map (Int_tbl.find to_gq)) cmat in
  { gq;
    from_gq;
    candidates_gq;
    candidates_g = cmat;
    stats =
      { fetch_lookups = !fetch_lookups;
        fetched = !fetched;
        edge_lookups = !edge_lookups;
        edge_candidates = !edge_candidates;
        edges_added = Int_tbl.length gq_edges };
    trace = List.rev !trace }

let run ?pool ?cache schema plan = run_with ?pool ?cache (source_of_schema schema) plan
