open Bpq_graph
open Bpq_pattern
open Bpq_access
module Vec = Bpq_util.Vec

type stats = {
  fetch_lookups : int;
  fetched : int;
  edge_lookups : int;
  edge_candidates : int;
  edges_added : int;
}

let accessed s = s.fetched + s.edge_candidates

type op_trace = {
  op : [ `Fetch of int | `Edge of int * int ];
  estimate : int;
  realized : int;
}

type result = {
  gq : Digraph.t;
  from_gq : int array;
  candidates_gq : int array array;
  candidates_g : int array array;
  stats : stats;
  trace : op_trace list;
}

(* Enumerate the cartesian product of the anchors' candidate arrays as an
   index-array odometer: the yielded tuple (one concrete node per source
   label, in anchor order) is a single reused buffer — callers must read
   it, not retain it.  Lexicographic order, last position fastest, exactly
   like the list-building recursion it replaces. *)
let iter_tuples (cmat : int array array) anchors yield =
  let k = List.length anchors in
  let arrays = Array.make k [||] in
  List.iteri (fun i (_, u) -> arrays.(i) <- cmat.(u)) anchors;
  if not (Array.exists (fun arr -> Array.length arr = 0) arrays) then begin
    let tuple = Array.make k 0 in
    if k = 0 then yield tuple
    else begin
      let idx = Array.make k 0 in
      for i = 0 to k - 1 do
        tuple.(i) <- arrays.(i).(0)
      done;
      let rec loop () =
        yield tuple;
        (* Advance the odometer; digit [k-1] spins fastest. *)
        let i = ref (k - 1) in
        let rolled = ref false in
        let continue_ = ref true in
        while !continue_ do
          if !i < 0 then begin
            rolled := true;
            continue_ := false
          end
          else begin
            let p = idx.(!i) + 1 in
            if p < Array.length arrays.(!i) then begin
              idx.(!i) <- p;
              tuple.(!i) <- arrays.(!i).(p);
              continue_ := false
            end
            else begin
              idx.(!i) <- 0;
              tuple.(!i) <- arrays.(!i).(0);
              decr i
            end
          end
        done;
        if not !rolled then loop ()
      in
      loop ()
    end
  end

type source = {
  lookup : Constr.t -> int list -> int array;
  lookup_iter : Constr.t -> int array -> (int -> unit) -> unit;
  probe_edge : int -> int -> bool;
  node_label : int -> Bpq_graph.Label.t;
  node_value : int -> Value.t;
  table : Bpq_graph.Label.table;
}

let source_of_schema schema =
  let g = Schema.graph schema in
  { lookup = (fun c key -> Index.lookup (Schema.index_of schema c) key);
    lookup_iter =
      (fun c tuple f -> Index.lookup_tuple_iter (Schema.index_of schema c) tuple f);
    probe_edge = Digraph.has_edge g;
    node_label = Digraph.label g;
    node_value = Digraph.value g;
    table = Digraph.label_table g }

(* Membership in a sorted candidate row — every cmat row is sorted
   distinct, so a binary search replaces the per-row hashtables. *)
let mem_sorted (arr : int array) v =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) lsr 1 in
    if arr.(mid) <= v then lo := mid else hi := mid
  done;
  !lo < !hi && arr.(!lo) = v

(* Intersection of two sorted distinct arrays, sorted distinct. *)
let intersect_sorted (a : int array) (b : int array) =
  let out = Vec.create ~capacity:(min (Array.length a) (Array.length b) + 1) () in
  let i = ref 0 and j = ref 0 in
  while !i < Array.length a && !j < Array.length b do
    let x = a.(!i) and y = b.(!j) in
    if x < y then incr i
    else if y < x then incr j
    else begin
      Vec.push out x;
      incr i;
      incr j
    end
  done;
  Vec.to_array out

(* G_Q node ids fit 31 bits (they are dense graph ids), so a directed edge
   packs into one int for the dedup set. *)
let pack_edge s d = (s lsl 31) lor d
let unpack_edge k = (k lsr 31, k land ((1 lsl 31) - 1))

module Int_tbl = Hashtbl.Make (struct
  type t = int

  let equal (a : int) b = a = b

  let hash x =
    let x = x * 0x9E3779B97F4A7C1 in
    let x = x lxor (x lsr 29) in
    let x = x * 0xBF58476D1CE4E5 in
    x lxor (x lsr 32)
end)

(* Route every lookup through the fetch cache; the closure re-binds the
   underlying iterator per call so the cache can replay it on a miss.
   The cache streams exactly the index bucket in bucket order, so the
   executor's counters and candidate sets are identical with and without
   it. *)
let cached_source cache src =
  { src with
    lookup_iter =
      (fun c tuple f ->
        Fetch_cache.lookup_iter cache c tuple (fun k -> src.lookup_iter c tuple k) f) }

let run_with ?cache (src : source) (plan : Plan.t) =
  let src = match cache with None -> src | Some c -> cached_source c src in
  let q = plan.pattern in
  let nq = Pattern.n_nodes q in
  let cmat = Array.make nq [||] in
  let fetched_yet = Array.make nq false in
  let fetch_lookups = ref 0 and fetched = ref 0 in
  let trace = ref [] in
  List.iter
    (fun (f : Plan.fetch) ->
      let pred = Pattern.pred q f.unode in
      (* Hits accumulate (with duplicates) into a vector; a monomorphic
         sort_uniq then yields the same sorted distinct set the old
         hashtable produced, without per-hit boxing. *)
      let hits = Vec.create ~capacity:64 () in
      let collect tuple =
        incr fetch_lookups;
        src.lookup_iter f.constr tuple (fun w ->
            incr fetched;
            if Predicate.eval pred (src.node_value w) then Vec.push hits w)
      in
      if f.anchors = [] then collect [||]
      else iter_tuples cmat f.anchors collect;
      Vec.sort_uniq hits;
      let result =
        if fetched_yet.(f.unode) then
          (* Later fetches reduce the set: both are supersets of the true
             matches, so the intersection still is. *)
          intersect_sorted cmat.(f.unode) (Vec.to_array hits)
        else Vec.to_array hits
      in
      cmat.(f.unode) <- result;
      fetched_yet.(f.unode) <- true;
      trace := { op = `Fetch f.unode; estimate = f.est; realized = Array.length result } :: !trace)
    plan.fetches;
  (* Edge verification.  A node may be candidate for several pattern nodes;
     G_Q has one node per distinct graph node.  Membership tests are binary
     probes into the sorted candidate rows. *)
  let edge_lookups = ref 0 and edge_candidates = ref 0 in
  let gq_edges = Int_tbl.create 256 in
  List.iter
    (fun (ec : Plan.edge_check) ->
      let u1, u2 = ec.edge in
      let added_before = Int_tbl.length gq_edges in
      let other = if ec.target_side = u1 then u2 else u1 in
      let other_label = Pattern.label q other in
      (* Position of [other]'s component within each tuple. *)
      let other_slot =
        let rec find i = function
          | [] -> assert false
          | (label, anchor) :: rest ->
            if anchor = other && label = other_label then i else find (i + 1) rest
        in
        find 0 ec.anchors
      in
      let row = cmat.(ec.target_side) in
      iter_tuples cmat ec.anchors (fun tuple ->
          incr edge_lookups;
          let v_other = tuple.(other_slot) in
          src.lookup_iter ec.via tuple (fun w ->
              if mem_sorted row w then begin
                incr edge_candidates;
                let e_src, e_dst = if ec.target_side = u2 then (v_other, w) else (w, v_other) in
                if src.probe_edge e_src e_dst then
                  Int_tbl.replace gq_edges (pack_edge e_src e_dst) ()
              end));
      trace :=
        { op = `Edge ec.edge;
          estimate = ec.est;
          realized = Int_tbl.length gq_edges - added_before }
        :: !trace)
    plan.edge_checks;
  (* Assemble G_Q.  First-occurrence order over the candidate rows fixes
     the node numbering, exactly as before. *)
  let to_gq = Int_tbl.create 256 in
  let order = ref [] and count = ref 0 in
  Array.iter
    (Array.iter (fun v ->
         if not (Int_tbl.mem to_gq v) then begin
           Int_tbl.replace to_gq v !count;
           order := v :: !order;
           incr count
         end))
    cmat;
  let from_gq = Array.of_list (List.rev !order) in
  let b = Digraph.Builder.create ~node_hint:!count src.table in
  Array.iter
    (fun v -> ignore (Digraph.Builder.add_node b (src.node_label v) (src.node_value v)))
    from_gq;
  Int_tbl.iter
    (fun packed () ->
      let e_src, e_dst = unpack_edge packed in
      Digraph.Builder.add_edge b (Int_tbl.find to_gq e_src) (Int_tbl.find to_gq e_dst))
    gq_edges;
  let gq = Digraph.Builder.freeze b in
  let candidates_gq = Array.map (Array.map (Int_tbl.find to_gq)) cmat in
  { gq;
    from_gq;
    candidates_gq;
    candidates_g = cmat;
    stats =
      { fetch_lookups = !fetch_lookups;
        fetched = !fetched;
        edge_lookups = !edge_lookups;
        edge_candidates = !edge_candidates;
        edges_added = Int_tbl.length gq_edges };
    trace = List.rev !trace }

let run ?cache schema plan = run_with ?cache (source_of_schema schema) plan
