(** Batch (multi-query) bounded evaluation on a domain pool.

    A frozen {!Bpq_access.Schema} — its graph and every index — is
    read-only after build, and each {!Exec.run} / {!Bounded_eval} call
    allocates only private state, so independent queries evaluate safely
    in parallel on OCaml 5 domains.  This module fans a list of planned
    queries out across a {!Bpq_util.Pool}; answers come back in input
    order and are identical to a sequential run for every pool size
    (nothing mutable, PRNGs included, is shared between items).

    Used by the benchmark sweeps ([bench/main.ml]) and by
    [bpq run --jobs N]. *)

open Bpq_util
open Bpq_pattern
open Bpq_access

type item = {
  semantics : Actualized.semantics;
  plan : Plan.t;  (** The pattern is [plan.Plan.pattern]. *)
}

val item : Actualized.semantics -> Plan.t -> item

type answer = Bounded_eval.answer =
  | Matches of int array list
      (** Subgraph-isomorphism matches, pattern-indexed, in original
          graph node identifiers. *)
  | Relation of int array array
      (** The maximum simulation relation, as {!Bounded_eval.bsim}. *)

type outcome =
  | Answer of answer * float  (** Result and elapsed wall-clock seconds. *)
  | Timeout of float  (** Hit the per-item cut-off; elapsed at cut-off. *)

val answer_size : answer -> int
(** Match count, or total relation size under simulation semantics. *)

val plan_all :
  ?pool:Pool.t ->
  Actualized.semantics ->
  Constr.t list ->
  Pattern.t list ->
  (Pattern.t * Plan.t option) list
(** Run EBChk + QPlan for every pattern on the pool ([None] = not
    effectively bounded).  Order matches the input. *)

val run :
  ?pool:Pool.t ->
  ?intra:Pool.t ->
  ?cache:Qcache.t ->
  ?timeout:float ->
  ?limit:int ->
  Exec.source ->
  item list ->
  outcome list
(** The source-first core: evaluate every item against any
    {!Exec.source} — in-memory schema, paged snapshot, sharded store.
    {!eval} and {!eval_patterns} are shims over {!run} and
    {!run_patterns} through {!Exec.source_of_schema}. *)

val run_patterns :
  ?pool:Pool.t ->
  ?intra:Pool.t ->
  ?cache:Qcache.t ->
  ?timeout:float ->
  ?limit:int ->
  Actualized.semantics ->
  Exec.source ->
  Pattern.t list ->
  (Pattern.t * outcome option) list
(** Plan (via the cache's plan tier when [cache] is given, else
    [src.constraints]) then {!run}; [None] marks patterns that are not
    effectively bounded. *)

val eval :
  ?pool:Pool.t ->
  ?intra:Pool.t ->
  ?cache:Qcache.t ->
  ?timeout:float ->
  ?limit:int ->
  Schema.t ->
  item list ->
  outcome list
(** Evaluate every item through its bounded plan ([timeout] is a
    per-item cut-off in seconds; [limit] caps subgraph match counts).
    [cache] routes evaluation through {!Qcache.eval_plan} — result and
    fetch tiers — and is safe to share across the pool's workers (it
    shards itself per domain); answers stay identical to the uncached,
    sequential run.  [intra] additionally parallelises each item's own
    plan execution and match search ({!Exec} / {!Bpq_matcher.Vf2});
    passing the same pool for both levels is safe — nested submissions
    drain through it without deadlock. *)

val eval_patterns :
  ?pool:Pool.t ->
  ?intra:Pool.t ->
  ?cache:Qcache.t ->
  ?timeout:float ->
  ?limit:int ->
  Actualized.semantics ->
  Schema.t ->
  Pattern.t list ->
  (Pattern.t * outcome option) list
(** {!plan_all} + {!eval} in one call; [None] marks patterns that are
    not effectively bounded under the schema.  With [cache], planning
    goes through the plan tier ({!Qcache.plan_for}), so repeated shapes
    are planned once. *)
