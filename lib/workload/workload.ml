open Bpq_graph
open Bpq_pattern
open Bpq_access

type dataset = {
  name : string;
  table : Label.table;
  graph : Digraph.t;
  constrs : Constr.t list;
  schema : Schema.t;
}

let a0 tbl =
  let l = Label.intern tbl in
  [ Constr.make ~source:[ l "year"; l "award" ] ~target:(l "movie") ~bound:4;
    Constr.make ~source:[ l "movie" ] ~target:(l "actor") ~bound:30;
    Constr.make ~source:[ l "movie" ] ~target:(l "actress") ~bound:30;
    Constr.make ~source:[ l "actor" ] ~target:(l "country") ~bound:1;
    Constr.make ~source:[ l "actress" ] ~target:(l "country") ~bound:1;
    Constr.make ~source:[] ~target:(l "year") ~bound:135;
    Constr.make ~source:[] ~target:(l "award") ~bound:24;
    Constr.make ~source:[] ~target:(l "country") ~bound:196 ]

let q0 tbl =
  let l = Label.intern tbl in
  Pattern.create tbl
    [| (l "award", Predicate.true_);
       ( l "year",
         Predicate.conj
           (Predicate.atom Value.Ge (Value.Int 2011))
           (Predicate.atom Value.Le (Value.Int 2013)) );
       (l "movie", Predicate.true_);
       (l "actor", Predicate.true_);
       (l "actress", Predicate.true_);
       (l "country", Predicate.true_) |]
    [ (2, 0); (2, 1); (2, 3); (2, 4); (3, 5); (4, 5) ]

let t0 tbl =
  let l = Label.intern tbl in
  let free = [] in
  Template.create tbl
    [| (l "award", free);
       ( l "year",
         [ { Template.op = Value.Ge; operand = Template.Param "lo" };
           { Template.op = Value.Le; operand = Template.Param "hi" } ] );
       (l "movie", free);
       (l "actor", free);
       (l "actress", free);
       (l "country", free) |]
    [ (2, 0); (2, 1); (2, 3); (2, 4); (3, 5); (4, 5) ]

let a1 tbl =
  let l = Label.intern tbl in
  [ Constr.make ~source:[ l "B" ] ~target:(l "A") ~bound:2;
    Constr.make ~source:[ l "C"; l "D" ] ~target:(l "B") ~bound:2;
    Constr.make ~source:[] ~target:(l "C") ~bound:1;
    Constr.make ~source:[] ~target:(l "D") ~bound:1 ]

let q_nodes tbl =
  let l = Label.intern tbl in
  [| (l "A", Predicate.true_);
     (l "B", Predicate.true_);
     (l "C", Predicate.true_);
     (l "D", Predicate.true_) |]

let q1 tbl = Pattern.create tbl (q_nodes tbl) [ (0, 1); (1, 0); (2, 1); (3, 1) ]
let q2 tbl = Pattern.create tbl (q_nodes tbl) [ (0, 1); (1, 0); (1, 2); (1, 3) ]

let g1 tbl ~n =
  if n < 1 then invalid_arg "Workload.g1: n must be at least 1";
  let l = Label.intern tbl in
  let b = Digraph.Builder.create tbl in
  let cycle =
    Array.init (2 * n) (fun i ->
        Digraph.Builder.add_node b (l (if i mod 2 = 0 then "A" else "B")) Value.Null)
  in
  for i = 0 to (2 * n) - 1 do
    Digraph.Builder.add_edge b cycle.(i) cycle.((i + 1) mod (2 * n))
  done;
  let c = Digraph.Builder.add_node b (l "C") Value.Null in
  let d = Digraph.Builder.add_node b (l "D") Value.Null in
  Digraph.Builder.add_edge b c cycle.((2 * n) - 1);
  Digraph.Builder.add_edge b d cycle.((2 * n) - 1);
  Digraph.Builder.freeze b

let make ?pool name graph table constrs =
  { name; table; graph; constrs; schema = Schema.build ?pool graph constrs }

let imdb ?pool ?(seed = 42) ?(scale = 1.0) () =
  let table = Label.create_table () in
  let graph = Generators.imdb_like ~seed ~scale table in
  (* The paper's hand-written schema plus discovered constraints, as in
     §VII ("degree bounds, label frequencies and data semantics"). *)
  let constrs = a0 table @ Discovery.discover ~max_bound:60 graph in
  make ?pool "IMDbG" graph table constrs

let dbpedia ?pool ?(seed = 43) ?(scale = 1.0) () =
  let table = Label.create_table () in
  let graph = Generators.dbpedia_like ~seed ~scale table in
  (* Knowledge-graph in-degrees concentrate on popular classes; a higher
     bound cut-off is needed for edge coverage (the paper's example bound
     on IMDb is itself 104). *)
  make ?pool "DBpediaG" graph table
    (Discovery.discover ~max_bound:250 ~max_constraints:20_000 graph)

let web ?pool ?(seed = 44) ?(scale = 1.0) () =
  let table = Label.create_table () in
  let graph = Generators.web_like ~seed ~scale table in
  make ?pool "WebBG" graph table
    (Discovery.discover ~max_bound:64 ~max_constraints:100_000 graph)

let all ?pool ?seed ?scale () =
  [ imdb ?pool ?seed ?scale (); dbpedia ?pool ?seed ?scale (); web ?pool ?seed ?scale () ]

let align ?pool ds queries =
  let pairs =
    List.concat_map
      (fun q ->
        List.map
          (fun (s, t) -> (Pattern.label q s, Pattern.label q t))
          (Pattern.edges q))
      queries
  in
  let zeros = Discovery.absent_pair_bounds ds.graph ~pairs in
  if zeros = [] then ds
  else
    { ds with
      constrs = ds.constrs @ zeros;
      schema = Schema.extend ?pool ds.schema zeros }
