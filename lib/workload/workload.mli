(** Ready-made experiment bundles: a generated dataset, its access schema,
    and the paper's worked examples.

    This is the layer the examples and the benchmark harness share, so
    that every experiment runs against the same graphs and constraint
    sets. *)

open Bpq_graph
open Bpq_pattern
open Bpq_access

type dataset = {
  name : string;
  table : Label.table;
  graph : Digraph.t;
  constrs : Constr.t list;
  schema : Schema.t;
}

val imdb : ?pool:Bpq_util.Pool.t -> ?seed:int -> ?scale:float -> unit -> dataset
(** {!Bpq_graph.Generators.imdb_like} with the paper's constraint set
    {!a0} plus discovered degree bounds.  [pool] parallelises the schema's
    index build (the dataset is identical for every pool size). *)

val dbpedia : ?pool:Bpq_util.Pool.t -> ?seed:int -> ?scale:float -> unit -> dataset
(** DBpedia-like graph with discovered constraints. *)

val web : ?pool:Bpq_util.Pool.t -> ?seed:int -> ?scale:float -> unit -> dataset
(** Web-like graph with discovered constraints. *)

val all : ?pool:Bpq_util.Pool.t -> ?seed:int -> ?scale:float -> unit -> dataset list
(** The three datasets above — the paper's experimental triple. *)

val align : ?pool:Bpq_util.Pool.t -> dataset -> Pattern.t list -> dataset
(** Extend the dataset's schema with the vacuous bound-0 constraints for
    the query edges whose label pairs never occur in the graph
    ({!Bpq_access.Discovery.absent_pair_bounds}).  This mirrors the
    paper's setup of extracting the constraints relevant to the tested
    query load: a query asking for a structurally impossible edge becomes
    effectively bounded with a provably empty answer. *)

(** {1 The paper's running example (Examples 1, 3-6)} *)

val a0 : Label.table -> Constr.t list
(** The eight access constraints φ₁-φ₆ of Example 3 (φ₂ and φ₃ each stand
    for a pair). *)

val q0 : Label.table -> Pattern.t
(** Fig. 1: award-winning 2011-2013 movie with first-billed actor and
    actress from the same country. *)

val t0 : Label.table -> Template.t
(** {!q0} as a parameterized template, the paper's §V "frequent query
    load": the year window is [[lo, hi]].  Instantiating with
    [lo = 2011, hi = 2013] yields a pattern structurally equal to {!q0},
    and every instantiation shares one plan through the plan cache
    ({!Bpq_core.Qcache}) — the skeleton fact {!Template.skeleton}
    documents. *)

(** {1 The simulation examples (Examples 2, 8-11)} *)

val a1 : Label.table -> Constr.t list
(** φ_A = B → (A, 2), φ_B = {C, D} → (B, 2), φ_C = ∅ → (C, 1),
    φ_D = ∅ → (D, 1). *)

val q1 : Label.table -> Pattern.t
(** Fig. 2's pattern: edges (u1,u2), (u2,u1), (u3,u2), (u4,u2) — not
    effectively bounded under {!a1} as a simulation query. *)

val q2 : Label.table -> Pattern.t
(** Q1 with (u3,u2), (u4,u2) reversed — effectively bounded under
    {!a1}. *)

val g1 : Label.table -> n:int -> Digraph.t
(** Fig. 2's graph: a directed cycle alternating A/B of length [2n], with
    a C node and a D node pointing at its last B node. *)
