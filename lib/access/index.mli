(** The index component of an access constraint.

    For a constraint [S → (l, N)] over a graph [G], the index maps each
    S-labeled node set [V_S] (keyed by its sorted node identifiers) to the
    array of common neighbours of [V_S] that carry label [l].  Lookups are
    O(answer); this realises the paper's requirement that the [l]-neighbours
    of any S-labeled set be retrievable in O(N) time, independent of [|G|].

    For a type-(1) constraint ([S = ∅]) the single key [\[\]] maps to all
    [l]-labeled nodes.

    Indexes are mutable so they can be maintained incrementally under graph
    deltas (paper §II, "Maintaining access constraints"): only target-labeled
    endpoints of changed edges need their contributions recomputed.

    Keys of arity <= 2 — the overwhelming majority — are packed into a
    single immediate int (a 2-set normalises with one min/max, no sort)
    and hashed with an avalanche mix; only keys of three or more nodes
    spill to a boxed sorted-list table.  Lookups therefore allocate
    nothing on the fast path until the caller asks for an array copy. *)

open Bpq_graph

type t

val build : Digraph.t -> Constr.t -> t

val build_many :
  ?pool:Bpq_util.Pool.t -> Digraph.t -> Constr.t list -> (Constr.t * t) list
(** Builds one index per constraint, like {!build}, but shares graph scans
    between type-(2) constraints with the same target label: one pass over
    the target label's nodes serves all of them, so a schema with hundreds
    of degree-bound constraints costs O(|E|) per distinct target label
    rather than per constraint.  Order of the result matches the input.

    The per-target-label scans are independent (each writes only its own
    constraints' buckets), so when [pool] has more than one slot they run
    in parallel on it; the resulting indexes are identical for every pool
    size.  Defaults to sequential execution. *)

val constr : t -> Constr.t

val lookup : t -> int list -> int array
(** [lookup idx vs] returns the common [l]-labeled neighbours of the node
    set [vs] (order of [vs] irrelevant; keys of arity <= 2 are normalised
    sort-free, larger keys are sorted internally).  Returns [[||]] when no
    such set was indexed.  The caller is responsible for [vs] being
    S-labeled; an arbitrary key simply finds nothing. *)

val lookup_count : t -> int list -> int

val lookup_iter : t -> int list -> (int -> unit) -> unit
(** Like {!lookup} but yields the hits in bucket order without copying the
    bucket into a fresh array — the form the executor consumes. *)

val fold : t -> int list -> ('a -> int -> 'a) -> 'a -> 'a
(** [fold idx vs f init] folds [f] over the hits of [vs], copy-free. *)

val lookup_tuple : t -> int array -> int array
(** Array-keyed {!lookup}: the key is the array's elements (read, never
    retained, so callers may reuse the buffer across calls). *)

val lookup_tuple_iter : t -> int array -> (int -> unit) -> unit
(** Array-keyed {!lookup_iter} for the executor's tuple odometer: no list,
    no copy, sort-free for arity <= 2. *)

val max_bucket : t -> int
(** The realised maximum cardinality over all S-labeled sets — the smallest
    [N] for which [G] satisfies the cardinality part. *)

val satisfied : t -> bool
(** [max_bucket t <= bound]. *)

val n_keys : t -> int

val size : t -> int
(** Keys plus total payload entries — the [|index|] measure reported by the
    paper's Fig. 5(d/h/l). *)

val copy : t -> t

val apply_delta :
  t -> old_graph:Digraph.t -> new_graph:Digraph.t -> Digraph.delta -> unit
(** Incrementally repair the index in place.  Cost is proportional to the
    changed nodes' neighbourhood products, never to [|G|].  [new_graph] must
    be [Digraph.apply_delta old_graph delta]. *)

val iter : t -> (int list -> int array -> unit) -> unit
(** Iterate over all (key, bucket) pairs — used by satisfaction reports. *)

(** {1 Serialisation}

    The snapshot format ([Schema.save]) stores each index as sorted
    fixed-width key records pointing into a payload region; the paged
    store binary-searches those records on disk.  Both sides must agree
    on the native key representation, which these expose. *)

val pack2 : int -> int -> int
(** The packed form of a 2-node key (order-free min/max packing) — the
    single int a 2-ary key record stores and a paged lookup searches
    for. *)

val key_width : t -> int
(** Ints per native key record: [1] for arity <= 2 (packed int), the
    arity itself for spill keys (sorted id list). *)

val export_buckets : t -> (int array * int array) array
(** Every bucket as [(native key record, payload)], payload in bucket
    (insertion) order, records sorted lexicographically by key — a
    deterministic dump whose order the loader and the paged store both
    preserve, so lookups stream identically on every backend. *)

val of_buckets : Constr.t -> (int array * int array) array -> t
(** Rebuild an index from {!export_buckets} output.
    @raise Invalid_argument on key records of the wrong width. *)
