open Bpq_graph

type t = {
  graph : Digraph.t;
  entries : (Constr.t * Index.t) list;  (* in build order *)
  by_constr : (Constr.t, Index.t) Hashtbl.t;  (* O(1) index_of *)
  stamp : int;  (* identifies the constraint set, see [stamp] below *)
}

(* Process-wide stamp supply; Atomic because schemas may be built from
   pool workers. *)
let next_stamp = Atomic.make 0

let make ?stamp graph entries =
  let by_constr = Hashtbl.create (max 16 (List.length entries)) in
  List.iter (fun (c, idx) -> Hashtbl.replace by_constr c idx) entries;
  let stamp =
    match stamp with Some s -> s | None -> Atomic.fetch_and_add next_stamp 1
  in
  { graph; entries; by_constr; stamp }

(* Deduplicate while preserving the caller's order, which [restrict]
   exposes. *)
let dedup constrs =
  List.rev
    (List.fold_left
       (fun acc c -> if List.exists (Constr.equal c) acc then acc else c :: acc)
       [] constrs)

let build ?pool graph constrs = make graph (Index.build_many ?pool graph (dedup constrs))

let graph t = t.graph
let stamp t = t.stamp
let constraints t = List.map fst t.entries
let cardinality t = List.length t.entries
let total_length t = List.fold_left (fun acc (c, _) -> acc + Constr.length c) 0 t.entries

let index_of t c =
  match Hashtbl.find_opt t.by_constr c with
  | Some idx -> idx
  | None -> raise Not_found

let mem t c = Hashtbl.mem t.by_constr c

let for_target t l =
  List.filter_map (fun ((c : Constr.t), _) -> if c.target = l then Some c else None) t.entries

let type1_for t l =
  List.fold_left
    (fun best ((c : Constr.t), _) ->
      if Constr.is_type1 c && c.target = l then
        match best with
        | Some (b : Constr.t) when b.bound <= c.bound -> best
        | _ -> Some c
      else best)
    None t.entries

let violations t =
  List.filter_map
    (fun ((c : Constr.t), idx) ->
      let realised = Index.max_bucket idx in
      if realised > c.bound then Some (c, realised) else None)
    t.entries

let satisfied t = violations t = []

let total_index_size t =
  List.fold_left (fun acc (_, idx) -> acc + Index.size idx) 0 t.entries

let restrict t k = make t.graph (List.filteri (fun i _ -> i < k) t.entries)

let extend ?pool t constrs =
  let fresh = List.filter (fun c -> not (mem t c)) (dedup constrs) in
  make t.graph (t.entries @ Index.build_many ?pool t.graph fresh)

(* In-place value upserts never move a node between index buckets (keys
   are node records, populations are label sets), so the indexes and the
   stamp both carry over; only the value blob is rewritten. *)
let patch_values t updates =
  match updates with
  | [] -> t
  | _ ->
    let r = Digraph.Repr.of_graph t.graph in
    let values = Array.copy r.values in
    List.iter
      (fun (v, value) ->
        if v < 0 || v >= Array.length values then
          invalid_arg "Schema.patch_values: node out of range";
        values.(v) <- value)
      updates;
    let graph =
      Digraph.Repr.to_graph (Digraph.label_table t.graph) { r with values }
    in
    make ~stamp:t.stamp graph t.entries

let apply_delta t delta =
  let new_graph = Digraph.apply_delta t.graph delta in
  let entries =
    List.map
      (fun (c, idx) ->
        let idx = Index.copy idx in
        Index.apply_delta idx ~old_graph:t.graph ~new_graph delta;
        (c, idx))
      t.entries
  in
  (* The constraint set is unchanged, so the stamp carries over: plans
     generated under this schema stay valid after the delta (results do
     not — the result cache invalidates by label generation instead). *)
  make ~stamp:t.stamp new_graph entries

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

(* Schema section layout (after the shared graph/stats sections; every
   field an i64, offsets in bytes relative to the section start):
   {v
   stamp, n_constraints
   per constraint:  arity, source labels x arity, target, bound,
                    key_width, n_keys, keys_off, payloads_off,
                    payload_ints
   per constraint:  key records  — n_keys x (key_width + 2):
                      key ints..., payload start (int index), length
                    payload region — node ids, buckets concatenated in
                      key-record order, each in original bucket order
   v}
   Key records are sorted ([Index.export_buckets]), so the paged store
   binary-searches them in place; payload order is preserved so lookups
   stream byte-identically on every backend. *)

let add_schema_section w t =
  let exports =
    List.map (fun (c, idx) -> (c, Index.key_width idx, Index.export_buckets idx)) t.entries
  in
  Binfile.section w ~tag:Binfile.tag_schema (fun b ->
      let meta_bytes =
        List.fold_left (fun acc (c, _, _) -> acc + (8 * (Constr.arity c + 8))) 16 exports
      in
      let off = ref meta_bytes in
      let located =
        List.map
          (fun (c, kw, buckets) ->
            let n_keys = Array.length buckets in
            let payload_ints =
              Array.fold_left (fun acc (_, p) -> acc + Array.length p) 0 buckets
            in
            let keys_off = !off in
            let payloads_off = keys_off + (8 * n_keys * (kw + 2)) in
            off := payloads_off + (8 * payload_ints);
            (c, kw, buckets, n_keys, payload_ints, keys_off, payloads_off))
          exports
      in
      Binfile.add_i64 b t.stamp;
      Binfile.add_i64 b (List.length located);
      List.iter
        (fun ((c : Constr.t), kw, _, n_keys, payload_ints, keys_off, payloads_off) ->
          Binfile.add_i64 b (Constr.arity c);
          List.iter (Binfile.add_i64 b) c.source;
          Binfile.add_i64 b c.target;
          Binfile.add_i64 b c.bound;
          Binfile.add_i64 b kw;
          Binfile.add_i64 b n_keys;
          Binfile.add_i64 b keys_off;
          Binfile.add_i64 b payloads_off;
          Binfile.add_i64 b payload_ints)
        located;
      List.iter
        (fun (_, _, buckets, _, _, _, _) ->
          let cursor = ref 0 in
          Array.iter
            (fun (key, payload) ->
              Binfile.add_array b key;
              Binfile.add_i64 b !cursor;
              Binfile.add_i64 b (Array.length payload);
              cursor := !cursor + Array.length payload)
            buckets;
          Array.iter (fun (_, payload) -> Binfile.add_array b payload) buckets)
        located)

let save ?selectivity t path =
  let w = Binfile.writer () in
  Graph_io.add_graph_sections w t.graph;
  Option.iter (fun sel -> Gstats.add_selectivity_section w sel) selectivity;
  add_schema_section w t;
  Binfile.write w path

(* A loaded stamp re-enters this process's stamp space: push the supply
   past it so a later [build] cannot mint the same stamp for a different
   constraint set (which would alias [Qcache] keys). *)
let rec register_stamp s =
  let cur = Atomic.get next_stamp in
  if cur <= s && not (Atomic.compare_and_set next_stamp cur (s + 1)) then register_stamp s

let load tbl path =
  let corrupt msg = raise (Binfile.Corrupt ("schema section: " ^ msg)) in
  let r = Binfile.read_file path in
  let g, map = Graph_io.graph_of_reader tbl r in
  let sel = Graph_io.selectivity_of_reader tbl ~map r in
  let bytes = Binfile.require_section r Binfile.tag_schema in
  let mc = Binfile.Cur.of_bytes bytes in
  let remap l = if l >= 0 && l < Array.length map then map.(l) else corrupt "label id out of range" in
  let stamp = Binfile.Cur.i64 mc in
  let ncons = Binfile.Cur.i64 mc in
  if ncons < 0 || ncons > 1_000_000 then corrupt "implausible constraint count";
  let metas =
    List.init ncons (fun _ ->
        let arity = Binfile.Cur.i64 mc in
        if arity < 0 || arity > 64 then corrupt "implausible constraint arity";
        let source = Array.to_list (Array.map remap (Binfile.Cur.array mc arity)) in
        let target = remap (Binfile.Cur.i64 mc) in
        let bound = Binfile.Cur.i64 mc in
        let kw = Binfile.Cur.i64 mc in
        let n_keys = Binfile.Cur.i64 mc in
        let keys_off = Binfile.Cur.i64 mc in
        let payloads_off = Binfile.Cur.i64 mc in
        let payload_ints = Binfile.Cur.i64 mc in
        if n_keys < 0 || payload_ints < 0 then corrupt "negative region size";
        let c =
          try Constr.make ~source ~target ~bound
          with Invalid_argument _ -> corrupt "invalid constraint"
        in
        if kw <> (if Constr.arity c <= 2 then 1 else Constr.arity c) then
          corrupt "key width disagrees with arity";
        (c, kw, n_keys, keys_off, payloads_off, payload_ints))
  in
  let entries =
    List.map
      (fun (c, kw, n_keys, keys_off, payloads_off, payload_ints) ->
        let kc = Binfile.Cur.of_bytes bytes in
        Binfile.Cur.seek kc keys_off;
        let pc = Binfile.Cur.of_bytes bytes in
        let buckets =
          Array.init n_keys (fun _ ->
              let key = Binfile.Cur.array kc kw in
              let start = Binfile.Cur.i64 kc in
              let len = Binfile.Cur.i64 kc in
              if start < 0 || len < 0 || start + len > payload_ints then
                corrupt "bucket payload out of range";
              Binfile.Cur.seek pc (payloads_off + (8 * start));
              (key, Binfile.Cur.array pc len))
        in
        (c, Index.of_buckets c buckets))
      metas
  in
  register_stamp stamp;
  (make ~stamp g entries, sel)
