open Bpq_graph

type t = {
  graph : Digraph.t;
  entries : (Constr.t * Index.t) list;  (* in build order *)
  by_constr : (Constr.t, Index.t) Hashtbl.t;  (* O(1) index_of *)
  stamp : int;  (* identifies the constraint set, see [stamp] below *)
}

(* Process-wide stamp supply; Atomic because schemas may be built from
   pool workers. *)
let next_stamp = Atomic.make 0

let make ?stamp graph entries =
  let by_constr = Hashtbl.create (max 16 (List.length entries)) in
  List.iter (fun (c, idx) -> Hashtbl.replace by_constr c idx) entries;
  let stamp =
    match stamp with Some s -> s | None -> Atomic.fetch_and_add next_stamp 1
  in
  { graph; entries; by_constr; stamp }

(* Deduplicate while preserving the caller's order, which [restrict]
   exposes. *)
let dedup constrs =
  List.rev
    (List.fold_left
       (fun acc c -> if List.exists (Constr.equal c) acc then acc else c :: acc)
       [] constrs)

let build ?pool graph constrs = make graph (Index.build_many ?pool graph (dedup constrs))

let graph t = t.graph
let stamp t = t.stamp
let constraints t = List.map fst t.entries
let cardinality t = List.length t.entries
let total_length t = List.fold_left (fun acc (c, _) -> acc + Constr.length c) 0 t.entries

let index_of t c =
  match Hashtbl.find_opt t.by_constr c with
  | Some idx -> idx
  | None -> raise Not_found

let mem t c = Hashtbl.mem t.by_constr c

let for_target t l =
  List.filter_map (fun ((c : Constr.t), _) -> if c.target = l then Some c else None) t.entries

let type1_for t l =
  List.fold_left
    (fun best ((c : Constr.t), _) ->
      if Constr.is_type1 c && c.target = l then
        match best with
        | Some (b : Constr.t) when b.bound <= c.bound -> best
        | _ -> Some c
      else best)
    None t.entries

let violations t =
  List.filter_map
    (fun ((c : Constr.t), idx) ->
      let realised = Index.max_bucket idx in
      if realised > c.bound then Some (c, realised) else None)
    t.entries

let satisfied t = violations t = []

let total_index_size t =
  List.fold_left (fun acc (_, idx) -> acc + Index.size idx) 0 t.entries

let restrict t k = make t.graph (List.filteri (fun i _ -> i < k) t.entries)

let extend ?pool t constrs =
  let fresh = List.filter (fun c -> not (mem t c)) (dedup constrs) in
  make t.graph (t.entries @ Index.build_many ?pool t.graph fresh)

let apply_delta t delta =
  let new_graph = Digraph.apply_delta t.graph delta in
  let entries =
    List.map
      (fun (c, idx) ->
        let idx = Index.copy idx in
        Index.apply_delta idx ~old_graph:t.graph ~new_graph delta;
        (c, idx))
      t.entries
  in
  (* The constraint set is unchanged, so the stamp carries over: plans
     generated under this schema stay valid after the delta (results do
     not — the result cache invalidates by label generation instead). *)
  make ~stamp:t.stamp new_graph entries
