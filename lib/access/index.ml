open Bpq_graph
module Vec = Bpq_util.Vec

(* Bucket keys are S-labeled node sets.  The labels in S are distinct, so
   every key is a set of distinct node ids; almost all constraints in
   practice have |S| <= 2.  Keys of arity <= 2 pack into one immediate int
   (sort-free: a 2-set is ordered with a single min/max), hashed with a
   Fibonacci/avalanche mix instead of the polymorphic [Hashtbl.hash] that
   boxed the old [int list] keys.  Arity >= 3 spills to a boxed table of
   sorted id lists with an FNV-style rolling hash. *)

let half_width = 31
let half_mask = (1 lsl half_width) - 1

(* Node ids are dense array indices, so they fit 31 bits on any graph this
   process can hold; two of them pack into one 63-bit OCaml int. *)
let pack2 a b = if a < b then (a lsl half_width) lor b else (b lsl half_width) lor a
let unpack2 k = (k lsr half_width, k land half_mask)

module Int_key = struct
  type t = int

  let equal (a : int) b = a = b

  (* splitmix64-style avalanche; cheap and well-distributed for packed
     pair keys whose low bits correlate. *)
  let hash x =
    let x = x * 0x9E3779B97F4A7C1 in
    let x = x lxor (x lsr 29) in
    let x = x * 0xBF58476D1CE4E5 in
    x lxor (x lsr 32)
end

module Int_tbl = Hashtbl.Make (Int_key)

module List_key = struct
  type t = int list

  let rec equal a b =
    match (a, b) with
    | [], [] -> true
    | x :: a, y :: b -> x = y && equal a b
    | _ -> false

  (* FNV-1a over the elements (offset basis truncated to OCaml's 63-bit
     int range). *)
  let hash l =
    List.fold_left (fun h v -> (h lxor v) * 0x100000001B3) 0x3BF29CE484222325 l
    land max_int
end

module List_tbl = Hashtbl.Make (List_key)

type buckets =
  | Packed of Vec.t Int_tbl.t  (* arity <= 2: int-packed keys *)
  | Spill of Vec.t List_tbl.t  (* arity >= 3: sorted id lists *)

type t = {
  constr : Constr.t;
  arity : int;
  buckets : buckets;
}

let constr t = t.constr

let create_shell (c : Constr.t) =
  let arity = Constr.arity c in
  { constr = c;
    arity;
    buckets = (if arity <= 2 then Packed (Int_tbl.create 256) else Spill (List_tbl.create 256)) }

(* ---------------- key normalisation ---------------- *)

let sorted_spill_key vs = List.sort Int.compare vs

(* The packed key for a caller-supplied list, sort-free for the hot
   arities.  Returns [None] when the key shape cannot possibly be indexed
   (wrong arity for this constraint) — such lookups find nothing, matching
   the old behaviour of probing with an arbitrary list. *)
let packed_of_list t vs =
  match (t.arity, vs) with
  | 0, [] -> Some 0
  | 1, [ v ] -> Some v
  | 2, [ a; b ] -> Some (pack2 a b)
  | _ -> None

let packed_of_tuple t (vs : int array) =
  if Array.length vs <> t.arity then None
  else
    match t.arity with
    | 0 -> Some 0
    | 1 -> Some vs.(0)
    | 2 -> Some (pack2 vs.(0) vs.(1))
    | _ -> None

let find_list t vs =
  match t.buckets with
  | Packed tbl ->
    (match packed_of_list t vs with
     | Some key -> Int_tbl.find_opt tbl key
     | None -> None)
  | Spill tbl ->
    if List.length vs = t.arity then List_tbl.find_opt tbl (sorted_spill_key vs)
    else None

let find_tuple t (vs : int array) =
  match t.buckets with
  | Packed tbl ->
    (match packed_of_tuple t vs with
     | Some key -> Int_tbl.find_opt tbl key
     | None -> None)
  | Spill tbl ->
    if Array.length vs = t.arity then begin
      let copy = Array.copy vs in
      Bpq_util.Int_sort.sort copy;
      List_tbl.find_opt tbl (Array.to_list copy)
    end
    else None

(* ---------------- bucket access ---------------- *)

let packed_bucket tbl key =
  match Int_tbl.find_opt tbl key with
  | Some vec -> vec
  | None ->
    let vec = Vec.create ~capacity:2 () in
    Int_tbl.replace tbl key vec;
    vec

let spill_bucket tbl key =
  match List_tbl.find_opt tbl key with
  | Some vec -> vec
  | None ->
    let vec = Vec.create ~capacity:2 () in
    List_tbl.replace tbl key vec;
    vec

(* ---------------- contributions ---------------- *)

(* All S-labeled sets drawn from the distinct neighbours of [w]: one node
   per source label (labels in S are distinct, so the sets are).  [f]
   receives each key in this index's native representation via [push]. *)
let iter_contribution_keys t g w ~packed ~spilled =
  let c = t.constr in
  match (t.arity, c.source) with
  | 0, _ -> packed 0
  | 1, [ s ] ->
    Digraph.iter_neighbours g w (fun v -> if Digraph.label g v = s then packed v)
  | 2, [ s1; s2 ] ->
    (* One pass over the merged-neighbour row splits the two groups. *)
    let g1 = Vec.create ~capacity:4 () and g2 = Vec.create ~capacity:4 () in
    Digraph.iter_neighbours g w (fun v ->
        let l = Digraph.label g v in
        if l = s1 then Vec.push g1 v
        else if l = s2 then Vec.push g2 v);
    Vec.iter (fun a -> Vec.iter (fun b -> packed (pack2 a b)) g2) g1
  | _, source ->
    let groups =
      List.map
        (fun s ->
          let grp = Vec.create ~capacity:4 () in
          Digraph.iter_neighbours g w (fun v ->
              if Digraph.label g v = s then Vec.push grp v);
          grp)
        source
    in
    if not (List.exists Vec.is_empty groups) then begin
      let rec product acc = function
        | [] -> spilled (sorted_spill_key acc)
        | grp :: rest -> Vec.iter (fun v -> product (v :: acc) rest) grp
      in
      product [] groups
    end

let add_contributions t g w =
  match t.buckets with
  | Packed tbl ->
    iter_contribution_keys t g w
      ~packed:(fun key -> Vec.push (packed_bucket tbl key) w)
      ~spilled:(fun _ -> assert false)
  | Spill tbl ->
    iter_contribution_keys t g w
      ~packed:(fun _ -> assert false)
      ~spilled:(fun key -> Vec.push (spill_bucket tbl key) w)

let swap_remove vec w =
  (* Swap-remove the first occurrence; buckets are small (<= N). *)
  let len = Vec.length vec in
  let rec find i = if i >= len then -1 else if Vec.get vec i = w then i else find (i + 1) in
  let i = find 0 in
  if i >= 0 then begin
    Vec.set vec i (Vec.get vec (len - 1));
    ignore (Vec.pop vec)
  end

let remove_contributions t g w =
  match t.buckets with
  | Packed tbl ->
    iter_contribution_keys t g w
      ~packed:(fun key ->
        match Int_tbl.find_opt tbl key with
        | None -> ()
        | Some vec ->
          swap_remove vec w;
          if Vec.is_empty vec then Int_tbl.remove tbl key)
      ~spilled:(fun _ -> assert false)
  | Spill tbl ->
    iter_contribution_keys t g w
      ~packed:(fun _ -> assert false)
      ~spilled:(fun key ->
        match List_tbl.find_opt tbl key with
        | None -> ()
        | Some vec ->
          swap_remove vec w;
          if Vec.is_empty vec then List_tbl.remove tbl key)

(* ---------------- build ---------------- *)

let fill t g =
  let c = t.constr in
  if Constr.is_type1 c then begin
    let vec = Vec.of_array (Digraph.nodes_with_label g c.target) in
    if not (Vec.is_empty vec) then
      match t.buckets with
      | Packed tbl -> Int_tbl.replace tbl 0 vec
      | Spill _ -> assert false
  end
  else Digraph.iter_label g c.target (fun w -> add_contributions t g w)

let build g (c : Constr.t) =
  let t = create_shell c in
  fill t g;
  t

let build_many ?(pool = Bpq_util.Pool.sequential) g constrs =
  (* One empty shell per constraint up front; the filling work is then a
     set of tasks each of which writes only its own shells' buckets, so
     the tasks run on the pool with no shared mutation and the result is
     identical for every pool size. *)
  let shells = List.map (fun c -> (c, create_shell c)) constrs in
  (* Single-source type-(2) constraints with the same target label share
     one scan over that label's nodes; everything else fills solo. *)
  let type2_by_target : (Bpq_graph.Label.t, (Bpq_graph.Label.t * t) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let solo = ref [] in
  List.iter
    (fun ((c : Constr.t), shell) ->
      match c.source with
      | [ s ] ->
        (match Hashtbl.find_opt type2_by_target c.target with
         | Some group -> group := (s, shell) :: !group
         | None -> Hashtbl.replace type2_by_target c.target (ref [ (s, shell) ]))
      | [] | _ :: _ :: _ -> solo := shell :: !solo)
    shells;
  let scan_group target group () =
    let by_source : (Bpq_graph.Label.t, Vec.t Int_tbl.t list) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun (s, shell) ->
        let tbl = match shell.buckets with Packed tbl -> tbl | Spill _ -> assert false in
        let prev = Option.value ~default:[] (Hashtbl.find_opt by_source s) in
        Hashtbl.replace by_source s (tbl :: prev))
      !group;
    Digraph.iter_label g target (fun w ->
        (* The merged-neighbour CSR row, not a per-node allocate+sort. *)
        Digraph.iter_neighbours g w (fun v ->
            match Hashtbl.find_opt by_source (Digraph.label g v) with
            | None -> ()
            | Some tables ->
              List.iter (fun tbl -> Vec.push (packed_bucket tbl v) w) tables))
  in
  let tasks =
    Array.of_list
      (Hashtbl.fold
         (fun target group acc -> scan_group target group :: acc)
         type2_by_target
         (List.rev_map (fun shell () -> fill shell g) !solo))
  in
  Bpq_util.Pool.run_all pool tasks;
  shells

(* ---------------- lookups ---------------- *)

let lookup t vs =
  match find_list t vs with
  | Some vec -> Vec.to_array vec
  | None -> [||]

let lookup_count t vs =
  match find_list t vs with
  | Some vec -> Vec.length vec
  | None -> 0

let lookup_iter t vs f =
  match find_list t vs with
  | Some vec -> Vec.iter f vec
  | None -> ()

let fold t vs f init =
  match find_list t vs with
  | Some vec ->
    let acc = ref init in
    Vec.iter (fun v -> acc := f !acc v) vec;
    !acc
  | None -> init

let lookup_tuple_iter t vs f =
  match find_tuple t vs with
  | Some vec -> Vec.iter f vec
  | None -> ()

let lookup_tuple t vs =
  match find_tuple t vs with
  | Some vec -> Vec.to_array vec
  | None -> [||]

(* ---------------- whole-index traversal ---------------- *)

let fold_buckets t f init =
  match t.buckets with
  | Packed tbl ->
    Int_tbl.fold
      (fun key vec acc ->
        let key_list =
          match t.arity with
          | 0 -> []
          | 1 -> [ key ]
          | _ ->
            let a, b = unpack2 key in
            [ a; b ]
        in
        f key_list vec acc)
      tbl init
  | Spill tbl -> List_tbl.fold f tbl init

let max_bucket t = fold_buckets t (fun _ vec acc -> max acc (Vec.length vec)) 0
let satisfied t = max_bucket t <= t.constr.bound

let n_keys t =
  match t.buckets with
  | Packed tbl -> Int_tbl.length tbl
  | Spill tbl -> List_tbl.length tbl

let size t = fold_buckets t (fun _ vec acc -> acc + 1 + Vec.length vec) 0

let copy t =
  let buckets =
    match t.buckets with
    | Packed tbl ->
      let fresh = Int_tbl.create (max 16 (Int_tbl.length tbl)) in
      Int_tbl.iter (fun key vec -> Int_tbl.replace fresh key (Vec.of_array (Vec.to_array vec))) tbl;
      Packed fresh
    | Spill tbl ->
      let fresh = List_tbl.create (max 16 (List_tbl.length tbl)) in
      List_tbl.iter (fun key vec -> List_tbl.replace fresh key (Vec.of_array (Vec.to_array vec))) tbl;
      Spill fresh
  in
  { t with buckets }

let iter t f = fold_buckets t (fun key vec () -> f key (Vec.to_array vec)) ()

(* ---------------- incremental maintenance ---------------- *)

let apply_delta t ~old_graph ~new_graph (delta : Digraph.delta) =
  let target = t.constr.target in
  let n_old = Digraph.n_nodes old_graph in
  (* Contributions of a target-labeled node depend only on its own
     neighbourhood, so only target-labeled endpoints of changed edges (and
     fresh target-labeled nodes) need repair. *)
  let affected = Hashtbl.create 16 in
  let note v = if Digraph.label new_graph v = target then Hashtbl.replace affected v () in
  List.iter
    (fun (s, d) ->
      note s;
      note d)
    delta.added_edges;
  List.iter
    (fun (s, d) ->
      note s;
      note d)
    delta.removed_edges;
  List.iteri
    (fun i (l, _) -> if l = target then Hashtbl.replace affected (n_old + i) ())
    delta.added_nodes;
  if Constr.is_type1 t.constr then
    let tbl = match t.buckets with Packed tbl -> tbl | Spill _ -> assert false in
    Hashtbl.iter
      (fun v () -> if v >= n_old then Vec.push (packed_bucket tbl 0) v)
      affected
  else
    Hashtbl.iter
      (fun v () ->
        if v < n_old then remove_contributions t old_graph v;
        add_contributions t new_graph v)
      affected

(* ---------------- serialisation ---------------- *)

let key_width t = if t.arity <= 2 then 1 else t.arity

(* Lexicographic over equal-width records — the comparator the paged
   store's on-disk binary search replays. *)
let compare_key_records (a : int array) b =
  let rec go i =
    if i = Array.length a then 0
    else
      let c = Int.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let export_buckets t =
  let out =
    match t.buckets with
    | Packed tbl ->
      Int_tbl.fold (fun key vec acc -> ([| key |], Vec.to_array vec) :: acc) tbl []
    | Spill tbl ->
      List_tbl.fold (fun key vec acc -> (Array.of_list key, Vec.to_array vec) :: acc) tbl []
  in
  let arr = Array.of_list out in
  Array.sort (fun (a, _) (b, _) -> compare_key_records a b) arr;
  arr

let of_buckets c buckets =
  let t = create_shell c in
  let width = key_width t in
  Array.iter
    (fun (key, payload) ->
      if Array.length key <> width then
        invalid_arg
          (Printf.sprintf "Index.of_buckets: key record of width %d, expected %d"
             (Array.length key) width);
      match t.buckets with
      | Packed tbl -> Int_tbl.replace tbl key.(0) (Vec.of_array payload)
      | Spill tbl ->
        (* Spill keys are stored sorted; re-normalise defensively so a
           hand-built record still lands on the key lookups probe. *)
        List_tbl.replace tbl (sorted_spill_key (Array.to_list key)) (Vec.of_array payload))
    buckets;
  t
