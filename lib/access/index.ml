open Bpq_graph
module Vec = Bpq_util.Vec

type t = {
  constr : Constr.t;
  buckets : (int list, Vec.t) Hashtbl.t;
}

let constr t = t.constr

(* All S-labeled sets drawn from the distinct neighbours of [w], as sorted
   key lists.  Because the labels in S are distinct, picking one neighbour
   per label always yields distinct nodes. *)
let contributions g (c : Constr.t) w =
  let groups =
    List.map
      (fun s ->
        Array.to_list
          (Array.of_seq
             (Seq.filter (fun v -> Digraph.label g v = s)
                (Array.to_seq (Digraph.neighbours g w)))))
      c.source
  in
  if List.exists (fun grp -> grp = []) groups then []
  else begin
    let rec product acc = function
      | [] -> [ List.sort compare acc ]
      | grp :: rest ->
        List.concat_map (fun v -> product (v :: acc) rest) grp
    in
    product [] groups
  end

let bucket_for t key =
  match Hashtbl.find_opt t.buckets key with
  | Some vec -> vec
  | None ->
    let vec = Vec.create ~capacity:2 () in
    Hashtbl.replace t.buckets key vec;
    vec

let add_contributions t g w =
  List.iter (fun key -> Vec.push (bucket_for t key) w) (contributions g t.constr w)

let remove_contributions t g w =
  let remove_from key =
    match Hashtbl.find_opt t.buckets key with
    | None -> ()
    | Some vec ->
      (* Swap-remove the first occurrence; buckets are small (<= N). *)
      let len = Vec.length vec in
      let rec find i = if i >= len then -1 else if Vec.get vec i = w then i else find (i + 1) in
      let i = find 0 in
      if i >= 0 then begin
        Vec.set vec i (Vec.get vec (len - 1));
        ignore (Vec.pop vec)
      end;
      if Vec.is_empty vec then Hashtbl.remove t.buckets key
  in
  List.iter remove_from (contributions g t.constr w)

let fill t g =
  let c = t.constr in
  if Constr.is_type1 c then begin
    let vec = Vec.of_array (Digraph.nodes_with_label g c.target) in
    if not (Vec.is_empty vec) then Hashtbl.replace t.buckets [] vec
  end
  else Digraph.iter_label g c.target (fun w -> add_contributions t g w)

let build g (c : Constr.t) =
  let t = { constr = c; buckets = Hashtbl.create 256 } in
  fill t g;
  t

let build_many ?(pool = Bpq_util.Pool.sequential) g constrs =
  (* One empty shell per constraint up front; the filling work is then a
     set of tasks each of which writes only its own shells' buckets, so
     the tasks run on the pool with no shared mutation and the result is
     identical for every pool size. *)
  let shells =
    List.map (fun c -> (c, { constr = c; buckets = Hashtbl.create 256 })) constrs
  in
  (* Single-source type-(2) constraints with the same target label share
     one scan over that label's nodes; everything else fills solo. *)
  let type2_by_target : (Bpq_graph.Label.t, (Bpq_graph.Label.t * t) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let solo = ref [] in
  List.iter
    (fun ((c : Constr.t), shell) ->
      match c.source with
      | [ s ] ->
        (match Hashtbl.find_opt type2_by_target c.target with
         | Some group -> group := (s, shell) :: !group
         | None -> Hashtbl.replace type2_by_target c.target (ref [ (s, shell) ]))
      | [] | _ :: _ :: _ -> solo := shell :: !solo)
    shells;
  let scan_group target group () =
    let by_source : (Bpq_graph.Label.t, t list) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun (s, shell) ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt by_source s) in
        Hashtbl.replace by_source s (shell :: prev))
      !group;
    Digraph.iter_label g target (fun w ->
        Array.iter
          (fun v ->
            match Hashtbl.find_opt by_source (Digraph.label g v) with
            | None -> ()
            | Some group_shells ->
              List.iter (fun shell -> Vec.push (bucket_for shell [ v ]) w) group_shells)
          (Digraph.neighbours g w))
  in
  let tasks =
    Array.of_list
      (Hashtbl.fold
         (fun target group acc -> scan_group target group :: acc)
         type2_by_target
         (List.rev_map (fun shell () -> fill shell g) !solo))
  in
  Bpq_util.Pool.run_all pool tasks;
  shells

let lookup t vs =
  match Hashtbl.find_opt t.buckets (List.sort compare vs) with
  | Some vec -> Vec.to_array vec
  | None -> [||]

let lookup_count t vs =
  match Hashtbl.find_opt t.buckets (List.sort compare vs) with
  | Some vec -> Vec.length vec
  | None -> 0

let max_bucket t =
  Hashtbl.fold (fun _ vec acc -> max acc (Vec.length vec)) t.buckets 0

let satisfied t = max_bucket t <= t.constr.bound
let n_keys t = Hashtbl.length t.buckets

let size t =
  Hashtbl.fold (fun _ vec acc -> acc + 1 + Vec.length vec) t.buckets 0

let copy t =
  let buckets = Hashtbl.create (Hashtbl.length t.buckets) in
  Hashtbl.iter (fun key vec -> Hashtbl.replace buckets key (Vec.of_array (Vec.to_array vec))) t.buckets;
  { constr = t.constr; buckets }

let apply_delta t ~old_graph ~new_graph (delta : Digraph.delta) =
  let target = t.constr.target in
  let n_old = Digraph.n_nodes old_graph in
  (* Contributions of a target-labeled node depend only on its own
     neighbourhood, so only target-labeled endpoints of changed edges (and
     fresh target-labeled nodes) need repair. *)
  let affected = Hashtbl.create 16 in
  let note v = if Digraph.label new_graph v = target then Hashtbl.replace affected v () in
  List.iter
    (fun (s, d) ->
      note s;
      note d)
    delta.added_edges;
  List.iter
    (fun (s, d) ->
      note s;
      note d)
    delta.removed_edges;
  List.iteri
    (fun i (l, _) -> if l = target then Hashtbl.replace affected (n_old + i) ())
    delta.added_nodes;
  if Constr.is_type1 t.constr then
    Hashtbl.iter
      (fun v () -> if v >= n_old then Vec.push (bucket_for t []) v)
      affected
  else
    Hashtbl.iter
      (fun v () ->
        if v < n_old then remove_contributions t old_graph v;
        add_contributions t new_graph v)
      affected

let iter t f = Hashtbl.iter (fun key vec -> f key (Vec.to_array vec)) t.buckets
