(** Access schemas: a set of access constraints with their indexes, built
    over one data graph (paper §II).

    The static analyses (EBChk, QPlan, ...) consult only the constraint
    list; the plan executor additionally consults the indexes.  Keeping both
    in one value guarantees a plan is only ever run with the indexes of the
    schema it was generated under. *)

open Bpq_graph

type t

val build : ?pool:Bpq_util.Pool.t -> Digraph.t -> Constr.t list -> t
(** Builds one index per constraint (duplicates collapsed).  [pool]
    parallelises the underlying {!Index.build_many} scans; the schema is
    identical for every pool size (defaults to sequential). *)

val graph : t -> Digraph.t
val constraints : t -> Constr.t list

val stamp : t -> int
(** Generation stamp identifying the schema's {e constraint set}: fresh
    for every {!build}, {!extend} and {!restrict}, but preserved across
    {!apply_delta} (a delta changes the graph and repairs the indexes, not
    the constraints) — so a plan cached under a stamp stays valid along
    the whole delta lineage of the schema it was generated for.  Two
    schemas built independently never share a stamp, even with equal
    constraint lists (conservative: a stamp never aliases). *)

val cardinality : t -> int
(** [‖A‖], the number of constraints. *)

val total_length : t -> int
(** [|A|], the total length of the constraints. *)

val index_of : t -> Constr.t -> Index.t
(** @raise Not_found if the constraint is not part of the schema. *)

val mem : t -> Constr.t -> bool

val for_target : t -> Label.t -> Constr.t list
(** Constraints whose target label is [l]. *)

val type1_for : t -> Label.t -> Constr.t option
(** The tightest type-(1) constraint on label [l], if any. *)

val satisfied : t -> bool
(** Does the underlying graph satisfy every cardinality constraint?  (The
    retrieval side holds by construction of the indexes.) *)

val violations : t -> (Constr.t * int) list
(** Constraints whose realised maximum exceeds their bound, with that
    realised maximum. *)

val total_index_size : t -> int
(** Sum of {!Index.size} over all indexes. *)

val restrict : t -> int -> t
(** [restrict t k] keeps the first [k] constraints (in the order given to
    {!build}) — the Fig. 5(c/g/k) sweep over [‖A‖] without rebuilding
    indexes. *)

val extend : ?pool:Bpq_util.Pool.t -> t -> Constr.t list -> t
(** Builds indexes for the new constraints against the same graph and
    appends them; existing indexes are shared, not copied. *)

val patch_values : t -> (int * Value.t) list -> t
(** Overwrite node attribute values in place (last write wins).  Values
    never participate in index keys or bucket membership, so the built
    indexes and the stamp carry over unchanged — the compaction path
    uses this to fold [Set_value] log records without a rebuild.
    @raise Invalid_argument on an out-of-range node id. *)

val apply_delta : t -> Digraph.delta -> t
(** New schema over the updated graph; every index is copied and repaired
    incrementally via {!Index.apply_delta}. *)

(** {1 Snapshots}

    A schema snapshot is a graph snapshot ({!Graph_io.save_bin}'s
    sections) plus one section holding the constraint set and every
    built index's buckets — a server opens it and serves queries without
    re-parsing or re-indexing.  [Bpq_store.Paged] serves the same file
    out of core. *)

val register_stamp : int -> unit
(** Push the process-wide stamp supply past a stamp read from a snapshot,
    so a later {!build} can never mint it for a different constraint set
    (which would alias plan-cache keys).  {!load} calls this itself; it
    is exposed for other snapshot loaders ([Bpq_store.Paged]). *)

val save : ?selectivity:Gstats.selectivity -> t -> string -> unit
(** Write graph, optional selectivity stats, constraints and indexes to
    a checksummed snapshot, atomically (temp + rename). *)

val load : Label.table -> string -> t * Gstats.selectivity option
(** Inverse of {!save}.  Label names intern into [tbl]; node ids and
    bucket order are preserved exactly, so lookups against the loaded
    schema stream identically to the original.  The {!stamp} is
    preserved too — plans and cache entries keyed by the saved schema's
    stamp remain valid for the loaded one — and the process-wide stamp
    supply is advanced past it so later {!build}s never alias it.
    @raise Binfile.Corrupt on malformed or damaged snapshots. *)
