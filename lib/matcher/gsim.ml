open Bpq_util
open Bpq_graph
open Bpq_pattern

let initial_members ?candidates g q u yield =
  let ok v =
    Digraph.label g v = Pattern.label q u
    && Predicate.eval (Pattern.pred q u) (Digraph.value g v)
  in
  match candidates with
  | Some c -> Array.iter (fun v -> if ok v then yield v) c.(u)
  | None -> Digraph.iter_label g (Pattern.label q u) (fun v -> if ok v then yield v)

let collect sim_mem =
  let nq = Array.length sim_mem in
  let result =
    Array.init nq (fun u ->
        let vec = Vec.create () in
        Array.iteri (fun v m -> if m then Vec.push vec v) sim_mem.(u);
        Vec.to_array vec)
  in
  if Array.exists (fun arr -> Array.length arr = 0) result && nq > 0 then
    Array.make nq [||]
  else result

let run ?(deadline = Timer.no_deadline) ?candidates g q =
  let nq = Pattern.n_nodes q in
  if nq = 0 then [||]
  else begin
    let n = Digraph.n_nodes g in
    let sim_mem = Array.init nq (fun _ -> Array.make n false) in
    for u = 0 to nq - 1 do
      initial_members ?candidates g q u (fun v -> sim_mem.(u).(v) <- true)
    done;
    let edges = Array.of_list (Pattern.edges q) in
    let ne = Array.length edges in
    (* counter.(e).(v): successors of [v] simulating the head of pattern
       edge [e], maintained for every [v] simulating its tail. *)
    let counter = Array.init ne (fun _ -> Array.make n 0) in
    let pending = Vec.create () in
    let push u v = Vec.push pending ((u * n) + v) in
    for e = 0 to ne - 1 do
      let u, u' = edges.(e) in
      for v = 0 to n - 1 do
        if sim_mem.(u).(v) then begin
          let c = Digraph.fold_out g v (fun acc v' -> if sim_mem.(u').(v') then acc + 1 else acc) 0 in
          counter.(e).(v) <- c;
          if c = 0 then push u v
        end
      done
    done;
    (* Pattern edges grouped by head node, for cascade propagation. *)
    let edges_into = Array.make nq [] in
    Array.iteri (fun e (_, u') -> edges_into.(u') <- e :: edges_into.(u')) edges;
    while not (Vec.is_empty pending) do
      if Timer.expired deadline then raise Timer.Timeout;
      let code = Vec.pop pending in
      let u = code / n and v = code mod n in
      if sim_mem.(u).(v) then begin
        sim_mem.(u).(v) <- false;
        List.iter
          (fun e ->
            let u'', _ = edges.(e) in
            Digraph.iter_in g v (fun v'' ->
                if sim_mem.(u'').(v'') then begin
                  counter.(e).(v'') <- counter.(e).(v'') - 1;
                  if counter.(e).(v'') = 0 then push u'' v''
                end))
          edges_into.(u)
      end
    done;
    collect sim_mem
  end

let naive ?candidates g q =
  let nq = Pattern.n_nodes q in
  if nq = 0 then [||]
  else begin
    let sims = Array.init nq (fun _ -> Hashtbl.create 64) in
    for u = 0 to nq - 1 do
      initial_members ?candidates g q u (fun v -> Hashtbl.replace sims.(u) v ())
    done;
    let violates u v =
      List.exists
        (fun u' ->
          not (Digraph.fold_out g v (fun acc v' -> acc || Hashtbl.mem sims.(u') v') false))
        (Pattern.children q u)
    in
    let changed = ref true in
    while !changed do
      changed := false;
      for u = 0 to nq - 1 do
        let doomed =
          Hashtbl.fold (fun v () acc -> if violates u v then v :: acc else acc) sims.(u) []
        in
        if doomed <> [] then begin
          changed := true;
          List.iter (fun v -> Hashtbl.remove sims.(u) v) doomed
        end
      done
    done;
    let result =
      Array.map
        (fun sim ->
          let arr = Array.of_seq (Seq.map fst (Hashtbl.to_seq sim)) in
          Int_sort.sort arr;
          arr)
        sims
    in
    if Array.exists (fun arr -> Array.length arr = 0) result then Array.make nq [||]
    else result
  end

let is_empty sim = Array.for_all (fun arr -> Array.length arr = 0) sim
let relation_size sim = Array.fold_left (fun acc arr -> acc + Array.length arr) 0 sim
