open Bpq_util
open Bpq_graph
open Bpq_pattern

exception Stop

(* Pattern adjacency pre-resolved into int arrays: [compute_order],
   [consistent] and the anchor scan run many times per match attempt, and
   the pattern's adjacency lists never change during a search. *)
type resolved = {
  children : int array array;
  parents : int array array;
  nbrs : int array array;
}

let resolve q =
  let nq = Pattern.n_nodes q in
  { children = Array.init nq (fun u -> Array.of_list (Pattern.children q u));
    parents = Array.init nq (fun u -> Array.of_list (Pattern.parents q u));
    nbrs = Array.init nq (fun u -> Array.of_list (Pattern.neighbours q u)) }

let compute_order q radj base_count =
  let nq = Pattern.n_nodes q in
  let order = Array.make nq 0 in
  let selected = Array.make nq false in
  let matched_neighbours u =
    let count = ref 0 in
    Array.iter (fun u' -> if selected.(u') then incr count) radj.nbrs.(u);
    !count
  in
  for i = 0 to nq - 1 do
    let best = ref (-1) in
    let better u =
      (* Prefer nodes attached to the matched prefix (more constrained),
         then smaller candidate universes (or higher pattern degree in
         blind mode, where [base_count] is constant). *)
      match !best with
      | -1 -> true
      | b ->
        let ku = matched_neighbours u and kb = matched_neighbours b in
        ku > kb || (ku = kb && base_count u < base_count b)
    in
    for u = 0 to nq - 1 do
      if (not selected.(u)) && better u then best := u
    done;
    order.(i) <- !best;
    selected.(!best) <- true
  done;
  order

let iter_matches ?(deadline = Timer.no_deadline) ?(blind = false) ?candidates g q yield =
  let nq = Pattern.n_nodes q in
  if nq = 0 then yield [||]
  else begin
    let n = Digraph.n_nodes g in
    let radj = resolve q in
    (* Candidate membership and the used-set are bitsets over the data
       graph's dense node ids — a probe is two loads and a mask, versus
       hashing on every VF2 state expansion. *)
    let cand_sets =
      Option.map (Array.map (fun arr -> Bitset.of_array n arr)) candidates
    in
    let base_count u =
      if blind then Pattern.n_nodes q - Pattern.out_degree q u - Pattern.in_degree q u
      else
        match candidates with
        | Some c -> Array.length c.(u)
        | None -> Digraph.count_label g (Pattern.label q u)
    in
    let order = compute_order q radj base_count in
    let mapping = Array.make nq (-1) in
    let used = Bitset.create n in
    let node_ok u v =
      Digraph.label g v = Pattern.label q u
      && Predicate.eval (Pattern.pred q u) (Digraph.value g v)
      && Digraph.out_degree g v >= Pattern.out_degree q u
      && Digraph.in_degree g v >= Pattern.in_degree q u
      && (match cand_sets with None -> true | Some cs -> Bitset.mem cs.(u) v)
    in
    let consistent u v =
      (* Plain counted loops over the resolved adjacency, no list cells. *)
      let ok = ref true in
      let ch = radj.children.(u) in
      let i = ref 0 in
      let nc = Array.length ch in
      while !ok && !i < nc do
        let m = mapping.(ch.(!i)) in
        if m >= 0 && not (Digraph.has_edge g v m) then ok := false;
        incr i
      done;
      let pa = radj.parents.(u) in
      let np = Array.length pa in
      let j = ref 0 in
      while !ok && !j < np do
        let m = mapping.(pa.(!j)) in
        if m >= 0 && not (Digraph.has_edge g m v) then ok := false;
        incr j
      done;
      !ok
    in
    let try_assign u v k =
      if Timer.expired deadline then raise Timer.Timeout;
      if (not (Bitset.mem used v)) && node_ok u v && consistent u v then begin
        mapping.(u) <- v;
        Bitset.add used v;
        k ();
        Bitset.remove used v;
        mapping.(u) <- -1
      end
    in
    (* Candidates for [u] come from the adjacency of an already-matched
       pattern neighbour when one exists (the cheapest such anchor), else
       from the label universe / supplied candidate array. *)
    let enumerate u k =
      let anchor = ref (-1) in
      let anchor_deg = ref max_int in
      Array.iter
        (fun u' ->
          let m = mapping.(u') in
          if m >= 0 then begin
            let d = Digraph.degree g m in
            if d < !anchor_deg then begin
              anchor := u';
              anchor_deg := d
            end
          end)
        radj.nbrs.(u);
      if !anchor >= 0 then begin
        let u' = !anchor in
        let v' = mapping.(u') in
        if Pattern.has_edge q u' u then Digraph.iter_out g v' (fun v -> try_assign u v k)
        else Digraph.iter_in g v' (fun v -> try_assign u v k)
      end
      else
        match candidates with
        | Some c -> Array.iter (fun v -> try_assign u v k) c.(u)
        | None ->
          if blind then Digraph.iter_nodes g (fun v -> try_assign u v k)
          else Digraph.iter_label g (Pattern.label q u) (fun v -> try_assign u v k)
    in
    let rec step i () = if i = nq then yield mapping else enumerate order.(i) (step (i + 1)) in
    step 0 ()
  end

let count_matches ?deadline ?blind ?candidates ?limit g q =
  let count = ref 0 in
  (try
     iter_matches ?deadline ?blind ?candidates g q (fun _ ->
         incr count;
         match limit with Some l when !count >= l -> raise Stop | Some _ | None -> ())
   with Stop -> ());
  !count

let find_first ?deadline ?blind ?candidates g q =
  let result = ref None in
  (try
     iter_matches ?deadline ?blind ?candidates g q (fun m ->
         result := Some (Array.copy m);
         raise Stop)
   with Stop -> ());
  !result

let matches ?deadline ?blind ?candidates ?limit g q =
  let acc = ref [] and count = ref 0 in
  (try
     iter_matches ?deadline ?blind ?candidates g q (fun m ->
         acc := Array.copy m :: !acc;
         incr count;
         match limit with Some l when !count >= l -> raise Stop | Some _ | None -> ())
   with Stop -> ());
  !acc
