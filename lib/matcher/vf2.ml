open Bpq_util
open Bpq_graph
open Bpq_pattern

exception Stop

(* Pattern adjacency pre-resolved into int arrays: [compute_order],
   [consistent] and the anchor scan run many times per match attempt, and
   the pattern's adjacency lists never change during a search. *)
type resolved = {
  children : int array array;
  parents : int array array;
  nbrs : int array array;
}

let resolve q =
  let nq = Pattern.n_nodes q in
  { children = Array.init nq (fun u -> Array.of_list (Pattern.children q u));
    parents = Array.init nq (fun u -> Array.of_list (Pattern.parents q u));
    nbrs = Array.init nq (fun u -> Array.of_list (Pattern.neighbours q u)) }

let compute_order ?(use_stats = true) q radj base_count =
  let nq = Pattern.n_nodes q in
  let order = Array.make nq 0 in
  let selected = Array.make nq false in
  let matched_neighbours u =
    let count = ref 0 in
    Array.iter (fun u' -> if selected.(u') then incr count) radj.nbrs.(u);
    !count
  in
  let pred_arity u = if use_stats then Predicate.arity (Pattern.pred q u) else 0 in
  let degree u = Pattern.out_degree q u + Pattern.in_degree q u in
  for i = 0 to nq - 1 do
    let best = ref (-1) in
    let better u =
      (* Fail-first: prefer nodes attached to the matched prefix (more
         constrained), then smaller candidate universes (or higher pattern
         degree in blind mode, where [base_count] is constant), then — in
         stats mode — richer predicates and higher pattern degree, both of
         which shrink the surviving branch factor. *)
      match !best with
      | -1 -> true
      | b ->
        let ku = matched_neighbours u and kb = matched_neighbours b in
        ku > kb
        || ku = kb
           &&
           let cu = base_count u and cb = base_count b in
           cu < cb
           || cu = cb
              &&
              let pu = pred_arity u and pb = pred_arity b in
              pu > pb || (pu = pb && use_stats && degree u > degree b)
    in
    for u = 0 to nq - 1 do
      if (not selected.(u)) && better u then best := u
    done;
    order.(i) <- !best;
    selected.(!best) <- true
  done;
  order

(* Everything a search reads but never writes — shareable across domains
   once built (frozen graph, resolved pattern, candidate bitsets, order). *)
type prep = {
  g : Digraph.t;
  q : Pattern.t;
  nq : int;
  n : int;
  blind : bool;
  candidates : int array array option;
  cand_sets : Bitset.t array option;
  radj : resolved;
  order : int array;
}

let prepare ?(blind = false) ?candidates g q =
  let nq = Pattern.n_nodes q in
  let n = Digraph.n_nodes g in
  let radj = resolve q in
  (* Candidate membership and the used-set are bitsets over the data
     graph's dense node ids — a probe is two loads and a mask, versus
     hashing on every VF2 state expansion. *)
  let cand_sets =
    Option.map (Array.map (fun arr -> Bitset.of_array n arr)) candidates
  in
  let base_count u =
    if blind then Pattern.n_nodes q - Pattern.out_degree q u - Pattern.in_degree q u
    else
      match candidates with
      | Some c -> Array.length c.(u)
      | None -> Digraph.count_label g (Pattern.label q u)
  in
  let order = compute_order ~use_stats:(not blind) q radj base_count in
  { g; q; nq; n; blind; candidates; cand_sets; radj; order }

(* Per-search mutable state; one per domain in parallel runs. *)
type state = {
  mapping : int array;
  used : Bitset.t;
}

let make_state p = { mapping = Array.make (max p.nq 1) (-1); used = Bitset.create p.n }

let node_ok p u v =
  Digraph.label p.g v = Pattern.label p.q u
  && Predicate.eval (Pattern.pred p.q u) (Digraph.value p.g v)
  && Digraph.out_degree p.g v >= Pattern.out_degree p.q u
  && Digraph.in_degree p.g v >= Pattern.in_degree p.q u
  && (match p.cand_sets with None -> true | Some cs -> Bitset.mem cs.(u) v)

let consistent p st u v =
  (* Plain counted loops over the resolved adjacency, no list cells. *)
  let ok = ref true in
  let ch = p.radj.children.(u) in
  let i = ref 0 in
  let nc = Array.length ch in
  while !ok && !i < nc do
    let m = st.mapping.(ch.(!i)) in
    if m >= 0 && not (Digraph.has_edge p.g v m) then ok := false;
    incr i
  done;
  let pa = p.radj.parents.(u) in
  let np = Array.length pa in
  let j = ref 0 in
  while !ok && !j < np do
    let m = st.mapping.(pa.(!j)) in
    if m >= 0 && not (Digraph.has_edge p.g m v) then ok := false;
    incr j
  done;
  !ok

let try_assign p st deadline u v k =
  if Timer.expired deadline then raise Timer.Timeout;
  if (not (Bitset.mem st.used v)) && node_ok p u v && consistent p st u v then begin
    st.mapping.(u) <- v;
    Bitset.add st.used v;
    k ();
    Bitset.remove st.used v;
    st.mapping.(u) <- -1
  end

(* Candidates for [u] come from the adjacency of an already-matched
   pattern neighbour when one exists (the cheapest such anchor), else
   from the label universe / supplied candidate array. *)
let enumerate p st deadline u k =
  let anchor = ref (-1) in
  let anchor_deg = ref max_int in
  Array.iter
    (fun u' ->
      let m = st.mapping.(u') in
      if m >= 0 then begin
        let d = Digraph.degree p.g m in
        if d < !anchor_deg then begin
          anchor := u';
          anchor_deg := d
        end
      end)
    p.radj.nbrs.(u);
  if !anchor >= 0 then begin
    let u' = !anchor in
    let v' = st.mapping.(u') in
    if Pattern.has_edge p.q u' u then
      Digraph.iter_out p.g v' (fun v -> try_assign p st deadline u v k)
    else Digraph.iter_in p.g v' (fun v -> try_assign p st deadline u v k)
  end
  else
    match p.candidates with
    | Some c -> Array.iter (fun v -> try_assign p st deadline u v k) c.(u)
    | None ->
      if p.blind then Digraph.iter_nodes p.g (fun v -> try_assign p st deadline u v k)
      else
        Digraph.iter_label p.g (Pattern.label p.q u) (fun v ->
            try_assign p st deadline u v k)

(* Assign [order.(from)..order.(stop - 1)], yielding the mapping at depth
   [stop].  The full search is [search p st dl 0 p.nq yield]; prefix
   collection stops early; prefix continuation starts late. *)
let rec search p st deadline from stop yield =
  if from = stop then yield st.mapping
  else enumerate p st deadline p.order.(from) (fun () -> search p st deadline (from + 1) stop yield)

let iter_matches ?(deadline = Timer.no_deadline) ?(blind = false) ?candidates g q yield =
  if Pattern.n_nodes q = 0 then yield [||]
  else begin
    let p = prepare ~blind ?candidates g q in
    search p (make_state p) deadline 0 p.nq yield
  end

(* ------------------------------------------------------------------ *)
(* Intra-query parallelism: root-candidate splitting.                  *)
(* ------------------------------------------------------------------ *)

(* The root's unanchored enumeration base, mirroring [enumerate]'s
   fallback branch (at depth 0 nothing is matched, so the root is always
   unanchored). *)
let root_base p =
  let u = p.order.(0) in
  match p.candidates with
  | Some c -> c.(u)
  | None ->
    if p.blind then Array.init p.n Fun.id
    else Digraph.nodes_with_label p.g (Pattern.label p.q u)

(* Valid depth-[d] prefixes in sequential enumeration order, flattened
   ([d] values per prefix).  When the root row alone is too small to feed
   the pool, prefixes extend to depth 2, which multiplies the task count
   by the root's branch factor.  Collection runs the same machinery the
   search itself would, so concatenating the subtrees of the prefixes in
   this order reproduces the sequential match order exactly. *)
let collect_prefixes p deadline d =
  let acc = Vec.create ~capacity:256 () in
  search p (make_state p) deadline 0 d (fun mapping ->
      for j = 0 to d - 1 do
        Vec.push acc mapping.(p.order.(j))
      done);
  acc

let set_prefix p st data off d on =
  for j = 0 to d - 1 do
    let u = p.order.(j) and v = data.(off + j) in
    if on then begin
      st.mapping.(u) <- v;
      Bitset.add st.used v
    end
    else begin
      st.mapping.(u) <- -1;
      Bitset.remove st.used v
    end
  done

(* Run [yield] over every match, splitting the work across [pool] as
   contiguous prefix ranges; [yield] runs on worker domains and must only
   touch chunk-local state.  Chunks outnumber slots 4:1 so uneven
   subtrees rebalance dynamically. *)
let par_chunks pool p deadline chunk =
  let slots = Pool.size pool in
  let base = root_base p in
  let d = if p.nq >= 2 && Array.length base < 4 * slots then 2 else 1 in
  let prefixes = collect_prefixes p deadline d in
  let np = Vec.length prefixes / d in
  if np = 0 then [||]
  else begin
    let chunks = min np (4 * slots) in
    let ranges = Array.init chunks (fun c -> (c * np / chunks, (c + 1) * np / chunks)) in
    let data = Vec.unsafe_data prefixes in
    Pool.map_array pool
      (fun (lo, hi) ->
        let dl = Timer.clone deadline in
        let st = make_state p in
        chunk (fun yield ->
            for pi = lo to hi - 1 do
              set_prefix p st data (pi * d) d true;
              search p st dl d p.nq yield;
              set_prefix p st data (pi * d) d false
            done))
      ranges
  end

let use_pool pool q =
  match pool with
  | Some pool when Pool.size pool > 1 && Pattern.n_nodes q > 0 -> Some pool
  | Some _ | None -> None

let count_matches ?pool ?(deadline = Timer.no_deadline) ?blind ?candidates ?limit g q =
  match use_pool pool q with
  | Some pool ->
    let p = prepare ?blind ?candidates g q in
    let parts =
      par_chunks pool p deadline (fun drive ->
          let count = ref 0 in
          (try
             drive (fun _ ->
                 incr count;
                 match limit with
                 | Some l when !count >= l -> raise Stop
                 | Some _ | None -> ())
           with Stop -> ());
          !count)
    in
    let total = Array.fold_left ( + ) 0 parts in
    (match limit with Some l -> min l total | None -> total)
  | None ->
    let count = ref 0 in
    (try
       iter_matches ~deadline ?blind ?candidates g q (fun _ ->
           incr count;
           match limit with Some l when !count >= l -> raise Stop | Some _ | None -> ())
     with Stop -> ());
    !count

let find_first ?deadline ?blind ?candidates g q =
  let result = ref None in
  (try
     iter_matches ?deadline ?blind ?candidates g q (fun m ->
         result := Some (Array.copy m);
         raise Stop)
   with Stop -> ());
  !result

let matches ?pool ?(deadline = Timer.no_deadline) ?blind ?candidates ?limit g q =
  match use_pool pool q with
  | Some pool ->
    let p = prepare ?blind ?candidates g q in
    let parts =
      par_chunks pool p deadline (fun drive ->
          let acc = ref [] and count = ref 0 in
          (try
             drive (fun m ->
                 acc := Array.copy m :: !acc;
                 incr count;
                 match limit with
                 | Some l when !count >= l -> raise Stop
                 | Some _ | None -> ())
           with Stop -> ());
          !acc)
    in
    (* Each part is most-recent-first within its chunk and chunks are in
       sequential prefix order, so chronological order is the
       concatenation of the reversed parts — reassemble exactly what the
       sequential run returns. *)
    (match limit with
    | None -> List.concat (List.rev (Array.to_list parts))
    | Some l ->
      let chron = List.concat_map List.rev (Array.to_list parts) in
      let rec take_rev k acc = function
        | x :: tl when k > 0 -> take_rev (k - 1) (x :: acc) tl
        | _ -> acc
      in
      take_rev l [] chron)
  | None ->
    let acc = ref [] and count = ref 0 in
    (try
       iter_matches ~deadline ?blind ?candidates g q (fun m ->
           acc := Array.copy m :: !acc;
           incr count;
           match limit with Some l when !count >= l -> raise Stop | Some _ | None -> ())
     with Stop -> ());
    !acc
