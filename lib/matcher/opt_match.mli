(** Index-assisted conventional matching — the paper's [optVF2] and
    [optgsim] baselines.

    These are the conventional algorithms of {!Vf2} and {!Gsim} with their
    initial candidate sets reduced using the indexes of an access schema:
    per-node predicates are applied up front, and type-(2) constraints
    [l → (l', N)] drive semijoin passes along pattern edges (a candidate
    for [u'] must be an indexed [l']-neighbour of some candidate for [u]).

    Unlike the plan-based evaluators in {!Bpq_core.Bounded_eval}, nothing
    here is bounded: candidate sets start at whole label universes, so the
    cost still grows with [|G|] — which is exactly the contrast the paper's
    Fig. 5 demonstrates. *)

open Bpq_util
open Bpq_access
open Bpq_pattern

val reduced_candidates : Schema.t -> Pattern.t -> int array array
(** Candidate array per pattern node after predicate filtering and at most
    two rounds of index semijoins.  Sound for isomorphism only: the
    reduction assumes every matched node touches a matched neighbour. *)

val sim_reduced_candidates : Schema.t -> Pattern.t -> int array array
(** Simulation-sound variant: a candidate is pruned only when it has no
    indexed neighbour at all inside some child's candidate set — a
    necessary condition for the forward-simulation witness. *)

val opt_vf2_count :
  ?pool:Pool.t -> ?deadline:Timer.deadline -> ?limit:int -> Schema.t -> Pattern.t -> int

val opt_vf2_matches :
  ?pool:Pool.t ->
  ?deadline:Timer.deadline ->
  ?limit:int ->
  Schema.t ->
  Pattern.t ->
  int array list
(** [pool] splits the VF2 search by root candidate ({!Vf2.count_matches});
    results are byte-identical to the sequential run at every pool
    size. *)

val opt_gsim : ?deadline:Timer.deadline -> Schema.t -> Pattern.t -> int array array
