(** Subgraph isomorphism by backtracking (VF2-style).

    A match of pattern [Q] in graph [G] is an injective mapping [h] from
    pattern nodes to graph nodes such that [(u, u') ∈ E_Q] implies
    [(h(u), h(u')) ∈ E], labels agree and every node predicate holds —
    the paper's subgraph-query semantics (matches are subgraphs of [G]
    isomorphic to [Q], one per mapping).

    The search enumerates pattern nodes in a connectivity-aware order and
    draws candidates from the adjacency of already-matched neighbours, with
    label/predicate/degree feasibility checks — the standard VF2 pruning
    adapted to labeled digraphs.

    [candidates], when given, restricts pattern node [u] to the node set
    [candidates.(u)]; this is how the plan-based [bVF2] and the
    index-assisted [optVF2] reuse the same search core.

    [blind] (default [false]) disables the label-statistics heuristics:
    pattern nodes are ordered by connectivity and pattern degree only, and
    unanchored nodes enumerate {e all} graph nodes (labels are checked per
    candidate).  This mimics generic VF2 implementations such as the C++
    Boost one the paper benchmarks against, whose cost visibly scales with
    [|G|].

    In the default (non-blind) mode the node ordering is fail-first and
    driven by realized candidate counts: nodes attached to the matched
    prefix come first, then smaller candidate universes (the per-label
    count, or the supplied candidate row), with richer predicates and
    higher pattern degree breaking remaining ties.

    [pool] (on {!count_matches} and {!matches}) splits the search across
    domains by root candidate: the shared node order and candidate
    bitsets are computed once, the root's candidate row — extended to
    depth-2 prefixes when the row alone is too narrow to feed the pool —
    is partitioned into contiguous ranges, and each range is searched
    independently with its own mutable state and deadline clone.  Ranges
    concatenate in sequential enumeration order, so counts and match
    lists (including under [limit]) are byte-identical to the sequential
    run at every pool size. *)

open Bpq_util
open Bpq_graph
open Bpq_pattern

val iter_matches :
  ?deadline:Timer.deadline ->
  ?blind:bool ->
  ?candidates:int array array ->
  Digraph.t ->
  Pattern.t ->
  (int array -> unit) ->
  unit
(** Calls the continuation once per match with the mapping array (index =
    pattern node).  The array is reused between calls; copy it to retain
    it.  @raise Timer.Timeout when the deadline expires. *)

val count_matches :
  ?pool:Pool.t ->
  ?deadline:Timer.deadline ->
  ?blind:bool ->
  ?candidates:int array array ->
  ?limit:int ->
  Digraph.t ->
  Pattern.t ->
  int
(** Number of matches, stopping early at [limit] when provided. *)

val find_first :
  ?deadline:Timer.deadline ->
  ?blind:bool ->
  ?candidates:int array array ->
  Digraph.t ->
  Pattern.t ->
  int array option

val matches :
  ?pool:Pool.t ->
  ?deadline:Timer.deadline ->
  ?blind:bool ->
  ?candidates:int array array ->
  ?limit:int ->
  Digraph.t ->
  Pattern.t ->
  int array list
(** All matches as fresh arrays, most recent first.  Prefer
    {!iter_matches} on large answer sets. *)
