open Bpq_graph
open Bpq_access
open Bpq_pattern

(* Tightest type-(2) constraint per (source label, target label), computed
   once per query — schemas can hold thousands of constraints. *)
let type2_map schema =
  let map : (Label.t * Label.t, Constr.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (c : Constr.t) ->
      match c.source with
      | [ s ] ->
        let key = (s, c.target) in
        (match Hashtbl.find_opt map key with
         | Some (b : Constr.t) when b.bound <= c.bound -> ()
         | Some _ | None -> Hashtbl.replace map key c)
      | [] | _ :: _ :: _ -> ())
    (Schema.constraints schema);
  map

let initial_candidates g q u =
  let acc = ref [] in
  Digraph.iter_label g (Pattern.label q u) (fun v ->
      if Predicate.eval (Pattern.pred q u) (Digraph.value g v) then acc := v :: !acc);
  Array.of_list !acc

(* Scratch state shared by the semijoin passes of one reduction: a bitset
   over the graph's node ids plus the list of set bits, so clearing costs
   O(marked), not O(|V|). *)
type scratch = { marks : Bpq_util.Bitset.t; marked : Bpq_util.Vec.t }

let make_scratch g =
  { marks = Bpq_util.Bitset.create (Digraph.n_nodes g);
    marked = Bpq_util.Vec.create ~capacity:64 () }

let scratch_mark s w =
  if not (Bpq_util.Bitset.mem s.marks w) then begin
    Bpq_util.Bitset.add s.marks w;
    Bpq_util.Vec.push s.marked w
  end

let scratch_reset s =
  Bpq_util.Vec.iter (fun w -> Bpq_util.Bitset.remove s.marks w) s.marked;
  Bpq_util.Vec.clear s.marked

let semijoin schema t2 q scratch cand u u' =
  (* Shrink cand.(u') to indexed neighbours of cand.(u), when a type-(2)
     index exists and the pass cannot blow up the work. *)
  match Hashtbl.find_opt t2 (Pattern.label q u, Pattern.label q u') with
  | None -> false
  | Some (c : Constr.t) ->
    let src = cand.(u) and dst = cand.(u') in
    let budget = Array.length src * c.bound in
    if budget = 0 || budget > 4 * Array.length dst then false
    else begin
      let idx = Schema.index_of schema c in
      Array.iter (fun v -> Index.lookup_iter idx [ v ] (scratch_mark scratch)) src;
      let kept =
        Array.of_seq (Seq.filter (Bpq_util.Bitset.mem scratch.marks) (Array.to_seq dst))
      in
      scratch_reset scratch;
      if Array.length kept < Array.length dst then begin
        cand.(u') <- kept;
        true
      end
      else false
    end

let reduced_candidates schema q =
  let g = Schema.graph schema in
  let t2 = type2_map schema in
  let nq = Pattern.n_nodes q in
  let cand = Array.init nq (initial_candidates g q) in
  let scratch = make_scratch g in
  let pass () =
    List.fold_left
      (fun changed (u, u') ->
        let a = semijoin schema t2 q scratch cand u u' in
        let b = semijoin schema t2 q scratch cand u' u in
        changed || a || b)
      false (Pattern.edges q)
  in
  if pass () then ignore (pass ());
  cand

(* Simulation-sound reduction.  Unlike isomorphism, a simulation partner of
   [u'] need not touch any candidate of a {e parent} [u]; only the forward
   direction constrains it: every partner of [u] must have, for each child
   [u'], a successor among [u']'s candidates.  Having {e some} indexed
   neighbour there is a necessary condition, so pruning on its absence is
   sound. *)
let sim_reduced_candidates schema q =
  let g = Schema.graph schema in
  let t2 = type2_map schema in
  let nq = Pattern.n_nodes q in
  let cand = Array.init nq (initial_candidates g q) in
  let member = Array.map (fun arr ->
      let set = Hashtbl.create (max 16 (Array.length arr)) in
      Array.iter (fun v -> Hashtbl.replace set v ()) arr;
      set) cand in
  let prune u =
    (* Keep only child edges whose pruning pass is worth its cost:
       |cand(u)| lookups of up to [bound] hits each. *)
    let usable =
      List.filter_map
        (fun u' ->
          match Hashtbl.find_opt t2 (Pattern.label q u, Pattern.label q u') with
          | Some (c : Constr.t)
            when Array.length cand.(u) * (c.bound + 1)
                 <= 16 * (Array.length cand.(u') + 1) ->
            Some (u', Schema.index_of schema c)
          | Some _ | None -> None)
        (Pattern.children q u)
    in
    if usable = [] then false
    else begin
      let keep v =
        List.for_all
          (fun (u', idx) ->
            Array.exists (fun w -> Hashtbl.mem member.(u') w) (Index.lookup idx [ v ]))
          usable
      in
      let kept = Array.of_seq (Seq.filter keep (Array.to_seq cand.(u))) in
      if Array.length kept < Array.length cand.(u) then begin
        cand.(u) <- kept;
        Hashtbl.reset member.(u);
        Array.iter (fun v -> Hashtbl.replace member.(u) v ()) kept;
        true
      end
      else false
    end
  in
  let pass () =
    let changed = ref false in
    for u = 0 to nq - 1 do
      if prune u then changed := true
    done;
    !changed
  in
  if pass () then ignore (pass ());
  cand

let opt_vf2_count ?pool ?deadline ?limit schema q =
  let candidates = reduced_candidates schema q in
  Vf2.count_matches ?pool ?deadline ?limit ~candidates (Schema.graph schema) q

let opt_vf2_matches ?pool ?deadline ?limit schema q =
  let candidates = reduced_candidates schema q in
  Vf2.matches ?pool ?deadline ?limit ~candidates (Schema.graph schema) q

let opt_gsim ?deadline schema q =
  let candidates = sim_reduced_candidates schema q in
  Gsim.run ?deadline ~candidates (Schema.graph schema) q
