(* bpq — bounded pattern queries on graphs, command-line interface.

   Subcommands:
     gen       generate a synthetic dataset and write it as a graph file
     discover  mine access constraints from a graph file
     check     decide effective boundedness of a pattern under constraints
     plan      print the generated (worst-case-optimal) query plan
     freeze    build a schema and write a binary snapshot (graph + indexes)
     shard     hash-partition a snapshot into per-worker shard files
     worker    serve one shard over the framed fetch protocol
     run       evaluate a pattern on a graph through its bounded plan
     apply     append delta operations to a snapshot's write-ahead log
     compact   fold a delta log into a fresh snapshot generation *)

open Cmdliner
open Bpq_graph
open Bpq_pattern
open Bpq_access
open Bpq_core
module Store = Bpq_store.Store
module Paged = Bpq_store.Paged
module Shard = Bpq_store.Shard
module Remote = Bpq_store.Remote
module Wal = Bpq_store.Wal
module Overlay = Bpq_store.Overlay
module Sock = Bpq_util.Sock
module Json = Bpq_util.Jsonx

(* Operational failures — unreadable files, parse errors, damaged
   snapshots, dead workers — exit with a one-line diagnostic, never a
   backtrace. *)
let guard f =
  try f () with
  | Failure msg | Binfile.Corrupt msg | Sys_error msg ->
    Printf.eprintf "bpq: %s\n" msg;
    3
  | Remote.Worker_died { shard; detail } ->
    Printf.eprintf "bpq: worker for shard %d died: %s\n" shard detail;
    3
  | Remote.Stale_plan { shard; worker_stamp; plan_stamp } ->
    Printf.eprintf
      "bpq: shard %d rejected a stale plan (worker stamp %d, plan stamp %d); re-plan \
       against the current snapshot\n"
      shard worker_stamp plan_stamp;
    3

(* Prefix parse/corruption errors with the file they came from (parsers
   report line numbers but not paths). *)
let with_file path f =
  try f () with
  | Failure msg -> failwith (Printf.sprintf "%s: %s" path msg)
  | Binfile.Corrupt msg -> failwith (Printf.sprintf "%s: %s" path msg)

(* [-g] accepts either the text format or a binary snapshot. *)
let load_graph tbl path =
  with_file path (fun () ->
      if Graph_io.is_snapshot path then fst (Graph_io.load_bin tbl path)
      else Graph_io.load tbl path)

let load_pattern tbl path = with_file path (fun () -> Pattern_parser.load tbl path)

let semantics_conv =
  let parse = function
    | "subgraph" | "iso" -> Ok Actualized.Subgraph
    | "simulation" | "sim" -> Ok Actualized.Simulation
    | s -> Error (`Msg (Printf.sprintf "unknown semantics %S (subgraph|simulation)" s))
  in
  let print fmt = function
    | Actualized.Subgraph -> Format.pp_print_string fmt "subgraph"
    | Actualized.Simulation -> Format.pp_print_string fmt "simulation"
  in
  Arg.conv (parse, print)

let semantics_arg =
  Arg.(value & opt semantics_conv Actualized.Subgraph
       & info [ "s"; "semantics" ] ~docv:"SEM" ~doc:"Pattern semantics: subgraph or simulation.")

let graph_arg =
  Arg.(required & opt (some file) None
       & info [ "g"; "graph" ] ~docv:"FILE" ~doc:"Data graph: text format or a binary snapshot.")

let pattern_arg =
  Arg.(required & opt (some file) None & info [ "q"; "query" ] ~docv:"FILE" ~doc:"Pattern query file.")

let parse_constraints tbl path = with_file path (fun () -> Constr_io.load tbl path)

let print_constraints tbl constrs = Constr_io.output stdout tbl constrs

let constraints_arg =
  Arg.(required & opt (some file) None
       & info [ "a"; "constraints" ] ~docv:"FILE"
           ~doc:"Access constraints, one 'src1,src2 -> target N' per line ('-' for empty source).")

(* gen *)

let gen_cmd =
  let kind =
    Arg.(value & opt string "imdb"
         & info [ "kind" ] ~docv:"KIND" ~doc:"Dataset kind: imdb, dbpedia, web or random.")
  in
  let scale =
    Arg.(value & opt float 0.1 & info [ "scale" ] ~docv:"S" ~doc:"Scale factor.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.") in
  let out =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output path.")
  in
  let run kind scale seed out =
    guard @@ fun () ->
    let tbl = Label.create_table () in
    let g =
      match kind with
      | "imdb" -> Generators.imdb_like ~seed ~scale tbl
      | "dbpedia" -> Generators.dbpedia_like ~seed ~scale tbl
      | "web" -> Generators.web_like ~seed ~scale tbl
      | "random" ->
        let n = max 10 (int_of_float (scale *. 100_000.0)) in
        Generators.random ~seed ~nodes:n ~edges:(4 * n) ~labels:16 tbl
      | other -> failwith (Printf.sprintf "unknown dataset kind %S" other)
    in
    Graph_io.save g out;
    Printf.printf "wrote %s: %d nodes, %d edges, %d labels\n" out (Digraph.n_nodes g)
      (Digraph.n_edges g) (Label.count tbl);
    0
  in
  Cmd.v (Cmd.info "gen" ~doc:"Generate a synthetic dataset.")
    Term.(const run $ kind $ scale $ seed $ out)

(* discover *)

let discover_cmd =
  let max_bound =
    Arg.(value & opt int 64 & info [ "max-bound" ] ~docv:"N" ~doc:"Prune bounds above N.")
  in
  let run graph max_bound =
    guard @@ fun () ->
    let tbl = Label.create_table () in
    let g = load_graph tbl graph in
    print_constraints tbl (Discovery.discover ~max_bound g);
    0
  in
  Cmd.v (Cmd.info "discover" ~doc:"Mine access constraints from a graph.")
    Term.(const run $ graph_arg $ max_bound)

(* stats *)

let stats_cmd =
  let run graph =
    guard @@ fun () ->
    let tbl = Label.create_table () in
    let g = load_graph tbl graph in
    print_string (Gstats.to_string tbl (Gstats.compute g));
    0
  in
  Cmd.v (Cmd.info "stats" ~doc:"Summarise a graph: sizes, degrees, label histogram.")
    Term.(const run $ graph_arg)

(* check *)

let check_cmd =
  let run semantics pattern constraints =
    guard @@ fun () ->
    let tbl = Label.create_table () in
    let q = load_pattern tbl pattern in
    let a = parse_constraints tbl constraints in
    let d = Ebchk.diagnose semantics q a in
    print_endline (Ebchk.report q d);
    if d.bounded then 0 else 1
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Decide whether a pattern is effectively bounded.")
    Term.(const run $ semantics_arg $ pattern_arg $ constraints_arg)

(* plan *)

let plan_cmd =
  let refine =
    Arg.(value & flag
         & info [ "assume-distinct-values" ]
             ~doc:"Cap type-(1) estimates by predicate value ranges (see Qplan docs).")
  in
  let graph_opt =
    Arg.(value & opt (some file) None
         & info [ "g"; "graph" ] ~docv:"FILE"
             ~doc:"Data graph file; when given, the plan is ordered by the graph's \
                   selectivity statistics and estimated realized cardinalities are printed.")
  in
  let run semantics pattern constraints refine graph =
    guard @@ fun () ->
    let tbl = Label.create_table () in
    let q = load_pattern tbl pattern in
    let a = parse_constraints tbl constraints in
    let costs = Option.map (fun path -> Costs.of_graph (load_graph tbl path)) graph in
    match Qplan.generate ~assume_distinct_values:refine ?costs semantics q a with
    | None ->
      print_endline (Ebchk.report q (Ebchk.diagnose semantics q a));
      1
    | Some plan ->
      (match costs with
       | None -> print_string (Plan.to_string plan)
       | Some _ -> print_string (Explain.describe ?costs plan));
      0
  in
  Cmd.v (Cmd.info "plan" ~doc:"Print the worst-case-optimal query plan.")
    Term.(const run $ semantics_arg $ pattern_arg $ constraints_arg $ refine $ graph_opt)

module Pool = Bpq_util.Pool

(* Storage backend selection, shared by run and serve. *)

let backend_conv =
  let parse = function
    | "mem" -> Ok Store.Mem
    | "paged" -> Ok Store.Paged
    | "sharded" -> Ok Store.Sharded
    | s -> Error (`Msg (Printf.sprintf "unknown backend %S (mem|paged|sharded)" s))
  in
  let print fmt = function
    | Store.Mem -> Format.pp_print_string fmt "mem"
    | Store.Paged -> Format.pp_print_string fmt "paged"
    | Store.Sharded -> Format.pp_print_string fmt "sharded"
  in
  Arg.conv (parse, print)

let backend_name = function
  | Store.Mem -> "mem"
  | Store.Paged -> "paged"
  | Store.Sharded -> "sharded"

(* Open a sharded store from a `bpq shard` output directory: spawned
   worker processes by default, or connections to externally started
   `bpq worker --listen` processes when [workers] lists their
   addresses (comma-separated, one per shard, any order). *)
let open_sharded ?workers ?(pushdown = true) graph =
  let m = with_file graph (fun () -> Shard.load_manifest graph) in
  match workers with
  | None -> Store.of_remote ~path:graph ~pushdown (Remote.spawn m)
  | Some spec ->
    let addrs = List.map String.trim (String.split_on_char ',' spec) in
    if List.exists (fun a -> a = "") addrs then
      failwith "--workers: empty address in the list (stray comma?)";
    if List.length addrs <> m.Shard.shards then
      failwith
        (Printf.sprintf "--workers lists %d addresses, the manifest has %d shards"
           (List.length addrs) m.Shard.shards);
    let fds =
      List.map
        (fun a ->
          match Sock.parse a with
          | Ok addr -> Sock.connect addr
          | Error msg -> failwith (Printf.sprintf "--workers %s: %s" a msg))
        addrs
    in
    Store.of_remote ~path:graph ~pushdown (Remote.attach m (Array.of_list fds))

let print_shard_traffic r =
  let st : Remote.stats = Remote.stats r in
  let t =
    Bpq_util.Table.create
      [ "shard"; "messages"; "sent"; "received"; "items"; "server-ms" ]
  in
  Array.iteri
    (fun s m ->
      Bpq_util.Table.add_row t
        [ string_of_int s;
          string_of_int m;
          string_of_int st.bytes_sent.(s);
          string_of_int st.bytes_received.(s);
          string_of_int st.items.(s);
          Printf.sprintf "%.2f" (float_of_int st.server_ns.(s) /. 1e6) ])
    st.messages;
  Bpq_util.Table.print t;
  let messages, bytes = Remote.traffic st in
  Printf.printf "# shard traffic: %d rounds, %d messages, %d bytes\n" st.rounds messages
    bytes

(* The write path, shared by run, serve, apply and compact: delta
   operations arrive as line-JSON ({!Wal.op_of_json} shape), land in a
   write-ahead log paired with the snapshot, and serve through the
   read-through overlay. *)

let wal_arg =
  Arg.(value & opt (some string) None
       & info [ "wal" ] ~docv:"FILE"
           ~doc:"Attach a write-ahead delta log (created if absent; must pair with this \
                 snapshot generation).  Queries then read through the replayed overlay; \
                 answers are identical to a from-scratch rebuild.")

let attach_wal_or_fail store wal_path =
  let dropped = Store.attach_wal store wal_path in
  if dropped > 0 then
    Printf.eprintf "bpq: %s: recovered past a torn tail (%d trailing bytes dropped)\n%!"
      wal_path dropped

let read_ops_channel name ic =
  let ops = ref [] and lineno = ref 0 in
  (try
     while true do
       let line = String.trim (input_line ic) in
       incr lineno;
       if line <> "" then begin
         let parsed =
           match Json.parse line with
           | Ok j -> Wal.op_of_json j
           | Error e -> Error e
         in
         match parsed with
         | Ok op -> ops := op :: !ops
         | Error e -> failwith (Printf.sprintf "%s:%d: %s" name !lineno e)
       end
     done
   with End_of_file -> ());
  List.rev !ops

let read_ops path =
  if path = "-" then read_ops_channel "<stdin>" stdin
  else In_channel.with_open_text path (fun ic -> read_ops_channel path ic)

let print_overlay_counters store =
  match (Store.overlay store, Store.overlay_counters store) with
  | Some ov, Some c ->
    let t =
      Bpq_util.Table.create
        [ "lookups"; "delegated"; "merged"; "base-hits"; "masked"; "added"; "edge-probes" ]
    in
    Bpq_util.Table.add_row t
      [ string_of_int c.Overlay.c_lookups;
        string_of_int c.Overlay.c_delegated;
        string_of_int c.Overlay.c_merged;
        string_of_int c.Overlay.c_base_hits;
        string_of_int c.Overlay.c_masked;
        string_of_int c.Overlay.c_added;
        string_of_int c.Overlay.c_probes_overlay ];
    Bpq_util.Table.print t;
    Printf.printf "# overlay: version %d, %d ops (%+d nodes, %+d edges), %d labels touched\n"
      (Overlay.version ov) (Overlay.n_ops ov) (Overlay.net_nodes ov) (Overlay.net_edges ov)
      (List.length (Overlay.touched_labels ov))
  | _ -> ()

(* apply *)

let apply_cmd =
  let wal_req =
    Arg.(required & opt (some string) None
         & info [ "wal" ] ~docv:"FILE" ~doc:"Delta log path (created if absent).")
  in
  let backend_arg =
    Arg.(value & opt backend_conv Store.Mem
         & info [ "backend" ] ~docv:"B"
             ~doc:"Backend to validate the batch against: mem, paged or sharded (a \
                   `bpq shard` directory).")
  in
  let page_cache_arg =
    Arg.(value & opt int 16
         & info [ "page-cache" ] ~docv:"MB" ~doc:"Page-cache budget for --backend paged.")
  in
  let ops_arg =
    Arg.(value & pos 0 string "-"
         & info [] ~docv:"OPS"
             ~doc:"Delta operations, one JSON object per line: \
                   {\"op\":\"add_node\",\"label\":L,\"value\":V}, \
                   {\"op\":\"add_edge\",\"src\":U,\"dst\":V}, \
                   {\"op\":\"remove_edge\",\"src\":U,\"dst\":V}, \
                   {\"op\":\"set_value\",\"node\":N,\"value\":V}.  '-' (the default) \
                   reads stdin.")
  in
  let run graph wal backend page_cache ops_file =
    guard @@ fun () ->
    let store =
      if backend = Store.Sharded then open_sharded graph
      else if Graph_io.is_snapshot graph then
        with_file graph (fun () ->
            Store.open_snapshot ~backend ~page_cache_mb:page_cache graph)
      else
        failwith
          (Printf.sprintf "%s: delta logs pair with snapshots (build one with `bpq freeze`)"
             graph)
    in
    Fun.protect ~finally:(fun () -> Store.close store) @@ fun () ->
    attach_wal_or_fail store wal;
    let ops = read_ops ops_file in
    match Store.apply_ops store ops with
    | Error msg -> failwith msg
    | Ok n ->
      let w = Option.get (Store.wal store) in
      let ov = Option.get (Store.overlay store) in
      Printf.printf "applied %d ops to %s: %d records (%d bytes), overlay %+d nodes %+d edges\n"
        n wal (Wal.records w) (Wal.bytes w) (Overlay.net_nodes ov) (Overlay.net_edges ov);
      0
  in
  Cmd.v
    (Cmd.info "apply"
       ~doc:"Validate a batch of delta operations against a snapshot and append it to the \
             write-ahead log; `run`/`serve --wal` then read through the combined state.")
    Term.(const run $ graph_arg $ wal_req $ backend_arg $ page_cache_arg $ ops_arg)

(* compact *)

let compact_cmd =
  let wal_req =
    Arg.(required & opt (some string) None
         & info [ "wal" ] ~docv:"FILE" ~doc:"Delta log to fold (must pair with the snapshot).")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Write the folded snapshot here instead of over the input; the input \
                   snapshot and the log are then left untouched.")
  in
  let run graph wal out =
    guard @@ fun () ->
    if Sys.is_directory graph then
      failwith
        "sharded stores cannot be compacted through the coordinator; compact the \
         unsharded snapshot, then re-shard";
    if not (Graph_io.is_snapshot graph) then
      failwith (Printf.sprintf "%s: not a snapshot (build one with `bpq freeze`)" graph);
    let store = with_file graph (fun () -> Store.open_snapshot ~backend:Store.Mem graph) in
    Fun.protect ~finally:(fun () -> Store.close store) @@ fun () ->
    attach_wal_or_fail store wal;
    let ov = Option.get (Store.overlay store) in
    let folded = Overlay.n_ops ov in
    let path = Store.compact ?out store in
    Printf.printf "folded %d ops (%+d nodes, %+d edges) into %s%s\n" folded
      (Overlay.net_nodes ov) (Overlay.net_edges ov) path
      (if out = None then "; log truncated to the new generation" else "");
    0
  in
  Cmd.v
    (Cmd.info "compact"
       ~doc:"Fold base snapshot + delta log into one fresh snapshot generation (atomic \
             temp+rename; the schema stamp is preserved, so plan caches stay warm).")
    Term.(const run $ graph_arg $ wal_req $ out)

(* freeze *)

let freeze_cmd =
  let out =
    Arg.(required & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Snapshot output path.")
  in
  let jobs =
    Arg.(value & opt int (Pool.default_jobs ())
         & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Build the indexes on N domains.")
  in
  let run graph constraints out jobs =
    guard @@ fun () ->
    let tbl = Label.create_table () in
    let g = load_graph tbl graph in
    let a = parse_constraints tbl constraints in
    let pool = Pool.create jobs in
    Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
    let schema = Schema.build ~pool g a in
    if not (Schema.satisfied schema) then begin
      prerr_endline "error: the graph does not satisfy the access constraints:";
      List.iter
        (fun (c, realised) ->
          Printf.eprintf "  %s realised %d\n" (Constr.to_string tbl c) realised)
        (Schema.violations schema);
      2
    end
    else begin
      Schema.save ~selectivity:(Gstats.selectivity g) schema out;
      let bytes = In_channel.with_open_bin out In_channel.length in
      Printf.printf "wrote %s: %d nodes, %d edges, %d constraints (%Ld bytes)\n" out
        (Digraph.n_nodes g) (Digraph.n_edges g) (List.length a) bytes;
      0
    end
  in
  Cmd.v
    (Cmd.info "freeze"
       ~doc:"Build indexes and statistics, then write a binary snapshot for `run --backend`.")
    Term.(const run $ graph_arg $ constraints_arg $ out $ jobs)

(* shard *)

let shard_cmd =
  let shards =
    Arg.(value & opt int 4 & info [ "shards" ] ~docv:"N" ~doc:"Number of shards.")
  in
  let snapshot =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"SNAPSHOT" ~doc:"Input snapshot (`bpq freeze` output).")
  in
  let outdir =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"OUTDIR"
             ~doc:"Output directory (created if missing) for the shard files and MANIFEST.")
  in
  let run shards snapshot outdir =
    guard @@ fun () ->
    if shards <= 0 then failwith "--shards must be positive";
    let m = with_file snapshot (fun () -> Shard.partition ~shards ~snapshot ~dir:outdir) in
    Array.iteri
      (fun s (f : Shard.shard_file) ->
        Printf.printf "shard %d: %s — %d edges, %d index keys, %d payload entries\n" s
          f.file f.n_edges f.n_keys f.payload_ints)
      m.files;
    Printf.printf "wrote %s: %d shards over %d nodes, %d edges, %d constraints\n"
      (Shard.manifest_path outdir) m.shards m.n_nodes m.n_edges (List.length m.constraints);
    0
  in
  Cmd.v
    (Cmd.info "shard"
       ~doc:"Hash-partition a snapshot into per-worker shard files plus a manifest, for \
             `run --backend sharded` and `worker`.")
    Term.(const run $ shards $ snapshot $ outdir)

(* worker *)

let worker_cmd =
  let shard_file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"SHARD" ~doc:"Shard file (`bpq shard` output).")
  in
  let listen =
    Arg.(value & opt (some string) None
         & info [ "listen" ] ~docv:"ADDR"
             ~doc:"Serve coordinator connections on a socket (unix:PATH, HOST:PORT or \
                   :PORT).  Without it, the worker serves its stdin/stdout — the mode a \
                   spawning coordinator uses.")
  in
  let accept =
    Arg.(value & opt int 1
         & info [ "accept" ] ~docv:"N"
             ~doc:"With --listen, serve N coordinator connections (one at a time) then \
                   exit; 0 keeps accepting forever.")
  in
  let page_cache =
    Arg.(value & opt int 16
         & info [ "page-cache" ] ~docv:"MB" ~doc:"Page-cache budget for the shard file.")
  in
  let run shard_file listen accept page_cache =
    guard @@ fun () ->
    Sock.ignore_sigpipe ();
    match listen with
    | None ->
      (* Stdout is the protocol channel: nothing else may print there. *)
      (try Remote.serve ~page_cache_mb:page_cache ~input:Unix.stdin ~output:Unix.stdout
             shard_file
       with e when Sock.is_disconnect e -> ());
      0
    | Some spec ->
      let addr =
        match Sock.parse spec with Ok a -> a | Error msg -> failwith ("--listen " ^ msg)
      in
      let meta = Shard.read_shard_meta shard_file in
      let lfd = Sock.listen addr in
      Fun.protect ~finally:(fun () -> Sock.close_listener addr lfd) @@ fun () ->
      Printf.eprintf "bpq: worker for shard %d/%d serving %s on %s\n%!" meta.Shard.shard
        meta.Shard.shards shard_file (Sock.to_string addr);
      let served = ref 0 in
      while accept = 0 || !served < accept do
        let conn, _ = Unix.accept lfd in
        (try Remote.serve ~page_cache_mb:page_cache ~input:conn ~output:conn shard_file
         with e when Sock.is_disconnect e -> ());
        (try Unix.close conn with Unix.Unix_error _ -> ());
        incr served
      done;
      0
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:"Serve one shard file over the framed fetch protocol (spawned by a sharded \
             coordinator, or started standalone with --listen).")
    Term.(const run $ shard_file $ listen $ accept $ page_cache)

(* run *)

let run_cmd =
  let patterns_arg =
    Arg.(non_empty & opt_all file []
         & info [ "q"; "query" ] ~docv:"FILE"
             ~doc:"Pattern query file (repeatable; several queries evaluate as a batch).")
  in
  let constraints_opt =
    Arg.(value & opt (some file) None
         & info [ "a"; "constraints" ] ~docv:"FILE"
             ~doc:"Access constraints (required for text graphs; snapshots embed theirs).")
  in
  let limit =
    Arg.(value & opt (some int) None & info [ "limit" ] ~docv:"N" ~doc:"Stop after N matches.")
  in
  let fallback =
    Arg.(value & flag
         & info [ "fallback" ]
             ~doc:"If the query is not effectively bounded, evaluate conventionally instead of failing.")
  in
  let explain =
    Arg.(value & flag
         & info [ "explain" ]
             ~doc:"Print the EXPLAIN-ANALYZE report (per-operation estimate vs realised) instead of the matches.")
  in
  let jobs =
    Arg.(value & opt int (Pool.default_jobs ())
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Evaluate on N domains — batched queries fan out across the pool, and \
                   each query's own plan execution and match search parallelise on it too \
                   (default: \\$BPQ_JOBS or the recommended domain count; 1 forces \
                   sequential evaluation).  Answers are identical for every N.")
  in
  let cache_mb =
    Arg.(value & opt int 64
         & info [ "cache" ] ~docv:"MB"
             ~doc:"Cross-query cache budget in megabytes — plan, fetch and result tiers \
                   (default 64; 0 disables caching).")
  in
  let cache_stats =
    Arg.(value & flag
         & info [ "cache-stats" ] ~doc:"Print cache hit/miss/eviction counters after evaluation.")
  in
  let backend_arg =
    Arg.(value & opt backend_conv Store.Mem
         & info [ "backend" ] ~docv:"B"
             ~doc:"Storage backend: 'mem' loads a snapshot fully, 'paged' serves it \
                   out-of-core through a page cache, 'sharded' runs worker processes \
                   over a `bpq shard` directory.  Answers are identical in every case.")
  in
  let workers_arg =
    Arg.(value & opt (some string) None
         & info [ "workers" ] ~docv:"ADDRS"
             ~doc:"With --backend sharded: comma-separated worker addresses \
                   (unix:PATH or HOST:PORT, one per shard, any order) of externally \
                   started `bpq worker --listen` processes, instead of spawning them.")
  in
  let page_cache_arg =
    Arg.(value & opt int 16
         & info [ "page-cache" ] ~docv:"MB"
             ~doc:"Page-cache budget for --backend paged (default 16).")
  in
  let io_stats_arg =
    Arg.(value & flag
         & info [ "io-stats" ]
             ~doc:"Print pages faulted / bytes read / cache hits after evaluation (paged backend).")
  in
  let no_pushdown_arg =
    Arg.(value & flag
         & info [ "no-pushdown" ]
             ~doc:"With --backend sharded: disable worker-side plan pushdown and use \
                   plain batched fetching (answers are identical either way; pushdown \
                   is on by default and sends far fewer bytes).")
  in
  let readahead_arg =
    Arg.(value & opt int 8
         & info [ "readahead" ] ~docv:"N"
             ~doc:"Pages to prefetch after a sequential miss with --backend paged \
                   (default 8; 0 disables).")
  in
  let print_cache_stats cache =
    let s = Qcache.stats cache in
    let t = Bpq_util.Table.create [ "tier"; "hits"; "misses"; "evictions"; "other" ] in
    Bpq_util.Table.add_row t
      [ "plan"; string_of_int s.Qcache.plan_hits; string_of_int s.Qcache.plan_misses; "-"; "" ];
    Bpq_util.Table.add_row t
      [ "fetch";
        string_of_int s.Qcache.fetch_hits;
        string_of_int s.Qcache.fetch_misses;
        string_of_int s.Qcache.fetch_evictions;
        Printf.sprintf "%d bypasses" s.Qcache.fetch_bypasses ];
    Bpq_util.Table.add_row t
      [ "result";
        string_of_int s.Qcache.result_hits;
        string_of_int s.Qcache.result_misses;
        "-";
        Printf.sprintf "%d stale, %d gens bumped" s.Qcache.result_stale s.Qcache.gens_bumped ];
    Bpq_util.Table.print t
  in
  let print_matches matches =
    List.iter
      (fun m ->
        print_endline
          (String.concat " "
             (Array.to_list (Array.mapi (fun u v -> Printf.sprintf "u%d=%d" u v) m))))
      matches
  in
  let print_relation sim =
    Array.iteri
      (fun u vs ->
        Printf.printf "u%d: %s\n" u
          (String.concat " " (List.map string_of_int (Array.to_list vs))))
      sim
  in
  (* Conventional evaluation needs the whole graph in memory; the paged
     backend deliberately never materialises it. *)
  let run_fallback semantics fb_graph limit q =
    match fb_graph with
    | None ->
      print_endline "# not bounded; --fallback needs the full graph (unavailable with --backend paged)";
      1
    | Some g ->
      (match semantics with
       | Actualized.Subgraph ->
         let ms = Bpq_matcher.Vf2.matches ?limit g q in
         Printf.printf "# not bounded; conventional VF2 found %d matches\n" (List.length ms)
       | Actualized.Simulation ->
         let sim = Bpq_matcher.Gsim.run g q in
         Printf.printf "# not bounded; conventional gsim relation size %d\n"
           (Bpq_matcher.Gsim.relation_size sim));
      0
  in
  let run_single pool costs semantics fb_graph (src : Exec.source) q limit fallback explain cache =
    let plan =
      match cache with
      | Some c -> Qcache.plan_for_with c ?costs semantics src q
      | None -> Qplan.generate ?costs semantics q src.Exec.constraints
    in
    let fetch = Option.map Qcache.fetch_tier cache in
    match plan with
    | Some plan when explain ->
      let analysis = Explain.analyze_with ~pool ?costs src plan in
      print_string analysis.Explain.report;
      0
    | Some plan ->
      (match semantics with
       | Actualized.Subgraph ->
         let matches, stats = Bounded_eval.matches_with ~pool ?cache:fetch src plan in
         let matches = match limit with Some l -> List.filteri (fun i _ -> i < l) matches | None -> matches in
         print_matches matches;
         Printf.printf "# %d matches, accessed %d data items (graph size %d)\n"
           (List.length matches) (Exec.accessed stats) src.Exec.graph_size
       | Actualized.Simulation ->
         let sim, stats = Bounded_eval.sim_with ~pool ?cache:fetch src plan in
         print_relation sim;
         Printf.printf "# relation size %d, accessed %d data items (graph size %d)\n"
           (Bpq_matcher.Gsim.relation_size sim)
           (Exec.accessed stats) src.Exec.graph_size);
      0
    | None when fallback -> run_fallback semantics fb_graph limit q
    | None ->
      prerr_endline (Ebchk.report q (Ebchk.diagnose semantics q src.Exec.constraints));
      prerr_endline "hint: pass --fallback to evaluate conventionally";
      1
  in
  (* Several -q files: plan and evaluate them as one batch on the pool.
     Answers are printed in command-line order and are identical to a
     sequential (--jobs 1) run. *)
  let run_batch pool semantics fb_graph src queries limit fallback cache =
    let outcomes =
      Batch.run_patterns ~pool ~intra:pool ?cache ?limit semantics src (List.map snd queries)
    in
    let status = ref 0 in
    List.iter2
      (fun (path, q) (_, outcome) ->
        Printf.printf "== %s ==\n" path;
        match outcome with
        | Some (Batch.Answer (Batch.Matches matches, elapsed)) ->
          let matches = match limit with Some l -> List.filteri (fun i _ -> i < l) matches | None -> matches in
          print_matches matches;
          Printf.printf "# %d matches (%.2fms)\n" (List.length matches) (elapsed *. 1000.0)
        | Some (Batch.Answer (Batch.Relation sim, elapsed)) ->
          print_relation sim;
          Printf.printf "# relation size %d (%.2fms)\n"
            (Bpq_matcher.Gsim.relation_size sim) (elapsed *. 1000.0)
        | Some (Batch.Timeout elapsed) ->
          Printf.printf "# did not finish (> %.2fs)\n" elapsed
        | None when fallback ->
          if run_fallback semantics fb_graph limit q <> 0 then status := 1
        | None ->
          print_endline "# not effectively bounded (see `bpq check`)";
          status := 1)
      queries outcomes;
    !status
  in
  let run semantics graph patterns constraints limit fallback explain jobs cache_mb cache_stats
      backend page_cache readahead io_stats workers no_pushdown wal =
    guard @@ fun () ->
    let cache = if cache_mb <= 0 then None else Some (Qcache.of_megabytes cache_mb) in
    let pool = Pool.create jobs in
    Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
    (* Resolve the storage backend: a shard directory spawns (or
       connects to) worker processes; a snapshot opens directly (its
       constraints, indexes and statistics are embedded); a text graph
       builds the schema in memory. *)
    let store, costs =
      if backend = Store.Sharded then begin
        (match constraints with
         | Some _ ->
           failwith (Printf.sprintf "%s: shard manifests embed their constraints; drop -a" graph)
         | None -> ());
        (open_sharded ?workers ~pushdown:(not no_pushdown) graph, None)
      end
      else if Graph_io.is_snapshot graph then begin
        (match constraints with
         | Some _ ->
           failwith (Printf.sprintf "%s: snapshots embed their constraints; drop -a" graph)
         | None -> ());
        let store =
          with_file graph (fun () ->
              Store.open_snapshot ~backend ~page_cache_mb:page_cache ~readahead graph)
        in
        (store, Option.map Costs.make (Store.selectivity store))
      end
      else begin
        (match backend with
         | Store.Paged ->
           failwith "--backend paged needs a snapshot (build one with `bpq freeze`)"
         | Store.Sharded -> assert false (* handled above *)
         | Store.Mem -> ());
        let cfile =
          match constraints with
          | Some c -> c
          | None ->
            failwith
              (Printf.sprintf "%s: text graphs need -a CONSTRAINTS (or freeze a snapshot first)"
                 graph)
        in
        let tbl = Label.create_table () in
        let g = with_file graph (fun () -> Graph_io.load tbl graph) in
        let a = parse_constraints tbl cfile in
        let schema = Schema.build ~pool g a in
        (Store.of_schema schema, Some (Costs.of_graph g))
      end
    in
    Fun.protect ~finally:(fun () -> Store.close store) @@ fun () ->
    (* The delta log attaches before [source]: queries then read through
       the replayed overlay (text graphs fail typed — their stores have
       no snapshot generation to pair a log with). *)
    Option.iter (attach_wal_or_fail store) wal;
    let tbl = Store.table store in
    let queries = List.map (fun path -> (path, load_pattern tbl path)) patterns in
    let src = Store.source store in
    let fb_graph = Option.map Schema.graph (Store.schema store) in
    match Store.schema store with
    | Some schema when not (Schema.satisfied schema) ->
      prerr_endline "error: the graph does not satisfy the access constraints:";
      List.iter
        (fun (c, realised) ->
          Printf.eprintf "  %s realised %d\n" (Constr.to_string tbl c) realised)
        (Schema.violations schema);
      2
    | _ ->
      let status =
        match queries with
        | [ (_, q) ] ->
          run_single pool costs semantics fb_graph src q limit fallback explain cache
        | _ when explain ->
          List.iter
            (fun (path, q) ->
              Printf.printf "== %s ==\n" path;
              match Qplan.generate ?costs semantics q src.Exec.constraints with
              | Some plan ->
                print_string (Explain.analyze_with ~pool ?costs src plan).Explain.report
              | None -> print_endline "# not effectively bounded (see `bpq check`)")
            queries;
          0
        | _ -> run_batch pool semantics fb_graph src queries limit fallback cache
      in
      if cache_stats then Option.iter print_cache_stats cache;
      (* Shard traffic and overlay read-through counters ride along with
         both diagnostics views; the default output stays byte-identical
         to the other backends (and to a writeless run). *)
      if io_stats || explain then begin
        Option.iter print_shard_traffic (Store.remote store);
        print_overlay_counters store
      end;
      if io_stats && Option.is_none (Store.remote store) then begin
        match Store.io_counters store with
        | Some c ->
          Printf.printf
            "# io: %d pages faulted, %d bytes read, %d cache hits, %d prefetched\n"
            c.Paged.faults c.Paged.bytes_read c.Paged.hits c.Paged.prefetched
        | None -> print_endline "# io: in-memory backend, no paging"
      end;
      status
  in
  Cmd.v (Cmd.info "run" ~doc:"Evaluate pattern queries through their bounded plans.")
    Term.(const run $ semantics_arg $ graph_arg $ patterns_arg $ constraints_opt $ limit
          $ fallback $ explain $ jobs $ cache_mb $ cache_stats $ backend_arg $ page_cache_arg
          $ readahead_arg $ io_stats_arg $ workers_arg $ no_pushdown_arg $ wal_arg)

(* serve *)

(* One live store may back several serving slots: every accepted write
   publishes a fresh source over the same store, and in-flight queries
   keep their pre-write slot until they drain.  Slot closes are
   therefore refcount releases; the store closes when the last slot
   over it goes (a compaction swaps in a whole new store, after which
   the old one's refs drain to zero). *)
type serving = {
  sv_store : Store.t;
  sv_costs : Costs.t option;
  sv_refs : int Atomic.t;
}

let serve_cmd =
  let listen_arg =
    Arg.(value & opt string "unix:bpq.sock"
         & info [ "listen" ] ~docv:"ADDR"
             ~doc:"Listen address: unix:PATH, a bare path containing '/', HOST:PORT, or \
                   :PORT (loopback).")
  in
  let constraints_opt =
    Arg.(value & opt (some file) None
         & info [ "a"; "constraints" ] ~docv:"FILE"
             ~doc:"Access constraints (required for text graphs; snapshots embed theirs).")
  in
  let jobs =
    Arg.(value & opt int (Pool.default_jobs ())
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Evaluate queries on N domains; concurrent clients' queries spread \
                   across the pool.")
  in
  let cache_mb =
    Arg.(value & opt int 64
         & info [ "cache" ] ~docv:"MB"
             ~doc:"Cross-query cache budget in megabytes (default 64; 0 disables).")
  in
  let backend_arg =
    Arg.(value & opt backend_conv Store.Mem
         & info [ "backend" ] ~docv:"B"
             ~doc:"Storage backend: 'mem', 'paged' (out-of-core) or 'sharded' (worker \
                   processes over a `bpq shard` directory).")
  in
  let page_cache_arg =
    Arg.(value & opt int 16
         & info [ "page-cache" ] ~docv:"MB" ~doc:"Page-cache budget for --backend paged.")
  in
  let readahead_arg =
    Arg.(value & opt int 8
         & info [ "readahead" ] ~docv:"N"
             ~doc:"Pages to prefetch after a sequential miss with --backend paged \
                   (default 8; 0 disables).")
  in
  let no_coalesce_arg =
    Arg.(value & flag
         & info [ "no-coalesce" ]
             ~doc:"Disable single-flight coalescing of concurrent identical queries \
                   (each request then evaluates independently; answers are identical \
                   either way).")
  in
  let max_inflight_arg =
    Arg.(value & opt int 64
         & info [ "max-inflight" ] ~docv:"N"
             ~doc:"Queries queued or running at once; beyond this, requests get a typed \
                   'overloaded' error immediately.")
  in
  let max_conns_arg =
    Arg.(value & opt int 64
         & info [ "max-conns" ] ~docv:"N" ~doc:"Concurrent client connections.")
  in
  let read_timeout_arg =
    Arg.(value & opt float 300.0
         & info [ "read-timeout" ] ~docv:"S"
             ~doc:"Per-connection idle read timeout in seconds (0 disables).")
  in
  let write_timeout_arg =
    Arg.(value & opt float 30.0
         & info [ "write-timeout" ] ~docv:"S"
             ~doc:"Per-connection write timeout in seconds (0 disables).")
  in
  let query_timeout_arg =
    Arg.(value & opt float 0.0
         & info [ "query-timeout" ] ~docv:"S"
             ~doc:"Per-query evaluation budget in seconds (0 disables); an expired query \
                   answers with a typed 'timeout' error.")
  in
  let no_pushdown_arg =
    Arg.(value & flag
         & info [ "no-pushdown" ]
             ~doc:"With --backend sharded: disable worker-side plan pushdown and use \
                   plain batched fetching (answers are identical either way).")
  in
  (* One resolution path for the initial open and every live reload: a
     snapshot reopens (picking up a refreshed file atomically renamed
     into place); a text graph reloads and rebuilds its schema. *)
  let open_store ~pool ~backend ~page_cache ~readahead ~pushdown graph constraints =
    if backend = Store.Sharded then begin
      (match constraints with
       | Some _ ->
         failwith (Printf.sprintf "%s: shard manifests embed their constraints; drop -a" graph)
       | None -> ());
      (open_sharded ~pushdown graph, None)
    end
    else if Graph_io.is_snapshot graph then begin
      (match constraints with
       | Some _ -> failwith (Printf.sprintf "%s: snapshots embed their constraints; drop -a" graph)
       | None -> ());
      let store =
        with_file graph (fun () ->
            Store.open_snapshot ~backend ~page_cache_mb:page_cache ~readahead graph)
      in
      (store, Option.map Costs.make (Store.selectivity store))
    end
    else begin
      (match backend with
       | Store.Paged -> failwith "--backend paged needs a snapshot (build one with `bpq freeze`)"
       | Store.Sharded -> assert false (* handled above *)
       | Store.Mem -> ());
      let cfile =
        match constraints with
        | Some c -> c
        | None ->
          failwith
            (Printf.sprintf "%s: text graphs need -a CONSTRAINTS (or freeze a snapshot first)" graph)
      in
      let tbl = Label.create_table () in
      let g = with_file graph (fun () -> Graph_io.load tbl graph) in
      let a = parse_constraints tbl cfile in
      let schema = Schema.build ~pool g a in
      if not (Schema.satisfied schema) then
        failwith (Printf.sprintf "%s: the graph does not satisfy the access constraints" graph);
      (Store.of_schema ~selectivity:(Gstats.selectivity g) schema, Some (Costs.of_graph g))
    end
  in
  let run semantics graph constraints listen jobs cache_mb backend page_cache readahead
      no_coalesce max_inflight max_conns read_timeout write_timeout query_timeout
      no_pushdown wal =
    guard @@ fun () ->
    let pushdown = not no_pushdown in
    let addr =
      match Sock.parse listen with Ok a -> a | Error msg -> failwith ("--listen " ^ msg)
    in
    let cache = if cache_mb <= 0 then None else Some (Qcache.of_megabytes cache_mb) in
    let pool = Pool.create jobs in
    Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
    let serving store costs =
      { sv_store = store; sv_costs = costs; sv_refs = Atomic.make 0 }
    in
    let slot_of sv =
      Atomic.incr sv.sv_refs;
      { Server.src = Store.source sv.sv_store;
        costs = sv.sv_costs;
        close =
          (fun () ->
            if Atomic.fetch_and_add sv.sv_refs (-1) = 1 then Store.close sv.sv_store) }
    in
    let store0, costs0 =
      open_store ~pool ~backend ~page_cache ~readahead ~pushdown graph constraints
    in
    Option.iter (attach_wal_or_fail store0) wal;
    (* The stats hook follows reloads so `stats` always reports the live
       generation's I/O counters. *)
    let current = ref (serving store0 costs0) in
    let reload () =
      let store, costs =
        open_store ~pool ~backend ~page_cache ~readahead ~pushdown graph constraints
      in
      let sv = serving store costs in
      current := sv;
      slot_of sv
    in
    (* Write-path hooks (with --wal): serialised on one mutex so the
       current-serving pointer and the generation counter move together;
       the store's own write lock additionally serialises against any
       other writer on the same log. *)
    let hook_mu = Mutex.create () in
    let generation = ref 0 in
    let write req =
      Mutex.lock hook_mu;
      Fun.protect ~finally:(fun () -> Mutex.unlock hook_mu) @@ fun () ->
      match Json.member "ops" req with
      | None -> Error ("bad_request", "missing \"ops\" (an array of delta operations)")
      | Some (Json.Arr l) ->
        let rec parse acc i = function
          | [] -> Ok (List.rev acc)
          | j :: rest -> (
            match Wal.op_of_json j with
            | Ok op -> parse (op :: acc) (i + 1) rest
            | Error e -> Error (Printf.sprintf "ops[%d]: %s" i e))
        in
        (match parse [] 0 l with
         | Error e -> Error ("bad_request", e)
         | Ok ops -> (
           let sv = !current in
           match Store.apply_ops sv.sv_store ops with
           | Error msg -> Error ("bad_request", msg)
           | Ok n ->
             let w = Option.get (Store.wal sv.sv_store) in
             let ov = Option.get (Store.overlay sv.sv_store) in
             Ok
               ( Some (slot_of sv),
                 [ ("applied", Json.Int n);
                   ("generation", Json.Int !generation);
                   ("data_version", Json.Int (Overlay.version ov));
                   ("wal_bytes", Json.Int (Wal.bytes w));
                   ("overlay_ops", Json.Int (Overlay.n_ops ov)) ] )))
      | Some _ -> Error ("bad_request", "\"ops\" must be an array")
    in
    let compact () =
      Mutex.lock hook_mu;
      Fun.protect ~finally:(fun () -> Mutex.unlock hook_mu) @@ fun () ->
      let sv = !current in
      let ov = Option.get (Store.overlay sv.sv_store) in
      let folded = Overlay.n_ops ov in
      match Store.compact sv.sv_store with
      | exception Failure msg -> Error ("bad_request", msg)
      | path ->
        (* The old store keeps serving its frozen pre-compaction view
           until its slots drain; the new generation reopens the folded
           snapshot and re-attaches the (now empty) log, carrying the
           per-label write generations so pre-compaction result-cache
           entries stay valid. *)
        let store, costs =
          open_store ~pool ~backend ~page_cache ~readahead ~pushdown graph constraints
        in
        Option.iter (fun w -> ignore (Store.attach_wal ~carry:ov store w)) wal;
        let sv' = serving store costs in
        incr generation;
        current := sv';
        Ok
          ( Some (slot_of sv'),
            [ ("generation", Json.Int !generation);
              ("snapshot", Json.Str path);
              ("folded_ops", Json.Int folded) ] )
    in
    let extra_stats () =
      let io =
        match Store.io_counters (!current).sv_store with
        | Some c ->
          [ ("io",
             Bpq_util.Jsonx.Obj
               [ ("faults", Bpq_util.Jsonx.Int c.Paged.faults);
                 ("bytes_read", Bpq_util.Jsonx.Int c.Paged.bytes_read);
                 ("hits", Bpq_util.Jsonx.Int c.Paged.hits);
                 ("prefetched", Bpq_util.Jsonx.Int c.Paged.prefetched) ]) ]
        | None -> []
      in
      let shards =
        match Store.remote (!current).sv_store with
        | Some r ->
          let st : Remote.stats = Remote.stats r in
          let ints a = Bpq_util.Jsonx.Arr (List.map (fun v -> Bpq_util.Jsonx.Int v) (Array.to_list a)) in
          [ ("shards",
             Bpq_util.Jsonx.Obj
               [ ("count", Bpq_util.Jsonx.Int st.shards);
                 ("rounds", Bpq_util.Jsonx.Int st.rounds);
                 ("messages", ints st.messages);
                 ("bytes_sent", ints st.bytes_sent);
                 ("bytes_received", ints st.bytes_received);
                 ("items", ints st.items);
                 ("server_ns", ints st.server_ns) ]) ]
        | None -> []
      in
      let write_path =
        match Store.wal (!current).sv_store with
        | None -> []
        | Some w ->
          let ov = Option.get (Store.overlay (!current).sv_store) in
          [ ("write_path",
             Bpq_util.Jsonx.Obj
               [ ("generation", Bpq_util.Jsonx.Int !generation);
                 ("data_version", Bpq_util.Jsonx.Int (Overlay.version ov));
                 ("wal_bytes", Bpq_util.Jsonx.Int (Wal.bytes w));
                 ("wal_records", Bpq_util.Jsonx.Int (Wal.records w));
                 ("overlay_ops", Bpq_util.Jsonx.Int (Overlay.n_ops ov));
                 ("overlay_nodes", Bpq_util.Jsonx.Int (Overlay.net_nodes ov));
                 ("overlay_edges", Bpq_util.Jsonx.Int (Overlay.net_edges ov)) ]) ]
      in
      io @ shards @ write_path
    in
    let write_metrics () =
      match Store.wal (!current).sv_store with
      | None -> ""
      | Some w ->
        let ov = Option.get (Store.overlay (!current).sv_store) in
        Printf.sprintf
          "# HELP bpq_generation Snapshot generation (compactions since start).\n\
           # TYPE bpq_generation gauge\nbpq_generation %d\n\
           # HELP bpq_wal_bytes Delta log size on disk, header included.\n\
           # TYPE bpq_wal_bytes gauge\nbpq_wal_bytes %d\n\
           # HELP bpq_wal_records Replayable records in the delta log.\n\
           # TYPE bpq_wal_records gauge\nbpq_wal_records %d\n\
           # HELP bpq_overlay_ops Operations live in the read-through overlay.\n\
           # TYPE bpq_overlay_ops gauge\nbpq_overlay_ops %d\n"
          !generation (Wal.bytes w) (Wal.records w) (Overlay.n_ops ov)
    in
    let shard_metrics () =
      match Store.remote (!current).sv_store with
      | None -> ""
      | Some r ->
        let st : Remote.stats = Remote.stats r in
        let b = Buffer.create 512 in
        let per_shard name help values =
          Printf.bprintf b "# HELP %s %s\n# TYPE %s counter\n" name help name;
          Array.iteri (fun s v -> Printf.bprintf b "%s{shard=\"%d\"} %d\n" name s v) values
        in
        per_shard "bpq_shard_messages_total" "Request frames sent to each worker."
          st.messages;
        per_shard "bpq_shard_bytes_sent_total" "Request bytes sent to each worker."
          st.bytes_sent;
        per_shard "bpq_shard_bytes_received_total" "Reply bytes received from each worker."
          st.bytes_received;
        per_shard "bpq_shard_items_total" "Result items decoded from each worker." st.items;
        per_shard "bpq_shard_server_ns_total"
          "Worker-reported evaluation time (ns) for pushed operations." st.server_ns;
        Printf.bprintf b
          "# HELP bpq_shard_rounds_total Batched request rounds (supersteps).\n\
           # TYPE bpq_shard_rounds_total counter\nbpq_shard_rounds_total %d\n" st.rounds;
        Buffer.contents b
    in
    let extra_metrics () = shard_metrics () ^ write_metrics () in
    let opt_pos v = if v > 0.0 then Some v else None in
    (* With --wal, generations roll through write/compact; an operator
       [reload] racing live appends would replay a log another handle is
       writing, so the op is disabled then. *)
    let reload = if wal = None then Some reload else None in
    let write_hook = if wal = None then None else Some write in
    let compact_hook = if wal = None then None else Some compact in
    let server =
      Server.create ?cache ~max_inflight ~max_connections:max_conns
        ?query_timeout:(opt_pos query_timeout) ~semantics ~coalesce:(not no_coalesce)
        ?reload ?write:write_hook ?compact:compact_hook ~extra_stats ~extra_metrics ~pool
        (slot_of !current)
    in
    let stop_on signal =
      try Sys.set_signal signal (Sys.Signal_handle (fun _ -> Server.request_stop server))
      with Invalid_argument _ | Sys_error _ -> ()
    in
    stop_on Sys.sigint;
    stop_on Sys.sigterm;
    let lfd = Sock.listen addr in
    Printf.printf "bpq: serving %s on %s (%d jobs, backend %s)\n%!" graph (Sock.to_string addr)
      (Pool.size pool) (backend_name backend);
    Fun.protect ~finally:(fun () -> Sock.close_listener addr lfd) @@ fun () ->
    Server.serve ?read_timeout:(opt_pos read_timeout) ?write_timeout:(opt_pos write_timeout)
      server lfd;
    print_endline "bpq: shut down";
    0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve pattern queries from a warm engine over a socket (line-delimited JSON).")
    Term.(const run $ semantics_arg $ graph_arg $ constraints_opt $ listen_arg $ jobs
          $ cache_mb $ backend_arg $ page_cache_arg $ readahead_arg $ no_coalesce_arg
          $ max_inflight_arg $ max_conns_arg $ read_timeout_arg $ write_timeout_arg
          $ query_timeout_arg $ no_pushdown_arg $ wal_arg)

let () =
  let doc = "bounded evaluation of graph pattern queries (ICDE'15 reproduction)" in
  let info = Cmd.info "bpq" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ gen_cmd; stats_cmd; discover_cmd; check_cmd; plan_cmd; freeze_cmd; shard_cmd;
            worker_cmd; run_cmd; serve_cmd; apply_cmd; compact_cmd ]))
