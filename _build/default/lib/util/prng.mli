(** Deterministic splittable pseudo-random number generator.

    All dataset generators and query-workload generators in this repository
    draw randomness from this module rather than from [Stdlib.Random], so
    that every experiment is reproducible from a single integer seed.  The
    core is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014), which has a
    cheap, well-distributed [split] operation: independent generators can be
    derived for sub-tasks without sharing mutable state. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator determined by [seed]. *)

val split : t -> t
(** [split t] derives an independent generator and advances [t]. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val bits64 : t -> int64
(** [bits64 t] returns 64 uniformly distributed bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in the inclusive range [\[lo, hi\]]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** [pick t arr] is a uniform element of [arr] (which must be non-empty). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val zipf : t -> n:int -> s:float -> int
(** [zipf t ~n ~s] samples a rank in [\[0, n)] from a Zipf distribution with
    exponent [s], by inversion on the precomputed harmonic weights.  Used by
    the DBpedia-like and Web-like generators to skew label frequencies. *)

val geometric : t -> p:float -> int
(** [geometric t ~p] is the number of failures before the first success of a
    Bernoulli([p]) trial; [p] must be in (0, 1]. *)
