(** Small descriptive-statistics helpers used when reporting experiment
    series (the paper reports averages over three runs; we do the same). *)

val mean : float list -> float
(** Mean of a non-empty list; [nan] on the empty list. *)

val median : float list -> float
val minimum : float list -> float
val maximum : float list -> float

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,1\]], nearest-rank on the sorted
    values. *)

val geometric_mean : float list -> float
(** Used for averaging speed-up factors across queries. *)
