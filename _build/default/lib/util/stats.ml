let mean = function
  | [] -> Float.nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let sorted xs = List.sort Float.compare xs

let percentile p xs =
  match sorted xs with
  | [] -> Float.nan
  | sorted_xs ->
    let arr = Array.of_list sorted_xs in
    let n = Array.length arr in
    let rank = int_of_float (Float.round (p *. float_of_int (n - 1))) in
    arr.(max 0 (min (n - 1) rank))

let median xs = percentile 0.5 xs

let minimum = function [] -> Float.nan | xs -> List.fold_left Float.min Float.infinity xs
let maximum = function [] -> Float.nan | xs -> List.fold_left Float.max Float.neg_infinity xs

let geometric_mean = function
  | [] -> Float.nan
  | xs ->
    let log_sum = List.fold_left (fun acc x -> acc +. Float.log x) 0.0 xs in
    Float.exp (log_sum /. float_of_int (List.length xs))
