let now () = Unix.gettimeofday ()

let time f =
  let start = now () in
  let result = f () in
  (result, now () -. start)

let time_ms f =
  let result, s = time f in
  (result, s *. 1000.0)

type deadline =
  | Never
  | Until of { limit : float; mutable countdown : int }

exception Timeout

let no_deadline = Never
let check_every = 4096

let deadline_after s = Until { limit = now () +. s; countdown = check_every }

let expired = function
  | Never -> false
  | Until d ->
    d.countdown <- d.countdown - 1;
    if d.countdown > 0 then false
    else begin
      d.countdown <- check_every;
      now () > d.limit
    end
