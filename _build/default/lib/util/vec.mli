(** Growable vector of unboxed integers.

    OCaml 5.1 predates [Stdlib.Dynarray]; this is the int-specialised
    equivalent used throughout the graph builder and the plan executor, where
    node identifiers are accumulated in tight loops. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val get : t -> int -> int
val set : t -> int -> int -> unit
val push : t -> int -> unit
val pop : t -> int
(** [pop t] removes and returns the last element.  @raise Invalid_argument
    on an empty vector. *)

val clear : t -> unit
val is_empty : t -> bool
val to_array : t -> int array
(** [to_array t] copies the live prefix into a fresh array. *)

val of_array : int array -> t
val iter : (int -> unit) -> t -> unit
val exists : (int -> bool) -> t -> bool
val unsafe_data : t -> int array
(** The backing store; only indices [< length t] are meaningful. *)

val sort_uniq : t -> unit
(** Sorts the contents ascending and removes duplicates in place. *)
