lib/util/prng.mli:
