lib/util/stats.mli:
