lib/util/timer.mli:
