lib/util/vec.mli:
