lib/util/prng.ml: Array Float Hashtbl Int64
