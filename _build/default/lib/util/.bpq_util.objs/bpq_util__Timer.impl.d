lib/util/timer.ml: Unix
