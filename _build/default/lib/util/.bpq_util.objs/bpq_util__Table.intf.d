lib/util/table.mli:
