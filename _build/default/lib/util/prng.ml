(* SplitMix64.  State is a single 64-bit counter advanced by a fixed odd
   gamma; output is a finalizing hash of the state, so streams obtained via
   [split] are statistically independent. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = mix (bits64 t) }
let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let mask = Int64.of_int max_int in
  let rec go () =
    let r = Int64.to_int (Int64.logand (bits64 t) mask) in
    let v = r mod bound in
    if r - v > max_int - bound + 1 then go () else v
  in
  go ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(* Zipf sampling by inversion on a memoised CDF; label universes are small
   (at most a few thousand ranks) so the table cost is negligible. *)
let zipf_tables : (int * float, float array) Hashtbl.t = Hashtbl.create 8

let zipf_cdf n s =
  match Hashtbl.find_opt zipf_tables (n, s) with
  | Some cdf -> cdf
  | None ->
    let cdf = Array.make n 0.0 in
    let total = ref 0.0 in
    for k = 0 to n - 1 do
      total := !total +. (1.0 /. Float.pow (float_of_int (k + 1)) s);
      cdf.(k) <- !total
    done;
    for k = 0 to n - 1 do
      cdf.(k) <- cdf.(k) /. !total
    done;
    Hashtbl.replace zipf_tables (n, s) cdf;
    cdf

let zipf t ~n ~s =
  if n <= 0 then invalid_arg "Prng.zipf: n must be positive";
  let cdf = zipf_cdf n s in
  let u = float t 1.0 in
  (* Binary search for the first rank whose cumulative weight covers u. *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cdf.(mid) < u then search (mid + 1) hi else search lo mid
  in
  search 0 (n - 1)

let geometric t ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Prng.geometric: p must be in (0,1]";
  if p >= 1.0 then 0
  else
    let u = float t 1.0 in
    int_of_float (Float.log1p (-.u) /. Float.log1p (-.p))
