(** Textual (de)serialisation of access constraints.

    One constraint per line:
    {v
    # comment
    year,award -> movie 4
    movie -> actor 30
    - -> country 196
    v}
    The source side is a comma-separated label list, or ["-"] for the
    empty source of a type-(1) constraint.  Labels may not contain commas,
    spaces or the arrow. *)

open Bpq_graph

val parse_line : Label.table -> string -> Constr.t option
(** [None] for blank lines and comments.
    @raise Failure on malformed input. *)

val parse_string : Label.table -> string -> Constr.t list
(** @raise Failure with a line-numbered message. *)

val load : Label.table -> string -> Constr.t list

val to_line : Label.table -> Constr.t -> string
(** Inverse of {!parse_line} (modulo whitespace). *)

val save : Label.table -> Constr.t list -> string -> unit
val output : out_channel -> Label.table -> Constr.t list -> unit
