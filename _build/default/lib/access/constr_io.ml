open Bpq_graph

(* Split a line on the first "->", returning (before, after). *)
let split_arrow line =
  let n = String.length line in
  let rec find i =
    if i + 1 >= n then None
    else if line.[i] = '-' && line.[i + 1] = '>' then
      Some (String.sub line 0 i, String.sub line (i + 2) (n - i - 2))
    else find (i + 1)
  in
  find 0

let parse_line tbl raw =
  let line = String.trim raw in
  if line = "" || line.[0] = '#' then None
  else begin
    let src, rest =
      match split_arrow line with
      | Some pair -> pair
      | None -> failwith (Printf.sprintf "malformed constraint %S (expected 'src -> target N')" line)
    in
    let target, bound =
      match List.filter (( <> ) "") (String.split_on_char ' ' (String.trim rest)) with
      | [ t; n ] ->
        (match int_of_string_opt n with
         | Some b -> (t, b)
         | None -> failwith (Printf.sprintf "malformed bound in %S" line))
      | _ -> failwith (Printf.sprintf "malformed constraint %S" line)
    in
    let source =
      match String.trim src with
      | "-" | "" -> []
      | s -> List.map (fun l -> Label.intern tbl (String.trim l)) (String.split_on_char ',' s)
    in
    Some (Constr.make ~source ~target:(Label.intern tbl target) ~bound)
  end

let parse_string tbl s =
  List.filteri (fun _ _ -> true) (String.split_on_char '\n' s)
  |> List.mapi (fun i line -> (i + 1, line))
  |> List.filter_map (fun (line_no, line) ->
         try parse_line tbl line
         with Failure msg -> failwith (Printf.sprintf "line %d: %s" line_no msg))

let load tbl path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let buf = Buffer.create 1024 in
      (try
         while true do
           Buffer.add_string buf (input_line ic);
           Buffer.add_char buf '\n'
         done
       with End_of_file -> ());
      parse_string tbl (Buffer.contents buf))

let to_line tbl (c : Constr.t) =
  let src =
    match c.source with
    | [] -> "-"
    | ls -> String.concat "," (List.map (Label.name tbl) ls)
  in
  Printf.sprintf "%s -> %s %d" src (Label.name tbl c.target) c.bound

let output oc tbl constrs =
  List.iter (fun c -> Printf.fprintf oc "%s\n" (to_line tbl c)) constrs

let save tbl constrs path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output oc tbl constrs)
