lib/access/index.mli: Bpq_graph Constr Digraph
