lib/access/discovery.ml: Array Bpq_graph Constr Digraph Hashtbl Label List Option
