lib/access/constr_io.mli: Bpq_graph Constr Label
