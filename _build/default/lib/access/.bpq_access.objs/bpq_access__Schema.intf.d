lib/access/schema.mli: Bpq_graph Constr Digraph Index Label
