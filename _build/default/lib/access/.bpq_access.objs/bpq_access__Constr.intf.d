lib/access/constr.mli: Bpq_graph Label
