lib/access/constr_io.ml: Bpq_graph Buffer Constr Fun Label List Printf String
