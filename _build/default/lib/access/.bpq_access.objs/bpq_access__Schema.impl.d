lib/access/schema.ml: Bpq_graph Constr Digraph Hashtbl Index List
