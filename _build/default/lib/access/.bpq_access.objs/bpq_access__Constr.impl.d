lib/access/constr.ml: Bpq_graph Label List Printf Stdlib String
