lib/access/index.ml: Array Bpq_graph Bpq_util Constr Digraph Hashtbl List Option Seq
