lib/access/discovery.mli: Bpq_graph Constr Digraph Label
