open Bpq_graph

let type1 ?(max_bound = 4096) g =
  List.filter_map
    (fun l ->
      let n = Digraph.count_label g l in
      if n > 0 && n <= max_bound then
        Some (Constr.make ~source:[] ~target:l ~bound:n)
      else None)
    (Label.all (Digraph.label_table g))

(* Distinct neighbours of [v] bucketed by label, as association pairs. *)
let neighbour_label_groups g v =
  let groups : (Label.t, int list) Hashtbl.t = Hashtbl.create 8 in
  Array.iter
    (fun w ->
      let l = Digraph.label g w in
      let prev = Option.value ~default:[] (Hashtbl.find_opt groups l) in
      Hashtbl.replace groups l (w :: prev))
    (Digraph.neighbours g v);
  groups

let degree_bounds ?(max_bound = 64) g =
  let maxima : (Label.t * Label.t, int) Hashtbl.t = Hashtbl.create 64 in
  Digraph.iter_nodes g (fun v ->
      let l = Digraph.label g v in
      Hashtbl.iter
        (fun l' members ->
          let count = List.length members in
          let key = (l, l') in
          let prev = Option.value ~default:0 (Hashtbl.find_opt maxima key) in
          if count > prev then Hashtbl.replace maxima key count)
        (neighbour_label_groups g v));
  Hashtbl.fold
    (fun (l, l') n acc ->
      if n <= max_bound then Constr.make ~source:[ l ] ~target:l' ~bound:n :: acc
      else acc)
    maxima []

let pair_constraints ?(max_bound = 64) ?(source_count_cap = 2048)
    ?(max_source_labels = 40) ?(key_budget = 3_000_000) g =
  (* One side of every source pair is drawn from a fixed set of "anchor"
     labels: the [max_source_labels] rarest labels under
     [source_count_cap].  The other side may be any label — this is what
     finds constraints like the paper's (actress, year) → (feature film,
     104), whose actress side is population-sized.  The per-node
     enumeration is then bounded by |anchors| * degree instead of
     degree², and the anchor pre-selection never affects soundness: any
     emitted triple is counted over all nodes, and triples whose counting
     would exceed the per-node product cap or the global key budget are
     dropped (poisoned) rather than under-counted. *)
  let anchors =
    Label.all (Digraph.label_table g)
    |> List.filter_map (fun l ->
           let n = Digraph.count_label g l in
           if n > 0 && n <= source_count_cap then Some (n, l) else None)
    |> List.sort compare
    |> List.filteri (fun i _ -> i < max_source_labels)
    |> List.map snd
  in
  let anchor_set = Hashtbl.create 64 in
  List.iter (fun l -> Hashtbl.replace anchor_set l ()) anchors;
  let is_anchor l = Hashtbl.mem anchor_set l in
  (* counts: ((l1, l2, target_label), (a, b)) -> #common neighbours seen. *)
  let counts : (Label.t * Label.t * Label.t, (int * int, int) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 64
  in
  let poisoned : (Label.t * Label.t * Label.t, unit) Hashtbl.t = Hashtbl.create 4 in
  let per_node_cap = 10_000 in
  let total_keys = ref 0 in
  Digraph.iter_nodes g (fun w ->
      let lw = Digraph.label g w in
      let groups =
        List.sort compare
          (Hashtbl.fold (fun l members acc -> (l, members) :: acc)
             (neighbour_label_groups g w) [])
      in
      List.iter
        (fun (la, ga) ->
          if is_anchor la then
            List.iter
              (fun (lb, gb) ->
                (* Anchor pairs are handled once ((la < lb) branch);
                   anchor-with-large pairs always from the anchor side. *)
                if la < lb || ((not (is_anchor lb)) && la <> lb) then begin
                  let triple =
                    if la < lb then (la, lb, lw) else (lb, la, lw)
                  in
                  if Hashtbl.mem poisoned triple then ()
                  else if List.length ga * List.length gb > per_node_cap then
                    Hashtbl.replace poisoned triple ()
                  else begin
                    let table =
                      match Hashtbl.find_opt counts triple with
                      | Some tb -> tb
                      | None ->
                        let tb = Hashtbl.create 16 in
                        Hashtbl.replace counts triple tb;
                        tb
                    in
                    let overflow = ref false in
                    List.iter
                      (fun a ->
                        List.iter
                          (fun b ->
                            let key = if la < lb then (a, b) else (b, a) in
                            match Hashtbl.find_opt table key with
                            | Some prev -> Hashtbl.replace table key (prev + 1)
                            | None ->
                              if !total_keys >= key_budget then overflow := true
                              else begin
                                incr total_keys;
                                Hashtbl.replace table key 1
                              end)
                          gb)
                      ga;
                    if !overflow then Hashtbl.replace poisoned triple ()
                  end
                end)
              groups)
        groups);
  Hashtbl.fold
    (fun ((la, lb, lw) as triple) table acc ->
      if Hashtbl.mem poisoned triple then acc
      else begin
        let n = Hashtbl.fold (fun _ c m -> max m c) table 0 in
        if n >= 1 && n <= max_bound then
          Constr.make ~source:[ la; lb ] ~target:lw ~bound:n :: acc
        else acc
      end)
    counts []

let absent_pair_bounds g ~pairs =
  let norm (a, b) = if a <= b then (a, b) else (b, a) in
  let wanted = List.sort_uniq compare (List.map norm pairs) in
  if wanted = [] then []
  else begin
    let adjacent = Hashtbl.create 256 in
    Digraph.iter_edges g (fun s t ->
        Hashtbl.replace adjacent (norm (Digraph.label g s, Digraph.label g t)) ());
    List.concat_map
      (fun ((l, l') as pair) ->
        if Hashtbl.mem adjacent pair then []
        else if l = l' then [ Constr.make ~source:[ l ] ~target:l' ~bound:0 ]
        else
          [ Constr.make ~source:[ l ] ~target:l' ~bound:0;
            Constr.make ~source:[ l' ] ~target:l ~bound:0 ])
      wanted
  end

let discover ?(max_bound = 64) ?type1_bound ?(max_constraints = 320) ?(max_type1 = 2048) g =
  (* Type-(1) constraints are only useful on genuinely small classes
     (countries, years, ...): a global bound close to a population-sized
     label would make plans fetch a large fraction of the graph. *)
  let type1_bound = Option.value ~default:(max_bound * 4) type1_bound in
  let all =
    type1 ~max_bound:type1_bound g
    @ degree_bounds ~max_bound g
    @ pair_constraints ~max_bound g
  in
  (* Keep only the tightest bound per (source, target). *)
  let best : (Label.t list * Label.t, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (c : Constr.t) ->
      let key = (c.source, c.target) in
      match Hashtbl.find_opt best key with
      | Some b when b <= c.bound -> ()
      | Some _ | None -> Hashtbl.replace best key c.bound)
    all;
  (* Cap the schema size: label-rich graphs would otherwise yield one
     constraint per label pair (tens of thousands), and index building
     scales with the schema.  Type-(1) constraints get their own generous
     cap ([max_type1]) — they seed every cover and their "indexes" are
     just per-label node lists, essentially free.  [max_constraints]
     governs the expensive kinds: type-(2) carries deduction and edge
     coverage, pairs add precision; within a kind the tightest bounds
     win. *)
  let ranked =
    Hashtbl.fold
      (fun (source, target) bound acc -> Constr.make ~source ~target ~bound :: acc)
      best []
    |> List.sort (fun (a : Constr.t) (b : Constr.t) ->
           compare (a.bound, a.source, a.target) (b.bound, b.source, b.target))
  in
  let quota_of_kind c =
    if Constr.is_type1 c then max_type1
    else if Constr.is_type2 c then max_constraints * 17 / 20
    else max_constraints * 3 / 20
  in
  let taken = Hashtbl.create 4 in
  let keep c =
    let kind = min (Constr.arity c) 2 in
    let n = Option.value ~default:0 (Hashtbl.find_opt taken kind) in
    if n < quota_of_kind c then begin
      Hashtbl.replace taken kind (n + 1);
      true
    end
    else false
  in
  List.filter keep ranked
  |> List.sort (fun (a : Constr.t) (b : Constr.t) ->
         match compare (Constr.arity a) (Constr.arity b) with
         | 0 -> compare (a.bound, a.source, a.target) (b.bound, b.source, b.target)
         | c -> c)
