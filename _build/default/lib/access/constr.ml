open Bpq_graph

type t = { source : Label.t list; target : Label.t; bound : int }

let make ~source ~target ~bound =
  if bound < 0 then invalid_arg "Constr.make: negative bound";
  { source = List.sort_uniq compare source; target; bound }

let arity c = List.length c.source
let is_type1 c = c.source = []
let is_type2 c = arity c = 1
let length c = arity c + 2

let compare = Stdlib.compare
let equal a b = compare a b = 0

let to_string tbl c =
  Printf.sprintf "{%s} -> (%s, %d)"
    (String.concat ", " (List.map (Label.name tbl) c.source))
    (Label.name tbl c.target) c.bound
