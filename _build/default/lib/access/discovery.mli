(** Discovering access constraints from data (paper §II, "Discovering
    access constraints").

    The paper lists four practical sources, all implemented here:
    + global label counts — type-(1) constraints [∅ → (l, N)];
    + degree bounds per label pair — type-(2) constraints [l → (l', N)];
    + functional dependencies — the [N = 1] special case of the above
      (e.g. [movie → (year, 1)], [person → (country, 1)]), which simply
      falls out of the degree-bound scan;
    + grouped aggregates over label pairs — general constraints
      [{l₁, l₂} → (l, N)].

    Every returned constraint carries its {e realised} bound, so the source
    graph satisfies it by construction.  [max_bound] prunes constraints too
    loose to be useful (a bound close to [|G|] defeats the purpose). *)

open Bpq_graph

val type1 : ?max_bound:int -> Digraph.t -> Constr.t list
(** One [∅ → (l, count(l))] per label with [0 < count(l) <= max_bound]
    (default 4096). *)

val degree_bounds : ?max_bound:int -> Digraph.t -> Constr.t list
(** For every label pair [(l, l')] with at least one adjacency, the
    constraint [l → (l', N)] where [N] is the maximum number of distinct
    [l']-labeled neighbours over all [l]-labeled nodes; kept when
    [N <= max_bound] (default 64). *)

val pair_constraints :
  ?max_bound:int ->
  ?source_count_cap:int ->
  ?max_source_labels:int ->
  ?key_budget:int ->
  Digraph.t ->
  Constr.t list
(** General constraints [{l₁, l₂} → (l, N)] where at least one source
    label is an {e anchor}: one of the [max_source_labels] (default 40)
    rarest labels of cardinality at most [source_count_cap] (default
    2048).  The other source label is unrestricted, which finds bounds
    like the paper's [(actress, year) → (feature film, 104)].  Per-node
    enumeration is capped, and the table of concrete key pairs is capped
    globally at [key_budget] (default 3M); triples that would exceed
    either cap are dropped entirely, never under-counted, so every
    emitted bound holds on the graph.  [max_bound] defaults to 64. *)

val absent_pair_bounds :
  Digraph.t -> pairs:(Label.t * Label.t) list -> Constr.t list
(** For each requested unordered label pair with {e no} adjacency in the
    graph, the vacuously-satisfied constraints [l → (l', 0)] and
    [l' → (l, 0)].  A query edge between such labels is then covered — its
    bounded evaluation proves the answer empty without fetching anything.
    This is how a schema is aligned with a concrete query load (the
    paper's setup extracts the constraints relevant to the tested
    queries); the implementation scans the edge set once. *)

val discover :
  ?max_bound:int ->
  ?type1_bound:int ->
  ?max_constraints:int ->
  ?max_type1:int ->
  Digraph.t ->
  Constr.t list
(** Union of the three scans, deduplicated (tightest bound per
    (source, target)).  Type-(1) constraints are kept only for labels of
    cardinality at most [type1_bound] (default [4 * max_bound]) — global
    bounds on population-sized labels would defeat bounded evaluation —
    and capped in number at [max_type1] (default 2048; their indexes are
    just per-label node lists).  The costlier type-(2)/pair constraints
    share [max_constraints] (default 320, the ballpark the paper extracts
    per dataset) with per-kind quotas favouring tight bounds.  Result
    ordered by increasing arity then bound. *)
