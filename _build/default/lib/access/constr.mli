(** Access constraints [S → (l, N)] (paper §II).

    A graph satisfies the constraint when every S-labeled node set [V_S]
    has at most [N] common neighbours labeled [l], and an index exists that
    retrieves those neighbours in O(N) time.  The cardinality side lives
    here; the index side is {!Index}.

    Two special shapes get names throughout the paper:
    - type (1), [|S| = 0]: a global bound on the number of [l]-labeled
      nodes;
    - type (2), [|S| = 1]: a per-node bound on [l]-labeled neighbours. *)

open Bpq_graph

type t = private {
  source : Label.t list;  (** Sorted, distinct; [\[\]] for type (1). *)
  target : Label.t;
  bound : int;
}

val make : source:Label.t list -> target:Label.t -> bound:int -> t
(** Sorts and deduplicates [source].
    @raise Invalid_argument if [bound < 0]. *)

val arity : t -> int
(** [|S|]. *)

val is_type1 : t -> bool
val is_type2 : t -> bool

val length : t -> int
(** [|S| + 2], the summand of the paper's total-length measure [|A|]. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val to_string : Label.table -> t -> string
(** E.g. ["{award, year} -> (movie, 4)"] or ["{} -> (country, 196)"]. *)
