type t = int

type table = {
  by_name : (string, int) Hashtbl.t;
  mutable names : string array;
  mutable next : int;
}

let create_table () =
  { by_name = Hashtbl.create 64; names = Array.make 64 ""; next = 0 }

let intern tbl name =
  match Hashtbl.find_opt tbl.by_name name with
  | Some id -> id
  | None ->
    let id = tbl.next in
    if id = Array.length tbl.names then begin
      let names = Array.make (2 * id) "" in
      Array.blit tbl.names 0 names 0 id;
      tbl.names <- names
    end;
    tbl.names.(id) <- name;
    tbl.next <- id + 1;
    Hashtbl.replace tbl.by_name name id;
    id

let find tbl name = Hashtbl.find_opt tbl.by_name name

let name tbl id =
  if id < 0 || id >= tbl.next then invalid_arg "Label.name: unknown label";
  tbl.names.(id)

let count tbl = tbl.next
let all tbl = List.init tbl.next (fun i -> i)
