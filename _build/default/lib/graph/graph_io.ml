let output oc g =
  let tbl = Digraph.label_table g in
  Printf.fprintf oc "# bpq graph: %d nodes, %d edges\n" (Digraph.n_nodes g)
    (Digraph.n_edges g);
  Digraph.iter_nodes g (fun v ->
      let lbl = Label.name tbl (Digraph.label g v) in
      match Digraph.value g v with
      | Value.Null -> Printf.fprintf oc "n %s\n" lbl
      | Value.Int i -> Printf.fprintf oc "n %s %d\n" lbl i
      | Value.Str s -> Printf.fprintf oc "n %s %S\n" lbl s);
  Digraph.iter_edges g (fun s t -> Printf.fprintf oc "e %d %d\n" s t)

let save g path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output oc g)

let parse_value line_no raw =
  let raw = String.trim raw in
  if raw = "" then Value.Null
  else if String.length raw >= 2 && raw.[0] = '"' then
    try Scanf.sscanf raw "%S" (fun s -> Value.Str s)
    with Scanf.Scan_failure _ | Failure _ ->
      failwith (Printf.sprintf "line %d: malformed string literal" line_no)
  else
    match int_of_string_opt raw with
    | Some i -> Value.Int i
    | None -> failwith (Printf.sprintf "line %d: malformed value %S" line_no raw)

let split_first_word s =
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let parse tbl ic =
  let b = Digraph.Builder.create tbl in
  let line_no = ref 0 in
  (try
     while true do
       incr line_no;
       let line = String.trim (input_line ic) in
       if line <> "" && line.[0] <> '#' then begin
         let kind, rest = split_first_word line in
         match kind with
         | "n" ->
           let lbl, value_part = split_first_word (String.trim rest) in
           if lbl = "" then
             failwith (Printf.sprintf "line %d: node without label" !line_no);
           ignore
             (Digraph.Builder.add_node b (Label.intern tbl lbl)
                (parse_value !line_no value_part))
         | "e" ->
           (try Scanf.sscanf rest " %d %d" (fun s t -> Digraph.Builder.add_edge b s t)
            with Scanf.Scan_failure _ | Failure _ | Invalid_argument _ ->
              failwith (Printf.sprintf "line %d: malformed edge %S" !line_no rest))
         | _ -> failwith (Printf.sprintf "line %d: unknown declaration %S" !line_no kind)
       end
     done
   with End_of_file -> ());
  Digraph.Builder.freeze b

let load tbl path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> parse tbl ic)
