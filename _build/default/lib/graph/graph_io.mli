(** Plain-text (de)serialisation of data graphs.

    Line-oriented format, one declaration per line:
    {v
    # comment
    n <label> [<int> | "<string>"]     -- node, ids assigned 0,1,2,...
    e <src> <dst>                      -- directed edge
    v}
    Nodes must precede the edges that use them.  The format is meant for the
    CLI and the examples, not for bulk storage. *)

val save : Digraph.t -> string -> unit
(** [save g path] writes [g] to [path]. *)

val load : Label.table -> string -> Digraph.t
(** [load tbl path] parses [path], interning labels into [tbl].
    @raise Failure with a line-numbered message on malformed input. *)

val output : out_channel -> Digraph.t -> unit
val parse : Label.table -> in_channel -> Digraph.t
