lib/graph/digraph.ml: Array Bpq_util Hashtbl Label List Value
