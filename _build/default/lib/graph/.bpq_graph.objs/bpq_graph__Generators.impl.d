lib/graph/generators.ml: Array Bpq_util Digraph Fun Label List Printf Value
