lib/graph/digraph.mli: Label Value
