lib/graph/gstats.mli: Digraph Label
