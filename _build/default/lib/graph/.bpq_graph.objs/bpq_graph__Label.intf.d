lib/graph/label.mli:
