lib/graph/generators.mli: Digraph Label
