lib/graph/value.mli:
