lib/graph/graph_io.ml: Digraph Fun Label Printf Scanf String Value
