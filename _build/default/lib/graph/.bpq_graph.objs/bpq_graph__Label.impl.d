lib/graph/label.ml: Array Hashtbl List
