lib/graph/gstats.ml: Array Buffer Digraph Hashtbl Label List Option Printf
