lib/graph/graph_io.mli: Digraph Label
