lib/graph/value.ml: Stdlib String
