(** Descriptive statistics of a data graph.

    Used by the CLI's [stats] subcommand and as a quick sanity check on
    generated datasets; constraint discovery consumes the same quantities
    (label cardinalities, per-label-pair degree maxima). *)

type label_stat = {
  label : Label.t;
  count : int;
  max_degree : int;  (** Max total degree over the label's nodes. *)
  avg_degree : float;
}

type t = {
  n_nodes : int;
  n_edges : int;
  n_labels : int;  (** Labels with at least one node. *)
  max_out_degree : int;
  max_in_degree : int;
  avg_degree : float;
  isolated : int;  (** Nodes with no edges at all. *)
  by_label : label_stat list;  (** Descending by count. *)
}

val compute : Digraph.t -> t

val degree_histogram : Digraph.t -> (int * int) list
(** [(degree, node count)] pairs, ascending by degree, over total degree. *)

val to_string : ?top:int -> Label.table -> t -> string
(** Render a summary with the [top] (default 10) most populous labels. *)
