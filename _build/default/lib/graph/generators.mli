(** Synthetic dataset generators.

    The paper evaluates on IMDb, DBpedia 3.9 and Webbase-2001; those raw
    datasets are not available here, so each is replaced by a generator that
    reproduces the structural properties the bounded-evaluation algorithms
    are sensitive to (see DESIGN.md, "Dataset substitution"):

    - {!imdb_like}: the movie-domain schema of the paper's running example,
      with constraints C1–C6 holding by construction;
    - {!dbpedia_like}: a heterogeneous knowledge graph with a large,
      Zipf-skewed label alphabet, small "enum" entity classes and functional
      links to them;
    - {!web_like}: a power-law web digraph whose labels are host names.

    All generators are deterministic in [seed] and scale linearly in
    [scale] (the paper's Fig. 5 scale factor). *)

val imdb_like : ?seed:int -> scale:float -> Label.table -> Digraph.t
(** Movies, actors, actresses, directors, awards, years, countries, genres.
    Guarantees: at most 4 awarded movies per (year, award) pair (C1); at
    most 15 actors and 15 actresses per movie (within the paper's bound of
    30, C2); exactly one country per person (C3); 135 years, 24 awards and
    196 countries in total (C4–C6).  Year nodes carry [Int] year values so
    the running-example predicate [2011 <= year <= 2013] is meaningful. *)

val dbpedia_like : ?seed:int -> scale:float -> Label.table -> Digraph.t
(** Entity labels ["type_0" .. "type_119"] with Zipf-distributed frequency,
    20 enum labels ["enum_0" ..] of small bounded cardinality, functional
    entity→enum links and ring-of-labels entity→entity links with bounded
    out-degree.  Entities carry [Int] attribute values. *)

val web_like : ?seed:int -> scale:float -> Label.table -> Digraph.t
(** Pages labeled by host (Zipf over 1000 hosts), preferential-attachment
    out-links mixed with same-host links, so in-degrees are power-law
    distributed while most hosts stay small. *)

val random : ?seed:int -> nodes:int -> edges:int -> labels:int -> Label.table -> Digraph.t
(** Uniform random graph over labels ["l0" .. "l<labels-1>"] with [Int]
    values in [\[0, 9\]]; the workhorse of the property-based tests. *)

val subsample : ?seed:int -> fraction:float -> Digraph.t -> Digraph.t * int array
(** [subsample ~fraction g] keeps a uniform random [fraction] of the nodes
    (every node when [fraction >= 1.0]) and the edges induced between
    them; node identifiers are re-densified, and the returned array maps
    new identifiers back to the originals.

    Used by the Fig. 5 scale sweep: any access constraint satisfied by
    [g] stays satisfied by every subsample, since cardinalities can only
    shrink — which is what lets a single access schema serve all scale
    factors, as in the paper's setup. *)

(** {1 Label-name helpers shared with workloads} *)

val imdb_labels : string list
(** The label names {!imdb_like} uses, in a fixed order:
    [year; award; country; genre; movie; actor; actress; director]. *)
