(** Attribute values carried by graph nodes.

    In the paper each node [v] carries ν(v), the value of its label
    attribute (e.g. [year = 2011]); pattern predicates compare that value
    against constants with [=, <, >, ≤, ≥].  We support integer and string
    attributes; ordering comparisons are meaningful for integers, equality
    for both.  [Null] marks nodes whose label has no attribute. *)

type t = Null | Int of int | Str of string

type op = Eq | Lt | Gt | Le | Ge

val compare : t -> t -> int
(** Total order: [Null < Int _ < Str _], integers and strings ordered
    naturally within their class. *)

val equal : t -> t -> bool

val test : op -> t -> t -> bool
(** [test op v c] evaluates [v op c].  Ordering operators on incomparable
    classes (or on [Null]) evaluate to [false], so a predicate on a missing
    attribute simply fails to match — no exceptions during matching. *)

val to_string : t -> string

val op_to_string : op -> string
val op_of_string : string -> op option
