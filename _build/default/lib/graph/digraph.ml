module Vec = Bpq_util.Vec

type t = {
  table : Label.table;
  labels : int array;
  values : Value.t array;
  out_off : int array;
  out_adj : int array;
  in_off : int array;
  in_adj : int array;
  by_label_off : int array;
  by_label : int array;
  edge_set : (int, unit) Hashtbl.t;
  n_edges : int;
}

module Builder = struct
  type t = {
    table : Label.table;
    labels : Vec.t;
    mutable values : Value.t array;
    srcs : Vec.t;
    dsts : Vec.t;
  }

  let create ?(node_hint = 64) table =
    { table;
      labels = Vec.create ~capacity:node_hint ();
      values = Array.make (max node_hint 1) Value.Null;
      srcs = Vec.create ();
      dsts = Vec.create () }

  let n_nodes b = Vec.length b.labels

  let add_node b lbl v =
    let id = Vec.length b.labels in
    Vec.push b.labels lbl;
    if id = Array.length b.values then begin
      let values = Array.make (2 * id) Value.Null in
      Array.blit b.values 0 values 0 id;
      b.values <- values
    end;
    b.values.(id) <- v;
    id

  let add_edge b src dst =
    let n = n_nodes b in
    if src < 0 || src >= n || dst < 0 || dst >= n then
      invalid_arg "Digraph.Builder.add_edge: unknown endpoint";
    Vec.push b.srcs src;
    Vec.push b.dsts dst

  (* Counting sort of [keys] into CSR offsets over [n] buckets. *)
  let csr n keys payloads =
    let m = Array.length keys in
    let off = Array.make (n + 1) 0 in
    for i = 0 to m - 1 do
      off.(keys.(i) + 1) <- off.(keys.(i) + 1) + 1
    done;
    for i = 1 to n do
      off.(i) <- off.(i) + off.(i - 1)
    done;
    let adj = Array.make m 0 in
    let cursor = Array.copy off in
    for i = 0 to m - 1 do
      let k = keys.(i) in
      adj.(cursor.(k)) <- payloads.(i);
      cursor.(k) <- cursor.(k) + 1
    done;
    (off, adj)

  let freeze b =
    let n = n_nodes b in
    let labels = Vec.to_array b.labels in
    let values = Array.sub b.values 0 n in
    (* Deduplicate edges via the membership table. *)
    let raw = Vec.length b.srcs in
    let edge_set = Hashtbl.create (max 16 raw) in
    let srcs = Vec.create ~capacity:raw () and dsts = Vec.create ~capacity:raw () in
    for i = 0 to raw - 1 do
      let s = Vec.get b.srcs i and d = Vec.get b.dsts i in
      let key = (s * n) + d in
      if not (Hashtbl.mem edge_set key) then begin
        Hashtbl.replace edge_set key ();
        Vec.push srcs s;
        Vec.push dsts d
      end
    done;
    let src_arr = Vec.to_array srcs and dst_arr = Vec.to_array dsts in
    let out_off, out_adj = csr n src_arr dst_arr in
    let in_off, in_adj = csr n dst_arr src_arr in
    let nlabels = Label.count b.table in
    let ids = Array.init n (fun i -> i) in
    let by_label_off, by_label = csr nlabels labels ids in
    { table = b.table;
      labels;
      values;
      out_off;
      out_adj;
      in_off;
      in_adj;
      by_label_off;
      by_label;
      edge_set;
      n_edges = Array.length src_arr }
end

let label_table g = g.table
let n_nodes g = Array.length g.labels
let n_edges g = g.n_edges
let size g = n_nodes g + n_edges g

let label g v = g.labels.(v)
let value g v = g.values.(v)

let out_degree g v = g.out_off.(v + 1) - g.out_off.(v)
let in_degree g v = g.in_off.(v + 1) - g.in_off.(v)
let degree g v = out_degree g v + in_degree g v

let iter_range adj off_lo off_hi f =
  for i = off_lo to off_hi - 1 do
    f adj.(i)
  done

let iter_out g v f = iter_range g.out_adj g.out_off.(v) g.out_off.(v + 1) f
let iter_in g v f = iter_range g.in_adj g.in_off.(v) g.in_off.(v + 1) f

let fold_out g v f init =
  let acc = ref init in
  iter_out g v (fun w -> acc := f !acc w);
  !acc

let fold_in g v f init =
  let acc = ref init in
  iter_in g v (fun w -> acc := f !acc w);
  !acc

let out_neighbours g v = Array.sub g.out_adj g.out_off.(v) (out_degree g v)
let in_neighbours g v = Array.sub g.in_adj g.in_off.(v) (in_degree g v)

let neighbours g v =
  let vec = Vec.create ~capacity:(degree g v + 1) () in
  iter_out g v (fun w -> Vec.push vec w);
  iter_in g v (fun w -> Vec.push vec w);
  Vec.sort_uniq vec;
  Vec.to_array vec

let has_edge g src dst = Hashtbl.mem g.edge_set ((src * n_nodes g) + dst)
let adjacent g u v = has_edge g u v || has_edge g v u

let iter_neighbours g v f =
  (* Out-neighbours first, then in-neighbours not already out-neighbours. *)
  iter_out g v (fun w -> f w);
  iter_in g v (fun w -> if not (has_edge g v w) then f w)

let nodes_with_label g l =
  if l < 0 || l + 1 >= Array.length g.by_label_off then [||]
  else Array.sub g.by_label g.by_label_off.(l) (g.by_label_off.(l + 1) - g.by_label_off.(l))

let iter_label g l f =
  if l >= 0 && l + 1 < Array.length g.by_label_off then
    iter_range g.by_label g.by_label_off.(l) g.by_label_off.(l + 1) f

let count_label g l =
  if l < 0 || l + 1 >= Array.length g.by_label_off then 0
  else g.by_label_off.(l + 1) - g.by_label_off.(l)

let iter_nodes g f =
  for v = 0 to n_nodes g - 1 do
    f v
  done

let iter_edges g f = iter_nodes g (fun v -> iter_out g v (fun w -> f v w))

type delta = {
  added_nodes : (Label.t * Value.t) list;
  added_edges : (int * int) list;
  removed_edges : (int * int) list;
}

let empty_delta = { added_nodes = []; added_edges = []; removed_edges = [] }

let apply_delta g d =
  let removed = Hashtbl.create 16 in
  List.iter (fun (s, t) -> Hashtbl.replace removed ((s * n_nodes g) + t) ()) d.removed_edges;
  let b = Builder.create ~node_hint:(n_nodes g + List.length d.added_nodes) g.table in
  iter_nodes g (fun v -> ignore (Builder.add_node b g.labels.(v) g.values.(v)));
  List.iter (fun (l, v) -> ignore (Builder.add_node b l v)) d.added_nodes;
  iter_edges g (fun s t ->
      if not (Hashtbl.mem removed ((s * n_nodes g) + t)) then Builder.add_edge b s t);
  List.iter (fun (s, t) -> Builder.add_edge b s t) d.added_edges;
  Builder.freeze b

let delta_touched g d =
  let seen = Hashtbl.create 64 in
  let mark v = if v < n_nodes g then Hashtbl.replace seen v () in
  let mark_with_nbrs v =
    if v < n_nodes g then begin
      mark v;
      iter_neighbours g v mark
    end
  in
  let mark_edge (s, t) =
    mark_with_nbrs s;
    mark_with_nbrs t
  in
  List.iter mark_edge d.added_edges;
  List.iter mark_edge d.removed_edges;
  Hashtbl.fold (fun v () acc -> v :: acc) seen []
