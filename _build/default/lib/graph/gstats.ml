type label_stat = {
  label : Label.t;
  count : int;
  max_degree : int;
  avg_degree : float;
}

type t = {
  n_nodes : int;
  n_edges : int;
  n_labels : int;
  max_out_degree : int;
  max_in_degree : int;
  avg_degree : float;
  isolated : int;
  by_label : label_stat list;
}

let compute g =
  let n = Digraph.n_nodes g in
  let tbl = Digraph.label_table g in
  let max_out = ref 0 and max_in = ref 0 and isolated = ref 0 in
  let nlabels = Label.count tbl in
  let label_max = Array.make nlabels 0 in
  let label_deg_sum = Array.make nlabels 0 in
  Digraph.iter_nodes g (fun v ->
      let dout = Digraph.out_degree g v and din = Digraph.in_degree g v in
      max_out := max !max_out dout;
      max_in := max !max_in din;
      if dout + din = 0 then incr isolated;
      let l = Digraph.label g v in
      label_max.(l) <- max label_max.(l) (dout + din);
      label_deg_sum.(l) <- label_deg_sum.(l) + dout + din);
  let by_label =
    List.filter_map
      (fun l ->
        let count = Digraph.count_label g l in
        if count = 0 then None
        else
          Some
            { label = l;
              count;
              max_degree = label_max.(l);
              avg_degree = float_of_int label_deg_sum.(l) /. float_of_int count })
      (Label.all tbl)
    |> List.sort (fun a b -> compare (b.count, b.label) (a.count, a.label))
  in
  { n_nodes = n;
    n_edges = Digraph.n_edges g;
    n_labels = List.length by_label;
    max_out_degree = !max_out;
    max_in_degree = !max_in;
    avg_degree =
      (if n = 0 then 0.0 else 2.0 *. float_of_int (Digraph.n_edges g) /. float_of_int n);
    isolated = !isolated;
    by_label }

let degree_histogram g =
  let counts = Hashtbl.create 64 in
  Digraph.iter_nodes g (fun v ->
      let d = Digraph.degree g v in
      Hashtbl.replace counts d (1 + Option.value ~default:0 (Hashtbl.find_opt counts d)));
  List.sort compare (Hashtbl.fold (fun d c acc -> (d, c) :: acc) counts [])

let to_string ?(top = 10) tbl t =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "nodes: %d, edges: %d, labels: %d\n" t.n_nodes t.n_edges t.n_labels;
  Printf.bprintf buf "degree: avg %.2f, max out %d, max in %d; isolated nodes: %d\n"
    t.avg_degree t.max_out_degree t.max_in_degree t.isolated;
  Printf.bprintf buf "top labels:\n";
  List.iteri
    (fun i s ->
      if i < top then
        Printf.bprintf buf "  %-20s %8d nodes, max degree %d, avg %.2f\n"
          (Label.name tbl s.label) s.count s.max_degree s.avg_degree)
    t.by_label;
  Buffer.contents buf
