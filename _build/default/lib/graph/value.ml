type t = Null | Int of int | Str of string
type op = Eq | Lt | Gt | Le | Ge

let class_rank = function Null -> 0 | Int _ -> 1 | Str _ -> 2

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Int x, Int y -> Stdlib.compare x y
  | Str x, Str y -> String.compare x y
  | _ -> Stdlib.compare (class_rank a) (class_rank b)

let equal a b = compare a b = 0

let test op v c =
  match (op, v, c) with
  | Eq, _, _ -> equal v c
  | Lt, Int x, Int y -> x < y
  | Gt, Int x, Int y -> x > y
  | Le, Int x, Int y -> x <= y
  | Ge, Int x, Int y -> x >= y
  | (Lt | Gt | Le | Ge), _, _ -> false

let to_string = function
  | Null -> "null"
  | Int i -> string_of_int i
  | Str s -> "\"" ^ s ^ "\""

let op_to_string = function Eq -> "=" | Lt -> "<" | Gt -> ">" | Le -> "<=" | Ge -> ">="

let op_of_string = function
  | "=" -> Some Eq
  | "<" -> Some Lt
  | ">" -> Some Gt
  | "<=" -> Some Le
  | ">=" -> Some Ge
  | _ -> None
