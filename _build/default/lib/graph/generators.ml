module Prng = Bpq_util.Prng
module Vec = Bpq_util.Vec

let imdb_labels =
  [ "year"; "award"; "country"; "genre"; "language"; "certificate"; "movie";
    "actor"; "actress"; "director"; "writer"; "company" ]

let scaled ~scale base floor_n = max floor_n (int_of_float (float_of_int base *. scale))

let imdb_like ?(seed = 42) ~scale tbl =
  let rng = Prng.create seed in
  let b = Digraph.Builder.create ~node_hint:(scaled ~scale 90_000 500) tbl in
  let l_year = Label.intern tbl "year"
  and l_award = Label.intern tbl "award"
  and l_country = Label.intern tbl "country"
  and l_genre = Label.intern tbl "genre"
  and l_movie = Label.intern tbl "movie"
  and l_actor = Label.intern tbl "actor"
  and l_actress = Label.intern tbl "actress"
  and l_director = Label.intern tbl "director" in
  let add_many n lbl mk = Array.init n (fun i -> Digraph.Builder.add_node b lbl (mk i)) in
  (* C4-C6: fixed global cardinalities (135 years, 24 awards, 196 countries). *)
  let years = add_many 135 l_year (fun i -> Value.Int (1880 + i)) in
  let awards = add_many 24 l_award (fun i -> Value.Str (Printf.sprintf "award_%d" i)) in
  let countries =
    add_many 196 l_country (fun i -> Value.Str (Printf.sprintf "country_%d" i))
  in
  let genres = add_many 30 l_genre (fun i -> Value.Str (Printf.sprintf "genre_%d" i)) in
  let l_language = Label.intern tbl "language"
  and l_certificate = Label.intern tbl "certificate"
  and l_writer = Label.intern tbl "writer"
  and l_company = Label.intern tbl "company" in
  let languages = add_many 60 l_language (fun i -> Value.Str (Printf.sprintf "lang_%d" i)) in
  let certificates =
    add_many 15 l_certificate (fun i -> Value.Str (Printf.sprintf "cert_%d" i))
  in
  let n_movies = scaled ~scale 18_000 40 in
  let n_actors = scaled ~scale 30_000 60 in
  let n_actresses = scaled ~scale 30_000 60 in
  let n_directors = scaled ~scale 6_000 20 in
  let n_writers = scaled ~scale 8_000 20 in
  let n_companies = scaled ~scale 1_500 10 in
  (* Release years are skewed towards recent years so that the running
     example's 2011-2013 window is well populated. *)
  let sample_year_idx () = 134 - min 134 (Prng.geometric rng ~p:0.04) in
  let movie_year = Array.init n_movies (fun _ -> sample_year_idx ()) in
  let movies =
    Array.init n_movies (fun i ->
        Digraph.Builder.add_node b l_movie (Value.Int (1880 + movie_year.(i))))
  in
  let actors = add_many n_actors l_actor (fun _ -> Value.Null) in
  let actresses = add_many n_actresses l_actress (fun _ -> Value.Null) in
  let directors = add_many n_directors l_director (fun _ -> Value.Null) in
  let writers = add_many n_writers l_writer (fun _ -> Value.Null) in
  let companies =
    add_many n_companies l_company (fun i -> Value.Str (Printf.sprintf "co_%d" i))
  in
  (* C3: exactly one country per person. *)
  let persons = [ actors; actresses; directors; writers ] in
  List.iter
    (fun group ->
      Array.iter (fun p -> Digraph.Builder.add_edge b p (Prng.pick rng countries)) group)
    persons;
  (* Movie local structure; the cast caps keep C2 (<= 30 per side). *)
  let movies_of_year = Array.make 135 [] in
  Array.iteri
    (fun i m ->
      let y = movie_year.(i) in
      movies_of_year.(y) <- m :: movies_of_year.(y);
      Digraph.Builder.add_edge b m years.(y);
      for _ = 1 to Prng.int_in rng 1 3 do
        Digraph.Builder.add_edge b m (Prng.pick rng genres)
      done;
      for _ = 1 to Prng.int_in rng 3 15 do
        Digraph.Builder.add_edge b m (Prng.pick rng actors)
      done;
      for _ = 1 to Prng.int_in rng 3 15 do
        Digraph.Builder.add_edge b m (Prng.pick rng actresses)
      done;
      Digraph.Builder.add_edge b m (Prng.pick rng directors);
      for _ = 1 to Prng.int_in rng 1 2 do
        Digraph.Builder.add_edge b m (Prng.pick rng writers)
      done;
      (* One primary language (a few movies add a second), a certificate,
         and one or two production companies. *)
      Digraph.Builder.add_edge b m languages.(Prng.zipf rng ~n:60 ~s:1.3);
      if Prng.float rng 1.0 < 0.15 then
        Digraph.Builder.add_edge b m (Prng.pick rng languages);
      Digraph.Builder.add_edge b m (Prng.pick rng certificates);
      for _ = 1 to Prng.int_in rng 1 2 do
        Digraph.Builder.add_edge b m (Prng.pick rng companies)
      done)
    movies;
  (* C1: each (year, award) pair decorates at most 4 movies of that year. *)
  let movies_of_year = Array.map Array.of_list movies_of_year in
  Array.iter
    (fun candidates ->
      if Array.length candidates > 0 then
        Array.iter
          (fun a ->
            let k = Prng.int_in rng 0 (min 4 (Array.length candidates)) in
            for _ = 1 to k do
              Digraph.Builder.add_edge b (Prng.pick rng candidates) a
            done)
          awards)
    movies_of_year;
  Digraph.Builder.freeze b

let dbpedia_like ?(seed = 43) ~scale tbl =
  let rng = Prng.create seed in
  let n_types = 120 and n_enums = 20 in
  let type_labels = Array.init n_types (fun i -> Label.intern tbl (Printf.sprintf "type_%d" i)) in
  let enum_labels = Array.init n_enums (fun i -> Label.intern tbl (Printf.sprintf "enum_%d" i)) in
  let n_entities = scaled ~scale 80_000 100 in
  let b = Digraph.Builder.create ~node_hint:(n_entities + 4_096) tbl in
  (* Small closed classes (countries, genders, licences, ...): bounded
     cardinality independent of scale, the source of type-(1) constraints. *)
  let enum_nodes =
    Array.init n_enums (fun i ->
        let cardinality = 4 + (i * i * 13 mod 197) in
        Array.init cardinality (fun j ->
            Digraph.Builder.add_node b enum_labels.(i)
              (Value.Str (Printf.sprintf "enum_%d_%d" i j))))
  in
  let entity_type = Array.init n_entities (fun _ -> Prng.zipf rng ~n:n_types ~s:1.05) in
  let entities =
    Array.init n_entities (fun i ->
        Digraph.Builder.add_node b type_labels.(entity_type.(i))
          (Value.Int (Prng.int rng 100)))
  in
  let by_type = Array.make n_types [] in
  Array.iteri (fun i e -> by_type.(entity_type.(i)) <- e :: by_type.(entity_type.(i))) entities;
  let by_type = Array.map Array.of_list by_type in
  Array.iteri
    (fun i e ->
      let t = entity_type.(i) in
      (* One functional enum link (a per-type attribute class) plus an
         optional secondary one. *)
      let primary = t mod n_enums in
      Digraph.Builder.add_edge b e (Prng.pick rng enum_nodes.(primary));
      if Prng.bool rng then
        Digraph.Builder.add_edge b e (Prng.pick rng enum_nodes.((t + 7) mod n_enums));
      (* Entity-to-entity links: mostly within a ring of related types
         (small bounded out-degree), some towards arbitrary types, and a
         share concentrated on per-type hub entities — the hubs give some
         label pairs an unboundable neighbour count, exactly the regime
         where queries fail to be effectively bounded. *)
      let k = min 8 (1 + Prng.geometric rng ~p:0.35) in
      for _ = 1 to k do
        let t' =
          if Prng.float rng 1.0 < 0.12 then Prng.int rng n_types
          else begin
            let offset = [| 1; 2; n_types - 1 |].(Prng.int rng 3) in
            (t + offset) mod n_types
          end
        in
        if Array.length by_type.(t') > 0 then begin
          let target =
            if Prng.float rng 1.0 < 0.25 then by_type.(t').(0) (* the type's hub *)
            else Prng.pick rng by_type.(t')
          in
          Digraph.Builder.add_edge b e target
        end
      done)
    entities;
  Digraph.Builder.freeze b

let web_like ?(seed = 44) ~scale tbl =
  let rng = Prng.create seed in
  let n_hosts = 1000 in
  let host_labels = Array.init n_hosts (fun i -> Label.intern tbl (Printf.sprintf "host_%d" i)) in
  let n_pages = scaled ~scale 150_000 100 in
  let b = Digraph.Builder.create ~node_hint:n_pages tbl in
  let page_host = Array.init n_pages (fun _ -> Prng.zipf rng ~n:n_hosts ~s:1.2) in
  let pages =
    Array.init n_pages (fun i -> Digraph.Builder.add_node b host_labels.(page_host.(i)) Value.Null)
  in
  let by_host = Array.make n_hosts [] in
  Array.iteri (fun i p -> by_host.(page_host.(i)) <- p :: by_host.(page_host.(i))) pages;
  let by_host = Array.map Array.of_list by_host in
  (* Preferential attachment through an endpoint pool: sampling the pool
     uniformly picks nodes proportionally to their current degree. *)
  let pool = Vec.create ~capacity:(8 * n_pages) () in
  Array.iteri
    (fun i p ->
      let host = page_host.(i) in
      let k = min 30 (1 + Prng.geometric rng ~p:0.2) in
      for _ = 1 to k do
        let target =
          if Prng.float rng 1.0 < 0.35 && Array.length by_host.(host) > 1 then
            Prng.pick rng by_host.(host)
          else if Vec.length pool > 0 && Prng.float rng 1.0 < 0.8 then
            Vec.get pool (Prng.int rng (Vec.length pool))
          else pages.(Prng.int rng n_pages)
        in
        if target <> p then begin
          Digraph.Builder.add_edge b p target;
          (* Weighting targets double skews the in-degree tail. *)
          Vec.push pool p;
          Vec.push pool target;
          Vec.push pool target
        end
      done)
    pages;
  Digraph.Builder.freeze b

let subsample ?(seed = 46) ~fraction g =
  if fraction >= 1.0 then (g, Array.init (Digraph.n_nodes g) Fun.id)
  else begin
    let rng = Prng.create seed in
    let n = Digraph.n_nodes g in
    let keep = Array.init n (fun _ -> Prng.float rng 1.0 < fraction) in
    let b = Digraph.Builder.create ~node_hint:(1 + int_of_float (fraction *. float_of_int n))
        (Digraph.label_table g) in
    let fresh = Array.make n (-1) in
    let kept = Vec.create () in
    Digraph.iter_nodes g (fun v ->
        if keep.(v) then begin
          fresh.(v) <- Digraph.Builder.add_node b (Digraph.label g v) (Digraph.value g v);
          Vec.push kept v
        end);
    Digraph.iter_edges g (fun s t ->
        if keep.(s) && keep.(t) then Digraph.Builder.add_edge b fresh.(s) fresh.(t));
    (Digraph.Builder.freeze b, Vec.to_array kept)
  end

let random ?(seed = 45) ~nodes ~edges ~labels tbl =
  if labels <= 0 then invalid_arg "Generators.random: labels must be positive";
  let rng = Prng.create seed in
  let lbls = Array.init labels (fun i -> Label.intern tbl (Printf.sprintf "l%d" i)) in
  let b = Digraph.Builder.create ~node_hint:nodes tbl in
  for _ = 1 to nodes do
    ignore (Digraph.Builder.add_node b (Prng.pick rng lbls) (Value.Int (Prng.int rng 10)))
  done;
  if nodes > 0 then
    for _ = 1 to edges do
      Digraph.Builder.add_edge b (Prng.int rng nodes) (Prng.int rng nodes)
    done;
  Digraph.Builder.freeze b
