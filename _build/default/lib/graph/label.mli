(** Interned node labels.

    The paper's alphabet Σ of labels (e.g. [movie], [actress], [year]) is
    represented by small integers interned in a {!table}.  A data graph, the
    patterns queried against it and the access schema that constrains it must
    all share one table so that label identifiers line up. *)

type t = int
(** A label identifier.  Valid only together with the table that interned
    it. *)

type table

val create_table : unit -> table

val intern : table -> string -> t
(** [intern tbl name] returns the identifier for [name], allocating a fresh
    one on first sight. *)

val find : table -> string -> t option
(** Lookup without allocating. *)

val name : table -> t -> string
(** @raise Invalid_argument if [t] was not allocated by this table. *)

val count : table -> int
(** Number of labels interned so far; identifiers are [0 .. count - 1]. *)

val all : table -> t list
(** All interned labels in allocation order. *)
