(** Random query workloads.

    The paper's experiments generate, per dataset, 100 random pattern
    queries controlled by [#n] (nodes, in [3, 7]), [#e] (edges, in
    [#n - 1, 1.5 * #n]) and [#p] (predicate atoms, in [2, 8]), using labels
    drawn from the dataset.  Two generation modes are provided:

    - {!random}: labels sampled from the data graph's alphabet weighted by
      presence, edges a random spanning tree plus extras — the paper's
      setup; queries may have empty answers;
    - {!from_walk}: the pattern is carved out of an actual connected
      subgraph of the data graph (predicates built around the values found
      there), so at least one match is guaranteed — useful when comparing
      evaluation times, since an early-empty query flatters every
      algorithm. *)

open Bpq_util
open Bpq_graph

type config = {
  min_nodes : int;
  max_nodes : int;
  edge_factor : float;  (** [#e] uniform in [\[#n - 1, edge_factor * #n\]]. *)
  min_preds : int;
  max_preds : int;
}

val default_config : config
(** The paper's ranges: nodes 3-7, edge factor 1.5, predicates 2-8. *)

val random : ?config:config -> Prng.t -> Digraph.t -> Pattern.t
val from_walk : ?config:config -> Prng.t -> Digraph.t -> Pattern.t

val workload :
  ?config:config -> ?mixed:bool -> Prng.t -> Digraph.t -> int -> Pattern.t list
(** [workload rng g n] generates [n] queries.  With [mixed] (default true)
    half come from {!from_walk} and half from {!random}, approximating a
    realistic mix of satisfiable and speculative queries. *)

val with_nodes : ?config:config -> nodes:int -> Prng.t -> Digraph.t -> Pattern.t
(** {!from_walk} pinned to an exact node count — the Fig. 5(b/f/j) sweep
    over [#n] = 3..7. *)
