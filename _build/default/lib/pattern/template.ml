open Bpq_graph

type operand = Const of Value.t | Param of string
type atom = { op : Value.op; operand : operand }

type t = {
  table : Label.table;
  nodes : (Label.t * atom list) array;
  edge_list : (int * int) list;
}

let create table nodes edge_list =
  (* Validate endpoints eagerly, reusing Pattern's checks. *)
  ignore
    (Pattern.create table
       (Array.map (fun (l, _) -> (l, Predicate.true_)) nodes)
       edge_list);
  { table; nodes; edge_list }

let params t =
  Array.to_list t.nodes
  |> List.concat_map (fun (_, atoms) ->
         List.filter_map
           (fun a -> match a.operand with Param p -> Some p | Const _ -> None)
           atoms)
  |> List.sort_uniq compare

let build t resolve =
  Pattern.create t.table
    (Array.map
       (fun (l, atoms) ->
         let pred =
           List.filter_map
             (fun a ->
               match resolve a.operand with
               | Some const -> Some { Predicate.op = a.op; const }
               | None -> None)
             atoms
         in
         (l, pred))
       t.nodes)
    t.edge_list

let instantiate t bindings =
  build t (function
    | Const v -> Some v
    | Param p ->
      (match List.assoc_opt p bindings with
       | Some v -> Some v
       | None -> invalid_arg (Printf.sprintf "Template.instantiate: unbound parameter %S" p)))

let skeleton t =
  build t (function Const v -> Some v | Param _ -> None)

let n_nodes t = Array.length t.nodes
let edges t = t.edge_list
