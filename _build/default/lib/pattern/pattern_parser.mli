(** Textual syntax for pattern queries.

    Line-oriented, mirroring the graph format of {!Bpq_graph.Graph_io}:
    {v
    # pairs of co-stars from the same country (the paper's Q0)
    n a  award
    n y  year >=2011 <=2013
    n m  movie
    e m a
    e m y
    v}
    - [n <name> <label> <atom>...] declares a node; each atom is an operator
      immediately followed by a constant ([>=2011], [="france"]).
    - [e <src> <dst>] declares a directed edge between declared names. *)

open Bpq_graph

val parse_string : Label.table -> string -> Pattern.t
(** @raise Failure with a line-numbered message on malformed input. *)

val load : Label.table -> string -> Pattern.t
(** Parse the file at the given path. *)

val to_source : Pattern.t -> string
(** Renders a pattern back into parseable syntax (node names [u0], [u1],
    ...); [parse_string] of the result reproduces the pattern. *)
