(** Parameterized query templates.

    The paper's §V motivates instance boundedness with "a frequent query
    load Q, such as a finite set of parameterized queries as found in
    recommendation systems".  A template is a pattern whose predicate
    constants may be named parameters; {!instantiate} substitutes concrete
    values.

    The key structural fact (exploited by {!skeleton} and pinned down in
    the test suite): effective boundedness depends only on the pattern's
    labels and edges, never on predicate constants — so one EBChk/QPlan
    run on the skeleton serves every instantiation of the template. *)

open Bpq_graph

type operand = Const of Value.t | Param of string

type atom = { op : Value.op; operand : operand }

type t

val create : Label.table -> (Label.t * atom list) array -> (int * int) list -> t
(** Same shape as {!Pattern.create}, with parameterisable atoms. *)

val params : t -> string list
(** Distinct parameter names, sorted. *)

val instantiate : t -> (string * Value.t) list -> Pattern.t
(** @raise Invalid_argument if a parameter has no binding. *)

val skeleton : t -> Pattern.t
(** The pattern with all parameterised atoms dropped (constant atoms are
    kept).  Every instantiation matches a subset of what the skeleton
    matches, and is effectively bounded under exactly the same schemas. *)

val n_nodes : t -> int
val edges : t -> (int * int) list
