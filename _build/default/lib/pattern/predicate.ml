open Bpq_graph

type atom = { op : Value.op; const : Value.t }
type t = atom list

let true_ = []
let atom op const = [ { op; const } ]
let conj a b = a @ b
let eval p v = List.for_all (fun a -> Value.test a.op v a.const) p
let arity = List.length

let atom_to_string a = Value.op_to_string a.op ^ " " ^ Value.to_string a.const
let to_string p = String.concat " & " (List.map atom_to_string p)

let norm p = List.sort compare p
let equal a b = norm a = norm b
