lib/pattern/pattern.mli: Bpq_graph Label Predicate
