lib/pattern/predicate.mli: Bpq_graph Value
