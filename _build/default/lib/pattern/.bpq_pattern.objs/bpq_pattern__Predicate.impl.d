lib/pattern/predicate.ml: Bpq_graph List String Value
