lib/pattern/pattern_parser.ml: Array Bpq_graph Buffer Fun Hashtbl Label List Pattern Predicate Printf Scanf String Value
