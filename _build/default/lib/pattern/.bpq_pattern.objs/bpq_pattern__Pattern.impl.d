lib/pattern/pattern.ml: Array Bpq_graph Buffer Fun Label List Predicate Printf
