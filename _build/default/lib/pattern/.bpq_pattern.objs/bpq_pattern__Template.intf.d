lib/pattern/template.mli: Bpq_graph Label Pattern Value
