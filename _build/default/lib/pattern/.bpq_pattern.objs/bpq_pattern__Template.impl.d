lib/pattern/template.ml: Array Bpq_graph Label List Pattern Predicate Printf Value
