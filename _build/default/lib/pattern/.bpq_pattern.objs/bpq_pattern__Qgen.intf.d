lib/pattern/qgen.mli: Bpq_graph Bpq_util Digraph Pattern Prng
