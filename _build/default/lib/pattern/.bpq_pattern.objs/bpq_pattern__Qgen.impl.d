lib/pattern/qgen.ml: Array Bpq_graph Bpq_util Digraph Fun Hashtbl Label List Option Pattern Predicate Prng Seq Value
