lib/pattern/edge_labeled.ml: Array Bpq_graph Digraph Label List Pattern Predicate Value
