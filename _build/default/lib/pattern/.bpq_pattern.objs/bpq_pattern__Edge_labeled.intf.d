lib/pattern/edge_labeled.mli: Bpq_graph Digraph Label Pattern Predicate Value
