lib/pattern/pattern_parser.mli: Bpq_graph Label Pattern
