(** Edge-labeled graphs and patterns, by the paper's §II remark:

    "for each labeled edge [e], we can insert a 'dummy' node to represent
    [e], carrying [e]'s label."

    A labeled edge [(s, l, t)] becomes a fresh node labeled [l] with plain
    edges [s → dummy → t].  Everything downstream — access constraints on
    edge labels, effective-boundedness analysis, plans — then works
    unchanged, because edge labels are ordinary node labels of the encoded
    graph.  Matches of an encoded pattern are projected back to the
    original pattern nodes with {!project_match}. *)

open Bpq_graph

(** {1 Encoding data graphs} *)

module Builder : sig
  type t

  val create : Label.table -> t
  val add_node : t -> Label.t -> Value.t -> int
  val add_edge : t -> src:int -> label:Label.t -> dst:int -> unit
  (** A labeled edge; inserts the dummy node at freeze time. *)

  val add_plain_edge : t -> int -> int -> unit
  (** An ordinary unlabeled edge (no dummy). *)

  val freeze : t -> Digraph.t * bool array
  (** The encoded graph and its dummy mask ([true] = edge-dummy).  Original
      nodes keep their identifiers; dummies are appended after them. *)
end

(** {1 Encoding patterns} *)

type spec = {
  nodes : (Label.t * Predicate.t) array;
  labeled_edges : (int * Label.t * int) list;
      (** [(s, l, t)]: an edge from node [s] to node [t] required to carry
          label [l]. *)
  plain_edges : (int * int) list;
}

val encode_pattern : Label.table -> spec -> Pattern.t
(** Original pattern nodes keep their indices; one dummy pattern node per
    labeled edge is appended in [labeled_edges] order (with the edge label
    and a true predicate). *)

val original_count : spec -> int

val project_match : spec -> int array -> int array
(** Restrict a match of the encoded pattern to the original nodes. *)

val project_relation : spec -> int array array -> int array array
(** Same for a simulation relation. *)
