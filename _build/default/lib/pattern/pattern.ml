open Bpq_graph

type t = {
  table : Label.table;
  labels : Label.t array;
  preds : Predicate.t array;
  edge_list : (int * int) list;
  succ : int list array;
  prede : int list array;
  nbrs : int list array;
}

let create table nodes edge_pairs =
  let n = Array.length nodes in
  let check v = if v < 0 || v >= n then invalid_arg "Pattern.create: bad endpoint" in
  List.iter
    (fun (s, t) ->
      check s;
      check t)
    edge_pairs;
  let edge_list = List.sort_uniq compare edge_pairs in
  let succ = Array.make n [] and prede = Array.make n [] in
  List.iter
    (fun (s, t) ->
      succ.(s) <- t :: succ.(s);
      prede.(t) <- s :: prede.(t))
    edge_list;
  let nbrs =
    Array.init n (fun v -> List.sort_uniq compare (succ.(v) @ prede.(v)))
  in
  { table;
    labels = Array.map fst nodes;
    preds = Array.map snd nodes;
    edge_list;
    succ;
    prede;
    nbrs }

let label_table q = q.table
let n_nodes q = Array.length q.labels
let n_edges q = List.length q.edge_list
let size q = n_nodes q + n_edges q
let label q u = q.labels.(u)
let pred q u = q.preds.(u)
let edges q = q.edge_list
let has_edge q s t = List.mem t q.succ.(s)
let children q u = q.succ.(u)
let parents q u = q.prede.(u)
let neighbours q u = q.nbrs.(u)
let out_degree q u = List.length q.succ.(u)
let in_degree q u = List.length q.prede.(u)

let pred_count q = Array.fold_left (fun acc p -> acc + Predicate.arity p) 0 q.preds

let is_connected q =
  let n = n_nodes q in
  if n <= 1 then true
  else begin
    let seen = Array.make n false in
    let rec dfs u =
      if not seen.(u) then begin
        seen.(u) <- true;
        List.iter dfs q.nbrs.(u)
      end
    in
    dfs 0;
    Array.for_all Fun.id seen
  end

let labels_used q =
  List.sort_uniq compare (Array.to_list q.labels)

let to_string q =
  let buf = Buffer.create 128 in
  Array.iteri
    (fun u l ->
      Buffer.add_string buf
        (Printf.sprintf "u%d: %s" u (Label.name q.table l));
      (match q.preds.(u) with
       | [] -> ()
       | p -> Buffer.add_string buf (" [" ^ Predicate.to_string p ^ "]"));
      Buffer.add_char buf '\n')
    q.labels;
  List.iter
    (fun (s, t) -> Buffer.add_string buf (Printf.sprintf "u%d -> u%d\n" s t))
    q.edge_list;
  Buffer.contents buf
