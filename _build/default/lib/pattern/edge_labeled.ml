open Bpq_graph

module Builder = struct
  type t = {
    table : Label.table;
    inner : Digraph.Builder.t;
    mutable labeled : (int * Label.t * int) list;  (* reversed *)
    mutable n_plain : int;
  }

  let create table =
    { table; inner = Digraph.Builder.create table; labeled = []; n_plain = 0 }

  let add_node t l v = Digraph.Builder.add_node t.inner l v

  let add_edge t ~src ~label ~dst = t.labeled <- (src, label, dst) :: t.labeled

  let add_plain_edge t s d =
    Digraph.Builder.add_edge t.inner s d;
    t.n_plain <- t.n_plain + 1

  let freeze t =
    let originals = Digraph.Builder.n_nodes t.inner in
    List.iter
      (fun (s, l, d) ->
        let dummy = Digraph.Builder.add_node t.inner l Value.Null in
        Digraph.Builder.add_edge t.inner s dummy;
        Digraph.Builder.add_edge t.inner dummy d)
      (List.rev t.labeled);
    let g = Digraph.Builder.freeze t.inner in
    (g, Array.init (Digraph.n_nodes g) (fun v -> v >= originals))
end

type spec = {
  nodes : (Label.t * Predicate.t) array;
  labeled_edges : (int * Label.t * int) list;
  plain_edges : (int * int) list;
}

let original_count spec = Array.length spec.nodes

let encode_pattern tbl spec =
  let n = original_count spec in
  let dummies = List.mapi (fun i (_, l, _) -> (n + i, l)) spec.labeled_edges in
  let nodes =
    Array.append spec.nodes
      (Array.of_list (List.map (fun (_, l) -> (l, Predicate.true_)) dummies))
  in
  let edges =
    spec.plain_edges
    @ List.concat
        (List.mapi
           (fun i (s, _, d) -> [ (s, n + i); (n + i, d) ])
           spec.labeled_edges)
  in
  Pattern.create tbl nodes edges

let project_match spec m = Array.sub m 0 (original_count spec)
let project_relation spec rel = Array.sub rel 0 (original_count spec)
