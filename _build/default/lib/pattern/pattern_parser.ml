open Bpq_graph

let fail line_no fmt = Printf.ksprintf (fun m -> failwith (Printf.sprintf "line %d: %s" line_no m)) fmt

let parse_atom line_no token =
  let ops = [ ("<=", Value.Le); (">=", Value.Ge); ("=", Value.Eq); ("<", Value.Lt); (">", Value.Gt) ] in
  let matching (sym, _) =
    String.length token > String.length sym
    && String.sub token 0 (String.length sym) = sym
  in
  match List.find_opt matching ops with
  | None -> fail line_no "malformed predicate atom %S" token
  | Some (sym, op) ->
    let raw = String.sub token (String.length sym) (String.length token - String.length sym) in
    let const =
      if String.length raw >= 2 && raw.[0] = '"' then
        try Scanf.sscanf raw "%S" (fun s -> Value.Str s)
        with Scanf.Scan_failure _ | Failure _ -> fail line_no "malformed string in %S" token
      else
        match int_of_string_opt raw with
        | Some i -> Value.Int i
        | None -> fail line_no "malformed constant in %S" token
    in
    { Predicate.op; const }

let tokens line =
  String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let parse_lines tbl lines =
  let names = Hashtbl.create 16 in
  let nodes = ref [] and n_nodes = ref 0 in
  let edges = ref [] in
  List.iteri
    (fun i raw ->
      let line_no = i + 1 in
      let line = String.trim raw in
      if line <> "" && line.[0] <> '#' then
        match tokens line with
        | "n" :: name :: lbl :: atoms ->
          if Hashtbl.mem names name then fail line_no "duplicate node %S" name;
          Hashtbl.replace names name !n_nodes;
          incr n_nodes;
          let pred = List.map (parse_atom line_no) atoms in
          nodes := (Label.intern tbl lbl, pred) :: !nodes
        | "n" :: _ -> fail line_no "node needs a name and a label"
        | [ "e"; src; dst ] ->
          let resolve n =
            match Hashtbl.find_opt names n with
            | Some id -> id
            | None -> fail line_no "unknown node %S" n
          in
          edges := (resolve src, resolve dst) :: !edges
        | "e" :: _ -> fail line_no "edge needs exactly two endpoints"
        | kind :: _ -> fail line_no "unknown declaration %S" kind
        | [] -> ())
    lines;
  Pattern.create tbl (Array.of_list (List.rev !nodes)) (List.rev !edges)

let parse_string tbl s = parse_lines tbl (String.split_on_char '\n' s)

let load tbl path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      parse_lines tbl (List.rev !lines))

let atom_to_source (a : Predicate.atom) =
  let const =
    match a.const with
    | Value.Null -> "0" (* unrepresentable; Null constants never arise from parsing *)
    | Value.Int i -> string_of_int i
    | Value.Str s -> Printf.sprintf "%S" s
  in
  Value.op_to_string a.op ^ const

let to_source q =
  let tbl = Pattern.label_table q in
  let buf = Buffer.create 128 in
  for u = 0 to Pattern.n_nodes q - 1 do
    Buffer.add_string buf (Printf.sprintf "n u%d %s" u (Label.name tbl (Pattern.label q u)));
    List.iter (fun a -> Buffer.add_string buf (" " ^ atom_to_source a)) (Pattern.pred q u);
    Buffer.add_char buf '\n'
  done;
  List.iter
    (fun (s, t) -> Buffer.add_string buf (Printf.sprintf "e u%d u%d\n" s t))
    (Pattern.edges q);
  Buffer.contents buf
