open Bpq_util
open Bpq_graph

type config = {
  min_nodes : int;
  max_nodes : int;
  edge_factor : float;
  min_preds : int;
  max_preds : int;
}

let default_config =
  { min_nodes = 3; max_nodes = 7; edge_factor = 1.5; min_preds = 2; max_preds = 8 }

let present_labels g =
  List.filter (fun l -> Digraph.count_label g l > 0)
    (Label.all (Digraph.label_table g))

(* An atom that the value [v] satisfies, so generated predicates are
   individually satisfiable on the data that inspired them. *)
let atom_for rng v =
  match v with
  | Value.Null -> None
  | Value.Str s -> Some { Predicate.op = Value.Eq; const = Value.Str s }
  | Value.Int i ->
    let slack = Prng.int rng 4 in
    let op, const =
      match Prng.int rng 3 with
      | 0 -> (Value.Eq, i)
      | 1 -> (Value.Ge, i - slack)
      | _ -> (Value.Le, i + slack)
    in
    Some { Predicate.op; const = Value.Int const }

let sprinkle_predicates rng g cfg node_labels seeds =
  (* [seeds.(u)] is a concrete graph node whose value anchors the atoms for
     pattern node [u]; [None] means sample any node with the right label. *)
  let n = Array.length node_labels in
  let preds = Array.make n Predicate.true_ in
  let target = Prng.int_in rng cfg.min_preds cfg.max_preds in
  let attempts = ref (8 * target) in
  let placed = ref 0 in
  while !placed < target && !attempts > 0 do
    decr attempts;
    let u = Prng.int rng n in
    let sample =
      match seeds.(u) with
      | Some v -> Some v
      | None ->
        let candidates = Digraph.nodes_with_label g node_labels.(u) in
        if Array.length candidates = 0 then None else Some (Prng.pick rng candidates)
    in
    match sample with
    | None -> ()
    | Some v ->
      (match atom_for rng (Digraph.value g v) with
       | None -> ()
       | Some a ->
         preds.(u) <- a :: preds.(u);
         incr placed)
  done;
  preds

let edge_budget rng cfg n =
  let hi = int_of_float (cfg.edge_factor *. float_of_int n) in
  Prng.int_in rng (max 1 (n - 1)) (max (n - 1) hi)

let random ?(config = default_config) rng g =
  if Digraph.n_nodes g = 0 then invalid_arg "Qgen.random: empty graph";
  let labels = Array.of_list (present_labels g) in
  let n = Prng.int_in rng config.min_nodes config.max_nodes in
  let node_labels = Array.init n (fun _ -> Prng.pick rng labels) in
  (* Random spanning tree, then extra edges up to the budget. *)
  let edges = ref [] in
  for u = 1 to n - 1 do
    let v = Prng.int rng u in
    edges := (if Prng.bool rng then (u, v) else (v, u)) :: !edges
  done;
  let extra = edge_budget rng config n - (n - 1) in
  for _ = 1 to extra do
    let u = Prng.int rng n and v = Prng.int rng n in
    if u <> v then edges := (u, v) :: !edges
  done;
  let preds = sprinkle_predicates rng g config node_labels (Array.make n None) in
  Pattern.create (Digraph.label_table g)
    (Array.init n (fun u -> (node_labels.(u), preds.(u))))
    !edges

(* Grow a connected node set of the data graph by repeatedly expanding a
   random member's neighbourhood. *)
let grow_walk rng g target =
  let chosen = ref [] and size = ref 0 in
  let in_set = Hashtbl.create 16 in
  let add v =
    Hashtbl.replace in_set v ();
    chosen := v :: !chosen;
    incr size
  in
  add (Prng.int rng (Digraph.n_nodes g));
  let stuck = ref 0 in
  while !size < target && !stuck < 32 do
    let members = Array.of_list !chosen in
    let from = Prng.pick rng members in
    let nbrs = Digraph.neighbours g from in
    let fresh = Array.of_seq (Seq.filter (fun v -> not (Hashtbl.mem in_set v)) (Array.to_seq nbrs)) in
    if Array.length fresh = 0 then incr stuck
    else begin
      stuck := 0;
      add (Prng.pick rng fresh)
    end
  done;
  Array.of_list (List.rev !chosen)

let from_walk ?(config = default_config) rng g =
  if Digraph.n_nodes g = 0 then invalid_arg "Qgen.from_walk: empty graph";
  let target = Prng.int_in rng config.min_nodes config.max_nodes in
  (* Retry from different start nodes when the walk gets trapped in a tiny
     component. *)
  let rec attempt k =
    let nodes = grow_walk rng g target in
    if Array.length nodes >= min target (config.min_nodes) || k = 0 then nodes
    else attempt (k - 1)
  in
  let nodes = attempt 8 in
  let n = Array.length nodes in
  let index_of = Hashtbl.create n in
  Array.iteri (fun i v -> Hashtbl.replace index_of v i) nodes;
  (* Candidate pattern edges are exactly the data edges inside the walk, so
     the identity embedding is always a match. *)
  let candidates = ref [] in
  Array.iteri
    (fun i v ->
      Digraph.iter_out g v (fun w ->
          match Hashtbl.find_opt index_of w with
          | Some j when i <> j -> candidates := (i, j) :: !candidates
          | Some _ | None -> ()))
    nodes;
  let candidates = Array.of_list !candidates in
  Prng.shuffle rng candidates;
  let budget = edge_budget rng config n in
  (* Keep a connected skeleton first (union-find over undirected edges),
     then shuffle in extras up to the budget. *)
  let parent = Array.init n Fun.id in
  let rec find x = if parent.(x) = x then x else find parent.(x) in
  let kept = ref [] and kept_n = ref 0 in
  Array.iter
    (fun (i, j) ->
      let ri = find i and rj = find j in
      if ri <> rj then begin
        parent.(ri) <- rj;
        kept := (i, j) :: !kept;
        incr kept_n
      end)
    candidates;
  Array.iter
    (fun e ->
      if !kept_n < budget && not (List.mem e !kept) then begin
        kept := e :: !kept;
        incr kept_n
      end)
    candidates;
  let node_labels = Array.map (Digraph.label g) nodes in
  let seeds = Array.map Option.some nodes in
  let preds = sprinkle_predicates rng g config node_labels seeds in
  Pattern.create (Digraph.label_table g)
    (Array.init n (fun u -> (node_labels.(u), preds.(u))))
    !kept

let workload ?(config = default_config) ?(mixed = true) rng g n =
  List.init n (fun i ->
      if mixed && i mod 2 = 0 then from_walk ~config rng g else random ~config rng g)

let with_nodes ?(config = default_config) ~nodes rng g =
  from_walk ~config:{ config with min_nodes = nodes; max_nodes = nodes } rng g
