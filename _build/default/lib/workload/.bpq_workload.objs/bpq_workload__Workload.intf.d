lib/workload/workload.mli: Bpq_access Bpq_graph Bpq_pattern Constr Digraph Label Pattern Schema
