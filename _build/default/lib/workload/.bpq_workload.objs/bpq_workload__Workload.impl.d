lib/workload/workload.ml: Array Bpq_access Bpq_graph Bpq_pattern Constr Digraph Discovery Generators Label List Pattern Predicate Schema Value
