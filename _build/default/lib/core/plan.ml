open Bpq_graph
open Bpq_pattern
open Bpq_access

type fetch = {
  unode : int;
  anchors : (Label.t * int) list;
  constr : Constr.t;
  est : int;
}

type edge_check = {
  edge : int * int;
  target_side : int;
  via : Constr.t;
  anchors : (Label.t * int) list;
  est : int;
}

type t = {
  semantics : Actualized.semantics;
  pattern : Pattern.t;
  fetches : fetch list;
  edge_checks : edge_check list;
  node_estimates : int array;
}

let sat_mul a b = if a > 0 && b > max_int / a then max_int else a * b
let sat_add a b = if a > max_int - b then max_int else a + b

let node_bound t = Array.fold_left sat_add 0 t.node_estimates
let edge_bound t = List.fold_left (fun acc ec -> sat_add acc ec.est) 0 t.edge_checks

let to_string t =
  let tbl = Pattern.label_table t.pattern in
  let buf = Buffer.create 256 in
  let anchors_str anchors =
    if anchors = [] then "nil"
    else
      "{"
      ^ String.concat ", " (List.map (fun (_, v) -> Printf.sprintf "u%d" v) anchors)
      ^ "}"
  in
  List.iteri
    (fun i (f : fetch) ->
      Buffer.add_string buf
        (Printf.sprintf "ft%d(u%d, %s, %s)  est<=%d\n" (i + 1) f.unode
           (anchors_str f.anchors)
           (Constr.to_string tbl f.constr)
           f.est))
    t.fetches;
  List.iter
    (fun (ec : edge_check) ->
      let s, d = ec.edge in
      Buffer.add_string buf
        (Printf.sprintf "check(u%d -> u%d) via %s keyed by %s  est<=%d\n" s d
           (Constr.to_string tbl ec.via)
           (anchors_str ec.anchors) ec.est))
    t.edge_checks;
  Buffer.add_string buf
    (Printf.sprintf "bounds: <=%d nodes, <=%d candidate edges\n" (node_bound t)
       (edge_bound t));
  Buffer.contents buf
