open Bpq_pattern
open Bpq_access

let restrict_labels labels constrs =
  List.filter
    (fun (c : Constr.t) ->
      List.mem c.target labels && List.for_all (fun s -> List.mem s labels) c.source)
    constrs

(* Realised type-(1)/(2) cardinalities over the given labels, with no bound
   cut-off; thresholding by M afterwards is then a pure filter.

   Pairs with no adjacency at all (and labels with no nodes) yield
   vacuously-satisfied bound-0 constraints.  These are what make
   Proposition 5 unconditional: any query whose labels or label pairs are
   absent from the graph is instance-bounded with an empty answer. *)
let realised_stats g labels =
  let observed =
    restrict_labels labels
      (Discovery.type1 ~max_bound:max_int g @ Discovery.degree_bounds ~max_bound:max_int g)
  in
  let have = Hashtbl.create 64 in
  List.iter
    (fun (c : Constr.t) -> Hashtbl.replace have (c.source, c.target) ())
    observed;
  let zeros = ref [] in
  List.iter
    (fun l ->
      if not (Hashtbl.mem have ([], l)) then
        zeros := Constr.make ~source:[] ~target:l ~bound:0 :: !zeros;
      List.iter
        (fun l' ->
          if not (Hashtbl.mem have ([ l ], l')) then
            zeros := Constr.make ~source:[ l ] ~target:l' ~bound:0 :: !zeros)
        labels)
    labels;
  observed @ !zeros

let candidate_extensions g ~m ~labels =
  List.filter (fun (c : Constr.t) -> c.bound <= m) (realised_stats g labels)

let query_labels queries =
  List.sort_uniq compare (List.concat_map Pattern.labels_used queries)

let added_for stats m = List.filter (fun (c : Constr.t) -> c.bound <= m) stats

let all_bounded semantics base added queries =
  let constrs = base @ added in
  List.for_all (fun q -> Ebchk.check semantics q constrs) queries

let eechk semantics g base ~m queries =
  let added = candidate_extensions g ~m ~labels:(query_labels queries) in
  if all_bounded semantics base added queries then Some added else None

(* Smallest threshold in [values] (sorted ascending) whose extension makes
   [queries] bounded; monotone, so binary search applies. *)
let search semantics base stats queries values =
  let ok m = all_bounded semantics base (added_for stats m) queries in
  let n = Array.length values in
  if n = 0 || not (ok values.(n - 1)) then None
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if ok values.(mid) then hi := mid else lo := mid + 1
    done;
    Some values.(!lo)
  end

let thresholds stats =
  let values = List.sort_uniq compare (List.map (fun (c : Constr.t) -> c.bound) stats) in
  Array.of_list values

let min_m semantics g base queries =
  let stats = realised_stats g (query_labels queries) in
  search semantics base stats queries (thresholds stats)

let min_m_profile semantics g base queries =
  let stats = realised_stats g (query_labels queries) in
  let values = thresholds stats in
  let mins =
    List.filter_map
      (fun q ->
        (* Constraints mentioning labels outside the query can never cover
           any of its nodes or edges; filtering them up front makes each
           EBChk run proportional to the query, not the schema. *)
        let labels = query_labels [ q ] in
        search semantics
          (restrict_labels labels base)
          (restrict_labels labels stats)
          [ q ] values)
      queries
  in
  let sorted = List.sort compare mins in
  let n = List.length sorted in
  if n = 0 then []
  else
    List.mapi (fun i m -> (float_of_int (i + 1) /. float_of_int n, m)) sorted

let coverage_score semantics constrs q =
  let cover = Cover.compute semantics q constrs in
  List.length (Cover.covered_nodes cover)
  + (Pattern.n_edges q - List.length (Cover.uncovered_edges cover))

let exact_min_extension ?(max_size = 4) semantics g base ~m queries =
  let pool = Array.of_list (candidate_extensions g ~m ~labels:(query_labels queries)) in
  let n = Array.length pool in
  let solves chosen = all_bounded semantics base chosen queries in
  if solves [] then Some []
  else begin
    (* Enumerate subsets by increasing cardinality; the first hit is a
       minimum. *)
    let rec subsets k start acc =
      if k = 0 then if solves acc then Some (List.rev acc) else None
      else
        let rec try_from i =
          if i > n - k then None
          else
            match subsets (k - 1) (i + 1) (pool.(i) :: acc) with
            | Some _ as hit -> hit
            | None -> try_from (i + 1)
        in
        try_from start
    in
    let rec by_size k =
      if k > max_size then None
      else
        match subsets k 0 [] with
        | Some _ as hit -> hit
        | None -> by_size (k + 1)
    in
    by_size 1
  end

let greedy_extension semantics g base ~m queries =
  let candidates = candidate_extensions g ~m ~labels:(query_labels queries) in
  let rec loop chosen pool =
    let current = base @ chosen in
    let unbounded = List.filter (fun q -> not (Ebchk.check semantics q current)) queries in
    if unbounded = [] then Some (List.rev chosen)
    else begin
      let baseline =
        List.fold_left (fun acc q -> acc + coverage_score semantics current q) 0 unbounded
      in
      let best =
        List.fold_left
          (fun best c ->
            let gain =
              List.fold_left
                (fun acc q -> acc + coverage_score semantics (c :: current) q)
                0 unbounded
              - baseline
            in
            match best with
            | Some (_, g0) when g0 >= gain -> best
            | Some _ | None -> if gain > 0 then Some (c, gain) else best)
          None pool
      in
      match best with
      | None -> None
      | Some (c, _) ->
        loop (c :: chosen) (List.filter (fun c' -> not (Constr.equal c c')) pool)
    end
  in
  loop [] candidates
