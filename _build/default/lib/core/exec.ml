open Bpq_graph
open Bpq_pattern
open Bpq_access

type stats = {
  fetch_lookups : int;
  fetched : int;
  edge_lookups : int;
  edge_candidates : int;
  edges_added : int;
}

let accessed s = s.fetched + s.edge_candidates

type op_trace = {
  op : [ `Fetch of int | `Edge of int * int ];
  estimate : int;
  realized : int;
}

type result = {
  gq : Digraph.t;
  from_gq : int array;
  candidates_gq : int array array;
  candidates_g : int array array;
  stats : stats;
  trace : op_trace list;
}

(* Enumerate the cartesian product of the anchors' candidate arrays,
   yielding each tuple as a key list (one concrete node per source label). *)
let iter_tuples (cmat : int array array) anchors yield =
  let arrays = List.map (fun (_, u) -> cmat.(u)) anchors in
  let rec go acc = function
    | [] -> yield (List.rev acc)
    | arr :: rest -> Array.iter (fun v -> go (v :: acc) rest) arr
  in
  if List.for_all (fun arr -> Array.length arr > 0) arrays then go [] arrays

type source = {
  lookup : Constr.t -> int list -> int array;
  probe_edge : int -> int -> bool;
  node_label : int -> Bpq_graph.Label.t;
  node_value : int -> Value.t;
  table : Bpq_graph.Label.table;
}

let source_of_schema schema =
  let g = Schema.graph schema in
  { lookup = (fun c key -> Index.lookup (Schema.index_of schema c) key);
    probe_edge = Digraph.has_edge g;
    node_label = Digraph.label g;
    node_value = Digraph.value g;
    table = Digraph.label_table g }

let run_with (src : source) (plan : Plan.t) =
  let q = plan.pattern in
  let nq = Pattern.n_nodes q in
  let cmat = Array.make nq [||] in
  let fetched_yet = Array.make nq false in
  let fetch_lookups = ref 0 and fetched = ref 0 in
  let trace = ref [] in
  List.iter
    (fun (f : Plan.fetch) ->
      let pred = Pattern.pred q f.unode in
      let found = Hashtbl.create 64 in
      let collect key =
        incr fetch_lookups;
        let hits = src.lookup f.constr key in
        fetched := !fetched + Array.length hits;
        Array.iter
          (fun w ->
            if Predicate.eval pred (src.node_value w) then Hashtbl.replace found w ())
          hits
      in
      if f.anchors = [] then collect []
      else iter_tuples cmat f.anchors collect;
      let result =
        if fetched_yet.(f.unode) then
          (* Later fetches reduce the set: both are supersets of the true
             matches, so the intersection still is. *)
          Array.of_seq
            (Seq.filter (Hashtbl.mem found) (Array.to_seq cmat.(f.unode)))
        else
          Array.of_seq (Seq.map fst (Hashtbl.to_seq found))
      in
      Array.sort compare result;
      cmat.(f.unode) <- result;
      fetched_yet.(f.unode) <- true;
      trace := { op = `Fetch f.unode; estimate = f.est; realized = Array.length result } :: !trace)
    plan.fetches;
  (* Edge verification.  A node may be candidate for several pattern nodes;
     G_Q has one node per distinct graph node. *)
  let membership =
    Array.map
      (fun arr ->
        let set = Hashtbl.create (max 16 (Array.length arr)) in
        Array.iter (fun v -> Hashtbl.replace set v ()) arr;
        set)
      cmat
  in
  let edge_lookups = ref 0 and edge_candidates = ref 0 in
  let gq_edges = Hashtbl.create 256 in
  List.iter
    (fun (ec : Plan.edge_check) ->
      let u1, u2 = ec.edge in
      let added_before = Hashtbl.length gq_edges in
      let other = if ec.target_side = u1 then u2 else u1 in
      let other_label = Pattern.label q other in
      (* Position of [other]'s component within each tuple. *)
      let other_slot =
        let rec find i = function
          | [] -> assert false
          | (label, anchor) :: rest ->
            if anchor = other && label = other_label then i else find (i + 1) rest
        in
        find 0 ec.anchors
      in
      iter_tuples cmat ec.anchors (fun key ->
          incr edge_lookups;
          let hits = src.lookup ec.via key in
          let v_other = List.nth key other_slot in
          Array.iter
            (fun w ->
              if Hashtbl.mem membership.(ec.target_side) w then begin
                incr edge_candidates;
                let e_src, e_dst = if ec.target_side = u2 then (v_other, w) else (w, v_other) in
                if src.probe_edge e_src e_dst then Hashtbl.replace gq_edges (e_src, e_dst) ()
              end)
            hits);
      trace :=
        { op = `Edge ec.edge;
          estimate = ec.est;
          realized = Hashtbl.length gq_edges - added_before }
        :: !trace)
    plan.edge_checks;
  (* Assemble G_Q. *)
  let to_gq = Hashtbl.create 256 in
  let order = ref [] and count = ref 0 in
  Array.iter
    (Array.iter (fun v ->
         if not (Hashtbl.mem to_gq v) then begin
           Hashtbl.replace to_gq v !count;
           order := v :: !order;
           incr count
         end))
    cmat;
  let from_gq = Array.of_list (List.rev !order) in
  let b = Digraph.Builder.create ~node_hint:!count src.table in
  Array.iter
    (fun v -> ignore (Digraph.Builder.add_node b (src.node_label v) (src.node_value v)))
    from_gq;
  Hashtbl.iter
    (fun (e_src, e_dst) () ->
      Digraph.Builder.add_edge b (Hashtbl.find to_gq e_src) (Hashtbl.find to_gq e_dst))
    gq_edges;
  let gq = Digraph.Builder.freeze b in
  let candidates_gq = Array.map (Array.map (Hashtbl.find to_gq)) cmat in
  { gq;
    from_gq;
    candidates_gq;
    candidates_g = cmat;
    stats =
      { fetch_lookups = !fetch_lookups;
        fetched = !fetched;
        edge_lookups = !edge_lookups;
        edge_candidates = !edge_candidates;
        edges_added = Hashtbl.length gq_edges };
    trace = List.rev !trace }

let run schema plan = run_with (source_of_schema schema) plan
