open Bpq_graph
open Bpq_pattern
open Bpq_access

type semantics = Subgraph | Simulation

type t = {
  constr : Constr.t;
  target : int;
  vbar : int list;
  groups : (Label.t * int list) list;
}

let eligible_neighbours semantics q u =
  match semantics with
  | Subgraph -> Pattern.neighbours q u
  | Simulation -> List.sort_uniq compare (Pattern.children q u)

let actualize semantics q (c : Constr.t) u =
  let pool = eligible_neighbours semantics q u in
  let groups =
    List.map (fun s -> (s, List.filter (fun v -> Pattern.label q v = s) pool)) c.source
  in
  if List.exists (fun (_, members) -> members = []) groups then None
  else
    Some
      { constr = c;
        target = u;
        vbar = List.sort_uniq compare (List.concat_map snd groups);
        groups }

let build semantics q constrs =
  (* Fast path for fat schemas: a constraint can only actualize when its
     target and every source label occur in the pattern. *)
  let labels = Pattern.labels_used q in
  let relevant (c : Constr.t) =
    List.mem c.target labels && List.for_all (fun s -> List.mem s labels) c.source
  in
  List.concat_map
    (fun (c : Constr.t) ->
      if Constr.is_type1 c || not (relevant c) then []
      else
        List.filter_map
          (fun u ->
            if Pattern.label q u = c.target then actualize semantics q c u else None)
          (List.init (Pattern.n_nodes q) Fun.id))
    constrs

let to_string q t =
  Printf.sprintf "{%s} |-> (u%d, %d)"
    (String.concat ", " (List.map (fun v -> Printf.sprintf "u%d" v) t.vbar))
    t.target t.constr.bound
  |> fun s -> s ^ " via " ^ Constr.to_string (Pattern.label_table q) t.constr
