open Bpq_pattern

let check semantics q constrs = Cover.total (Cover.compute semantics q constrs)

type diagnosis = {
  bounded : bool;
  uncovered_nodes : int list;
  uncovered_edges : (int * int) list;
}

let diagnose semantics q constrs =
  let cover = Cover.compute semantics q constrs in
  let uncovered_nodes = Cover.uncovered_nodes cover in
  let uncovered_edges = Cover.uncovered_edges cover in
  { bounded = uncovered_nodes = [] && uncovered_edges = [];
    uncovered_nodes;
    uncovered_edges }

let report q d =
  if d.bounded then "effectively bounded"
  else
    let tbl = Pattern.label_table q in
    let node u = Printf.sprintf "u%d:%s" u (Bpq_graph.Label.name tbl (Pattern.label q u)) in
    let nodes = String.concat ", " (List.map node d.uncovered_nodes) in
    let edges =
      String.concat ", "
        (List.map (fun (s, t) -> Printf.sprintf "(%s -> %s)" (node s) (node t)) d.uncovered_edges)
    in
    Printf.sprintf "not effectively bounded; uncovered nodes: [%s]; uncovered edges: [%s]"
      nodes edges
