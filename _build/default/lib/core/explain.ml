open Bpq_graph
open Bpq_pattern
open Bpq_access
module Table = Bpq_util.Table

let node_name q u = Printf.sprintf "u%d:%s" u (Label.name (Pattern.label_table q) (Pattern.label q u))

let anchors_str anchors =
  if anchors = [] then "-"
  else String.concat "," (List.map (fun (_, v) -> Printf.sprintf "u%d" v) anchors)

let describe (plan : Plan.t) =
  let q = plan.pattern in
  let tbl = Pattern.label_table q in
  let table = Table.create [ "op"; "target"; "keyed by"; "via"; "worst case" ] in
  List.iteri
    (fun i (f : Plan.fetch) ->
      Table.add_row table
        [ Printf.sprintf "ft%d" (i + 1);
          node_name q f.unode;
          anchors_str f.anchors;
          Constr.to_string tbl f.constr;
          string_of_int f.est ])
    plan.fetches;
  List.iter
    (fun (ec : Plan.edge_check) ->
      let s, d = ec.edge in
      Table.add_row table
        [ "check";
          Printf.sprintf "u%d->u%d" s d;
          anchors_str ec.anchors;
          Constr.to_string tbl ec.via;
          string_of_int ec.est ])
    plan.edge_checks;
  Printf.sprintf "%s\ntotals: <=%d candidate nodes, <=%d candidate edges\n"
    (Table.render table) (Plan.node_bound plan) (Plan.edge_bound plan)

type analysis = { report : string; result : Exec.result }

let analyze schema (plan : Plan.t) =
  let result = Exec.run schema plan in
  let q = plan.pattern in
  let table = Table.create [ "op"; "worst case"; "realised"; "used" ] in
  List.iter
    (fun (tr : Exec.op_trace) ->
      let label, realized_label =
        match tr.op with
        | `Fetch u -> (Printf.sprintf "fetch %s" (node_name q u), "candidates")
        | `Edge (s, d) -> (Printf.sprintf "check u%d->u%d" s d, "edges")
      in
      Table.add_row table
        [ label;
          string_of_int tr.estimate;
          string_of_int tr.realized;
          Printf.sprintf "%.0f%% %s"
            (if tr.estimate = 0 then 0.0
             else 100.0 *. float_of_int tr.realized /. float_of_int tr.estimate)
            realized_label ])
    result.trace;
  let g = Schema.graph schema in
  let report =
    Printf.sprintf
      "%s\nG_Q: %d nodes, %d edges; accessed %d data items = %.4f%% of |G| (%d)\n"
      (Table.render table) (Digraph.n_nodes result.gq) (Digraph.n_edges result.gq)
      (Exec.accessed result.stats)
      (100.0 *. float_of_int (Exec.accessed result.stats) /. float_of_int (Digraph.size g))
      (Digraph.size g)
  in
  { report; result }
