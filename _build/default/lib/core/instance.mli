(** Instance boundedness — making unbounded queries answerable in a
    particular graph (paper §V for subgraph queries, §VI.D for simulation).

    When a query load [Q] is not effectively bounded under schema [A], one
    looks for an M-bounded extension [A_M]: [A] plus type-(1)/(2)
    constraints with bounds at most [M] that hold on the given graph [G].
    Under [A_M] each query fetches a subgraph whose size is a function of
    [A], [Q] and [M].

    - {!eechk} is the paper's EEChk/sEEChk: build the {e maximum}
      M-bounded extension in O(|G|) and test every query with EBChk — a
      decision procedure for EEP(Q, A, M, G) (Theorems 6 and 10).
    - {!min_m} finds the smallest such [M] by monotone search over the
      cardinalities realised in [G] — the quantity plotted in Fig. 6.
    - {!greedy_extension} approximates the minimum {e number} of added
      constraints; the exact minimum is logAPX-hard (§V, Remark), so a
      greedy set-cover pass is the practical choice. *)

open Bpq_graph
open Bpq_pattern
open Bpq_access

val candidate_extensions :
  Digraph.t -> m:int -> labels:Label.t list -> Constr.t list
(** All type-(1) and type-(2) constraints over [labels] whose realised
    bound on the graph is at most [m] (with that realised bound).  This is
    the maximum M-bounded extension's added part, computed in one pass over
    the graph. *)

val eechk :
  Actualized.semantics ->
  Digraph.t ->
  Constr.t list ->
  m:int ->
  Pattern.t list ->
  Constr.t list option
(** [eechk sem g a ~m queries] decides EEP: [Some added] when the maximum
    M-bounded extension [a @ added] makes every query effectively bounded
    (i.e. the load is instance-bounded in [g]), [None] otherwise. *)

val min_m :
  Actualized.semantics -> Digraph.t -> Constr.t list -> Pattern.t list -> int option
(** Smallest [M] for which {!eechk} succeeds, [None] if no finite [M]
    works (some query stays uncovered even under the full extension). *)

val min_m_profile :
  Actualized.semantics ->
  Digraph.t ->
  Constr.t list ->
  Pattern.t list ->
  (float * int) list
(** For Fig. 6: pairs [(fraction, m)] — the minimum [M] that makes at
    least that fraction of the query load instance-bounded, for each
    distinct per-query minimum.  Queries with no finite [M] are excluded
    from the denominator (the paper reports up to 100%). *)

val greedy_extension :
  Actualized.semantics ->
  Digraph.t ->
  Constr.t list ->
  m:int ->
  Pattern.t list ->
  Constr.t list option
(** A small (not necessarily minimum) added-constraint set sufficient for
    instance boundedness, built greedily by marginal coverage gain. *)

val exact_min_extension :
  ?max_size:int ->
  Actualized.semantics ->
  Digraph.t ->
  Constr.t list ->
  m:int ->
  Pattern.t list ->
  Constr.t list option
(** The genuinely smallest added-constraint set, by exhaustive subset
    search of increasing size up to [max_size] (default 4).  Finding the
    minimum M-extension is logAPX-hard (paper §V, Remark), so this is a
    small-instance validator for {!greedy_extension}, not a production
    path; cost is O(pool^max_size) EBChk runs.  [None] when no subset
    within [max_size] suffices. *)
