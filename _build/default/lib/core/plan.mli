(** Query plans (paper §IV).

    A plan is a sequence of node-fetching operations
    [ft(u, V_S, φ, g_Q(u))] followed by edge-verification directives.  Each
    fetch retrieves candidate matches [cmat(u)] for pattern node [u] from
    the index of constraint [φ], keyed by previously fetched candidates of
    the anchor pattern nodes; each edge directive verifies the candidate
    pairs of one pattern edge through a covering constraint's index.  Every
    operation carries its static worst-case cardinality, so the total
    amount of data a plan can touch — and hence [|G_Q|] — is known before
    execution, independent of any data graph. *)

open Bpq_graph
open Bpq_pattern
open Bpq_access

type fetch = {
  unode : int;  (** The pattern node whose candidates are fetched. *)
  anchors : (Label.t * int) list;
      (** Per source label of [constr], the anchor pattern node whose
          candidates key the index; empty for type-(1) fetches. *)
  constr : Constr.t;
  est : int;  (** Worst-case [|cmat(unode)|] after this operation. *)
}

type edge_check = {
  edge : int * int;  (** The pattern edge [(u1, u2)] being verified. *)
  target_side : int;  (** The endpoint playing the constraint's target. *)
  via : Constr.t;
  anchors : (Label.t * int) list;
      (** Per source label, the pattern node supplying concrete keys; the
          non-target endpoint of [edge] always appears here. *)
  est : int;  (** Worst-case number of candidate edges examined. *)
}

type t = {
  semantics : Actualized.semantics;
  pattern : Pattern.t;
  fetches : fetch list;  (** Execution order; a node may be fetched more
                             than once, later fetches reduce its set. *)
  edge_checks : edge_check list;
  node_estimates : int array;
      (** Final worst-case [|cmat(u)|] per pattern node. *)
}

val node_bound : t -> int
(** Worst-case number of nodes in [G_Q] (sum of final estimates,
    saturating). *)

val edge_bound : t -> int
(** Worst-case number of candidate edges examined while building [G_Q]. *)

val sat_mul : int -> int -> int
(** Saturating multiplication on non-negative ints (estimates never wrap
    around). *)

val sat_add : int -> int -> int

val to_string : t -> string
(** Multi-line rendering: one line per operation with its estimate, plus
    the totals — the shape of the worked plan in the paper's Example 1. *)
