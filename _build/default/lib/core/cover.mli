(** Node and edge covers — the characterisation of effective boundedness
    (paper Theorems 1 and 7).

    [VCov(Q, A)] is the least set of pattern nodes closed under:
    (a) nodes whose label has a type-(1) constraint, and (b) targets of
    actualized constraints whose source labels are all represented by
    covered nodes in [V̄ᵤˢ].  An edge is covered when one endpoint can be
    verified through an actualized constraint of the other whose source
    side is fully covered.  The simulation covers [sVCov]/[sECov] are the
    same computation over simulation-actualized constraints (children
    only), which makes them subsets of their subgraph counterparts.

    A query is effectively bounded iff both covers are total (Theorem 1 for
    subgraph queries, Theorem 7 for simulation queries). *)

open Bpq_pattern
open Bpq_access

type t

val compute : Actualized.semantics -> Pattern.t -> Constr.t list -> t
(** The worklist fixpoint of algorithm EBChk (paper Fig. 3), in
    O(|A||E_Q| + ‖A‖|V_Q|²). *)

val node_covered : t -> int -> bool
val edge_covered : t -> int * int -> bool

val covered_nodes : t -> int list
(** Ascending. *)

val uncovered_nodes : t -> int list
val uncovered_edges : t -> (int * int) list

val all_nodes_covered : t -> bool
val all_edges_covered : t -> bool

val total : t -> bool
(** Both covers are total — the query is effectively bounded. *)

val saturated : t -> Actualized.t list
(** The actualized constraints whose source labels are fully covered
    ([ct\[φ\] = ∅] in the paper's notation) — exactly those usable by plan
    generation. *)
