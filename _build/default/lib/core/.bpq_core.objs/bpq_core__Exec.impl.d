lib/core/exec.ml: Array Bpq_access Bpq_graph Bpq_pattern Constr Digraph Hashtbl Index List Pattern Plan Predicate Schema Seq Value
