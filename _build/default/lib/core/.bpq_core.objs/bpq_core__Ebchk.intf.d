lib/core/ebchk.mli: Actualized Bpq_access Bpq_pattern Constr Pattern
