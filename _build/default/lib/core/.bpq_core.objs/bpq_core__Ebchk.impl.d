lib/core/ebchk.ml: Bpq_graph Bpq_pattern Cover List Pattern Printf String
