lib/core/bounded_eval.mli: Actualized Bpq_access Bpq_pattern Bpq_util Exec Pattern Plan Schema Timer
