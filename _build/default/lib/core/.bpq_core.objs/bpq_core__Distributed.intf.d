lib/core/distributed.mli: Bpq_access Exec Plan Schema
