lib/core/instance.mli: Actualized Bpq_access Bpq_graph Bpq_pattern Constr Digraph Label Pattern
