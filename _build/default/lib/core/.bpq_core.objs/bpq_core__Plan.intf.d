lib/core/plan.mli: Actualized Bpq_access Bpq_graph Bpq_pattern Constr Label Pattern
