lib/core/explain.ml: Bpq_access Bpq_graph Bpq_pattern Bpq_util Constr Digraph Exec Label List Pattern Plan Printf Schema String
