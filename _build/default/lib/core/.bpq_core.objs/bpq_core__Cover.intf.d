lib/core/cover.mli: Actualized Bpq_access Bpq_pattern Constr Pattern
