lib/core/qplan.mli: Actualized Bpq_access Bpq_pattern Constr Pattern Plan
