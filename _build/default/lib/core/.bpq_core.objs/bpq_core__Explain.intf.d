lib/core/explain.mli: Bpq_access Exec Plan Schema
