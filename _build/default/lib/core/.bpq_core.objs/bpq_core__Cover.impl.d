lib/core/cover.ml: Actualized Array Bpq_access Bpq_graph Bpq_pattern Constr Fun List Pattern Queue
