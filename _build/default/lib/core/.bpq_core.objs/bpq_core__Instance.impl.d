lib/core/instance.ml: Array Bpq_access Bpq_pattern Constr Cover Discovery Ebchk Hashtbl List Pattern
