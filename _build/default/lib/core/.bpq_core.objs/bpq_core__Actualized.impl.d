lib/core/actualized.ml: Bpq_access Bpq_graph Bpq_pattern Constr Fun Label List Pattern Printf String
