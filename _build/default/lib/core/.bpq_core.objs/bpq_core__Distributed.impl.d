lib/core/distributed.ml: Array Bpq_access Exec Float Hashtbl Schema
