lib/core/plan.ml: Actualized Array Bpq_access Bpq_graph Bpq_pattern Buffer Constr Label List Pattern Printf String
