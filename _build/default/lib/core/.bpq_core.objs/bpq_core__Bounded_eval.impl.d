lib/core/bounded_eval.ml: Array Bpq_access Bpq_matcher Exec Gsim List Plan Qplan Schema Vf2
