lib/core/incremental.ml: Actualized Bounded_eval Bpq_access Bpq_graph Bpq_pattern Digraph List Pattern Plan Schema
