lib/core/actualized.mli: Bpq_access Bpq_graph Bpq_pattern Constr Label Pattern
