lib/core/incremental.mli: Actualized Bpq_access Bpq_graph Bpq_pattern Digraph Pattern Schema
