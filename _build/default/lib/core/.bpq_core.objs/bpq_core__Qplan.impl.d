lib/core/qplan.ml: Actualized Array Bpq_access Bpq_graph Bpq_pattern Constr Cover Fun List Option Pattern Plan Predicate Value
