lib/core/exec.mli: Bpq_access Bpq_graph Constr Digraph Plan Schema
