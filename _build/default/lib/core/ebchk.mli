(** Deciding effective boundedness — EBnd(Q, A) (paper §III.B for subgraph
    queries, §VI.B for simulation queries).

    The decision is the totality check of {!Cover}: the query is
    effectively bounded under the schema iff every pattern node and every
    pattern edge is covered (Theorems 1 and 7).  The whole check runs in
    O(|A||E_Q| + ‖A‖|V_Q|²) — polynomial in the query and schema, never
    touching a data graph (Theorems 2 and 8). *)

open Bpq_pattern
open Bpq_access

val check : Actualized.semantics -> Pattern.t -> Constr.t list -> bool
(** [check sem q a]: is [q] effectively bounded under [a]? *)

type diagnosis = {
  bounded : bool;
  uncovered_nodes : int list;
  uncovered_edges : (int * int) list;
}

val diagnose : Actualized.semantics -> Pattern.t -> Constr.t list -> diagnosis
(** Like {!check} but reports which nodes/edges block boundedness — used by
    the instance-boundedness extension search and the CLI. *)

val report : Pattern.t -> diagnosis -> string
(** Human-readable rendering of a diagnosis. *)
