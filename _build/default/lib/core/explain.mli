(** Human-readable plan reports: EXPLAIN and EXPLAIN-ANALYZE for bounded
    query plans.

    {!describe} renders the static plan — the fetch operations, the edge
    directives, the covering constraints and the worst-case arithmetic (the
    form of the paper's Example 1 walkthrough).  {!analyze} additionally
    executes the plan against a schema and reports, per operation, the
    realised cardinality next to its static bound, together with the total
    data accessed relative to [|G|]. *)

open Bpq_access

val describe : Plan.t -> string
(** Static report; never touches a graph. *)

type analysis = {
  report : string;  (** The rendered EXPLAIN-ANALYZE table. *)
  result : Exec.result;  (** The execution behind it, for further use. *)
}

val analyze : Schema.t -> Plan.t -> analysis
(** Executes the plan and renders estimate-vs-realised per operation.  The
    realised numbers are always within the estimates (a property the test
    suite pins down). *)
