(** Actualized constraints Γ of an access schema on a pattern (paper §III
    and §VI).

    For a constraint [S → (l, N)] and a pattern node [u] labeled [l], the
    actualized constraint [V̄ᵤˢ ↦ (u, N)] records in [V̄ᵤˢ] the neighbours
    of [u] whose label belongs to [S] — the pattern nodes whose candidate
    matches can key the index when fetching candidates for [u].  It exists
    only when every label of [S] is represented (condition (a) of the
    paper's definition).

    The two pattern semantics actualize differently:
    - {e subgraph} queries take all neighbours of [u] (data locality lets a
      match of [u] be retrieved from matches of any neighbour);
    - {e simulation} queries take only the {e children} of [u] (§VI): the
      non-localized semantics only bounds a node through its successors. *)

open Bpq_graph
open Bpq_pattern
open Bpq_access

type semantics = Subgraph | Simulation

type t = {
  constr : Constr.t;
  target : int;  (** The pattern node [u]. *)
  vbar : int list;  (** [V̄ᵤˢ], sorted. *)
  groups : (Label.t * int list) list;
      (** [vbar] grouped by label, one entry per label of [S], in the label
          order of [constr.source]. *)
}

val build : semantics -> Pattern.t -> Constr.t list -> t list
(** All actualized constraints of the schema's non-type-(1) constraints on
    the pattern. *)

val eligible_neighbours : semantics -> Pattern.t -> int -> int list
(** The neighbour pool that [V̄ᵤˢ] is drawn from: all neighbours for
    {!Subgraph}, children for {!Simulation}. *)

val to_string : Pattern.t -> t -> string
