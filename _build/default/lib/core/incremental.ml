open Bpq_graph
open Bpq_access
open Bpq_pattern

type answer = Matches of int array list | Relation of int array array

type t = {
  semantics : Actualized.semantics;
  schema : Schema.t;
  plan : Plan.t;
  answer : answer;
  skipped : bool;
}

let evaluate semantics schema plan =
  match semantics with
  | Actualized.Subgraph -> Matches (Bounded_eval.bvf2_matches schema plan)
  | Actualized.Simulation -> Relation (Bounded_eval.bsim schema plan)

let create semantics schema q =
  match Bounded_eval.plan_for semantics schema q with
  | None -> None
  | Some plan ->
    Some
      { semantics; schema; plan; answer = evaluate semantics schema plan; skipped = false }

let answer t = t.answer
let schema t = t.schema
let last_update_skipped t = t.skipped

(* A delta is irrelevant when no changed edge connects two pattern labels
   and no added node carries a pattern label: matches and simulation pairs
   only ever involve pattern-labeled nodes, and their witnessing edges run
   between two of them. *)
let irrelevant g q (delta : Digraph.delta) =
  let labels = Pattern.labels_used q in
  let uses l = List.mem l labels in
  let edge_relevant (s, d) =
    s < Digraph.n_nodes g && d < Digraph.n_nodes g
    && uses (Digraph.label g s)
    && uses (Digraph.label g d)
  in
  (* Edges touching fresh nodes are conservatively relevant when the fresh
     node's label is used. *)
  let fresh_relevant (s, d) =
    let fresh v =
      v >= Digraph.n_nodes g
      &&
      let l, _ = List.nth delta.added_nodes (v - Digraph.n_nodes g) in
      uses l
    in
    fresh s || fresh d
  in
  List.for_all
    (fun e -> not (edge_relevant e || fresh_relevant e))
    (delta.added_edges @ delta.removed_edges)

let update t delta =
  if irrelevant (Schema.graph t.schema) t.plan.Plan.pattern delta then
    let schema = Schema.apply_delta t.schema delta in
    { t with schema; skipped = true }
  else begin
    let schema = Schema.apply_delta t.schema delta in
    { t with schema; answer = evaluate t.semantics schema t.plan; skipped = false }
  end
