open Bpq_pattern
open Bpq_access

type phi = {
  actual : Actualized.t;
  mutable missing : Bpq_graph.Label.t list;
      (* ct[φ]: source labels with no covered representative in vbar yet *)
}

type t = {
  pattern : Pattern.t;
  covered : bool array;
  phis : phi list;
}

let compute semantics q constrs =
  let nq = Pattern.n_nodes q in
  let covered = Array.make nq false in
  let phis =
    List.map
      (fun (a : Actualized.t) -> { actual = a; missing = a.constr.source })
      (Actualized.build semantics q constrs)
  in
  (* L[v]: the actualized constraints that v's coverage can advance. *)
  let watchers = Array.make nq [] in
  List.iter
    (fun phi ->
      List.iter (fun v -> watchers.(v) <- phi :: watchers.(v)) phi.actual.vbar)
    phis;
  let worklist = Queue.create () in
  let cover u =
    if not covered.(u) then begin
      covered.(u) <- true;
      Queue.add u worklist
    end
  in
  (* Bound-0 constraints saturate unconditionally: whatever the witnesses
     for the source side turn out to be, the target has zero candidate
     matches — no coverage of the sources is needed to conclude that.
     (Sound for both semantics: a match/simulation partner of the target
     would be a common neighbour of a concrete S-labeled set, of which the
     constraint allows none.) *)
  List.iter
    (fun phi ->
      if phi.actual.constr.bound = 0 then begin
        phi.missing <- [];
        cover phi.actual.target
      end)
    phis;
  (* Seed with type-(1)-covered labels (line 3 of EBChk). *)
  let type1_labels =
    List.filter_map
      (fun (c : Constr.t) -> if Constr.is_type1 c then Some c.target else None)
      constrs
  in
  for u = 0 to nq - 1 do
    if List.mem (Pattern.label q u) type1_labels then cover u
  done;
  while not (Queue.is_empty worklist) do
    let v = Queue.pop worklist in
    let lv = Pattern.label q v in
    List.iter
      (fun phi ->
        if List.mem lv phi.missing then begin
          phi.missing <- List.filter (fun s -> s <> lv) phi.missing;
          if phi.missing = [] then cover phi.actual.target
        end)
      watchers.(v)
  done;
  { pattern = q; covered; phis }

let node_covered t u = t.covered.(u)

let saturated t =
  List.filter_map (fun phi -> if phi.missing = [] then Some phi.actual else None) t.phis

(* (u1, u2) is covered when some saturated actualized constraint has one
   endpoint as target and the other in its source side (and that other
   endpoint is itself covered). *)
let edge_covered t (u1, u2) =
  let matches phi (target, other) =
    phi.missing = []
    && phi.actual.target = target
    && t.covered.(other)
    && List.mem other phi.actual.vbar
  in
  List.exists (fun phi -> matches phi (u2, u1) || matches phi (u1, u2)) t.phis

let covered_nodes t =
  List.filter (node_covered t) (List.init (Pattern.n_nodes t.pattern) Fun.id)

let uncovered_nodes t =
  List.filter (fun u -> not (node_covered t u)) (List.init (Pattern.n_nodes t.pattern) Fun.id)

let uncovered_edges t =
  List.filter (fun e -> not (edge_covered t e)) (Pattern.edges t.pattern)

let all_nodes_covered t = Array.for_all Fun.id t.covered
let all_edges_covered t = uncovered_edges t = []
let total t = all_nodes_covered t && all_edges_covered t
