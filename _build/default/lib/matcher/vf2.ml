open Bpq_util
open Bpq_graph
open Bpq_pattern

exception Stop

let compute_order q base_count =
  let nq = Pattern.n_nodes q in
  let order = Array.make nq 0 in
  let selected = Array.make nq false in
  let matched_neighbours u =
    List.length (List.filter (fun u' -> selected.(u')) (Pattern.neighbours q u))
  in
  for i = 0 to nq - 1 do
    let best = ref (-1) in
    let better u =
      (* Prefer nodes attached to the matched prefix (more constrained),
         then smaller candidate universes (or higher pattern degree in
         blind mode, where [base_count] is constant). *)
      match !best with
      | -1 -> true
      | b ->
        let ku = matched_neighbours u and kb = matched_neighbours b in
        ku > kb || (ku = kb && base_count u < base_count b)
    in
    for u = 0 to nq - 1 do
      if (not selected.(u)) && better u then best := u
    done;
    order.(i) <- !best;
    selected.(!best) <- true
  done;
  order

let iter_matches ?(deadline = Timer.no_deadline) ?(blind = false) ?candidates g q yield =
  let nq = Pattern.n_nodes q in
  if nq = 0 then yield [||]
  else begin
    let cand_sets =
      Option.map
        (Array.map (fun arr ->
             let set = Hashtbl.create (max 16 (Array.length arr)) in
             Array.iter (fun v -> Hashtbl.replace set v ()) arr;
             set))
        candidates
    in
    let base_count u =
      if blind then Pattern.n_nodes q - Pattern.out_degree q u - Pattern.in_degree q u
      else
        match candidates with
        | Some c -> Array.length c.(u)
        | None -> Digraph.count_label g (Pattern.label q u)
    in
    let order = compute_order q base_count in
    let mapping = Array.make nq (-1) in
    let used = Hashtbl.create 64 in
    let node_ok u v =
      Digraph.label g v = Pattern.label q u
      && Predicate.eval (Pattern.pred q u) (Digraph.value g v)
      && Digraph.out_degree g v >= Pattern.out_degree q u
      && Digraph.in_degree g v >= Pattern.in_degree q u
      && (match cand_sets with None -> true | Some cs -> Hashtbl.mem cs.(u) v)
    in
    let consistent u v =
      List.for_all
        (fun u' -> mapping.(u') < 0 || Digraph.has_edge g v mapping.(u'))
        (Pattern.children q u)
      && List.for_all
           (fun u' -> mapping.(u') < 0 || Digraph.has_edge g mapping.(u') v)
           (Pattern.parents q u)
    in
    let try_assign u v k =
      if Timer.expired deadline then raise Timer.Timeout;
      if (not (Hashtbl.mem used v)) && node_ok u v && consistent u v then begin
        mapping.(u) <- v;
        Hashtbl.replace used v ();
        k ();
        Hashtbl.remove used v;
        mapping.(u) <- -1
      end
    in
    (* Candidates for [u] come from the adjacency of an already-matched
       pattern neighbour when one exists (the cheapest such anchor), else
       from the label universe / supplied candidate array. *)
    let enumerate u k =
      let anchor =
        List.fold_left
          (fun best u' ->
            if mapping.(u') < 0 then best
            else
              let d = Digraph.degree g mapping.(u') in
              match best with
              | Some (_, db) when db <= d -> best
              | Some _ | None -> Some (u', d))
          None (Pattern.neighbours q u)
      in
      match anchor with
      | Some (u', _) ->
        let v' = mapping.(u') in
        if Pattern.has_edge q u' u then Digraph.iter_out g v' (fun v -> try_assign u v k)
        else Digraph.iter_in g v' (fun v -> try_assign u v k)
      | None ->
        (match candidates with
         | Some c -> Array.iter (fun v -> try_assign u v k) c.(u)
         | None ->
           if blind then Digraph.iter_nodes g (fun v -> try_assign u v k)
           else Digraph.iter_label g (Pattern.label q u) (fun v -> try_assign u v k))
    in
    let rec step i () = if i = nq then yield mapping else enumerate order.(i) (step (i + 1)) in
    step 0 ()
  end

let count_matches ?deadline ?blind ?candidates ?limit g q =
  let count = ref 0 in
  (try
     iter_matches ?deadline ?blind ?candidates g q (fun _ ->
         incr count;
         match limit with Some l when !count >= l -> raise Stop | Some _ | None -> ())
   with Stop -> ());
  !count

let find_first ?deadline ?blind ?candidates g q =
  let result = ref None in
  (try
     iter_matches ?deadline ?blind ?candidates g q (fun m ->
         result := Some (Array.copy m);
         raise Stop)
   with Stop -> ());
  !result

let matches ?deadline ?blind ?candidates ?limit g q =
  let acc = ref [] and count = ref 0 in
  (try
     iter_matches ?deadline ?blind ?candidates g q (fun m ->
         acc := Array.copy m :: !acc;
         incr count;
         match limit with Some l when !count >= l -> raise Stop | Some _ | None -> ())
   with Stop -> ());
  !acc
