lib/matcher/naive.ml: Array Bpq_graph Bpq_pattern Digraph Gsim List Pattern Predicate
