lib/matcher/gsim.mli: Bpq_graph Bpq_pattern Bpq_util Digraph Pattern Timer
