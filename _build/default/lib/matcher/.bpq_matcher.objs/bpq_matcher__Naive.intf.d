lib/matcher/naive.mli: Bpq_graph Bpq_pattern Digraph Pattern
