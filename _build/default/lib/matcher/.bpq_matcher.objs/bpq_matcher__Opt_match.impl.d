lib/matcher/opt_match.ml: Array Bpq_access Bpq_graph Bpq_pattern Constr Digraph Gsim Hashtbl Index Label List Pattern Predicate Schema Seq Vf2
