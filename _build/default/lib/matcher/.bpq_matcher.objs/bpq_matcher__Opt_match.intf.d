lib/matcher/opt_match.mli: Bpq_access Bpq_pattern Bpq_util Pattern Schema Timer
