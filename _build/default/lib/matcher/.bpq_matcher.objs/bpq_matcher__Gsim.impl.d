lib/matcher/gsim.ml: Array Bpq_graph Bpq_pattern Bpq_util Digraph Hashtbl List Pattern Predicate Seq Timer Vec
