lib/matcher/vf2.mli: Bpq_graph Bpq_pattern Bpq_util Digraph Pattern Timer
