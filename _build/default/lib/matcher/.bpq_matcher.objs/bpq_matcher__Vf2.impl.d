lib/matcher/vf2.ml: Array Bpq_graph Bpq_pattern Bpq_util Digraph Hashtbl List Option Pattern Predicate Timer
