open Bpq_graph
open Bpq_pattern

let iso_matches g q =
  let nq = Pattern.n_nodes q and n = Digraph.n_nodes g in
  let mapping = Array.make nq (-1) in
  let results = ref [] in
  let ok_node u v =
    Digraph.label g v = Pattern.label q u
    && Predicate.eval (Pattern.pred q u) (Digraph.value g v)
  in
  let ok_edges () =
    List.for_all (fun (s, t) -> Digraph.has_edge g mapping.(s) mapping.(t)) (Pattern.edges q)
  in
  let injective u v =
    let rec go i = i >= u || (mapping.(i) <> v && go (i + 1)) in
    go 0
  in
  let rec assign u =
    if u = nq then begin
      if ok_edges () then results := Array.copy mapping :: !results
    end
    else
      for v = 0 to n - 1 do
        if ok_node u v && injective u v then begin
          mapping.(u) <- v;
          assign (u + 1);
          mapping.(u) <- -1
        end
      done
  in
  if nq = 0 then [ [||] ] else (assign 0; !results)

let sim g q = Gsim.naive g q
