(** Exhaustive reference matchers — test oracles only.

    These enumerate the full assignment space without pruning and are
    intended for graphs of at most a dozen nodes; the property-based tests
    use them to validate {!Vf2} and the plan-based evaluators. *)

open Bpq_graph
open Bpq_pattern

val iso_matches : Digraph.t -> Pattern.t -> int array list
(** Every injective label/predicate/edge-respecting mapping, by brute-force
    enumeration of all node tuples. *)

val sim : Digraph.t -> Pattern.t -> int array array
(** Alias of {!Gsim.naive} (no candidate restriction). *)
