(** Graph simulation (the paper's non-localized pattern semantics).

    A match relation [R ⊆ V_Q × V] requires that (a) related nodes agree on
    label and satisfy the pattern predicate and (b) every pattern edge
    [(u, u')] is simulated forward: if [(u, v) ∈ R] then some successor
    [v'] of [v] has [(u', v') ∈ R].  There is a unique maximum such
    relation (Henzinger, Henzinger & Kopke, FOCS 1995); the query answer
    [Q(G)] is that relation, and it is empty as soon as some pattern node
    has no partner.

    {!run} is the counter-based fixpoint in
    O((|V_Q| + |E_Q|) · (|V| + |E|)) — the complexity the paper quotes for
    [gsim].  {!naive} is the obvious quadratic fixpoint, kept as a test
    oracle. *)

open Bpq_util
open Bpq_graph
open Bpq_pattern

val run :
  ?deadline:Timer.deadline ->
  ?candidates:int array array ->
  Digraph.t ->
  Pattern.t ->
  int array array
(** [run g q] returns [sim] with [sim.(u)] the sorted array of graph nodes
    simulating pattern node [u].  If any pattern node ends up with no
    partner, every entry is [[||]] (the maximum match relation is empty).
    [candidates.(u)], when given, restricts the initial partners of [u]. *)

val naive :
  ?candidates:int array array -> Digraph.t -> Pattern.t -> int array array
(** Reference implementation: repeatedly delete violating pairs until the
    fixpoint; same result as {!run}. *)

val is_empty : int array array -> bool
(** True iff the relation has no pairs. *)

val relation_size : int array array -> int
(** Total number of (pattern node, graph node) pairs. *)
