open Bpq_graph
open Bpq_core
module W = Bpq_workload.Workload

let test_sat_mul () =
  Helpers.check_int "normal" 12 (Plan.sat_mul 3 4);
  Helpers.check_int "zero" 0 (Plan.sat_mul 0 max_int);
  Helpers.check_int "saturates" max_int (Plan.sat_mul (max_int / 2) 3);
  Helpers.check_int "saturated times anything" max_int (Plan.sat_mul max_int 2);
  Helpers.check_int "one" max_int (Plan.sat_mul 1 max_int)

let test_sat_add () =
  Helpers.check_int "normal" 7 (Plan.sat_add 3 4);
  Helpers.check_int "saturates" max_int (Plan.sat_add max_int 1);
  Helpers.check_int "saturates both" max_int (Plan.sat_add (max_int - 1) 5)

let q0_plan () =
  let tbl = Label.create_table () in
  (tbl, Qplan.generate_exn Actualized.Subgraph (W.q0 tbl) (W.a0 tbl))

let test_bounds_sum_estimates () =
  let _, plan = q0_plan () in
  Helpers.check_int "node bound is the estimate sum"
    (Array.fold_left ( + ) 0 plan.node_estimates)
    (Plan.node_bound plan);
  Helpers.check_int "edge bound sums directive estimates"
    (List.fold_left (fun acc (ec : Plan.edge_check) -> acc + ec.est) 0 plan.edge_checks)
    (Plan.edge_bound plan)

let test_to_string_mentions_everything () =
  let _, plan = q0_plan () in
  let s = Plan.to_string plan in
  Helpers.check_true "fetches rendered"
    (List.for_all
       (fun (f : Plan.fetch) ->
         let needle = Printf.sprintf "u%d" f.unode in
         let rec contains i =
           i + String.length needle <= String.length s
           && (String.sub s i (String.length needle) = needle || contains (i + 1))
         in
         contains 0)
       plan.fetches);
  Helpers.check_true "bounds line present"
    (String.length s > 0
    &&
    let rec contains i =
      i + 7 <= String.length s && (String.sub s i 7 = "bounds:" || contains (i + 1))
    in
    contains 0)

let test_edge_checks_cover_all_edges () =
  let tbl = Label.create_table () in
  let q0 = W.q0 tbl in
  let plan = Qplan.generate_exn Actualized.Subgraph q0 (W.a0 tbl) in
  let checked = List.map (fun (ec : Plan.edge_check) -> ec.edge) plan.edge_checks in
  Helpers.check_true "every pattern edge has a directive"
    (List.for_all (fun e -> List.mem e checked) (Bpq_pattern.Pattern.edges q0))

let test_directive_anchors_include_other_endpoint () =
  let tbl = Label.create_table () in
  let plan = Qplan.generate_exn Actualized.Subgraph (W.q0 tbl) (W.a0 tbl) in
  List.iter
    (fun (ec : Plan.edge_check) ->
      let u1, u2 = ec.edge in
      let other = if ec.target_side = u1 then u2 else u1 in
      Helpers.check_true "other endpoint anchors the lookup"
        (List.exists (fun (_, anchor) -> anchor = other) ec.anchors);
      Helpers.check_true "target side is an endpoint"
        (ec.target_side = u1 || ec.target_side = u2);
      (* The directive's constraint targets the target side's label. *)
      Helpers.check_int "constraint targets the target side"
        (Bpq_pattern.Pattern.label plan.pattern ec.target_side)
        ec.via.target)
    plan.edge_checks

let anchors_match_source_labels =
  Helpers.qcheck ~count:60 "fetch anchors carry the constraint's source labels"
    QCheck2.Gen.(int_range 1 500)
    (fun seed ->
      let _, g, constrs, r = Helpers.random_instance seed in
      let q = Bpq_pattern.Qgen.random r g in
      match Qplan.generate Actualized.Subgraph q constrs with
      | None -> true
      | Some plan ->
        List.for_all
          (fun (f : Plan.fetch) ->
            List.sort compare (List.map fst f.anchors) = f.constr.source
            && List.for_all
                 (fun (label, anchor) -> Bpq_pattern.Pattern.label q anchor = label)
                 f.anchors)
          plan.fetches)

let suite =
  [ Alcotest.test_case "sat_mul" `Quick test_sat_mul;
    Alcotest.test_case "sat_add" `Quick test_sat_add;
    Alcotest.test_case "bounds sum estimates" `Quick test_bounds_sum_estimates;
    Alcotest.test_case "to_string mentions everything" `Quick test_to_string_mentions_everything;
    Alcotest.test_case "edge checks cover all edges" `Quick test_edge_checks_cover_all_edges;
    Alcotest.test_case "directive anchors include other endpoint" `Quick
      test_directive_anchors_include_other_endpoint;
    anchors_match_source_labels ]
