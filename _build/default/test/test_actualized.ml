open Bpq_graph
open Bpq_pattern
open Bpq_access
open Bpq_core

let t = Predicate.true_

(* Pattern: A -> B, C -> B, B -> D. *)
let world () =
  let tbl = Label.create_table () in
  let q =
    Helpers.pattern tbl [ ("A", t); ("B", t); ("C", t); ("D", t) ] [ (0, 1); (2, 1); (1, 3) ]
  in
  let l = Label.intern tbl in
  (tbl, q, l)

let test_eligible_neighbours () =
  let _, q, _ = world () in
  Helpers.check_true "subgraph: all neighbours of B"
    (Actualized.eligible_neighbours Actualized.Subgraph q 1 = [ 0; 2; 3 ]);
  Helpers.check_true "simulation: children of B only"
    (Actualized.eligible_neighbours Actualized.Simulation q 1 = [ 3 ])

let test_build_subgraph () =
  let _, q, l = world () in
  let a = [ Constr.make ~source:[ l "A"; l "C" ] ~target:(l "B") ~bound:5 ] in
  match Actualized.build Actualized.Subgraph q a with
  | [ phi ] ->
    Helpers.check_int "target is B" 1 phi.target;
    Helpers.check_true "vbar = {A, C}" (phi.vbar = [ 0; 2 ]);
    Helpers.check_int "two groups" 2 (List.length phi.groups)
  | other -> Alcotest.fail (Printf.sprintf "expected 1 actualized, got %d" (List.length other))

let test_build_requires_all_labels () =
  let _, q, l = world () in
  (* {A, X} -> B cannot actualize: no X neighbour. *)
  let a = [ Constr.make ~source:[ l "A"; l "X" ] ~target:(l "B") ~bound:5 ] in
  Helpers.check_int "no actualization" 0
    (List.length (Actualized.build Actualized.Subgraph q a))

let test_build_simulation_restricts_to_children () =
  let _, q, l = world () in
  (* {A} -> B: A is a parent of B, not a child — no sim actualization. *)
  let a = [ Constr.make ~source:[ l "A" ] ~target:(l "B") ~bound:5 ] in
  Helpers.check_int "subgraph actualizes" 1
    (List.length (Actualized.build Actualized.Subgraph q a));
  Helpers.check_int "simulation does not" 0
    (List.length (Actualized.build Actualized.Simulation q a));
  (* {D} -> B: D is a child — both semantics actualize. *)
  let a' = [ Constr.make ~source:[ l "D" ] ~target:(l "B") ~bound:5 ] in
  Helpers.check_int "simulation with child" 1
    (List.length (Actualized.build Actualized.Simulation q a'))

let test_type1_never_actualizes () =
  let _, q, l = world () in
  let a = [ Constr.make ~source:[] ~target:(l "B") ~bound:5 ] in
  Helpers.check_int "type-1 excluded" 0 (List.length (Actualized.build Actualized.Subgraph q a))

let test_one_per_matching_node () =
  let tbl = Label.create_table () in
  (* Two B nodes, both with an A neighbour. *)
  let q =
    Helpers.pattern tbl [ ("A", t); ("B", t); ("B", t) ] [ (0, 1); (0, 2) ]
  in
  let l = Label.intern tbl in
  let a = [ Constr.make ~source:[ l "A" ] ~target:(l "B") ~bound:5 ] in
  Helpers.check_int "one per target node" 2
    (List.length (Actualized.build Actualized.Subgraph q a))

let sim_gamma_subset_of_subgraph_gamma =
  Helpers.qcheck ~count:50 "simulation Γ is a subset of subgraph Γ"
    QCheck2.Gen.(int_range 1 500)
    (fun seed ->
      let _, g, constrs, r = Helpers.random_instance seed in
      let q = Bpq_pattern.Qgen.random r g in
      let sub = Actualized.build Actualized.Subgraph q constrs in
      let sim = Actualized.build Actualized.Simulation q constrs in
      List.for_all
        (fun (s : Actualized.t) ->
          List.exists
            (fun (b : Actualized.t) ->
              Constr.equal s.constr b.constr && s.target = b.target
              && List.for_all (fun v -> List.mem v b.vbar) s.vbar)
            sub)
        sim)

let vbar_members_carry_source_labels =
  Helpers.qcheck ~count:50 "V̄ members carry labels of S and neighbour the target"
    QCheck2.Gen.(int_range 1 500)
    (fun seed ->
      let _, g, constrs, r = Helpers.random_instance seed in
      let q = Bpq_pattern.Qgen.random r g in
      List.for_all
        (fun (phi : Actualized.t) ->
          List.for_all
            (fun v ->
              List.mem (Bpq_pattern.Pattern.label q v) phi.constr.source
              && List.mem v (Bpq_pattern.Pattern.neighbours q phi.target))
            phi.vbar)
        (Actualized.build Actualized.Subgraph q constrs))

let suite =
  [ Alcotest.test_case "eligible neighbours" `Quick test_eligible_neighbours;
    Alcotest.test_case "build subgraph" `Quick test_build_subgraph;
    Alcotest.test_case "build requires all labels" `Quick test_build_requires_all_labels;
    Alcotest.test_case "simulation restricts to children" `Quick
      test_build_simulation_restricts_to_children;
    Alcotest.test_case "type-1 never actualizes" `Quick test_type1_never_actualizes;
    Alcotest.test_case "one per matching node" `Quick test_one_per_matching_node;
    sim_gamma_subset_of_subgraph_gamma;
    vbar_members_carry_source_labels ]
