open Bpq_access
open Bpq_core
module W = Bpq_workload.Workload

let q0_setup () =
  let ds = W.imdb ~scale:0.02 () in
  let a0 = W.a0 ds.table in
  let schema = Schema.build ds.graph a0 in
  let plan = Qplan.generate_exn Actualized.Subgraph (W.q0 ds.table) a0 in
  (ds, schema, plan)

let canon (r : Exec.result) =
  ( List.sort compare (Array.to_list r.from_gq),
    Array.map (fun arr -> List.sort compare (Array.to_list arr)) r.candidates_g,
    Bpq_graph.Digraph.n_edges r.gq )

let test_equals_single_node () =
  let _, schema, plan = q0_setup () in
  let single = Exec.run schema plan in
  let dist = Distributed.create ~shards:4 schema in
  let sharded, stats = Distributed.run dist plan in
  Helpers.check_true "same G_Q" (canon single = canon sharded);
  Helpers.check_int "same accesses"
    (Exec.accessed single.stats) (Exec.accessed sharded.stats);
  (* All accounting sums match the single-node stats. *)
  Helpers.check_int "lookups partitioned"
    (single.stats.fetch_lookups + single.stats.edge_lookups)
    (Array.fold_left ( + ) 0 stats.lookups_per_shard)

let test_matches_agree_across_shard_counts () =
  let ds, schema, plan = q0_setup () in
  let reference = Helpers.sort_matches (Bounded_eval.bvf2_matches schema plan) in
  List.iter
    (fun shards ->
      let dist = Distributed.create ~shards schema in
      let r, _ = Distributed.run dist plan in
      let matches =
        Bpq_matcher.Vf2.matches ~candidates:r.candidates_gq r.gq plan.Plan.pattern
        |> List.map (Array.map (fun v -> r.from_gq.(v)))
      in
      Helpers.check_true
        (Printf.sprintf "same answers at %d shards" shards)
        (Helpers.sort_matches matches = reference))
    [ 1; 2; 7; 16 ];
  ignore ds

let test_traffic_spreads () =
  let _, schema, plan = q0_setup () in
  let dist = Distributed.create ~shards:8 schema in
  let _, stats = Distributed.run dist plan in
  let active =
    Array.fold_left (fun acc n -> if n > 0 then acc + 1 else acc) 0 stats.lookups_per_shard
  in
  Helpers.check_true "several shards involved" (active >= 3);
  let b = Distributed.balance stats in
  Helpers.check_true "balance defined" (not (Float.is_nan b));
  Helpers.check_true "balance at least 1" (b >= 1.0)

let test_rejects_bad_shards () =
  let _, schema, _ = q0_setup () in
  Alcotest.check_raises "zero shards"
    (Invalid_argument "Distributed.create: shards must be positive") (fun () ->
      ignore (Distributed.create ~shards:0 schema))

let sharded_equals_single =
  Helpers.qcheck ~count:40 "sharded execution equals single-node on random instances"
    QCheck2.Gen.(pair (int_range 1 100_000) (int_range 1 9))
    (fun (seed, shards) ->
      let _, g, constrs, r = Helpers.random_instance seed in
      let schema = Schema.build g constrs in
      let q = Bpq_pattern.Qgen.from_walk r g in
      match Qplan.generate Actualized.Subgraph q constrs with
      | None -> true
      | Some plan ->
        let single = Exec.run schema plan in
        let sharded, stats = Distributed.run (Distributed.create ~shards schema) plan in
        canon single = canon sharded
        && Array.fold_left ( + ) 0 stats.lookups_per_shard
           = single.stats.fetch_lookups + single.stats.edge_lookups
        && Array.fold_left ( + ) 0 stats.items_per_shard >= single.stats.fetched)

let suite =
  [ Alcotest.test_case "equals single node" `Quick test_equals_single_node;
    Alcotest.test_case "matches agree across shard counts" `Quick
      test_matches_agree_across_shard_counts;
    Alcotest.test_case "traffic spreads" `Quick test_traffic_spreads;
    Alcotest.test_case "rejects bad shards" `Quick test_rejects_bad_shards;
    sharded_equals_single ]
